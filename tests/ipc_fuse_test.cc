// Fused IPC fast path (DESIGN.md §12): posted-receive transfers must be
// byte-identical — with identical KFUNC order — whether they take the fused
// single-hop task or the two-step staged path (enable_ipc_fuse ablation),
// and every rung of the fallback ladder must degrade losslessly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <optional>
#include <vector>

#include "src/apps/miniproxy.h"
#include "src/apps/parcel.h"
#include "src/simos/binder.h"
#include "tests/test_util.h"

namespace copier::test {
namespace {

// --- socket differential -----------------------------------------------------

struct PostedRunResult {
  std::vector<uint8_t> image;
  uint64_t kfuncs_run = 0;
  std::vector<uint32_t> probe;  // skb ids in KFUNC firing order
  uint64_t fused_ipc_tasks = 0;
  uint64_t fused_ipc_bytes = 0;
  core::CopierService::IpcFuseStats fuse = {};
};

PostedRunResult RunPostedSocketWorkload(bool fuse, size_t n) {
  core::CopierConfig config;
  config.enable_ipc_fuse = fuse;
  CopierStack stack(config);
  simos::Process* peer = stack.kernel->CreateProcess("peer");
  stack.service->AttachProcess(peer);
  auto [tx, rx] = stack.kernel->CreateSocketPair();

  const uint64_t src = stack.Map(n, "src");
  FillPattern(stack.proc->mem(), src, n, 7001 + n);
  auto dst_or = peer->mem().MapAnonymous(n, "win", true);
  EXPECT_TRUE(dst_or.ok());

  PostedRunResult result;
  stack.kernel->SetKfuncProbe([&](uint32_t id) { result.probe.push_back(id); });

  core::Descriptor descriptor(n);
  simos::RecvOptions ropts;
  ropts.descriptor = &descriptor;
  auto staged = stack.kernel->PostRecv(*peer, rx, *dst_or, n, nullptr, ropts);
  EXPECT_TRUE(staged.ok()) << staged.status().ToString();
  EXPECT_EQ(*staged, 0u);  // nothing queued yet

  size_t sent_total = 0;
  for (int iter = 0; iter < 1000 && sent_total < n; ++iter) {
    auto sent = stack.kernel->Send(*stack.proc, tx, src + sent_total, n - sent_total, nullptr);
    EXPECT_TRUE(sent.ok()) << sent.status().ToString();
    if (!sent.ok()) {
      break;
    }
    sent_total += *sent;
    stack.service->DrainAll();
  }
  EXPECT_EQ(sent_total, n);
  EXPECT_TRUE(
      core::WaitDescriptor(descriptor, 0, n, nullptr, [&] { stack.service->DrainAll(); })
          .ok());
  auto filled = stack.kernel->CompleteRecv(*peer, rx, nullptr);
  EXPECT_TRUE(filled.ok());
  EXPECT_EQ(*filled, n);

  result.image = ReadAll(peer->mem(), *dst_or, n);
  const core::Engine::Stats stats = stack.service->TotalStats();
  result.kfuncs_run = stats.kfuncs_run;
  result.fused_ipc_tasks = stats.fused_ipc_tasks;
  result.fused_ipc_bytes = stats.fused_ipc_bytes;
  result.fuse = stack.service->ipc_fuse_stats();
  return result;
}

class PostedSocketDifferential : public ::testing::TestWithParam<size_t> {};

TEST_P(PostedSocketDifferential, FusedMatchesTwoStep) {
  const size_t n = GetParam();
  const PostedRunResult fused = RunPostedSocketWorkload(/*fuse=*/true, n);
  const PostedRunResult two_step = RunPostedSocketWorkload(/*fuse=*/false, n);

  // Byte identity: the modes differ in how many times the bytes move, never
  // in what lands in the window.
  ASSERT_EQ(fused.image.size(), two_step.image.size());
  EXPECT_EQ(fused.image, two_step.image);

  // KFUNC parity: the fused task's per-chunk reclaim handlers replace the
  // drain's per-skb handlers one for one, in the same order.
  EXPECT_EQ(fused.kfuncs_run, two_step.kfuncs_run);
  EXPECT_GT(fused.kfuncs_run, 0u);
  EXPECT_EQ(fused.probe, two_step.probe);

  // fused_ipc_bytes is exact: every payload byte went through a fused task in
  // fuse mode, none in the ablation.
  EXPECT_EQ(fused.fused_ipc_bytes, n);
  EXPECT_GE(fused.fused_ipc_tasks, 1u);
  EXPECT_GE(fused.fuse.fused, 1u);
  EXPECT_EQ(fused.fuse.fallbacks(), 0u);
  EXPECT_EQ(two_step.fused_ipc_bytes, 0u);
  EXPECT_EQ(two_step.fused_ipc_tasks, 0u);
  EXPECT_EQ(two_step.fuse.fused, 0u);
  EXPECT_EQ(two_step.fuse.fallbacks(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PostedSocketDifferential,
                         ::testing::Values(4 * kKiB, 40 * kKiB + 123, 1 * kMiB));

// --- binder differential -----------------------------------------------------

struct BinderRunResult {
  std::vector<uint8_t> image;
  uint64_t kfuncs_run = 0;
  uint64_t fused_ipc_bytes = 0;
  core::CopierService::IpcFuseStats fuse = {};
};

BinderRunResult RunPostedBinderWorkload(bool fuse, size_t n) {
  core::CopierConfig config;
  config.enable_ipc_fuse = fuse;
  CopierStack stack(config);
  simos::Process* server = stack.kernel->CreateProcess("server");
  stack.service->AttachProcess(server);
  simos::BinderDriver binder(stack.kernel.get());

  const uint64_t msg = stack.Map(n, "msg");
  FillPattern(stack.proc->mem(), msg, n, 41);
  auto win_or = server->mem().MapAnonymous(n, "win", true);
  EXPECT_TRUE(win_or.ok());

  core::Descriptor descriptor(n);
  EXPECT_TRUE(binder.PostReceive(*server, *win_or, n, &descriptor, nullptr).ok());
  auto txn = binder.Transact(*stack.proc, msg, n, nullptr);
  EXPECT_TRUE(txn.ok()) << txn.status().ToString();
  EXPECT_TRUE(txn->in_window);
  EXPECT_EQ(txn->window_va, *win_or);
  EXPECT_TRUE(
      core::WaitDescriptor(descriptor, 0, n, nullptr, [&] { stack.service->DrainAll(); })
          .ok());
  binder.Release(txn->id);

  BinderRunResult result;
  result.image = ReadAll(server->mem(), *win_or, n);
  const core::Engine::Stats stats = stack.service->TotalStats();
  result.kfuncs_run = stats.kfuncs_run;
  result.fused_ipc_bytes = stats.fused_ipc_bytes;
  result.fuse = stack.service->ipc_fuse_stats();
  return result;
}

TEST(BinderPostedDifferential, FusedMatchesTwoStep) {
  const size_t n = 192 * kKiB + 257;
  const BinderRunResult fused = RunPostedBinderWorkload(/*fuse=*/true, n);
  const BinderRunResult two_step = RunPostedBinderWorkload(/*fuse=*/false, n);

  EXPECT_EQ(fused.image, two_step.image);
  // Both posted paths fire exactly one buffer-reclaim KFUNC.
  EXPECT_EQ(fused.kfuncs_run, 1u);
  EXPECT_EQ(two_step.kfuncs_run, 1u);
  EXPECT_EQ(fused.fused_ipc_bytes, n);
  EXPECT_EQ(fused.fuse.fused, 1u);
  EXPECT_EQ(two_step.fused_ipc_bytes, 0u);
  EXPECT_EQ(two_step.fuse.fused + two_step.fuse.fallbacks(), 0u);
}

TEST(BinderPosted, TooSmallWindowFallsBackAndStaysPosted) {
  core::CopierConfig config;
  config.enable_ipc_fuse = true;
  CopierStack stack(config);
  simos::Process* server = stack.kernel->CreateProcess("server");
  stack.service->AttachProcess(server);
  simos::BinderDriver binder(stack.kernel.get());

  const size_t n = 8 * kKiB;
  const uint64_t msg = stack.Map(n, "msg");
  FillPattern(stack.proc->mem(), msg, n, 5);
  auto win_or = server->mem().MapAnonymous(kPageSize, "win", true);
  ASSERT_TRUE(win_or.ok());
  ASSERT_TRUE(binder.PostReceive(*server, *win_or, kPageSize, nullptr, nullptr).ok());

  // Payload exceeds the window: classic buffer bounce, window left posted.
  auto txn = binder.Transact(*stack.proc, msg, n, nullptr);
  ASSERT_TRUE(txn.ok()) << txn.status().ToString();
  EXPECT_FALSE(txn->in_window);
  stack.service->DrainAll();
  EXPECT_EQ(std::vector<uint8_t>(txn->data, txn->data + n), ReadAll(stack.proc->mem(), msg, n));
  binder.Release(txn->id);
  EXPECT_EQ(stack.service->ipc_fuse_stats().fallback_window_full, 1u);

  // A fitting transaction still takes the posted path.
  auto txn2 = binder.Transact(*stack.proc, msg, kPageSize, nullptr);
  ASSERT_TRUE(txn2.ok());
  EXPECT_TRUE(txn2->in_window);
  stack.service->DrainAll();
  EXPECT_EQ(ReadAll(server->mem(), *win_or, kPageSize),
            ReadAll(stack.proc->mem(), msg, kPageSize));
  binder.Release(txn2->id);
}

// --- fallback ladder edges ---------------------------------------------------

// Receiver posts its window mid-stream: bytes sent before the post are staged
// into the window ahead of the fused bytes, preserving stream order.
TEST(IpcFuseFallback, ReceiverPostsMidStream) {
  for (const bool fuse : {true, false}) {
    core::CopierConfig config;
    config.enable_ipc_fuse = fuse;
    CopierStack stack(config);
    simos::Process* peer = stack.kernel->CreateProcess("peer");
    stack.service->AttachProcess(peer);
    auto [tx, rx] = stack.kernel->CreateSocketPair();

    const size_t first = 24 * kKiB + 100;
    const size_t second = 32 * kKiB + 11;
    const size_t n = first + second;
    const uint64_t src = stack.Map(n, "src");
    FillPattern(stack.proc->mem(), src, n, 99);
    auto win_or = peer->mem().MapAnonymous(n, "win", true);
    ASSERT_TRUE(win_or.ok());

    // Classic send (no window posted yet), delivered before the post.
    auto s1 = stack.kernel->Send(*stack.proc, tx, src, first, nullptr);
    ASSERT_TRUE(s1.ok());
    ASSERT_EQ(*s1, first);
    stack.service->DrainAll();

    // The post stages the queued bytes into the window front.
    core::Descriptor descriptor(n);
    simos::RecvOptions ropts;
    ropts.descriptor = &descriptor;
    auto staged = stack.kernel->PostRecv(*peer, rx, *win_or, n, nullptr, ropts);
    ASSERT_TRUE(staged.ok()) << staged.status().ToString();
    EXPECT_EQ(*staged, first);

    // The rest goes fused (or posted two-step in the ablation), behind it.
    auto s2 = stack.kernel->Send(*stack.proc, tx, src + first, second, nullptr);
    ASSERT_TRUE(s2.ok());
    ASSERT_EQ(*s2, second);
    ASSERT_TRUE(
        core::WaitDescriptor(descriptor, 0, n, nullptr, [&] { stack.service->DrainAll(); })
            .ok());
    auto filled = stack.kernel->CompleteRecv(*peer, rx, nullptr);
    ASSERT_TRUE(filled.ok());
    EXPECT_EQ(*filled, n);
    EXPECT_EQ(ReadAll(peer->mem(), *win_or, n), ReadAll(stack.proc->mem(), src, n));
    if (fuse) {
      const auto fuse_stats = stack.service->ipc_fuse_stats();
      EXPECT_EQ(fuse_stats.fused, 1u);
      EXPECT_EQ(fuse_stats.fallback_not_posted, 1u);  // the pre-post send
      EXPECT_EQ(stack.service->TotalStats().fused_ipc_bytes, second);
    }
  }
}

// Skb pool exhausted while staged bytes hold every token: the posted send
// reports ResourceExhausted (counted as a pool-exhaustion fallback, distinct
// from not-posted) and succeeds once reclaim KFUNCs refill the pool.
TEST(IpcFuseFallback, PoolExhaustedDuringStagedDrain) {
  simos::SimKernel::Config kconfig;
  kconfig.skb_pool_size = 4;  // 16 KiB of skbs
  simos::SimKernel kernel(kconfig);
  core::CopierService::Options options;
  options.config.enable_ipc_fuse = true;
  core::CopierService service(std::move(options));
  core::CopierLinux glue(&service, &kernel);
  glue.Install();
  simos::Process* sender = kernel.CreateProcess("sender");
  simos::Process* receiver = kernel.CreateProcess("receiver");
  service.AttachProcess(sender);
  service.AttachProcess(receiver);
  auto [tx, rx] = kernel.CreateSocketPair();

  const size_t half = 4 * simos::kMtu;  // exactly the pool
  const size_t n = 2 * half;
  auto src_or = sender->mem().MapAnonymous(n, "src", true);
  auto win_or = receiver->mem().MapAnonymous(n, "win", true);
  ASSERT_TRUE(src_or.ok() && win_or.ok());
  FillPattern(sender->mem(), *src_or, n, 3);

  // Classic send takes the whole pool; deliver the skbs to the peer.
  auto s1 = kernel.Send(*sender, tx, *src_or, half, nullptr);
  ASSERT_TRUE(s1.ok());
  ASSERT_EQ(*s1, half);
  service.DrainAll();

  // Post the window: the queued skbs are staged into it, but their reclaim
  // KFUNCs have not run yet — the pool is still empty.
  auto staged = kernel.PostRecv(*receiver, rx, *win_or, n, nullptr, {});
  ASSERT_TRUE(staged.ok());
  EXPECT_EQ(*staged, half);
  EXPECT_EQ(kernel.skb_pool().available(), 0u);

  auto blocked = kernel.Send(*sender, tx, *src_or + half, half, nullptr);
  EXPECT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(service.ipc_fuse_stats().fallback_pool_exhausted, 1u);
  EXPECT_EQ(service.ipc_fuse_stats().fallback_not_posted, 1u);  // pre-post send
  // Satellite: the pool's own stats tell exhaustion pressure apart.
  EXPECT_GE(kernel.skb_pool().acquire_failures(), 1u);
  EXPECT_EQ(kernel.skb_pool().low_watermark(), 0u);

  // Reclaims refill the pool; the retry goes fused.
  service.DrainAll();
  EXPECT_EQ(kernel.skb_pool().available(), 4u);
  auto s2 = kernel.Send(*sender, tx, *src_or + half, half, nullptr);
  ASSERT_TRUE(s2.ok());
  ASSERT_EQ(*s2, half);
  service.DrainAll();
  EXPECT_EQ(service.ipc_fuse_stats().fused, 1u);
  auto filled = kernel.CompleteRecv(*receiver, rx, nullptr);
  ASSERT_TRUE(filled.ok());
  EXPECT_EQ(*filled, n);
  EXPECT_EQ(ReadAll(receiver->mem(), *win_or, n), ReadAll(sender->mem(), *src_or, n));
}

// Aborting a fused task in flight reclaims every flow-control token and the
// sender's write lock, and never marks the window descriptor ready.
TEST(IpcFuseFallback, AbortInFlightFusedTask) {
  core::CopierConfig config;
  config.enable_ipc_fuse = true;
  CopierStack stack(config);
  simos::Process* peer = stack.kernel->CreateProcess("peer");
  stack.service->AttachProcess(peer);
  auto [tx, rx] = stack.kernel->CreateSocketPair();

  const size_t n = 16 * kKiB;  // 4 chunks
  const uint64_t src = stack.Map(n, "src");
  FillPattern(stack.proc->mem(), src, n, 77);
  auto win_or = peer->mem().MapAnonymous(n, "win", true);
  ASSERT_TRUE(win_or.ok());
  const std::vector<uint8_t> before = ReadAll(peer->mem(), *win_or, n);

  core::Descriptor descriptor(n);
  simos::RecvOptions ropts;
  ropts.descriptor = &descriptor;
  ASSERT_TRUE(stack.kernel->PostRecv(*peer, rx, *win_or, n, nullptr, ropts).ok());
  const size_t pool_full = stack.kernel->skb_pool().available();
  auto sent = stack.kernel->Send(*stack.proc, tx, src, n, nullptr);
  ASSERT_TRUE(sent.ok());
  ASSERT_EQ(*sent, n);
  ASSERT_EQ(stack.service->ipc_fuse_stats().fused, 1u);
  EXPECT_TRUE(stack.proc->mem().WriteLockedForCopy(src, n));

  // Abort the in-flight fused task (it rides the sender's client; its dst is
  // the receiver's window).
  core::SyncTask sync;
  sync.kind = core::SyncTask::Kind::kAbort;
  sync.addr = core::MemRef::User(&peer->mem(), *win_or);
  sync.length = n;
  ASSERT_TRUE(stack.client->default_pair().user.sync_q.TryPush(std::move(sync)));
  stack.service->DrainAll();

  // Tokens returned by the fired reclaim handlers; source lock released; no
  // bytes moved, no fused bytes counted.
  EXPECT_EQ(stack.kernel->skb_pool().available(), pool_full);
  EXPECT_FALSE(stack.proc->mem().WriteLockedForCopy(src, n));
  EXPECT_EQ(ReadAll(peer->mem(), *win_or, n), before);
  EXPECT_EQ(stack.service->TotalStats().fused_ipc_bytes, 0u);
  // The sender can write its buffer again without blocking.
  FillPattern(stack.proc->mem(), src, n, 78);
}

// Alternating posted and classic transfers on one socket keep stream order in
// both modes.
TEST(IpcFuseFallback, MixedFusedAndClassicOrdering) {
  std::vector<uint8_t> images[2];
  for (const bool fuse : {true, false}) {
    core::CopierConfig config;
    config.enable_ipc_fuse = fuse;
    CopierStack stack(config);
    simos::Process* peer = stack.kernel->CreateProcess("peer");
    stack.service->AttachProcess(peer);
    auto [tx, rx] = stack.kernel->CreateSocketPair();

    const size_t chunk = 12 * kKiB + 34;
    const int rounds = 4;
    const size_t n = chunk * rounds;
    const uint64_t src = stack.Map(n, "src");
    FillPattern(stack.proc->mem(), src, n, 1234);
    auto dst_or = peer->mem().MapAnonymous(n, "dst", true);
    ASSERT_TRUE(dst_or.ok());

    for (int r = 0; r < rounds; ++r) {
      const uint64_t s = src + r * chunk;
      const uint64_t d = *dst_or + r * chunk;
      if (r % 2 == 0) {
        // Posted round.
        ASSERT_TRUE(stack.kernel->PostRecv(*peer, rx, d, chunk, nullptr, {}).ok());
        size_t sent_total = 0;
        while (sent_total < chunk) {
          auto sent = stack.kernel->Send(*stack.proc, tx, s + sent_total, chunk - sent_total,
                                         nullptr);
          ASSERT_TRUE(sent.ok());
          sent_total += *sent;
          stack.service->DrainAll();
        }
        auto filled = stack.kernel->CompleteRecv(*peer, rx, nullptr);
        ASSERT_TRUE(filled.ok());
        ASSERT_EQ(*filled, chunk);
      } else {
        // Classic round.
        size_t sent_total = 0;
        while (sent_total < chunk) {
          auto sent = stack.kernel->Send(*stack.proc, tx, s + sent_total, chunk - sent_total,
                                         nullptr);
          ASSERT_TRUE(sent.ok());
          sent_total += *sent;
          stack.service->DrainAll();
        }
        size_t received = 0;
        while (received < chunk) {
          auto got = stack.kernel->Recv(*peer, rx, d + received, chunk - received, nullptr);
          ASSERT_TRUE(got.ok());
          received += *got;
          stack.service->DrainAll();
        }
      }
    }
    images[fuse ? 0 : 1] = ReadAll(peer->mem(), *dst_or, n);
    EXPECT_EQ(images[fuse ? 0 : 1], ReadAll(stack.proc->mem(), src, n));
  }
  EXPECT_EQ(images[0], images[1]);
}

TEST(IpcFuse, RecvRejectedWhileWindowPosted) {
  CopierStack stack;
  simos::Process* peer = stack.kernel->CreateProcess("peer");
  stack.service->AttachProcess(peer);
  auto [tx, rx] = stack.kernel->CreateSocketPair();
  (void)tx;
  auto win_or = peer->mem().MapAnonymous(2 * kPageSize, "win", true);
  ASSERT_TRUE(win_or.ok());
  ASSERT_TRUE(stack.kernel->PostRecv(*peer, rx, *win_or, kPageSize, nullptr, {}).ok());
  auto r = stack.kernel->Recv(*peer, rx, *win_or, kPageSize, nullptr);
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  // A second post extends the receive ring (enable_recv_ring default).
  ASSERT_TRUE(
      stack.kernel->PostRecv(*peer, rx, *win_or + kPageSize, kPageSize, nullptr, {}).ok());
  for (int i = 0; i < 2; ++i) {
    auto filled = stack.kernel->CompleteRecv(*peer, rx, nullptr);
    ASSERT_TRUE(filled.ok());
    EXPECT_EQ(*filled, 0u);
  }
  // With both windows reaped, Recv works again (EAGAIN on empty).
  EXPECT_EQ(stack.kernel->Recv(*peer, rx, *win_or, kPageSize, nullptr).status().code(),
            StatusCode::kUnavailable);
}

TEST(IpcFuse, DoublePostRejectedWithoutRecvRing) {
  core::CopierConfig config;
  config.enable_recv_ring = false;
  CopierStack stack(config);
  simos::Process* peer = stack.kernel->CreateProcess("peer");
  stack.service->AttachProcess(peer);
  auto [tx, rx] = stack.kernel->CreateSocketPair();
  (void)tx;
  auto win_or = peer->mem().MapAnonymous(kPageSize, "win", true);
  ASSERT_TRUE(win_or.ok());
  ASSERT_TRUE(stack.kernel->PostRecv(*peer, rx, *win_or, kPageSize, nullptr, {}).ok());
  auto p = stack.kernel->PostRecv(*peer, rx, *win_or, kPageSize, nullptr, {});
  EXPECT_EQ(p.status().code(), StatusCode::kFailedPrecondition);
  auto filled = stack.kernel->CompleteRecv(*peer, rx, nullptr);
  ASSERT_TRUE(filled.ok());
  EXPECT_EQ(*filled, 0u);
  EXPECT_EQ(stack.kernel->Recv(*peer, rx, *win_or, kPageSize, nullptr).status().code(),
            StatusCode::kUnavailable);
}

// A sender store into the in-flight range blocks until the fused copy lands:
// the receiver observes the pre-store snapshot, exactly like the two-step
// path's eager staging.
TEST(IpcFuse, SenderWriteProtectedUntilCopyLands) {
  core::CopierConfig config;
  config.enable_ipc_fuse = true;
  CopierStack stack(config);
  simos::Process* peer = stack.kernel->CreateProcess("peer");
  stack.service->AttachProcess(peer);
  auto [tx, rx] = stack.kernel->CreateSocketPair();

  const size_t n = 64 * kKiB;
  const uint64_t src = stack.Map(n, "src");
  FillPattern(stack.proc->mem(), src, n, 500);
  const std::vector<uint8_t> snapshot = ReadAll(stack.proc->mem(), src, n);
  auto win_or = peer->mem().MapAnonymous(n, "win", true);
  ASSERT_TRUE(win_or.ok());

  ASSERT_TRUE(stack.kernel->PostRecv(*peer, rx, *win_or, n, nullptr, {}).ok());
  auto sent = stack.kernel->Send(*stack.proc, tx, src, n, nullptr);
  ASSERT_TRUE(sent.ok());
  ASSERT_EQ(*sent, n);
  ASSERT_TRUE(stack.proc->mem().WriteLockedForCopy(src, n));

  // The store blocks, pumping the service until the copy completes.
  const std::vector<uint8_t> overwrite(n, 0xEE);
  ASSERT_TRUE(stack.proc->mem().WriteBytes(src, overwrite.data(), n).ok());
  EXPECT_GE(stack.proc->mem().copy_lock_waits(), 1u);
  EXPECT_FALSE(stack.proc->mem().WriteLockedForCopy(src, n));

  stack.service->DrainAll();
  auto filled = stack.kernel->CompleteRecv(*peer, rx, nullptr);
  ASSERT_TRUE(filled.ok());
  EXPECT_EQ(*filled, n);
  EXPECT_EQ(ReadAll(peer->mem(), *win_or, n), snapshot);       // pre-store image
  EXPECT_EQ(ReadAll(stack.proc->mem(), src, n), overwrite);    // store landed after
}

// Exact fused-byte accounting across several posted transfers.
TEST(IpcFuse, FusedBytesAccountingIsExact) {
  core::CopierConfig config;
  config.enable_ipc_fuse = true;
  CopierStack stack(config);
  simos::Process* peer = stack.kernel->CreateProcess("peer");
  stack.service->AttachProcess(peer);
  auto [tx, rx] = stack.kernel->CreateSocketPair();

  size_t expected = 0;
  uint64_t windows = 0;
  for (const size_t n : {size_t{4 * kKiB}, size_t{9 * kKiB + 17}, size_t{256 * kKiB}}) {
    const uint64_t src = stack.Map(n, "src");
    FillPattern(stack.proc->mem(), src, n, n);
    auto win_or = peer->mem().MapAnonymous(n, "win", true);
    ASSERT_TRUE(win_or.ok());
    ASSERT_TRUE(stack.kernel->PostRecv(*peer, rx, *win_or, n, nullptr, {}).ok());
    size_t sent_total = 0;
    while (sent_total < n) {
      auto sent = stack.kernel->Send(*stack.proc, tx, src + sent_total, n - sent_total,
                                     nullptr);
      ASSERT_TRUE(sent.ok());
      sent_total += *sent;
      stack.service->DrainAll();
    }
    auto filled = stack.kernel->CompleteRecv(*peer, rx, nullptr);
    ASSERT_TRUE(filled.ok());
    ASSERT_EQ(*filled, n);
    EXPECT_EQ(ReadAll(peer->mem(), *win_or, n), ReadAll(stack.proc->mem(), src, n));
    expected += n;
    ++windows;
    EXPECT_EQ(stack.service->TotalStats().fused_ipc_bytes, expected);
  }
  EXPECT_EQ(stack.service->ipc_fuse_stats().fused, windows);
}

// Threaded service: the fused path's lock resolver yields to the copier
// threads instead of pumping (TSan coverage; all syscalls on this thread).
TEST(IpcFuseThreaded, PostedTransferCompletes) {
  simos::SimKernel kernel;
  core::CopierService::Options options;
  options.mode = core::CopierService::Mode::kThreaded;
  options.config.enable_ipc_fuse = true;
  options.config.max_threads = 2;
  options.config.min_threads = 2;
  core::CopierService service(std::move(options));
  core::CopierLinux glue(&service, &kernel);
  glue.Install();
  service.Start();
  simos::Process* sender = kernel.CreateProcess("sender");
  simos::Process* receiver = kernel.CreateProcess("receiver");
  service.AttachProcess(sender);
  service.AttachProcess(receiver);
  auto [tx, rx] = kernel.CreateSocketPair();

  const size_t n = 256 * kKiB + 123;
  auto src_or = sender->mem().MapAnonymous(n, "src", true);
  auto win_or = receiver->mem().MapAnonymous(n, "win", true);
  ASSERT_TRUE(src_or.ok() && win_or.ok());
  FillPattern(sender->mem(), *src_or, n, 2024);

  core::Descriptor descriptor(n);
  simos::RecvOptions ropts;
  ropts.descriptor = &descriptor;
  ASSERT_TRUE(kernel.PostRecv(*receiver, rx, *win_or, n, nullptr, ropts).ok());
  size_t sent_total = 0;
  while (sent_total < n) {
    auto sent = kernel.Send(*sender, tx, *src_or + sent_total, n - sent_total, nullptr);
    ASSERT_TRUE(sent.ok()) << sent.status().ToString();
    sent_total += *sent;
  }
  // Mid-flight overwrite: must block until the snapshot landed.
  const std::vector<uint8_t> snapshot = ReadAll(sender->mem(), *src_or, n);
  const std::vector<uint8_t> overwrite(n, 0xAB);
  ASSERT_TRUE(sender->mem().WriteBytes(*src_or, overwrite.data(), n).ok());

  ASSERT_TRUE(core::WaitDescriptor(descriptor, 0, n, nullptr, nullptr).ok());
  auto filled = kernel.CompleteRecv(*receiver, rx, nullptr);
  ASSERT_TRUE(filled.ok());
  EXPECT_EQ(*filled, n);
  EXPECT_EQ(ReadAll(receiver->mem(), *win_or, n), snapshot);
  service.Stop();
}

// --- receive-ring stress (DESIGN.md §12, multi-window rings) -----------------

// Pipelined sender against a FIFO receive ring that is smaller than the
// burst: `messages` back-to-back sends against `ring` pre-posted windows.
// Sends beyond the ring fall back classic; reaping a window re-posts the next
// one, whose staged drain pulls the queued bytes in — stream order holds
// end to end.
struct RingRunResult {
  std::vector<uint8_t> image;  // reaped windows, concatenated in stream order
  uint64_t kfuncs_run = 0;
  std::vector<uint32_t> probe;
  core::CopierService::IpcFuseStats fuse = {};
};

RingRunResult RunRingPipelinedWorkload(bool fuse, size_t msg, size_t ring, size_t messages) {
  core::CopierConfig config;
  config.enable_ipc_fuse = fuse;
  CopierStack stack(config);
  simos::Process* peer = stack.kernel->CreateProcess("peer");
  stack.service->AttachProcess(peer);
  auto [tx, rx] = stack.kernel->CreateSocketPair();

  const size_t total = msg * messages;
  const uint64_t src = stack.Map(total, "src");
  FillPattern(stack.proc->mem(), src, total, 0xA11CE + msg);
  auto win_or = peer->mem().MapAnonymous(total, "win", true);
  EXPECT_TRUE(win_or.ok());

  RingRunResult result;
  stack.kernel->SetKfuncProbe([&](uint32_t id) { result.probe.push_back(id); });

  std::vector<std::unique_ptr<core::Descriptor>> descriptors;
  for (size_t i = 0; i < messages; ++i) {
    descriptors.push_back(std::make_unique<core::Descriptor>(msg));
  }
  std::vector<simos::SimKernel::RecvWindowSpec> specs;
  for (size_t i = 0; i < std::min(ring, messages); ++i) {
    specs.push_back({*win_or + i * msg, msg, descriptors[i].get()});
  }
  EXPECT_TRUE(stack.kernel->PostRecvRing(*peer, rx, specs, nullptr).ok());

  // Burst every message before reaping anything (queue depth = messages).
  for (size_t i = 0; i < messages; ++i) {
    size_t sent_total = 0;
    while (sent_total < msg) {
      auto sent =
          stack.kernel->Send(*stack.proc, tx, src + i * msg + sent_total, msg - sent_total,
                             nullptr);
      EXPECT_TRUE(sent.ok()) << sent.status().ToString();
      sent_total += *sent;
      stack.service->DrainAll();
    }
  }

  // Reap FIFO; each reap re-posts the next window so the classic-queued tail
  // stages in behind the fused head.
  for (size_t i = 0; i < messages; ++i) {
    EXPECT_TRUE(core::WaitDescriptor(*descriptors[i], 0, msg, nullptr,
                                     [&] { stack.service->DrainAll(); })
                    .ok());
    auto filled = stack.kernel->CompleteRecv(*peer, rx, nullptr);
    EXPECT_TRUE(filled.ok()) << filled.status().ToString();
    EXPECT_EQ(*filled, msg);
    const size_t next = ring + i;
    if (next < messages) {
      simos::RecvOptions ropts;
      ropts.descriptor = descriptors[next].get();
      EXPECT_TRUE(
          stack.kernel->PostRecv(*peer, rx, *win_or + next * msg, msg, nullptr, ropts).ok());
    }
  }

  result.image = ReadAll(peer->mem(), *win_or, total);
  result.kfuncs_run = stack.service->TotalStats().kfuncs_run;
  result.fuse = stack.service->ipc_fuse_stats();
  return result;
}

TEST(RecvRingStress, PipelinedDepthBeyondRingDifferential) {
  const size_t msg = 24 * kKiB + 96;
  const size_t ring = 2;
  const size_t messages = 5;  // depth > ring: 3 messages overflow the ring
  const RingRunResult fused = RunRingPipelinedWorkload(/*fuse=*/true, msg, ring, messages);
  const RingRunResult staged = RunRingPipelinedWorkload(/*fuse=*/false, msg, ring, messages);

  EXPECT_EQ(fused.image, staged.image);
  EXPECT_EQ(fused.kfuncs_run, staged.kfuncs_run);
  EXPECT_GT(fused.kfuncs_run, 0u);
  EXPECT_EQ(fused.probe, staged.probe);

  // The fused arm's ladder: the first `ring` messages fuse, the overflow
  // falls back window-full, and every re-post behind a live ring counts.
  EXPECT_GE(fused.fuse.fused, ring);
  EXPECT_GE(fused.fuse.fallback_window_full, 1u);
  EXPECT_GE(fused.fuse.ring_windows_posted, ring - 1);
}

// A whole pipelined burst landing in one ring: every message fuses and a
// send spanning two windows rolls over without falling back.
TEST(RecvRingStress, BurstWithinRingAllFused) {
  core::CopierConfig config;
  config.enable_ipc_fuse = true;
  CopierStack stack(config);
  simos::Process* peer = stack.kernel->CreateProcess("peer");
  stack.service->AttachProcess(peer);
  auto [tx, rx] = stack.kernel->CreateSocketPair();

  const size_t msg = 16 * kKiB;
  const size_t depth = 4;
  const uint64_t src = stack.Map(msg * depth, "src");
  FillPattern(stack.proc->mem(), src, msg * depth, 31337);
  auto win_or = peer->mem().MapAnonymous(msg * depth, "win", true);
  ASSERT_TRUE(win_or.ok());

  std::vector<std::unique_ptr<core::Descriptor>> descriptors;
  std::vector<simos::SimKernel::RecvWindowSpec> specs;
  for (size_t i = 0; i < depth; ++i) {
    descriptors.push_back(std::make_unique<core::Descriptor>(msg));
    specs.push_back({*win_or + i * msg, msg, descriptors[i].get()});
  }
  ASSERT_TRUE(stack.kernel->PostRecvRing(*peer, rx, specs, nullptr).ok());

  // One double-width send (rolls over window 0 -> 1), then two singles.
  auto wide = stack.kernel->Send(*stack.proc, tx, src, 2 * msg, nullptr);
  ASSERT_TRUE(wide.ok());
  ASSERT_EQ(*wide, 2 * msg);
  for (size_t i = 2; i < depth; ++i) {
    auto sent = stack.kernel->Send(*stack.proc, tx, src + i * msg, msg, nullptr);
    ASSERT_TRUE(sent.ok());
    ASSERT_EQ(*sent, msg);
  }
  for (size_t i = 0; i < depth; ++i) {
    ASSERT_TRUE(core::WaitDescriptor(*descriptors[i], 0, msg, nullptr,
                                     [&] { stack.service->DrainAll(); })
                    .ok());
    auto filled = stack.kernel->CompleteRecv(*peer, rx, nullptr);
    ASSERT_TRUE(filled.ok());
    EXPECT_EQ(*filled, msg);
  }
  EXPECT_EQ(ReadAll(peer->mem(), *win_or, msg * depth),
            ReadAll(stack.proc->mem(), src, msg * depth));
  const auto fuse_stats = stack.service->ipc_fuse_stats();
  EXPECT_EQ(fuse_stats.fallbacks(), 0u);
  EXPECT_EQ(fuse_stats.fused_rate(), 1.0);
  EXPECT_GE(fuse_stats.ring_rollovers, 1u);
  EXPECT_EQ(fuse_stats.ring_windows_posted, depth - 1);
}

// Aborting a fused send mid-stream leaves the rest of the ring usable: the
// next message lands in the following window, tokens and source locks all
// come back, and the aborted window's descriptor settles without bytes.
TEST(RecvRingStress, MidStreamAbortLeavesRingUsable) {
  core::CopierConfig config;
  config.enable_ipc_fuse = true;
  CopierStack stack(config);
  simos::Process* peer = stack.kernel->CreateProcess("peer");
  stack.service->AttachProcess(peer);
  auto [tx, rx] = stack.kernel->CreateSocketPair();

  const size_t msg = 16 * kKiB;
  const uint64_t src = stack.Map(2 * msg, "src");
  FillPattern(stack.proc->mem(), src, 2 * msg, 555);
  auto win_or = peer->mem().MapAnonymous(2 * msg, "win", true);
  ASSERT_TRUE(win_or.ok());
  const std::vector<uint8_t> win0_before = ReadAll(peer->mem(), *win_or, msg);

  core::Descriptor d0(msg);
  core::Descriptor d1(msg);
  const std::vector<simos::SimKernel::RecvWindowSpec> specs = {
      {*win_or, msg, &d0}, {*win_or + msg, msg, &d1}};
  ASSERT_TRUE(stack.kernel->PostRecvRing(*peer, rx, specs, nullptr).ok());
  const size_t pool_full = stack.kernel->skb_pool().available();

  // First message in flight, then aborted before the engine runs it.
  auto s0 = stack.kernel->Send(*stack.proc, tx, src, msg, nullptr);
  ASSERT_TRUE(s0.ok());
  ASSERT_EQ(*s0, msg);
  core::SyncTask sync;
  sync.kind = core::SyncTask::Kind::kAbort;
  sync.addr = core::MemRef::User(&peer->mem(), *win_or);
  sync.length = msg;
  ASSERT_TRUE(stack.client->default_pair().user.sync_q.TryPush(std::move(sync)));
  stack.service->DrainAll();
  EXPECT_EQ(stack.kernel->skb_pool().available(), pool_full);
  EXPECT_FALSE(stack.proc->mem().WriteLockedForCopy(src, msg));

  // Second message: the aborted window is consumed, the ring moves on.
  auto s1 = stack.kernel->Send(*stack.proc, tx, src + msg, msg, nullptr);
  ASSERT_TRUE(s1.ok());
  ASSERT_EQ(*s1, msg);
  ASSERT_TRUE(
      core::WaitDescriptor(d1, 0, msg, nullptr, [&] { stack.service->DrainAll(); }).ok());
  // An explicit abort settles the descriptor as complete, not failed: the
  // client discarded the copy and promised not to read the bytes (§4.4), and
  // csync_all must not wait forever on it. MarkFailed is reserved for faults.
  EXPECT_TRUE(d0.RangeReady(0, msg));
  EXPECT_FALSE(d0.failed());
  EXPECT_FALSE(d1.failed());

  auto reap0 = stack.kernel->CompleteRecv(*peer, rx, nullptr);
  ASSERT_TRUE(reap0.ok());  // aborted window: reaped, bytes untouched
  EXPECT_EQ(ReadAll(peer->mem(), *win_or, msg), win0_before);
  auto reap1 = stack.kernel->CompleteRecv(*peer, rx, nullptr);
  ASSERT_TRUE(reap1.ok());
  EXPECT_EQ(*reap1, msg);
  EXPECT_EQ(ReadAll(peer->mem(), *win_or + msg, msg),
            ReadAll(stack.proc->mem(), src + msg, msg));
  EXPECT_EQ(stack.kernel->skb_pool().available(), pool_full);
  EXPECT_EQ(stack.service->ipc_fuse_stats().fused, 2u);
}

// Connection churn under pipelined ring traffic: fresh socket pairs mid-run,
// every round byte-verified, all flow-control tokens back at the end.
TEST(RecvRingStress, ConnectionChurnDifferential) {
  const size_t msg = 12 * kKiB + 40;
  const int rounds = 5;
  std::vector<uint8_t> images[2];
  uint64_t kfuncs[2] = {0, 0};
  std::vector<uint32_t> probes[2];
  for (const bool fuse : {true, false}) {
    core::CopierConfig config;
    config.enable_ipc_fuse = fuse;
    CopierStack stack(config);
    simos::Process* peer = stack.kernel->CreateProcess("peer");
    stack.service->AttachProcess(peer);
    const size_t pool_full = stack.kernel->skb_pool().available();

    std::vector<uint32_t> probe;
    stack.kernel->SetKfuncProbe([&](uint32_t id) { probe.push_back(id); });
    const uint64_t src = stack.Map(2 * msg * rounds, "src");
    FillPattern(stack.proc->mem(), src, 2 * msg * rounds, 9090);
    auto win_or = peer->mem().MapAnonymous(2 * msg * rounds, "win", true);
    ASSERT_TRUE(win_or.ok());

    std::vector<uint8_t> image;
    for (int round = 0; round < rounds; ++round) {
      // Reconnect: a fresh pair each round (the serve harness churn shape).
      auto [tx, rx] = stack.kernel->CreateSocketPair();
      const uint64_t rsrc = src + 2 * msg * round;
      const uint64_t rwin = *win_or + 2 * msg * round;
      core::Descriptor d0(msg);
      core::Descriptor d1(msg);
      const std::vector<simos::SimKernel::RecvWindowSpec> specs = {
          {rwin, msg, &d0}, {rwin + msg, msg, &d1}};
      ASSERT_TRUE(stack.kernel->PostRecvRing(*peer, rx, specs, nullptr).ok());
      for (int i = 0; i < 2; ++i) {
        size_t sent_total = 0;
        while (sent_total < msg) {
          auto sent = stack.kernel->Send(*stack.proc, tx, rsrc + i * msg + sent_total,
                                         msg - sent_total, nullptr);
          ASSERT_TRUE(sent.ok());
          sent_total += *sent;
          stack.service->DrainAll();
        }
      }
      for (core::Descriptor* d : {&d0, &d1}) {
        ASSERT_TRUE(core::WaitDescriptor(*d, 0, msg, nullptr,
                                         [&] { stack.service->DrainAll(); })
                        .ok());
        auto filled = stack.kernel->CompleteRecv(*peer, rx, nullptr);
        ASSERT_TRUE(filled.ok());
        ASSERT_EQ(*filled, msg);
      }
      const std::vector<uint8_t> got = ReadAll(peer->mem(), rwin, 2 * msg);
      EXPECT_EQ(got, ReadAll(stack.proc->mem(), rsrc, 2 * msg));
      image.insert(image.end(), got.begin(), got.end());
    }
    EXPECT_EQ(stack.kernel->skb_pool().available(), pool_full);
    if (fuse) {
      EXPECT_EQ(stack.service->ipc_fuse_stats().fused, 2u * rounds);
      EXPECT_EQ(stack.service->ipc_fuse_stats().fallbacks(), 0u);
    }
    images[fuse ? 0 : 1] = std::move(image);
    kfuncs[fuse ? 0 : 1] = stack.service->TotalStats().kfuncs_run;
    probes[fuse ? 0 : 1] = std::move(probe);
  }
  EXPECT_EQ(images[0], images[1]);
  EXPECT_EQ(kfuncs[0], kfuncs[1]);
  EXPECT_EQ(probes[0], probes[1]);
}

// --- proxy-transparent forwarding (DESIGN.md §12) ----------------------------

struct ForwardRunResult {
  std::vector<uint8_t> kv_image;
  uint64_t kfuncs_run = 0;
  std::vector<uint32_t> probe;
  core::CopierService::IpcFuseStats fuse = {};
};

// Client ships "FWD <id> <len>\r\n<body>" into the proxy's forward-posted
// window; fused arm: the kernel re-frames it as the "VIA" parcel and splices
// it straight into the KV server's binder window. Ablation: the message lands
// in the proxy, which parses, marshals and transacts app-level — the exact
// work the forward rule replaces.
ForwardRunResult RunForwardWorkload(bool fuse, size_t body_len, bool split_send) {
  core::CopierConfig config;
  config.enable_ipc_fuse = fuse;
  CopierStack stack(config);
  simos::Process* proxy = stack.kernel->CreateProcess("proxy");
  simos::Process* kv = stack.kernel->CreateProcess("kv");
  stack.service->AttachProcess(proxy);
  stack.service->AttachProcess(kv);
  auto [tx, rx] = stack.kernel->CreateSocketPair();
  simos::BinderDriver binder(stack.kernel.get());

  std::vector<uint8_t> body(body_len);
  for (size_t i = 0; i < body_len; ++i) {
    body[i] = static_cast<uint8_t>(i * 131 + 5);
  }
  const int upstream = 9;
  const std::vector<uint8_t> fwd_msg = apps::MiniProxy::BuildMessage(upstream, body);
  const size_t n = fwd_msg.size();
  char via[64];
  const int via_len = std::snprintf(via, sizeof(via), "VIA %d %zu\r\n", upstream, body_len);
  const size_t parcel_len = 4 + static_cast<size_t>(via_len) + body_len;

  const uint64_t src = stack.Map(n, "fwd-src");
  EXPECT_TRUE(stack.proc->mem().WriteBytes(src, fwd_msg.data(), n).ok());
  auto pwin_or = proxy->mem().MapAnonymous(n, "proxy-win", true);
  auto kv_win_or = kv->mem().MapAnonymous(parcel_len, "kv-win", true);
  auto marshal_or = proxy->mem().MapAnonymous(parcel_len, "marshal", true);
  EXPECT_TRUE(pwin_or.ok() && kv_win_or.ok() && marshal_or.ok());

  ForwardRunResult result;
  stack.kernel->SetKfuncProbe([&](uint32_t id) { result.probe.push_back(id); });

  core::Descriptor d2(parcel_len);
  EXPECT_TRUE(binder.PostReceive(*kv, *kv_win_or, parcel_len, &d2, nullptr).ok());
  core::Descriptor d1(n);
  simos::RecvOptions ropts;
  ropts.descriptor = &d1;
  rx->SetForwardRule(apps::MiniProxy::MakeParcelForwardRule(&binder));
  EXPECT_TRUE(stack.kernel->PostRecv(*proxy, rx, *pwin_or, n, nullptr, ropts).ok());

  if (split_send) {
    // A partial frame first: the rule must decline (fallback_forward) and the
    // bytes land in the window app-level instead.
    const size_t half = n / 2;
    auto first = stack.kernel->Send(*stack.proc, tx, src, half, nullptr);
    EXPECT_TRUE(first.ok() && *first == half);
    auto rest = stack.kernel->Send(*stack.proc, tx, src + half, n - half, nullptr);
    EXPECT_TRUE(rest.ok() && *rest == n - half);
  } else {
    auto sent = stack.kernel->Send(*stack.proc, tx, src, n, nullptr);
    EXPECT_TRUE(sent.ok()) << sent.status().ToString();
    EXPECT_EQ(*sent, n);
  }
  EXPECT_TRUE(
      core::WaitDescriptor(d1, 0, n, nullptr, [&] { stack.service->DrainAll(); }).ok());
  auto reaped = stack.kernel->CompleteRecv(*proxy, rx, nullptr);
  EXPECT_TRUE(reaped.ok());
  EXPECT_EQ(*reaped, n);

  if (stack.service->ipc_fuse_stats().forward_fused == 0) {
    // App-level completion: what the forward rule fuses away.
    const std::vector<uint8_t> landed = ReadAll(proxy->mem(), *pwin_or, n);
    EXPECT_EQ(landed, fwd_msg);
    apps::ParcelWriter writer;
    std::string item(via, via + via_len);
    item.append(body.begin(), body.end());
    writer.WriteString(item);
    EXPECT_EQ(writer.bytes().size(), parcel_len);
    EXPECT_TRUE(proxy->mem().WriteBytes(*marshal_or, writer.bytes().data(), parcel_len).ok());
    auto txn = binder.Transact(*proxy, *marshal_or, parcel_len, nullptr);
    EXPECT_TRUE(txn.ok()) << txn.status().ToString();
    EXPECT_TRUE(txn->in_window);
    EXPECT_TRUE(core::WaitDescriptor(d2, 0, parcel_len, nullptr,
                                     [&] { stack.service->DrainAll(); })
                    .ok());
    binder.Release(txn->id);
  } else {
    EXPECT_TRUE(core::WaitDescriptor(d2, 0, parcel_len, nullptr,
                                     [&] { stack.service->DrainAll(); })
                    .ok());
  }
  result.kv_image = ReadAll(kv->mem(), *kv_win_or, parcel_len);
  result.kfuncs_run = stack.service->TotalStats().kfuncs_run;
  result.fuse = stack.service->ipc_fuse_stats();
  return result;
}

TEST(ForwardFuse, FusedMatchesAppLevelPath) {
  const size_t body_len = 96 * kKiB + 31;
  const ForwardRunResult fused =
      RunForwardWorkload(/*fuse=*/true, body_len, /*split_send=*/false);
  const ForwardRunResult staged =
      RunForwardWorkload(/*fuse=*/false, body_len, /*split_send=*/false);

  // The KV server sees the identical parcel either way.
  EXPECT_EQ(fused.kv_image, staged.kv_image);
  // KFUNC parity: k skb-chunk reclaims + 1 binder release on both arms, and
  // the socket probes fire the same skb ids in the same order.
  EXPECT_EQ(fused.kfuncs_run, staged.kfuncs_run);
  EXPECT_GT(fused.kfuncs_run, 1u);
  EXPECT_EQ(fused.probe, staged.probe);

  EXPECT_EQ(fused.fuse.forward_fused, 1u);
  EXPECT_EQ(fused.fuse.fallback_forward, 0u);
  EXPECT_EQ(staged.fuse.forward_fused, 0u);
}

TEST(ForwardFuse, PartialFrameDeclinesLosslessly) {
  const size_t body_len = 32 * kKiB + 7;
  const ForwardRunResult declined =
      RunForwardWorkload(/*fuse=*/true, body_len, /*split_send=*/true);
  const ForwardRunResult staged =
      RunForwardWorkload(/*fuse=*/false, body_len, /*split_send=*/true);

  // The decline rode the app-level path; nothing lost, nothing forwarded.
  EXPECT_EQ(declined.kv_image, staged.kv_image);
  EXPECT_EQ(declined.fuse.forward_fused, 0u);
  EXPECT_GE(declined.fuse.fallback_forward, 1u);
  // The landing itself still fused into the posted window.
  EXPECT_GE(declined.fuse.fused, 1u);
}

// Prefix length == header length with page-aligned endpoints: the spliced
// source stays page-congruent with the destination window, so the payload
// interior is satisfied by the zero-copy remap tier — forwarded AND aliased.
TEST(ForwardFuse, RemapCongruentForwardAliasesInterior) {
  hw::TimingModel timing = hw::TimingModel::Default();
  // Make the alias unambiguously cheaper than one engine copy so the
  // bookkeeping-task cost gate cannot flip this test's outcome.
  timing.page_remap_cycles = 40;
  timing.tlb_shootdown_cycles = 100;
  simos::SimKernel::Config kconfig;
  kconfig.timing = &timing;
  simos::SimKernel kernel(kconfig);
  core::CopierService::Options options;
  options.config.enable_ipc_fuse = true;
  options.timing = &timing;
  core::CopierService service(std::move(options));
  core::CopierLinux glue(&service, &kernel);
  glue.Install();
  simos::Process* client = kernel.CreateProcess("client");
  simos::Process* proxy = kernel.CreateProcess("proxy");
  simos::Process* kv = kernel.CreateProcess("kv");
  service.AttachProcess(client);
  service.AttachProcess(proxy);
  service.AttachProcess(kv);
  auto [tx, rx] = kernel.CreateSocketPair();
  simos::BinderDriver binder(&kernel);

  constexpr size_t kHdr = 16;
  const size_t body_len = 256 * kKiB;
  const size_t n = kHdr + body_len;
  auto src_or = client->mem().MapAnonymous(n, "src", true);
  auto pwin_or = proxy->mem().MapAnonymous(n, "proxy-win", true);
  auto kv_win_or = kv->mem().MapAnonymous(n, "kv-win", true);
  ASSERT_TRUE(src_or.ok() && pwin_or.ok() && kv_win_or.ok());
  std::vector<uint8_t> msg(n);
  std::memcpy(msg.data(), "HDR:0123456789ab", kHdr);
  for (size_t i = 0; i < body_len; ++i) {
    msg[kHdr + i] = static_cast<uint8_t>(i * 17 + 3);
  }
  ASSERT_TRUE(client->mem().WriteBytes(*src_or, msg.data(), n).ok());

  // Fixed-width header rewrite: the prefix is exactly as long as the header
  // it replaces, so src+body_off and the window stay page-congruent.
  auto rule = std::make_shared<simos::ForwardRule>();
  rule->endpoint = &binder;
  rule->inspect_limit = kHdr;
  rule->rewrite_cycles = 0;
  rule->rewrite = [body_len](const uint8_t* head, size_t head_len,
                             size_t total) -> std::optional<simos::ForwardAction> {
    if (head_len < kHdr || total != kHdr + body_len ||
        std::memcmp(head, "HDR:", 4) != 0) {
      return std::nullopt;
    }
    simos::ForwardAction action;
    action.body_off = kHdr;
    action.prefix.assign(head, head + kHdr);
    action.prefix[0] = 'V';
    action.prefix[1] = 'I';
    action.prefix[2] = 'A';
    return action;
  };
  rx->SetForwardRule(rule);

  core::Descriptor d2(n);
  ASSERT_TRUE(binder.PostReceive(*kv, *kv_win_or, n, &d2, nullptr).ok());
  core::Descriptor d1(n);
  simos::RecvOptions ropts;
  ropts.descriptor = &d1;
  ASSERT_TRUE(kernel.PostRecv(*proxy, rx, *pwin_or, n, nullptr, ropts).ok());
  auto sent = kernel.Send(*client, tx, *src_or, n, nullptr);
  ASSERT_TRUE(sent.ok()) << sent.status().ToString();
  ASSERT_EQ(*sent, n);
  ASSERT_TRUE(core::WaitDescriptor(d1, 0, n, nullptr, [&] { service.DrainAll(); }).ok());
  ASSERT_TRUE(core::WaitDescriptor(d2, 0, n, nullptr, [&] { service.DrainAll(); }).ok());
  auto reaped = kernel.CompleteRecv(*proxy, rx, nullptr);
  ASSERT_TRUE(reaped.ok());
  EXPECT_EQ(*reaped, n);

  std::vector<uint8_t> expected = msg;
  expected[0] = 'V';
  expected[1] = 'I';
  expected[2] = 'A';
  EXPECT_EQ(ReadAll(kv->mem(), *kv_win_or, n), expected);
  EXPECT_EQ(service.ipc_fuse_stats().forward_fused, 1u);
  const core::Engine::Stats stats = service.TotalStats();
  EXPECT_GT(stats.remapped_bytes, 0u);       // interior aliased, not moved
  EXPECT_LT(stats.avx_bytes, n);             // only header page + edges moved
}

// Posted-receive Parcel channel (apps layer) delivers identical strings in
// fused and ablated runs.
TEST(IpcFuseApps, PostedParcelChannelRoundTrip) {
  for (const bool fuse : {true, false}) {
    simos::SimKernel kernel;
    core::CopierService::Options options;
    options.config.enable_ipc_fuse = fuse;
    auto service = std::make_unique<core::CopierService>(std::move(options));
    core::CopierLinux glue(service.get(), &kernel);
    glue.Install();
    apps::AppProcess client(&kernel, service.get(), apps::Mode::kCopier, "client");
    apps::AppProcess server(&kernel, service.get(), apps::Mode::kCopier, "server");
    simos::BinderDriver binder(&kernel);
    apps::BinderParcelChannel channel(&binder, &client, &server, /*posted_receive=*/true);

    std::vector<std::string> strings;
    for (int i = 0; i < 12; ++i) {
      strings.push_back(std::string(100 + 400 * i, static_cast<char>('a' + i)));
    }
    auto result = channel.Call(strings, &client.ctx(), &server.ctx());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(*result, strings);
    if (fuse) {
      EXPECT_GE(service->ipc_fuse_stats().fused, 1u);
      EXPECT_GT(service->TotalStats().fused_ipc_bytes, 0u);
    } else {
      EXPECT_EQ(service->TotalStats().fused_ipc_bytes, 0u);
    }
  }
}

}  // namespace
}  // namespace copier::test
