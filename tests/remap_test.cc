// Zero-copy remap tier (DESIGN.md §11).
//
// Unit tests pin down AliasCowRange semantics — frame sharing, write
// isolation through CoW breaks on either side, rejection of ineligible
// ranges, cross-space aliasing — and the engine-level contract: a remapped
// task is complete for ordering (kfuncs, csync, aborts, promotion) while
// zero bytes move physically.
//
// The differential harness then replays randomized workloads — aligned and
// unaligned copies, overlapping chains, mid-flight aborts, sync promotions,
// post-completion writes to BOTH sides of remapped ranges — with
// enable_remap_tier on and off, asserting byte-identical images and
// identical kfunc order. A fault-storm case forces every remapped page to
// break; a pooled variant adds cross-engine shared ranges.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/align.h"
#include "tests/test_util.h"

namespace copier::test {
namespace {

// --- AliasCowRange unit tests ------------------------------------------------

class AliasCow : public ::testing::Test {
 protected:
  simos::SimKernel kernel;
};

TEST_F(AliasCow, SameSpaceAliasSharesAndIsolates) {
  simos::Process* proc = kernel.CreateProcess("alias");
  simos::AddressSpace& mem = proc->mem();
  const size_t n = 4 * kPageSize;
  auto src = mem.MapAnonymous(n, "src", true);
  auto dst = mem.MapAnonymous(n, "dst", true);
  ASSERT_TRUE(src.ok() && dst.ok());
  FillPattern(mem, *src, n, 11);

  ASSERT_TRUE(mem.AliasCowRange(*dst, *src, n, nullptr).ok());
  ExpectSameBytes(mem, *src, *dst, n);
  EXPECT_EQ(mem.alias_cow_breaks(), 0u);

  // A write to the destination breaks only its page: the copy materializes,
  // the source keeps its bytes, and the other pages stay shared.
  const std::vector<uint8_t> src_before = ReadAll(mem, *src, n);
  uint8_t b = 0xAB;
  ASSERT_TRUE(mem.WriteBytes(*dst, &b, 1).ok());
  EXPECT_EQ(mem.alias_cow_breaks(), 1u);
  EXPECT_EQ(ReadAll(mem, *src, n), src_before);
  EXPECT_EQ(ReadAll(mem, *dst, 1)[0], 0xAB);
  ExpectSameBytes(mem, *src + kPageSize, *dst + kPageSize, n - kPageSize);

  // A write to the source breaks the share from the other side: the
  // destination keeps the pre-write bytes.
  const std::vector<uint8_t> dst_page1 = ReadAll(mem, *dst + kPageSize, kPageSize);
  b = 0xCD;
  ASSERT_TRUE(mem.WriteBytes(*src + kPageSize, &b, 1).ok());
  EXPECT_EQ(mem.alias_cow_breaks(), 2u);
  EXPECT_EQ(ReadAll(mem, *dst + kPageSize, kPageSize), dst_page1);
  EXPECT_EQ(ReadAll(mem, *src + kPageSize, 1)[0], 0xCD);
}

TEST_F(AliasCow, RejectsIneligibleRanges) {
  simos::Process* proc = kernel.CreateProcess("reject");
  simos::AddressSpace& mem = proc->mem();
  const size_t n = 4 * kPageSize;
  auto src = mem.MapAnonymous(n, "src", true);
  auto dst = mem.MapAnonymous(n, "dst", true);
  ASSERT_TRUE(src.ok() && dst.ok());

  // Unaligned addresses or length.
  EXPECT_FALSE(mem.AliasCowRange(*dst + 1, *src, kPageSize, nullptr).ok());
  EXPECT_FALSE(mem.AliasCowRange(*dst, *src + 1, kPageSize, nullptr).ok());
  EXPECT_FALSE(mem.AliasCowRange(*dst, *src, kPageSize + 1, nullptr).ok());
  // Overlapping same-space ranges.
  EXPECT_FALSE(mem.AliasCowRange(*dst, *dst + kPageSize, 2 * kPageSize, nullptr).ok());
  // Out-of-mapping ranges.
  EXPECT_FALSE(mem.AliasCowRange(*dst, *src, 2 * n, nullptr).ok());
  // Pinned pages on either side.
  ASSERT_TRUE(mem.PinRange(*src, kPageSize, false, nullptr).ok());
  EXPECT_FALSE(mem.AliasCowRange(*dst, *src, kPageSize, nullptr).ok());
  mem.UnpinRange(*src, kPageSize);
  ASSERT_TRUE(mem.PinRange(*dst, kPageSize, true, nullptr).ok());
  EXPECT_FALSE(mem.AliasCowRange(*dst, *src, kPageSize, nullptr).ok());
  mem.UnpinRange(*dst, kPageSize);
  // Huge mappings (CoW breaks there move whole contiguous 2 MiB blocks).
  auto huge = mem.MapAnonymous(simos::kHugePageSize, "huge", false, true);
  ASSERT_TRUE(huge.ok());
  uint8_t touch = 1;
  ASSERT_TRUE(mem.WriteBytes(*huge, &touch, 1).ok());
  EXPECT_FALSE(mem.AliasCowRange(*dst, *huge, kPageSize, nullptr).ok());
  EXPECT_FALSE(mem.AliasCowRange(*huge, *src, kPageSize, nullptr).ok());
  // Shared mappings on either side.
  simos::Process* other = kernel.CreateProcess("other");
  auto shared = other->mem().MapSharedFrom(mem, *src, kPageSize, true);
  ASSERT_TRUE(shared.ok());
  EXPECT_FALSE(other->mem()
                   .AliasCowRangeFrom(other->mem(), *shared, *shared, kPageSize, nullptr)
                   .ok());
  // After all the rejections, a valid alias still works (nothing half-done).
  EXPECT_TRUE(mem.AliasCowRange(*dst, *src, n, nullptr).ok());
  ExpectSameBytes(mem, *src, *dst, n);
}

TEST_F(AliasCow, CrossSpaceAliasSharesAndIsolates) {
  simos::Process* a = kernel.CreateProcess("a");
  simos::Process* b = kernel.CreateProcess("b");
  const size_t n = 2 * kPageSize;
  auto src = a->mem().MapAnonymous(n, "src", true);
  auto dst = b->mem().MapAnonymous(n, "dst", true);
  ASSERT_TRUE(src.ok() && dst.ok());
  FillPattern(a->mem(), *src, n, 23);

  ASSERT_TRUE(b->mem().AliasCowRangeFrom(a->mem(), *dst, *src, n, nullptr).ok());
  EXPECT_EQ(ReadAll(b->mem(), *dst, n), ReadAll(a->mem(), *src, n));

  // Writes on each side stay private to that space.
  const std::vector<uint8_t> src_image = ReadAll(a->mem(), *src, n);
  uint8_t byte = 0x5A;
  ASSERT_TRUE(b->mem().WriteBytes(*dst, &byte, 1).ok());
  EXPECT_EQ(ReadAll(a->mem(), *src, n), src_image);
  const std::vector<uint8_t> dst_image = ReadAll(b->mem(), *dst, n);
  byte = 0xA5;
  ASSERT_TRUE(a->mem().WriteBytes(*src + kPageSize, &byte, 1).ok());
  EXPECT_EQ(ReadAll(b->mem(), *dst, n), dst_image);
  EXPECT_EQ(b->mem().alias_cow_breaks() + a->mem().alias_cow_breaks(), 2u);
}

// --- engine-level behavior ---------------------------------------------------

TEST(RemapTier, AlignedCopyMovesNothing) {
  CopierStack stack;
  const size_t n = 64 * kKiB;
  const uint64_t src = stack.Map(n);
  const uint64_t dst = stack.Map(n);
  FillPattern(stack.proc->mem(), src, n, 7);
  stack.lib->amemcpy(dst, src, n);
  ASSERT_TRUE(stack.lib->csync(dst, n).ok());
  ExpectSameBytes(stack.proc->mem(), src, dst, n);
  const core::Engine::Stats stats = stack.service->TotalStats();
  EXPECT_GE(stats.remap_tasks, 1u);
  EXPECT_EQ(stats.remapped_bytes, n);
  EXPECT_EQ(stats.avx_bytes + stats.dma_bytes_completed, 0u) << "nothing should move";
  EXPECT_EQ(stats.bytes_copied, n) << "progress semantics include remapped bytes";
}

TEST(RemapTier, UnalignedInteriorRemapsHeadTailCopy) {
  CopierStack stack;
  const size_t n = 64 * kKiB;
  // Co-aligned but not page-aligned: both sides sit 16 bytes into the page
  // (the proxy's equal-length-header shape).
  const uint64_t src = stack.Map(n + kPageSize) + 16;
  const uint64_t dst = stack.Map(n + kPageSize) + 16;
  FillPattern(stack.proc->mem(), src, n, 9);
  stack.lib->amemcpy(dst, src, n);
  ASSERT_TRUE(stack.lib->csync(dst, n).ok());
  ExpectSameBytes(stack.proc->mem(), src, dst, n);
  const core::Engine::Stats stats = stack.service->TotalStats();
  EXPECT_GE(stats.remap_tasks, 1u);
  const size_t interior = AlignDown(16 + n, kPageSize) - AlignUp(16, kPageSize);
  EXPECT_EQ(stats.remapped_bytes, interior);
  EXPECT_EQ(stats.avx_bytes + stats.dma_bytes_completed, n - interior)
      << "only the unaligned head and tail move";
}

TEST(RemapTier, MisalignedSidesNeverRemap) {
  CopierStack stack;
  const size_t n = 64 * kKiB;
  const uint64_t src = stack.Map(n + kPageSize);
  const uint64_t dst = stack.Map(n + kPageSize) + 512;  // not congruent mod page
  FillPattern(stack.proc->mem(), src, n, 13);
  stack.lib->amemcpy(dst, src, n);
  ASSERT_TRUE(stack.lib->csync(dst, n).ok());
  ExpectSameBytes(stack.proc->mem(), src, dst, n);
  const core::Engine::Stats stats = stack.service->TotalStats();
  EXPECT_EQ(stats.remap_tasks, 0u);
  EXPECT_EQ(stats.avx_bytes + stats.dma_bytes_completed, n);
}

TEST(RemapTier, SyncPromotionCompletesRemappedRange) {
  core::CopierConfig config;
  config.copy_slice_bytes = 1;  // keep the FIFO pass from draining the task
  CopierStack stack(config);
  const size_t n = 32 * kKiB;
  const uint64_t src = stack.Map(n);
  const uint64_t dst = stack.Map(n);
  FillPattern(stack.proc->mem(), src, n, 17);
  stack.lib->amemcpy(dst, src, n);
  // csync a subrange: promotion executes the pending task via the remap tier.
  ASSERT_TRUE(stack.lib->csync(dst + 8 * kKiB, 8 * kKiB).ok());
  ExpectSameBytes(stack.proc->mem(), src + 8 * kKiB, dst + 8 * kKiB, 8 * kKiB);
  const core::Engine::Stats stats = stack.service->TotalStats();
  EXPECT_GE(stats.sync_promotions, 1u);
  EXPECT_GE(stats.remap_tasks, 1u);
  ASSERT_TRUE(stack.lib->csync_all().ok());
  ExpectSameBytes(stack.proc->mem(), src, dst, n);
}

TEST(RemapTier, AbortAfterRemapIsANoop) {
  CopierStack stack;
  const size_t n = 16 * kKiB;
  const uint64_t src = stack.Map(n);
  const uint64_t dst = stack.Map(n);
  FillPattern(stack.proc->mem(), src, n, 19);
  stack.lib->amemcpy(dst, src, n);
  ASSERT_TRUE(stack.lib->csync(dst, n).ok());
  const std::vector<uint8_t> landed = ReadAll(stack.proc->mem(), dst, n);
  // Abort the already-complete (remapped) range: nothing to discard.
  core::SyncTask sync;
  sync.kind = core::SyncTask::Kind::kAbort;
  sync.addr = core::MemRef::User(stack.client->space(), dst);
  sync.length = n;
  ASSERT_TRUE(stack.client->default_pair().user.sync_q.TryPush(std::move(sync)));
  stack.service->Serve(*stack.client, 0);
  EXPECT_EQ(ReadAll(stack.proc->mem(), dst, n), landed);
}

// --- fault storm: every remapped page breaks ---------------------------------

std::vector<uint8_t> RunFaultStorm(bool remap, uint64_t* breaks_sampled) {
  core::CopierConfig config;
  config.enable_remap_tier = remap;
  CopierStack stack(config);
  const size_t pages = 32;
  const size_t n = pages * kPageSize;
  const uint64_t src = stack.Map(n);
  const uint64_t dst = stack.Map(n);
  FillPattern(stack.proc->mem(), src, n, 29);
  stack.lib->amemcpy(dst, src, n);
  EXPECT_TRUE(stack.lib->csync(dst, n).ok());
  // Storm: write one byte into every page of BOTH sides — with the tier on,
  // every remapped page must materialize, on each side exactly once.
  for (size_t p = 0; p < pages; ++p) {
    const uint8_t d = static_cast<uint8_t>(p * 3 + 1);
    const uint8_t s = static_cast<uint8_t>(p * 5 + 2);
    EXPECT_TRUE(stack.proc->mem().WriteBytes(dst + p * kPageSize + 7, &d, 1).ok());
    EXPECT_TRUE(stack.proc->mem().WriteBytes(src + p * kPageSize + 9, &s, 1).ok());
  }
  if (remap) {
    EXPECT_EQ(stack.proc->mem().alias_cow_breaks(), 2 * pages);
  }
  // One more serve folds the alias breaks into engine stats.
  stack.lib->amemcpy(dst, src, kPageSize);
  EXPECT_TRUE(stack.lib->csync_all().ok());
  *breaks_sampled = stack.service->TotalStats().remap_cow_breaks;
  std::vector<uint8_t> image = ReadAll(stack.proc->mem(), src, n);
  const std::vector<uint8_t> dimg = ReadAll(stack.proc->mem(), dst, n);
  image.insert(image.end(), dimg.begin(), dimg.end());
  return image;
}

TEST(RemapTier, FaultStormBreaksEveryPageAndStaysIdentical) {
  uint64_t breaks_on = 0;
  uint64_t breaks_off = 0;
  const std::vector<uint8_t> with_remap = RunFaultStorm(true, &breaks_on);
  const std::vector<uint8_t> without = RunFaultStorm(false, &breaks_off);
  EXPECT_EQ(with_remap, without);
  EXPECT_EQ(breaks_on, 2 * 32u);
  EXPECT_EQ(breaks_off, 0u);
}

// --- randomized differential: remap on vs off --------------------------------

constexpr size_t kSrcPool = 64 * kKiB;
constexpr size_t kWork = 64 * kKiB;
constexpr size_t kAbortSlot = 2 * kPageSize;
constexpr size_t kAbortSlots = 16;
constexpr size_t kArena = kSrcPool + kWork + kAbortSlots * kAbortSlot;

struct DiffOut {
  std::vector<uint8_t> image;
  std::vector<int> kfunc_log;  // completion order of every pushed task
  uint64_t remap_tasks = 0;
  uint64_t moved = 0;
};

DiffOut RunDifferential(bool remap, uint64_t seed) {
  core::CopierConfig config;
  config.enable_remap_tier = remap;
  CopierStack stack(config);
  const uint64_t arena = stack.Map(kArena, "arena");
  FillPattern(stack.proc->mem(), arena, kArena, seed);

  DiffOut out;
  Rng rng(seed * 7919 + 3);
  int next_id = 0;
  size_t abort_slot = 0;
  auto push_copy = [&](uint64_t dst, uint64_t src, size_t len) {
    core::CopyQueueEntry entry;
    entry.task.dst = core::MemRef::User(stack.client->space(), dst);
    entry.task.src = core::MemRef::User(stack.client->space(), src);
    entry.task.length = len;
    const int id = next_id++;
    auto* log = &out.kfunc_log;
    entry.task.handler =
        core::PostHandler::KernelFunc([log, id](Cycles) { log->push_back(id); });
    EXPECT_TRUE(stack.client->default_pair().user.copy_q.TryPush(std::move(entry)));
  };

  for (int batch = 0; batch < 14; ++batch) {
    // Copies into the work region: mostly page-aligned (remap candidates),
    // some unaligned, some chained work->work.
    for (int i = 0; i < 3; ++i) {
      size_t len;
      size_t dst_off;
      size_t src_off;
      if (!rng.OneIn(3)) {
        len = kPageSize * (1 + rng.Below(8));
        dst_off = kSrcPool + AlignDown(rng.Below(kWork - len), kPageSize);
        src_off = rng.OneIn(4) ? kSrcPool + AlignDown(rng.Below(kWork - len), kPageSize)
                               : AlignDown(rng.Below(kSrcPool - len), kPageSize);
      } else {
        len = 200 + rng.Below(6 * kKiB);
        dst_off = kSrcPool + rng.Below(kWork - len);
        src_off = rng.Below(kSrcPool - len);
      }
      if (RangesOverlap(dst_off, len, src_off, len)) {
        continue;
      }
      push_copy(arena + dst_off, arena + src_off, len);
    }
    // A lib-registered submission rides along so the csync below has a real
    // producing copy to find and promote.
    if (rng.OneIn(2)) {
      const size_t len = kPageSize * (1 + rng.Below(4));
      const size_t dst_off = kSrcPool + AlignDown(rng.Below(kWork - len), kPageSize);
      const size_t src_off = AlignDown(rng.Below(kSrcPool - len), kPageSize);
      stack.lib->amemcpy(arena + dst_off, arena + src_off, len);
    }
    // Occasional copy into a fresh abort slot, aborted mid-flight below.
    uint64_t abort_addr = 0;
    if (rng.OneIn(2) && abort_slot < kAbortSlots) {
      abort_addr = arena + kSrcPool + kWork + abort_slot * kAbortSlot;
      ++abort_slot;
      push_copy(abort_addr, arena + AlignDown(rng.Below(kSrcPool - kAbortSlot), kPageSize),
                kAbortSlot);
    }
    // Ingest with zero-budget serves so aborts see their victims pending.
    while (!stack.client->default_pair().user.copy_q.Empty()) {
      stack.service->Serve(*stack.client, 0);
    }
    if (abort_addr != 0) {
      core::SyncTask sync;
      sync.kind = core::SyncTask::Kind::kAbort;
      sync.addr = core::MemRef::User(stack.client->space(), abort_addr);
      sync.length = kAbortSlot;
      EXPECT_TRUE(stack.client->default_pair().user.sync_q.TryPush(std::move(sync)));
    }
    // Partial execution pumps: progress is byte-deterministic across modes
    // (remapped bytes count as served bytes), so both runs abort and promote
    // at identical points.
    const size_t pumps = rng.Below(3);
    for (size_t p = 0; p < pumps; ++p) {
      stack.service->Serve(*stack.client, 8 * kKiB);
    }
    // Sync promotion of a random work subrange, then post-completion writes
    // to the promoted destination (breaks remapped shares from the dst side).
    if (rng.OneIn(2)) {
      const size_t len = kPageSize * (1 + rng.Below(4));
      const size_t off = kSrcPool + AlignDown(rng.Below(kWork - len), kPageSize);
      EXPECT_TRUE(stack.lib->csync(arena + off, len).ok());
      if (rng.OneIn(2)) {
        FillPattern(stack.proc->mem(), arena + off, kPageSize, seed * 131 + batch);
      }
    }
    // Periodically settle everything and dirty the source pool (breaks
    // remapped shares from the src side; the landed copies must keep their
    // bytes).
    if (rng.OneIn(3)) {
      EXPECT_TRUE(stack.lib->csync_all().ok());
      const size_t off = AlignDown(rng.Below(kSrcPool - kPageSize), kPageSize);
      FillPattern(stack.proc->mem(), arena + off, kPageSize, seed * 31 + batch);
    }
  }
  EXPECT_TRUE(stack.lib->csync_all().ok());
  stack.service->DrainAll();
  out.image = ReadAll(stack.proc->mem(), arena, kArena);
  const core::Engine::Stats stats = stack.service->TotalStats();
  out.remap_tasks = stats.remap_tasks;
  out.moved = stats.avx_bytes + stats.dma_bytes_completed;
  return out;
}

class RemapDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RemapDifferential, OnOffRunsAreByteAndOrderIdentical) {
  const uint64_t seed = GetParam();
  const DiffOut on = RunDifferential(true, seed);
  const DiffOut off = RunDifferential(false, seed);
  EXPECT_GT(on.remap_tasks, 0u) << "workload must actually exercise the tier";
  EXPECT_EQ(off.remap_tasks, 0u);
  EXPECT_LT(on.moved, off.moved) << "the tier must eliminate physical bytes";
  EXPECT_EQ(on.image, off.image);
  EXPECT_EQ(on.kfunc_log, off.kfunc_log) << "kfunc order must not depend on the tier";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RemapDifferential, ::testing::Values(1u, 2u, 3u, 4u));

// --- cross-engine shared ranges ----------------------------------------------

// Two apps on a 2-engine pool; a kernel writer streams gseq-stamped writes
// into app0's arena, making the domain shared, while both apps run aligned
// own-space copies that the tier remaps. Shared-range settling and the remap
// tier must compose: identical images and kfunc order with the tier on/off.
struct CrossOut {
  std::vector<std::vector<uint8_t>> images;
  std::vector<int> kfunc_log;
  uint64_t remap_tasks = 0;
};

CrossOut RunCrossEngine(bool remap, uint64_t seed) {
  core::CopierConfig config;
  config.enable_remap_tier = remap;
  config.enable_engine_pool = true;
  config.engine_count = 2;
  simos::SimKernel kernel;
  core::CopierService::Options options;
  options.config = config;
  core::CopierService service(std::move(options));
  core::CopierLinux glue(&service, &kernel);
  glue.Install();

  constexpr size_t kApps = 2;
  constexpr size_t kStrip = 16 * kKiB;  // writer-fed strip at the arena head
  struct App {
    simos::Process* proc = nullptr;
    core::Client* client = nullptr;
    std::unique_ptr<lib::CopierLib> lib;
    uint64_t arena = 0;
  };
  std::vector<App> apps(kApps);
  for (size_t a = 0; a < kApps; ++a) {
    apps[a].proc = kernel.CreateProcess("xapp" + std::to_string(a));
    apps[a].client = service.AttachProcess(apps[a].proc);
    apps[a].lib = std::make_unique<lib::CopierLib>(apps[a].client, &service);
    auto arena = apps[a].proc->mem().MapAnonymous(kStrip + kWork, "arena", true);
    EXPECT_TRUE(arena.ok());
    apps[a].arena = *arena;
    FillPattern(apps[a].proc->mem(), apps[a].arena, kStrip + kWork, seed * 17 + a);
  }
  core::Client* writer = service.AttachKernelClient("xwriter");

  CrossOut out;
  std::vector<std::unique_ptr<std::vector<uint8_t>>> keep_alive;
  Rng rng(seed * 104729 + 5);
  int next_id = 0;
  for (int batch = 0; batch < 10; ++batch) {
    // Writer: k-mode write into app0's strip (foreign-space dst -> the
    // domain is shared, the apps' own copies join the ledger).
    {
      const size_t len = kPageSize * (1 + rng.Below(2));
      const size_t off = AlignDown(rng.Below(kStrip - len), kPageSize);
      auto src = std::make_unique<std::vector<uint8_t>>(len);
      for (auto& b : *src) {
        b = static_cast<uint8_t>(rng.Next());
      }
      core::CopyQueueEntry entry;
      entry.task.dst = core::MemRef::User(apps[0].client->space(), apps[0].arena + off);
      entry.task.src = core::MemRef::Kernel(src->data());
      entry.task.length = len;
      entry.task.gseq = service.AllocateGlobalSeq();
      const int id = next_id++;
      auto* log = &out.kfunc_log;
      entry.task.handler =
          core::PostHandler::KernelFunc([log, id](Cycles) { log->push_back(id); });
      EXPECT_TRUE(writer->default_pair().kernel.copy_q.TryPush(std::move(entry)));
      keep_alive.push_back(std::move(src));
    }
    // Apps: aligned own-space copies — strip -> work (RAW against the
    // writer, remap-eligible) and work -> work chains.
    for (size_t a = 0; a < kApps; ++a) {
      const size_t len = kPageSize * (1 + rng.Below(3));  // < kStrip, so Below() below is sound
      const size_t dst_off = kStrip + AlignDown(rng.Below(kWork - len), kPageSize);
      const size_t src_off = AlignDown(rng.Below(kStrip - len), kPageSize);
      apps[a].lib->amemcpy(apps[a].arena + dst_off, apps[a].arena + src_off, len);
    }
    // Drive both engines round-robin; the interleaving differs per mode's
    // cycle costs, the results must not.
    auto ingest = [&](core::Client* c, bool kernel_q) {
      auto& pair = c->default_pair();
      while (!(kernel_q ? pair.kernel.copy_q.Empty() : pair.user.copy_q.Empty())) {
        service.Serve(*c, 0);
      }
    };
    ingest(writer, true);
    for (auto& app : apps) {
      ingest(app.client, false);
    }
    const size_t pumps = 1 + rng.Below(2);
    for (size_t p = 0; p < pumps; ++p) {
      for (size_t e = 0; e < service.engine_count(); ++e) {
        service.RunOnce(e);
      }
    }
  }
  for (auto& app : apps) {
    EXPECT_TRUE(app.lib->csync_all().ok());
  }
  service.DrainAll();
  for (auto& app : apps) {
    out.images.push_back(ReadAll(app.proc->mem(), app.arena, kStrip + kWork));
  }
  out.remap_tasks = service.TotalStats().remap_tasks;
  return out;
}

TEST(RemapCrossEngine, SharedRangesStayOrderedAcrossTheAblation) {
  for (uint64_t seed : {41u, 42u}) {
    CrossOut on = RunCrossEngine(true, seed);
    CrossOut off = RunCrossEngine(false, seed);
    EXPECT_GT(on.remap_tasks, 0u) << "seed " << seed;
    EXPECT_EQ(off.remap_tasks, 0u) << "seed " << seed;
    EXPECT_EQ(on.images, off.images) << "seed " << seed;
    EXPECT_EQ(on.kfunc_log, off.kfunc_log) << "seed " << seed;
  }
}

}  // namespace
}  // namespace copier::test
