// Non-blocking multi-channel DMA (DESIGN.md §9): channel-pool unit tests,
// parking/reaping behavior, and the async-vs-blocking differential — the
// multi-channel asynchronous engine must land byte-identical images and the
// same per-stream handler order as the single-channel blocking baseline over
// randomized scatter-gather workloads with overlaps, mid-flight aborts and
// barrier-forced drains.
#include <algorithm>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/hw/dma_channel_pool.h"
#include "tests/test_util.h"

namespace copier::test {
namespace {

using hw::DmaChannelPool;
using hw::DmaDescriptor;

// ---------------------------------------------------------------------------
// DmaChannelPool unit tests
// ---------------------------------------------------------------------------

TEST(DmaChannelPool, PicksLeastBusyChannel) {
  std::vector<uint8_t> src(16 * kKiB, 0xab), dst(16 * kKiB);
  DmaChannelPool pool(&hw::TimingModel::Default(), /*channels=*/4);
  ASSERT_EQ(pool.channel_count(), 4u);

  // Load channel 0 with a long transfer; the next pick must avoid it.
  const DmaDescriptor big{dst.data(), src.data(), 16 * kKiB};
  const size_t first = pool.PickChannel(1);
  ASSERT_LT(first, pool.channel_count());
  ASSERT_TRUE(pool.SubmitOn(first, std::span(&big, 1), /*now=*/0).ok());
  const size_t second = pool.PickChannel(1);
  ASSERT_LT(second, pool.channel_count());
  EXPECT_NE(second, first);
  EXPECT_LT(pool.channel(second).busy_until(), pool.channel(first).busy_until());
}

TEST(DmaChannelPool, SubmissionRecordsChannelAndCompletion) {
  std::vector<uint8_t> src(8 * kKiB, 0x5c), dst(8 * kKiB);
  DmaChannelPool pool(&hw::TimingModel::Default(), /*channels=*/2);
  const DmaDescriptor d{dst.data(), src.data(), 8 * kKiB};
  auto sub = pool.SubmitOn(1, std::span(&d, 1), /*now=*/100);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->channel, 1u);
  // The record matches the channel's own view, so the parker never has to
  // query the channel again.
  EXPECT_EQ(sub->completion_time, pool.channel(1).CompletionTime(sub->cookie));
  EXPECT_EQ(sub->completion_time, pool.channel(1).busy_until());
  EXPECT_EQ(dst, src);  // data moves eagerly at submission
}

TEST(DmaChannelPool, FullRingsRejectAndSignalFallback) {
  std::vector<uint8_t> src(kKiB, 1), dst(kKiB);
  DmaChannelPool pool(&hw::TimingModel::Default(), /*channels=*/2, /*ring_slots=*/1);
  const DmaDescriptor d{dst.data(), src.data(), kKiB};
  ASSERT_TRUE(pool.SubmitOn(0, std::span(&d, 1), 0).ok());
  ASSERT_TRUE(pool.SubmitOn(1, std::span(&d, 1), 0).ok());
  // Every ring is full: the pick signals the CPU fallback...
  EXPECT_EQ(pool.PickChannel(1), pool.channel_count());
  // ...and a forced submission bounces with kUnavailable (per channel, not
  // per pool).
  EXPECT_FALSE(pool.SubmitOn(0, std::span(&d, 1), 0).ok());
  // Retiring the in-flight batches frees the rings.
  pool.Poll(pool.busy_until());
  EXPECT_LT(pool.PickChannel(1), pool.channel_count());
}

TEST(DmaChannelPool, SingleChannelPoolMatchesRawEngine) {
  // A pool of one is bit-for-bit the old single-engine dispatcher: same
  // cookie sequence, same completion times, same costs.
  std::vector<uint8_t> src(32 * kKiB, 7), dst_a(32 * kKiB), dst_b(32 * kKiB);
  const auto& model = hw::TimingModel::Default();
  DmaChannelPool pool(&model, /*channels=*/1);
  hw::DmaEngine raw(&model);
  Cycles now = 17;
  for (size_t len : {4 * kKiB, 16 * kKiB, 32 * kKiB}) {
    const DmaDescriptor pd{dst_a.data(), src.data(), len};
    const DmaDescriptor rd{dst_b.data(), src.data(), len};
    auto sub = pool.SubmitOn(0, std::span(&pd, 1), now);
    auto cookie = raw.SubmitBatch(std::span(&rd, 1), now);
    ASSERT_TRUE(sub.ok() && cookie.ok());
    EXPECT_EQ(sub->cookie, *cookie);
    EXPECT_EQ(sub->completion_time, raw.CompletionTime(*cookie));
    now += 1000;
  }
  EXPECT_EQ(pool.SubmissionCost(3), raw.SubmissionCost(3));
}

// ---------------------------------------------------------------------------
// Engine parking and reaping
// ---------------------------------------------------------------------------

TEST(AsyncDma, RoundsParkAndStallsDisappear) {
  core::CopierConfig config;  // defaults: 4 channels, async completion on
  config.enable_remap_tier = false;  // force bytes onto the DMA path
  CopierStack stack(config);
  const size_t n = 512 * kKiB;
  const uint64_t src = stack.Map(n);
  const uint64_t dst = stack.Map(n);
  FillPattern(stack.proc->mem(), src, n, 11);
  stack.lib->amemcpy(dst, src, n);
  stack.service->DrainAll();
  ASSERT_TRUE(stack.lib->csync_all().ok());
  ExpectSameBytes(stack.proc->mem(), src, dst, n);

  const auto stats = stack.service->TotalStats();
  EXPECT_GT(stats.dma_rounds_parked, 0u) << "rounds should return with DMA in flight";
  EXPECT_EQ(stats.dma_stall_cycles, 0u) << "async mode never blocks at end of round";
  EXPECT_EQ(stats.dma_bytes_submitted, stats.dma_bytes_completed);
  EXPECT_EQ(stats.dma_batches_submitted, stats.dma_batches_completed);
}

TEST(AsyncDma, BlockingAblationRestoresEndOfRoundWaits) {
  core::CopierConfig config;
  config.dma_channel_count = 1;
  config.enable_async_dma_completion = false;
  config.enable_remap_tier = false;  // force bytes onto the DMA path
  CopierStack stack(config);
  const size_t n = 512 * kKiB;
  const uint64_t src = stack.Map(n);
  const uint64_t dst = stack.Map(n);
  FillPattern(stack.proc->mem(), src, n, 12);
  stack.lib->amemcpy(dst, src, n);
  ASSERT_TRUE(stack.lib->csync(dst, n).ok());
  ExpectSameBytes(stack.proc->mem(), src, dst, n);

  const auto stats = stack.service->TotalStats();
  EXPECT_EQ(stats.dma_rounds_parked, 0u);
  EXPECT_GT(stats.dma_stall_cycles, 0u) << "blocking mode waits out the DMA tail";
  EXPECT_EQ(stats.dma_drain_wait_cycles, 0u) << "nothing is ever parked to drain";
}

TEST(AsyncDma, MultiChannelShortensLargeCopyMakespan) {
  // The same large copy, 1 channel vs 4: more channels means the round's DMA
  // share splits across rings and the makespan shrinks. Measured on a warm
  // ATCache — on the first pass every offloaded page pays a cold ~240-cycle
  // walk, which cancels the offload win; steady state is what the channel
  // count buys. (The ≥1.5x scaling acceptance number lives in
  // bench_dma_channels, measured over a longer run; here we assert strict
  // improvement to stay robust.)
  auto elapsed = [](size_t channels) {
    core::CopierConfig config;
    config.dma_channel_count = channels;
    config.enable_remap_tier = false;  // force bytes onto the DMA path
    CopierStack stack(config);
    const size_t n = 4 * kMiB;
    const uint64_t src = stack.Map(n);
    const uint64_t dst = stack.Map(n);
    FillPattern(stack.proc->mem(), src, n, 21);
    stack.lib->amemcpy(dst, src, n);  // warm-up: populate the ATCache
    EXPECT_TRUE(stack.lib->csync(dst, n).ok());
    FillPattern(stack.proc->mem(), src, n, 22);
    const Cycles start = stack.service->engine_ctx().now();
    stack.lib->amemcpy(dst, src, n);
    EXPECT_TRUE(stack.lib->csync(dst, n).ok());
    ExpectSameBytes(stack.proc->mem(), src, dst, n);
    return stack.service->engine_ctx().now() - start;
  };
  const Cycles one = elapsed(1);
  const Cycles four = elapsed(4);
  EXPECT_LT(four, one) << "4 channels must beat 1 on a large contiguous copy";
}

TEST(AsyncDma, RingFullFallbackCountsAndStaysCorrect) {
  core::CopierConfig config;
  config.dma_channel_count = 1;
  config.dma_ring_slots = 1;  // one in-flight batch: the next round bounces
  config.enable_remap_tier = false;  // force bytes onto the DMA path
  CopierStack stack(config);
  const size_t n = 256 * kKiB;
  std::vector<std::pair<uint64_t, uint64_t>> copies;
  for (int i = 0; i < 4; ++i) {
    const uint64_t src = stack.Map(n);
    const uint64_t dst = stack.Map(n);
    FillPattern(stack.proc->mem(), src, n, 30 + i);
    copies.emplace_back(src, dst);
    stack.lib->amemcpy(dst, src, n);
  }
  stack.service->DrainAll();
  ASSERT_TRUE(stack.lib->csync_all().ok());
  for (const auto& [src, dst] : copies) {
    ExpectSameBytes(stack.proc->mem(), src, dst, n);
  }
  const auto stats = stack.service->TotalStats();
  EXPECT_GT(stats.dma_ring_full_fallbacks, 0u)
      << "with a 1-slot ring, parked rounds must bounce follow-up submissions";
}

// ---------------------------------------------------------------------------
// Randomized differential: async multi-channel vs blocking single-channel
// ---------------------------------------------------------------------------

struct DiffResult {
  std::vector<uint8_t> image;   // final arena bytes (abort targets excluded)
  std::vector<uint8_t> stream;  // socket bytes in delivery order
  uint64_t kfuncs_run = 0;
};

// Replays one pseudo-random workload: overlapping copies into a shared arena,
// partial serving passes that leave rounds parked, aborts aimed at a separate
// scratch region (abort outcomes are timing-dependent by design, so their
// destinations stay out of the comparison), csync barriers that force drains,
// and socket traffic whose received byte order *is* the kfunc firing order.
DiffResult RunDifferentialWorkload(core::CopierConfig config, bool vectored, uint64_t seed) {
  config.enable_vectored_submit = vectored;
  CopierStack stack(config);
  const size_t kArena = 256 * kKiB;
  const uint64_t arena = stack.Map(kArena, "arena");
  const uint64_t scratch = stack.Map(kArena, "scratch");
  const uint64_t source = stack.Map(kArena, "source");
  FillPattern(stack.proc->mem(), arena, kArena, seed);
  FillPattern(stack.proc->mem(), scratch, kArena, seed + 1);
  FillPattern(stack.proc->mem(), source, kArena, seed + 2);

  simos::Process* peer = stack.kernel->CreateProcess("peer");
  stack.service->AttachProcess(peer);
  auto [tx, rx] = stack.kernel->CreateSocketPair();
  const size_t kStreamCap = 512 * kKiB;
  auto peer_buf = peer->mem().MapAnonymous(kStreamCap, "peer", true);
  EXPECT_TRUE(peer_buf.ok());

  DiffResult result;
  Rng rng(seed * 977 + 3);
  size_t sent = 0;
  size_t received = 0;
  auto rand_range = [&](size_t limit) {
    const size_t off = rng.Next() % (kArena - 64);
    const size_t len = 64 + rng.Next() % std::min<size_t>(limit, kArena - off - 64);
    return std::make_pair(off, len);
  };

  for (int op = 0; op < 160; ++op) {
    switch (rng.Next() % 8) {
      case 0:
      case 1: {  // overlapping copy within the arena (WAW/absorption chains)
        auto [doff, len] = rand_range(32 * kKiB);
        const size_t soff = rng.Next() % (kArena - len);
        stack.lib->amemcpy(arena + doff, arena + soff, len);
        break;
      }
      case 2: {  // fresh bytes into the arena
        auto [doff, len] = rand_range(48 * kKiB);
        stack.lib->amemcpy(arena + doff, source + (rng.Next() % (kArena - len)), len);
        break;
      }
      case 3: {  // partial pump: leaves the tail of a round parked in flight
        stack.service->RunOnce();
        break;
      }
      case 4: {  // copy into scratch, then maybe abort it mid-flight
        auto [doff, len] = rand_range(32 * kKiB);
        stack.lib->amemcpy(scratch + doff, source + (rng.Next() % (kArena - len)), len);
        if (rng.Next() % 2 == 0) {
          stack.service->RunOnce();
          stack.lib->abort_range(scratch + doff, len);
        }
        break;
      }
      case 5: {  // barrier-forced drain of in-flight bytes (§4.2.1)
        auto [doff, len] = rand_range(64 * kKiB);
        EXPECT_TRUE(stack.lib->csync(arena + doff, len).ok());
        break;
      }
      case 6: {  // socket send: delivery order = handler firing order
        const size_t len = 4 * kKiB + rng.Next() % (28 * kKiB);
        if (sent + len <= kStreamCap) {
          auto ok = stack.kernel->Send(*stack.proc, tx,
                                       source + (rng.Next() % (kArena - len)), len, nullptr);
          EXPECT_TRUE(ok.ok());
          if (ok.ok()) {
            sent += *ok;
          }
        }
        break;
      }
      case 7: {  // receive whatever has been delivered so far
        stack.service->DrainAll();
        if (received < sent) {
          auto got = stack.kernel->Recv(*peer, rx, *peer_buf + received, sent - received,
                                        nullptr);
          EXPECT_TRUE(got.ok());
          received += *got;
        }
        break;
      }
    }
  }
  stack.service->DrainAll();
  for (int i = 0; i < 64 && received < sent; ++i) {
    auto got = stack.kernel->Recv(*peer, rx, *peer_buf + received, sent - received, nullptr);
    EXPECT_TRUE(got.ok());
    if (!got.ok()) {
      break;
    }
    received += *got;
    stack.service->DrainAll();
  }
  EXPECT_EQ(received, sent);
  EXPECT_TRUE(stack.lib->csync_all().ok());
  stack.service->DrainAll();

  result.image = ReadAll(stack.proc->mem(), arena, kArena);
  result.stream = ReadAll(peer->mem(), *peer_buf, received);
  result.kfuncs_run = stack.service->TotalStats().kfuncs_run;
  return result;
}

class AsyncDmaDifferential : public ::testing::TestWithParam<bool> {};

TEST_P(AsyncDmaDifferential, MatchesBlockingSingleChannelBitForBit) {
  const bool vectored = GetParam();
  for (uint64_t seed : {1u, 7u, 23u}) {
    core::CopierConfig async_cfg;
    async_cfg.dma_channel_count = 4;
    async_cfg.enable_async_dma_completion = true;
    core::CopierConfig blocking_cfg;
    blocking_cfg.dma_channel_count = 1;
    blocking_cfg.enable_async_dma_completion = false;

    const DiffResult a = RunDifferentialWorkload(async_cfg, vectored, seed);
    const DiffResult b = RunDifferentialWorkload(blocking_cfg, vectored, seed);
    EXPECT_EQ(a.image, b.image) << "arena image diverged, seed " << seed;
    // Socket bytes arrive in per-skb handler order: identical streams prove
    // the async engine fires completion kfuncs in the blocking engine's
    // per-stream order.
    EXPECT_EQ(a.stream, b.stream) << "stream order diverged, seed " << seed;
    EXPECT_EQ(a.kfuncs_run, b.kfuncs_run) << "handler counts diverged, seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(VectoredAndPerOp, AsyncDmaDifferential, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "vectored" : "per_op";
                         });

// ---------------------------------------------------------------------------
// Threaded mode: the reaper, the in-flight mirror and the re-queue counter
// run under real threads (TSan coverage).
// ---------------------------------------------------------------------------

TEST(AsyncDmaThreaded, ParkedRoundsSurviveRealThreads) {
  simos::SimKernel kernel;
  core::CopierService::Options options;
  options.mode = core::CopierService::Mode::kThreaded;
  options.config.min_threads = 2;
  options.config.max_threads = 2;
  core::CopierService service(std::move(options));
  service.Start();

  // Process creation and attach are setup-phase (not thread-safe): do them
  // on the main thread; the app threads only submit and sync.
  constexpr int kClients = 3;
  constexpr size_t kBytes = 128 * kKiB;
  struct App {
    simos::Process* proc = nullptr;
    core::Client* client = nullptr;
    uint64_t src = 0;
    uint64_t dst = 0;
  };
  std::vector<App> setups(kClients);
  for (int c = 0; c < kClients; ++c) {
    App& app = setups[c];
    app.proc = kernel.CreateProcess("app" + std::to_string(c));
    app.client = service.AttachProcess(app.proc);
    auto src = app.proc->mem().MapAnonymous(kBytes, "s", true);
    auto dst = app.proc->mem().MapAnonymous(kBytes, "d", true);
    ASSERT_TRUE(src.ok() && dst.ok());
    app.src = *src;
    app.dst = *dst;
  }
  std::vector<std::thread> apps;
  for (int c = 0; c < kClients; ++c) {
    apps.emplace_back([&service, &setups, c] {
      App& app = setups[c];
      lib::CopierLib lib(app.client, &service);
      for (int round = 0; round < 12; ++round) {
        FillPattern(app.proc->mem(), app.src, kBytes, 400 + c * 100 + round);
        lib.amemcpy(app.dst, app.src, kBytes);
        ASSERT_TRUE(lib.csync(app.dst, kBytes).ok());
        ExpectSameBytes(app.proc->mem(), app.src, app.dst, kBytes);
      }
    });
  }
  for (auto& t : apps) {
    t.join();
  }
  service.Stop();
  const auto stats = service.TotalStats();
  EXPECT_EQ(stats.dma_bytes_submitted, stats.dma_bytes_completed);
  EXPECT_EQ(stats.dma_stall_cycles, 0u);
}

}  // namespace
}  // namespace copier::test
