// Concurrency stress: threaded Copier service vs app threads issuing
// overlapping copies with partial csyncs. This harness found two production
// bugs during development:
//   * tasks sharing a client descriptor at unaligned offsets starved forever
//     (fixed by private per-task progress descriptors), and
//   * an earlier task executing after a *newer overlapping task had completed
//     and retired* overwrote the newer data with stale bytes (fixed by the
//     completed-writes WAW log consulted by dead-write suppression).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <thread>

#include "tests/test_util.h"

namespace copier::test {
namespace {

struct StressParam {
  int max_threads;
  bool concurrent_workers;
  bool use_dma;
};

class ThreadedStress : public ::testing::TestWithParam<StressParam> {};

TEST_P(ThreadedStress, OverlappingCopiesStayRefined) {
  const StressParam& p = GetParam();
  simos::SimKernel kernel;
  core::CopierService::Options options;
  options.mode = core::CopierService::Mode::kThreaded;
  options.config.max_threads = static_cast<size_t>(p.max_threads);
  options.config.min_threads = static_cast<size_t>(p.max_threads);
  options.config.use_dma = p.use_dma;
  core::CopierService service(std::move(options));
  service.Start();
  simos::Process* proc = kernel.CreateProcess("stress");
  core::Client* client = service.AttachProcess(proc);
  lib::CopierLib lib(client, &service);

  const size_t half = 64 * kKiB;
  auto arena = proc->mem().MapAnonymous(2 * half, "arena", true);
  ASSERT_TRUE(arena.ok());

  std::atomic<int> failures{0};
  auto worker = [&](int index) {
    Rng rng(4242 + index * 31);
    const uint64_t base = *arena + index * half;
    std::vector<uint8_t> reference(half, 0);
    for (int i = 0; i < 250 && failures.load() == 0; ++i) {
      const size_t len = 64 + rng.Below(8 * kKiB);
      const size_t dst = rng.Below(half - len);
      const size_t src = rng.Below(half - len);
      if (RangesOverlap(dst, len, src, len)) {
        continue;
      }
      lib.amemcpy(base + dst, base + src, len);
      std::memcpy(reference.data() + dst, reference.data() + src, len);
      if (rng.OneIn(3)) {
        ASSERT_TRUE(lib.csync(base + dst, len).ok());
        std::vector<uint8_t> bytes(len);
        ASSERT_TRUE(proc->mem().ReadBytes(base + dst, bytes.data(), len).ok());
        if (std::memcmp(bytes.data(), reference.data() + dst, len) != 0) {
          failures.fetch_add(1);
        }
      }
      if (rng.OneIn(5)) {
        const size_t wlen = 1 + rng.Below(2 * kKiB);
        const size_t woff = rng.Below(half - wlen);
        ASSERT_TRUE(lib.csync_all().ok());
        std::vector<uint8_t> bytes(wlen);
        for (auto& b : bytes) {
          b = static_cast<uint8_t>(rng.Next());
        }
        ASSERT_TRUE(proc->mem().WriteBytes(base + woff, bytes.data(), wlen).ok());
        std::memcpy(reference.data() + woff, bytes.data(), wlen);
      }
    }
    ASSERT_TRUE(lib.csync_all().ok());
    std::vector<uint8_t> final_bytes(half);
    ASSERT_TRUE(proc->mem().ReadBytes(base, final_bytes.data(), half).ok());
    if (std::memcmp(final_bytes.data(), reference.data(), half) != 0) {
      failures.fetch_add(1);
    }
  };

  if (p.concurrent_workers) {
    std::thread t0(worker, 0);
    std::thread t1(worker, 1);
    t0.join();
    t1.join();
  } else {
    worker(0);
    worker(1);
  }
  service.Stop();
  EXPECT_EQ(failures.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ThreadedStress,
    ::testing::Values(StressParam{1, false, true}, StressParam{1, true, true},
                      StressParam{2, true, true}, StressParam{2, true, false}),
    [](const ::testing::TestParamInfo<StressParam>& info) {
      const StressParam& p = info.param;
      return "svc" + std::to_string(p.max_threads) +
             (p.concurrent_workers ? "_par" : "_seq") + (p.use_dma ? "_dma" : "_cpu");
    });

// --- deep-queue stress ------------------------------------------------------
//
// Thousands of outstanding tasks with overlapping ranges, aborts arriving
// mid-stream, and retirement churn across submission waves. Exercises the
// pending-range interval index (and the linear-scan baseline) at the queue
// depths bench_queue_depth measures, asserting both modes refine the same
// in-order execution.

struct DeepQueueResult {
  std::vector<uint8_t> bytes;      // final arena contents
  std::vector<uint8_t> reference;  // in-order model of the same submissions
  size_t max_depth = 0;
  uint64_t dep_probes = 0;
};

DeepQueueResult RunDeepQueueScenario(bool enable_range_index) {
  // Arena layout: S (source pool, never written), W (working region with
  // overlapping copy chains), X (abort scratch: each slot written by exactly
  // one task that is aborted before executing, so it must keep its initial
  // bytes — and is never read, so aborts apply immediately).
  const size_t kS = 256 * kKiB;
  const size_t kW = 256 * kKiB;
  const size_t kSlot = kKiB;
  const size_t kSlots = 256;
  const size_t kTotal = kS + kW + kSlots * kSlot;

  core::CopierConfig config;
  config.enable_range_index = enable_range_index;
  CopierStack stack(config);
  const uint64_t arena = stack.Map(kTotal, "deep");
  FillPattern(stack.proc->mem(), arena, kTotal, 77);

  DeepQueueResult result;
  result.reference = ReadAll(stack.proc->mem(), arena, kTotal);
  Rng rng(20260807);
  size_t abort_slot = 0;
  // Wave 0 establishes >=1024 outstanding tasks; later waves churn the queue
  // (retirement of old tasks interleaved with fresh submissions and aborts).
  const size_t kWaves[] = {1400, 160, 160};
  for (size_t wave = 0; wave < 3; ++wave) {
    std::vector<std::pair<uint64_t, size_t>> abort_now;
    for (size_t i = 0; i < kWaves[wave]; ++i) {
      if (i % 8 == 7 && abort_slot < kSlots) {
        const uint64_t dst = arena + kS + kW + abort_slot * kSlot;
        const uint64_t src = arena + rng.Below(kS - kSlot);
        ++abort_slot;
        stack.lib->amemcpy(dst, src, kSlot);
        abort_now.emplace_back(dst, kSlot);
        continue;  // aborted before execution: no reference effect
      }
      const size_t len = 257 + rng.Below(4 * kKiB - 257);
      size_t dst_off;
      size_t src_off;
      do {
        dst_off = kS + rng.Below(kW - len);
        src_off = rng.OneIn(3) ? rng.Below(kS - len) : kS + rng.Below(kW - len);
      } while (RangesOverlap(dst_off, len, src_off, len));
      stack.lib->amemcpy(arena + dst_off, arena + src_off, len);
      std::memcpy(result.reference.data() + dst_off, result.reference.data() + src_off, len);
    }
    // Ingest the whole wave (ingestion is capped per poll) with zero-budget
    // serves so the aborts below see every victim as a pending task.
    while (!stack.client->default_pair().user.copy_q.Empty()) {
      stack.service->Serve(*stack.client, 0);
    }
    // Queue the aborts directly: lib.abort_range() in manual mode pumps the
    // whole engine, which would drain the deep queue we are trying to keep.
    for (const auto& [addr, len] : abort_now) {
      core::SyncTask sync;
      sync.kind = core::SyncTask::Kind::kAbort;
      sync.addr = core::MemRef::User(stack.client->space(), addr);
      sync.length = len;
      stack.client->default_pair().user.sync_q.TryPush(std::move(sync));
    }
    // Partially drain with a small budget: ingestion and the aborts happen on
    // the first Serve; the queue stays deep across waves.
    const size_t serves = wave == 0 ? 4 : 2;
    for (size_t s = 0; s < serves; ++s) {
      stack.service->Serve(*stack.client, 48 * kKiB);
      result.max_depth = std::max(result.max_depth, stack.client->pending.size());
    }
  }
  EXPECT_TRUE(stack.lib->csync_all().ok());
  stack.service->DrainAll();
  EXPECT_TRUE(stack.client->pending.empty());
  EXPECT_EQ(stack.client->range_index.size(), 0u);
  result.bytes = ReadAll(stack.proc->mem(), arena, kTotal);
  result.dep_probes = stack.service->TotalStats().dep_probes;
  return result;
}

TEST(DeepQueueStress, IndexedModeMatchesInOrderReferenceAtDepth1024) {
  const DeepQueueResult indexed = RunDeepQueueScenario(/*enable_range_index=*/true);
  EXPECT_GE(indexed.max_depth, 1024u);
  EXPECT_GT(indexed.dep_probes, 0u);
  ASSERT_EQ(indexed.bytes, indexed.reference);
}

TEST(DeepQueueStress, LinearBaselineMatchesIndexedModeByteForByte) {
  const DeepQueueResult linear = RunDeepQueueScenario(/*enable_range_index=*/false);
  EXPECT_GE(linear.max_depth, 1024u);
  ASSERT_EQ(linear.bytes, linear.reference);
  const DeepQueueResult indexed = RunDeepQueueScenario(/*enable_range_index=*/true);
  ASSERT_EQ(linear.bytes, indexed.bytes);
}

}  // namespace
}  // namespace copier::test
