// Concurrency stress: threaded Copier service vs app threads issuing
// overlapping copies with partial csyncs. This harness found two production
// bugs during development:
//   * tasks sharing a client descriptor at unaligned offsets starved forever
//     (fixed by private per-task progress descriptors), and
//   * an earlier task executing after a *newer overlapping task had completed
//     and retired* overwrote the newer data with stale bytes (fixed by the
//     completed-writes WAW log consulted by dead-write suppression).
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "tests/test_util.h"

namespace copier::test {
namespace {

struct StressParam {
  int max_threads;
  bool concurrent_workers;
  bool use_dma;
};

class ThreadedStress : public ::testing::TestWithParam<StressParam> {};

TEST_P(ThreadedStress, OverlappingCopiesStayRefined) {
  const StressParam& p = GetParam();
  simos::SimKernel kernel;
  core::CopierService::Options options;
  options.mode = core::CopierService::Mode::kThreaded;
  options.config.max_threads = static_cast<size_t>(p.max_threads);
  options.config.min_threads = static_cast<size_t>(p.max_threads);
  options.config.use_dma = p.use_dma;
  core::CopierService service(std::move(options));
  service.Start();
  simos::Process* proc = kernel.CreateProcess("stress");
  core::Client* client = service.AttachProcess(proc);
  lib::CopierLib lib(client, &service);

  const size_t half = 64 * kKiB;
  auto arena = proc->mem().MapAnonymous(2 * half, "arena", true);
  ASSERT_TRUE(arena.ok());

  std::atomic<int> failures{0};
  auto worker = [&](int index) {
    Rng rng(4242 + index * 31);
    const uint64_t base = *arena + index * half;
    std::vector<uint8_t> reference(half, 0);
    for (int i = 0; i < 250 && failures.load() == 0; ++i) {
      const size_t len = 64 + rng.Below(8 * kKiB);
      const size_t dst = rng.Below(half - len);
      const size_t src = rng.Below(half - len);
      if (RangesOverlap(dst, len, src, len)) {
        continue;
      }
      lib.amemcpy(base + dst, base + src, len);
      std::memcpy(reference.data() + dst, reference.data() + src, len);
      if (rng.OneIn(3)) {
        ASSERT_TRUE(lib.csync(base + dst, len).ok());
        std::vector<uint8_t> bytes(len);
        ASSERT_TRUE(proc->mem().ReadBytes(base + dst, bytes.data(), len).ok());
        if (std::memcmp(bytes.data(), reference.data() + dst, len) != 0) {
          failures.fetch_add(1);
        }
      }
      if (rng.OneIn(5)) {
        const size_t wlen = 1 + rng.Below(2 * kKiB);
        const size_t woff = rng.Below(half - wlen);
        ASSERT_TRUE(lib.csync_all().ok());
        std::vector<uint8_t> bytes(wlen);
        for (auto& b : bytes) {
          b = static_cast<uint8_t>(rng.Next());
        }
        ASSERT_TRUE(proc->mem().WriteBytes(base + woff, bytes.data(), wlen).ok());
        std::memcpy(reference.data() + woff, bytes.data(), wlen);
      }
    }
    ASSERT_TRUE(lib.csync_all().ok());
    std::vector<uint8_t> final_bytes(half);
    ASSERT_TRUE(proc->mem().ReadBytes(base, final_bytes.data(), half).ok());
    if (std::memcmp(final_bytes.data(), reference.data(), half) != 0) {
      failures.fetch_add(1);
    }
  };

  if (p.concurrent_workers) {
    std::thread t0(worker, 0);
    std::thread t1(worker, 1);
    t0.join();
    t1.join();
  } else {
    worker(0);
    worker(1);
  }
  service.Stop();
  EXPECT_EQ(failures.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ThreadedStress,
    ::testing::Values(StressParam{1, false, true}, StressParam{1, true, true},
                      StressParam{2, true, true}, StressParam{2, true, false}),
    [](const ::testing::TestParamInfo<StressParam>& info) {
      const StressParam& p = info.param;
      return "svc" + std::to_string(p.max_threads) +
             (p.concurrent_workers ? "_par" : "_seq") + (p.use_dma ? "_dma" : "_cpu");
    });

}  // namespace
}  // namespace copier::test
