// Engine-pool correctness (DESIGN.md §10): a randomized differential harness
// runs the same multi-client workload — overlapping private copies, mid-stream
// aborts, csyncs, and cross-client traffic on a shared kernel buffer — against
// pools of 1, 2, 4 and 8 engines and asserts byte-identical results. The
// shared buffer additionally has an in-order oracle: because the service-global
// submission sequence (gseq) fixes cross-client conflict order at submission,
// the final buffer must equal a host-side replay of the writes in submission
// order, and every read must observe exactly the writes submitted before it.
//
// A second, real-threaded test (the TSan target in CI) races kernel-client
// writers across a 4-engine pool and asserts WAW writes stay totally ordered:
// the shared buffer ends uniform — one writer's full pattern, never a torn mix.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "tests/test_util.h"

namespace copier::test {
namespace {

// --- randomized differential: N engines vs 1 --------------------------------

constexpr size_t kApps = 3;
constexpr size_t kWriters = 2;
constexpr size_t kSrcPool = 32 * kKiB;   // per-app source pool, never written
constexpr size_t kWork = 32 * kKiB;      // per-app working region, overlapping chains
constexpr size_t kAbortSlot = kKiB;      // per-app abort scratch slots
constexpr size_t kAbortSlots = 16;
constexpr size_t kArena = kSrcPool + kWork + kAbortSlots * kAbortSlot;
constexpr size_t kShared = 16 * kKiB;    // kernel buffer shared by all kernel clients
constexpr size_t kBatches = 14;

struct PoolResult {
  std::vector<std::vector<uint8_t>> images;   // final per-app arena contents
  std::vector<uint8_t> shared;                // final shared kernel buffer
  std::vector<std::vector<int>> kfunc_logs;   // per-writer KFUNC firing order
  uint64_t cross_probes = 0;
  uint64_t cross_settles = 0;
};

struct PoolApp {
  simos::Process* proc = nullptr;
  core::Client* client = nullptr;
  std::unique_ptr<lib::CopierLib> lib;
  uint64_t arena = 0;
  size_t abort_slot = 0;
};

PoolResult RunPoolScenario(size_t engines, uint64_t seed) {
  core::CopierConfig config;
  config.enable_engine_pool = true;
  config.engine_count = engines;
  simos::SimKernel kernel;
  core::CopierService::Options options;
  options.config = config;
  core::CopierService service(std::move(options));
  core::CopierLinux glue(&service, &kernel);
  glue.Install();

  std::vector<PoolApp> apps(kApps);
  for (size_t a = 0; a < kApps; ++a) {
    apps[a].proc = kernel.CreateProcess("pool" + std::to_string(a));
    apps[a].client = service.AttachProcess(apps[a].proc);
    apps[a].lib = std::make_unique<lib::CopierLib>(apps[a].client, &service);
    auto arena = apps[a].proc->mem().MapAnonymous(kArena, "arena", true);
    EXPECT_TRUE(arena.ok());
    apps[a].arena = *arena;
    FillPattern(apps[a].proc->mem(), apps[a].arena, kArena, seed * 131 + a);
  }
  std::vector<core::Client*> writers(kWriters);
  for (size_t w = 0; w < kWriters; ++w) {
    writers[w] = service.AttachKernelClient("writer" + std::to_string(w));
  }
  core::Client* reader = service.AttachKernelClient("reader");

  std::vector<uint8_t> shared(kShared, 0);
  std::vector<uint8_t> shared_ref(kShared, 0);  // in-submission-order replay
  // Task sources and read destinations must stay alive (and fixed) until the
  // copies execute; keep every per-task buffer for the scenario's lifetime.
  std::vector<std::unique_ptr<std::vector<uint8_t>>> keep_alive;
  // (read destination, expected bytes = shared_ref snapshot at submission)
  std::vector<std::pair<std::vector<uint8_t>*, std::vector<uint8_t>>> read_checks;

  PoolResult result;
  result.kfunc_logs.resize(kWriters);
  std::vector<int> writer_round(kWriters, 0);

  Rng rng(seed);
  for (size_t batch = 0; batch < kBatches; ++batch) {
    // Private overlapping copy chains per app, plus an occasional copy into a
    // fresh abort slot that is discarded before it can execute.
    std::vector<std::pair<size_t, uint64_t>> abort_now;  // (app, addr)
    for (size_t a = 0; a < kApps; ++a) {
      PoolApp& app = apps[a];
      for (int i = 0; i < 2; ++i) {
        const size_t len = 257 + rng.Below(3 * kKiB);
        size_t dst_off;
        size_t src_off;
        do {
          dst_off = kSrcPool + rng.Below(kWork - len);
          src_off = rng.OneIn(3) ? rng.Below(kSrcPool - len)
                                 : kSrcPool + rng.Below(kWork - len);
        } while (RangesOverlap(dst_off, len, src_off, len));
        app.lib->amemcpy(app.arena + dst_off, app.arena + src_off, len);
      }
      if (rng.OneIn(2) && app.abort_slot < kAbortSlots) {
        const uint64_t dst = app.arena + kSrcPool + kWork + app.abort_slot * kAbortSlot;
        ++app.abort_slot;
        app.lib->amemcpy(dst, app.arena + rng.Below(kSrcPool - kAbortSlot), kAbortSlot);
        abort_now.emplace_back(a, dst);
      }
    }
    // Kernel writers: gseq-stamped writes into the shared buffer, replayed
    // into the host-side reference in the same submission order.
    for (size_t w = 0; w < kWriters; ++w) {
      const int rounds = 1 + static_cast<int>(rng.OneIn(2));
      for (int r = 0; r < rounds; ++r) {
        const size_t len = 256 + rng.Below(1792);
        const size_t off = rng.Below(kShared - len);
        auto src = std::make_unique<std::vector<uint8_t>>(len);
        for (auto& b : *src) {
          b = static_cast<uint8_t>(rng.Next());
        }
        std::memcpy(shared_ref.data() + off, src->data(), len);
        core::CopyQueueEntry entry;
        entry.task.dst = core::MemRef::Kernel(shared.data() + off);
        entry.task.src = core::MemRef::Kernel(src->data());
        entry.task.length = len;
        entry.task.gseq = service.AllocateGlobalSeq();
        const int round = writer_round[w]++;
        auto* log = &result.kfunc_logs[w];
        entry.task.handler =
            core::PostHandler::KernelFunc([log, round](Cycles) { log->push_back(round); });
        EXPECT_TRUE(writers[w]->default_pair().kernel.copy_q.TryPush(std::move(entry)));
        keep_alive.push_back(std::move(src));
      }
    }
    // Reader: every read must see exactly the writes submitted before it —
    // gseq order, not whichever engine lands first.
    {
      const size_t len = 256 + rng.Below(2 * kKiB);
      const size_t off = rng.Below(kShared - len);
      auto dst = std::make_unique<std::vector<uint8_t>>(len, 0);
      core::CopyQueueEntry entry;
      entry.task.dst = core::MemRef::Kernel(dst->data());
      entry.task.src = core::MemRef::Kernel(shared.data() + off);
      entry.task.length = len;
      entry.task.gseq = service.AllocateGlobalSeq();
      EXPECT_TRUE(reader->default_pair().kernel.copy_q.TryPush(std::move(entry)));
      read_checks.emplace_back(
          dst.get(), std::vector<uint8_t>(shared_ref.begin() + off, shared_ref.begin() + off + len));
      keep_alive.push_back(std::move(dst));
    }
    // Ingest everything with zero-budget serves (fixed client order) so the
    // aborts below see their victims pending and so every cross-client
    // conflict is ledger-visible before any engine executes.
    auto ingest = [&](core::Client* c, bool kernel_q) {
      auto& pair = c->default_pair();
      while (!(kernel_q ? pair.kernel.copy_q.Empty() : pair.user.copy_q.Empty())) {
        service.Serve(*c, 0);
      }
    };
    for (auto& app : apps) {
      ingest(app.client, false);
    }
    for (auto* w : writers) {
      ingest(w, true);
    }
    ingest(reader, true);
    for (const auto& [a, addr] : abort_now) {
      core::SyncTask sync;
      sync.kind = core::SyncTask::Kind::kAbort;
      sync.addr = core::MemRef::User(apps[a].client->space(), addr);
      sync.length = kAbortSlot;
      apps[a].client->default_pair().user.sync_q.TryPush(std::move(sync));
    }
    // Execute: round-robin the pool. The interleaving differs per engine
    // count; the results must not.
    const size_t pumps = 1 + rng.Below(3);
    for (size_t p = 0; p < pumps; ++p) {
      for (size_t e = 0; e < service.engine_count(); ++e) {
        service.RunOnce(e);
      }
    }
    if (batch % 4 == 3) {
      EXPECT_TRUE(apps[batch % kApps].lib->csync_all().ok());
    }
  }
  for (auto& app : apps) {
    EXPECT_TRUE(app.lib->csync_all().ok());
  }
  service.DrainAll();

  for (auto& app : apps) {
    EXPECT_TRUE(app.client->pending.empty());
    result.images.push_back(ReadAll(app.proc->mem(), app.arena, kArena));
  }
  // In-order oracle: gseq order == submission order == the host replay.
  EXPECT_EQ(shared, shared_ref);
  result.shared = shared;
  for (const auto& [dst, expected] : read_checks) {
    EXPECT_EQ(*dst, expected);
  }
  // Every writer KFUNC fired exactly once.
  for (size_t w = 0; w < kWriters; ++w) {
    std::vector<int> sorted = result.kfunc_logs[w];
    std::sort(sorted.begin(), sorted.end());
    std::vector<int> want(static_cast<size_t>(writer_round[w]));
    std::iota(want.begin(), want.end(), 0);
    EXPECT_EQ(sorted, want) << "writer " << w;
  }
  const core::Engine::Stats stats = service.TotalStats();
  result.cross_probes = stats.cross_dep_probes;
  result.cross_settles = stats.cross_dep_settles;
  return result;
}

class EnginePoolDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EnginePoolDifferential, PooledRunsMatchSingleEngineByteForByte) {
  const uint64_t seed = GetParam();
  const PoolResult baseline = RunPoolScenario(1, seed);
  EXPECT_GT(baseline.cross_probes, 0u);
  for (size_t engines : {2u, 4u, 8u}) {
    SCOPED_TRACE("engines=" + std::to_string(engines));
    const PoolResult pooled = RunPoolScenario(engines, seed);
    ASSERT_EQ(pooled.images, baseline.images);
    ASSERT_EQ(pooled.shared, baseline.shared);
    EXPECT_EQ(pooled.kfunc_logs, baseline.kfunc_logs);
    EXPECT_GT(pooled.cross_probes, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnginePoolDifferential, ::testing::Values(1u, 7u, 23u),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// --- real-threaded pool stress (TSan target) --------------------------------
//
// Four engine threads, three app threads on private arenas, and two kernel
// writer threads racing full-buffer writes on one shared kernel buffer. Every
// write carries a gseq, so WAW conflicts have a total order: the final buffer
// must be one writer's pattern end to end. A torn mix of patterns means two
// engines interleaved conflicting writes.

TEST(EnginePoolThreaded, SharedBufferWritesStayTotallyOrdered) {
  constexpr size_t kBuf = 8 * kKiB;
  constexpr int kRounds = 6;
  constexpr size_t kThreadedApps = 3;

  simos::SimKernel kernel;
  core::CopierService::Options options;
  options.mode = core::CopierService::Mode::kThreaded;
  options.config.enable_engine_pool = true;
  options.config.engine_count = 4;
  options.config.min_threads = 4;
  options.config.max_threads = 4;
  core::CopierService service(std::move(options));
  service.Start();

  std::vector<PoolApp> apps(kThreadedApps);
  for (size_t a = 0; a < kThreadedApps; ++a) {
    apps[a].proc = kernel.CreateProcess("tapp" + std::to_string(a));
    apps[a].client = service.AttachProcess(apps[a].proc);
    apps[a].lib = std::make_unique<lib::CopierLib>(apps[a].client, &service);
    auto arena = apps[a].proc->mem().MapAnonymous(64 * kKiB, "arena", true);
    ASSERT_TRUE(arena.ok());
    apps[a].arena = *arena;
    FillPattern(apps[a].proc->mem(), apps[a].arena, 64 * kKiB, 600 + a);
  }
  core::Client* writer_clients[2] = {service.AttachKernelClient("w0"),
                                     service.AttachKernelClient("w1")};

  std::vector<uint8_t> shared(kBuf, 0);
  // Per-writer, per-round sources: sized up front so pointers stay stable
  // while engine threads read them.
  std::vector<std::vector<uint8_t>> sources[2];
  for (auto& s : sources) {
    s.assign(kRounds, std::vector<uint8_t>(kBuf));
  }
  std::mutex gseq_mu;
  std::vector<std::pair<uint64_t, uint8_t>> write_log;  // (gseq, pattern byte)

  std::atomic<int> failures{0};
  // App threads copy from their (stable, never-written) source half into the
  // destination half; each csync'd copy is checked against the source bytes.
  auto app_worker = [&](size_t index) {
    PoolApp& app = apps[index];
    Rng rng(9000 + index * 37);
    const size_t half = 32 * kKiB;
    for (int i = 0; i < 60 && failures.load() == 0; ++i) {
      const size_t len = 64 + rng.Below(4 * kKiB);
      const size_t dst = rng.Below(half - len);
      const size_t src = half + rng.Below(half - len);
      app.lib->amemcpy(app.arena + dst, app.arena + src, len);
      if (rng.OneIn(3)) {
        ASSERT_TRUE(app.lib->csync(app.arena + dst, len).ok());
        std::vector<uint8_t> got(len);
        std::vector<uint8_t> want(len);
        ASSERT_TRUE(app.proc->mem().ReadBytes(app.arena + dst, got.data(), len).ok());
        ASSERT_TRUE(app.proc->mem().ReadBytes(app.arena + src, want.data(), len).ok());
        if (got != want) {
          failures.fetch_add(1);
        }
      }
    }
    ASSERT_TRUE(app.lib->csync_all().ok());
  };
  auto writer_worker = [&](int w) {
    for (int r = 0; r < kRounds; ++r) {
      const uint8_t pattern = static_cast<uint8_t>(0x40 + w * 0x20 + r);
      std::vector<uint8_t>& src = sources[w][static_cast<size_t>(r)];
      std::fill(src.begin(), src.end(), pattern);
      core::CopyQueueEntry entry;
      entry.task.dst = core::MemRef::Kernel(shared.data());
      entry.task.src = core::MemRef::Kernel(src.data());
      entry.task.length = kBuf;
      entry.task.gseq = service.AllocateGlobalSeq();
      {
        std::lock_guard<std::mutex> lock(gseq_mu);
        write_log.emplace_back(entry.task.gseq, pattern);
      }
      ASSERT_TRUE(writer_clients[w]->default_pair().kernel.copy_q.TryPush(std::move(entry)));
      service.NotifyRunnable(*writer_clients[w], kBuf);
    }
  };

  std::vector<std::thread> threads;
  for (size_t a = 0; a < kThreadedApps; ++a) {
    threads.emplace_back(app_worker, a);
  }
  threads.emplace_back(writer_worker, 0);
  threads.emplace_back(writer_worker, 1);
  for (auto& t : threads) {
    t.join();
  }
  service.DrainAll();
  service.Stop();
  EXPECT_EQ(failures.load(), 0);

  // The buffer must be uniformly one writer's pattern: WAW order is total, so
  // conflicting full-buffer writes can never interleave into a mix.
  ASSERT_FALSE(write_log.empty());
  const uint8_t first = shared[0];
  bool uniform = true;
  for (size_t i = 1; i < kBuf; ++i) {
    if (shared[i] != first) {
      uniform = false;
      break;
    }
  }
  EXPECT_TRUE(uniform) << "shared buffer ended as a torn mix of writer patterns";
  bool valid = false;
  for (const auto& [gseq, pattern] : write_log) {
    valid |= pattern == first;
  }
  EXPECT_TRUE(valid) << "final byte " << int(first) << " matches no submitted pattern";

  const core::Engine::Stats stats = service.TotalStats();
  EXPECT_GT(stats.cross_dep_probes, 0u);
}

// --- ledger pruning vs submission-ring latency -------------------------------
//
// A task is stamped at submission but becomes ledger-visible only at
// ingestion. A tombstone (or a private landed write) ordered *after* such a
// stamped-but-unqueued task must survive until that task has had its chance
// to probe — pruning may only advance past the minimum outstanding gseq.

TEST(EnginePoolLedger, TombstoneSurvivesSubmissionRingLatency) {
  constexpr size_t kLen = 2 * kKiB;
  core::CopierService::Options options;
  options.config.enable_engine_pool = true;
  options.config.engine_count = 2;
  core::CopierService service(std::move(options));
  core::Client* early = service.AttachKernelClient("early");
  core::Client* late = service.AttachKernelClient("late");

  std::vector<uint8_t> shared(kLen, 0);
  std::vector<uint8_t> old_pattern(kLen, 0xAA);
  std::vector<uint8_t> new_pattern(kLen, 0xBB);

  // The older (lower-gseq) write is stamped but lingers un-ingested while the
  // newer write fully lands AND retires; only then does it enter its ring.
  core::CopyQueueEntry old_write;
  old_write.task.dst = core::MemRef::Kernel(shared.data());
  old_write.task.src = core::MemRef::Kernel(old_pattern.data());
  old_write.task.length = kLen;
  old_write.task.gseq = service.AllocateGlobalSeq();

  core::CopyQueueEntry new_write;
  new_write.task.dst = core::MemRef::Kernel(shared.data());
  new_write.task.src = core::MemRef::Kernel(new_pattern.data());
  new_write.task.length = kLen;
  new_write.task.gseq = service.AllocateGlobalSeq();
  ASSERT_TRUE(late->default_pair().kernel.copy_q.TryPush(std::move(new_write)));
  service.DrainAll();
  EXPECT_EQ(shared, new_pattern);

  // Dead-write suppression must still find the newer write's tombstone.
  ASSERT_TRUE(early->default_pair().kernel.copy_q.TryPush(std::move(old_write)));
  service.DrainAll();
  EXPECT_EQ(shared, new_pattern) << "pruned tombstone let an older stamped write land on top";
}

// The same window across the private->shared transition: the owner's
// own-space write ingests as private (no ledger entry, no tombstone) and
// lands before a lower-gseq foreign write — stamped earlier, still in its
// ring — first turns the domain shared. The foreign write must find the
// owner's landed write in its completed-write log (SettleForeign's owner-log
// scan) and be suppressed.

TEST(EnginePoolLedger, OwnerPrivateWriteSurvivesSharedTransition) {
  constexpr size_t kLen = kKiB;
  constexpr size_t kArenaBytes = 8 * kKiB;
  simos::SimKernel kernel;
  core::CopierService::Options options;
  options.config.enable_engine_pool = true;
  options.config.engine_count = 2;
  core::CopierService service(std::move(options));
  simos::Process* proc = kernel.CreateProcess("owner");
  core::Client* owner = service.AttachProcess(proc);
  lib::CopierLib lib(owner, &service);
  auto arena = proc->mem().MapAnonymous(kArenaBytes, "arena", true);
  ASSERT_TRUE(arena.ok());
  FillPattern(proc->mem(), *arena, kArenaBytes, 42);
  core::Client* foreign = service.AttachKernelClient("foreign");

  // Foreign write into the owner's space: stamped first (lower gseq), queued
  // only after the owner's private write has landed and retired.
  std::vector<uint8_t> stale(kLen, 0xCC);
  core::CopyQueueEntry entry;
  entry.task.dst = core::MemRef::User(&proc->mem(), *arena);
  entry.task.src = core::MemRef::Kernel(stale.data());
  entry.task.length = kLen;
  entry.task.gseq = service.AllocateGlobalSeq();

  // Owner's own-space copy: higher gseq, private at ingestion (the domain is
  // not shared yet), completes and retires entirely.
  lib.amemcpy(*arena, *arena + 4 * kKiB, kLen);
  ASSERT_TRUE(lib.csync_all().ok());
  service.DrainAll();
  const std::vector<uint8_t> want = ReadAll(proc->mem(), *arena, kLen);
  ASSERT_NE(want, stale);

  ASSERT_TRUE(foreign->default_pair().kernel.copy_q.TryPush(std::move(entry)));
  service.DrainAll();
  EXPECT_EQ(ReadAll(proc->mem(), *arena, kLen), want)
      << "foreign lower-gseq write overwrote the owner's newer private write";
}

}  // namespace
}  // namespace copier::test
