// RangeIndex unit tests plus a randomized differential test: a long random
// op stream (insert / erase / overlap query) replayed against a reference
// linear-scan implementation, asserting identical answers — the same queries
// the Engine issues (producer lookup, conflict matching, abort matching).
#include "src/core/range_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

namespace copier::core {
namespace {

using Side = RangeIndex::Side;

std::vector<uint64_t> CollectOrders(RangeIndex& index, Side side, uint64_t domain,
                                    uint64_t start, size_t length) {
  std::vector<uint64_t> orders;
  index.ForEachOverlap(side, domain, start, length, [&](const RangeIndex::Entry& entry) {
    orders.push_back(entry.order);
    return true;
  });
  return orders;
}

TEST(RangeIndex, EmptyIndexFindsNothing) {
  RangeIndex index;
  EXPECT_TRUE(index.empty());
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(CollectOrders(index, Side::kDst, 1, 0, 4096).empty());
}

TEST(RangeIndex, InsertAndStabbingQuery) {
  RangeIndex index;
  index.Insert(Side::kDst, 1, 0x1000, 0x100, /*order=*/1, nullptr);
  index.Insert(Side::kDst, 1, 0x2000, 0x100, /*order=*/2, nullptr);
  EXPECT_EQ(index.size(), 2u);

  EXPECT_EQ(CollectOrders(index, Side::kDst, 1, 0x1080, 1), std::vector<uint64_t>{1});
  EXPECT_EQ(CollectOrders(index, Side::kDst, 1, 0x2000, 1), std::vector<uint64_t>{2});
  // Half-open: the byte one past the end does not match.
  EXPECT_TRUE(CollectOrders(index, Side::kDst, 1, 0x1100, 1).empty());
  // A spanning query returns both, ascending by address.
  EXPECT_EQ(CollectOrders(index, Side::kDst, 1, 0x1000, 0x1100),
            (std::vector<uint64_t>{1, 2}));
}

TEST(RangeIndex, SidesAreIndependent) {
  RangeIndex index;
  index.Insert(Side::kDst, 1, 0x1000, 0x100, 1, nullptr);
  index.Insert(Side::kSrc, 1, 0x1000, 0x100, 2, nullptr);
  EXPECT_EQ(CollectOrders(index, Side::kDst, 1, 0x1000, 0x100), std::vector<uint64_t>{1});
  EXPECT_EQ(CollectOrders(index, Side::kSrc, 1, 0x1000, 0x100), std::vector<uint64_t>{2});
}

TEST(RangeIndex, DomainsDoNotBleed) {
  RangeIndex index;
  index.Insert(Side::kDst, 1, 0x1000, 0x100, 1, nullptr);
  index.Insert(Side::kDst, 2, 0x1000, 0x100, 2, nullptr);
  EXPECT_EQ(CollectOrders(index, Side::kDst, 1, 0x1000, 0x100), std::vector<uint64_t>{1});
  EXPECT_EQ(CollectOrders(index, Side::kDst, 2, 0x1000, 0x100), std::vector<uint64_t>{2});
  // Domain 1's address space ends where domain 2's begins (the packed key is
  // (domain, addr)); a query at the top of domain 1 must not see domain 2.
  index.Insert(Side::kDst, 1, UINT64_MAX - 0x10, 0x10, 3, nullptr);
  EXPECT_EQ(CollectOrders(index, Side::kDst, 1, UINT64_MAX - 0x10, 0x10),
            std::vector<uint64_t>{3});
  EXPECT_EQ(CollectOrders(index, Side::kDst, 2, 0, 0x2000), std::vector<uint64_t>{2});
}

TEST(RangeIndex, DuplicateCoordinatesDistinguishedByOrder) {
  RangeIndex index;
  index.Insert(Side::kDst, 1, 0x1000, 0x100, 5, nullptr);
  index.Insert(Side::kDst, 1, 0x1000, 0x200, 9, nullptr);
  EXPECT_EQ(index.size(), 2u);
  index.Erase(Side::kDst, 1, 0x1000, 5);
  EXPECT_EQ(index.size(), 1u);
  EXPECT_EQ(CollectOrders(index, Side::kDst, 1, 0x1000, 1), std::vector<uint64_t>{9});
  // Erasing an absent entry is a no-op.
  index.Erase(Side::kDst, 1, 0x1000, 5);
  EXPECT_EQ(index.size(), 1u);
}

TEST(RangeIndex, ZeroLengthInsertIsIgnored) {
  RangeIndex index;
  index.Insert(Side::kDst, 1, 0x1000, 0, 1, nullptr);
  EXPECT_TRUE(index.empty());
}

TEST(RangeIndex, EarlyStopReportsTouchedCount) {
  RangeIndex index;
  for (uint64_t i = 0; i < 16; ++i) {
    index.Insert(Side::kDst, 1, 0x1000 + i * 0x100, 0x100, i, nullptr);
  }
  size_t seen = 0;
  const size_t touched =
      index.ForEachOverlap(Side::kDst, 1, 0x1000, 16 * 0x100, [&](const RangeIndex::Entry&) {
        ++seen;
        return seen < 3;  // stop after the third entry
      });
  EXPECT_EQ(seen, 3u);
  EXPECT_EQ(touched, 3u);
}

// --- randomized differential test -----------------------------------------

struct RefEntry {
  uint64_t domain;
  uint64_t start;
  size_t length;
  uint64_t order;
};

// Reference model: plain vectors + linear scans (the code path the index
// replaces in the Engine).
struct RefIndex {
  std::vector<RefEntry> sides[2];

  void Insert(Side side, uint64_t domain, uint64_t start, size_t length, uint64_t order) {
    if (length == 0) {
      return;
    }
    sides[static_cast<size_t>(side)].push_back({domain, start, length, order});
  }
  void Erase(Side side, uint64_t domain, uint64_t start, uint64_t order) {
    auto& v = sides[static_cast<size_t>(side)];
    for (auto it = v.begin(); it != v.end(); ++it) {
      if (it->domain == domain && it->start == start && it->order == order) {
        v.erase(it);
        return;
      }
    }
  }
  // Overlap hits as (start, order) pairs in the index's enumeration order.
  std::vector<std::pair<uint64_t, uint64_t>> Overlap(Side side, uint64_t domain,
                                                     uint64_t start, size_t length) const {
    std::vector<std::pair<uint64_t, uint64_t>> hits;
    for (const RefEntry& e : sides[static_cast<size_t>(side)]) {
      if (e.domain == domain && e.start < start + length && start < e.start + e.length) {
        hits.emplace_back(e.start, e.order);
      }
    }
    std::sort(hits.begin(), hits.end());
    return hits;
  }
  size_t size() const { return sides[0].size() + sides[1].size(); }
};

// Deterministic PRNG (xorshift64*) so failures reproduce.
struct Rng {
  uint64_t state = 0x243f6a8885a308d3ull;
  uint64_t Next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1dull;
  }
  uint64_t Below(uint64_t n) { return Next() % n; }
};

TEST(RangeIndexDifferential, TenThousandRandomOpsMatchLinearReference) {
  RangeIndex index;
  RefIndex ref;
  Rng rng;
  uint64_t next_order = 0;
  // Live entries for targeted erases, as (side, domain, start, order).
  std::vector<std::tuple<Side, uint64_t, uint64_t, uint64_t>> live;

  // Small universe so ranges overlap heavily: 2 domains, addresses < 4096,
  // lengths 1..256.
  const auto rand_domain = [&] { return 1 + rng.Below(2); };
  const auto rand_side = [&] { return rng.Below(2) == 0 ? Side::kDst : Side::kSrc; };

  for (int op = 0; op < 10000; ++op) {
    const uint64_t kind = rng.Below(10);
    if (kind < 5 || live.empty()) {  // insert (also forced while empty)
      const Side side = rand_side();
      const uint64_t domain = rand_domain();
      const uint64_t start = rng.Below(4096);
      const size_t length = 1 + rng.Below(256);
      const uint64_t order = next_order++;
      index.Insert(side, domain, start, length, order, nullptr);
      ref.Insert(side, domain, start, length, order);
      live.emplace_back(side, domain, start, order);
    } else if (kind < 7) {  // erase a random live entry
      const size_t victim = rng.Below(live.size());
      const auto [side, domain, start, order] = live[victim];
      index.Erase(side, domain, start, order);
      ref.Erase(side, domain, start, order);
      live[victim] = live.back();
      live.pop_back();
    } else {  // overlap query, compared element-for-element
      const Side side = rand_side();
      const uint64_t domain = rand_domain();
      const uint64_t start = rng.Below(4096);
      const size_t length = 1 + rng.Below(512);
      std::vector<std::pair<uint64_t, uint64_t>> got;
      index.ForEachOverlap(side, domain, start, length, [&](const RangeIndex::Entry& e) {
        got.emplace_back(e.start, e.order);
        return true;
      });
      ASSERT_EQ(got, ref.Overlap(side, domain, start, length))
          << "op=" << op << " side=" << static_cast<int>(side) << " domain=" << domain
          << " query=[" << start << "," << start + length << ")";
    }
    ASSERT_EQ(index.size(), ref.size()) << "op=" << op;
  }

  // Drain: erase everything and confirm the index empties cleanly.
  for (const auto& [side, domain, start, order] : live) {
    index.Erase(side, domain, start, order);
  }
  EXPECT_TRUE(index.empty());
}

}  // namespace
}  // namespace copier::core
