// Shared fixtures and helpers for the Copier test suite.
#ifndef COPIER_TESTS_TEST_UTIL_H_
#define COPIER_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/linux_glue.h"
#include "src/core/service.h"
#include "src/libcopier/libcopier.h"
#include "src/simos/kernel.h"

namespace copier::test {

// Fills `n` bytes at `va` with a deterministic pattern derived from `seed`.
inline void FillPattern(simos::AddressSpace& space, uint64_t va, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> bytes(n);
  for (auto& b : bytes) {
    b = static_cast<uint8_t>(rng.Next());
  }
  ASSERT_TRUE(space.WriteBytes(va, bytes.data(), n).ok());
}

inline std::vector<uint8_t> ReadAll(simos::AddressSpace& space, uint64_t va, size_t n) {
  std::vector<uint8_t> bytes(n);
  EXPECT_TRUE(space.ReadBytes(va, bytes.data(), n).ok());
  return bytes;
}

inline void ExpectSameBytes(simos::AddressSpace& space, uint64_t a, uint64_t b, size_t n) {
  const auto left = ReadAll(space, a, n);
  const auto right = ReadAll(space, b, n);
  EXPECT_EQ(left, right);
}

// A full manual-mode stack: kernel, Copier service, Copier-Linux glue, one
// attached process with a CopierLib.
class CopierStack {
 public:
  explicit CopierStack(core::CopierConfig config = {},
                       simos::PhysicalMemory::AllocPolicy policy =
                           simos::PhysicalMemory::AllocPolicy::kSequential) {
    simos::SimKernel::Config kconfig;
    kconfig.alloc_policy = policy;
    kernel = std::make_unique<simos::SimKernel>(kconfig);
    core::CopierService::Options options;
    options.config = config;
    service = std::make_unique<core::CopierService>(std::move(options));
    glue = std::make_unique<core::CopierLinux>(service.get(), kernel.get());
    glue->Install();
    proc = kernel->CreateProcess("test");
    client = service->AttachProcess(proc);
    lib = std::make_unique<lib::CopierLib>(client, service.get());
  }

  // Maps and populates an anonymous buffer; returns its VA.
  uint64_t Map(size_t n, const std::string& name = "buf", bool populate = true) {
    auto va = proc->mem().MapAnonymous(n, name, populate);
    EXPECT_TRUE(va.ok());
    return *va;
  }

  std::unique_ptr<simos::SimKernel> kernel;
  std::unique_ptr<core::CopierService> service;
  std::unique_ptr<core::CopierLinux> glue;
  simos::Process* proc = nullptr;
  core::Client* client = nullptr;
  std::unique_ptr<lib::CopierLib> lib;
};

}  // namespace copier::test

#endif  // COPIER_TESTS_TEST_UTIL_H_
