// Threaded-scheduler tests: the sharded run-queue scheduler (service.h,
// DESIGN.md §7) under real Copier threads — CFS-analogue fairness across
// cgroups, work stealing, attach/detach churn while serving, and a
// differential run asserting the sharded and global-mutex linear schedulers
// complete identical task sets with identical bytes. Plus deterministic unit
// tests of the ShardRunQueue ordering itself.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "src/core/sched.h"
#include "tests/test_util.h"

namespace copier::test {
namespace {

// ---------------------------------------------------------------------------
// ShardRunQueue unit tests (deterministic, no threads)
// ---------------------------------------------------------------------------

TEST(ShardRunQueue, PopMinOrdersByCgroupVruntimeThenClientLength) {
  core::CopierConfig config;
  core::Cgroup behind("behind", core::kDefaultCopierShares);
  core::Cgroup ahead("ahead", core::kDefaultCopierShares);
  ahead.Account(1000);  // larger vruntime: scheduled after `behind`
  core::Client light(1, nullptr, config);
  core::Client heavy(2, nullptr, config);
  core::Client other(3, nullptr, config);
  light.cgroup = &behind;
  heavy.cgroup = &behind;
  other.cgroup = &ahead;
  heavy.total_copy_length.store(500, std::memory_order_relaxed);

  core::ShardRunQueue queue;
  std::lock_guard<std::mutex> lock(queue.mu);
  queue.Insert(other);
  queue.Insert(heavy);
  queue.Insert(light);
  EXPECT_EQ(queue.ApproxSize(), 3u);
  // Min-vruntime cgroup first; inside it, min total copy length.
  EXPECT_EQ(queue.PopMin(), &light);
  EXPECT_EQ(queue.PopMin(), &heavy);
  EXPECT_EQ(queue.PopMin(), &other);
  EXPECT_EQ(queue.PopMin(), nullptr);
  EXPECT_TRUE(queue.Empty());
}

TEST(ShardRunQueue, PopMaxBacklogPicksHottestClientAcrossCgroups) {
  core::CopierConfig config;
  core::Cgroup group_a("a", core::kDefaultCopierShares);
  core::Cgroup group_b("b", core::kDefaultCopierShares);
  core::Client cold(1, nullptr, config);
  core::Client hot(2, nullptr, config);
  cold.cgroup = &group_a;
  hot.cgroup = &group_b;
  cold.submitted_bytes.store(1024, std::memory_order_relaxed);
  hot.submitted_bytes.store(1 << 20, std::memory_order_relaxed);

  core::ShardRunQueue queue;
  std::lock_guard<std::mutex> lock(queue.mu);
  queue.Insert(cold);
  queue.Insert(hot);
  EXPECT_EQ(queue.PopMaxBacklog(), &hot);
  EXPECT_EQ(queue.PopMaxBacklog(), &cold);
  EXPECT_EQ(queue.PopMaxBacklog(), nullptr);
}

// Deterministic CFS-analogue simulation: drive one shard's pick/serve/requeue
// loop by hand and check the service split follows copier.shares (§4.5.2).
TEST(ShardRunQueue, ServiceSplitFollowsShareRatio) {
  core::CopierConfig config;
  core::Cgroup favored("favored", 8 * core::kDefaultCopierShares);
  core::Cgroup modest("modest", core::kDefaultCopierShares);
  core::Client a(1, nullptr, config);
  core::Client b(2, nullptr, config);
  a.cgroup = &favored;
  b.cgroup = &modest;

  core::ShardRunQueue queue;
  std::lock_guard<std::mutex> lock(queue.mu);
  queue.Insert(a);
  queue.Insert(b);
  const uint64_t kSlice = 256 * kKiB;
  uint64_t served_a = 0;
  uint64_t served_b = 0;
  for (int round = 0; round < 900; ++round) {
    core::Client* picked = queue.PopMin();
    ASSERT_NE(picked, nullptr);
    picked->cgroup->Account(kSlice);
    picked->cgroup->AccountRaw(kSlice);
    picked->total_copy_length.fetch_add(kSlice, std::memory_order_relaxed);
    (picked == &a ? served_a : served_b) += kSlice;
    queue.Insert(*picked);  // still runnable: requeue with fresh keys
  }
  // Ideal split is 8:1; slice granularity leaves at most one slice of skew.
  ASSERT_GT(served_b, 0u);
  const double ratio = static_cast<double>(served_a) / static_cast<double>(served_b);
  EXPECT_GE(ratio, 7.0);
  EXPECT_LE(ratio, 9.0);
}

TEST(ShardRunQueue, RemoveDropsOnlyTheNamedClient) {
  core::CopierConfig config;
  core::Cgroup group("g", core::kDefaultCopierShares);
  core::Client a(1, nullptr, config);
  core::Client b(2, nullptr, config);
  a.cgroup = &group;
  b.cgroup = &group;

  core::ShardRunQueue queue;
  std::lock_guard<std::mutex> lock(queue.mu);
  queue.Insert(a);
  queue.Insert(b);
  EXPECT_TRUE(queue.Remove(a));
  EXPECT_FALSE(queue.Remove(a));  // already gone
  EXPECT_EQ(queue.ApproxSize(), 1u);
  EXPECT_EQ(queue.PopMin(), &b);
  EXPECT_FALSE(queue.Remove(b));
}

// ---------------------------------------------------------------------------
// Threaded-service harness
// ---------------------------------------------------------------------------

// One worker process + lib attached to a shared threaded service. The arena
// holds a read-only source slot followed by `slots` destination slots; every
// submitted copy reads the source slot into a distinct destination, so the
// final bytes are order-independent (each slot equals the source pattern).
struct Worker {
  Worker(simos::SimKernel& kernel, core::CopierService& service, core::Cgroup* cgroup,
         size_t slots, size_t slot_bytes)
      : slots(slots), slot_bytes(slot_bytes) {
    proc = kernel.CreateProcess("worker");
    client = service.AttachProcess(proc, cgroup);
    lib = std::make_unique<lib::CopierLib>(client, &service);
    auto va = proc->mem().MapAnonymous((slots + 1) * slot_bytes, "arena", true);
    EXPECT_TRUE(va.ok());
    arena = *va;
    FillPattern(proc->mem(), arena, slot_bytes, 0xC0FFEE + client->id());
  }

  void SubmitAll() {
    for (size_t i = 0; i < slots; ++i) {
      lib->amemcpy(arena + (i + 1) * slot_bytes, arena, slot_bytes);
    }
  }

  void VerifyAll() {
    ASSERT_TRUE(lib->csync_all().ok());
    for (size_t i = 0; i < slots; ++i) {
      ExpectSameBytes(proc->mem(), arena, arena + (i + 1) * slot_bytes, slot_bytes);
    }
  }

  size_t slots;
  size_t slot_bytes;
  simos::Process* proc = nullptr;
  core::Client* client = nullptr;
  std::unique_ptr<lib::CopierLib> lib;
  uint64_t arena = 0;
};

core::CopierService::Options ThreadedOptions(size_t threads, bool sharded) {
  core::CopierService::Options options;
  options.mode = core::CopierService::Mode::kThreaded;
  options.config.min_threads = threads;
  options.config.max_threads = threads;
  options.config.enable_sharded_scheduler = sharded;
  return options;
}

// ---------------------------------------------------------------------------
// Cgroup fairness under 4 threads (§4.5.2)
// ---------------------------------------------------------------------------

TEST(ThreadedScheduler, ShareWeightedFairnessAcrossCgroups) {
  simos::SimKernel kernel;
  auto options = ThreadedOptions(4, /*sharded=*/true);
  // Stealing is work conservation, not fairness: a thief takes the highest-
  // backlog client — by construction the one fairness has served least. On an
  // oversubscribed host, OS preemption makes sibling shards look idle and
  // steals would blur the share split this test measures, so pin it off.
  options.config.enable_work_stealing = false;
  core::CopierService service(std::move(options));
  core::Cgroup* favored = service.CreateCgroup("favored", 8 * core::kDefaultCopierShares);
  core::Cgroup* modest = service.CreateCgroup("modest", core::kDefaultCopierShares);

  // Four clients per group, attached so every shard holds one client of each
  // (ids 1..4 -> favored, 5..8 -> modest; home shard = id % 4).
  const size_t kSlots = 64;
  const size_t kSlotBytes = 32 * kKiB;
  std::vector<std::unique_ptr<Worker>> workers;
  for (int i = 0; i < 8; ++i) {
    workers.push_back(std::make_unique<Worker>(kernel, service, i < 4 ? favored : modest,
                                               kSlots, kSlotBytes));
  }
  for (auto& worker : workers) {
    worker->SubmitAll();
  }
  const uint64_t per_group = 4 * kSlots * kSlotBytes;
  const uint64_t slack = 4 * service.config().copy_slice_bytes;  // in-flight slices

  // With an 8:1 share split the favored group must never trail the modest one
  // (beyond in-flight slice accounting) at any observable instant: the CFS
  // pick always prefers the group with less weighted service.
  service.Start();
  uint64_t favored_bytes = 0;
  uint64_t modest_bytes = 0;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    favored_bytes = favored->total_bytes();
    modest_bytes = modest->total_bytes();
    ASSERT_GE(favored_bytes + slack, modest_bytes);
    if (favored_bytes + modest_bytes >= 2 * per_group) {
      break;
    }
    std::this_thread::yield();
  }
  ASSERT_GE(favored_bytes + modest_bytes, per_group) << "service made no progress";

  for (auto& worker : workers) {
    worker->VerifyAll();
  }
  service.Stop();
  // Every submitted byte lands eventually. csync promotions (PromoteRange)
  // execute outside the slice accounting, so totals may fall short of the
  // demand by in-flight promotion bytes — never exceed it.
  EXPECT_GE(favored->total_bytes() + slack, per_group);
  EXPECT_LE(favored->total_bytes(), per_group);
  EXPECT_GE(modest->total_bytes() + slack, per_group);
  EXPECT_LE(modest->total_bytes(), per_group);
}

// ---------------------------------------------------------------------------
// Work stealing: hot shard, idle thieves
// ---------------------------------------------------------------------------

TEST(ThreadedScheduler, IdleThreadsStealFromHotShard) {
  simos::SimKernel kernel;
  auto options = ThreadedOptions(4, /*sharded=*/true);
  options.config.idle_spins_before_sleep = 8;  // reach the steal path quickly
  core::CopierService service(std::move(options));

  // Five clients; ids 1 and 5 share home shard 1 (id % 4), the rest stay
  // idle — so shard 1 is hot while threads 0, 2 and 3 have nothing local.
  const size_t kSlots = 256;
  const size_t kSlotBytes = 32 * kKiB;
  std::vector<std::unique_ptr<Worker>> workers;
  for (int i = 0; i < 5; ++i) {
    workers.push_back(
        std::make_unique<Worker>(kernel, service, nullptr, kSlots, kSlotBytes));
  }
  Worker& hot_a = *workers[0];
  Worker& hot_b = *workers[4];
  ASSERT_EQ(hot_a.client->home_shard, hot_b.client->home_shard);
  hot_a.SubmitAll();
  hot_b.SubmitAll();

  service.Start();
  hot_a.VerifyAll();
  hot_b.VerifyAll();
  service.Stop();

  const auto stats = service.sched_stats();
  EXPECT_GT(stats.steal_attempts, 0u);
  EXPECT_GT(stats.steals, 0u) << "idle threads never stole from the hot shard";
}

// ---------------------------------------------------------------------------
// Attach/detach churn while serving
// ---------------------------------------------------------------------------

void RunAttachDetachChurn(bool sharded) {
  simos::SimKernel kernel;
  auto options = ThreadedOptions(4, sharded);
  options.config.idle_spins_before_sleep = 64;  // keep steal/reconcile hot too
  core::CopierService service(std::move(options));

  Worker stable(kernel, service, nullptr, 16, 16 * kKiB);
  service.Start();

  // Background load on a long-lived client while clients come and go.
  std::atomic<bool> stop{false};
  std::thread background([&] {
    while (!stop.load(std::memory_order_acquire)) {
      stable.SubmitAll();
      ASSERT_TRUE(stable.lib->csync_all().ok());
    }
  });

  for (int round = 0; round < 40; ++round) {
    Worker churn(kernel, service, nullptr, 8, 16 * kKiB);
    churn.SubmitAll();
    churn.VerifyAll();
    const uint64_t gone_id = churn.client->id();
    service.DetachClient(*churn.client);
    EXPECT_EQ(service.ClientById(gone_id), nullptr);
  }

  stop.store(true, std::memory_order_release);
  background.join();
  stable.VerifyAll();
  service.Stop();
}

TEST(ThreadedScheduler, AttachDetachChurnWhileServing) {
  RunAttachDetachChurn(/*sharded=*/true);
}

// The linear baseline picks by scanning clients_ under mu_; detach must pull
// the client out of that table before freeing it, or a concurrent pick races
// the teardown.
TEST(ThreadedScheduler, AttachDetachChurnWhileServingLinearBaseline) {
  RunAttachDetachChurn(/*sharded=*/false);
}

// ---------------------------------------------------------------------------
// Differential: sharded vs linear scheduler, identical task sets
// ---------------------------------------------------------------------------

std::vector<uint8_t> RunDifferentialScenario(bool sharded,
                                             core::CopierService::SchedStats* stats_out) {
  simos::SimKernel kernel;
  core::CopierService service(ThreadedOptions(4, sharded));
  const size_t kSlots = 48;
  const size_t kSlotBytes = 16 * kKiB;
  std::vector<std::unique_ptr<Worker>> workers;
  for (int i = 0; i < 6; ++i) {
    workers.push_back(
        std::make_unique<Worker>(kernel, service, nullptr, kSlots, kSlotBytes));
  }
  service.Start();
  for (auto& worker : workers) {
    worker->SubmitAll();
  }
  std::vector<uint8_t> bytes;
  for (auto& worker : workers) {
    EXPECT_TRUE(worker->lib->csync_all().ok());
    const auto arena =
        ReadAll(worker->proc->mem(), worker->arena, (worker->slots + 1) * worker->slot_bytes);
    bytes.insert(bytes.end(), arena.begin(), arena.end());
  }
  service.Stop();
  if (stats_out != nullptr) {
    *stats_out = service.sched_stats();
  }
  return bytes;
}

TEST(ThreadedScheduler, ShardedAndLinearCompleteIdenticalTaskSets) {
  core::CopierService::SchedStats sharded_stats;
  core::CopierService::SchedStats linear_stats;
  const auto sharded_bytes = RunDifferentialScenario(/*sharded=*/true, &sharded_stats);
  const auto linear_bytes = RunDifferentialScenario(/*sharded=*/false, &linear_stats);
  ASSERT_EQ(sharded_bytes.size(), linear_bytes.size());
  ASSERT_EQ(sharded_bytes, linear_bytes);

  // Mode signatures: the sharded run used targeted wakeups and never ran the
  // linear scan; the baseline scanned clients and broadcast its wakeups.
  EXPECT_GT(sharded_stats.targeted_wakeups, 0u);
  EXPECT_EQ(sharded_stats.clients_scanned, 0u);
  EXPECT_GT(linear_stats.clients_scanned, 0u);
  EXPECT_GT(linear_stats.broadcast_wakeups, 0u);
  EXPECT_GT(sharded_stats.picks, 0u);
  EXPECT_GT(linear_stats.picks, 0u);
}

}  // namespace
}  // namespace copier::test
