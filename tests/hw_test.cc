// Unit tests for the hardware layer: copy units, timing model, DMA engine.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/align.h"
#include "src/hw/copy_unit.h"
#include "src/hw/dma_engine.h"
#include "src/hw/timing_model.h"

namespace copier::hw {
namespace {

TEST(CopyUnits, AvxAndErmsMoveBytesCorrectly) {
  for (size_t n : {size_t{1}, size_t{31}, size_t{64}, size_t{100}, size_t{4096}, size_t{70000}}) {
    std::vector<uint8_t> src(n);
    for (size_t i = 0; i < n; ++i) {
      src[i] = static_cast<uint8_t>(i * 31 + 7);
    }
    std::vector<uint8_t> dst_avx(n, 0);
    std::vector<uint8_t> dst_erms(n, 0);
    AvxCopy(dst_avx.data(), src.data(), n);
    ErmsCopy(dst_erms.data(), src.data(), n);
    EXPECT_EQ(dst_avx, src) << "AVX n=" << n;
    EXPECT_EQ(dst_erms, src) << "ERMS n=" << n;
  }
}

TEST(TimingModel, CurveInterpolationMonotoneCost) {
  const TimingModel& m = TimingModel::Default();
  Cycles prev = 0;
  for (size_t n = 256; n <= 4 * kMiB; n *= 2) {
    const Cycles c = m.avx.CopyCycles(n);
    EXPECT_GT(c, prev) << n;  // bigger copies cost more cycles
    prev = c;
  }
}

TEST(TimingModel, RelativeUnitPerformanceMatchesPaper) {
  const TimingModel& m = TimingModel::Default();
  // AVX beats ERMS across the range (Fig. 9 premise).
  for (size_t n : {size_t{1024}, size_t{4096}, size_t{65536}, size_t{262144}}) {
    EXPECT_LT(m.avx.CopyCycles(n), m.erms.CopyCycles(n)) << n;
  }
  // DMA is slower than AVX standalone, especially for small sizes (Fig. 7-a).
  EXPECT_GT(m.DmaTransferCycles(1024), m.avx.CopyCycles(1024));
  EXPECT_GT(m.DmaTransferCycles(256 * kKiB), m.avx.CopyCycles(256 * kKiB));
  // DMA submission cost ≈ AVX time for ~1.4 KiB (§4.3).
  const Cycles avx_1_4k = m.avx.CopyCycles(1433);
  EXPECT_NEAR(static_cast<double>(m.dma_submit_cycles), static_cast<double>(avx_1_4k),
              avx_1_4k * 0.35);
}

TEST(TimingModel, CalibratedKeepsDmaRatio) {
  const TimingModel calibrated = TimingModel::Calibrated();
  EXPECT_GT(calibrated.avx.BytesPerCycle(4096), 0.1);
  EXPECT_LT(calibrated.dma.BytesPerCycle(256 * kKiB),
            calibrated.avx.BytesPerCycle(256 * kKiB));
}

TEST(DmaEngine, MovesDataAndModelsCompletion) {
  const TimingModel& m = TimingModel::Default();
  DmaEngine dma(&m);
  std::vector<uint8_t> src(64 * kKiB, 0x5A);
  std::vector<uint8_t> dst(64 * kKiB, 0);

  DmaDescriptor desc{dst.data(), src.data(), src.size()};
  auto cookie = dma.SubmitBatch({&desc, 1}, /*now=*/1000);
  ASSERT_TRUE(cookie.ok());
  // Data moved eagerly.
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), src.size()), 0);
  // Completion is in the modeled future.
  const Cycles completion = dma.CompletionTime(*cookie);
  EXPECT_GT(completion, 1000u + m.dma_submit_cycles);
  EXPECT_FALSE(dma.IsComplete(*cookie, 1000));
  EXPECT_TRUE(dma.IsComplete(*cookie, completion));
  EXPECT_EQ(dma.Poll(completion), 1u);
  EXPECT_EQ(dma.in_flight(), 0u);
}

TEST(DmaEngine, SerialChannelQueues) {
  const TimingModel& m = TimingModel::Default();
  DmaEngine dma(&m);
  std::vector<uint8_t> buf(8 * kKiB);
  DmaDescriptor desc{buf.data(), buf.data() + 4 * kKiB, 4 * kKiB};
  auto c1 = dma.SubmitBatch({&desc, 1}, 0);
  auto c2 = dma.SubmitBatch({&desc, 1}, 0);
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_GT(dma.CompletionTime(*c2), dma.CompletionTime(*c1));
}

TEST(DmaEngine, RingFullRejects) {
  const TimingModel& m = TimingModel::Default();
  DmaEngine dma(&m, /*ring_slots=*/2);
  std::vector<uint8_t> buf(kPageSize * 2);
  DmaDescriptor desc{buf.data(), buf.data() + kPageSize, kPageSize};
  ASSERT_TRUE(dma.SubmitBatch({&desc, 1}, 0).ok());
  ASSERT_TRUE(dma.SubmitBatch({&desc, 1}, 0).ok());
  auto full = dma.SubmitBatch({&desc, 1}, 0);
  EXPECT_FALSE(full.ok());
  EXPECT_EQ(full.status().code(), StatusCode::kUnavailable);
  // Poll past completion frees slots.
  dma.Poll(UINT64_MAX);
  EXPECT_TRUE(dma.SubmitBatch({&desc, 1}, 0).ok());
}

TEST(DmaEngine, BatchSubmissionCostScales) {
  const TimingModel& m = TimingModel::Default();
  DmaEngine dma(&m);
  EXPECT_EQ(dma.SubmissionCost(1), m.dma_submit_cycles);
  EXPECT_EQ(dma.SubmissionCost(4), m.dma_submit_cycles + 3 * m.dma_per_desc_cycles);
}

}  // namespace
}  // namespace copier::hw
