// CsyncAdvisor tests: the CopierGen-analogue must find every missing csync a
// porting engineer would need and flag redundant ones (§5.1.3).
#include "src/sanitizer/csync_advisor.h"

#include <gtest/gtest.h>

namespace copier::sanitizer {
namespace {

using Kind = TraceEvent::Kind;

TraceEvent Copy(uint64_t dst, uint64_t src, size_t n, const char* site = "") {
  return {Kind::kAmemcpy, dst, src, n, site};
}
TraceEvent Sync(uint64_t addr, size_t n, const char* site = "") {
  return {Kind::kCsync, addr, 0, n, site};
}
TraceEvent Read(uint64_t addr, size_t n, const char* site = "") {
  return {Kind::kRead, addr, 0, n, site};
}
TraceEvent Write(uint64_t addr, size_t n, const char* site = "") {
  return {Kind::kWrite, addr, 0, n, site};
}
TraceEvent Free(uint64_t addr, size_t n, const char* site = "") {
  return {Kind::kFree, addr, 0, n, site};
}

TEST(CsyncAdvisor, CleanProgramGetsNoAdvice) {
  CsyncAdvisor advisor;
  const auto advice = advisor.Analyze({
      Copy(0x1000, 0x9000, 4096),
      Sync(0x1000, 4096),
      Read(0x1000, 4096),
      Free(0x9000, 4096),
  });
  EXPECT_TRUE(advice.empty()) << CsyncAdvisor::Render(advice);
}

TEST(CsyncAdvisor, MissingCsyncBeforeReadIsReported) {
  CsyncAdvisor advisor;
  const auto advice = advisor.Analyze({
      Copy(0x1000, 0x9000, 4096, "app.cc:10"),
      Read(0x1000, 64, "app.cc:11"),
  });
  ASSERT_EQ(advice.size(), 1u);
  EXPECT_EQ(advice[0].kind, Advice::Kind::kInsertCsync);
  EXPECT_EQ(advice[0].site, "app.cc:11");
  EXPECT_EQ(advice[0].addr, 0x1000u);
}

TEST(CsyncAdvisor, SourceWriteAndFreeAreReported) {
  CsyncAdvisor advisor;
  const auto advice = advisor.Analyze({
      Copy(0x1000, 0x9000, 4096),
      Write(0x9000, 16, "w"),  // writing the source before sync
      Copy(0x20000, 0x30000, 4096),
      Free(0x30000, 4096, "f"),  // freeing the source before sync
  });
  ASSERT_EQ(advice.size(), 2u);
  EXPECT_EQ(advice[0].site, "w");
  EXPECT_EQ(advice[1].site, "f");
  EXPECT_EQ(advice[1].kind, Advice::Kind::kInsertCsync);
}

TEST(CsyncAdvisor, RedundantCsyncIsANote) {
  CsyncAdvisor advisor;
  const auto advice = advisor.Analyze({
      Copy(0x1000, 0x9000, 4096),
      Sync(0x1000, 4096),
      Sync(0x1000, 4096, "dup"),  // second sync of the same range
      Sync(0x50000, 64, "cold"),  // sync of a never-copied range
  });
  ASSERT_EQ(advice.size(), 2u);
  EXPECT_EQ(advice[0].kind, Advice::Kind::kRedundantCsync);
  EXPECT_EQ(advice[0].site, "dup");
  EXPECT_EQ(advice[1].site, "cold");
}

TEST(CsyncAdvisor, PartialCsyncOnlyCoversItsBytes) {
  CsyncAdvisor advisor;
  const auto advice = advisor.Analyze({
      Copy(0x1000, 0x9000, 8192),
      Sync(0x1000, 4096),
      Read(0x1000, 4096),  // fine
      Read(0x2000, 64, "tail"),  // unsynced second half
  });
  ASSERT_EQ(advice.size(), 1u);
  EXPECT_EQ(advice[0].site, "tail");
}

TEST(CsyncAdvisor, AssumesTheFixAndKeepsScanning) {
  // After reporting a missing csync the advisor pretends it was inserted so
  // one omission does not cascade into dozens of reports.
  CsyncAdvisor advisor;
  const auto advice = advisor.Analyze({
      Copy(0x1000, 0x9000, 4096),
      Read(0x1000, 64, "first"),
      Read(0x1000, 64, "second"),  // would be legal once the first fix lands
  });
  ASSERT_EQ(advice.size(), 1u);
  EXPECT_EQ(advice[0].site, "first");
}

TEST(CsyncAdvisor, RenderFormatsLikeADiagnostic) {
  CsyncAdvisor advisor;
  const auto advice = advisor.Analyze({
      Copy(0x1000, 0x9000, 4096),
      Read(0x1000, 64, "kv.cc:112"),
  });
  const std::string rendered = CsyncAdvisor::Render(advice);
  EXPECT_NE(rendered.find("error: kv.cc:112"), std::string::npos);
  EXPECT_NE(rendered.find("guideline 1"), std::string::npos);
}

}  // namespace
}  // namespace copier::sanitizer
