// End-to-end tests of the libCopier API surface (Table 2) against a
// manual-mode Copier service.
#include "src/libcopier/libcopier.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace copier::test {
namespace {

TEST(LibCopier, AmemcpyThenCsyncEqualsMemcpy) {
  CopierStack stack;
  const size_t n = 32 * kKiB;
  const uint64_t src = stack.Map(n);
  const uint64_t dst = stack.Map(n);
  FillPattern(stack.proc->mem(), src, n, 1);

  stack.lib->amemcpy(dst, src, n);
  ASSERT_TRUE(stack.lib->csync(dst, n).ok());
  ExpectSameBytes(stack.proc->mem(), src, dst, n);
}

TEST(LibCopier, CsyncPartialRangeOnlyWaitsForItsSegments) {
  CopierStack stack;
  const size_t n = 64 * kKiB;
  const uint64_t src = stack.Map(n);
  const uint64_t dst = stack.Map(n);
  FillPattern(stack.proc->mem(), src, n, 2);

  stack.lib->amemcpy(dst, src, n);
  // Sync only the first 4 KiB; it must be correct immediately.
  ASSERT_TRUE(stack.lib->csync(dst, 4 * kKiB).ok());
  const auto head_src = ReadAll(stack.proc->mem(), src, 4 * kKiB);
  const auto head_dst = ReadAll(stack.proc->mem(), dst, 4 * kKiB);
  EXPECT_EQ(head_src, head_dst);
  // Now the rest.
  ASSERT_TRUE(stack.lib->csync(dst + 4 * kKiB, n - 4 * kKiB).ok());
  ExpectSameBytes(stack.proc->mem(), src, dst, n);
}

TEST(LibCopier, CsyncWithoutPriorCopyIsANoOp) {
  CopierStack stack;
  const uint64_t buf = stack.Map(kPageSize);
  EXPECT_TRUE(stack.lib->csync(buf, kPageSize).ok());
}

TEST(LibCopier, CsyncAllWaitsForEverything) {
  CopierStack stack;
  const size_t n = 8 * kKiB;
  std::vector<std::pair<uint64_t, uint64_t>> copies;
  for (int i = 0; i < 5; ++i) {
    const uint64_t src = stack.Map(n);
    const uint64_t dst = stack.Map(n);
    FillPattern(stack.proc->mem(), src, n, 100 + i);
    stack.lib->amemcpy(dst, src, n);
    copies.emplace_back(src, dst);
  }
  ASSERT_TRUE(stack.lib->csync_all().ok());
  for (const auto& [src, dst] : copies) {
    ExpectSameBytes(stack.proc->mem(), src, dst, n);
  }
}

TEST(LibCopier, SequentialCopiesToSameDestinationKeepLastValue) {
  CopierStack stack;
  const size_t n = 8 * kKiB;
  const uint64_t src1 = stack.Map(n);
  const uint64_t src2 = stack.Map(n);
  const uint64_t dst = stack.Map(n);
  FillPattern(stack.proc->mem(), src1, n, 11);
  FillPattern(stack.proc->mem(), src2, n, 22);

  stack.lib->amemcpy(dst, src1, n);
  stack.lib->amemcpy(dst, src2, n);  // WAW: must land after the first
  ASSERT_TRUE(stack.lib->csync(dst, n).ok());
  ExpectSameBytes(stack.proc->mem(), src2, dst, n);
}

TEST(LibCopier, ChainedCopyPropagatesThroughIntermediate) {
  CopierStack stack;
  const size_t n = 16 * kKiB;
  const uint64_t a = stack.Map(n);
  const uint64_t b = stack.Map(n);
  const uint64_t c = stack.Map(n);
  FillPattern(stack.proc->mem(), a, n, 7);

  stack.lib->amemcpy(b, a, n);  // A -> B
  stack.lib->amemcpy(c, b, n);  // B -> C (RAW on B; absorption reads through)
  ASSERT_TRUE(stack.lib->csync(c, n).ok());
  ExpectSameBytes(stack.proc->mem(), a, c, n);
}

TEST(LibCopier, AmemmoveOverlappingForward) {
  CopierStack stack;
  const size_t n = 8 * kKiB;
  const uint64_t base = stack.Map(2 * n);
  FillPattern(stack.proc->mem(), base, n, 31);
  const auto original = ReadAll(stack.proc->mem(), base, n);

  // Move forward by 1 KiB (overlapping; small displacement -> sync path).
  stack.lib->amemmove(base + kKiB, base, n);
  ASSERT_TRUE(stack.lib->csync(base + kKiB, n).ok());
  const auto moved = ReadAll(stack.proc->mem(), base + kKiB, n);
  EXPECT_EQ(original, moved);
}

TEST(LibCopier, AmemmoveOverlappingForwardLargeDisplacement) {
  CopierStack stack;
  const size_t n = 24 * kKiB;
  const uint64_t base = stack.Map(2 * n);
  FillPattern(stack.proc->mem(), base, n, 41);
  const auto original = ReadAll(stack.proc->mem(), base, n);

  // Displacement 5000 bytes: async chunked path, unaligned chunks.
  stack.lib->amemmove(base + 5000, base, n);
  ASSERT_TRUE(stack.lib->csync(base + 5000, n).ok());
  const auto moved = ReadAll(stack.proc->mem(), base + 5000, n);
  EXPECT_EQ(original, moved);
}

TEST(LibCopier, AmemmoveOverlappingBackwardLargeDisplacement) {
  CopierStack stack;
  const size_t n = 24 * kKiB;
  const uint64_t base = stack.Map(2 * n);
  FillPattern(stack.proc->mem(), base + 6000, n, 42);
  const auto original = ReadAll(stack.proc->mem(), base + 6000, n);

  stack.lib->amemmove(base, base + 6000, n);
  ASSERT_TRUE(stack.lib->csync(base, n).ok());
  const auto moved = ReadAll(stack.proc->mem(), base, n);
  EXPECT_EQ(original, moved);
}

TEST(LibCopier, AmemmoveOverlappingBackward) {
  CopierStack stack;
  const size_t n = 8 * kKiB;
  const uint64_t base = stack.Map(2 * n);
  FillPattern(stack.proc->mem(), base + kKiB, n, 33);
  const auto original = ReadAll(stack.proc->mem(), base + kKiB, n);

  stack.lib->amemmove(base, base + kKiB, n);
  ASSERT_TRUE(stack.lib->csync(base, n).ok());
  const auto moved = ReadAll(stack.proc->mem(), base, n);
  EXPECT_EQ(original, moved);
}

TEST(LibCopier, UfuncHandlerRunsAfterCompletion) {
  CopierStack stack;
  const size_t n = 4 * kKiB;
  const uint64_t src = stack.Map(n);
  const uint64_t dst = stack.Map(n);
  FillPattern(stack.proc->mem(), src, n, 5);

  bool handler_ran = false;
  lib::AmemcpyOptions opts;
  opts.ufunc = [&handler_ran](Cycles) { handler_ran = true; };
  core::Descriptor* descriptor = stack.lib->_amemcpy(dst, src, n, opts);
  ASSERT_NE(descriptor, nullptr);
  ASSERT_TRUE(stack.lib->_csync(descriptor, 0, n).ok());
  EXPECT_FALSE(handler_ran);  // UFUNC runs in the client, via post_handlers
  EXPECT_GE(stack.lib->post_handlers(), size_t{1});
  EXPECT_TRUE(handler_ran);
}

TEST(LibCopier, CustomDescriptorReuse) {
  CopierStack stack;
  const size_t n = 8 * kKiB;
  const uint64_t src = stack.Map(n);
  const uint64_t dst = stack.Map(n);
  core::Descriptor descriptor(n);

  for (int round = 0; round < 3; ++round) {
    FillPattern(stack.proc->mem(), src, n, 40 + round);
    descriptor.Reset(n);
    lib::AmemcpyOptions opts;
    opts.descriptor = &descriptor;
    stack.lib->_amemcpy(dst, src, n, opts);
    ASSERT_TRUE(stack.lib->_csync(&descriptor, 0, n).ok());
    ExpectSameBytes(stack.proc->mem(), src, dst, n);
  }
}

TEST(LibCopier, PerThreadQueues) {
  CopierStack stack;
  const int fd = stack.lib->create_queue();
  EXPECT_GT(fd, 0);
  const size_t n = 4 * kKiB;
  const uint64_t src = stack.Map(n);
  const uint64_t dst = stack.Map(n);
  FillPattern(stack.proc->mem(), src, n, 9);

  lib::AmemcpyOptions opts;
  opts.fd = fd;
  core::Descriptor* descriptor = stack.lib->_amemcpy(dst, src, n, opts);
  ASSERT_TRUE(stack.lib->_csync(descriptor, 0, n).ok());
  ExpectSameBytes(stack.proc->mem(), src, dst, n);
}

TEST(LibCopier, LazyTaskAbsorbsIntoDownstreamCopy) {
  CopierStack stack;
  const size_t n = 16 * kKiB;
  const uint64_t a = stack.Map(n);
  const uint64_t b = stack.Map(n);
  const uint64_t c = stack.Map(n);
  FillPattern(stack.proc->mem(), a, n, 55);

  lib::AmemcpyOptions lazy_opts;
  lazy_opts.lazy = true;
  stack.lib->_amemcpy(b, a, n, lazy_opts);  // A -> B (lazy mediator)
  stack.lib->amemcpy(c, b, n);              // B -> C: absorbs to A -> C
  ASSERT_TRUE(stack.lib->csync(c, n).ok());
  ExpectSameBytes(stack.proc->mem(), a, c, n);
  EXPECT_GT(stack.service->TotalStats().bytes_absorbed, 0u);

  // Discard the lazy task; its queued copy never needs to execute.
  stack.lib->abort_range(b, n);
  EXPECT_GE(stack.service->TotalStats().tasks_aborted, 1u);
}

TEST(LibCopier, ModifiedIntermediateUsesLayeredAbsorption) {
  // Fig. 8: A->B submitted, client syncs + modifies part of B, then B->C.
  // C must see the modified bytes for the touched segments and A's bytes
  // elsewhere.
  CopierStack stack;
  const size_t n = 16 * kKiB;
  const uint64_t a = stack.Map(n);
  const uint64_t b = stack.Map(n);
  const uint64_t c = stack.Map(n);
  FillPattern(stack.proc->mem(), a, n, 66);

  stack.lib->amemcpy(b, a, n);
  // Touch the first 4 KiB of B (guideline: csync before writing dst).
  ASSERT_TRUE(stack.lib->csync(b, 4 * kKiB).ok());
  std::vector<uint8_t> patch(4 * kKiB, 0xEE);
  ASSERT_TRUE(stack.proc->mem().WriteBytes(b, patch.data(), patch.size()).ok());

  stack.lib->amemcpy(c, b, n);
  ASSERT_TRUE(stack.lib->csync(c, n).ok());

  const auto c_head = ReadAll(stack.proc->mem(), c, 4 * kKiB);
  EXPECT_EQ(c_head, patch);
  const auto c_tail = ReadAll(stack.proc->mem(), c + 4 * kKiB, n - 4 * kKiB);
  const auto a_tail = ReadAll(stack.proc->mem(), a + 4 * kKiB, n - 4 * kKiB);
  EXPECT_EQ(c_tail, a_tail);
}

TEST(LibCopier, FaultOnUnmappedDestinationSignalsProcess) {
  CopierStack stack;
  const size_t n = 4 * kKiB;
  const uint64_t src = stack.Map(n);
  FillPattern(stack.proc->mem(), src, n, 3);
  const uint64_t bogus = 0x10;  // never mapped

  stack.lib->amemcpy(bogus, src, n);
  const Status status = stack.lib->csync(bogus, n);
  EXPECT_FALSE(status.ok());
  EXPECT_GE(stack.proc->segv_count(), 1u);
}

TEST(LibCopier, QueueFullFallsBackToSyncCopy) {
  core::CopierConfig config;
  config.queue_capacity = 2;  // tiny ring
  CopierStack stack(config);
  const size_t n = kPageSize;
  const uint64_t src = stack.Map(16 * n);
  const uint64_t dst = stack.Map(16 * n);
  FillPattern(stack.proc->mem(), src, 16 * n, 77);

  for (int i = 0; i < 16; ++i) {
    stack.lib->amemcpy(dst + i * n, src + i * n, n);
  }
  ASSERT_TRUE(stack.lib->csync_all().ok());
  ExpectSameBytes(stack.proc->mem(), src, dst, 16 * n);
}

TEST(LibCopier, OnDemandPagingDestination) {
  // Destination pages are not populated: Copier's proactive fault handling
  // must fault them in from its own context.
  CopierStack stack;
  const size_t n = 32 * kKiB;
  const uint64_t src = stack.Map(n);
  const uint64_t dst = stack.Map(n, "demand", /*populate=*/false);
  FillPattern(stack.proc->mem(), src, n, 88);

  stack.lib->amemcpy(dst, src, n);
  ASSERT_TRUE(stack.lib->csync(dst, n).ok());
  ExpectSameBytes(stack.proc->mem(), src, dst, n);
}

}  // namespace
}  // namespace copier::test
