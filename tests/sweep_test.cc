// Parameterized property sweeps (TEST_P): copy correctness across sizes,
// alignments, physical layouts and engine configurations — every combination
// must produce byte-identical results, differing only in charged time.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace copier::test {
namespace {

struct SweepParam {
  size_t size;
  size_t src_align;   // offset added to the page-aligned base
  size_t dst_align;
  bool fragmented;    // physical layout
  bool use_dma;
  bool piggyback;
  bool absorption;
};

std::string ParamName(const ::testing::TestParamInfo<SweepParam>& info) {
  const SweepParam& p = info.param;
  std::string name = "n" + std::to_string(p.size) + "_s" + std::to_string(p.src_align) +
                     "_d" + std::to_string(p.dst_align);
  name += p.fragmented ? "_frag" : "_seq";
  name += p.use_dma ? (p.piggyback ? "_pig" : "_dma") : "_cpu";
  name += p.absorption ? "_abs" : "_noabs";
  return name;
}

class CopySweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(CopySweep, SingleCopyByteExact) {
  const SweepParam& p = GetParam();
  core::CopierConfig config;
  config.use_dma = p.use_dma;
  config.enable_piggyback = p.piggyback;
  config.enable_absorption = p.absorption;
  CopierStack stack(config, p.fragmented ? simos::PhysicalMemory::AllocPolicy::kFragmented
                                         : simos::PhysicalMemory::AllocPolicy::kSequential);
  const uint64_t src_base = stack.Map(p.size + kPageSize);
  const uint64_t dst_base = stack.Map(p.size + kPageSize);
  const uint64_t src = src_base + p.src_align;
  const uint64_t dst = dst_base + p.dst_align;
  FillPattern(stack.proc->mem(), src, p.size, p.size * 31 + p.src_align);

  stack.lib->amemcpy(dst, src, p.size);
  ASSERT_TRUE(stack.lib->csync(dst, p.size).ok());
  ExpectSameBytes(stack.proc->mem(), src, dst, p.size);
}

TEST_P(CopySweep, ChainThroughIntermediateByteExact) {
  const SweepParam& p = GetParam();
  core::CopierConfig config;
  config.use_dma = p.use_dma;
  config.enable_piggyback = p.piggyback;
  config.enable_absorption = p.absorption;
  CopierStack stack(config, p.fragmented ? simos::PhysicalMemory::AllocPolicy::kFragmented
                                         : simos::PhysicalMemory::AllocPolicy::kSequential);
  const uint64_t a = stack.Map(p.size + kPageSize) + p.src_align;
  const uint64_t b = stack.Map(p.size + kPageSize) + p.dst_align;
  const uint64_t c = stack.Map(p.size + kPageSize);
  FillPattern(stack.proc->mem(), a, p.size, p.size * 7 + 3);

  stack.lib->amemcpy(b, a, p.size);
  stack.lib->amemcpy(c, b, p.size);
  ASSERT_TRUE(stack.lib->csync(c, p.size).ok());
  ExpectSameBytes(stack.proc->mem(), a, c, p.size);
  ASSERT_TRUE(stack.lib->csync_all().ok());
  ExpectSameBytes(stack.proc->mem(), a, b, p.size);
}

std::vector<SweepParam> MakeParams() {
  std::vector<SweepParam> params;
  const size_t sizes[] = {1, 257, 4096, 5000, 65536, 262144};
  const size_t aligns[] = {0, 1, 2048};
  for (size_t size : sizes) {
    for (size_t align : aligns) {
      params.push_back({size, align, (align * 3) % 4096, false, true, true, true});
    }
  }
  // Config matrix at one interesting size/alignment.
  for (bool fragmented : {false, true}) {
    for (bool dma : {false, true}) {
      for (bool pig : {false, true}) {
        for (bool abs : {false, true}) {
          if (!dma && pig) {
            continue;  // piggyback requires DMA
          }
          params.push_back({48 * 1024 + 123, 777, 1234, fragmented, dma, pig, abs});
        }
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllShapes, CopySweep, ::testing::ValuesIn(MakeParams()), ParamName);

// Segment-size sweep: fine-grained descriptors must pipeline correctly at any
// granularity.
class SegmentSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(SegmentSweep, PartialSyncAtEveryGranularity) {
  core::CopierConfig config;
  config.default_segment_size = GetParam();
  CopierStack stack(config);
  const size_t n = 64 * kKiB;
  const uint64_t src = stack.Map(n);
  const uint64_t dst = stack.Map(n);
  FillPattern(stack.proc->mem(), src, n, GetParam());

  lib::AmemcpyOptions opts;
  core::Descriptor descriptor(n, GetParam());
  opts.descriptor = &descriptor;
  stack.lib->_amemcpy(dst, src, n, opts);
  // Sync one granule at a time, verifying each immediately.
  for (size_t off = 0; off < n; off += GetParam()) {
    const size_t len = std::min(GetParam(), n - off);
    ASSERT_TRUE(stack.lib->_csync(&descriptor, off, len).ok());
    const auto got = ReadAll(stack.proc->mem(), dst + off, len);
    const auto want = ReadAll(stack.proc->mem(), src + off, len);
    ASSERT_EQ(got, want) << "granule at " << off;
  }
}

INSTANTIATE_TEST_SUITE_P(Granularities, SegmentSweep,
                         ::testing::Values(512, 1024, 4096, 16384, 65536),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "seg" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace copier::test
