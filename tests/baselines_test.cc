// Tests for the comparison baselines: zIO deferral semantics, zero-copy
// send costs, UB trap discounting, io_uring async ordering.
#include <gtest/gtest.h>

#include "src/baselines/syscall_baselines.h"
#include "src/baselines/zio.h"
#include "tests/test_util.h"

namespace copier::baselines {
namespace {

using copier::test::FillPattern;
using copier::test::ReadAll;

class ZioTest : public ::testing::Test {
 protected:
  ZioTest() : zio_(&proc()->mem(), &kernel_.timing(), 16 * kKiB) {}

  simos::Process* proc() {
    if (proc_ == nullptr) {
      proc_ = kernel_.CreateProcess("zio");
    }
    return proc_;
  }
  uint64_t Map(size_t n) {
    auto va = proc()->mem().MapAnonymous(n, "buf", true);
    EXPECT_TRUE(va.ok());
    return *va;
  }

  simos::SimKernel kernel_;
  simos::Process* proc_ = nullptr;
  ZioRuntime zio_;
};

TEST_F(ZioTest, LargeAlignedCopyDefers) {
  const size_t n = 64 * kKiB;
  const uint64_t src = Map(n);
  const uint64_t dst = Map(n);
  FillPattern(proc()->mem(), src, n, 1);
  ExecContext ctx;
  zio_.Copy(dst, src, n, &ctx);
  EXPECT_EQ(zio_.stats().copies_deferred, 1u);
  EXPECT_GT(zio_.stats().bytes_deferred, 0u);
  // Data correctness regardless of deferral.
  EXPECT_EQ(ReadAll(proc()->mem(), dst, n), ReadAll(proc()->mem(), src, n));
  // Deferral is much cheaper than the eager copy would have been.
  EXPECT_LT(ctx.now(), kernel_.timing().CpuCopyCycles(hw::CopyUnitKind::kAvx, n));
}

TEST_F(ZioTest, SmallCopyStaysEager) {
  const size_t n = 4 * kKiB;
  const uint64_t src = Map(n);
  const uint64_t dst = Map(n);
  ExecContext ctx;
  zio_.Copy(dst, src, n, &ctx);
  EXPECT_EQ(zio_.stats().copies_deferred, 0u);
  EXPECT_GE(ctx.now(), kernel_.timing().CpuCopyCycles(hw::CopyUnitKind::kAvx, n));
}

TEST_F(ZioTest, TouchMaterializesWithFault) {
  const size_t n = 64 * kKiB;
  const uint64_t src = Map(n);
  const uint64_t dst = Map(n);
  ExecContext ctx;
  zio_.Copy(dst, src, n, &ctx);
  const Cycles before = ctx.now();
  zio_.Touch(dst + 8 * kKiB, 64, &ctx);
  EXPECT_EQ(zio_.stats().faults, 1u);
  EXPECT_GT(ctx.now() - before, kernel_.timing().page_fault_entry_cycles);
  // Second touch: already materialized, no second fault.
  zio_.Touch(dst, 64, &ctx);
  EXPECT_EQ(zio_.stats().faults, 1u);
}

TEST_F(ZioTest, ConsumeElidesTheCopy) {
  const size_t n = 64 * kKiB;
  const uint64_t src = Map(n);
  const uint64_t dst = Map(n);
  ExecContext ctx;
  zio_.Copy(dst, src, n, &ctx);
  zio_.Consume(dst, n, &ctx);
  EXPECT_GT(zio_.stats().bytes_elided, 0u);
  EXPECT_EQ(zio_.stats().faults, 0u);
}

TEST_F(ZioTest, SourceReuseForcesMaterialization) {
  // The Redis input-buffer pattern (§6.2.1): reusing the source faults.
  const size_t n = 64 * kKiB;
  const uint64_t src = Map(n);
  const uint64_t dst = Map(n);
  ExecContext ctx;
  zio_.Copy(dst, src, n, &ctx);
  zio_.SourceReused(src, n, &ctx);
  EXPECT_EQ(zio_.stats().faults, 1u);
  EXPECT_GT(zio_.stats().bytes_materialized, 0u);
}

TEST(ZeroCopySendTest, ChargesPinNotCopy) {
  simos::SimKernel kernel;
  simos::Process* proc = kernel.CreateProcess("zc");
  auto [tx, rx] = kernel.CreateSocketPair();
  const size_t n = 64 * kKiB;
  auto buf = proc->mem().MapAnonymous(n, "b", true);
  ASSERT_TRUE(buf.ok());

  ExecContext base_ctx;
  ASSERT_TRUE(kernel.Send(*proc, tx, *buf, n, &base_ctx).ok());
  // Drain.
  Cycles d = 0;
  rx->ConsumeRx(SIZE_MAX, &d, [&](simos::Skb* skb, size_t, size_t) {
    skb->pending_copies.fetch_add(1, std::memory_order_relaxed);
    simos::SimSocket::CompleteCopy(&kernel.skb_pool(), skb);
  });

  ZeroCopySend zc(&kernel);
  ExecContext zc_ctx;
  ASSERT_TRUE(zc.Send(*proc, tx, *buf, n, &zc_ctx).ok());
  // Large send: zero-copy must beat the copying baseline (>=10KiB claim).
  EXPECT_LT(zc_ctx.now(), base_ctx.now());
  // Data still arrives correctly.
  std::vector<uint8_t> got;
  rx->ConsumeRx(SIZE_MAX, &d, [&](simos::Skb* skb, size_t off, size_t take) {
    got.insert(got.end(), skb->data + off, skb->data + off + take);
    skb->pending_copies.fetch_add(1, std::memory_order_relaxed);
    simos::SimSocket::CompleteCopy(&kernel.skb_pool(), skb);
  });
  EXPECT_EQ(got.size(), n);
}

TEST(UserspaceBypassTest, DiscountsTrapOnly) {
  simos::SimKernel kernel;
  simos::Process* proc = kernel.CreateProcess("ub");
  auto [tx, rx] = kernel.CreateSocketPair();
  const size_t n = 1 * kKiB;
  auto buf = proc->mem().MapAnonymous(kPageSize, "b", true);
  ASSERT_TRUE(buf.ok());

  ExecContext base_ctx;
  ASSERT_TRUE(kernel.Send(*proc, tx, *buf, n, &base_ctx).ok());
  UserspaceBypass ub(&kernel);
  ExecContext ub_ctx;
  ASSERT_TRUE(ub.Send(*proc, tx, *buf, n, &ub_ctx).ok());
  const Cycles trap =
      kernel.timing().syscall_entry_cycles + kernel.timing().syscall_exit_cycles;
  EXPECT_LT(ub_ctx.now(), base_ctx.now());
  EXPECT_GT(ub_ctx.now() + trap, base_ctx.now());  // saved at most the trap
}

TEST(IoUringTest, AsyncCompletionOrderAndWait) {
  simos::SimKernel kernel;
  simos::Process* proc = kernel.CreateProcess("uring");
  auto [tx, rx] = kernel.CreateSocketPair();
  auto buf = proc->mem().MapAnonymous(16 * kKiB, "b", true);
  ASSERT_TRUE(buf.ok());

  IoUringSim uring(&kernel, /*batch_size=*/4);
  ExecContext app;
  std::vector<uint64_t> ops;
  for (int i = 0; i < 4; ++i) {
    ops.push_back(uring.SubmitSend(*proc, tx, *buf, 4 * kKiB, &app));
  }
  // Completion times are monotone (single worker).
  Cycles prev = 0;
  for (uint64_t op : ops) {
    auto result = uring.Wait(op, &app);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(app.now(), prev);
    prev = app.now();
  }
  EXPECT_FALSE(uring.Wait(999, &app).ok());  // unknown op
}

}  // namespace
}  // namespace copier::baselines
