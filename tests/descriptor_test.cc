// Unit tests for Descriptor (segment bitmaps) and task/MemRef vocabulary.
#include "src/core/descriptor.h"

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/core/task.h"

namespace copier::core {
namespace {

TEST(Descriptor, SegmentsAndRanges) {
  Descriptor d(10000, 4096);  // 3 segments
  EXPECT_EQ(d.num_segments(), 3u);
  EXPECT_FALSE(d.RangeReady(0, 1));
  d.MarkRange(0, 4096, 100);
  EXPECT_TRUE(d.RangeReady(0, 4096));
  EXPECT_FALSE(d.RangeReady(0, 4097));
  EXPECT_EQ(d.ReadyTime(0, 4096), 100u);
  d.MarkRange(4096, 10000 - 4096, 250);
  EXPECT_TRUE(d.AllReady());
  EXPECT_EQ(d.ReadyTime(0, 10000), 250u);
}

TEST(Descriptor, ZeroLengthRangeAlwaysReady) {
  Descriptor d(8192);
  EXPECT_TRUE(d.RangeReady(0, 0));
  EXPECT_TRUE(d.RangeReady(4096, 0));
}

TEST(Descriptor, ResetReusesCapacity) {
  Descriptor d(16 * 4096);
  d.MarkRange(0, 16 * 4096, 1);
  EXPECT_TRUE(d.AllReady());
  d.Reset(3 * 4096);
  EXPECT_EQ(d.num_segments(), 3u);
  EXPECT_FALSE(d.RangeReady(0, 1));
  EXPECT_FALSE(d.failed());
}

TEST(DescriptorDeathTest, ResetBeyondCapacityChecks) {
  Descriptor d(4096);
  EXPECT_DEATH(d.Reset(64 * 4096), "Reset beyond descriptor capacity");
}

TEST(Descriptor, FailedWakesWaiters) {
  Descriptor d(8192);
  d.MarkFailed(42);
  EXPECT_TRUE(d.AllReady());  // bits set so spinners wake
  EXPECT_TRUE(d.failed());    // ...and observe the error
}

TEST(Descriptor, PartialSegmentAtTail) {
  Descriptor d(4097, 4096);  // 2 segments, second covers 1 byte
  d.MarkRange(4096, 1, 7);
  EXPECT_TRUE(d.RangeReady(4096, 1));
  EXPECT_FALSE(d.RangeReady(0, 4097));
}

TEST(MemRefTest, DomainsAndOverlap) {
  simos::PhysicalMemory phys(4 * kMiB);
  simos::AddressSpace space_a(&phys, 1, &hw::TimingModel::Default());
  simos::AddressSpace space_b(&phys, 2, &hw::TimingModel::Default());

  const MemRef ua = MemRef::User(&space_a, 0x1000);
  const MemRef ub = MemRef::User(&space_b, 0x1000);
  uint8_t kernel_buf[64];
  const MemRef k = MemRef::Kernel(kernel_buf);

  // Same numeric VA in different spaces never overlaps.
  EXPECT_FALSE(RefsOverlap(ua, 64, ub, 64));
  EXPECT_TRUE(RefsOverlap(ua, 64, MemRef::User(&space_a, 0x1020), 64));
  EXPECT_FALSE(RefsOverlap(ua, 64, k, 64));
  EXPECT_TRUE(RefsOverlap(k, 64, MemRef::Kernel(kernel_buf + 32), 8));

  EXPECT_EQ(ua.Offset(0x20).va, 0x1020u);
  EXPECT_EQ(k.Offset(8).host, kernel_buf + 8);
}

TEST(PostHandlerTest, Kinds) {
  int calls = 0;
  PostHandler none = PostHandler::None();
  EXPECT_EQ(none.kind, PostHandler::Kind::kNone);
  PostHandler kf = PostHandler::KernelFunc([&](Cycles) { ++calls; });
  EXPECT_EQ(kf.kind, PostHandler::Kind::kKernelFunc);
  kf.fn(0);
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace copier::core
