// Unit tests for the simulated OS substrate: physical memory, address spaces
// (on-demand paging, CoW fork, pinning, shared mappings, invalidation),
// sockets, and Binder.
#include <gtest/gtest.h>

#include "src/simos/binder.h"
#include "src/simos/kernel.h"
#include "tests/test_util.h"

namespace copier::simos {
namespace {

using copier::test::FillPattern;
using copier::test::ReadAll;

TEST(PhysicalMemory, AllocFreeRefcount) {
  PhysicalMemory phys(1 * kMiB);
  auto a = phys.AllocFrame();
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(phys.RefCount(*a), 1u);
  phys.Ref(*a);
  EXPECT_EQ(phys.RefCount(*a), 2u);
  phys.Unref(*a);
  phys.Unref(*a);
  EXPECT_EQ(phys.RefCount(*a), 0u);
  EXPECT_EQ(phys.free_frames(), phys.total_frames());
}

TEST(PhysicalMemory, SequentialAllocIsContiguous) {
  PhysicalMemory phys(1 * kMiB, PhysicalMemory::AllocPolicy::kSequential);
  auto a = phys.AllocFrame();
  auto b = phys.AllocFrame();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*b, *a + 1);
}

TEST(PhysicalMemory, FragmentedAllocRarelyContiguous) {
  PhysicalMemory phys(16 * kMiB, PhysicalMemory::AllocPolicy::kFragmented, 42);
  int contiguous = 0;
  Pfn prev = 0;
  for (int i = 0; i < 100; ++i) {
    auto f = phys.AllocFrame();
    ASSERT_TRUE(f.ok());
    if (i > 0 && *f == prev + 1) {
      ++contiguous;
    }
    prev = *f;
  }
  EXPECT_LT(contiguous, 20);
}

TEST(PhysicalMemory, AllocContiguousRun) {
  PhysicalMemory phys(4 * kMiB);
  auto run = phys.AllocContiguous(16);
  ASSERT_TRUE(run.ok());
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(phys.RefCount(*run + i), 1u);
  }
  // Exhaustion path.
  PhysicalMemory small(8 * kPageSize);
  EXPECT_FALSE(small.AllocContiguous(16).ok());
}

class AddressSpaceTest : public ::testing::Test {
 protected:
  PhysicalMemory phys_{64 * kMiB};
  AddressSpace space_{&phys_, 1, &hw::TimingModel::Default()};
};

TEST_F(AddressSpaceTest, OnDemandZeroFill) {
  auto va = space_.MapAnonymous(8 * kKiB, "anon");
  ASSERT_TRUE(va.ok());
  EXPECT_TRUE(space_.IsMapped(*va));
  EXPECT_FALSE(space_.IsResident(*va, false));
  auto bytes = ReadAll(space_, *va, 8 * kKiB);  // faults in
  EXPECT_TRUE(space_.IsResident(*va, false));
  for (uint8_t b : bytes) {
    EXPECT_EQ(b, 0);
  }
  EXPECT_EQ(space_.minor_faults(), 2u);
}

TEST_F(AddressSpaceTest, UnmappedAccessFails) {
  uint8_t byte = 0;
  EXPECT_FALSE(space_.ReadBytes(0x10, &byte, 1).ok());
  auto va = space_.MapAnonymous(kPageSize, "one");
  ASSERT_TRUE(va.ok());
  EXPECT_FALSE(space_.ReadBytes(*va + kPageSize, &byte, 1).ok());  // past end
}

TEST_F(AddressSpaceTest, UnmapInvalidatesAndRejectsPartial) {
  auto va = space_.MapAnonymous(4 * kPageSize, "u", /*populate=*/true);
  ASSERT_TRUE(va.ok());
  int invalidations = 0;
  space_.AddInvalidationListener([&](uint32_t, uint64_t, size_t) { ++invalidations; });
  EXPECT_FALSE(space_.Unmap(*va, kPageSize).ok());  // partial unmap unsupported
  EXPECT_TRUE(space_.Unmap(*va, 4 * kPageSize).ok());
  EXPECT_EQ(invalidations, 1);
  EXPECT_FALSE(space_.IsMapped(*va));
}

TEST_F(AddressSpaceTest, PinBlocksUnmap) {
  auto va = space_.MapAnonymous(2 * kPageSize, "p", true);
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(space_.PinRange(*va, kPageSize, false, nullptr).ok());
  EXPECT_FALSE(space_.Unmap(*va, 2 * kPageSize).ok());
  space_.UnpinRange(*va, kPageSize);
  EXPECT_TRUE(space_.Unmap(*va, 2 * kPageSize).ok());
}

TEST_F(AddressSpaceTest, ResolveRunStopsAtDiscontinuity) {
  // Sequential policy: a populated VMA is physically contiguous.
  auto va = space_.MapAnonymous(8 * kPageSize, "r", true);
  ASSERT_TRUE(va.ok());
  auto run = space_.ResolveRun(*va + 100, 8 * kPageSize - 100, false, nullptr);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->length, 8 * kPageSize - 100);
}

TEST_F(AddressSpaceTest, ForkCowSharesThenCopies) {
  auto va = space_.MapAnonymous(4 * kPageSize, "cow", true);
  ASSERT_TRUE(va.ok());
  FillPattern(space_, *va, 4 * kPageSize, 9);
  const auto original = ReadAll(space_, *va, 4 * kPageSize);

  auto child_or = space_.ForkCow(2);
  ASSERT_TRUE(child_or.ok());
  AddressSpace& child = **child_or;

  // Child reads see parent data without copying.
  EXPECT_EQ(ReadAll(child, *va, 4 * kPageSize), original);
  EXPECT_EQ(child.cow_faults(), 0u);

  // Child write breaks CoW; parent unaffected.
  uint8_t patch = 0xAB;
  ASSERT_TRUE(child.WriteBytes(*va, &patch, 1).ok());
  EXPECT_GE(child.cow_faults(), 1u);
  EXPECT_EQ(ReadAll(space_, *va, 4 * kPageSize), original);
  EXPECT_EQ(ReadAll(child, *va, 1)[0], 0xAB);

  // Parent write on another page also breaks CoW (both sides downgraded).
  uint8_t patch2 = 0xCD;
  ASSERT_TRUE(space_.WriteBytes(*va + kPageSize, &patch2, 1).ok());
  EXPECT_EQ(ReadAll(child, *va + kPageSize, 1)[0], original[kPageSize]);
}

TEST_F(AddressSpaceTest, CowSoleOwnerFastPath) {
  auto va = space_.MapAnonymous(kPageSize, "solo", true);
  ASSERT_TRUE(va.ok());
  FillPattern(space_, *va, kPageSize, 3);
  {
    auto child_or = space_.ForkCow(2);
    ASSERT_TRUE(child_or.ok());
    // Child destroyed: parent becomes sole owner again.
  }
  uint8_t patch = 1;
  ASSERT_TRUE(space_.WriteBytes(*va, &patch, 1).ok());
  // Sole-owner break must not have allocated a new frame (refcount path).
  EXPECT_GE(space_.cow_faults(), 1u);
}

TEST_F(AddressSpaceTest, HugePageFaultsAsBlock) {
  auto va = space_.MapAnonymous(kHugePageSize, "huge", false, /*huge=*/true);
  ASSERT_TRUE(va.ok());
  uint8_t byte = 0;
  ASSERT_TRUE(space_.ReadBytes(*va + 123456, &byte, 1).ok());
  // One fault populated the whole 2 MiB block.
  EXPECT_EQ(space_.minor_faults(), 1u);
  EXPECT_EQ(space_.resident_pages(), kHugePageSize / kPageSize);
  // And it is physically contiguous: a run can span it all.
  auto run = space_.ResolveRun(*va, kHugePageSize, false, nullptr);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->length, kHugePageSize);
}

TEST_F(AddressSpaceTest, SharedMappingSeesWrites) {
  auto va = space_.MapAnonymous(2 * kPageSize, "shm", true);
  ASSERT_TRUE(va.ok());
  FillPattern(space_, *va, 2 * kPageSize, 5);

  AddressSpace other(&phys_, 3, &hw::TimingModel::Default());
  auto mapped = other.MapSharedFrom(space_, *va, 2 * kPageSize, /*writable=*/true);
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(ReadAll(other, *mapped, 2 * kPageSize), ReadAll(space_, *va, 2 * kPageSize));

  uint8_t patch = 0x77;
  ASSERT_TRUE(other.WriteBytes(*mapped + 10, &patch, 1).ok());
  EXPECT_EQ(ReadAll(space_, *va + 10, 1)[0], 0x77);
}

TEST(SimKernelSocket, SendRecvRoundTrip) {
  SimKernel kernel;
  Process* sender = kernel.CreateProcess("tx");
  Process* receiver = kernel.CreateProcess("rx");
  auto [a, b] = kernel.CreateSocketPair();

  const size_t n = 10 * kKiB;  // spans 3 skbs
  auto src = sender->mem().MapAnonymous(n, "src", true);
  auto dst = receiver->mem().MapAnonymous(n, "dst", true);
  ASSERT_TRUE(src.ok() && dst.ok());
  FillPattern(sender->mem(), *src, n, 17);

  auto sent = kernel.Send(*sender, a, *src, n, nullptr);
  ASSERT_TRUE(sent.ok());
  EXPECT_EQ(*sent, n);
  EXPECT_TRUE(b->HasData());
  EXPECT_EQ(b->RxBytes(), n);

  auto received = kernel.Recv(*receiver, b, *dst, n, nullptr);
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(*received, n);
  EXPECT_EQ(ReadAll(sender->mem(), *src, n), ReadAll(receiver->mem(), *dst, n));
}

TEST(SimKernelSocket, RecvOnEmptyReturnsEagain) {
  SimKernel kernel;
  Process* proc = kernel.CreateProcess("p");
  auto [a, b] = kernel.CreateSocketPair();
  auto buf = proc->mem().MapAnonymous(kPageSize, "b", true);
  ASSERT_TRUE(buf.ok());
  auto r = kernel.Recv(*proc, b, *buf, kPageSize, nullptr);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

TEST(SimKernelSocket, SkbsReturnToPoolAfterRecv) {
  SimKernel::Config config;
  config.skb_pool_size = 8;
  SimKernel kernel(config);
  Process* p = kernel.CreateProcess("p");
  auto [a, b] = kernel.CreateSocketPair();
  auto buf = p->mem().MapAnonymous(16 * kKiB, "b", true);
  ASSERT_TRUE(buf.ok());
  const size_t before = kernel.skb_pool().available();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(kernel.Send(*p, a, *buf, 8 * kKiB, nullptr).ok());
    ASSERT_TRUE(kernel.Recv(*p, b, *buf + 8 * kKiB, 8 * kKiB, nullptr).ok());
  }
  EXPECT_EQ(kernel.skb_pool().available(), before);
}

TEST(SimKernelSocket, PartialRecvConsumesInOrder) {
  SimKernel kernel;
  Process* p = kernel.CreateProcess("p");
  auto [a, b] = kernel.CreateSocketPair();
  const size_t n = 6 * kKiB;
  auto src = p->mem().MapAnonymous(n, "s", true);
  auto dst = p->mem().MapAnonymous(n, "d", true);
  ASSERT_TRUE(src.ok() && dst.ok());
  FillPattern(p->mem(), *src, n, 21);
  ASSERT_TRUE(kernel.Send(*p, a, *src, n, nullptr).ok());
  // Two partial receives of 3 KiB each (second splits an skb).
  ASSERT_TRUE(kernel.Recv(*p, b, *dst, 3 * kKiB, nullptr).ok());
  ASSERT_TRUE(kernel.Recv(*p, b, *dst + 3 * kKiB, 3 * kKiB, nullptr).ok());
  EXPECT_EQ(ReadAll(p->mem(), *src, n), ReadAll(p->mem(), *dst, n));
}

TEST(SimKernelFork, ForkedChildIsCow) {
  SimKernel kernel;
  Process* parent = kernel.CreateProcess("parent");
  auto va = parent->mem().MapAnonymous(4 * kPageSize, "data", true);
  ASSERT_TRUE(va.ok());
  FillPattern(parent->mem(), *va, 4 * kPageSize, 33);
  auto child_or = kernel.Fork(*parent, nullptr);
  ASSERT_TRUE(child_or.ok());
  Process* child = *child_or;
  EXPECT_EQ(ReadAll(child->mem(), *va, 4 * kPageSize),
            ReadAll(parent->mem(), *va, 4 * kPageSize));
  uint8_t patch = 0xFF;
  ASSERT_TRUE(child->mem().WriteBytes(*va, &patch, 1).ok());
  EXPECT_NE(ReadAll(parent->mem(), *va, 1)[0], 0xFF);
}

TEST(Binder, TransactionMapsDataToServer) {
  SimKernel kernel;
  BinderDriver binder(&kernel);
  Process* client = kernel.CreateProcess("client");
  const size_t n = 8 * kKiB;
  auto msg = client->mem().MapAnonymous(n, "msg", true);
  ASSERT_TRUE(msg.ok());
  FillPattern(client->mem(), *msg, n, 44);
  const auto expected = ReadAll(client->mem(), *msg, n);

  auto txn = binder.Transact(*client, *msg, n, nullptr);
  ASSERT_TRUE(txn.ok());
  std::vector<uint8_t> server_view(txn->data, txn->data + n);
  EXPECT_EQ(server_view, expected);
  binder.Release(txn->id);

  // Buffer reusable for the next transaction.
  auto txn2 = binder.Transact(*client, *msg, n, nullptr);
  ASSERT_TRUE(txn2.ok());
  binder.Release(txn2->id);
}

TEST(Binder, ExhaustsBuffers) {
  SimKernel kernel;
  BinderDriver binder(&kernel, /*buffer_count=*/2);
  Process* client = kernel.CreateProcess("c");
  auto msg = client->mem().MapAnonymous(kPageSize, "m", true);
  ASSERT_TRUE(msg.ok());
  auto t1 = binder.Transact(*client, *msg, kPageSize, nullptr);
  auto t2 = binder.Transact(*client, *msg, kPageSize, nullptr);
  ASSERT_TRUE(t1.ok() && t2.ok());
  EXPECT_FALSE(binder.Transact(*client, *msg, kPageSize, nullptr).ok());
  binder.Release(t1->id);
  EXPECT_TRUE(binder.Transact(*client, *msg, kPageSize, nullptr).ok());
}

// Differential: the SAME socket workload through the Copier backend with
// vectored submission on vs off (per-skb ablation) must land byte-identical
// images with the same number of per-skb completion handlers; only the
// submission accounting differs (one SG task + one doorbell per syscall vs
// one task + one doorbell per skb).
struct VectoredRunResult {
  std::vector<uint8_t> image;
  uint64_t kfuncs_run = 0;
  uint64_t submit_entries = 0;
  uint64_t submit_batches = 0;
  uint64_t notify_calls = 0;
};

VectoredRunResult RunVectoredWorkload(bool vectored) {
  core::CopierConfig config;
  config.enable_vectored_submit = vectored;
  test::CopierStack stack(config);
  Process* peer = stack.kernel->CreateProcess("peer");
  stack.service->AttachProcess(peer);
  auto [tx, rx] = stack.kernel->CreateSocketPair();

  const size_t n = 150 * kKiB + 123;  // many skbs, ragged tail
  const uint64_t src = stack.Map(n, "src");
  auto dst_or = peer->mem().MapAnonymous(n, "dst", true);
  EXPECT_TRUE(dst_or.ok());
  FillPattern(stack.proc->mem(), src, n, 91);

  core::Descriptor descriptor(n);
  simos::RecvOptions ropts;
  ropts.descriptor = &descriptor;
  size_t received = 0;
  size_t sent_total = 0;
  for (int iter = 0; iter < 1000 && received < n; ++iter) {
    // Chunked sends keep the skb pool bounded; each Send is one syscall
    // publishing its whole op-list.
    if (sent_total < n) {
      const size_t chunk = std::min<size_t>(32 * kKiB, n - sent_total);
      auto sent = stack.kernel->Send(*stack.proc, tx, src + sent_total, chunk, nullptr);
      EXPECT_TRUE(sent.ok()) << sent.status().ToString();
      if (!sent.ok()) {
        break;
      }
      sent_total += *sent;
    }
    stack.service->DrainAll();
    auto got = stack.kernel->Recv(*peer, rx, *dst_or + received, n - received, nullptr, ropts);
    EXPECT_TRUE(got.ok()) << got.status().ToString();
    if (!got.ok()) {
      break;
    }
    received += *got;
    stack.service->DrainAll();
  }
  EXPECT_EQ(received, n);

  VectoredRunResult result;
  result.image = ReadAll(peer->mem(), *dst_or, n);
  const core::Engine::Stats stats = stack.service->TotalStats();
  result.kfuncs_run = stats.kfuncs_run;
  result.submit_entries = stats.submit_entries;
  result.submit_batches = stats.submit_batches;
  result.notify_calls = stats.notify_calls;
  return result;
}

TEST(VectoredSubmit, DifferentialVectoredVsPerSkb) {
  const VectoredRunResult vec = RunVectoredWorkload(/*vectored=*/true);
  const VectoredRunResult per_op = RunVectoredWorkload(/*vectored=*/false);

  // Byte identity: the modes differ in submission batching only.
  ASSERT_EQ(vec.image.size(), per_op.image.size());
  EXPECT_EQ(vec.image, per_op.image);

  // Identical per-skb completion handlers ran (KFUNC count is per segment in
  // vectored mode, per task in per-op mode — one per skb either way).
  EXPECT_EQ(vec.kfuncs_run, per_op.kfuncs_run);
  EXPECT_GT(vec.kfuncs_run, 0u);

  // Vectored mode ingested scatter-gather tasks; per-op mode ingested none,
  // and needed far more queue entries and doorbells for the same bytes.
  EXPECT_GT(vec.submit_batches, 0u);
  EXPECT_EQ(per_op.submit_batches, 0u);
  EXPECT_LT(vec.submit_entries, per_op.submit_entries);
  EXPECT_LT(vec.notify_calls, per_op.notify_calls);
}

TEST(VirtualTime, SyscallChargesTrapCosts) {
  SimKernel kernel;
  Process* p = kernel.CreateProcess("p");
  auto [a, b] = kernel.CreateSocketPair();
  auto buf = p->mem().MapAnonymous(kPageSize, "b", true);
  ASSERT_TRUE(buf.ok());
  ExecContext ctx("app");
  ASSERT_TRUE(kernel.Send(*p, a, *buf, kPageSize, &ctx).ok());
  const auto& t = kernel.timing();
  EXPECT_GE(ctx.now(), t.syscall_entry_cycles + t.syscall_exit_cycles +
                           t.CpuCopyCycles(hw::CopyUnitKind::kErms, kPageSize));
}

}  // namespace
}  // namespace copier::simos
