// CopierSanitizer tests (§5.1.2): the checker must flag every violation of
// the csync insertion guidelines and stay silent on correct usage.
#include "src/sanitizer/copier_sanitizer.h"

#include <gtest/gtest.h>

#include <thread>

namespace copier::sanitizer {
namespace {

TEST(Sanitizer, ReadBeforeCsyncIsFlagged) {
  CopierSanitizer san;
  san.OnAmemcpy(0x1000, 0x9000, 4096);
  EXPECT_FALSE(san.CheckRead(0x1000, 8));
  ASSERT_EQ(san.violations().size(), 1u);
  EXPECT_EQ(san.violations()[0].kind, Violation::Kind::kReadPoisonedDst);
}

TEST(Sanitizer, CsyncLegalizesAccess) {
  CopierSanitizer san;
  san.OnAmemcpy(0x1000, 0x9000, 4096);
  san.OnCsync(0x1000, 4096);
  EXPECT_TRUE(san.CheckRead(0x1000, 4096));
  EXPECT_TRUE(san.CheckWrite(0x9000, 4096));  // source released too
  EXPECT_TRUE(san.violations().empty());
}

TEST(Sanitizer, PartialCsyncOnlyLegalizesSyncedBytes) {
  CopierSanitizer san;
  san.OnAmemcpy(0x1000, 0x9000, 8192);
  san.OnCsync(0x1000, 4096);
  EXPECT_TRUE(san.CheckRead(0x1000, 4096));
  EXPECT_FALSE(san.CheckRead(0x2000, 1));  // second half unsynced
  // Source of the unsynced half still protected.
  EXPECT_FALSE(san.CheckWrite(0xA000, 1));
  EXPECT_TRUE(san.CheckWrite(0x9000, 1));  // synced half's source released
}

TEST(Sanitizer, WriteToSourceBeforeCsyncIsFlagged) {
  CopierSanitizer san;
  san.OnAmemcpy(0x1000, 0x9000, 4096);
  EXPECT_TRUE(san.CheckRead(0x9000, 16));   // reading the source is fine
  EXPECT_FALSE(san.CheckWrite(0x9000, 16));  // writing it is not
  EXPECT_EQ(san.violations().back().kind, Violation::Kind::kWritePoisonedSrc);
}

TEST(Sanitizer, FreeOfInvolvedBufferIsFlagged) {
  CopierSanitizer san;
  san.OnAmemcpy(0x1000, 0x9000, 4096);
  EXPECT_FALSE(san.CheckFree(0x9000, 4096));
  EXPECT_FALSE(san.CheckFree(0x1000, 4096));
  san.OnCsync(0x1000, 4096);
  EXPECT_TRUE(san.CheckFree(0x9000, 4096));
}

TEST(Sanitizer, CsyncAllClearsEverything) {
  CopierSanitizer san;
  san.OnAmemcpy(0x1000, 0x9000, 4096);
  san.OnAmemcpy(0x20000, 0x30000, 65536);
  san.OnCsyncAll();
  EXPECT_TRUE(san.CheckRead(0x1000, 4096));
  EXPECT_TRUE(san.CheckWrite(0x30000, 65536));
}

TEST(Sanitizer, IntervalMergingAcrossAdjacentCopies) {
  CopierSanitizer san;
  san.OnAmemcpy(0x1000, 0x9000, 4096);
  san.OnAmemcpy(0x2000, 0xA000, 4096);  // adjacent dst
  EXPECT_TRUE(san.IsPoisoned(0x1000, 8192, PoisonKind::kPendingDst));
  san.OnCsync(0x1800, 2048);  // straddles the two copies' boundary
  EXPECT_FALSE(san.IsPoisoned(0x1800, 2048, PoisonKind::kPendingDst));
  EXPECT_TRUE(san.IsPoisoned(0x1000, 0x800, PoisonKind::kPendingDst));
  EXPECT_TRUE(san.IsPoisoned(0x2800, 0x800, PoisonKind::kPendingDst));
}

TEST(Sanitizer, MultithreadedUseIsSafe) {
  CopierSanitizer san;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&san, t] {
      const uint64_t base = 0x100000ull * (t + 1);
      for (int i = 0; i < 1000; ++i) {
        san.OnAmemcpy(base, base + 0x10000, 4096);
        san.CheckRead(base, 64);  // violation recorded, not crashing
        san.OnCsync(base, 4096);
        san.CheckRead(base, 64);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  // Every pre-csync read was flagged, every post-csync read clean.
  EXPECT_EQ(san.violations().size(), 4u * 1000u);
}

}  // namespace
}  // namespace copier::sanitizer
