// Serving-harness test tier (DESIGN.md §13): loadgen distribution and
// determinism properties, deterministic replay of the virtual serving
// harness, overload-policy differentials (admitted requests byte-identical
// to an unloaded replay; rejected requests accounted exactly once),
// admission-control unit semantics at the service layer, and a threaded run
// exercising the same flow under real Copier threads (TSan tier).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "src/apps/serve_harness.h"
#include "src/common/rng.h"
#include "src/core/loadgen.h"
#include "src/core/service.h"

namespace copier::apps {
namespace {

using core::BuildServeTrace;
using core::CopierConfig;
using core::CopierService;
using core::ServeRequest;
using core::ServeWorkload;

// ---------------------------------------------------------------------------
// Loadgen units
// ---------------------------------------------------------------------------

ServeWorkload SmallWorkload(uint64_t seed = 11) {
  ServeWorkload workload;
  workload.seed = seed;
  workload.requests = 160;
  workload.connections = 8;
  workload.keys = 32;
  workload.value_sizes = {64, 512, 2048};
  workload.value_weights = {4.0, 2.0, 1.0};
  workload.mean_gap_cycles = 6000;
  workload.proxy_fraction = 0.1;
  workload.churn_every = 32;
  return workload;
}

bool SameRequest(const ServeRequest& a, const ServeRequest& b) {
  return a.index == b.index && a.arrival == b.arrival && a.conn == b.conn &&
         a.is_get == b.is_get && a.via_proxy == b.via_proxy && a.key == b.key &&
         a.value_bytes == b.value_bytes && a.churn_before == b.churn_before;
}

TEST(Loadgen, TraceIsDeterministicSortedAndModelConsistent) {
  const ServeWorkload workload = SmallWorkload();
  const auto trace = BuildServeTrace(workload);
  const auto again = BuildServeTrace(workload);
  ASSERT_EQ(trace.size(), workload.requests);
  ASSERT_EQ(again.size(), trace.size());
  std::vector<uint32_t> last_set(workload.keys, 0);
  Cycles prev_arrival = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    ASSERT_TRUE(SameRequest(trace[i], again[i])) << "trace diverges at " << i;
    const ServeRequest& req = trace[i];
    EXPECT_EQ(req.index, i);
    EXPECT_GE(req.arrival, prev_arrival);
    prev_arrival = req.arrival;
    EXPECT_LT(req.conn, workload.connections);
    if (!req.via_proxy) {
      EXPECT_LT(req.key, workload.keys);
      if (req.is_get) {
        // GETs carry the latest preceding SET's size, and the first touch of
        // a key is always a SET — no GET may precede its key's first SET.
        EXPECT_GT(last_set[req.key], 0u) << "GET before first SET at " << i;
        EXPECT_EQ(req.value_bytes, last_set[req.key]);
      } else {
        last_set[req.key] = req.value_bytes;
      }
    }
  }
  // A different seed moves the trace.
  ServeWorkload other = workload;
  other.seed = workload.seed + 1;
  const auto moved = BuildServeTrace(other);
  bool any_diff = false;
  for (size_t i = 0; i < trace.size() && !any_diff; ++i) {
    any_diff = !SameRequest(trace[i], moved[i]);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Loadgen, ZipfianIsSkewedTowardLowRanks) {
  const size_t kItems = 100;
  const size_t kSamples = 50000;
  core::ZipfianSampler sampler(kItems, 0.99);
  Rng rng(42);
  std::vector<uint64_t> counts(kItems, 0);
  for (size_t i = 0; i < kSamples; ++i) {
    const size_t item = sampler.Sample(rng);
    ASSERT_LT(item, kItems);
    ++counts[item];
  }
  // Item 0 dominates and the head carries far more than its uniform share:
  // with theta=0.99 over 100 items the top item draws ~19% and the top ten
  // ~63% of samples (uniform would be 1% / 10%).
  EXPECT_EQ(std::max_element(counts.begin(), counts.end()) - counts.begin(), 0);
  uint64_t top_ten = 0;
  for (size_t i = 0; i < 10; ++i) {
    top_ten += counts[i];
  }
  EXPECT_GT(counts[0], kSamples / 10);
  EXPECT_GT(top_ten, kSamples / 2);
  // The tail is still reachable.
  uint64_t tail = 0;
  for (size_t i = kItems / 2; i < kItems; ++i) {
    tail += counts[i];
  }
  EXPECT_GT(tail, 0u);
}

TEST(Loadgen, BurstArrivalsKeepLongRunMeanAndExponentialShape) {
  const double kMeanGap = 10000;
  core::BurstConfig burst;
  burst.rate_multiplier = 8.0;
  burst.burst_fraction = 0.25;
  burst.mean_phase_requests = 32;
  Rng rng(7);
  core::ArrivalProcess arrivals(kMeanGap, burst, &rng);
  const size_t kSamples = 50000;
  double total = 0;
  std::vector<double> calm_gaps;
  double burst_total = 0;
  size_t burst_n = 0;
  for (size_t i = 0; i < kSamples; ++i) {
    const double gap = static_cast<double>(arrivals.NextGap());
    total += gap;
    if (arrivals.in_burst()) {
      burst_total += gap;
      ++burst_n;
    } else {
      calm_gaps.push_back(gap);
    }
  }
  // The calm/burst mixture is derived to keep the requested long-run mean.
  EXPECT_NEAR(total / kSamples, kMeanGap, 0.15 * kMeanGap);
  ASSERT_GT(calm_gaps.size(), 0u);
  ASSERT_GT(burst_n, 0u);
  double calm_total = 0;
  for (double gap : calm_gaps) {
    calm_total += gap;
  }
  const double calm_mean = calm_total / static_cast<double>(calm_gaps.size());
  // Burst-phase gaps are ~8x tighter than calm-phase gaps.
  EXPECT_LT(burst_total / burst_n, 0.5 * calm_mean);
  // Exponential inter-arrival CDF within a phase: P(gap < phase mean) =
  // 1 - 1/e ~= 0.632.
  size_t below = 0;
  for (double gap : calm_gaps) {
    below += gap < calm_mean ? 1 : 0;
  }
  const double frac = static_cast<double>(below) / static_cast<double>(calm_gaps.size());
  EXPECT_NEAR(frac, 0.632, 0.05);
}

// ---------------------------------------------------------------------------
// Virtual harness: deterministic replay
// ---------------------------------------------------------------------------

bool SameRecord(const ServeRecord& a, const ServeRecord& b) {
  return a.index == b.index && a.conn == b.conn && a.is_get == b.is_get &&
         a.via_proxy == b.via_proxy && a.admitted == b.admitted && a.defers == b.defers &&
         a.throttled == b.throttled && a.latency_us == b.latency_us &&
         a.reply_hash == b.reply_hash && a.kfuncs_after == b.kfuncs_after;
}

TEST(ServeVirtual, SameSeedReplaysIdenticalTraceAndHistogram) {
  ServeOptions options;
  options.workload = SmallWorkload();
  const ServeResult first = RunServeVirtual(options);
  const ServeResult second = RunServeVirtual(options);
  ASSERT_TRUE(first.replies_ok);
  ASSERT_EQ(first.records.size(), options.workload.requests);
  ASSERT_EQ(first.records.size(), second.records.size());
  for (size_t i = 0; i < first.records.size(); ++i) {
    EXPECT_TRUE(SameRecord(first.records[i], second.records[i]))
        << "record " << i << " diverges between replays";
  }
  EXPECT_EQ(first.store_hash, second.store_hash);
  EXPECT_EQ(first.churns, second.churns);
  EXPECT_EQ(first.latency.Count(), second.latency.Count());
  EXPECT_EQ(first.latency.Percentile(50), second.latency.Percentile(50));
  EXPECT_EQ(first.latency.Percentile(99), second.latency.Percentile(99));
  EXPECT_EQ(first.latency.Percentile(99.9), second.latency.Percentile(99.9));
  EXPECT_EQ(first.stats.kfuncs_run, second.stats.kfuncs_run);
  EXPECT_EQ(first.stats.tasks_ingested, second.stats.tasks_ingested);
}

TEST(ServeVirtual, ChurnStormRecyclesConnectionsAndStillVerifies) {
  ServeOptions options;
  options.workload = SmallWorkload();
  options.workload.requests = 200;
  options.workload.churn_every = 4;  // storm: every 4th request reconnects
  const auto trace = BuildServeTrace(options.workload);
  uint64_t expected_churns = 0;
  for (const ServeRequest& req : trace) {
    expected_churns += req.churn_before ? 1 : 0;
  }
  ASSERT_GT(expected_churns, 40u);
  const ServeResult result = RunServeVirtual(options);
  EXPECT_EQ(result.churns, expected_churns);
  EXPECT_TRUE(result.replies_ok);
  EXPECT_EQ(result.offered, result.admitted);  // default policy admits all
  EXPECT_NE(result.store_hash, 0u);
}

// ---------------------------------------------------------------------------
// Overload-policy differentials
// ---------------------------------------------------------------------------

// A workload hot enough to saturate admission with tight inflight bounds.
ServeOptions OverloadedOptions(CopierConfig::OverloadPolicy policy) {
  ServeOptions options;
  options.workload = SmallWorkload(23);
  options.workload.requests = 200;
  options.workload.mean_gap_cycles = 1200;
  options.workload.proxy_fraction = 0;  // KV-only: every record hashes a reply
  options.config.overload_policy = policy;
  options.config.admission_max_inflight_requests = 3;
  options.config.admission_defer_cycles = 4000;
  options.config.admission_max_defer_retries = 2;
  return options;
}

TEST(ServeOverload, ShedDifferentialAdmittedBytesMatchUnloadedReplay) {
  const ServeOptions loaded_options =
      OverloadedOptions(CopierConfig::OverloadPolicy::kShed);
  const ServeResult loaded = RunServeVirtual(loaded_options);
  ASSERT_TRUE(loaded.replies_ok);
  // Every offered request is accounted exactly once.
  EXPECT_EQ(loaded.offered, loaded_options.workload.requests);
  EXPECT_EQ(loaded.offered, loaded.admitted + loaded.shed);
  ASSERT_GT(loaded.shed, 0u) << "workload not hot enough to shed";
  ASSERT_GT(loaded.admitted, loaded.shed) << "sheds should be the minority";
  EXPECT_EQ(loaded.stats.admission_admitted, loaded.admitted);
  EXPECT_EQ(loaded.stats.admission_shed, loaded.shed);
  for (const ServeRecord& rec : loaded.records) {
    if (!rec.admitted) {
      EXPECT_EQ(rec.reply_hash, 0u);
      EXPECT_EQ(rec.latency_us, 0.0);
    }
  }

  // Replay the admitted subset unloaded (wide fixed gaps, no policy): the
  // admitted requests must produce byte-identical replies and an identical
  // final store image — admission never splits or perturbs admitted work.
  const auto full_trace = BuildServeTrace(loaded_options.workload);
  std::vector<ServeRequest> admitted_subset;
  for (const ServeRecord& rec : loaded.records) {
    if (rec.admitted) {
      admitted_subset.push_back(full_trace[rec.index]);
    }
  }
  ServeOptions replay_options;
  replay_options.workload = loaded_options.workload;
  replay_options.trace = SpreadTrace(admitted_subset, 200000);
  const ServeResult replay = RunServeVirtual(replay_options);
  ASSERT_TRUE(replay.replies_ok);
  EXPECT_EQ(replay.admitted, loaded.admitted);
  EXPECT_EQ(replay.store_hash, loaded.store_hash);
  std::map<uint64_t, uint64_t> loaded_hash;
  for (const ServeRecord& rec : loaded.records) {
    if (rec.admitted) {
      loaded_hash[rec.index] = rec.reply_hash;
    }
  }
  // Per-client (per-conn) kfunc order: the sequence of engine kfunc deltas a
  // connection's admitted requests observe is a pure function of the request
  // bytes, so it must survive the move from loaded to unloaded timing.
  std::map<uint32_t, std::vector<uint64_t>> loaded_kfunc_deltas;
  uint64_t prev = 0;
  for (const ServeRecord& rec : loaded.records) {
    const uint64_t delta = rec.kfuncs_after - prev;
    prev = rec.kfuncs_after;
    if (rec.admitted) {
      loaded_kfunc_deltas[rec.conn].push_back(delta);
    }
  }
  std::map<uint32_t, std::vector<uint64_t>> replay_kfunc_deltas;
  prev = 0;
  for (const ServeRecord& rec : replay.records) {
    ASSERT_TRUE(rec.admitted);
    EXPECT_EQ(rec.reply_hash, loaded_hash[rec.index]) << "request " << rec.index;
    const uint64_t delta = rec.kfuncs_after - prev;
    prev = rec.kfuncs_after;
    replay_kfunc_deltas[rec.conn].push_back(delta);
  }
  EXPECT_EQ(loaded_kfunc_deltas, replay_kfunc_deltas);
}

TEST(ServeOverload, DeferRetriesThenAbandonsAndAccountsExactly) {
  const ServeOptions options = OverloadedOptions(CopierConfig::OverloadPolicy::kDefer);
  const ServeResult result = RunServeVirtual(options);
  ASSERT_TRUE(result.replies_ok);
  EXPECT_EQ(result.offered, result.admitted + result.shed);
  ASSERT_GT(result.defer_verdicts, 0u);
  EXPECT_EQ(result.stats.admission_deferred, result.defer_verdicts);
  bool saw_deferred_admit = false;
  for (const ServeRecord& rec : result.records) {
    if (rec.admitted && rec.defers > 0) {
      saw_deferred_admit = true;
    }
    if (!rec.admitted) {
      // Abandoned after exhausting the retry budget — accounted as shed. The
      // count includes the final verdict that tripped the budget.
      EXPECT_EQ(rec.defers, options.config.admission_max_defer_retries + 1);
    }
  }
  EXPECT_TRUE(saw_deferred_admit);
}

TEST(ServeOverload, ThrottleAdmitsEverythingWithBackpressure) {
  const ServeOptions options = OverloadedOptions(CopierConfig::OverloadPolicy::kThrottle);
  const ServeResult result = RunServeVirtual(options);
  ASSERT_TRUE(result.replies_ok);
  EXPECT_EQ(result.admitted, result.offered);
  EXPECT_EQ(result.shed, 0u);
  ASSERT_GT(result.throttle_verdicts, 0u);
  EXPECT_EQ(result.stats.admission_throttled, result.throttle_verdicts);
  EXPECT_GT(result.stats.admission_throttle_cycles, 0u);
}

TEST(ServeOverload, ShedKeepsTailBelowUnpolicedRun) {
  ServeOptions none = OverloadedOptions(CopierConfig::OverloadPolicy::kNone);
  const ServeResult unpoliced = RunServeVirtual(none);
  const ServeResult shed =
      RunServeVirtual(OverloadedOptions(CopierConfig::OverloadPolicy::kShed));
  ASSERT_TRUE(unpoliced.replies_ok);
  ASSERT_TRUE(shed.replies_ok);
  EXPECT_EQ(unpoliced.admitted, unpoliced.offered);
  // Shedding bounds queueing delay: the shed run's p99 sits below the
  // unpoliced run's p99 under the same overload.
  EXPECT_LT(shed.latency.Percentile(99), unpoliced.latency.Percentile(99));
}

// ---------------------------------------------------------------------------
// Admission-control unit semantics (service layer, no harness)
// ---------------------------------------------------------------------------

CopierService::Options AdmissionServiceOptions(CopierConfig::OverloadPolicy policy) {
  CopierService::Options options;
  options.config.overload_policy = policy;
  options.config.admission_max_inflight_requests = 1;
  options.config.admission_max_inflight_bytes = 1 << 20;
  return options;
}

TEST(Admission, ShedBoundsInflightAndHorizonDrainsByProberClock) {
  CopierService service(AdmissionServiceOptions(CopierConfig::OverloadPolicy::kShed));
  core::Client* client = service.AttachKernelClient("tenant");
  ASSERT_NE(client, nullptr);
  auto first = service.AdmitRequest(*client, 100, /*now=*/1000);
  EXPECT_EQ(first.verdict, CopierService::AdmissionVerdict::kAdmit);
  // One open request saturates max_inflight_requests=1.
  auto second = service.AdmitRequest(*client, 100, /*now=*/1100);
  EXPECT_EQ(second.verdict, CopierService::AdmissionVerdict::kShed);
  // Finishing with a future completion keeps the request inflight until the
  // prober's clock passes it (virtual-time queue depth), then admits again.
  service.FinishRequest(*client, 100, /*completion=*/5000);
  auto still_queued = service.AdmitRequest(*client, 100, /*now=*/2000);
  EXPECT_EQ(still_queued.verdict, CopierService::AdmissionVerdict::kShed);
  auto drained = service.AdmitRequest(*client, 100, /*now=*/6000);
  EXPECT_EQ(drained.verdict, CopierService::AdmissionVerdict::kAdmit);
  service.FinishRequest(*client, 100, /*completion=*/6001);
  const core::Engine::Stats stats = service.TotalStats();
  EXPECT_EQ(stats.admission_admitted, 2u);
  EXPECT_EQ(stats.admission_shed, 2u);
}

TEST(Admission, OverloadIsPerCgroupNotGlobal) {
  CopierService service(AdmissionServiceOptions(CopierConfig::OverloadPolicy::kShed));
  core::Cgroup* hot_group = service.CreateCgroup("hot", core::kDefaultCopierShares);
  core::Cgroup* calm_group = service.CreateCgroup("calm", core::kDefaultCopierShares);
  core::Client* hot = service.AttachKernelClient("hot-client", hot_group);
  core::Client* calm = service.AttachKernelClient("calm-client", calm_group);
  ASSERT_NE(hot, nullptr);
  ASSERT_NE(calm, nullptr);
  EXPECT_EQ(service.AdmitRequest(*hot, 100, 1000).verdict,
            CopierService::AdmissionVerdict::kAdmit);
  EXPECT_EQ(service.AdmitRequest(*hot, 100, 1100).verdict,
            CopierService::AdmissionVerdict::kShed);
  // The calm tenant is untouched by the hot tenant's backlog.
  EXPECT_EQ(service.AdmitRequest(*calm, 100, 1100).verdict,
            CopierService::AdmissionVerdict::kAdmit);
  service.FinishRequest(*hot, 100, 1200);
  service.FinishRequest(*calm, 100, 1200);
}

TEST(Admission, DeferAndThrottleCarryWaitHints) {
  CopierService defer_service(
      AdmissionServiceOptions(CopierConfig::OverloadPolicy::kDefer));
  core::Client* client = defer_service.AttachKernelClient("tenant");
  EXPECT_EQ(defer_service.AdmitRequest(*client, 100, 1000).verdict,
            CopierService::AdmissionVerdict::kAdmit);
  auto deferred = defer_service.AdmitRequest(*client, 100, 1100);
  EXPECT_EQ(deferred.verdict, CopierService::AdmissionVerdict::kDefer);
  EXPECT_EQ(deferred.wait_cycles, defer_service.config().admission_defer_cycles);
  defer_service.AbandonRequest(*client);
  EXPECT_EQ(defer_service.TotalStats().admission_shed, 1u);

  CopierService throttle_service(
      AdmissionServiceOptions(CopierConfig::OverloadPolicy::kThrottle));
  core::Client* tenant = throttle_service.AttachKernelClient("tenant");
  EXPECT_EQ(throttle_service.AdmitRequest(*tenant, 100, 1000).verdict,
            CopierService::AdmissionVerdict::kAdmit);
  throttle_service.FinishRequest(*tenant, 100, /*completion=*/9000);
  // Throttle admits but imposes the wait to the horizon's drain point.
  auto throttled = throttle_service.AdmitRequest(*tenant, 100, /*now=*/2000);
  EXPECT_EQ(throttled.verdict, CopierService::AdmissionVerdict::kThrottle);
  EXPECT_EQ(throttled.wait_cycles, 9000u - 2000u);
  throttle_service.FinishRequest(*tenant, 100, 9100);
}

TEST(Admission, NonePolicyAlwaysAdmits) {
  CopierService service(AdmissionServiceOptions(CopierConfig::OverloadPolicy::kNone));
  core::Client* client = service.AttachKernelClient("tenant");
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(service.AdmitRequest(*client, 1 << 16, 1000 + i).verdict,
              CopierService::AdmissionVerdict::kAdmit);
  }
  EXPECT_EQ(service.TotalStats().admission_admitted, 16u);
}

// ---------------------------------------------------------------------------
// Threaded run (TSan tier): real Copier threads under the same flow
// ---------------------------------------------------------------------------

TEST(ServeThreaded, SmallTraceVerifiesUnderRealThreads) {
  ServeOptions options;
  options.workload = SmallWorkload(3);
  options.workload.requests = 48;
  options.workload.connections = 4;
  options.workload.proxy_fraction = 0;
  options.workload.mean_gap_cycles = 20000;
  options.threads = 2;
  options.ns_per_cycle = 1.0;
  const ServeResult result = RunServeThreaded(options);
  EXPECT_TRUE(result.replies_ok);
  EXPECT_EQ(result.offered, options.workload.requests);
  EXPECT_EQ(result.offered, result.admitted + result.shed);
  ASSERT_EQ(result.records.size(), options.workload.requests);
  EXPECT_NE(result.store_hash, 0u);
  EXPECT_GT(result.latency.Count(), 0u);
}

}  // namespace
}  // namespace copier::apps
