// Application tests, parameterized over execution mode: sync baseline,
// Copier-ported, and zIO. Every app must produce byte-identical results in
// all modes (TEST_P sweeps), since the modes differ only in *when* copies
// happen, never in what the program observes after syncing.
#include <gtest/gtest.h>

#include "src/apps/avcodec.h"
#include "src/apps/cipher.h"
#include "src/apps/deflate.h"
#include "src/apps/minikv.h"
#include "src/apps/miniproxy.h"
#include "src/apps/parcel.h"
#include "src/apps/pngish.h"
#include "src/apps/serde.h"
#include "tests/test_util.h"

namespace copier::apps {
namespace {

using copier::test::CopierStack;

std::vector<uint8_t> PatternBytes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> bytes(n);
  for (auto& b : bytes) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return bytes;
}

// Fixture owning a kernel + manual Copier service + glue; builds AppProcesses
// in the parameterized mode.
class AppModeTest : public ::testing::TestWithParam<Mode> {
 protected:
  AppModeTest() {
    service_ = std::make_unique<core::CopierService>(core::CopierService::Options{});
    glue_ = std::make_unique<core::CopierLinux>(service_.get(), &kernel_);
    if (GetParam() == Mode::kCopier) {
      glue_->Install();
    }
  }

  std::unique_ptr<AppProcess> MakeApp(const std::string& name) {
    return std::make_unique<AppProcess>(&kernel_, service_.get(), GetParam(), name);
  }

  // Client process that always uses the plain sync path (request generators).
  std::unique_ptr<AppProcess> MakeSyncClient(const std::string& name) {
    return std::make_unique<AppProcess>(&kernel_, service_.get(), Mode::kSync, name);
  }

  // In manual mode the Copier thread runs only when pumped: settle all async
  // work (as the concurrently-polling service thread would have).
  void Settle() {
    if (GetParam() == Mode::kCopier) {
      service_->DrainAll();
    }
  }

  simos::SimKernel kernel_;
  std::unique_ptr<core::CopierService> service_;
  std::unique_ptr<core::CopierLinux> glue_;
};

TEST_P(AppModeTest, MiniKvSetGetRoundTrip) {
  auto server = MakeApp("kv-server");
  auto client = MakeSyncClient("kv-client");
  MiniKv kv(server.get());
  auto [client_sock, server_sock] = kernel_.CreateSocketPair();

  const uint64_t client_buf = client->Map(1 * kMiB, "cbuf");
  for (size_t vlen : {size_t{100}, size_t{4 * kKiB}, size_t{64 * kKiB}}) {
    const auto value = PatternBytes(vlen, vlen);
    const auto set_req = MiniKv::BuildSet("key" + std::to_string(vlen), value);
    client->io().Write(client_buf, set_req.data(), set_req.size(), nullptr);
    ASSERT_TRUE(kernel_.Send(*client->proc(), client_sock, client_buf, set_req.size(),
                             nullptr).ok());
    auto processed = kv.ProcessOne(server_sock, &server->ctx());
    ASSERT_TRUE(processed.ok()) << processed.status().ToString();
    Settle();
    // +OK reply arrives.
    auto reply = kernel_.Recv(*client->proc(), client_sock, client_buf, 16, nullptr);
    ASSERT_TRUE(reply.ok());

    // Stored value must equal what the client sent (after settling).
    auto stored = kv.Lookup("key" + std::to_string(vlen));
    ASSERT_TRUE(stored.ok());
    EXPECT_EQ(*stored, value) << "vlen=" << vlen;

    // GET round trip.
    const auto get_req = MiniKv::BuildGet("key" + std::to_string(vlen));
    client->io().Write(client_buf, get_req.data(), get_req.size(), nullptr);
    ASSERT_TRUE(kernel_.Send(*client->proc(), client_sock, client_buf, get_req.size(),
                             nullptr).ok());
    processed = kv.ProcessOne(server_sock, &server->ctx());
    ASSERT_TRUE(processed.ok()) << processed.status().ToString();
    Settle();
    const size_t reply_size = MiniKv::GetReplySize(vlen);
    auto got = kernel_.Recv(*client->proc(), client_sock, client_buf, reply_size, nullptr);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(*got, reply_size);
    std::vector<uint8_t> reply_bytes(reply_size);
    ASSERT_TRUE(
        client->proc()->mem().ReadBytes(client_buf, reply_bytes.data(), reply_size).ok());
    const std::string header = "$" + std::to_string(vlen) + "\r\n";
    std::vector<uint8_t> got_value(reply_bytes.begin() + header.size(),
                                   reply_bytes.end() - 2);
    EXPECT_EQ(got_value, value);
  }
}

TEST_P(AppModeTest, MiniKvOverwriteKeepsLatest) {
  auto server = MakeApp("kv-server");
  auto client = MakeSyncClient("kv-client");
  MiniKv kv(server.get());
  auto [client_sock, server_sock] = kernel_.CreateSocketPair();
  const uint64_t client_buf = client->Map(256 * kKiB, "cbuf");

  std::vector<uint8_t> final_value;
  for (int round = 0; round < 4; ++round) {
    const auto value = PatternBytes(8 * kKiB, 1000 + round);
    final_value = value;
    const auto req = MiniKv::BuildSet("k", value);
    client->io().Write(client_buf, req.data(), req.size(), nullptr);
    ASSERT_TRUE(kernel_.Send(*client->proc(), client_sock, client_buf, req.size(),
                             nullptr).ok());
    ASSERT_TRUE(kv.ProcessOne(server_sock, &server->ctx()).ok());
    Settle();
    ASSERT_TRUE(kernel_.Recv(*client->proc(), client_sock, client_buf, 16, nullptr).ok());
  }
  auto stored = kv.Lookup("k");
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(*stored, final_value);
}

TEST_P(AppModeTest, ProxyForwardsBodyUntouched) {
  auto proxy = MakeApp("proxy");
  auto client = MakeSyncClient("downstream");
  auto upstream = MakeSyncClient("upstream");
  MiniProxy mp(proxy.get());
  auto [client_sock, proxy_in] = kernel_.CreateSocketPair();
  auto [proxy_out, upstream_sock] = kernel_.CreateSocketPair();

  const uint64_t client_buf = client->Map(512 * kKiB, "cbuf");
  const uint64_t upstream_buf = upstream->Map(512 * kKiB, "ubuf");
  for (size_t body_len : {size_t{512}, size_t{16 * kKiB}, size_t{128 * kKiB}}) {
    const auto body = PatternBytes(body_len, body_len * 3);
    const auto msg = MiniProxy::BuildMessage(7, body);
    client->io().Write(client_buf, msg.data(), msg.size(), nullptr);
    ASSERT_TRUE(
        kernel_.Send(*client->proc(), client_sock, client_buf, msg.size(), nullptr).ok());

    auto forwarded = mp.ForwardOne(proxy_in, proxy_out, &proxy->ctx());
    ASSERT_TRUE(forwarded.ok()) << forwarded.status().ToString();
    ASSERT_TRUE(*forwarded);
    Settle();

    char expect_header[64];
    const int hdr = snprintf(expect_header, sizeof(expect_header), "VIA 7 %zu\r\n", body_len);
    const size_t expect_len = hdr + body_len;
    auto got = kernel_.Recv(*upstream->proc(), upstream_sock, upstream_buf, expect_len,
                            nullptr);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(*got, expect_len);
    std::vector<uint8_t> wire(expect_len);
    ASSERT_TRUE(
        upstream->proc()->mem().ReadBytes(upstream_buf, wire.data(), expect_len).ok());
    EXPECT_EQ(std::string(wire.begin(), wire.begin() + hdr), expect_header);
    EXPECT_TRUE(std::equal(body.begin(), body.end(), wire.begin() + hdr));
  }
}

TEST_P(AppModeTest, SerdeRoundTrip) {
  auto app = MakeApp("serde");
  auto sender = MakeSyncClient("sender");
  Serde serde(app.get());
  auto [tx, rx] = kernel_.CreateSocketPair();

  std::vector<Serde::FieldSpec> fields;
  for (uint32_t tag = 1; tag <= 5; ++tag) {
    fields.push_back({tag, PatternBytes(tag * 3000, tag)});
  }
  const auto wire = Serde::Serialize(fields);
  const uint64_t send_buf = sender->Map(AlignUp(wire.size(), kPageSize), "sbuf");
  sender->io().Write(send_buf, wire.data(), wire.size(), nullptr);
  ASSERT_TRUE(kernel_.Send(*sender->proc(), tx, send_buf, wire.size(), nullptr).ok());

  auto parsed = serde.RecvAndParse(rx, &app->ctx());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), fields.size());
  for (size_t i = 0; i < fields.size(); ++i) {
    EXPECT_EQ((*parsed)[i].tag, fields[i].tag);
    auto bytes = serde.FieldBytes((*parsed)[i]);
    ASSERT_TRUE(bytes.ok());
    EXPECT_EQ(*bytes, fields[i].payload) << "field " << i;
  }
}

TEST_P(AppModeTest, CipherDecryptsCorrectly) {
  auto receiver = MakeApp("tls-rx");
  auto sender = MakeSyncClient("tls-tx");
  std::array<uint8_t, 32> key;
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(i * 7 + 1);
  }
  SecureChannel rx_chan(receiver.get(), key);
  SecureChannel tx_chan(sender.get(), key);
  auto [tx, rx] = kernel_.CreateSocketPair();

  for (size_t n : {size_t{900}, size_t{8 * kKiB}, size_t{16 * kKiB}}) {
    const auto plaintext = PatternBytes(n, n + 1);
    ASSERT_TRUE(tx_chan.SendEncrypted(tx, plaintext, &sender->ctx()).ok());
    auto result = rx_chan.ReadDecrypted(rx, &receiver->ctx());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    auto decrypted = rx_chan.PlaintextBytes(*result);
    ASSERT_TRUE(decrypted.ok());
    EXPECT_EQ(*decrypted, plaintext) << "record " << n;
  }
}

TEST_P(AppModeTest, DeflateRoundTripWithSlides) {
  auto app = MakeApp("deflate");
  Deflate deflate(app.get());
  // Compressible input longer than the window so slides happen.
  std::vector<uint8_t> input;
  Rng rng(5);
  while (input.size() < 100 * kKiB) {
    const char* words[] = {"copier", "async", "memcpy", "window", "kernel", "absorb"};
    const std::string word = words[rng.Below(6)];
    input.insert(input.end(), word.begin(), word.end());
    if (rng.OneIn(4)) {
      input.push_back(static_cast<uint8_t>(rng.Next()));
    }
  }
  const auto compressed = deflate.Compress(input, &app->ctx());
  EXPECT_LT(compressed.size(), input.size());  // actually compresses
  EXPECT_GE(deflate.window_slides(), 1u);
  EXPECT_EQ(Deflate::Decompress(compressed), input);
}

TEST_P(AppModeTest, AvcodecChecksumStableAcrossModes) {
  auto app = MakeApp("avc");
  Avcodec codec(app.get(), 256 * kKiB);
  const auto bitstream = PatternBytes(32 * kKiB, 9);
  const auto stats = codec.DecodeFrame(bitstream, &app->ctx());
  EXPECT_GT(stats.total_cycles, stats.decode_cycles);
  // The checksum must match the sync-mode reference value (same pixels).
  static uint64_t reference = 0;
  if (GetParam() == Mode::kSync) {
    reference = codec.last_render_checksum();
  } else if (reference != 0) {
    EXPECT_EQ(codec.last_render_checksum(), reference);
  }
  EXPECT_NE(codec.last_render_checksum(), 0u);
}

TEST_P(AppModeTest, BinderParcelDeliversStrings) {
  if (GetParam() == Mode::kZio) {
    GTEST_SKIP() << "zIO is user-mode only; no Binder integration";
  }
  auto client = MakeApp("binder-client");
  auto server = MakeApp("binder-server");
  simos::BinderDriver binder(&kernel_);
  BinderParcelChannel channel(&binder, client.get(), server.get());

  std::vector<std::string> strings;
  for (int i = 0; i < 20; ++i) {
    strings.push_back(std::string(1024, static_cast<char>('a' + i % 26)));
  }
  auto result = channel.Call(strings, &client->ctx(), &server->ctx());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, strings);
}

INSTANTIATE_TEST_SUITE_P(AllModes, AppModeTest,
                         ::testing::Values(Mode::kSync, Mode::kCopier, Mode::kZio),
                         [](const ::testing::TestParamInfo<Mode>& info) {
                           return ModeName(info.param);
                         });

TEST_P(AppModeTest, PngishDecodeMatchesReference) {
  auto app = MakeApp("png");
  simos::SimFs fs(&kernel_);
  apps::Pngish png(app.get(), &fs);
  const auto file = apps::Pngish::EncodeImage(64, 48, 3, 77);
  fs.CreateFile("img.png", file);

  auto reference = apps::Pngish::DecodeBytes(file);
  ASSERT_TRUE(reference.ok());
  auto decoded = png.DecodeFile("img.png", &app->ctx());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->width, 64u);
  EXPECT_EQ(decoded->height, 48u);
  EXPECT_EQ(decoded->pixels, reference->pixels);
  // Decode the same file twice (I/O buffer + descriptor reuse).
  auto again = png.DecodeFile("img.png", &app->ctx());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->pixels, reference->pixels);
}

TEST(SimFsTest, ReadSeekEofSemantics) {
  simos::SimKernel kernel;
  simos::SimFs fs(&kernel);
  simos::Process* proc = kernel.CreateProcess("fs");
  std::vector<uint8_t> contents(10000);
  for (size_t i = 0; i < contents.size(); ++i) {
    contents[i] = static_cast<uint8_t>(i * 3);
  }
  fs.CreateFile("data", contents);
  EXPECT_EQ(fs.FileSize("data"), contents.size());
  EXPECT_FALSE(fs.Open("missing").ok());

  auto fd = fs.Open("data");
  ASSERT_TRUE(fd.ok());
  auto buf = proc->mem().MapAnonymous(16 * 1024, "buf", true);
  ASSERT_TRUE(buf.ok());
  // Two sequential reads + EOF.
  auto r1 = fs.Read(*proc, *fd, *buf, 6000, nullptr);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(*r1, 6000u);
  auto r2 = fs.Read(*proc, *fd, *buf + 6000, 6000, nullptr);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2, 4000u);
  auto r3 = fs.Read(*proc, *fd, *buf, 100, nullptr);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(*r3, 0u);  // EOF

  std::vector<uint8_t> out(contents.size());
  ASSERT_TRUE(proc->mem().ReadBytes(*buf, out.data(), out.size()).ok());
  EXPECT_EQ(out, contents);

  // Seek back and re-read.
  ASSERT_TRUE(fs.Seek(*fd, 4).ok());
  auto r4 = fs.Read(*proc, *fd, *buf, 8, nullptr);
  ASSERT_TRUE(r4.ok());
  std::vector<uint8_t> eight(8);
  ASSERT_TRUE(proc->mem().ReadBytes(*buf, eight.data(), 8).ok());
  EXPECT_TRUE(std::equal(eight.begin(), eight.end(), contents.begin() + 4));
}

TEST(Varint, RoundTrip) {
  uint8_t buf[10];
  for (uint64_t v : std::initializer_list<uint64_t>{0, 1, 127, 128, 300, 1ull << 32, UINT64_MAX}) {
    const size_t n = VarintEncode(v, buf);
    uint64_t decoded = 0;
    EXPECT_EQ(VarintDecode(buf, n, &decoded), n);
    EXPECT_EQ(decoded, v);
  }
  uint64_t dummy;
  EXPECT_EQ(VarintDecode(buf, 0, &dummy), 0u);  // truncated
}

TEST(ChaCha20Test, KnownAnswerSymmetry) {
  std::array<uint8_t, 32> key = {};
  std::array<uint8_t, 12> nonce = {};
  key[0] = 1;
  nonce[0] = 2;
  std::vector<uint8_t> plain(1000);
  for (size_t i = 0; i < plain.size(); ++i) {
    plain[i] = static_cast<uint8_t>(i);
  }
  std::vector<uint8_t> cipher_text(plain.size());
  std::vector<uint8_t> round_trip(plain.size());
  ChaCha20 enc(key, nonce);
  enc.Process(plain.data(), cipher_text.data(), plain.size());
  EXPECT_NE(cipher_text, plain);
  ChaCha20 dec(key, nonce);
  dec.Process(cipher_text.data(), round_trip.data(), round_trip.size());
  EXPECT_EQ(round_trip, plain);
}

}  // namespace
}  // namespace copier::apps
