// Engine-level tests: cross-queue barriers (order dependency), out-of-order
// promotion, piggyback dispatch, ATCache, scheduler/cgroup fairness, and the
// threaded service mode.
#include "src/core/engine.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace copier::test {
namespace {

// recv() through the Copier backend: the kernel-submitted task (K: skb->U)
// and an app-submitted task (U->V) after the syscall must execute in order —
// this is exactly the A->B before B->C case of §4.2.1.
TEST(OrderDependency, KernelTaskBeforeDependentUserTask) {
  CopierStack stack;
  const size_t n = 8 * kKiB;
  simos::Process* peer_proc = stack.kernel->CreateProcess("peer");
  auto [tx, rx] = stack.kernel->CreateSocketPair();
  auto peer_buf = peer_proc->mem().MapAnonymous(n, "peer", true);
  ASSERT_TRUE(peer_buf.ok());
  FillPattern(peer_proc->mem(), *peer_buf, n, 3);
  ASSERT_TRUE(stack.kernel->Send(*peer_proc, tx, *peer_buf, n, nullptr).ok());

  const uint64_t io_buf = stack.Map(n);
  const uint64_t dest = stack.Map(n);
  // Copier recv: kernel submits k-mode tasks with our descriptor.
  core::Descriptor* descriptor = stack.lib->pool().Acquire(n);
  simos::RecvOptions opts;
  opts.descriptor = descriptor;
  auto received = stack.kernel->Recv(*stack.proc, rx, io_buf, n, nullptr, opts);
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(*received, n);

  // Immediately chain a user-mode copy that reads the recv destination.
  stack.lib->amemcpy(dest, io_buf, n);
  ASSERT_TRUE(stack.lib->csync(dest, n).ok());
  EXPECT_EQ(ReadAll(stack.proc->mem(), dest, n), ReadAll(peer_proc->mem(), *peer_buf, n));
  EXPECT_GE(stack.service->TotalStats().barriers_processed, 2u);  // enter+exit
  stack.lib->pool().Release(descriptor);
}

TEST(OrderDependency, UserTasksBeforeSyscallStayBeforeKernelBatch) {
  CopierStack stack;
  const size_t n = 4 * kKiB;
  const uint64_t a = stack.Map(n);
  const uint64_t b = stack.Map(n);
  FillPattern(stack.proc->mem(), a, n, 8);

  // U task first (not yet served), then a syscall that submits k tasks
  // *reading the same user range* (send of b... use send of `a` so the k task
  // reads what U wrote: U: a->b, K: send(b)).
  stack.lib->amemcpy(b, a, n);
  auto [tx, rx] = stack.kernel->CreateSocketPair();
  ASSERT_TRUE(stack.kernel->Send(*stack.proc, tx, b, n, nullptr).ok());
  stack.service->DrainAll();

  // The peer must observe a's bytes: the k-mode send copy happened after the
  // u-mode a->b copy.
  const uint64_t out = stack.Map(n);
  auto received = stack.kernel->Recv(*stack.proc, rx, out, n, nullptr);
  ASSERT_TRUE(received.ok());
  stack.service->DrainAll();  // flush the descriptor-less recv k-task too
  ASSERT_TRUE(stack.lib->csync_all().ok());
  ExpectSameBytes(stack.proc->mem(), a, out, n);
}

TEST(Promotion, SyncTaskOvertakesHeadOfLine) {
  // Queue a large copy, then a small one; csync the small one. With
  // out-of-order execution the small task's data must be correct even though
  // the big task is still ahead in FIFO order.
  core::CopierConfig config;
  config.copy_slice_bytes = 1;  // effectively disable FIFO auto-drain per pump
  CopierStack stack(config);
  const size_t big = 256 * kKiB;
  const size_t small = 4 * kKiB;
  const uint64_t big_src = stack.Map(big);
  const uint64_t big_dst = stack.Map(big);
  const uint64_t small_src = stack.Map(small);
  const uint64_t small_dst = stack.Map(small);
  FillPattern(stack.proc->mem(), big_src, big, 1);
  FillPattern(stack.proc->mem(), small_src, small, 2);

  stack.lib->amemcpy(big_dst, big_src, big);
  stack.lib->amemcpy(small_dst, small_src, small);
  ASSERT_TRUE(stack.lib->csync(small_dst, small).ok());
  ExpectSameBytes(stack.proc->mem(), small_src, small_dst, small);
  EXPECT_GE(stack.service->TotalStats().sync_promotions, 1u);
  ASSERT_TRUE(stack.lib->csync_all().ok());
  ExpectSameBytes(stack.proc->mem(), big_src, big_dst, big);
}

TEST(Dispatch, LargeTaskUsesBothUnits) {
  core::CopierConfig config;
  config.enable_remap_tier = false;  // force bytes onto the AVX+DMA path
  CopierStack stack(config);
  const size_t n = 256 * kKiB;
  const uint64_t src = stack.Map(n);
  const uint64_t dst = stack.Map(n);
  FillPattern(stack.proc->mem(), src, n, 5);
  stack.lib->amemcpy(dst, src, n);
  ASSERT_TRUE(stack.lib->csync(dst, n).ok());
  const core::Engine::Stats stats = stack.service->TotalStats();
  EXPECT_GT(stats.dma_bytes_completed, 0u) << "i-piggyback should offload part to DMA";
  EXPECT_GT(stats.avx_bytes, 0u);
  EXPECT_EQ(stats.dma_bytes_completed + stats.avx_bytes, n);
  EXPECT_EQ(stats.dma_bytes_submitted, stats.dma_bytes_completed)
      << "after csync every submitted byte has landed";
  ExpectSameBytes(stack.proc->mem(), src, dst, n);
}

TEST(Dispatch, EPiggybackFusesSmallAdjacentTasks) {
  CopierStack stack;
  const size_t n = 4 * kKiB;
  std::vector<std::pair<uint64_t, uint64_t>> copies;
  for (int i = 0; i < 6; ++i) {
    const uint64_t src = stack.Map(n);
    const uint64_t dst = stack.Map(n);
    FillPattern(stack.proc->mem(), src, n, 60 + i);
    copies.emplace_back(src, dst);
  }
  for (const auto& [src, dst] : copies) {
    stack.lib->amemcpy(dst, src, n);
  }
  stack.service->DrainAll();
  const core::Engine::Stats stats = stack.service->TotalStats();
  // Several 4 KiB tasks fused into rounds: DMA participated even though each
  // task is below the 12 KiB i-piggyback threshold.
  EXPECT_GT(stats.dma_bytes_completed, 0u);
  for (const auto& [src, dst] : copies) {
    ExpectSameBytes(stack.proc->mem(), src, dst, n);
  }
}

TEST(Dispatch, DmaDisabledUsesAvxOnly) {
  core::CopierConfig config;
  config.use_dma = false;
  CopierStack stack(config);
  const size_t n = 128 * kKiB;
  const uint64_t src = stack.Map(n);
  const uint64_t dst = stack.Map(n);
  FillPattern(stack.proc->mem(), src, n, 6);
  stack.lib->amemcpy(dst, src, n);
  ASSERT_TRUE(stack.lib->csync(dst, n).ok());
  EXPECT_EQ(stack.service->TotalStats().dma_bytes_submitted, 0u);
  ExpectSameBytes(stack.proc->mem(), src, dst, n);
}

TEST(Dispatch, FragmentedMemorySplitsSubtasks) {
  // Fragmented physical allocation breaks contiguity: copies still correct.
  CopierStack stack({}, simos::PhysicalMemory::AllocPolicy::kFragmented);
  const size_t n = 64 * kKiB;
  const uint64_t src = stack.Map(n);
  const uint64_t dst = stack.Map(n);
  FillPattern(stack.proc->mem(), src, n, 9);
  stack.lib->amemcpy(dst, src, n);
  ASSERT_TRUE(stack.lib->csync(dst, n).ok());
  ExpectSameBytes(stack.proc->mem(), src, dst, n);
}

TEST(ATCacheTest, HitsOnBufferReuse) {
  core::CopierConfig config;
  config.enable_remap_tier = false;  // reused translations need moved bytes
  CopierStack stack(config);
  const size_t n = 16 * kKiB;
  const uint64_t src = stack.Map(n);
  const uint64_t dst = stack.Map(n);
  FillPattern(stack.proc->mem(), src, n, 4);
  for (int round = 0; round < 8; ++round) {
    stack.lib->amemcpy(dst, src, n);
    ASSERT_TRUE(stack.lib->csync(dst, n).ok());
  }
  const auto& cache = stack.service->engine().atcache();
  EXPECT_GT(cache.hits(), cache.misses());
}

TEST(ATCacheTest, InvalidationOnUnmap) {
  CopierStack stack;
  stack.service->engine().atcache().Attach(stack.proc->mem());
  const size_t n = 8 * kKiB;
  const uint64_t src = stack.Map(n);
  uint64_t dst = stack.Map(n);
  FillPattern(stack.proc->mem(), src, n, 4);
  stack.lib->amemcpy(dst, src, n);
  ASSERT_TRUE(stack.lib->csync(dst, n).ok());
  // Unmap dst; the stale translation must not be reused for a new mapping.
  ASSERT_TRUE(stack.proc->mem().Unmap(dst, n).ok());
  const uint64_t dst2 = stack.Map(n);
  FillPattern(stack.proc->mem(), src, n, 14);
  stack.lib->amemcpy(dst2, src, n);
  ASSERT_TRUE(stack.lib->csync(dst2, n).ok());
  ExpectSameBytes(stack.proc->mem(), src, dst2, n);
}

TEST(Scheduler, CopyLengthFairnessAcrossClients) {
  // Two clients, equal shares: served bytes should balance even though one
  // submits much larger tasks.
  CopierStack stack;
  simos::Process* proc2 = stack.kernel->CreateProcess("p2");
  core::Client* client2 = stack.service->AttachProcess(proc2);
  lib::CopierLib lib2(client2, stack.service.get());

  const size_t small = 16 * kKiB;
  const size_t big = 64 * kKiB;
  auto src1 = stack.Map(small * 8);
  auto dst1 = stack.Map(small * 8);
  auto src2 = proc2->mem().MapAnonymous(big * 8, "s2", true);
  auto dst2 = proc2->mem().MapAnonymous(big * 8, "d2", true);
  ASSERT_TRUE(src2.ok() && dst2.ok());
  for (int i = 0; i < 8; ++i) {
    stack.lib->amemcpy(dst1 + i * small, src1 + i * small, small);
    lib2.amemcpy(*dst2 + i * big, *src2 + i * big, big);
  }
  // After the first few scheduling rounds, the lighter client must not be
  // starved: it should reach completion no later than the heavy one.
  uint64_t rounds_to_finish_small = 0;
  while (stack.client->HasQueuedWork()) {
    stack.service->RunOnce();
    ++rounds_to_finish_small;
    ASSERT_LT(rounds_to_finish_small, 1000u);
  }
  EXPECT_TRUE(client2->HasQueuedWork()) << "heavy client should still have work";
  stack.service->DrainAll();
  EXPECT_TRUE(stack.lib->csync_all().ok());
  EXPECT_TRUE(lib2.csync_all().ok());
}

TEST(CgroupTest, SharesBiasService) {
  core::CopierConfig cg_config;
  cg_config.copy_slice_bytes = 32 * kKiB;  // small slices: observe shares mid-flight
  CopierStack stack(cg_config);
  core::Cgroup* gold = stack.service->CreateCgroup("gold", 4096);
  core::Cgroup* bronze = stack.service->CreateCgroup("bronze", 256);

  simos::Process* pg = stack.kernel->CreateProcess("gold");
  simos::Process* pb = stack.kernel->CreateProcess("bronze");
  core::Client* cg = stack.service->AttachProcess(pg, gold);
  core::Client* cb = stack.service->AttachProcess(pb, bronze);
  lib::CopierLib lg(cg, stack.service.get());
  lib::CopierLib lb(cb, stack.service.get());

  const size_t n = 32 * kKiB;
  auto sg = pg->mem().MapAnonymous(n * 16, "sg", true);
  auto dg = pg->mem().MapAnonymous(n * 16, "dg", true);
  auto sb = pb->mem().MapAnonymous(n * 16, "sb", true);
  auto db = pb->mem().MapAnonymous(n * 16, "db", true);
  ASSERT_TRUE(sg.ok() && dg.ok() && sb.ok() && db.ok());
  for (int i = 0; i < 16; ++i) {
    lg.amemcpy(*dg + i * n, *sg + i * n, n);
    lb.amemcpy(*db + i * n, *sb + i * n, n);
  }
  // Run a limited number of scheduling rounds (while both cgroups still have
  // queued work); the gold cgroup must receive proportionally more service.
  for (int i = 0; i < 16; ++i) {
    stack.service->RunOnce();
  }
  EXPECT_TRUE(cg->HasQueuedWork() || cb->HasQueuedWork());
  EXPECT_GE(gold->total_bytes(), 2 * bronze->total_bytes());
  stack.service->DrainAll();
  EXPECT_TRUE(lg.csync_all().ok());
  EXPECT_TRUE(lb.csync_all().ok());
}

TEST(ThreadedService, RealThreadsServeCopies) {
  simos::SimKernel kernel;
  core::CopierService::Options options;
  options.mode = core::CopierService::Mode::kThreaded;
  options.config.min_threads = 1;
  options.config.max_threads = 2;
  core::CopierService service(std::move(options));
  service.Start();

  simos::Process* proc = kernel.CreateProcess("t");
  core::Client* client = service.AttachProcess(proc);
  lib::CopierLib lib(client, &service);

  const size_t n = 64 * kKiB;
  auto src = proc->mem().MapAnonymous(n, "s", true);
  auto dst = proc->mem().MapAnonymous(n, "d", true);
  ASSERT_TRUE(src.ok() && dst.ok());
  for (int round = 0; round < 20; ++round) {
    FillPattern(proc->mem(), *src, n, 100 + round);
    lib.amemcpy(*dst, *src, n);
    ASSERT_TRUE(lib.csync(*dst, n).ok());
    ExpectSameBytes(proc->mem(), *src, *dst, n);
  }
  service.Stop();
}

TEST(ThreadedService, ScenarioDrivenPollingOnlyServesDuringScenario) {
  simos::SimKernel kernel;
  core::CopierService::Options options;
  options.mode = core::CopierService::Mode::kThreaded;
  options.config.poll_mode = core::CopierConfig::PollMode::kScenarioDriven;
  core::CopierService service(std::move(options));
  service.Start();

  simos::Process* proc = kernel.CreateProcess("t");
  core::Client* client = service.AttachProcess(proc);
  lib::CopierLib lib(client, &service);
  const size_t n = 8 * kKiB;
  auto src = proc->mem().MapAnonymous(n, "s", true);
  auto dst = proc->mem().MapAnonymous(n, "d", true);
  ASSERT_TRUE(src.ok() && dst.ok());
  FillPattern(proc->mem(), *src, n, 1);

  lib.amemcpy(*dst, *src, n);
  // Without an active scenario, threads are parked.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(client->HasQueuedWork());

  service.ScenarioBegin();
  ASSERT_TRUE(lib.csync(*dst, n).ok());
  ExpectSameBytes(proc->mem(), *src, *dst, n);
  service.ScenarioEnd();
  service.Stop();
}

TEST(Breakeven, TaskSubmissionCheaperThanKernelCopyAbove300B) {
  // §4.6: async pays off when copy time exceeds submit+csync cost.
  const auto& t = hw::TimingModel::Default();
  const Cycles async_overhead = t.task_submit_cycles + t.csync_check_cycles;
  EXPECT_GT(t.CpuCopyCycles(hw::CopyUnitKind::kErms, 512), async_overhead);
  EXPECT_LT(t.CpuCopyCycles(hw::CopyUnitKind::kErms, 64), async_overhead);
}

}  // namespace
}  // namespace copier::test
