// Unit tests for src/common/: ring buffer (incl. MPSC concurrency), bitmap,
// histogram, alignment helpers, RNG determinism, clocks.
#include <gtest/gtest.h>

#include <thread>

#include "src/common/align.h"
#include "src/common/bitmap.h"
#include "src/common/cycle_clock.h"
#include "src/common/exec_context.h"
#include "src/common/histogram.h"
#include "src/common/ring_buffer.h"
#include "src/common/rng.h"
#include "src/common/status.h"

namespace copier {
namespace {

TEST(Align, Basics) {
  EXPECT_EQ(AlignUp(1, 4096), 4096u);
  EXPECT_EQ(AlignUp(4096, 4096), 4096u);
  EXPECT_EQ(AlignDown(4097, 4096), 4096u);
  EXPECT_TRUE(IsAligned(8192, 4096));
  EXPECT_FALSE(IsAligned(8193, 4096));
  EXPECT_EQ(PagesSpanned(0, 1), 1u);
  EXPECT_EQ(PagesSpanned(4095, 2), 2u);
  EXPECT_EQ(PagesSpanned(0, 0), 0u);
}

TEST(Align, RangesOverlap) {
  EXPECT_TRUE(RangesOverlap(0, 10, 5, 10));
  EXPECT_FALSE(RangesOverlap(0, 10, 10, 10));  // half-open adjacency
  EXPECT_FALSE(RangesOverlap(0, 0, 0, 10));    // empty range
  EXPECT_TRUE(RangesOverlap(5, 1, 0, 10));
}

TEST(Status, RoundTrip) {
  Status ok = OkStatus();
  EXPECT_TRUE(ok.ok());
  Status bad = InvalidArgument("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.ToString().find("nope"), std::string::npos);

  StatusOr<int> value(42);
  EXPECT_TRUE(value.ok());
  EXPECT_EQ(*value, 42);
  StatusOr<int> err(NotFound("missing"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(AtomicBitmap, SetTestRanges) {
  AtomicBitmap bits(200);
  EXPECT_TRUE(bits.NoneSet());
  bits.Set(0);
  bits.Set(63);
  bits.Set(64);
  bits.Set(199);
  EXPECT_TRUE(bits.Test(63));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_FALSE(bits.Test(65));
  EXPECT_FALSE(bits.AllSetInRange(0, 64));
  for (size_t i = 0; i < 200; ++i) {
    bits.Set(i);
  }
  EXPECT_TRUE(bits.AllSet());
  EXPECT_EQ(bits.CountSet(), 200u);
  bits.Reset(100);
  EXPECT_FALSE(bits.AllSetInRange(99, 101));
  EXPECT_TRUE(bits.AllSetInRange(0, 99));
}

TEST(AtomicBitmap, WordBoundaryRanges) {
  AtomicBitmap bits(256);
  for (size_t i = 60; i < 70; ++i) {
    bits.Set(i);
  }
  EXPECT_TRUE(bits.AllSetInRange(60, 69));
  EXPECT_FALSE(bits.AllSetInRange(59, 69));
  EXPECT_FALSE(bits.AllSetInRange(60, 70));
}

TEST(MpscRingBuffer, FifoSingleThread) {
  MpscRingBuffer<int> ring(8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(ring.TryPush(i));
  }
  EXPECT_FALSE(ring.TryPush(99));  // full
  for (int i = 0; i < 8; ++i) {
    auto v = ring.TryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(ring.TryPop().has_value());
}

TEST(MpscRingBuffer, PeekContiguousPrefix) {
  MpscRingBuffer<int> ring(8);
  EXPECT_EQ(ring.Peek(), nullptr);
  ring.TryPush(1);
  ring.TryPush(2);
  ASSERT_NE(ring.Peek(), nullptr);
  EXPECT_EQ(*ring.Peek(), 1);
  EXPECT_EQ(*ring.Peek(1), 2);
  EXPECT_EQ(ring.Peek(2), nullptr);
}

TEST(MpscRingBuffer, HeadPositionCountsAcquires) {
  MpscRingBuffer<int> ring(8);
  EXPECT_EQ(ring.HeadPosition(), 0u);
  ring.TryPush(1);
  ring.TryPush(2);
  EXPECT_EQ(ring.HeadPosition(), 2u);
  ring.TryPop();
  EXPECT_EQ(ring.HeadPosition(), 2u);
  EXPECT_EQ(ring.TailPosition(), 1u);
}

TEST(MpscRingBuffer, ConcurrentProducersPreserveAllItems) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  MpscRingBuffer<uint64_t> ring(1024);
  std::atomic<bool> done{false};
  std::vector<uint64_t> seen;
  std::thread consumer([&] {
    while (!done.load() || !ring.Empty()) {
      if (auto v = ring.TryPop()) {
        seen.push_back(*v);
      }
    }
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const uint64_t value = (static_cast<uint64_t>(p) << 32) | static_cast<uint32_t>(i);
        while (!ring.TryPush(value)) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  done.store(true);
  consumer.join();

  ASSERT_EQ(seen.size(), static_cast<size_t>(kProducers * kPerProducer));
  // Per-producer order must be preserved (acquire order = task order, §5.1.1).
  std::vector<int> next(kProducers, 0);
  for (uint64_t value : seen) {
    const int p = static_cast<int>(value >> 32);
    const int i = static_cast<int>(value & 0xffffffff);
    EXPECT_EQ(i, next[p]);
    next[p] = i + 1;
  }
}

TEST(MpscRingBuffer, BatchReserveFillCommitPopsInOrder) {
  MpscRingBuffer<int> ring(8);
  ring.TryPush(1);
  MpscRingBuffer<int>::Batch batch;
  ASSERT_TRUE(ring.TryReserveBatch(3, &batch));
  EXPECT_EQ(batch.size(), 3u);
  batch[0] = 2;
  batch[1] = 3;
  batch[2] = 4;
  // Unpublished slots stall the consumer at the batch boundary; the earlier
  // per-op push is still consumable.
  EXPECT_EQ(*ring.TryPop(), 1);
  EXPECT_FALSE(ring.TryPop().has_value());
  batch.Commit();
  for (int want = 2; want <= 4; ++want) {
    auto v = ring.TryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, want);
  }
  EXPECT_FALSE(ring.TryPop().has_value());
}

TEST(MpscRingBuffer, BatchWrapsAroundRing) {
  MpscRingBuffer<int> ring(4);
  // Advance head/tail so a batch straddles the physical end of the ring.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(ring.TryPush(i));
    ASSERT_TRUE(ring.TryPop().has_value());
  }
  MpscRingBuffer<int>::Batch batch;
  ASSERT_TRUE(ring.TryReserveBatch(4, &batch));
  for (int i = 0; i < 4; ++i) {
    batch[i] = 100 + i;
  }
  batch.Commit();
  for (int i = 0; i < 4; ++i) {
    auto v = ring.TryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 100 + i);
  }
}

TEST(MpscRingBuffer, BatchReserveIsAllOrNothing) {
  MpscRingBuffer<int> ring(4);
  ASSERT_TRUE(ring.TryPush(7));
  MpscRingBuffer<int>::Batch batch;
  // 4 slots requested, 3 free: nothing is acquired and the ring is intact.
  EXPECT_FALSE(ring.TryReserveBatch(4, &batch));
  EXPECT_EQ(ring.SizeApprox(), 1u);
  EXPECT_FALSE(ring.TryReserveBatch(0, &batch));
  EXPECT_FALSE(ring.TryReserveBatch(5, &batch));  // larger than capacity
  ASSERT_TRUE(ring.TryReserveBatch(3, &batch));   // exact remaining room
  batch[0] = 8;
  batch[1] = 9;
  batch[2] = 10;
  batch.Commit();
  EXPECT_FALSE(ring.TryPush(11));  // full
  for (int want = 7; want <= 10; ++want) {
    EXPECT_EQ(*ring.TryPop(), want);
  }
}

TEST(MpscRingBuffer, ConcurrentBatchProducersKeepBatchesContiguous) {
  constexpr int kProducers = 4;
  constexpr int kBatches = 800;
  constexpr int kBatchLen = 3;
  MpscRingBuffer<uint64_t> ring(64);
  std::atomic<bool> done{false};
  std::vector<uint64_t> seen;
  std::thread consumer([&] {
    while (!done.load() || !ring.Empty()) {
      if (auto v = ring.TryPop()) {
        seen.push_back(*v);
      }
    }
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (int b = 0; b < kBatches; ++b) {
        MpscRingBuffer<uint64_t>::Batch batch;
        while (!ring.TryReserveBatch(kBatchLen, &batch)) {
          std::this_thread::yield();
        }
        for (int i = 0; i < kBatchLen; ++i) {
          batch[i] = (static_cast<uint64_t>(p) << 32) |
                     static_cast<uint32_t>(b * kBatchLen + i);
        }
        batch.Commit();
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  done.store(true);
  consumer.join();

  ASSERT_EQ(seen.size(), static_cast<size_t>(kProducers * kBatches * kBatchLen));
  // Batches are contiguous (a single reservation owns adjacent slots) and
  // per-producer batch order follows reservation order.
  std::vector<int> next(kProducers, 0);
  for (size_t s = 0; s < seen.size(); ++s) {
    const int p = static_cast<int>(seen[s] >> 32);
    const int i = static_cast<int>(seen[s] & 0xffffffff);
    EXPECT_EQ(i, next[p]) << "at slot " << s;
    next[p] = i + 1;
    if (i % kBatchLen != kBatchLen - 1) {
      // Not the batch's last element: the next slot must continue this batch.
      ASSERT_LT(s + 1, seen.size());
      EXPECT_EQ(seen[s + 1], seen[s] + 1) << "batch split at slot " << s;
    }
  }
}

TEST(Histogram, Percentiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) {
    h.Add(i);
  }
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_NEAR(h.Percentile(50), 50.5, 0.01);
  EXPECT_NEAR(h.Percentile(99), 99.01, 0.01);
  EXPECT_EQ(h.Min(), 1);
  EXPECT_EQ(h.Max(), 100);
}

TEST(Histogram, RunningStatMatches) {
  Histogram h;
  RunningStat rs;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = static_cast<double>(rng.Below(1000));
    h.Add(v);
    rs.Add(v);
  }
  EXPECT_NEAR(h.Mean(), rs.Mean(), 1e-9);
  EXPECT_NEAR(h.Stddev(), rs.Stddev(), 1e-6);
}

TEST(Rng, DeterministicAndBounded) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(a.Below(17), 17u);
    const uint64_t r = a.Range(5, 9);
    EXPECT_GE(r, 5u);
    EXPECT_LE(r, 9u);
    const double d = a.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(VirtualClock, AdvanceSemantics) {
  VirtualClock clock;
  EXPECT_EQ(clock.Now(), 0u);
  clock.Advance(100);
  clock.AdvanceTo(50);  // no-op backwards
  EXPECT_EQ(clock.Now(), 100u);
  clock.AdvanceTo(200);
  EXPECT_EQ(clock.Now(), 200u);
}

TEST(ExecContext, ChargeAndBlockedAccounting) {
  ExecContext ctx("test");
  ctx.Charge(100);
  EXPECT_EQ(ctx.now(), 100u);
  ctx.WaitUntil(50);  // past: no-op
  EXPECT_EQ(ctx.blocked_cycles(), 0u);
  ctx.WaitUntil(250);
  EXPECT_EQ(ctx.now(), 250u);
  EXPECT_EQ(ctx.blocked_cycles(), 150u);
}

TEST(RealCycleClock, MonotoneAndCalibrated) {
  const Cycles a = RealCycleClock::ReadTsc();
  const Cycles b = RealCycleClock::ReadTsc();
  EXPECT_GE(b, a);
  EXPECT_GT(RealCycleClock::FrequencyHz(), 1e6);
}

}  // namespace
}  // namespace copier
