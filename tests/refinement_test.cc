// Randomized refinement checking (paper appendix): a program using
// amemcpy+csync — with csyncs inserted per the §5.1.1 guidelines — must be
// observably equivalent to the same program using memcpy.
//
// Strategy: generate random op sequences over a small arena (copies with
// arbitrary overlap, direct reads/writes, promotions via early csync, lazy
// copies, aborts-after-full-overwrite), run them twice:
//   * reference: plain byte arrays + memcpy/memmove,
//   * subject:   the full Copier stack (amemcpy/amemmove + guideline csyncs),
// and compare the entire arena at the end (plus intermediate read values).
// This is the executable counterpart of the RGSim simulation relation: every
// read observes latest(M_async) == M_sync.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "tests/test_util.h"

namespace copier::test {
namespace {

class RefinementRunner {
 public:
  static constexpr size_t kArena = 256 * kKiB;

  explicit RefinementRunner(uint64_t seed) : rng_(seed) {
    arena_va_ = stack_.Map(kArena, "arena");
    reference_.assign(kArena, 0);
    // Random initial contents.
    Rng init(seed ^ 0xabcdef);
    for (auto& b : reference_) {
      b = static_cast<uint8_t>(init.Next());
    }
    EXPECT_TRUE(
        stack_.proc->mem().WriteBytes(arena_va_, reference_.data(), kArena).ok());
  }

  void RunOps(int count) {
    for (int i = 0; i < count; ++i) {
      switch (rng_.Below(6)) {
        case 0:
        case 1:
          OpCopy(/*lazy=*/false);
          break;
        case 2:
          OpCopy(/*lazy=*/true);
          break;
        case 3:
          OpWrite();
          break;
        case 4:
          OpRead();
          break;
        case 5:
          OpMove();
          break;
      }
    }
    // Final quiescence: csync_all is the program's end-of-life barrier.
    ASSERT_TRUE(stack_.lib->csync_all().ok());
    const auto actual = ReadAll(stack_.proc->mem(), arena_va_, kArena);
    ASSERT_EQ(actual.size(), reference_.size());
    for (size_t i = 0; i < kArena; ++i) {
      ASSERT_EQ(actual[i], reference_[i]) << "arena byte " << i << " diverged";
    }
  }

 private:
  struct Range {
    size_t offset;
    size_t length;
  };

  Range RandomRange(size_t max_len = 32 * kKiB) {
    const size_t length = 1 + rng_.Below(max_len);
    const size_t offset = rng_.Below(kArena - length);
    return {offset, length};
  }

  void OpCopy(bool lazy) {
    const Range dst = RandomRange();
    const size_t src_off = rng_.Below(kArena - dst.length);
    // Guideline 1: sync before *writing* a destination range that may itself
    // be a pending source — handled by the engine's dependency tracking for
    // task-vs-task conflicts; the client-side guideline applies to direct
    // writes only (OpWrite).
    if (RangesOverlap(dst.offset, dst.length, src_off, dst.length)) {
      stack_.lib->amemmove(arena_va_ + dst.offset, arena_va_ + src_off, dst.length);
      std::memmove(reference_.data() + dst.offset, reference_.data() + src_off, dst.length);
      return;
    }
    if (lazy) {
      lib::AmemcpyOptions opts;
      opts.lazy = true;
      stack_.lib->_amemcpy(arena_va_ + dst.offset, arena_va_ + src_off, dst.length, opts);
    } else {
      stack_.lib->amemcpy(arena_va_ + dst.offset, arena_va_ + src_off, dst.length);
    }
    std::memcpy(reference_.data() + dst.offset, reference_.data() + src_off, dst.length);
  }

  void OpWrite() {
    const Range r = RandomRange(4 * kKiB);
    // Guidelines 1: csync before writing a dst range; for sources, csync the
    // *destinations* that read them — csync_all is the simple safe choice a
    // real port can always fall back to; use it with 25% probability, the
    // precise csync otherwise.
    if (rng_.OneIn(4)) {
      ASSERT_TRUE(stack_.lib->csync_all().ok());
    } else {
      ASSERT_TRUE(stack_.lib->csync(arena_va_ + r.offset, r.length).ok());
      // A direct write also invalidates pending copies *reading* this range;
      // sync them through their destinations (csync_all is the sound
      // approximation used here).
      ASSERT_TRUE(stack_.lib->csync_all().ok());
    }
    std::vector<uint8_t> bytes(r.length);
    for (auto& b : bytes) {
      b = static_cast<uint8_t>(rng_.Next());
    }
    ASSERT_TRUE(
        stack_.proc->mem().WriteBytes(arena_va_ + r.offset, bytes.data(), r.length).ok());
    std::memcpy(reference_.data() + r.offset, bytes.data(), r.length);
  }

  void OpRead() {
    const Range r = RandomRange(8 * kKiB);
    ASSERT_TRUE(stack_.lib->csync(arena_va_ + r.offset, r.length).ok());
    std::vector<uint8_t> bytes(r.length);
    ASSERT_TRUE(
        stack_.proc->mem().ReadBytes(arena_va_ + r.offset, bytes.data(), r.length).ok());
    // Intermediate observation must equal the reference (simulation relation).
    ASSERT_EQ(std::memcmp(bytes.data(), reference_.data() + r.offset, r.length), 0)
        << "read at " << r.offset << " len " << r.length << " diverged";
  }

  void OpMove() {
    const Range dst = RandomRange(16 * kKiB);
    const size_t src_off = rng_.Below(kArena - dst.length);
    stack_.lib->amemmove(arena_va_ + dst.offset, arena_va_ + src_off, dst.length);
    std::memmove(reference_.data() + dst.offset, reference_.data() + src_off, dst.length);
  }

  CopierStack stack_;
  Rng rng_;
  uint64_t arena_va_ = 0;
  std::vector<uint8_t> reference_;
};

class RefinementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RefinementTest, RandomProgramRefinesMemcpy) {
  RefinementRunner runner(GetParam());
  runner.RunOps(120);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefinementTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233));

// Multi-threaded refinement: two app threads share the arena through the
// thread-safe library against a *threaded* Copier service; each thread works
// on its own half (plus a shared region guarded by csync_all before handoff).
TEST(RefinementMultiThread, TwoThreadsWithCsyncAllHandoff) {
  simos::SimKernel kernel;
  core::CopierService::Options options;
  options.mode = core::CopierService::Mode::kThreaded;
  options.config.max_threads = 2;
  core::CopierService service(std::move(options));
  service.Start();
  simos::Process* proc = kernel.CreateProcess("mt");
  core::Client* client = service.AttachProcess(proc);
  lib::CopierLib lib(client, &service);

  const size_t half = 64 * kKiB;
  auto arena = proc->mem().MapAnonymous(2 * half, "arena", true);
  ASSERT_TRUE(arena.ok());

  auto worker = [&](int index) {
    Rng rng(1000 + index);
    const uint64_t base = *arena + index * half;
    std::vector<uint8_t> reference(half, 0);
    for (int i = 0; i < 300; ++i) {
      const size_t len = 64 + rng.Below(8 * kKiB);
      const size_t dst = rng.Below(half - len);
      const size_t src = rng.Below(half - len);
      if (RangesOverlap(dst, len, src, len)) {
        continue;
      }
      lib.amemcpy(base + dst, base + src, len);
      std::memcpy(reference.data() + dst, reference.data() + src, len);
      if (rng.OneIn(3)) {
        ASSERT_TRUE(lib.csync(base + dst, len).ok());
        std::vector<uint8_t> bytes(len);
        ASSERT_TRUE(proc->mem().ReadBytes(base + dst, bytes.data(), len).ok());
        ASSERT_EQ(std::memcmp(bytes.data(), reference.data() + dst, len), 0);
      }
      if (rng.OneIn(5)) {
        const size_t wlen = 1 + rng.Below(2 * kKiB);
        const size_t woff = rng.Below(half - wlen);
        ASSERT_TRUE(lib.csync_all().ok());
        std::vector<uint8_t> bytes(wlen);
        for (auto& b : bytes) {
          b = static_cast<uint8_t>(rng.Next());
        }
        ASSERT_TRUE(proc->mem().WriteBytes(base + woff, bytes.data(), wlen).ok());
        std::memcpy(reference.data() + woff, bytes.data(), wlen);
      }
    }
    ASSERT_TRUE(lib.csync_all().ok());
    std::vector<uint8_t> final_bytes(half);
    ASSERT_TRUE(proc->mem().ReadBytes(base, final_bytes.data(), half).ok());
    EXPECT_EQ(std::memcmp(final_bytes.data(), reference.data(), half), 0);
  };

  std::thread t0(worker, 0);
  std::thread t1(worker, 1);
  t0.join();
  t1.join();
  service.Stop();
}

}  // namespace
}  // namespace copier::test
