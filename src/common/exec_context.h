// ExecContext — a cycle-accounted execution context (one simulated CPU
// hardware thread: an app thread, a kernel path running on it, or a Copier
// service thread).
//
// Every simulated operation charges cycles to the context it runs on; the
// virtual-time benchmark engine (src/sim/) composes end-to-end latencies from
// these charges plus cross-context waits (e.g. csync blocking until a Copier
// thread publishes a segment). Real-thread tests may pass nullptr contexts —
// all charging helpers tolerate that.
#ifndef COPIER_SRC_COMMON_EXEC_CONTEXT_H_
#define COPIER_SRC_COMMON_EXEC_CONTEXT_H_

#include <cstdint>
#include <string>

#include "src/common/cycle_clock.h"

namespace copier {

class ExecContext {
 public:
  ExecContext() = default;
  explicit ExecContext(std::string name) : name_(std::move(name)) {}

  Cycles now() const { return now_; }
  void Charge(Cycles cycles) { now_ += cycles; }
  // Blocks (busy-waits or sleeps) until `time`; the difference is recorded as
  // blocked time so benches can report "thread blocking time" (e.g. §6.1.2 CoW).
  void WaitUntil(Cycles time) {
    if (time > now_) {
      blocked_ += time - now_;
      now_ = time;
    }
  }
  void Reset(Cycles start = 0) {
    now_ = start;
    blocked_ = 0;
  }

  Cycles blocked_cycles() const { return blocked_; }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  Cycles now_ = 0;
  Cycles blocked_ = 0;
};

// Charge helper tolerating null contexts (real-thread mode).
inline void ChargeCtx(ExecContext* ctx, Cycles cycles) {
  if (ctx != nullptr) {
    ctx->Charge(cycles);
  }
}

inline Cycles CtxNow(const ExecContext* ctx) { return ctx != nullptr ? ctx->now() : 0; }

}  // namespace copier

#endif  // COPIER_SRC_COMMON_EXEC_CONTEXT_H_
