#include "src/common/cycle_clock.h"

#include <ctime>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace copier {
namespace {

uint64_t MonotonicNanos() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull + static_cast<uint64_t>(ts.tv_nsec);
}

double MeasureFrequencyHz() {
  // Short busy-wait calibration; 2 ms is enough for a stable estimate and
  // cheap enough to run once per process.
  const uint64_t start_ns = MonotonicNanos();
  const Cycles start_tsc = RealCycleClock::ReadTsc();
  while (MonotonicNanos() - start_ns < 2000000) {
  }
  const uint64_t end_ns = MonotonicNanos();
  const Cycles end_tsc = RealCycleClock::ReadTsc();
  const double elapsed_ns = static_cast<double>(end_ns - start_ns);
  if (elapsed_ns <= 0) {
    return 1e9;
  }
  return static_cast<double>(end_tsc - start_tsc) * 1e9 / elapsed_ns;
}

}  // namespace

Cycles RealCycleClock::ReadTsc() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#elif defined(__aarch64__)
  uint64_t value;
  asm volatile("mrs %0, cntvct_el0" : "=r"(value));
  return value;
#else
  return MonotonicNanos();
#endif
}

double RealCycleClock::FrequencyHz() {
  static const double frequency = MeasureFrequencyHz();
  return frequency;
}

RealCycleClock* RealCycleClock::Get() {
  static RealCycleClock clock;
  return &clock;
}

}  // namespace copier
