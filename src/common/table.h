// Plain-text table printer for the benchmark harness. Every figure/table
// bench prints its rows through this so bench_output.txt is uniform and easy
// to diff against EXPERIMENTS.md.
#ifndef COPIER_SRC_COMMON_TABLE_H_
#define COPIER_SRC_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace copier {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  // Convenience: formats doubles with the given precision.
  static std::string Num(double value, int precision = 2);
  static std::string Bytes(uint64_t bytes);  // "4KiB", "256KiB", "1MiB", ...

  std::string ToString() const;
  void Print() const;  // stdout

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Section banner for bench output ("=== Figure 9: ... ===").
void PrintBanner(const std::string& title);

}  // namespace copier

#endif  // COPIER_SRC_COMMON_TABLE_H_
