#include "src/common/histogram.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace copier {

void Histogram::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Histogram::Sum() const { return std::accumulate(samples_.begin(), samples_.end(), 0.0); }

double Histogram::Mean() const { return samples_.empty() ? 0.0 : Sum() / samples_.size(); }

double Histogram::Min() const {
  if (samples_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  return samples_.front();
}

double Histogram::Max() const {
  if (samples_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  return samples_.back();
}

double Histogram::Stddev() const {
  if (samples_.size() < 2) {
    return 0.0;
  }
  const double mean = Mean();
  double sq = 0.0;
  for (double s : samples_) {
    sq += (s - mean) * (s - mean);
  }
  return std::sqrt(sq / (samples_.size() - 1));
}

double Histogram::Percentile(double p) const {
  if (samples_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  const double rank = p / 100.0 * (samples_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - lo;
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

std::string Histogram::Summary() const {
  std::ostringstream out;
  out << "n=" << Count() << " mean=" << Mean() << " p50=" << Percentile(50)
      << " p99=" << Percentile(99) << " max=" << Max();
  return out.str();
}

void RunningStat::Add(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / count_;
  m2_ += delta * (value - mean_);
}

double RunningStat::Variance() const { return count_ > 1 ? m2_ / (count_ - 1) : 0.0; }

double RunningStat::Stddev() const { return std::sqrt(Variance()); }

}  // namespace copier
