#include "src/common/table.h"

#include <cstdint>
#include <cstdio>
#include <sstream>

namespace copier {

std::string TextTable::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TextTable::Bytes(uint64_t bytes) {
  char buf[32];
  if (bytes >= 1024 * 1024 && bytes % (1024 * 1024) == 0) {
    std::snprintf(buf, sizeof(buf), "%lluMiB", static_cast<unsigned long long>(bytes >> 20));
  } else if (bytes >= 1024 && bytes % 1024 == 0) {
    std::snprintf(buf, sizeof(buf), "%lluKiB", static_cast<unsigned long long>(bytes >> 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%lluB", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      if (row[c].size() > widths[c]) {
        widths[c] = row[c].size();
      }
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      out << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << "\n";
  };

  emit_row(header_);
  out << "|";
  for (size_t c = 0; c < widths.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

void TextTable::Print() const { std::fputs(ToString().c_str(), stdout); }

void PrintBanner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace copier
