// Minimal Status / StatusOr error-handling vocabulary.
//
// The Copier service and the simulated OS substrate report recoverable errors
// through Status values instead of exceptions, following OS-systems practice
// (error paths are data, not control-flow surprises).
#ifndef COPIER_SRC_COMMON_STATUS_H_
#define COPIER_SRC_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace copier {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,   // e.g. copy touching an illegal kernel address (§4.5.4)
  kResourceExhausted,  // queue full, out of physical pages
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kUnavailable,  // transient: retry later (e.g. DMA ring full)
  kFault,        // unresolvable page fault during proactive handling
  kAborted,
};

// Human-readable code name for logs and test failure messages.
const char* StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    std::string out = StatusCodeName(code_);
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }

inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFound(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
inline Status AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status PermissionDenied(std::string msg) {
  return Status(StatusCode::kPermissionDenied, std::move(msg));
}
inline Status ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status OutOfRange(std::string msg) { return Status(StatusCode::kOutOfRange, std::move(msg)); }
inline Status Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
inline Status Unavailable(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
inline Status FaultError(std::string msg) { return Status(StatusCode::kFault, std::move(msg)); }
inline Status Aborted(std::string msg) { return Status(StatusCode::kAborted, std::move(msg)); }

// StatusOr<T>: either a value or a non-OK Status.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}        // NOLINT(google-explicit-constructor)
  StatusOr(Status status) : value_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(value_).ok() && "StatusOr must not hold an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  Status status() const {
    if (ok()) {
      return OkStatus();
    }
    return std::get<Status>(value_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(value_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> value_;
};

#define COPIER_RETURN_IF_ERROR(expr)          \
  do {                                        \
    ::copier::Status status_macro_ = (expr);  \
    if (!status_macro_.ok()) {                \
      return status_macro_;                   \
    }                                         \
  } while (0)

}  // namespace copier

#endif  // COPIER_SRC_COMMON_STATUS_H_
