// Lightweight leveled logging plus CHECK macros.
//
// Copier runs both inside tests (quiet by default) and inside the benchmark
// harness (narrating progress); the level is a process-global atomic.
#ifndef COPIER_SRC_COMMON_LOGGING_H_
#define COPIER_SRC_COMMON_LOGGING_H_

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <string>

namespace copier {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Process-global minimum level; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();  // Flushes; aborts the process for kFatal.

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the message is below the level.
struct LogVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace copier

#define COPIER_LOG_IS_ON(level) \
  (static_cast<int>(::copier::LogLevel::level) >= static_cast<int>(::copier::GetLogLevel()))

#define COPIER_LOG(level)                  \
  !COPIER_LOG_IS_ON(level) ? (void)0       \
                           : ::copier::internal::LogVoidify() &                              \
                                 ::copier::internal::LogMessage(::copier::LogLevel::level,   \
                                                                __FILE__, __LINE__)          \
                                     .stream()

#define COPIER_CHECK(condition)                                                            \
  (condition) ? (void)0                                                                    \
              : ::copier::internal::LogVoidify() &                                         \
                    ::copier::internal::LogMessage(::copier::LogLevel::kFatal, __FILE__,   \
                                                   __LINE__)                               \
                            .stream()                                                      \
                        << "Check failed: " #condition " "

#define COPIER_CHECK_OK(expr)                                                     \
  do {                                                                            \
    ::copier::Status check_ok_status_ = (expr);                                   \
    COPIER_CHECK(check_ok_status_.ok()) << check_ok_status_.ToString();           \
  } while (0)

#define COPIER_DCHECK(condition) COPIER_CHECK(condition)

#endif  // COPIER_SRC_COMMON_LOGGING_H_
