// AtomicBitmap — the storage behind Copier task descriptors (§4.1).
//
// Each bit tracks the copy status of one fixed-size segment. The Copier
// thread sets bits with release semantics after a segment's bytes land; the
// client's csync() reads with acquire semantics, so a set bit publishes the
// copied data. Descriptors are mapped into client memory in the real kernel;
// here they are plain heap objects shared between client and service threads.
#ifndef COPIER_SRC_COMMON_BITMAP_H_
#define COPIER_SRC_COMMON_BITMAP_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "src/common/logging.h"

namespace copier {

class AtomicBitmap {
 public:
  explicit AtomicBitmap(size_t num_bits) : num_bits_(num_bits), words_(WordCount(num_bits)) {
    words_storage_ = std::make_unique<std::atomic<uint64_t>[]>(words_);
    Clear();
  }

  size_t size() const { return num_bits_; }

  void Clear() {
    for (size_t i = 0; i < words_; ++i) {
      words_storage_[i].store(0, std::memory_order_relaxed);
    }
  }

  // Sets `bit` with release semantics (publishes preceding writes).
  void Set(size_t bit) {
    COPIER_DCHECK(bit < num_bits_);
    words_storage_[bit >> 6].fetch_or(1ull << (bit & 63), std::memory_order_release);
  }

  void Reset(size_t bit) {
    COPIER_DCHECK(bit < num_bits_);
    words_storage_[bit >> 6].fetch_and(~(1ull << (bit & 63)), std::memory_order_release);
  }

  // Reads `bit` with acquire semantics (synchronizes with Set).
  bool Test(size_t bit) const {
    COPIER_DCHECK(bit < num_bits_);
    return (words_storage_[bit >> 6].load(std::memory_order_acquire) >> (bit & 63)) & 1;
  }

  // True when every bit in [first, last] is set. Word-at-a-time.
  bool AllSetInRange(size_t first, size_t last) const {
    COPIER_DCHECK(first <= last && last < num_bits_);
    size_t word = first >> 6;
    const size_t last_word = last >> 6;
    uint64_t mask = ~0ull << (first & 63);
    while (word < last_word) {
      if ((words_storage_[word].load(std::memory_order_acquire) & mask) != mask) {
        return false;
      }
      mask = ~0ull;
      ++word;
    }
    const uint64_t tail_mask = mask & (~0ull >> (63 - (last & 63)));
    return (words_storage_[word].load(std::memory_order_acquire) & tail_mask) == tail_mask;
  }

  bool AllSet() const { return num_bits_ == 0 || AllSetInRange(0, num_bits_ - 1); }

  bool NoneSet() const {
    for (size_t i = 0; i < words_; ++i) {
      if (words_storage_[i].load(std::memory_order_acquire) != 0) {
        return false;
      }
    }
    return true;
  }

  size_t CountSet() const {
    size_t count = 0;
    for (size_t i = 0; i < words_; ++i) {
      count += static_cast<size_t>(
          __builtin_popcountll(words_storage_[i].load(std::memory_order_acquire)));
    }
    return count;
  }

 private:
  static size_t WordCount(size_t bits) { return (bits + 63) / 64; }

  size_t num_bits_;
  size_t words_;
  std::unique_ptr<std::atomic<uint64_t>[]> words_storage_;
};

}  // namespace copier

#endif  // COPIER_SRC_COMMON_BITMAP_H_
