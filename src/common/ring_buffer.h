// Lock-free MPSC ring buffer — the substrate of the CSH Queues (§4.1, §5.1.1).
//
// The paper's submission protocol, implemented verbatim:
//   * producers *acquire* a slot by fetch-and-add on `head`,
//   * fill the slot's payload,
//   * then set the slot's per-slot `valid` flag (release);
//   * the single consumer (a Copier thread) observes a valid slot at `tail`,
//     consumes it, clears `valid`, and advances the tail.
//
// Task order follows the order of *acquiring*, matching §5.1.1. The queue is
// bounded; producers get false when the ring is full and fall back to
// synchronous copy (the paper's recommended fallback, §4.6).
//
// Vectored submission (one doorbell per syscall) adds a batch producer path:
// TryReserveBatch acquires N contiguous slots with a single head CAS, the
// producer fills all payloads, and Batch::Commit publishes them with one
// release fence — one ring transaction for the whole syscall's op-list.
#ifndef COPIER_SRC_COMMON_RING_BUFFER_H_
#define COPIER_SRC_COMMON_RING_BUFFER_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <optional>
#include <utility>

#include "src/common/logging.h"

namespace copier {

template <typename T>
class MpscRingBuffer {
 public:
  explicit MpscRingBuffer(size_t capacity) : capacity_(RoundUpPow2(capacity)), mask_(capacity_ - 1) {
    slots_ = std::make_unique<Slot[]>(capacity_);
  }

  size_t capacity() const { return capacity_; }

  // Producer side (any thread). Returns false when the ring is full.
  bool TryPush(T value) {
    uint64_t head = head_.load(std::memory_order_relaxed);
    while (true) {
      const uint64_t tail = tail_.load(std::memory_order_acquire);
      if (head - tail >= capacity_) {
        return false;  // Full.
      }
      if (head_.compare_exchange_weak(head, head + 1, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
        break;
      }
    }
    Slot& slot = slots_[head & mask_];
    slot.value = std::move(value);
    slot.valid.store(true, std::memory_order_release);
    return true;
  }

  // A batch of contiguously reserved, not-yet-published slots. Fill every
  // payload via operator[] and then Commit() exactly once. The consumer stalls
  // at the batch's first slot until Commit, so reservations must be
  // short-lived; a Batch must not outlive the ring.
  class Batch {
   public:
    Batch() = default;

    size_t size() const { return count_; }

    T& operator[](size_t i) {
      COPIER_DCHECK(ring_ != nullptr && i < count_);
      return ring_->slots_[(base_ + i) & ring_->mask_].value;
    }

    // Publishes the whole batch: a release store per valid flag, in slot
    // order. The consumer's acquire load of a slot's flag synchronizes with
    // that store, so every payload write in the batch is visible before the
    // slot is exposed. (Release stores rather than one release fence +
    // relaxed stores: equivalent on the architectures we target, and
    // standalone fences are invisible to ThreadSanitizer.)
    void Commit() {
      COPIER_DCHECK(ring_ != nullptr);
      for (size_t i = 0; i < count_; ++i) {
        ring_->slots_[(base_ + i) & ring_->mask_].valid.store(true, std::memory_order_release);
      }
      ring_ = nullptr;
      count_ = 0;
    }

   private:
    friend class MpscRingBuffer;
    MpscRingBuffer* ring_ = nullptr;
    uint64_t base_ = 0;
    size_t count_ = 0;
  };

  // Reserves `count` contiguous slots with one head CAS. All-or-nothing: when
  // fewer than `count` slots are free nothing is acquired and the ring state
  // is untouched (the producer falls back to per-op submission).
  bool TryReserveBatch(size_t count, Batch* out) {
    if (count == 0 || count > capacity_) {
      return false;
    }
    uint64_t head = head_.load(std::memory_order_relaxed);
    while (true) {
      const uint64_t tail = tail_.load(std::memory_order_acquire);
      if (head - tail + count > capacity_) {
        return false;  // Not enough contiguous room.
      }
      if (head_.compare_exchange_weak(head, head + count, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
        break;
      }
    }
    out->ring_ = this;
    out->base_ = head;
    out->count_ = count;
    return true;
  }

  // Consumer side (single thread). Returns nullopt when the slot at tail has
  // not been published yet (empty, or a producer is mid-fill).
  std::optional<T> TryPop() {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    Slot& slot = slots_[tail & mask_];
    if (!slot.valid.load(std::memory_order_acquire)) {
      return std::nullopt;
    }
    T value = std::move(slot.value);
    slot.valid.store(false, std::memory_order_release);
    tail_.store(tail + 1, std::memory_order_release);
    return value;
  }

  // Consumer-side peek without consuming; used by the dispatcher to fuse
  // adjacent tasks for e-piggybacking (§4.3) before committing to them.
  const T* Peek(size_t offset = 0) const {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    const Slot& slot = slots_[(tail + offset) & mask_];
    if (!slot.valid.load(std::memory_order_acquire)) {
      return nullptr;
    }
    // A later slot may be valid while an earlier one is mid-fill; only expose
    // a contiguous published prefix to preserve acquire order.
    for (size_t i = 0; i < offset; ++i) {
      if (!slots_[(tail + i) & mask_].valid.load(std::memory_order_acquire)) {
        return nullptr;
      }
    }
    return &slot.value;
  }

  bool Empty() const {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    return !slots_[tail & mask_].valid.load(std::memory_order_acquire);
  }

  // Number of acquired (not necessarily published) slots. Approximate under
  // concurrency; exact when producers are quiescent.
  size_t SizeApprox() const {
    return static_cast<size_t>(head_.load(std::memory_order_acquire) -
                               tail_.load(std::memory_order_acquire));
  }

  // Monotone count of slots ever acquired; the order tracker uses this as the
  // queue position recorded in Barrier Tasks (§4.2.1).
  uint64_t HeadPosition() const { return head_.load(std::memory_order_acquire); }
  uint64_t TailPosition() const { return tail_.load(std::memory_order_acquire); }

 private:
  struct Slot {
    std::atomic<bool> valid{false};
    T value{};
  };

  static size_t RoundUpPow2(size_t n) {
    size_t p = 1;
    while (p < n) {
      p <<= 1;
    }
    return p;
  }

  size_t capacity_;
  size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  alignas(64) std::atomic<uint64_t> head_{0};
  alignas(64) std::atomic<uint64_t> tail_{0};
};

}  // namespace copier

#endif  // COPIER_SRC_COMMON_RING_BUFFER_H_
