// RelaxedCounter — a monotone statistics counter safe to read from any
// thread while another thread mutates it.
//
// Stats blocks (Engine::Stats, CopierService::SchedStats) are written by one
// service thread on its hot path and aggregated by observers (TotalStats,
// benches) while the threads keep running. Plain uint64_t fields make that a
// data race; a relaxed atomic keeps the write a single unordered store/RMW —
// no fences on x86 — while reads are well-defined. The operators mirror plain
// integer usage so counting sites read identically to the pre-atomic code.
#ifndef COPIER_SRC_COMMON_RELAXED_COUNTER_H_
#define COPIER_SRC_COMMON_RELAXED_COUNTER_H_

#include <atomic>
#include <cstdint>

namespace copier {

class RelaxedCounter {
 public:
  RelaxedCounter() = default;
  RelaxedCounter(const RelaxedCounter&) = delete;
  RelaxedCounter& operator=(const RelaxedCounter&) = delete;

  void operator++() { value_.fetch_add(1, std::memory_order_relaxed); }
  void operator+=(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  RelaxedCounter& operator=(uint64_t value) {
    value_.store(value, std::memory_order_relaxed);
    return *this;
  }
  uint64_t load() const { return value_.load(std::memory_order_relaxed); }
  operator uint64_t() const { return load(); }

 private:
  std::atomic<uint64_t> value_{0};
};

}  // namespace copier

#endif  // COPIER_SRC_COMMON_RELAXED_COUNTER_H_
