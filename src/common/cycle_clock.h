// Cycle-granularity clocks.
//
// Copier measures everything in "cycles". Two clock implementations share the
// Clock interface:
//   * RealCycleClock   — rdtsc (x86) / cntvct (arm) wrapper, used by the real
//                        multi-threaded service and by calibration runs.
//   * VirtualClock     — manually advanced, used by the virtual-time benchmark
//                        engine (src/sim/) so figure benches are deterministic
//                        and hardware-independent (see DESIGN.md §1).
#ifndef COPIER_SRC_COMMON_CYCLE_CLOCK_H_
#define COPIER_SRC_COMMON_CYCLE_CLOCK_H_

#include <cstdint>

namespace copier {

using Cycles = uint64_t;

class Clock {
 public:
  virtual ~Clock() = default;
  virtual Cycles Now() const = 0;
};

// Reads the hardware timestamp counter. Frequency is estimated once at first
// use so cycles can be converted to nanoseconds for reporting.
class RealCycleClock : public Clock {
 public:
  Cycles Now() const override { return ReadTsc(); }

  static Cycles ReadTsc();

  // Estimated TSC frequency in Hz (measured against CLOCK_MONOTONIC).
  static double FrequencyHz();

  static double CyclesToNanos(Cycles cycles) { return cycles * 1e9 / FrequencyHz(); }
  static Cycles NanosToCycles(double nanos) {
    return static_cast<Cycles>(nanos * FrequencyHz() / 1e9);
  }

  static RealCycleClock* Get();
};

// Deterministic clock advanced explicitly by the simulation engine.
class VirtualClock : public Clock {
 public:
  Cycles Now() const override { return now_; }

  void Advance(Cycles cycles) { now_ += cycles; }
  void AdvanceTo(Cycles time) {
    if (time > now_) {
      now_ = time;
    }
  }
  void Reset() { now_ = 0; }

 private:
  Cycles now_ = 0;
};

}  // namespace copier

#endif  // COPIER_SRC_COMMON_CYCLE_CLOCK_H_
