// Alignment and size helpers shared across the Copier codebase.
#ifndef COPIER_SRC_COMMON_ALIGN_H_
#define COPIER_SRC_COMMON_ALIGN_H_

#include <cstddef>
#include <cstdint>

namespace copier {

inline constexpr size_t kKiB = 1024;
inline constexpr size_t kMiB = 1024 * kKiB;

// The simulated OS uses 4 KiB base pages throughout (see src/simos/).
inline constexpr size_t kPageSize = 4096;
inline constexpr size_t kPageShift = 12;

constexpr uint64_t AlignDown(uint64_t value, uint64_t alignment) {
  return value & ~(alignment - 1);
}

constexpr uint64_t AlignUp(uint64_t value, uint64_t alignment) {
  return (value + alignment - 1) & ~(alignment - 1);
}

constexpr bool IsAligned(uint64_t value, uint64_t alignment) {
  return (value & (alignment - 1)) == 0;
}

constexpr uint64_t PageNumber(uint64_t address) { return address >> kPageShift; }

constexpr uint64_t PageOffset(uint64_t address) { return address & (kPageSize - 1); }

constexpr uint64_t PageBase(uint64_t address) { return AlignDown(address, kPageSize); }

// Number of pages spanned by the byte range [address, address + length).
constexpr uint64_t PagesSpanned(uint64_t address, uint64_t length) {
  if (length == 0) {
    return 0;
  }
  return PageNumber(address + length - 1) - PageNumber(address) + 1;
}

// True when the half-open byte ranges [a, a+alen) and [b, b+blen) overlap.
constexpr bool RangesOverlap(uint64_t a, uint64_t alen, uint64_t b, uint64_t blen) {
  if (alen == 0 || blen == 0) {
    return false;
  }
  return a < b + blen && b < a + alen;
}

}  // namespace copier

#endif  // COPIER_SRC_COMMON_ALIGN_H_
