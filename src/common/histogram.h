// Latency/size recorders used by the benchmark harness.
//
// Histogram keeps raw samples (benches are bounded) so exact percentiles (P50,
// P99, ...) can be reported, matching how the paper reports Redis latency
// (Fig. 11) and syscall latency (Fig. 10).
#ifndef COPIER_SRC_COMMON_HISTOGRAM_H_
#define COPIER_SRC_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace copier {

class Histogram {
 public:
  void Add(double value) { samples_.push_back(value); }
  void Clear() { samples_.clear(); }

  size_t Count() const { return samples_.size(); }
  double Sum() const;
  double Mean() const;
  double Min() const;
  double Max() const;
  double Stddev() const;

  // Exact percentile over recorded samples; p in [0, 100]. Sorts lazily.
  double Percentile(double p) const;

  std::string Summary() const;

 private:
  // Sorted on demand by Percentile/Min/Max; mutable keeps the accessors const.
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;

  void EnsureSorted() const;
};

// Welford running statistics for unbounded streams (service-side counters).
class RunningStat {
 public:
  void Add(double value);
  size_t Count() const { return count_; }
  double Mean() const { return count_ > 0 ? mean_ : 0.0; }
  double Variance() const;
  double Stddev() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace copier

#endif  // COPIER_SRC_COMMON_HISTOGRAM_H_
