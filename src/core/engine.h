// Engine — the single-threaded task-processing core of the Copier service.
//
// One Engine instance backs one Copier (k)thread. A service (service.h) owns
// one or more Engines and drives them from real threads; tests and the
// virtual-time benchmark harness drive an Engine directly.
//
// Responsibilities, each mapping to a design section of the paper:
//   * Ingestion with cross-queue Barrier Tasks — order dependency (§4.2.1):
//     k-mode entries are consumed bracket-by-bracket; a BarrierEnter bounds
//     how far the u-mode queue may be drained before the bracket's tasks.
//   * Sync Task processing — task promotion / out-of-order execution (§4.1),
//     k-mode Sync Queue served before u-mode (§4.2.2), and explicit aborts
//     (§4.4).
//   * Data-dependency resolution (§4.2.2): before a byte range of a task
//     executes, conflicting ranges (RAW/WAW/WAR) of earlier pending tasks
//     execute first — except RAW producers, which layered copy absorption
//     (§4.4) reads *through* instead of executing.
//   * Hardware dispatch (§4.3): tasks split into physically contiguous
//     subtasks; large tasks i-piggyback DMA onto AVX; small adjacent tasks
//     fuse into e-piggyback rounds; segment completion times respect both
//     units' clocks.
//   * Proactive fault handling (§4.5.4): user ranges are translated, faulted
//     in and pinned before the copy; unresolvable faults drop the task, fail
//     its descriptor, and signal the process.
#ifndef COPIER_SRC_CORE_ENGINE_H_
#define COPIER_SRC_CORE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/exec_context.h"
#include "src/common/relaxed_counter.h"
#include "src/common/status.h"
#include "src/core/atcache.h"
#include "src/core/client.h"
#include "src/core/config.h"
#include "src/hw/dma_channel_pool.h"
#include "src/hw/timing_model.h"

namespace copier::core {

class Engine;

// Overload feedback sink (DESIGN.md §13): engines report saturation events —
// today DMA ring-full doorbell bounces, the moment "silently eat it on CPU"
// becomes visible — into a service-owned instance; admission control samples
// the counter and backs off while new events keep appearing. Null pointer
// (standalone engines) = no reporting, bit-for-bit the old behavior.
struct OverloadSignals {
  RelaxedCounter ring_full_events;
};

// Cross-engine coordination surface (DESIGN.md §10). One Engine is
// single-threaded by construction; when a service runs a pool of them,
// conflicts between *clients* (shared kernel buffers, foreign-space writes)
// can span engines. The service implements these hooks over its shared range
// ledger; a null hooks pointer (standalone engines, pool disabled) makes
// every cross-engine path a no-op — bit-for-bit the single-engine behavior.
class CrossEngineHooks {
 public:
  virtual ~CrossEngineHooks() = default;

  // Service-global submission sequence, shared with the submitter-side
  // stamping (CopyTask::gseq) so ingestion-assigned fallbacks interleave
  // consistently. An allocated sequence is *outstanding* — it may still name
  // a not-yet-ingested task that will probe the ledger — until it is either
  // registered (RegisterShared) or retired (RetireGlobalSeq); tombstone
  // pruning is bounded by the minimum outstanding sequence.
  virtual uint64_t NextGlobalSeq() = 0;

  // Declares a stamped sequence dead: its task was ingested as private (will
  // never probe the ledger), dropped at validation, or never entered a ring
  // (failed push, synchronous fallback). No-op for gseq 0 (unstamped).
  virtual void RetireGlobalSeq(uint64_t gseq) = 0;

  // True while the cross-engine protocol still needs a *landed* write at
  // `gseq` into `domain` kept in the writer's completed-write log: the domain
  // is shared and a lower-gseq task may still be outstanding service-wide.
  // Covers writes that landed before their domain turned shared (never
  // registered, so no ledger tombstone exists); SettleForeign consults the
  // claimed owner's log for exactly these.
  virtual bool LandedWriteStillNeeded(uint64_t domain, uint64_t gseq) = 0;

  // True when a client other than `self` has ranges registered in `domain`
  // (an address-space asid): own-space tasks of that domain must then join
  // the shared ledger too.
  virtual bool DomainShared(uint64_t domain, const Client& self) = 0;

  // Registers / unregisters the dst and src pieces of a shared-visible task
  // in the ledger. Registration happens at ingestion (AcceptTask);
  // unregistration at the Done transition (OnTaskDone). Landed writes stay
  // as tombstones for cross-client dead-write suppression until no live task
  // with a lower gseq remains.
  virtual void RegisterShared(Client& client, PendingTask& task) = 0;
  virtual void UnregisterShared(Client& client, PendingTask& task) = 0;

  // Orders the window [start, start+length) of `domain`, accessed by `task`
  // (writing it when `writes`), against foreign clients' conflicting ranges:
  // executes every conflicting foreign task with a lower gseq (a targeted
  // steal run on `thief`), and imports landed foreign writes with a higher
  // gseq into `client`'s completed-write log so the engine's own dead-write
  // suppression skips those bytes. Returns kUnavailable when a foreign
  // serving claim could not be taken (the caller defers and retries).
  virtual Status SettleForeign(Engine& thief, Client& client, PendingTask& task,
                               uint64_t domain, uint64_t start, size_t length,
                               bool writes) = 0;
};

class Engine {
 public:
  // Snapshot of the engine's counters; see stats(). The live counters are
  // relaxed atomics (AtomicStats) so observers — CopierService::TotalStats,
  // benches — can read them while the owning Copier thread keeps serving.
  struct Stats {
    uint64_t tasks_ingested = 0;
    uint64_t tasks_completed = 0;
    uint64_t tasks_dropped = 0;   // proactive fault handling failures
    uint64_t tasks_aborted = 0;
    uint64_t barriers_processed = 0;
    uint64_t sync_promotions = 0;
    uint64_t bytes_copied = 0;    // bytes physically moved by this engine
    uint64_t bytes_absorbed = 0;  // bytes short-circuited past an intermediate
    uint64_t avx_bytes = 0;
    // DMA accounting is split at the submission/completion boundary so
    // observers can compute genuinely in-flight work (submitted − completed)
    // while rounds are parked (DESIGN.md §9).
    uint64_t dma_bytes_submitted = 0;
    uint64_t dma_bytes_completed = 0;
    uint64_t dma_batches_submitted = 0;
    uint64_t dma_batches_completed = 0;
    // Ring-full submissions that fell back to the CPU (the failed attempt is
    // still charged — descriptors were written before the doorbell bounced).
    uint64_t dma_ring_full_fallbacks = 0;
    // Engine-thread cycles blocked in end-of-round DMA completion waits
    // (blocking mode; ~0 with enable_async_dma_completion).
    uint64_t dma_stall_cycles = 0;
    // Cycles spent force-settling or idle-advancing past parked batches
    // (barrier/csync drains, dependency settles, end-of-work reaps).
    uint64_t dma_drain_wait_cycles = 0;
    uint64_t dma_rounds_parked = 0;  // rounds returned with DMA in flight
    uint64_t kfuncs_run = 0;
    uint64_t ufuncs_queued = 0;
    uint64_t lazy_absorbed_bytes = 0;
    // Zero-copy remap tier (DESIGN.md §11). remapped_bytes count toward
    // bytes_copied (progress semantics) but not avx/dma bytes — nothing
    // physically moved. remap_cow_breaks are the lazily materialized copies
    // (sampled from the client spaces' alias-break counters).
    uint64_t remap_tasks = 0;       // exec ranges satisfied by aliasing
    uint64_t remapped_bytes = 0;    // bytes landed without moving
    uint64_t remap_cow_breaks = 0;  // post-remap write faults that broke a share
    // Fused IPC fast path (DESIGN.md §12): single-hop transfers that skipped
    // the intermediate kernel buffer. fused_ipc_bytes counts exactly the
    // bytes that landed through a fused task (each such byte would have been
    // physically moved twice on the two-step path); fuse_fallbacks sums the
    // send-time fallbacks to two-step (service-wide; filled in by
    // CopierService::TotalStats, see IpcFuseStats for the breakdown).
    uint64_t fused_ipc_tasks = 0;
    uint64_t fused_ipc_bytes = 0;
    uint64_t fuse_fallbacks = 0;
    // Engine-clock time of the most recent KFUNC dispatch (max across engines
    // in TotalStats). The serve harness differences this against the request's
    // submit time for per-request copy-use *window* attribution — first
    // submit → last kfunc — alongside end-to-end latency.
    uint64_t last_kfunc_cycles = 0;
    // Coordination-lookup observability (range index vs linear baseline).
    uint64_t dep_probes = 0;         // dependency/absorption/abort lookups issued
    uint64_t dep_tasks_scanned = 0;  // candidate tasks examined across all probes
    uint64_t index_entries = 0;      // live index entries (gauge, last-touched client)
    // Submission-path observability (vectored submission vs per-op baseline).
    uint64_t submit_entries = 0;   // copy-queue Copy entries ingested
    uint64_t submit_batches = 0;   // of those, scatter-gather (vectored) tasks
    uint64_t notify_calls = 0;     // NotifyRunnable doorbells (service-wide;
                                   // filled in by CopierService::TotalStats)
    // Engine-pool observability (DESIGN.md §10).
    uint64_t serve_cycles = 0;        // virtual cycles spent inside ServeClient
    uint64_t cross_dep_probes = 0;    // shared-ledger windows probed
    uint64_t cross_dep_settles = 0;   // foreign task ranges force-landed here
    uint64_t cross_dep_defers = 0;    // probes bounced off a held foreign client
    uint64_t cross_dep_wait_cycles = 0;  // cycles synced to foreign completions
    // Overload admission control (DESIGN.md §13; service-wide, filled in by
    // CopierService::TotalStats from the per-cgroup decision counters —
    // admitted + shed + deferred-to-death sum to the requests offered through
    // AdmitRequest).
    uint64_t admission_admitted = 0;
    uint64_t admission_shed = 0;
    uint64_t admission_deferred = 0;   // defer verdicts issued (retries count)
    uint64_t admission_throttled = 0;  // throttle verdicts issued
    uint64_t admission_throttle_cycles = 0;  // total backpressure wait imposed
    uint64_t overload_ring_backoffs = 0;     // admission back-offs from ring-full
                                             // feedback (service-wide, TotalStats)
  };

  // Standalone engine: owns a private DMA channel pool (tests, single-engine
  // harnesses).
  Engine(const CopierConfig& config, const hw::TimingModel* timing, ExecContext* ctx);
  // Pool member: operates a slice of a service-owned channel pool (disjoint
  // per engine, so channel state stays single-threaded).
  Engine(const CopierConfig& config, const hw::TimingModel* timing, ExecContext* ctx,
         hw::DmaChannelSlice dma);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Serves one client: drains sync queues, ingests copy queues, executes up
  // to `max_bytes` of pending work (a copy slice, §4.5.3). Returns the bytes
  // of copy length served (the scheduler's resource unit, §4.5.2).
  uint64_t ServeClient(Client& client, uint64_t max_bytes);

  // Runs until the client has no queued or pending work (csync_all, tests).
  void DrainClient(Client& client);

  // Executes the pending ranges needed to make [addr, addr+length) ready —
  // the service-side reaction to a Sync Task (also used directly in
  // single-threaded mode when csync finds segments unready).
  void PromoteRange(Client& client, const MemRef& addr, size_t length);

  // Cross-engine targeted steal (DESIGN.md §10): force-lands every live task
  // of `client` with gseq < `gseq_bound` whose dst or src pieces overlap
  // [start, start+length) of `domain`. Runs on *this* (the thief) engine
  // while the caller holds the client's serving claim; never retires pending
  // entries — the owner may be mid-iteration over them up-stack.
  Status SettleSharedRange(Client& client, uint64_t domain, uint64_t start, size_t length,
                           uint64_t gseq_bound);

  // Installs the service's cross-engine coordination hooks (null = disabled).
  void set_cross(CrossEngineHooks* cross) { cross_ = cross; }
  // Installs the service's overload feedback sink (null = no reporting).
  // Unlike set_cross this is installed on every engine regardless of pool
  // mode: reporting a counter has no behavioral side effects.
  void set_overload_signals(OverloadSignals* signals) { overload_ = signals; }

  ExecContext* ctx() { return ctx_; }
  ATCache& atcache() { return atcache_; }
  hw::DmaChannelSlice& dma() { return dma_; }
  // Coherent snapshot of the counters, safe from any thread.
  Stats stats() const;
  const CopierConfig& config() const { return config_; }

 private:
  struct Subtask {
    uint8_t* dst = nullptr;
    const uint8_t* src = nullptr;
    size_t length = 0;
    PendingTask* owner = nullptr;
    size_t task_offset = 0;  // byte offset of this subtask within the task
    bool dma_eligible = false;
    bool on_dma = false;  // selected for the round's DMA batch (ExecuteRound)
    // Translation work owed if this subtask goes to DMA (§4.3 ATCache): CPU
    // copies translate through the MMU for free; DMA needs explicit VA->PA.
    uint32_t pages_cached = 0;    // translations served by the ATCache
    uint32_t pages_uncached = 0;  // page-table walks (~240 cycles each)
  };

  // --- ingestion --------------------------------------------------------------
  void IngestClient(Client& client);
  void IngestPair(Client& client, QueuePair& pair);
  void AcceptTask(Client& client, QueuePair& pair, CopyTask task, bool kernel_mode);
  void ProcessSyncQueues(Client& client);
  void HandleSyncTask(Client& client, const SyncTask& sync);
  // Applies abort requests whose dependents have drained (§4.4).
  void ApplyDeferredAborts(Client& client);

  // --- execution ---------------------------------------------------------------
  uint64_t ExecutePending(Client& client, uint64_t budget);
  // Executes [offset, offset+length) of `task` (clipped to unfinished
  // segments), resolving dependencies first. Depth guards recursion.
  // `must_land` is the barrier-drain rule (DESIGN.md §9): promotion/csync and
  // dependency-resolution calls force any overlapping dma-in-flight bytes to
  // settle; plain FIFO passes skip them instead (they land via the reaper).
  Status ExecuteTaskRange(Client& client, PendingTask& task, size_t offset, size_t length,
                          int depth, bool must_land);
  Status ResolveDependencies(Client& client, PendingTask& task, size_t offset, size_t length,
                             int depth);
  // Physically copies [offset, offset+length) of the task (sources resolved
  // through layered absorption) and marks progress.
  Status CopyRange(Client& client, PendingTask& task, size_t offset, size_t length, int depth);

  // Layered absorption (§4.4): maps [src_offset, +length) of `task`'s source
  // onto the memory that holds the *latest* data, possibly through chains of
  // earlier pending tasks. Appends (ref, length) pieces to `out`.
  struct SourcePiece {
    MemRef ref;
    size_t length = 0;
    bool absorbed = false;  // read through an unexecuted producer
  };
  void ResolveSources(Client& client, PendingTask& task, size_t src_offset, size_t length,
                      int depth, std::vector<SourcePiece>* out);
  // Absorption worker for one contiguous source piece (`src` is a piece of
  // `task`'s source side covering `length` bytes).
  void ResolveSourcesContig(Client& client, PendingTask& task, const MemRef& src, size_t length,
                            int depth, std::vector<SourcePiece>* out);

  // --- hardware dispatch (§4.3) -------------------------------------------------
  struct HostRun {
    uint8_t* host = nullptr;
    size_t length = 0;
  };
  struct HostRunExtra {
    uint32_t pages_cached = 0;
    uint32_t pages_uncached = 0;
  };
  // Longest host-contiguous run at `ref` (proactively faulting user pages).
  StatusOr<HostRun> ResolveHostRun(const MemRef& ref, size_t max_length, bool for_write,
                                   HostRunExtra* extra);
  // Builds physically contiguous subtasks for [offset, offset+length) of the
  // task given resolved source pieces; pins user pages (proactive faults).
  Status BuildSubtasks(Client& client, PendingTask& task, size_t offset,
                       const std::vector<SourcePiece>& sources, std::vector<Subtask>* out);
  // Executes one piggyback round over the subtasks; marks progress per owner.
  void ExecuteRound(Client& client, std::vector<Subtask>& subtasks);

  // Resolves one user page to a host pointer through the ATCache; performs
  // proactive fault handling. Returns the host pointer for `va`'s page and
  // reports whether the translation hit the ATCache via `*cached`.
  StatusOr<uint8_t*> ResolveUserPage(simos::AddressSpace* space, uint64_t va, bool for_write,
                                     bool* cached);

  // --- zero-copy remap tier (DESIGN.md §11) -----------------------------------
  // Geometric eligibility of task-local [start, end): a non-SG user->user
  // copy whose sides are page-co-aligned with a page-multiple interior of at
  // least remap_min_bytes. On success *rs/*re bound the aliasable interior.
  bool RemapCandidate(const PendingTask& task, size_t start, size_t end, size_t* rs,
                      size_t* re) const;
  // True when the resolved `sources` (covering task-local [start, ...)) back
  // [rs, re) directly from the task's own source range — absorbed pieces read
  // through producers whose data is *not* at the source, so they must copy.
  static bool RemapSourcesPlain(const PendingTask& task, const std::vector<SourcePiece>& sources,
                                size_t start, size_t rs, size_t re);
  // Aliases the interior instead of copying and marks it complete for
  // ordering. Returns false (leaving no partial alias) to fall back to the
  // physical copy path.
  bool TryRemapRange(Client& client, PendingTask& task, size_t rs, size_t re);

  // Security checks (§4.5.4): u-mode tasks may only touch their own space.
  Status ValidateTask(Client& client, const CopyTask& task, bool kernel_mode) const;

  // --- asynchronous DMA completion (DESIGN.md §9) -----------------------------
  // Lands every parked batch whose completion time has passed: marks progress
  // at the batch's completion time, fires completions, frees the parked
  // ranges. Returns the bytes landed.
  uint64_t ReapParkedDma(Client& client, Cycles now);
  // Forces the parked batches holding bytes of `task` overlapping task-local
  // [offset, offset+length) to land, advancing the clock to their completion
  // (the barrier-drain rule: conflicting or synchronizing accesses may not
  // proceed past in-flight hardware).
  void SettleParkedRange(Client& client, PendingTask& task, size_t offset, size_t length);
  void SettleTaskParked(Client& client, PendingTask& task) {
    SettleParkedRange(client, task, 0, task.task.length);
  }
  // True when a pending task ordered before `order` still has bytes on a DMA
  // channel. FIFO-ordered completions (and SG segment kfuncs) defer behind
  // such a task: blocking mode retires rounds in submission order, so a later
  // task's handler must not overtake an earlier in-flight one — the socket
  // paths reassemble byte streams in handler-delivery order.
  bool HasEarlierParked(const Client& client, uint64_t order) const;
  // Fires deferred handlers in task order once the tasks blocking them have
  // landed: walks pending front-to-back, firing credited SG prefixes and
  // completion handlers, stopping at the first task still in flight.
  void FireOrderedCompletions(Client& client, Cycles when);

  void MarkProgress(Client& client, PendingTask& task, size_t offset, size_t length,
                    Cycles when);
  // `fifo_ordered` marks completions reached through the plain FIFO pass:
  // they defer while an earlier-ordered task has parked bytes (see
  // HasEarlierParked) and fire later via FireOrderedCompletions. Promotion,
  // dependency resolution and abort paths complete immediately, exactly as
  // the blocking engine does.
  void CompleteTask(Client& client, PendingTask& task, bool fifo_ordered = false);
  // Cross-engine settle support (DESIGN.md §10): a settle-landed task whose
  // predecessor has not fired defers its handler (HasEarlierUnfired); the
  // predecessor's completion (or drop) cascades the done-but-unfired suffix
  // in task order, keeping KFUNC order independent of the engine-pool size.
  bool HasEarlierUnfired(const Client& client, uint64_t order) const;
  void FireDeferredSuccessors(Client& client);
  void DropTask(Client& client, PendingTask& task, const Status& reason);
  void RetireDone(Client& client);

  // Finds the latest-ordered unfinished earlier task writing the memory at
  // `ref` (the absorption producer). On a hit, *overlap_offset/*overlap_length
  // describe the overlap within [ref, ref+length) and *producer_local is the
  // producer-local byte offset of the overlap's first byte (piece-aware: for
  // a scatter-gather producer this maps through its segment list).
  PendingTask* FindProducer(Client& client, const PendingTask& task, const MemRef& ref,
                            size_t length, size_t* overlap_offset, size_t* overlap_length,
                            size_t* producer_local);

  // Scatter-gather segment accounting: credits bytes landing at task-local
  // [offset, offset+length) against the covering segments and fires each
  // segment's KFUNC exactly once when its remaining byte count hits zero.
  void CreditSgSegments(Client& client, PendingTask& task, size_t offset, size_t length,
                        Cycles when);
  // Fires the longest fully-credited segment prefix, in segment order.
  void FireReadySgSegments(Client& client, PendingTask& task, Cycles when);
  // Fires every still-unfired segment KFUNC (task completion / abort — the
  // kernel buffers must be reclaimed exactly as the per-op path would).
  void FireRemainingSgSegments(Client& client, PendingTask& task, Cycles when);

  // --- pending-range interval index maintenance and fused-path probes ---
  void IndexInsert(Client& client, PendingTask& task);
  void IndexErase(Client& client, PendingTask& task);
  // Done transition: drops the task's index entries and logs its destination
  // in client.completed_writes (non-aborted tasks), exactly once per task.
  void OnTaskDone(Client& client, PendingTask& task);
  // True when any live pending task other than `self` has a data dependency
  // (RAW/WAW/WAR, either direction) with `self`'s ranges (e-piggyback gate).
  bool HasAnyConflict(Client& client, const PendingTask& self);
  // True when an unfinished earlier-ordered task writes bytes `reader`'s
  // source names (a live RAW producer — such tasks need the ordered path).
  bool HasEarlierLiveWriter(Client& client, const PendingTask& reader);

  // --- cross-engine coordination (DESIGN.md §10) ------------------------------
  // True when any piece of the task can overlap another client's ranges
  // (kernel host memory, a foreign space, or a domain with foreign activity).
  bool TaskIsSharedVisible(Client& client, const PendingTask& task) const;
  // Probes the shared ledger for the dst (and src) windows of task-local
  // [offset, offset+length): settles conflicting lower-gseq foreign work,
  // imports higher-gseq landed foreign writes. kUnavailable = defer.
  Status CrossSettle(Client& client, PendingTask& task, size_t offset, size_t length);
  // True when every byte of task-local [offset, offset+length) has landed
  // (progress-descriptor check; lets settle paths skip no-op executions
  // without charging the clock).
  bool RangeLanded(const PendingTask& task, size_t offset, size_t length) const;

  // Live counters: field-for-field atomic mirror of Stats (same names, so
  // counting sites read like plain integer code).
  struct AtomicStats {
    RelaxedCounter tasks_ingested;
    RelaxedCounter tasks_completed;
    RelaxedCounter tasks_dropped;
    RelaxedCounter tasks_aborted;
    RelaxedCounter barriers_processed;
    RelaxedCounter sync_promotions;
    RelaxedCounter bytes_copied;
    RelaxedCounter bytes_absorbed;
    RelaxedCounter avx_bytes;
    RelaxedCounter dma_bytes_submitted;
    RelaxedCounter dma_bytes_completed;
    RelaxedCounter dma_batches_submitted;
    RelaxedCounter dma_batches_completed;
    RelaxedCounter dma_ring_full_fallbacks;
    RelaxedCounter dma_stall_cycles;
    RelaxedCounter dma_drain_wait_cycles;
    RelaxedCounter dma_rounds_parked;
    RelaxedCounter kfuncs_run;
    RelaxedCounter ufuncs_queued;
    RelaxedCounter lazy_absorbed_bytes;
    RelaxedCounter remap_tasks;
    RelaxedCounter remapped_bytes;
    RelaxedCounter remap_cow_breaks;
    RelaxedCounter fused_ipc_tasks;
    RelaxedCounter fused_ipc_bytes;
    RelaxedCounter dep_probes;
    RelaxedCounter dep_tasks_scanned;
    RelaxedCounter index_entries;
    RelaxedCounter submit_entries;
    RelaxedCounter submit_batches;
    RelaxedCounter serve_cycles;
    RelaxedCounter cross_dep_probes;
    RelaxedCounter cross_dep_settles;
    RelaxedCounter cross_dep_defers;
    RelaxedCounter cross_dep_wait_cycles;
    // Monotonic max, not a counter: single writer (the engine thread), so a
    // relaxed load-compare-store suffices.
    std::atomic<uint64_t> last_kfunc_cycles{0};
  };

  void NoteKfuncTime(Cycles when) {
    if (when > stats_.last_kfunc_cycles.load(std::memory_order_relaxed)) {
      stats_.last_kfunc_cycles.store(when, std::memory_order_relaxed);
    }
  }

  const CopierConfig& config_;
  const hw::TimingModel* timing_;
  ExecContext* ctx_;
  ATCache atcache_;
  // Channel state: a standalone engine owns its pool; a pool-member engine
  // views a disjoint slice of the service's pool. Either way `dma_` is the
  // single access path.
  std::unique_ptr<hw::DmaChannelPool> own_dma_;
  hw::DmaChannelSlice dma_;
  CrossEngineHooks* cross_ = nullptr;
  OverloadSignals* overload_ = nullptr;
  AtomicStats stats_;
  // The pair whose tasks are currently being accepted (handler routing).
  QueuePair* current_pair_ = nullptr;
};

}  // namespace copier::core

#endif  // COPIER_SRC_CORE_ENGINE_H_
