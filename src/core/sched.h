// ShardRunQueue — one scheduler shard's run queue of runnable clients (§4.5.3).
//
// The sharded scheduler (service.h) replaces the global-mutex double scan with
// per-shard queues: each queue orders runnable cgroups by a share-weighted
// vruntime snapshot and, inside each cgroup, runnable clients by a
// total-copy-length snapshot, so a pick is O(log n) under the shard's lock.
//
// Keys are snapshots taken at insert time. A client's counters keep advancing
// while it waits, but every serve pops the client and re-inserts it with fresh
// keys, so staleness is bounded by one wait — the same bounded-staleness bet
// per-CPU CFS runqueues make. A cgroup's queue entry carries the vruntime
// snapshot of its *first* runnable insert and is refreshed once its bucket
// drains.
//
// Locking: all mutating/lookup calls require the shard's lock (`mu`, owned
// here so service code can hold it across pop + serving-CAS sequences);
// ApproxSize is a lock-free gauge for steal-victim selection.
#ifndef COPIER_SRC_CORE_SCHED_H_
#define COPIER_SRC_CORE_SCHED_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <unordered_map>
#include <utility>

#include "src/core/cgroup.h"
#include "src/core/client.h"

namespace copier::core {

class ShardRunQueue {
 public:
  // Held by callers across Insert/Pop/Remove and the serving-CAS that follows
  // a pop (service.cc relies on pop+CAS being atomic under this lock).
  std::mutex mu;

  // Adds `client` to its cgroup's bucket with fresh key snapshots. Requires
  // mu. The caller owns the runnable-flag transition; a client must be
  // inserted at most once (service dedups via Client::runnable).
  void Insert(Client& client);

  // Pops the minimum-total-copy-length client of the minimum-vruntime cgroup
  // (the CFS-analogue pick, §4.5.3). Requires mu. nullptr when empty.
  Client* PopMin();

  // Pops the client with the largest backlog estimate (steal policy: a thief
  // wants the victim's hottest client, not its fairness-preferred one).
  // Linear in queued clients; only run on the idle path. Requires mu.
  Client* PopMaxBacklog();

  // Removes `client` if present (detach path). Requires mu.
  bool Remove(Client& client);

  bool Empty() const { return size_.load(std::memory_order_relaxed) == 0; }
  // Lock-free gauge for steal-victim selection (may lag the truth).
  size_t ApproxSize() const { return size_.load(std::memory_order_relaxed); }

 private:
  struct Bucket {
    // Clients keyed on (total_copy_length snapshot, pointer tiebreak).
    std::set<std::pair<uint64_t, Client*>> clients;
    // The vruntime snapshot this cgroup is filed under in groups_.
    uint64_t group_key = 0;
  };

  void EraseFromBucket(Bucket& bucket, Cgroup* group, Client& client);

  // Runnable cgroups keyed on (vruntime snapshot, pointer tiebreak).
  std::set<std::pair<uint64_t, Cgroup*>> groups_;
  // Holds exactly the cgroups with a queued client: a bucket is erased the
  // moment it drains, so this map (and the PopMaxBacklog scan over it) tracks
  // currently-runnable cgroups, not every cgroup ever seen.
  std::unordered_map<Cgroup*, Bucket> buckets_;
  std::atomic<size_t> size_{0};
};

}  // namespace copier::core

#endif  // COPIER_SRC_CORE_SCHED_H_
