// Open-loop workload generation for the serving harness (DESIGN.md §13).
//
// Everything here is pure, deterministic trace construction — no sockets, no
// apps, no service. A ServeWorkload (seed + shape knobs) expands into a
// time-sorted vector of ServeRequests: Zipfian key popularity, a weighted
// GET/SET size mix, MMPP-style bursty arrivals (a two-state Markov-modulated
// Poisson process: calm and burst phases with exponential inter-arrivals),
// and periodic connection churn. The same seed always yields the same trace,
// which is what makes tail-latency runs replayable and assertable
// (tests/serve_test.cc) instead of flaky.
#ifndef COPIER_SRC_CORE_LOADGEN_H_
#define COPIER_SRC_CORE_LOADGEN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/cycle_clock.h"
#include "src/common/rng.h"

namespace copier::core {

// Zipfian sampler over [0, n) with skew theta (Gray et al., SIGMOD'94 — the
// YCSB generator). theta in (0, 1); 0.99 is the YCSB default. Item 0 is the
// most popular.
class ZipfianSampler {
 public:
  ZipfianSampler(size_t n, double theta);

  size_t Sample(Rng& rng) const;

  size_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(size_t n, double theta);

  size_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

// Two-state MMPP arrival process: a calm phase with the base rate and a burst
// phase with `rate_multiplier` times the base rate. Phase lengths are
// geometric in requests (mean `mean_phase_requests`), inter-arrival gaps are
// exponential within a phase — the standard model for bursty open-loop
// traffic.
struct BurstConfig {
  double rate_multiplier = 8.0;      // burst-phase arrival-rate boost
  double burst_fraction = 0.1;       // probability a phase switch lands in burst
  double mean_phase_requests = 64;   // mean requests per phase (geometric)
};

class ArrivalProcess {
 public:
  // `mean_gap_cycles` is the long-run mean inter-arrival time; the calm/burst
  // phase rates are derived so the mixture keeps that mean.
  ArrivalProcess(double mean_gap_cycles, BurstConfig burst, Rng* rng);

  // Gap to the next arrival, in cycles (>= 1).
  Cycles NextGap();

  bool in_burst() const { return in_burst_; }

 private:
  void SwitchPhase();

  double calm_gap_;   // mean gap while calm
  double burst_gap_;  // mean gap while bursting
  BurstConfig burst_;
  Rng* rng_;
  bool in_burst_ = false;
  uint64_t phase_left_ = 0;  // requests until the next phase switch
};

// One simulated request of the serving workload.
struct ServeRequest {
  uint64_t index = 0;        // trace position (stable across replays)
  Cycles arrival = 0;        // intended open-loop issue time
  uint32_t conn = 0;         // connection (client) the request arrives on
  bool is_get = false;       // GET vs SET (KV requests)
  bool via_proxy = false;    // forwarded through miniproxy instead of the KV path
  uint32_t key = 0;          // Zipfian-sampled key id
  uint32_t value_bytes = 0;  // SET value / proxy body length (GET: expected)
  bool churn_before = false; // recycle (close + reopen) the connection first
};

// Workload shape. Every field feeds the deterministic expansion; two equal
// ServeWorkloads produce byte-identical traces.
struct ServeWorkload {
  uint64_t seed = 1;
  size_t requests = 512;
  size_t connections = 16;
  size_t keys = 256;
  double zipf_theta = 0.99;
  double get_fraction = 0.7;
  // Weighted size mix for SET values / proxy bodies (mixed GET/SET sizes).
  std::vector<uint32_t> value_sizes = {64, 1024, 4096, 16384};
  std::vector<double> value_weights = {4.0, 2.0, 1.0, 0.5};
  double mean_gap_cycles = 20000;  // long-run mean inter-arrival
  BurstConfig burst;
  double proxy_fraction = 0.0;  // fraction of requests taking the proxy path
  size_t churn_every = 0;       // every k-th request recycles its connection (0 = off)
};

// Expands the workload into its arrival-sorted request trace. GET requests
// carry the value size of the *latest preceding SET* of their key (0 before
// any SET), so harnesses know the expected reply size without replaying.
std::vector<ServeRequest> BuildServeTrace(const ServeWorkload& workload);

}  // namespace copier::core

#endif  // COPIER_SRC_CORE_LOADGEN_H_
