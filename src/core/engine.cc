#include "src/core/engine.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "src/common/logging.h"
#include "src/hw/copy_unit.h"

namespace copier::core {
namespace {

// Bounded work per ServeClient call so one client cannot monopolize the
// ingestion loop.
constexpr size_t kMaxIngestPerCall = 1024;
// e-piggyback fuses at most this many adjacent tasks into one round (§4.3).
constexpr size_t kMaxFusedTasks = 8;
// Upper bound on a single subtask: fully contiguous large tasks are still
// split so the piggyback dispatcher can balance AVX and DMA and segment bits
// publish incrementally (copy-use pipelining, §4.1).
constexpr size_t kMaxSubtaskBytes = 16 * kKiB;

// True when `dst_side` of `t` is the segment list of a scatter-gather task.
// Bookkeeping lists (fused IPC, DESIGN.md §12) carry only chunk lengths and
// per-chunk KFUNCs — both sides of the task are its plain contiguous dst/src.
bool SideIsSg(const CopyTask& t, bool dst_side) {
  return t.sg != nullptr && !t.sg->bookkeeping && t.sg->kernel_is_dst == dst_side;
}

// Forward-fuse header splice (DESIGN.md §12): length of the kernel-resident
// prefix spliced in front of the task's user source. 0 for every other task.
size_t SrcPrefixLen(const CopyTask& t) {
  return (t.sg != nullptr && t.sg->prefix != nullptr) ? t.sg->prefix->size() : 0;
}

// True when `dst_side` of `t` is non-contiguous — a scatter-gather segment
// list, or a prefix-spliced source. Such a side must be walked as pieces.
bool SideIsPieced(const CopyTask& t, bool dst_side) {
  return SideIsSg(t, dst_side) || (!dst_side && SrcPrefixLen(t) > 0);
}

// A contiguous piece of one side of a task: `ref` names the memory at
// task-local byte `task_offset`, `length` bytes long. A plain side is one
// piece; the scatter-gather side of a vectored task is one piece per segment.
// All coordination arithmetic (overlap windows, index entries, producer
// lookups) runs over pieces so it never assumes a side is contiguous.
struct RefPiece {
  MemRef ref;
  size_t task_offset = 0;
  size_t length = 0;
};

// Appends the pieces of the chosen side of `t` covering task-local
// [offset, offset + length), clipped to the task's extent.
void CollectPieces(const CopyTask& t, bool dst_side, size_t offset, size_t length,
                   std::vector<RefPiece>* out) {
  if (offset >= t.length) {
    return;
  }
  length = std::min(length, t.length - offset);
  if (!SideIsSg(t, dst_side)) {
    const size_t pfx = dst_side ? 0 : SrcPrefixLen(t);
    if (pfx == 0) {
      const MemRef& side = dst_side ? t.dst : t.src;
      out->push_back({side.Offset(offset), offset, length});
      return;
    }
    // Prefix-spliced source: [0, pfx) reads the kernel prefix bytes, the rest
    // reads the user range shifted back by pfx.
    const size_t end = offset + length;
    if (offset < pfx) {
      const size_t hi = std::min(end, pfx);
      out->push_back({MemRef::Kernel(const_cast<uint8_t*>(t.sg->prefix->data()) + offset),
                      offset, hi - offset});
      offset = hi;
    }
    if (offset < end) {
      out->push_back({t.src.Offset(offset - pfx), offset, end - offset});
    }
    return;
  }
  const size_t end = offset + length;
  size_t seg_base = 0;
  for (const SgSegment& seg : t.sg->segs) {
    const size_t seg_end = seg_base + seg.length;
    if (seg_end > offset) {
      const size_t lo = std::max(offset, seg_base);
      const size_t hi = std::min(end, seg_end);
      if (lo >= hi) {
        break;
      }
      out->push_back({MemRef::Kernel(seg.kernel + (lo - seg_base)), lo, hi - lo});
      if (hi == end) {
        break;
      }
    }
    seg_base = seg_end;
  }
}

// Resolves the memory at task-local byte `offset` of a side; *contig reports
// how many bytes are contiguous from there (clipped at the segment end for a
// scatter-gather side).
MemRef SideRefAt(const CopyTask& t, bool dst_side, size_t offset, size_t* contig) {
  if (!SideIsSg(t, dst_side)) {
    const size_t pfx = dst_side ? 0 : SrcPrefixLen(t);
    if (offset < pfx) {
      *contig = pfx - offset;
      return MemRef::Kernel(const_cast<uint8_t*>(t.sg->prefix->data()) + offset);
    }
    *contig = t.length - offset;
    return (dst_side ? t.dst : t.src).Offset(offset - pfx);
  }
  size_t seg_base = 0;
  for (const SgSegment& seg : t.sg->segs) {
    const size_t seg_end = seg_base + seg.length;
    if (offset < seg_end) {
      *contig = seg_end - offset;
      return MemRef::Kernel(seg.kernel + (offset - seg_base));
    }
    seg_base = seg_end;
  }
  COPIER_CHECK(false) << "task-local offset " << offset << " past scatter-gather extent";
  return {};
}

// True when any piece of `a_dst` of `a` overlaps any piece of `b_dst` of `b`
// (the piece-aware generalization of RefsOverlap for whole task sides).
bool SidesOverlap(const CopyTask& a, bool a_dst, const CopyTask& b, bool b_dst) {
  if (!SideIsPieced(a, a_dst) && !SideIsPieced(b, b_dst)) {
    return RefsOverlap(a_dst ? a.dst : a.src, a.length, b_dst ? b.dst : b.src, b.length);
  }
  std::vector<RefPiece> ap;
  std::vector<RefPiece> bp;
  CollectPieces(a, a_dst, 0, a.length, &ap);
  CollectPieces(b, b_dst, 0, b.length, &bp);
  for (const RefPiece& pa : ap) {
    for (const RefPiece& pb : bp) {
      if (RefsOverlap(pa.ref, pa.length, pb.ref, pb.length)) {
        return true;
      }
    }
  }
  return false;
}

// Depth of cross-engine settles on this thread (DESIGN.md §10). While > 0,
// force-landed tasks deliver their completion handlers in per-client task
// order — a landing that overtakes an unfired predecessor stays done-but-
// unfired until the predecessor's own completion cascades it — so KFUNC
// firing order is identical for every engine-pool size.
thread_local int t_cross_settle = 0;
thread_local bool t_fire_cascade = false;

}  // namespace

bool RefsOverlap(const MemRef& a, size_t alen, const MemRef& b, size_t blen) {
  if (a.domain() != b.domain()) {
    return false;
  }
  return RangesOverlap(a.start(), alen, b.start(), blen);
}

Engine::Engine(const CopierConfig& config, const hw::TimingModel* timing, ExecContext* ctx)
    : config_(config),
      timing_(timing),
      ctx_(ctx),
      own_dma_(std::make_unique<hw::DmaChannelPool>(timing, config.dma_channel_count,
                                                    config.dma_ring_slots)),
      dma_(own_dma_.get()) {}

Engine::Engine(const CopierConfig& config, const hw::TimingModel* timing, ExecContext* ctx,
               hw::DmaChannelSlice dma)
    : config_(config), timing_(timing), ctx_(ctx), dma_(dma) {}

Engine::Stats Engine::stats() const {
  Stats s;
  s.tasks_ingested = stats_.tasks_ingested;
  s.tasks_completed = stats_.tasks_completed;
  s.tasks_dropped = stats_.tasks_dropped;
  s.tasks_aborted = stats_.tasks_aborted;
  s.barriers_processed = stats_.barriers_processed;
  s.sync_promotions = stats_.sync_promotions;
  s.bytes_copied = stats_.bytes_copied;
  s.bytes_absorbed = stats_.bytes_absorbed;
  s.avx_bytes = stats_.avx_bytes;
  s.dma_bytes_submitted = stats_.dma_bytes_submitted;
  s.dma_bytes_completed = stats_.dma_bytes_completed;
  s.dma_batches_submitted = stats_.dma_batches_submitted;
  s.dma_batches_completed = stats_.dma_batches_completed;
  s.dma_ring_full_fallbacks = stats_.dma_ring_full_fallbacks;
  s.dma_stall_cycles = stats_.dma_stall_cycles;
  s.dma_drain_wait_cycles = stats_.dma_drain_wait_cycles;
  s.dma_rounds_parked = stats_.dma_rounds_parked;
  s.kfuncs_run = stats_.kfuncs_run;
  s.ufuncs_queued = stats_.ufuncs_queued;
  s.lazy_absorbed_bytes = stats_.lazy_absorbed_bytes;
  s.remap_tasks = stats_.remap_tasks;
  s.remapped_bytes = stats_.remapped_bytes;
  s.remap_cow_breaks = stats_.remap_cow_breaks;
  s.fused_ipc_tasks = stats_.fused_ipc_tasks;
  s.fused_ipc_bytes = stats_.fused_ipc_bytes;
  s.last_kfunc_cycles = stats_.last_kfunc_cycles.load(std::memory_order_relaxed);
  s.dep_probes = stats_.dep_probes;
  s.dep_tasks_scanned = stats_.dep_tasks_scanned;
  s.index_entries = stats_.index_entries;
  s.submit_entries = stats_.submit_entries;
  s.submit_batches = stats_.submit_batches;
  s.serve_cycles = stats_.serve_cycles;
  s.cross_dep_probes = stats_.cross_dep_probes;
  s.cross_dep_settles = stats_.cross_dep_settles;
  s.cross_dep_defers = stats_.cross_dep_defers;
  s.cross_dep_wait_cycles = stats_.cross_dep_wait_cycles;
  // notify_calls is a service-side counter (the doorbell fires before any
  // engine sees the work); CopierService::TotalStats fills it in.
  return s;
}

// ---------------------------------------------------------------------------
// Ingestion (§4.2.1)
// ---------------------------------------------------------------------------

Status Engine::ValidateTask(Client& client, const CopyTask& task, bool kernel_mode) const {
  if (task.length == 0) {
    return InvalidArgument("zero-length copy task");
  }
  if (task.sg != nullptr) {
    // Scatter-gather tasks name raw kernel buffers; only kernel submitters
    // (which own the buffer lifecycle) may build them.
    if (!kernel_mode) {
      return PermissionDenied("u-mode task carries a scatter-gather list");
    }
    if (task.sg->segs.empty() || task.sg->total_length() != task.length) {
      return InvalidArgument("scatter-gather segments do not sum to task length");
    }
    if (task.sg->prefix != nullptr &&
        (!task.sg->bookkeeping || task.sg->prefix->size() >= task.length)) {
      // A source prefix rides bookkeeping (fused-forward) lists only, and the
      // task must carry at least one user payload byte past it.
      return InvalidArgument("malformed source-prefix splice");
    }
  }
  if (!kernel_mode) {
    // Security checks: a u-mode task may only name its own address space —
    // kernel pointers or foreign spaces are rejected and the process is
    // signalled, as a bad synchronous copy would have faulted (§4.5.4).
    if (!task.dst.is_user() || !task.src.is_user()) {
      return PermissionDenied("u-mode task names kernel memory");
    }
    if (task.dst.space != client.space() || task.src.space != client.space()) {
      return PermissionDenied("u-mode task names a foreign address space");
    }
    if (task.dst.va == 0 || task.src.va == 0 || task.dst.va + task.length < task.dst.va ||
        task.src.va + task.length < task.src.va) {
      return PermissionDenied("address range out of bounds");
    }
  }
  return OkStatus();
}

void Engine::AcceptTask(Client& client, QueuePair& pair, CopyTask task, bool kernel_mode) {
  const Status valid = ValidateTask(client, task, kernel_mode);
  task.id = client.next_task_id++;
  // Virtual-time alignment: the Copier thread cannot have observed the task
  // before the client submitted it (the service polls; idle time is skipped).
  if (ctx_ != nullptr && task.submit_time > ctx_->now()) {
    ctx_->WaitUntil(task.submit_time);
  }

  auto pending = std::make_unique<PendingTask>();
  pending->task = std::move(task);
  pending->kernel_mode = kernel_mode;
  pending->order = client.next_order++;
  pending->origin = &pair;
  // Execution progress is always tracked in a private per-task descriptor:
  // client descriptors may be shared by several tasks at arbitrary offsets
  // (stream framing), so their segments cannot distinguish which task's bytes
  // have landed. The client-visible descriptor is *mirrored* from the private
  // one in MarkProgress. (A client segment straddling two tasks is set when
  // either task finishes its bytes in it — adjacent recv tasks execute
  // back-to-back in FIFO order, so the early-set window is confined to a
  // partially-served batch; see EXPERIMENTS.md "known deviations".)
  const size_t seg_size = pending->task.descriptor != nullptr
                              ? pending->task.descriptor->segment_size()
                              : config_.default_segment_size;
  pending->internal_progress = std::make_unique<Descriptor>(pending->task.length, seg_size);
  pending->progress = pending->internal_progress.get();
  pending->progress_offset = 0;
  if (pending->task.sg != nullptr && valid.ok()) {
    const auto& segs = pending->task.sg->segs;
    pending->sg_remaining.resize(segs.size());
    for (size_t i = 0; i < segs.size(); ++i) {
      pending->sg_remaining[i] = segs[i].length;
    }
    pending->sg_fired.assign(segs.size(), false);
    if (pending->task.sg->bookkeeping) {
      ++stats_.fused_ipc_tasks;
    }
  }
  ++stats_.submit_entries;
  if (pending->task.sg != nullptr) {
    ++stats_.submit_batches;
  }

  if (!valid.ok()) {
    // A submitter-stamped sequence dies with the task: retire it so it
    // cannot hold back tombstone pruning forever.
    if (cross_ != nullptr) {
      cross_->RetireGlobalSeq(pending->task.gseq);
    }
    DropTask(client, *pending, valid);
    // Keep the dropped task out of the pending list entirely.
    ++stats_.tasks_ingested;
    return;
  }

  if (getenv("COPIER_TRACE") != nullptr) {
    const PendingTask& pt = *pending;
    std::fprintf(stderr,
                 "[accept] task=%llu order=%llu k=%d lazy=%d dst=%llx src=%llx len=%zu\n",
                 (unsigned long long)pt.task.id, (unsigned long long)pt.order,
                 pt.kernel_mode, pt.task.type == TaskType::kLazy,
                 (unsigned long long)pt.task.dst.start(),
                 (unsigned long long)pt.task.src.start(), pt.task.length);
  }
  // Cross-engine ordering (DESIGN.md §10): give the task its place in the
  // service-global submission sequence — the submitter's stamp when present,
  // else the next sequence number at ingestion — and register shared-visible
  // ranges in the service ledger so foreign engines can order against them.
  if (cross_ != nullptr) {
    pending->gseq = pending->task.gseq != 0 ? pending->task.gseq : cross_->NextGlobalSeq();
    pending->shared_visible = TaskIsSharedVisible(client, *pending);
  } else {
    // Standalone engine: per-client order doubles as the sequence (monotone,
    // and only ever compared against this client's own entries).
    pending->gseq = pending->task.gseq != 0 ? pending->task.gseq : pending->order;
  }
  PendingTask* accepted = pending.get();
  client.pending.push_back(std::move(pending));
  client.pending_count.store(client.pending.size(), std::memory_order_release);
  if (config_.enable_range_index) {
    IndexInsert(client, *accepted);
  }
  if (cross_ != nullptr) {
    if (accepted->shared_visible) {
      cross_->RegisterShared(client, *accepted);
    } else {
      // Private tasks never probe the ledger; their sequence stops being
      // outstanding the moment that is decided.
      cross_->RetireGlobalSeq(accepted->gseq);
    }
  }
  ++stats_.tasks_ingested;
}

bool Engine::TaskIsSharedVisible(Client& client, const PendingTask& task) const {
  std::vector<RefPiece> pieces;
  CollectPieces(task.task, /*dst_side=*/true, 0, task.task.length, &pieces);
  CollectPieces(task.task, /*dst_side=*/false, 0, task.task.length, &pieces);
  simos::AddressSpace* own = client.space();
  for (const RefPiece& piece : pieces) {
    if (!piece.ref.is_user() || piece.ref.space != own) {
      return true;  // kernel host memory or a foreign address space
    }
    if (cross_->DomainShared(piece.ref.domain(), client)) {
      return true;  // own space, but a foreign client has ranges here
    }
  }
  return false;
}

void Engine::IngestPair(Client& client, QueuePair& pair) {
  current_pair_ = &pair;
  for (size_t steps = 0; steps < kMaxIngestPerCall; ++steps) {
    if (pair.kernel_bracket_open) {
      // Inside a syscall bracket: consume k entries until the exit barrier.
      // u-mode entries beyond the bracket bound wait (k-mode prioritized in
      // the concurrent-submission corner, §4.2.1).
      auto entry = pair.kernel.copy_q.TryPop();
      if (!entry.has_value()) {
        break;  // kernel still mid-syscall; resume on a later poll
      }
      if (entry->kind == CopyQueueEntry::Kind::kBarrierExit) {
        pair.kernel_bracket_open = false;
        ++stats_.barriers_processed;
        ChargeCtx(ctx_, timing_->barrier_process_cycles);
        continue;
      }
      if (entry->kind == CopyQueueEntry::Kind::kBarrierEnter) {
        pair.bracket_user_bound = entry->user_queue_position;  // re-bracket
        ++stats_.barriers_processed;
        continue;
      }
      AcceptTask(client, pair, std::move(entry->task), /*kernel_mode=*/true);
      continue;
    }

    const CopyQueueEntry* k_head = pair.kernel.copy_q.Peek();
    if (k_head != nullptr && k_head->kind == CopyQueueEntry::Kind::kBarrierEnter) {
      // The k batch after this barrier follows all u entries below the
      // recorded position: drain those first.
      if (pair.user_ingested < k_head->user_queue_position) {
        auto u = pair.user.copy_q.TryPop();
        if (!u.has_value()) {
          break;  // the u producer acquired a slot but has not published yet
        }
        ++pair.user_ingested;
        AcceptTask(client, pair, std::move(u->task), /*kernel_mode=*/false);
        continue;
      }
      pair.bracket_user_bound = k_head->user_queue_position;
      pair.kernel_bracket_open = true;
      pair.kernel.copy_q.TryPop();
      ++stats_.barriers_processed;
      ChargeCtx(ctx_, timing_->barrier_process_cycles);
      continue;
    }
    if (k_head != nullptr) {
      // Un-bracketed k entry (standalone kernel clients submit without
      // barriers — there is no paired u queue activity to order against).
      auto entry = pair.kernel.copy_q.TryPop();
      if (entry->kind == CopyQueueEntry::Kind::kCopy) {
        AcceptTask(client, pair, std::move(entry->task), /*kernel_mode=*/true);
      }
      continue;
    }

    auto u = pair.user.copy_q.TryPop();
    if (!u.has_value()) {
      break;
    }
    ++pair.user_ingested;
    AcceptTask(client, pair, std::move(u->task), /*kernel_mode=*/false);
  }
  current_pair_ = nullptr;
}

void Engine::IngestClient(Client& client) {
  for (size_t i = 0; i < client.pair_count(); ++i) {
    IngestPair(client, client.pair(static_cast<int>(i)));
  }
}

// ---------------------------------------------------------------------------
// Sync Tasks: promotion and abort (§4.1, §4.4)
// ---------------------------------------------------------------------------

void Engine::HandleSyncTask(Client& client, const SyncTask& sync) {
  // A Sync Task orders after every Copy Task its submitter queued before it:
  // the copy-queue pushes happened-before the sync-queue push, so draining the
  // copy queues here makes those tasks visible to the matching below. Without
  // this, an abort can be observed while the consumer that absorbs the
  // protected range (e.g. the send following a lazy reply copy) is still
  // un-ingested; the dependent probe then misses it and discards a mediator
  // the consumer later resolves through.
  uint64_t ingest_progress;
  do {
    ingest_progress = stats_.tasks_ingested + stats_.barriers_processed;
    IngestClient(client);
  } while (stats_.tasks_ingested + stats_.barriers_processed != ingest_progress);
  if (sync.kind == SyncTask::Kind::kAbort) {
    // Explicitly discard still-queued Copy Tasks writing the range. The
    // discard is deferred while a later pending task still reads the would-be
    // destination (its absorption chain runs through this task); handlers
    // still run at discard time (source buffers must be reclaimed). Copier
    // never discards implicitly.
    const auto request_abort = [&client](PendingTask& task) {
      if (!task.abort_requested) {
        task.abort_requested = true;
        ++client.pending_abort_requests;
      }
    };
    ++stats_.dep_probes;
    if (config_.enable_range_index) {
      ChargeCtx(ctx_, timing_->absorption_match_cycles);
      stats_.dep_tasks_scanned += client.range_index.ForEachOverlap(
          RangeIndex::Side::kDst, sync.addr.domain(), sync.addr.start(), sync.length,
          [&](const RangeIndex::Entry& entry) {
            request_abort(*entry.task);
            return true;
          });
    } else {
      for (auto& pending : client.pending) {
        PendingTask& task = *pending;
        if (task.Done()) {
          continue;
        }
        // Abort matching is the same per-candidate work as a promotion scan;
        // it must not be free in virtual time.
        ChargeCtx(ctx_, timing_->absorption_match_cycles);
        ++stats_.dep_tasks_scanned;
        std::vector<RefPiece> pieces;
        CollectPieces(task.task, /*dst_side=*/true, 0, task.task.length, &pieces);
        for (const RefPiece& p : pieces) {
          if (RefsOverlap(p.ref, p.length, sync.addr, sync.length)) {
            request_abort(task);
            break;
          }
        }
      }
    }
    ApplyDeferredAborts(client);
    return;
  }
  ++stats_.sync_promotions;
  PromoteRange(client, sync.addr, sync.length);
}

void Engine::ProcessSyncQueues(Client& client) {
  for (size_t i = 0; i < client.pair_count(); ++i) {
    QueuePair& pair = client.pair(static_cast<int>(i));
    // k-mode Sync Queue first, then u-mode (§4.2.2).
    while (auto sync = pair.kernel.sync_q.TryPop()) {
      HandleSyncTask(client, *sync);
    }
    while (auto sync = pair.user.sync_q.TryPop()) {
      HandleSyncTask(client, *sync);
    }
  }
}

void Engine::PromoteRange(Client& client, const MemRef& addr, size_t length) {
  // Promote every pending task producing bytes of [addr, addr+length),
  // oldest first so newer writers land last (ResolveDependencies additionally
  // orders each one's prerequisites).
  ++stats_.dep_probes;
  if (config_.enable_range_index) {
    struct Hit {
      PendingTask* task;
      uint64_t order;
      uint64_t start;
      uint64_t end;
      size_t task_offset;
    };
    std::vector<Hit> hits;
    ChargeCtx(ctx_, timing_->absorption_match_cycles);
    stats_.dep_tasks_scanned += client.range_index.ForEachOverlap(
        RangeIndex::Side::kDst, addr.domain(), addr.start(), length,
        [&](const RangeIndex::Entry& entry) {
          hits.push_back({entry.task, entry.order, entry.start, entry.start + entry.length,
                          entry.task_offset});
          return true;
        });
    std::sort(hits.begin(), hits.end(),
              [](const Hit& a, const Hit& b) { return a.order < b.order; });
    for (const Hit& hit : hits) {
      PendingTask& task = *hit.task;
      if (task.Done()) {
        continue;  // executed as a dependency of an older promoted task
      }
      const uint64_t ovl_start = std::max(hit.start, addr.start());
      const uint64_t ovl_end = std::min(hit.end, addr.start() + length);
      task.promoted = true;
      const Status status =
          ExecuteTaskRange(client, task, ovl_start - hit.start + hit.task_offset,
                           ovl_end - ovl_start, /*depth=*/0, /*must_land=*/true);
      if (!status.ok() && status.code() != StatusCode::kUnavailable) {
        // kUnavailable: a cross-engine settle bounced off a held foreign
        // client. The promotion stays incomplete; the waiter's pump retries.
        DropTask(client, task, status);
      }
    }
    RetireDone(client);
    return;
  }
  for (auto it = client.pending.begin(); it != client.pending.end(); ++it) {
    PendingTask& task = **it;
    if (task.Done()) {
      continue;
    }
    ChargeCtx(ctx_, timing_->absorption_match_cycles);
    ++stats_.dep_tasks_scanned;
    std::vector<RefPiece> pieces;
    CollectPieces(task.task, /*dst_side=*/true, 0, task.task.length, &pieces);
    for (const RefPiece& p : pieces) {
      if (task.Done()) {
        break;
      }
      if (p.ref.domain() != addr.domain()) {
        continue;
      }
      const uint64_t ovl_start = std::max(p.ref.start(), addr.start());
      const uint64_t ovl_end = std::min(p.ref.start() + p.length, addr.start() + length);
      if (ovl_start >= ovl_end) {
        continue;
      }
      task.promoted = true;
      const Status status =
          ExecuteTaskRange(client, task, ovl_start - p.ref.start() + p.task_offset,
                           ovl_end - ovl_start, /*depth=*/0, /*must_land=*/true);
      if (!status.ok() && status.code() != StatusCode::kUnavailable) {
        DropTask(client, task, status);
        break;
      }
    }
  }
  RetireDone(client);
}

// ---------------------------------------------------------------------------
// Dependency resolution (§4.2.2)
// ---------------------------------------------------------------------------

Status Engine::ResolveDependencies(Client& client, PendingTask& task, size_t offset,
                                   size_t length, int depth) {
  if (depth >= config_.max_dependency_depth) {
    return FailedPrecondition("dependency chain too deep");
  }
  // Probe windows: the task's own dst and src over [offset, offset+length),
  // piece by piece (a scatter-gather side probes once per covered segment).
  std::vector<RefPiece> dst_windows;
  std::vector<RefPiece> src_windows;
  CollectPieces(task.task, /*dst_side=*/true, offset, length, &dst_windows);
  if (!config_.enable_absorption) {
    CollectPieces(task.task, /*dst_side=*/false, offset, length, &src_windows);
  }
  if (config_.enable_range_index) {
    // Enumerate only the overlapping entries, then replay them in submission
    // order (oldest first) with WAW before WAR before RAW per conflicting
    // task — the order the linear scan visits them in.
    struct Conflict {
      PendingTask* task;
      uint64_t order;
      uint8_t kind;    // 0 = WAW, 1 = WAR, 2 = RAW
      uint64_t start;  // overlap, in the conflicting task's domain addresses
      uint64_t end;
      uint64_t entry_start;      // the conflicting entry's own start address
      size_t entry_task_offset;  // task-local byte at entry_start
    };
    std::vector<Conflict> conflicts;
    const auto probe = [&](RangeIndex::Side side, const RefPiece& w, uint8_t kind) {
      ++stats_.dep_probes;
      ChargeCtx(ctx_, timing_->absorption_match_cycles);
      stats_.dep_tasks_scanned += client.range_index.ForEachOverlap(
          side, w.ref.domain(), w.ref.start(), w.length, [&](const RangeIndex::Entry& entry) {
            if (entry.order < task.order) {
              const uint64_t start = std::max(entry.start, w.ref.start());
              const uint64_t end =
                  std::min(entry.start + entry.length, w.ref.start() + w.length);
              conflicts.push_back(
                  {entry.task, entry.order, kind, start, end, entry.start, entry.task_offset});
            }
            return true;
          });
    };
    for (const RefPiece& w : dst_windows) {
      probe(RangeIndex::Side::kDst, w, 0);  // WAW: earlier writes of these bytes
      probe(RangeIndex::Side::kSrc, w, 1);  // WAR: earlier reads this overwrites
    }
    for (const RefPiece& w : src_windows) {
      probe(RangeIndex::Side::kDst, w, 2);  // RAW: producers must land first
    }
    std::sort(conflicts.begin(), conflicts.end(), [](const Conflict& a, const Conflict& b) {
      return a.order != b.order ? a.order < b.order : a.kind < b.kind;
    });
    for (const Conflict& c : conflicts) {
      // The entry carries its own (start, task_offset), so the overlap maps to
      // the conflicting task's local bytes without assuming its side is
      // contiguous. ExecuteTaskRange skips tasks an earlier conflict already
      // completed.
      COPIER_RETURN_IF_ERROR(ExecuteTaskRange(client, *c.task,
                                              c.start - c.entry_start + c.entry_task_offset,
                                              c.end - c.start, depth + 1,
                                              /*must_land=*/true));
    }
    return OkStatus();
  }
  // Oldest-first so earlier conflicting writes land in submission order.
  ++stats_.dep_probes;
  for (auto& other_ptr : client.pending) {
    PendingTask& other = *other_ptr;
    if (other.order >= task.order || other.Done()) {
      continue;
    }
    ChargeCtx(ctx_, timing_->absorption_match_cycles);
    ++stats_.dep_tasks_scanned;
    std::vector<RefPiece> other_dst;
    std::vector<RefPiece> other_src;
    CollectPieces(other.task, /*dst_side=*/true, 0, other.task.length, &other_dst);
    CollectPieces(other.task, /*dst_side=*/false, 0, other.task.length, &other_src);
    // Executes the other task's local range for every overlap between its
    // side pieces and this task's windows.
    const auto run_overlaps = [&](const std::vector<RefPiece>& opieces,
                                  const std::vector<RefPiece>& windows) -> Status {
      for (const RefPiece& w : windows) {
        for (const RefPiece& op : opieces) {
          if (op.ref.domain() != w.ref.domain()) {
            continue;
          }
          const uint64_t start = std::max(op.ref.start(), w.ref.start());
          const uint64_t end = std::min(op.ref.start() + op.length, w.ref.start() + w.length);
          if (start >= end) {
            continue;
          }
          COPIER_RETURN_IF_ERROR(ExecuteTaskRange(client, other,
                                                  start - op.ref.start() + op.task_offset,
                                                  end - start, depth + 1,
                                                  /*must_land=*/true));
        }
      }
      return OkStatus();
    };
    // WAW: an earlier task writes bytes this range is about to write.
    COPIER_RETURN_IF_ERROR(run_overlaps(other_dst, dst_windows));
    // WAR: an earlier task still needs to *read* bytes this range overwrites.
    COPIER_RETURN_IF_ERROR(run_overlaps(other_src, dst_windows));
    // RAW: with absorption enabled, ResolveSources reads through the producer
    // (layered absorption); otherwise the producer must execute first.
    if (!config_.enable_absorption) {
      COPIER_RETURN_IF_ERROR(run_overlaps(other_dst, src_windows));
    }
  }
  return OkStatus();
}

PendingTask* Engine::FindProducer(Client& client, const PendingTask& task, const MemRef& ref,
                                  size_t length, size_t* overlap_offset,
                                  size_t* overlap_length, size_t* producer_local) {
  // Latest-order earlier task whose destination contains ref's FIRST byte.
  // If none contains it, overlap_offset reports where the nearest producer
  // region begins (bounding the plain prefix) and nullptr is returned with
  // overlap_length/producer_local untouched. Candidates are per contiguous
  // destination *piece*, so a scatter-gather producer contributes one
  // candidate per segment and producer_local maps through the segment list.
  const uint64_t first_byte = ref.start();
  struct Cand {
    PendingTask* task;
    uint64_t order;
    uint64_t start;
    uint64_t end;
    size_t task_offset;  // task-local byte of the candidate piece's start
  };
  std::vector<Cand> cands;
  ++stats_.dep_probes;
  if (config_.enable_range_index) {
    // One overlap enumeration yields the stabbing answer (latest writer
    // containing the first byte), the successor bound for the plain prefix,
    // and the newer-writer clip — the linear version needed a second full
    // scan for the clip. Index entries only cover live (non-Done) tasks; a
    // completed producer's bytes have landed, so the plain path reading the
    // actual source memory is equivalent (and dead-write suppression keeps
    // those bytes WAW-consistent).
    ChargeCtx(ctx_, timing_->absorption_match_cycles);
    stats_.dep_tasks_scanned += client.range_index.ForEachOverlap(
        RangeIndex::Side::kDst, ref.domain(), first_byte, length,
        [&](const RangeIndex::Entry& entry) {
          if (entry.order < task.order) {
            cands.push_back({entry.task, entry.order, entry.start,
                             entry.start + entry.length, entry.task_offset});
          }
          return true;
        });
  } else {
    for (auto it = client.pending.rbegin(); it != client.pending.rend(); ++it) {
      PendingTask& other = **it;
      if (other.order >= task.order || other.aborted) {
        continue;
      }
      ChargeCtx(ctx_, timing_->absorption_match_cycles);
      ++stats_.dep_tasks_scanned;
      std::vector<RefPiece> dpieces;
      CollectPieces(other.task, /*dst_side=*/true, 0, other.task.length, &dpieces);
      for (const RefPiece& p : dpieces) {
        if (p.ref.domain() != ref.domain()) {
          continue;
        }
        const uint64_t p_start = p.ref.start();
        const uint64_t p_end = p_start + p.length;
        if (p_start < first_byte + length && p_end > first_byte) {
          cands.push_back({&other, other.order, p_start, p_end, p.task_offset});
        }
      }
    }
  }
  const Cand* best = nullptr;
  uint64_t nearest_start = UINT64_MAX;
  for (const Cand& cand : cands) {
    if (first_byte >= cand.start && first_byte < cand.end) {
      if (best == nullptr || cand.order > best->order) {
        best = &cand;
      }
    } else if (cand.start > first_byte) {
      nearest_start = std::min(nearest_start, cand.start);
    }
  }
  if (best == nullptr) {
    *overlap_offset = nearest_start == UINT64_MAX
                          ? length
                          : static_cast<size_t>(nearest_start - first_byte);
    return nullptr;
  }
  uint64_t end = std::min(best->end, first_byte + length);
  // Clip at the start of any LATER-ordered producer piece inside the overlap:
  // those bytes belong to the newer writer, which the next iteration picks up.
  for (const Cand& cand : cands) {
    if (cand.order > best->order && cand.start > first_byte && cand.start < end) {
      end = cand.start;
    }
  }
  *overlap_offset = 0;
  *overlap_length = end - first_byte;
  *producer_local = static_cast<size_t>(first_byte - best->start) + best->task_offset;
  return best->task;
}

// ---------------------------------------------------------------------------
// Layered copy absorption (§4.4)
// ---------------------------------------------------------------------------

void Engine::ResolveSources(Client& client, PendingTask& task, size_t src_offset, size_t length,
                            int depth, std::vector<SourcePiece>* out) {
  // Per contiguous piece of the task's source side: a scatter-gather source
  // resolves segment by segment, so absorption chains can pass *through* a
  // vectored producer exactly as through a plain one.
  std::vector<RefPiece> pieces;
  CollectPieces(task.task, /*dst_side=*/false, src_offset, length, &pieces);
  const bool absorb = config_.enable_absorption && depth < config_.max_dependency_depth;
  for (const RefPiece& p : pieces) {
    if (!absorb) {
      out->push_back({p.ref, p.length, false});
    } else {
      ResolveSourcesContig(client, task, p.ref, p.length, depth, out);
    }
  }
}

void Engine::ResolveSourcesContig(Client& client, PendingTask& task, const MemRef& src,
                                  size_t length, int depth, std::vector<SourcePiece>* out) {
  size_t pos = 0;
  while (pos < length) {
    size_t ovl_off = 0;
    size_t ovl_len = 0;
    size_t producer_base = 0;
    // FindProducer charges the probe (per index lookup, or per candidate in
    // the linear baseline).
    PendingTask* producer = FindProducer(client, task, src.Offset(pos), length - pos, &ovl_off,
                                         &ovl_len, &producer_base);
    if (producer == nullptr) {
      // Plain piece up to the nearest producer-covered byte (ovl_off).
      const size_t plain = std::min(length - pos, ovl_off);
      out->push_back({src.Offset(pos), plain, false});
      pos += plain;
      continue;
    }
    // Walk the overlapping piece segment by segment of the *producer*'s
    // progress space: marked segments may hold client-modified data, so the
    // intermediate buffer (this task's src) is authoritative; unmarked
    // segments cannot have been touched (the client would have csync'd
    // first), so read through to the producer's own source (Fig. 8-b).
    size_t done = 0;
    while (done < ovl_len) {
      const size_t producer_local = producer_base + done;
      const size_t seg_size = producer->progress->segment_size();
      const size_t seg_space_off = producer->progress_offset + producer_local;
      const size_t seg_index = producer->progress->SegmentOf(seg_space_off);
      const size_t seg_end_space = (seg_index + 1) * seg_size;
      size_t chunk = std::min(ovl_len - done, seg_end_space - seg_space_off);
      // Clamp to the producer's own extent.
      chunk = std::min(chunk, producer->task.length - producer_local);
      if (producer->progress->SegmentReady(seg_index)) {
        out->push_back({src.Offset(pos + done), chunk, false});
      } else {
        stats_.bytes_absorbed += chunk;
        if (producer->task.type == TaskType::kLazy) {
          stats_.lazy_absorbed_bytes += chunk;
        }
        ResolveSources(client, *producer, producer_local, chunk, depth + 1, out);
      }
      done += chunk;
    }
    pos += ovl_len;
  }
}

// ---------------------------------------------------------------------------
// Proactive fault handling and subtask construction (§4.3, §4.5.4)
// ---------------------------------------------------------------------------

StatusOr<uint8_t*> Engine::ResolveUserPage(simos::AddressSpace* space, uint64_t va,
                                           bool for_write, bool* cached) {
  if (config_.enable_atcache) {
    const ATCache::Entry* entry = atcache_.Lookup(space->asid(), va);
    if (entry != nullptr && (!for_write || entry->writable)) {
      if (cached != nullptr) {
        *cached = true;
      }
      return entry->host_page + PageOffset(va);
    }
  }
  // Proactive fault handling: translate now; the translation itself faults
  // pages in (on-demand paging) and breaks CoW in the Copier context instead
  // of waiting for a hardware fault mid-copy. The explicit-translation cost
  // (needed only when the subtask goes to DMA) is charged by ExecuteRound.
  auto pfn_or = for_write ? space->TranslateWrite(va, ctx_) : space->TranslateRead(va, ctx_);
  if (!pfn_or.ok()) {
    return pfn_or.status();
  }
  if (cached != nullptr) {
    *cached = false;
  }
  uint8_t* host_page = space->phys()->FrameData(*pfn_or);
  if (config_.enable_atcache) {
    atcache_.Insert(space->asid(), va, host_page, for_write);
  }
  return host_page + PageOffset(va);
}

// Resolves the longest host-contiguous run starting at `ref`, at most
// `max_length` bytes. Subtask boundaries fall exactly where physical
// contiguity breaks (Fig. 7-b). Kernel refs are contiguous by construction.
StatusOr<Engine::HostRun> Engine::ResolveHostRun(const MemRef& ref, size_t max_length,
                                                 bool for_write, HostRunExtra* extra) {
  if (!ref.is_user()) {
    return HostRun{ref.host, max_length};
  }
  bool cached = false;
  auto first_or = ResolveUserPage(ref.space, ref.va, for_write, &cached);
  if (!first_or.ok()) {
    return first_or.status();
  }
  if (extra != nullptr) {
    (cached ? extra->pages_cached : extra->pages_uncached) += 1;
  }
  HostRun run{*first_or, std::min(max_length, kPageSize - PageOffset(ref.va))};
  uint8_t* expected = *first_or - PageOffset(ref.va) + kPageSize;
  uint64_t next_va = PageBase(ref.va) + kPageSize;
  while (run.length < max_length) {
    auto next_or = ResolveUserPage(ref.space, next_va, for_write, &cached);
    if (!next_or.ok()) {
      return next_or.status();  // every byte of the range must be accessible
    }
    if (*next_or != expected) {
      break;  // physical discontinuity
    }
    if (extra != nullptr) {
      (cached ? extra->pages_cached : extra->pages_uncached) += 1;
    }
    run.length += std::min(kPageSize, max_length - run.length);
    expected += kPageSize;
    next_va += kPageSize;
  }
  return run;
}

Status Engine::BuildSubtasks(Client& client, PendingTask& task, size_t offset,
                             const std::vector<SourcePiece>& sources,
                             std::vector<Subtask>* out) {
  size_t dst_cursor = offset;
  for (const SourcePiece& piece : sources) {
    size_t piece_pos = 0;
    while (piece_pos < piece.length) {
      // Resolve at most one subtask's worth per iteration so pages are
      // translated exactly once each (no redundant walks). A scatter-gather
      // destination additionally bounds the subtask at its segment edge.
      size_t dst_contig = 0;
      const MemRef dref = SideRefAt(task.task, /*dst_side=*/true, dst_cursor, &dst_contig);
      const size_t remaining =
          std::min({piece.length - piece_pos, kMaxSubtaskBytes, dst_contig});
      HostRunExtra extra;
      auto dst_or = ResolveHostRun(dref, remaining, /*for_write=*/true, &extra);
      if (!dst_or.ok()) {
        return dst_or.status();
      }
      auto src_or = ResolveHostRun(piece.ref.Offset(piece_pos), dst_or->length,
                                   /*for_write=*/false, &extra);
      if (!src_or.ok()) {
        return src_or.status();
      }

      Subtask st;
      st.length = std::min({dst_or->length, src_or->length, kMaxSubtaskBytes});
      st.dst = dst_or->host;
      st.src = src_or->host;
      st.owner = &task;
      st.task_offset = dst_cursor;
      st.dma_eligible = config_.use_dma && st.length >= timing_->dma_min_subtask_bytes;
      st.pages_cached = extra.pages_cached;
      st.pages_uncached = extra.pages_uncached;
      if (getenv("COPIER_TRACE") != nullptr) {
        std::fprintf(stderr, "[st] task=%llu off=%zu len=%zu dst=%p src=%p\n",
                     (unsigned long long)task.task.id, st.task_offset, st.length,
                     (void*)st.dst, (void*)st.src);
      }
      out->push_back(st);
      piece_pos += st.length;
      dst_cursor += st.length;
    }
  }
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Piggyback-based dispatch and execution (§4.3)
// ---------------------------------------------------------------------------

void Engine::ExecuteRound(Client& client, std::vector<Subtask>& subtasks) {
  if (subtasks.empty()) {
    return;
  }
  const size_t nch = dma_.channel_count();

  // Pick the DMA set. Piggybacking draws DMA candidates from the *tail* of
  // the round (latter part of a large task — i-piggyback — or latter tasks of
  // a fused round — e-piggyback) because later bytes have longer Copy-Use
  // windows, and balances the two units' completion times.
  std::vector<size_t> dma_set;
  Cycles avx_time = 0;
  for (const Subtask& st : subtasks) {
    avx_time += timing_->CpuCopyCycles(hw::CopyUnitKind::kAvx, st.length);
  }
  if (config_.use_dma && config_.enable_piggyback) {
    // Channel-aware greedy split: a candidate moves to DMA while the
    // *aggregate* DMA makespan — each candidate placed on the least-loaded
    // channel — stays within the tolerance over the remaining AVX time.
    // Both units finish close together and the CPU never idles waiting
    // (§4.3); the slack biases toward engaging DMA — a short confirmed wait
    // beats leaving the second unit idle. Loads start at zero: the round
    // balances its own work (with one channel this is exactly the serial
    // dma_time accumulation of the single-engine split).
    std::vector<Cycles> load(nch, 0);
    const size_t tol = timing_->piggyback_greedy_tolerance_pct;
    for (size_t i = subtasks.size(); i-- > 0;) {
      const Subtask& st = subtasks[i];
      if (!st.dma_eligible) {
        continue;
      }
      const Cycles st_avx = timing_->CpuCopyCycles(hw::CopyUnitKind::kAvx, st.length);
      const Cycles st_dma = timing_->DmaTransferCycles(st.length);
      size_t least = 0;
      for (size_t c = 1; c < nch; ++c) {
        if (load[c] < load[least]) {
          least = c;
        }
      }
      Cycles makespan = load[least] + st_dma;
      for (size_t c = 0; c < nch; ++c) {
        if (c != least) {
          makespan = std::max(makespan, load[c]);
        }
      }
      const Cycles rem_avx = avx_time - st_avx;
      if (makespan <= rem_avx + rem_avx * tol / 100) {
        dma_set.push_back(i);
        subtasks[i].on_dma = true;
        load[least] += st_dma;
        avx_time -= st_avx;
      }
    }
  }

  // Submit the DMA side: one descriptor batch per channel, chunks assigned
  // least-loaded-first. A large subtask is chunked across channels only when
  // the round has fewer DMA subtasks than channels (otherwise whole subtasks
  // already spread, and chunking would just multiply per-descriptor cost).
  struct RoundChunk {
    size_t subtask = 0;  // index into `subtasks`
    size_t offset = 0;   // byte offset within the subtask
    size_t length = 0;
  };
  struct SubmittedBatch {
    Cycles completion = 0;
    uint64_t bytes = 0;
    std::vector<RoundChunk> chunks;
  };
  std::vector<SubmittedBatch> submitted;
  std::vector<RoundChunk> ring_full_chunks;  // partial fallbacks, AVX below
  if (!dma_set.empty()) {
    struct ChannelBatch {
      std::vector<hw::DmaDescriptor> descs;
      std::vector<RoundChunk> chunks;
      uint64_t bytes = 0;
    };
    std::vector<ChannelBatch> batches(nch);
    std::vector<Cycles> load(nch, 0);
    const bool chunk_large = nch > 1 && dma_set.size() < nch;
    Cycles translate = 0;
    for (size_t idx : dma_set) {
      const Subtask& st = subtasks[idx];
      // DMA needs explicit physical addresses: ~240 cycles per page-table
      // walk, amortized by the ATCache (§4.3). CPU copies pay nothing (MMU).
      translate += st.pages_cached * timing_->atcache_hit_cycles +
                   st.pages_uncached * timing_->va_translate_cycles_per_page;
      size_t pieces = 1;
      if (chunk_large && st.length >= 2 * timing_->dma_min_subtask_bytes) {
        pieces = std::min(nch, st.length / timing_->dma_min_subtask_bytes);
      }
      const size_t base = st.length / pieces;
      size_t off = 0;
      for (size_t p = 0; p < pieces; ++p) {
        const size_t len = (p + 1 == pieces) ? st.length - off : base;
        size_t least = 0;
        for (size_t c = 1; c < nch; ++c) {
          if (load[c] < load[least]) {
            least = c;
          }
        }
        batches[least].descs.push_back({st.dst + off, st.src + off, len});
        batches[least].chunks.push_back({idx, off, len});
        batches[least].bytes += len;
        load[least] += timing_->DmaTransferCycles(len);
        off += len;
      }
    }
    ChargeCtx(ctx_, translate);
    for (size_t c = 0; c < nch; ++c) {
      ChannelBatch& b = batches[c];
      if (b.descs.empty()) {
        continue;
      }
      ChargeCtx(ctx_, dma_.SubmissionCost(b.descs.size()));
      auto sub_or = dma_.SubmitOn(c, b.descs, CtxNow(ctx_));
      if (!sub_or.ok()) {
        // Ring full on this channel: its chunks fall back to the CPU (the
        // failed attempt stays charged — the descriptors were written before
        // the doorbell bounced). Whole subtasks rejoin the AVX loop; partial
        // chunks of a split subtask run separately below.
        ++stats_.dma_ring_full_fallbacks;
        if (overload_ != nullptr) {
          ++overload_->ring_full_events;
        }
        for (const RoundChunk& ch : b.chunks) {
          if (ch.offset == 0 && ch.length == subtasks[ch.subtask].length) {
            subtasks[ch.subtask].on_dma = false;
          } else {
            ring_full_chunks.push_back(ch);
          }
        }
        continue;
      }
      submitted.push_back({sub_or->completion_time, b.bytes, std::move(b.chunks)});
      stats_.dma_bytes_submitted += b.bytes;
      ++stats_.dma_batches_submitted;
    }
  }

  // CPU side: AVX subtasks run while the DMA transfers are in flight. Each
  // subtask's segments become ready as soon as its bytes land.
  for (size_t i = 0; i < subtasks.size(); ++i) {
    if (subtasks[i].on_dma) {
      continue;
    }
    Subtask& st = subtasks[i];
    if (config_.use_dma && !config_.enable_piggyback && st.dma_eligible) {
      // Naive DMA (ablation): submit and busy-wait per subtask.
      hw::DmaDescriptor desc{st.dst, st.src, st.length};
      ChargeCtx(ctx_, dma_.SubmissionCost(1));
      const size_t ch = dma_.PickChannel(1);
      if (ch < nch) {
        auto sub_or = dma_.SubmitOn(ch, {&desc, 1}, CtxNow(ctx_));
        if (sub_or.ok()) {
          if (ctx_ != nullptr) {
            const Cycles stall_from = ctx_->now();
            ctx_->WaitUntil(sub_or->completion_time);
            stats_.dma_stall_cycles += ctx_->now() - stall_from;
          }
          ChargeCtx(ctx_, timing_->dma_completion_check_cycles);
          stats_.dma_bytes_submitted += st.length;
          ++stats_.dma_batches_submitted;
          stats_.dma_bytes_completed += st.length;
          ++stats_.dma_batches_completed;
          MarkProgress(client, *st.owner, st.task_offset, st.length, CtxNow(ctx_));
          continue;
        }
      }
      ++stats_.dma_ring_full_fallbacks;
      if (overload_ != nullptr) {
        ++overload_->ring_full_events;
      }
    }
    hw::AvxCopy(st.dst, st.src, st.length);
    ChargeCtx(ctx_, timing_->CpuCopyCycles(hw::CopyUnitKind::kAvx, st.length));
    stats_.avx_bytes += st.length;
    MarkProgress(client, *st.owner, st.task_offset, st.length, CtxNow(ctx_));
  }
  for (const RoundChunk& ch : ring_full_chunks) {
    Subtask& st = subtasks[ch.subtask];
    hw::AvxCopy(st.dst + ch.offset, st.src + ch.offset, ch.length);
    ChargeCtx(ctx_, timing_->CpuCopyCycles(hw::CopyUnitKind::kAvx, ch.length));
    stats_.avx_bytes += ch.length;
    MarkProgress(client, *st.owner, st.task_offset + ch.offset, ch.length, CtxNow(ctx_));
  }

  if (submitted.empty()) {
    return;
  }
  if (config_.enable_async_dma_completion && ctx_ != nullptr) {
    // Park the in-flight batches instead of waiting them out (DESIGN.md §9):
    // the round retires with its DMA bytes outstanding, the serve returns to
    // the scheduler, and ReapParkedDma lands the bytes on a later pass.
    // Completion times were captured at submission, so even an engine that
    // later steals this client never touches this engine's channels.
    ++stats_.dma_rounds_parked;
    for (SubmittedBatch& b : submitted) {
      Client::ParkedDma parked;
      parked.completion_time = b.completion;
      parked.bytes = b.bytes;
      parked.segs.reserve(b.chunks.size());
      for (const RoundChunk& ch : b.chunks) {
        Subtask& st = subtasks[ch.subtask];
        const size_t task_off = st.task_offset + ch.offset;
        parked.segs.push_back({st.owner, task_off, ch.length});
        st.owner->dma_parked.emplace_back(task_off, task_off + ch.length);
      }
      client.parked_dma.push_back(std::move(parked));
      client.dma_inflight_bytes.fetch_add(b.bytes, std::memory_order_relaxed);
    }
    return;
  }
  // Blocking completion (ablation baseline; also any engine without an
  // ExecContext, whose clock cannot advance to a later reap): wait out the
  // slowest channel, then confirm each batch.
  Cycles last_completion = 0;
  for (const SubmittedBatch& b : submitted) {
    last_completion = std::max(last_completion, b.completion);
  }
  if (ctx_ != nullptr) {
    const Cycles stall_from = ctx_->now();
    ctx_->WaitUntil(last_completion);
    stats_.dma_stall_cycles += ctx_->now() - stall_from;
  }
  for (const SubmittedBatch& b : submitted) {
    ChargeCtx(ctx_, timing_->dma_completion_check_cycles);
    stats_.dma_bytes_completed += b.bytes;
    ++stats_.dma_batches_completed;
  }
  dma_.Poll(CtxNow(ctx_));
  for (const SubmittedBatch& b : submitted) {
    for (const RoundChunk& ch : b.chunks) {
      Subtask& st = subtasks[ch.subtask];
      MarkProgress(client, *st.owner, st.task_offset + ch.offset, ch.length, CtxNow(ctx_));
    }
  }
}

// ---------------------------------------------------------------------------
// Task-range execution
// ---------------------------------------------------------------------------

Status Engine::CopyRange(Client& client, PendingTask& task, size_t offset, size_t length,
                         int depth) {
  // Execute whole progress segments covering [offset, offset+length),
  // skipping segments already marked: a segment's bit is set only once all of
  // the task's bytes in it have landed (§4.1).
  const size_t seg_size = task.progress->segment_size();
  const size_t end = std::min(task.task.length, offset + length);
  if (offset >= end) {
    return OkStatus();
  }
  const auto seg_start_local = [&](size_t seg) {
    const size_t space = seg * seg_size;
    return space > task.progress_offset ? space - task.progress_offset : 0;
  };
  const auto seg_end_local = [&](size_t seg) {
    return std::min(task.task.length, (seg + 1) * seg_size - task.progress_offset);
  };

  const size_t first_seg = task.progress->SegmentOf(task.progress_offset + offset);
  const size_t last_seg = task.progress->SegmentOf(task.progress_offset + end - 1);
  size_t seg = first_seg;
  while (seg <= last_seg) {
    if (task.progress->SegmentReady(seg)) {
      ++seg;
      continue;
    }
    const size_t run_first = seg;
    while (seg <= last_seg && !task.progress->SegmentReady(seg)) {
      ++seg;
    }
    const size_t run_start = seg_start_local(run_first);
    const size_t run_end = seg_end_local(seg - 1);

    // Dead-write suppression: bytes of this run that a *later* task has
    // already written (its progress segments are marked) must not be
    // overwritten with this task's older data — promotion can execute tasks
    // out of submission order (§4.1), so the suppression is what keeps WAW
    // semantics intact. Dead bytes are marked done without copying.
    std::vector<std::pair<size_t, size_t>> live;  // [start, end) task-local
    live.emplace_back(run_start, run_end);
    // Removes [cut_start, cut_end) (task-local bytes) from `ranges`.
    const auto subtract_range = [](std::vector<std::pair<size_t, size_t>>& ranges,
                                   size_t cut_start, size_t cut_end) {
      std::vector<std::pair<size_t, size_t>> next;
      for (auto [ls, le] : ranges) {
        if (cut_end <= ls || cut_start >= le) {
          next.emplace_back(ls, le);
          continue;
        }
        if (ls < cut_start) {
          next.emplace_back(ls, cut_start);
        }
        if (cut_end < le) {
          next.emplace_back(cut_end, le);
        }
      }
      ranges = std::move(next);
    };
    const auto subtract_dead = [&live, &subtract_range](size_t dead_start, size_t dead_end) {
      subtract_range(live, dead_start, dead_end);
    };
    // Bytes of this run already in flight on a DMA channel execute on nobody:
    // their batch lands them at the reap. Snapshot before suppression runs —
    // a later-writer settle below may reap this task's own batches mid-run,
    // and re-copying bytes that just landed would double-count progress.
    const std::vector<std::pair<size_t, size_t>> parked_before = task.dma_parked;
    // Suppression runs per contiguous destination piece of the run: a
    // scatter-gather destination checks each covered segment against later
    // writers of *that* segment's addresses.
    std::vector<RefPiece> dpieces;
    CollectPieces(task.task, /*dst_side=*/true, run_start, run_end - run_start, &dpieces);
    for (const RefPiece& dp : dpieces) {
      const uint64_t dbase = dp.ref.start();
      const uint64_t ddomain = dp.ref.domain();
      // Bytes fully written by later tasks that already completed. Entries
      // are gseq-keyed: locally retired writes and imported foreign landed
      // writes (cross-engine dead-write suppression) compare uniformly.
      for (const auto& done : client.completed_writes) {
        if (done.gseq <= task.gseq || done.domain != ddomain) {
          continue;
        }
        const uint64_t ovl_start = std::max(done.start, dbase);
        const uint64_t ovl_end = std::min(done.start + done.length, dbase + dp.length);
        if (ovl_start >= ovl_end) {
          continue;
        }
        subtract_dead(ovl_start - dbase + dp.task_offset, ovl_end - dbase + dp.task_offset);
      }
      // Bytes a later *pending* writer has already landed (segment-granular).
      const auto suppress_from = [&](PendingTask& other) {
        // A later writer with bytes still in flight must land first: its
        // unreaped segments read as "unready" here, and copying this task's
        // older data under them would then be overwritten-in-reverse when the
        // newer batch is reaped (a WAW inversion against in-flight hardware).
        if (!other.dma_parked.empty()) {
          SettleTaskParked(client, other);
        }
        std::vector<RefPiece> opieces;
        CollectPieces(other.task, /*dst_side=*/true, 0, other.task.length, &opieces);
        for (const RefPiece& op : opieces) {
          if (op.ref.domain() != ddomain) {
            continue;
          }
          const uint64_t obase = op.ref.start();
          const uint64_t ovl_start = std::max(obase, dbase);
          const uint64_t ovl_end = std::min(obase + op.length, dbase + dp.length);
          if (ovl_start >= ovl_end) {
            continue;
          }
          // Walk the overlap in `other`'s progress segments; marked pieces
          // are dead for this task.
          uint64_t cursor = ovl_start;
          while (cursor < ovl_end) {
            const size_t other_local = cursor - obase + op.task_offset;
            const size_t o_seg_size = other.progress->segment_size();
            const size_t o_space = other.progress_offset + other_local;
            const size_t o_seg = other.progress->SegmentOf(o_space);
            const size_t seg_room = (o_seg + 1) * o_seg_size - o_space;
            const uint64_t piece_end = std::min<uint64_t>(ovl_end, cursor + seg_room);
            if (other.progress->SegmentReady(o_seg)) {
              subtract_dead(cursor - dbase + dp.task_offset,
                            piece_end - dbase + dp.task_offset);
            }
            cursor = piece_end;
          }
        }
      };
      if (config_.enable_range_index) {
        // Live later writers whose dst overlaps this piece. Done tasks
        // already left the index; their full write is covered by
        // completed_writes above. An SG writer has one entry per segment —
        // dedup so suppress_from walks it once.
        std::vector<PendingTask*> writers;
        ++stats_.dep_probes;
        ChargeCtx(ctx_, timing_->absorption_match_cycles);
        stats_.dep_tasks_scanned += client.range_index.ForEachOverlap(
            RangeIndex::Side::kDst, ddomain, dbase, dp.length,
            [&](const RangeIndex::Entry& entry) {
              if (entry.order > task.order && !entry.task->aborted &&
                  std::find(writers.begin(), writers.end(), entry.task) == writers.end()) {
                writers.push_back(entry.task);
              }
              return true;
            });
        for (PendingTask* other : writers) {
          suppress_from(*other);
        }
      } else {
        for (const auto& other_ptr : client.pending) {
          PendingTask& other = *other_ptr;
          ChargeCtx(ctx_, timing_->absorption_match_cycles);
          ++stats_.dep_tasks_scanned;
          if (other.order <= task.order || other.aborted) {
            continue;
          }
          suppress_from(other);
        }
      }
    }

    if (getenv("COPIER_TRACE") != nullptr) {
      std::fprintf(stderr, "[exec] task=%llu order=%llu dst=%llx run=[%zu,%zu) live:",
                   (unsigned long long)task.task.id, (unsigned long long)task.order,
                   (unsigned long long)task.task.dst.start(), run_start, run_end);
      for (auto [ls, le] : live) std::fprintf(stderr, " [%zu,%zu)", ls, le);
      std::fprintf(stderr, "\n");
    }
    size_t live_bytes = 0;
    for (auto [ls, le] : live) {
      live_bytes += le - ls;
      // Parked bytes stay out of the executed set but still count as live:
      // they are neither dead nor this round's work.
      std::vector<std::pair<size_t, size_t>> exec;
      exec.emplace_back(ls, le);
      for (auto [ps, pe] : parked_before) {
        subtract_range(exec, ps, pe);
      }
      for (auto [xs, xe] : exec) {
        std::vector<SourcePiece> sources;
        ResolveSources(client, task, xs, xe - xs, depth, &sources);
        if (getenv("COPIER_TRACE") != nullptr) {
          size_t total = 0;
          std::fprintf(stderr, "[src] task=%llu run=[%zu,%zu):",
                       (unsigned long long)task.task.id, xs, xe);
          for (const SourcePiece& sp : sources) {
            std::fprintf(stderr, " {%llx,%zu%s}", (unsigned long long)sp.ref.start(), sp.length,
                         sp.absorbed ? ",A" : "");
            total += sp.length;
          }
          std::fprintf(stderr, " total=%zu\n", total);
        }
        // Remap tier (DESIGN.md §11): a page-co-aligned interior backed
        // directly by the task's source is satisfied by CoW aliasing —
        // complete for ordering, zero bytes moved. The unaligned head and
        // tail (and any ineligible range) take the physical path below.
        size_t rs = 0;
        size_t re = 0;
        if (RemapCandidate(task, xs, xe, &rs, &re) &&
            RemapSourcesPlain(task, sources, xs, rs, re) &&
            TryRemapRange(client, task, rs, re)) {
          for (auto [hs, he] : {std::pair<size_t, size_t>{xs, rs}, {re, xe}}) {
            if (hs >= he) {
              continue;
            }
            std::vector<SourcePiece> edge;
            ResolveSources(client, task, hs, he - hs, depth, &edge);
            std::vector<Subtask> subtasks;
            COPIER_RETURN_IF_ERROR(BuildSubtasks(client, task, hs, edge, &subtasks));
            ExecuteRound(client, subtasks);
          }
          continue;
        }
        std::vector<Subtask> subtasks;
        COPIER_RETURN_IF_ERROR(BuildSubtasks(client, task, xs, sources, &subtasks));
        ExecuteRound(client, subtasks);
      }
    }
    // Dead bytes: obligation satisfied by the newer writer; mark done.
    if (live_bytes < run_end - run_start) {
      size_t cursor = run_start;
      for (auto [ls, le] : live) {
        if (cursor < ls) {
          MarkProgress(client, task, cursor, ls - cursor, CtxNow(ctx_));
        }
        cursor = le;
      }
      if (cursor < run_end) {
        MarkProgress(client, task, cursor, run_end - cursor, CtxNow(ctx_));
      }
    }
  }
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Zero-copy remap tier (DESIGN.md §11)
// ---------------------------------------------------------------------------

bool Engine::RemapCandidate(const PendingTask& task, size_t start, size_t end, size_t* rs,
                            size_t* re) const {
  if (!config_.enable_remap_tier ||
      (task.task.sg != nullptr && !task.task.sg->bookkeeping)) {
    return false;
  }
  const MemRef& dst = task.task.dst;
  const MemRef& src = task.task.src;
  if (!dst.is_user() || !src.is_user()) {
    return false;
  }
  // Both sides must reach page boundaries at the same task offsets, i.e. the
  // VAs are congruent mod the page size. A prefix-spliced source (forward
  // fuse) shifts the user bytes: task-local byte k reads src.va + k - pfx, so
  // the congruence carries the prefix length and the aliasable interior
  // starts past the prefix (whose bytes have no user source to alias).
  const size_t pfx = SrcPrefixLen(task.task);
  if (((dst.va - src.va + pfx) & (kPageSize - 1)) != 0) {
    return false;
  }
  const uint64_t lo = AlignUp(dst.va + std::max(start, pfx), kPageSize);
  const uint64_t hi = AlignDown(dst.va + end, kPageSize);
  const size_t min_bytes = std::max<size_t>(config_.remap_min_bytes, kPageSize);
  if (lo >= hi || hi - lo < min_bytes) {
    return false;
  }
  *rs = lo - dst.va;
  *re = hi - dst.va;
  // Fused IPC tasks (bookkeeping SgList) have a receiver latency-blocked on
  // the window descriptor, so the alias is taken only when the PTE/shootdown
  // work beats the single engine copy it would replace; bulk amemcpy-style
  // tasks take the alias for the moved-bytes win alone.
  if (task.task.sg != nullptr && task.task.sg->bookkeeping) {
    const size_t pages = (hi - lo) / kPageSize;
    const Cycles alias_cost =
        timing_->page_remap_cycles * pages + timing_->tlb_shootdown_cycles;
    if (alias_cost >= timing_->CpuCopyCycles(hw::CopyUnitKind::kAvx, hi - lo)) {
      return false;
    }
  }
  // Overlapping same-space interiors cannot alias (a frame would be both
  // sides of the share); AliasCowRange would reject them anyway.
  if (dst.space == src.space &&
      RangesOverlap(dst.va + *rs, *re - *rs, src.va + *rs, *re - *rs)) {
    return false;
  }
  return true;
}

bool Engine::RemapSourcesPlain(const PendingTask& task, const std::vector<SourcePiece>& sources,
                               size_t start, size_t rs, size_t re) {
  const MemRef& src = task.task.src;
  const size_t pfx = SrcPrefixLen(task.task);
  size_t pos = start;
  for (const SourcePiece& piece : sources) {
    const size_t piece_start = pos;
    pos += piece.length;
    if (pos <= rs) {
      continue;
    }
    if (piece_start >= re) {
      break;
    }
    // A piece backs the interior only if it sits at the task's own source
    // offset — absorption rewrites pieces to the producer's memory, where
    // the aliasable frames do not hold the task's data yet. Under a prefix
    // splice user bytes sit `pfx` earlier in the source range (the interior
    // itself starts past the prefix, so piece_start >= pfx here).
    if (piece.absorbed || !piece.ref.is_user() || piece.ref.space != src.space ||
        piece.ref.va != src.va + piece_start - pfx) {
      return false;
    }
  }
  return pos >= re;
}

bool Engine::TryRemapRange(Client& client, PendingTask& task, size_t rs, size_t re) {
  const MemRef& dst = task.task.dst;
  const MemRef& src = task.task.src;
  const size_t pfx = SrcPrefixLen(task.task);
  const size_t length = re - rs;
  const Status aliased =
      dst.space->AliasCowRangeFrom(*src.space, dst.va + rs, src.va + rs - pfx, length, ctx_);
  if (!aliased.ok()) {
    return false;  // pinned/huge/shared/unmapped edge: physical copy fallback
  }
  ++stats_.remap_tasks;
  stats_.remapped_bytes += length;
  // The aliased bytes are complete for ordering: progress marks, kfuncs and
  // barrier visibility flow through the same accounting as a physical copy.
  MarkProgress(client, task, rs, length, CtxNow(ctx_));
  return true;
}

Status Engine::ExecuteTaskRange(Client& client, PendingTask& task, size_t offset, size_t length,
                                int depth, bool must_land) {
  if (getenv("COPIER_TRACE") != nullptr) {
    std::fprintf(stderr, "[range] task=%llu off=%zu len=%zu depth=%d done=%d bytes=%zu\n",
                 (unsigned long long)task.task.id, offset, length, depth, task.Done(),
                 task.bytes_done);
  }
  if (task.Done() || length == 0) {
    return OkStatus();
  }
  if (depth >= config_.max_dependency_depth) {
    return FailedPrecondition("dependency recursion limit");
  }
  offset = std::min(offset, task.task.length);
  length = std::min(length, task.task.length - offset);
  // Execution happens in whole progress segments (CopyRange), so dependency
  // resolution must cover the segment-aligned expansion of the requested
  // range — otherwise bytes copied "for free" at segment edges could land
  // before an earlier conflicting write (WAW/WAR inversion).
  const size_t seg = task.progress->segment_size();
  const size_t space_start = AlignDown(task.progress_offset + offset, seg);
  const size_t aligned_offset =
      space_start >= task.progress_offset ? space_start - task.progress_offset : 0;
  const size_t aligned_end = std::min<size_t>(
      task.task.length,
      AlignUp(task.progress_offset + offset + length, seg) - task.progress_offset);
  offset = aligned_offset;
  length = aligned_end - aligned_offset;
  // Barrier-drain rule (DESIGN.md §9): a synchronizing or conflicting access
  // (promotion, csync, dependency resolution) may not proceed past bytes the
  // hardware still has in flight — settle them to their completion first.
  // Plain FIFO passes skip this; their parked bytes land via the reaper.
  if (must_land && !task.dma_parked.empty()) {
    SettleParkedRange(client, task, offset, length);
    if (task.Done()) {
      return OkStatus();
    }
  }
  // Cross-engine shared-range protocol (DESIGN.md §10): before executing a
  // window other clients may also name, import landed foreign writes ordered
  // after us (dead-write suppression) and force-land live foreign conflicts
  // ordered before us. kUnavailable from a held foreign client propagates to
  // the caller as a defer — never a drop.
  if (cross_ != nullptr && task.shared_visible) {
    COPIER_RETURN_IF_ERROR(CrossSettle(client, task, offset, length));
  }
  COPIER_RETURN_IF_ERROR(ResolveDependencies(client, task, offset, length, depth));
  COPIER_RETURN_IF_ERROR(CopyRange(client, task, offset, length, depth));
  if (task.bytes_done >= task.task.length) {
    CompleteTask(client, task, /*fifo_ordered=*/!must_land);
  }
  return OkStatus();
}

Status Engine::CrossSettle(Client& client, PendingTask& task, size_t offset, size_t length) {
  // One ledger probe per contiguous piece of each side of the window: dst
  // pieces are writes (WAW/WAR against foreign tasks), src pieces are reads
  // (RAW). The hooks decide what conflicts; this only enumerates windows.
  std::vector<RefPiece> pieces;
  CollectPieces(task.task, /*dst_side=*/true, offset, length, &pieces);
  const size_t dst_pieces = pieces.size();
  CollectPieces(task.task, /*dst_side=*/false, offset, length, &pieces);
  for (size_t i = 0; i < pieces.size(); ++i) {
    const RefPiece& piece = pieces[i];
    ++stats_.cross_dep_probes;
    Status status = cross_->SettleForeign(*this, client, task, piece.ref.domain(),
                                          piece.ref.start(), piece.length,
                                          /*writes=*/i < dst_pieces);
    if (!status.ok() && status.code() == StatusCode::kUnavailable) {
      ++stats_.cross_dep_defers;
    }
    COPIER_RETURN_IF_ERROR(status);
  }
  return OkStatus();
}

bool Engine::RangeLanded(const PendingTask& task, size_t offset, size_t length) const {
  if (task.Done()) {
    return true;
  }
  const size_t end = std::min(offset + length, task.task.length);
  if (offset >= end) {
    return true;
  }
  for (const auto& [s, e] : task.dma_parked) {
    if (s < end && e > offset) {
      return false;  // in flight on a channel: submitted, not landed
    }
  }
  return task.progress->RangeReady(task.progress_offset + offset, end - offset);
}

Status Engine::SettleSharedRange(Client& client, uint64_t domain, uint64_t start, size_t length,
                                 uint64_t gseq_bound) {
  // Runs on the *probing* engine while `client` — usually homed on another
  // engine — is claimed through its `serving` flag: force-lands every live
  // task of `client` ordered before `gseq_bound` that touches
  // [start, start + length) of `domain`. Charges accrue to this engine's
  // clock and DMA slice; the victim's channel state is never touched (parked
  // batches carry their completion times). Never retires: the victim may be
  // mid-ExecutePending up-stack on its own engine, holding `pending`
  // iterators.
  struct Hit {
    PendingTask* task;
    size_t offset;
    size_t length;
    uint64_t gseq;
  };
  std::vector<Hit> hits;
  const auto consider = [&](PendingTask* task, size_t local_off, size_t local_len) {
    if (task == nullptr || task->Done() || task->gseq >= gseq_bound) {
      return;
    }
    hits.push_back({task, local_off, local_len, task->gseq});
  };
  if (config_.enable_range_index) {
    for (const RangeIndex::Side side : {RangeIndex::Side::kDst, RangeIndex::Side::kSrc}) {
      client.range_index.ForEachOverlap(
          side, domain, start, length, [&](const RangeIndex::Entry& entry) {
            const uint64_t lo = std::max(start, entry.start);
            const uint64_t hi = std::min(start + length, entry.start + entry.length);
            if (lo < hi) {
              consider(entry.task, entry.task_offset + (lo - entry.start),
                       static_cast<size_t>(hi - lo));
            }
            return true;
          });
    }
  } else {
    for (auto& pending : client.pending) {
      PendingTask& task = *pending;
      if (task.Done() || task.gseq >= gseq_bound) {
        continue;
      }
      std::vector<RefPiece> pieces;
      CollectPieces(task.task, /*dst_side=*/true, 0, task.task.length, &pieces);
      CollectPieces(task.task, /*dst_side=*/false, 0, task.task.length, &pieces);
      for (const RefPiece& piece : pieces) {
        if (piece.ref.domain() != domain) {
          continue;
        }
        const uint64_t lo = std::max(start, piece.ref.start());
        const uint64_t hi = std::min(start + length, piece.ref.start() + piece.length);
        if (lo < hi) {
          consider(&task, piece.task_offset + (lo - piece.ref.start()),
                   static_cast<size_t>(hi - lo));
        }
      }
    }
  }
  // gseq order is the cross-client conflict order (fixed at submission):
  // settling in it reproduces exactly what a single engine executing in
  // global submission order would do to these bytes.
  std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
    return a.gseq != b.gseq ? a.gseq < b.gseq : a.offset < b.offset;
  });
  const Cycles settle_start = CtxNow(ctx_);
  for (const Hit& hit : hits) {
    if (hit.task->Done() || RangeLanded(*hit.task, hit.offset, hit.length)) {
      continue;  // already landed (e.g. absorbed or delivered): nothing to order
    }
    ++stats_.cross_dep_settles;
    ++t_cross_settle;
    Status status =
        ExecuteTaskRange(client, *hit.task, hit.offset, hit.length, /*depth=*/0,
                         /*must_land=*/true);
    --t_cross_settle;
    if (!status.ok()) {
      if (status.code() == StatusCode::kUnavailable) {
        stats_.cross_dep_wait_cycles += CtxNow(ctx_) - settle_start;
        return status;  // nested defer: unwind to the original caller
      }
      DropTask(client, *hit.task, status);
    }
  }
  stats_.cross_dep_wait_cycles += CtxNow(ctx_) - settle_start;
  return OkStatus();
}

void Engine::ApplyDeferredAborts(Client& client) {
  if (client.pending_abort_requests == 0) {
    return;  // common case: nothing deferred (runs after every pending pass)
  }
  size_t remaining = 0;
  for (auto& pending : client.pending) {
    PendingTask& task = *pending;
    if (!task.abort_requested || task.Done()) {
      continue;
    }
    bool has_dependent = false;
    if (config_.enable_range_index) {
      // A dependent is a live, later-ordered reader of this task's dst
      // (probed per contiguous destination piece).
      std::vector<RefPiece> dpieces;
      CollectPieces(task.task, /*dst_side=*/true, 0, task.task.length, &dpieces);
      for (const RefPiece& dp : dpieces) {
        ++stats_.dep_probes;
        ChargeCtx(ctx_, timing_->absorption_match_cycles);
        stats_.dep_tasks_scanned += client.range_index.ForEachOverlap(
            RangeIndex::Side::kSrc, dp.ref.domain(), dp.ref.start(), dp.length,
            [&](const RangeIndex::Entry& entry) {
              if (entry.order > task.order && !entry.task->Done()) {
                has_dependent = true;
                return false;
              }
              return true;
            });
        if (has_dependent) {
          break;
        }
      }
    } else {
      for (const auto& other : client.pending) {
        ChargeCtx(ctx_, timing_->absorption_match_cycles);
        ++stats_.dep_tasks_scanned;
        if (other->order > task.order && !other->Done() &&
            SidesOverlap(task.task, /*a_dst=*/true, other->task, /*b_dst=*/false)) {
          has_dependent = true;
          break;
        }
      }
    }
    if (has_dependent) {
      ++remaining;
    } else {
      if (getenv("COPIER_TRACE") != nullptr) {
        std::fprintf(stderr, "[abort] task=%llu order=%llu dst=%llx len=%zu\n",
                     (unsigned long long)task.task.id, (unsigned long long)task.order,
                     (unsigned long long)task.task.dst.start(), task.task.length);
      }
      // Bytes already on a DMA channel cannot be recalled: settle them first
      // so the abort never leaves parked references to a retiring task. If
      // the landing completes the task, the abort raced completion and lost.
      if (!task.dma_parked.empty()) {
        SettleTaskParked(client, task);
        if (task.Done()) {
          continue;
        }
      }
      task.aborted = true;
      OnTaskDone(client, task);
      ++stats_.tasks_aborted;
      // Settle the client-visible descriptor: the client explicitly discarded
      // this copy and promised not to use the data (§4.4), but csync_all
      // sweeps every registered copy and must not wait forever on it.
      if (task.task.descriptor != nullptr) {
        task.task.descriptor->MarkRange(task.task.descriptor_offset, task.task.length,
                                        CtxNow(ctx_));
      }
      CompleteTask(client, task);
    }
  }
  client.pending_abort_requests = remaining;
}

uint64_t Engine::ExecutePending(Client& client, uint64_t budget) {
  uint64_t served = 0;
  const Cycles now = CtxNow(ctx_);
  size_t scan = 0;
  while (served < budget && scan < client.pending.size()) {
    // Find the first executable task (FIFO; lazy tasks wait for promotion,
    // dependency pull, abort, or their age timeout, §4.4).
    PendingTask* head = nullptr;
    std::vector<PendingTask*> round;
    for (; scan < client.pending.size(); ++scan) {
      PendingTask& task = *client.pending[scan];
      if (getenv("COPIER_TRACE2") != nullptr) {
        std::fprintf(stderr, "[scan] task=%llu done=%d bytes=%zu abreq=%d lazy=%d prom=%d\n",
                     (unsigned long long)task.task.id, task.Done(), task.bytes_done,
                     task.abort_requested, task.task.type == TaskType::kLazy, task.promoted);
      }
      if (task.Done() || task.abort_requested) {
        continue;
      }
      if (task.task.type == TaskType::kLazy && !task.promoted &&
          now < task.task.submit_time + config_.lazy_timeout_cycles) {
        continue;
      }
      head = &task;
      break;
    }
    if (head == nullptr) {
      break;
    }

    round.push_back(head);
    // e-piggyback: fuse small adjacent tasks with no data dependencies into
    // one hardware round so even sub-12 KiB tasks get DMA parallelism (§4.3).
    // The fused path bypasses per-task dependency resolution, so the head
    // itself must also be conflict-free against every unfinished task ordered
    // before it (it may have been scheduled past skipped lazy tasks).
    // Scatter-gather tasks never fuse: per-segment KFUNC timing depends on
    // the ordered per-task path, and their round-size economics differ (one
    // SG task already fills a round).
    // Shared-visible tasks never fuse either: their cross-engine ledger probe
    // runs in the ordered per-task path (ExecuteTaskRange).
    bool head_fusable = head->task.sg == nullptr && !head->shared_visible;
    if (head_fusable) {
      for (const auto& done : client.completed_writes) {
        if (done.gseq > head->gseq && done.domain == head->task.dst.domain() &&
            RangesOverlap(done.start, done.length, head->task.dst.start(),
                          head->task.length)) {
          head_fusable = false;
          break;
        }
      }
    }
    if (head_fusable && HasAnyConflict(client, *head)) {
      head_fusable = false;
    }
    // The fused path copies whole tasks without segment clipping, so only
    // fully-unstarted tasks may fuse: a partially-executed task re-copying
    // its done segments would re-read sources that later tasks have since
    // legally overwritten (found by the concurrency stress harness).
    // Tasks with bytes parked on a DMA channel look unstarted (bytes_done is
    // credited only at the reap) but are not: re-copying them whole would
    // double their progress.
    if (head_fusable && head->bytes_done == 0 && head->dma_parked.empty() &&
        config_.use_dma && config_.enable_piggyback &&
        head->task.length < timing_->ipiggyback_min_task_bytes) {
      // A fused candidate executes ahead of every task it is hoisted over, so
      // it must have no data dependency (RAW/WAW/WAR, either direction) with
      // round members *or* any unfinished task ordered before it — including
      // lazy/abort-deferred tasks sitting before the round head.
      size_t round_bytes = head->task.length;
      for (size_t j = scan + 1; j < client.pending.size() && round.size() < kMaxFusedTasks;
           ++j) {
        PendingTask& cand = *client.pending[j];
        if (cand.Done()) {
          continue;
        }
        // Conflict with any live task (round members included — they are all
        // live pending tasks, so one probe set covers them).
        bool conflict = HasAnyConflict(client, cand);
        if (!conflict) {
          for (const auto& done : client.completed_writes) {
            if (done.gseq > cand.gseq &&
                done.domain == cand.task.dst.domain() &&
                RangesOverlap(done.start, done.length, cand.task.dst.start(),
                              cand.task.length)) {
              conflict = true;  // a newer completed write covers part of dst
              break;
            }
          }
        }
        if (conflict || cand.task.type == TaskType::kLazy || cand.bytes_done != 0 ||
            !cand.dma_parked.empty() || cand.task.sg != nullptr || cand.shared_visible) {
          continue;  // stays in place; later candidates are checked against it
        }
        // Tasks with producers need the ordered (absorption-aware) path.
        if (HasEarlierLiveWriter(client, cand)) {
          continue;
        }
        round.push_back(&cand);
        round_bytes += cand.task.length;
        if (round_bytes >= config_.copy_slice_bytes) {
          break;
        }
      }
    }

    if (round.size() == 1) {
      // Parked (submitted, unreaped) bytes count as progress here: the slice
      // already paid their submission, and the reap that lands them is free
      // work the scheduler should not bill twice.
      const uint64_t before = head->bytes_done + head->dma_parked_bytes();
      const Status status =
          ExecuteTaskRange(client, *head, 0, head->task.length, 0, /*must_land=*/false);
      if (!status.ok() && status.code() != StatusCode::kUnavailable) {
        // kUnavailable is the cross-engine defer signal (a foreign serving
        // claim was held): the task stays queued and retries on a later pass.
        DropTask(client, *head, status);
      }
      const uint64_t after = head->bytes_done + head->dma_parked_bytes();
      served += after - before;
      if (after == before && !head->Done()) {
        ++scan;  // no forward progress on this task: move past it this pass
      }
    } else {
      // Fused round: build one combined subtask list. Dependencies were ruled
      // out above, so sources resolve plainly.
      std::vector<Subtask> subtasks;
      std::vector<uint64_t> before;
      bool fault = false;
      for (PendingTask* member : round) {
        before.push_back(member->bytes_done + member->dma_parked_bytes());
        std::vector<SourcePiece> sources;
        ResolveSources(client, *member, 0, member->task.length, 0, &sources);
        const Status status = BuildSubtasks(client, *member, 0, sources, &subtasks);
        if (!status.ok()) {
          DropTask(client, *member, status);
          fault = true;
          break;
        }
      }
      if (!fault) {
        ExecuteRound(client, subtasks);
      }
      for (size_t i = 0; i < round.size(); ++i) {
        if (round[i]->bytes_done >= round[i]->task.length) {
          CompleteTask(client, *round[i], /*fifo_ordered=*/true);
        }
        served += round[i]->bytes_done + round[i]->dma_parked_bytes() -
                  (i < before.size() ? before[i] : 0);
      }
    }
  }
  ApplyDeferredAborts(client);
  RetireDone(client);
  return served;
}

// ---------------------------------------------------------------------------
// Completion, drops, retirement
// ---------------------------------------------------------------------------

void Engine::MarkProgress(Client& client, PendingTask& task, size_t offset, size_t length,
                          Cycles when) {
  const bool was_done = task.Done();
  task.progress->MarkRange(task.progress_offset + offset, length, when);
  // Mirror into the client-visible descriptor (§4.1): csync gates on it.
  if (task.task.descriptor != nullptr) {
    task.task.descriptor->MarkRange(task.task.descriptor_offset + offset, length, when);
  }
  task.bytes_done += length;
  stats_.bytes_copied += length;
  if (task.task.sg != nullptr) {
    // Fused-IPC accounting is exact by construction: every byte that lands
    // through a bookkeeping task skipped the intermediate kernel buffer, and
    // aborted remainders never reach MarkProgress.
    if (task.task.sg->bookkeeping) {
      stats_.fused_ipc_bytes += length;
    }
    CreditSgSegments(client, task, offset, length, when);
  }
  if (!was_done && task.Done()) {
    OnTaskDone(client, task);
  }
}

void Engine::CreditSgSegments(Client& client, PendingTask& task, size_t offset, size_t length,
                              Cycles when) {
  (void)client;
  const auto& segs = task.task.sg->segs;
  const size_t end = offset + length;
  size_t seg_start = 0;
  for (size_t i = 0; i < segs.size() && seg_start < end; ++i) {
    const size_t seg_end = seg_start + segs[i].length;
    if (seg_end > offset) {
      const size_t ovl = std::min(end, seg_end) - std::max(offset, seg_start);
      task.sg_remaining[i] -= std::min(ovl, task.sg_remaining[i]);
    }
    seg_start = seg_end;
  }
  // Fire the longest fully-credited prefix, IN SEGMENT ORDER. Progress can
  // land out of order within a round (DMA takes the tail while the CPU
  // finishes the head), but the op-list is a stream: segment k's handler
  // (skb delivery on the send path) must not run before segment k-1's, or
  // the receiver reassembles the bytes in the wrong order — exactly the
  // per-op path's task-order firing. The same stream can also span several
  // tasks: while an earlier-ordered task still has bytes in flight, defer
  // the firing too — FireOrderedCompletions replays it at the reap.
  if (HasEarlierParked(client, task.order)) {
    return;
  }
  FireReadySgSegments(client, task, when);
}

void Engine::FireReadySgSegments(Client& client, PendingTask& task, Cycles when) {
  (void)client;
  const auto& segs = task.task.sg->segs;
  while (task.sg_next_fire < segs.size() && task.sg_remaining[task.sg_next_fire] == 0) {
    const size_t i = task.sg_next_fire++;
    task.sg_fired[i] = true;
    if (segs[i].on_complete != nullptr) {
      // The per-segment KFUNC is the per-skb completion handler of the
      // per-op path: same dispatch charge, same kfuncs_run accounting.
      ChargeCtx(ctx_, timing_->handler_dispatch_cycles);
      segs[i].on_complete(when);
      ++stats_.kfuncs_run;
      NoteKfuncTime(when);
    }
  }
}

void Engine::FireRemainingSgSegments(Client& client, PendingTask& task, Cycles when) {
  (void)client;
  if (task.task.sg == nullptr) {
    return;
  }
  const auto& segs = task.task.sg->segs;
  for (size_t i = 0; i < segs.size(); ++i) {
    if (task.sg_fired[i]) {
      continue;
    }
    task.sg_fired[i] = true;
    task.sg_remaining[i] = 0;
    if (segs[i].on_complete != nullptr) {
      ChargeCtx(ctx_, timing_->handler_dispatch_cycles);
      segs[i].on_complete(when);
      ++stats_.kfuncs_run;
      NoteKfuncTime(when);
    }
  }
  task.sg_next_fire = segs.size();
}

void Engine::CompleteTask(Client& client, PendingTask& task, bool fifo_ordered) {
  if (task.handler_fired) {
    return;
  }
  // FIFO-ordered completions must not overtake an earlier task whose bytes
  // are still on a DMA channel: in blocking mode rounds retire in submission
  // order, and the socket paths reassemble streams in handler order. The
  // handler stays unfired; FireOrderedCompletions delivers it at the reap
  // that lands the blocking task.
  if (fifo_ordered && HasEarlierParked(client, task.order)) {
    return;
  }
  // Per-client handler order is submission order, unconditionally: if an
  // earlier task has not fired, this one stays done-but-unfired and the
  // predecessor's completion cascades it (below). Cross-engine settles need
  // this so KFUNC order does not depend on which engine's settle landed the
  // task first; the remap tier (DESIGN.md §11) needs it so an aliased task —
  // complete the instant its PTEs flip — cannot overtake a predecessor whose
  // bytes are still moving, which would make observable completion order an
  // artifact of the enable_remap_tier ablation.
  if (HasEarlierUnfired(client, task.order)) {
    // The blocking predecessor may itself be done (completed mid-round via
    // absorption or a remap) with nobody left to call CompleteTask on it:
    // run the cascade so done-but-unfired prefixes drain now, not never.
    FireDeferredSuccessors(client);
    return;
  }
  task.handler_fired = true;
  if (!task.aborted) {
    ++stats_.tasks_completed;
  }
  client.total_copy_length += task.task.length;
  // Any segment KFUNC not yet fired through progress fires now: the kernel
  // buffers behind an aborted vectored task must be reclaimed exactly as the
  // per-op path's completion handlers would have.
  FireRemainingSgSegments(client, task, CtxNow(ctx_));
  PostHandler& handler = task.task.handler;
  switch (handler.kind) {
    case PostHandler::Kind::kNone:
      break;
    case PostHandler::Kind::kKernelFunc:
      ChargeCtx(ctx_, timing_->handler_dispatch_cycles);
      handler.fn(CtxNow(ctx_));
      ++stats_.kfuncs_run;
      NoteKfuncTime(CtxNow(ctx_));
      break;
    case PostHandler::Kind::kUserFunc: {
      QueuePair* pair = task.origin != nullptr ? task.origin : &client.default_pair();
      HandlerTask ht;
      ht.fn = handler.fn;
      ht.ready_time = CtxNow(ctx_);
      if (!pair->user.handler_q.TryPush(std::move(ht))) {
        // Handler queue full: execute inline as a last resort (never drop a
        // reclamation handler).
        handler.fn(CtxNow(ctx_));
      }
      ++stats_.ufuncs_queued;
      break;
    }
  }
  FireDeferredSuccessors(client);
}

bool Engine::HasEarlierUnfired(const Client& client, uint64_t order) const {
  for (const auto& pending : client.pending) {
    if (pending->order >= order) {
      break;  // pending is ordered by ingestion order
    }
    if (!pending->handler_fired) {
      return true;
    }
  }
  return false;
}

void Engine::FireDeferredSuccessors(Client& client) {
  if (t_fire_cascade) {
    return;  // the outermost completion runs one cascade for the whole chain
  }
  t_fire_cascade = true;
  for (auto& pending : client.pending) {
    PendingTask& task = *pending;
    if (task.handler_fired) {
      continue;
    }
    if (task.Done()) {  // includes aborted tasks — their handlers fire too
      CompleteTask(client, task);
      if (task.handler_fired) {
        continue;
      }
    }
    break;  // first unfired, incomplete task blocks everything behind it
  }
  t_fire_cascade = false;
}

void Engine::DropTask(Client& client, PendingTask& task, const Status& reason) {
  COPIER_LOG(kDebug) << "dropping task " << task.task.id << ": " << reason.ToString();
  // Bytes already on a DMA channel land regardless of the fault; settle them
  // so no parked batch keeps a reference to the retiring task.
  if (!task.dma_parked.empty()) {
    SettleTaskParked(client, task);
  }
  ++stats_.tasks_dropped;
  task.aborted = true;
  OnTaskDone(client, task);
  task.handler_fired = true;  // handlers do not run for faulted tasks
  if (task.progress != nullptr) {
    task.progress->MarkFailed(CtxNow(ctx_));
  }
  if (task.task.descriptor != nullptr) {
    task.task.descriptor->MarkFailed(CtxNow(ctx_));
  }
  if (client.process() != nullptr) {
    client.process()->Deliver(simos::Signal::kSegv);
  }
  FireDeferredSuccessors(client);
}

void Engine::RetireDone(Client& client) {
  std::erase_if(client.pending, [this, &client](const std::unique_ptr<PendingTask>& task) {
    // A task with bytes still parked on a DMA channel must outlive the reap
    // (the parked batch holds a pointer to it), Done or not.
    if (!task->Done() || !task->handler_fired || !task->dma_parked.empty()) {
      return false;
    }
    // Done tasks normally had their index entries dropped and their
    // destination logged at the Done transition (OnTaskDone); this is the
    // safety net for any path that flipped Done() without going through it.
    OnTaskDone(client, *task);
    return true;
  });
  client.pending_count.store(client.pending.size(), std::memory_order_release);
  // Prune: a completed write only matters while an EARLIER-sequenced task
  // could still execute late.
  uint64_t min_pending_gseq = UINT64_MAX;
  for (const auto& task : client.pending) {
    if (!task->Done()) {
      min_pending_gseq = std::min(min_pending_gseq, task->gseq);
    }
  }
  std::erase_if(client.completed_writes, [&](const Client::CompletedWrite& w) {
    if (w.gseq >= min_pending_gseq && min_pending_gseq != UINT64_MAX) {
      return false;  // a local earlier-ordered task could still execute late
    }
    // Cross-engine retention: a write into a shared domain that landed before
    // the domain turned shared has no ledger tombstone — this log entry is
    // the only record a foreign lower-gseq prober can import (SettleForeign's
    // owner-log scan). Keep it while such a prober may still be outstanding.
    return cross_ == nullptr || !cross_->LandedWriteStillNeeded(w.domain, w.gseq);
  });
}

// ---------------------------------------------------------------------------
// Pending-range interval index
// ---------------------------------------------------------------------------

void Engine::IndexInsert(Client& client, PendingTask& task) {
  if (task.in_range_index || task.Done()) {
    return;
  }
  // One entry per contiguous piece of each side: a scatter-gather side
  // contributes one entry per segment, carrying the segment's task-local
  // prefix offset so probes map hits back to task bytes.
  std::vector<RefPiece> pieces;
  CollectPieces(task.task, /*dst_side=*/true, 0, task.task.length, &pieces);
  for (const RefPiece& p : pieces) {
    client.range_index.Insert(RangeIndex::Side::kDst, p.ref.domain(), p.ref.start(), p.length,
                              task.order, &task, p.task_offset);
  }
  pieces.clear();
  CollectPieces(task.task, /*dst_side=*/false, 0, task.task.length, &pieces);
  for (const RefPiece& p : pieces) {
    client.range_index.Insert(RangeIndex::Side::kSrc, p.ref.domain(), p.ref.start(), p.length,
                              task.order, &task, p.task_offset);
  }
  task.in_range_index = true;
  stats_.index_entries = client.range_index.size();
}

void Engine::IndexErase(Client& client, PendingTask& task) {
  if (!task.in_range_index) {
    return;
  }
  std::vector<RefPiece> pieces;
  CollectPieces(task.task, /*dst_side=*/true, 0, task.task.length, &pieces);
  for (const RefPiece& p : pieces) {
    client.range_index.Erase(RangeIndex::Side::kDst, p.ref.domain(), p.ref.start(), task.order);
  }
  pieces.clear();
  CollectPieces(task.task, /*dst_side=*/false, 0, task.task.length, &pieces);
  for (const RefPiece& p : pieces) {
    client.range_index.Erase(RangeIndex::Side::kSrc, p.ref.domain(), p.ref.start(), task.order);
  }
  task.in_range_index = false;
  stats_.index_entries = client.range_index.size();
}

void Engine::OnTaskDone(Client& client, PendingTask& task) {
  if (task.done_processed) {
    return;
  }
  task.done_processed = true;
  IndexErase(client, task);
  // Log the write so a still-pending earlier task executing late cannot
  // overwrite it (WAW); pruned in RetireDone once no earlier task remains.
  // One log entry per contiguous destination piece.
  if (!task.aborted) {
    std::vector<RefPiece> pieces;
    CollectPieces(task.task, /*dst_side=*/true, 0, task.task.length, &pieces);
    for (const RefPiece& p : pieces) {
      client.completed_writes.push_back(
          Client::CompletedWrite{task.gseq, p.ref.domain(), p.ref.start(), p.length});
    }
  }
  if (cross_ != nullptr && task.shared_visible) {
    cross_->UnregisterShared(client, task);
  }
}

bool Engine::HasAnyConflict(Client& client, const PendingTask& self) {
  const CopyTask& b = self.task;
  if (config_.enable_range_index) {
    bool conflict = false;
    const auto probe = [&](RangeIndex::Side side, const RefPiece& p) {
      if (conflict) {
        return;
      }
      ++stats_.dep_probes;
      ChargeCtx(ctx_, timing_->absorption_match_cycles);
      stats_.dep_tasks_scanned += client.range_index.ForEachOverlap(
          side, p.ref.domain(), p.ref.start(), p.length, [&](const RangeIndex::Entry& entry) {
            if (entry.task != &self && !entry.task->Done()) {
              conflict = true;
              return false;
            }
            return true;
          });
    };
    std::vector<RefPiece> pieces;
    CollectPieces(b, /*dst_side=*/true, 0, b.length, &pieces);
    for (const RefPiece& p : pieces) {
      probe(RangeIndex::Side::kDst, p);  // WAW: another writer of our dst
      probe(RangeIndex::Side::kSrc, p);  // WAR: a reader of our dst
    }
    pieces.clear();
    CollectPieces(b, /*dst_side=*/false, 0, b.length, &pieces);
    for (const RefPiece& p : pieces) {
      probe(RangeIndex::Side::kDst, p);  // RAW: a writer of our src
    }
    return conflict;
  }
  for (const auto& other : client.pending) {
    ChargeCtx(ctx_, timing_->absorption_match_cycles);
    ++stats_.dep_tasks_scanned;
    if (other.get() == &self || other->Done()) {
      continue;
    }
    const CopyTask& a = other->task;
    if (SidesOverlap(a, /*a_dst=*/true, b, /*b_dst=*/true) ||
        SidesOverlap(a, /*a_dst=*/true, b, /*b_dst=*/false) ||
        SidesOverlap(a, /*a_dst=*/false, b, /*b_dst=*/true)) {
      return true;
    }
  }
  return false;
}

bool Engine::HasEarlierLiveWriter(Client& client, const PendingTask& reader) {
  const CopyTask& b = reader.task;
  if (config_.enable_range_index) {
    bool found = false;
    std::vector<RefPiece> pieces;
    CollectPieces(b, /*dst_side=*/false, 0, b.length, &pieces);
    for (const RefPiece& p : pieces) {
      ++stats_.dep_probes;
      ChargeCtx(ctx_, timing_->absorption_match_cycles);
      stats_.dep_tasks_scanned += client.range_index.ForEachOverlap(
          RangeIndex::Side::kDst, p.ref.domain(), p.ref.start(), p.length,
          [&](const RangeIndex::Entry& entry) {
            if (entry.order < reader.order && !entry.task->Done()) {
              found = true;
              return false;
            }
            return true;
          });
      if (found) {
        break;
      }
    }
    return found;
  }
  for (const auto& other : client.pending) {
    ChargeCtx(ctx_, timing_->absorption_match_cycles);
    ++stats_.dep_tasks_scanned;
    if (other->order < reader.order && !other->Done() &&
        SidesOverlap(other->task, /*a_dst=*/true, b, /*b_dst=*/false)) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Asynchronous DMA completion (DESIGN.md §9)
// ---------------------------------------------------------------------------

uint64_t Engine::ReapParkedDma(Client& client, Cycles now) {
  if (client.parked_dma.empty()) {
    return 0;
  }
  // Land ripe batches in completion order (ties: submission order), so
  // progress marks, SG-segment credits and completion handlers replay exactly
  // as the hardware retired them.
  std::vector<size_t> ripe;
  for (size_t i = 0; i < client.parked_dma.size(); ++i) {
    if (client.parked_dma[i].completion_time <= now) {
      ripe.push_back(i);
    }
  }
  if (ripe.empty()) {
    return 0;
  }
  std::stable_sort(ripe.begin(), ripe.end(), [&client](size_t a, size_t b) {
    return client.parked_dma[a].completion_time < client.parked_dma[b].completion_time;
  });
  uint64_t landed = 0;
  for (size_t i : ripe) {
    Client::ParkedDma& batch = client.parked_dma[i];
    // One completion check per batch — the charge the blocking path paid.
    ChargeCtx(ctx_, timing_->dma_completion_check_cycles);
    stats_.dma_bytes_completed += batch.bytes;
    ++stats_.dma_batches_completed;
    landed += batch.bytes;
    for (const Client::ParkedDma::Seg& seg : batch.segs) {
      std::erase(seg.task->dma_parked, std::make_pair(seg.offset, seg.offset + seg.length));
      MarkProgress(client, *seg.task, seg.offset, seg.length, batch.completion_time);
    }
    client.dma_inflight_bytes.fetch_sub(batch.bytes, std::memory_order_relaxed);
  }
  // Erase reaped entries back-to-front so earlier indices stay valid.
  std::sort(ripe.begin(), ripe.end(), std::greater<size_t>());
  for (size_t i : ripe) {
    client.parked_dma.erase(client.parked_dma.begin() + static_cast<ptrdiff_t>(i));
  }
  // Handlers deferred behind the landed batches fire now, in task order —
  // never in batch-completion order, which multi-channel submission permutes.
  FireOrderedCompletions(client, now);
  return landed;
}

bool Engine::HasEarlierParked(const Client& client, uint64_t order) const {
  for (const Client::ParkedDma& batch : client.parked_dma) {
    for (const Client::ParkedDma::Seg& seg : batch.segs) {
      if (seg.task->order < order) {
        return true;
      }
    }
  }
  return false;
}

void Engine::FireOrderedCompletions(Client& client, Cycles when) {
  for (auto& pending : client.pending) {
    PendingTask& task = *pending;
    if (!task.dma_parked.empty()) {
      break;  // everything behind this task waits for its landing
    }
    if (task.handler_fired) {
      continue;
    }
    if (task.task.sg != nullptr) {
      FireReadySgSegments(client, task, when);
    }
    if (task.Done()) {
      CompleteTask(client, task);
    }
  }
}

void Engine::SettleParkedRange(Client& client, PendingTask& task, size_t offset, size_t length) {
  if (client.parked_dma.empty()) {
    return;
  }
  const size_t end = offset + length;
  Cycles target = 0;
  for (const Client::ParkedDma& batch : client.parked_dma) {
    for (const Client::ParkedDma::Seg& seg : batch.segs) {
      if (seg.task == &task && seg.offset < end && seg.offset + seg.length > offset) {
        target = std::max(target, batch.completion_time);
        break;
      }
    }
  }
  if (target == 0) {
    return;  // nothing of this range is in flight
  }
  if (ctx_ != nullptr && target > ctx_->now()) {
    stats_.dma_drain_wait_cycles += target - ctx_->now();
    ctx_->WaitUntil(target);
  }
  ReapParkedDma(client, CtxNow(ctx_));
}

// ---------------------------------------------------------------------------
// Top-level serving
// ---------------------------------------------------------------------------

uint64_t Engine::ServeClient(Client& client, uint64_t max_bytes) {
  const Cycles serve_start = CtxNow(ctx_);
  ChargeCtx(ctx_, timing_->poll_iteration_cycles);
  // Land whatever the hardware finished since the last serve before taking
  // new work: reaps unblock csync gates and retire parked tasks. This is the
  // scheduler-integrated reaper — FinishServe re-queues a client that still
  // has pending (possibly only parked) tasks, so the next pick lands here.
  ReapParkedDma(client, CtxNow(ctx_));
  IngestClient(client);
  ProcessSyncQueues(client);
  const uint64_t served = ExecutePending(client, max_bytes);
  ReapParkedDma(client, CtxNow(ctx_));
  if (served == 0 && !client.parked_dma.empty()) {
    // Nothing executable and nothing newly landed: only in-flight hardware
    // remains. Advance to the completions instead of spinning serve after
    // serve with the clock stuck before them (virtual time moves only by
    // charges and waits). The wait is drain time, not an execution stall —
    // the engine had no other work for this client.
    while (!client.parked_dma.empty()) {
      Cycles earliest = client.parked_dma.front().completion_time;
      for (const Client::ParkedDma& batch : client.parked_dma) {
        earliest = std::min(earliest, batch.completion_time);
      }
      if (ctx_ != nullptr && earliest > ctx_->now()) {
        stats_.dma_drain_wait_cycles += earliest - ctx_->now();
        ctx_->WaitUntil(earliest);
      }
      ReapParkedDma(client, CtxNow(ctx_));
    }
    RetireDone(client);
  }
  dma_.Poll(CtxNow(ctx_));
  // Attribute CoW breaks of remap-aliased pages (the lazily materialized
  // copies) to the serving engine. Delta-sampled: the space's counter is
  // monotonic and this engine holds the client's serving claim.
  if (client.space() != nullptr) {
    const uint64_t breaks = client.space()->alias_cow_breaks();
    if (breaks > client.alias_breaks_seen) {
      stats_.remap_cow_breaks += breaks - client.alias_breaks_seen;
      client.alias_breaks_seen = breaks;
    }
  }
  stats_.serve_cycles += CtxNow(ctx_) - serve_start;
  return served;
}

void Engine::DrainClient(Client& client) {
  // Two passes may be required: executing tasks can fire KFUNCs that submit
  // more tasks (e.g. skb reclamation rarely does, but be safe) — loop until
  // no work remains.
  for (int i = 0; i < 64; ++i) {
    if (!client.HasQueuedWork()) {
      return;
    }
    ServeClient(client, UINT64_MAX);
  }
}

}  // namespace copier::core
