// RangeIndex — ordered interval index over the live (non-Done) pending tasks
// of one client.
//
// Every coordination decision the Engine makes on the hot path — RAW/WAW/WAR
// dependency resolution (§4.2.2), layered-absorption producer lookup (§4.4),
// sync-driven promotion and abort matching (§4.1, §4.4) — is an interval
// question: "which live tasks touch [addr, addr+len) of this domain?".
// Answering it by scanning the whole pending list makes every lookup
// O(pending) and deep-queue workloads O(n²). This index answers it in
// O(log n + k), where k is the number of entries that actually overlap.
//
// Two entry sets are kept, one for destination ranges and one for source
// ranges of live pending tasks. Entries are keyed on (domain, address) packed
// into a single 128-bit coordinate so ranges from different address spaces
// never compare as neighbours. Each set is a treap augmented with the
// subtree-max interval end (a classic dynamic interval tree), giving
// O(log n) expected insert/erase and O(log n + k) overlap enumeration.
//
// Invariants (maintained by the Engine, see DESIGN.md "Pending-range
// interval index"):
//   * entries exist exactly for tasks in client.pending with !Done();
//   * a task contributes one kDst and one kSrc entry per contiguous piece of
//     each side — exactly one each for plain tasks, one per segment for the
//     scatter-gather side of a vectored task — inserted in AcceptTask and
//     erased at its Done transition (completion, abort, or drop), with a
//     final safety prune in RetireDone;
//   * keys are (domain, start, order); `order` disambiguates tasks naming
//     identical ranges, so erase is exact and enumeration order is
//     deterministic: ascending (address, order).
#ifndef COPIER_SRC_CORE_RANGE_INDEX_H_
#define COPIER_SRC_CORE_RANGE_INDEX_H_

#include <cstddef>
#include <cstdint>

namespace copier::core {

struct PendingTask;

class RangeIndex {
 public:
  enum class Side : uint8_t { kDst = 0, kSrc = 1 };

  // One live interval, handed to ForEachOverlap callbacks. `start`/`length`
  // are the entry's own range (not clipped to the probe window).
  // `task_offset` is the task-local byte the entry starts at: 0 for a
  // contiguous task side, the segment's prefix offset for a scatter-gather
  // side (which contributes one entry per segment). An address `a` inside the
  // entry maps to task-local byte (a - start) + task_offset.
  struct Entry {
    PendingTask* task;
    uint64_t order;
    uint64_t start;
    size_t length;
    size_t task_offset;
  };

  RangeIndex() = default;
  ~RangeIndex();
  RangeIndex(const RangeIndex&) = delete;
  RangeIndex& operator=(const RangeIndex&) = delete;

  void Insert(Side side, uint64_t domain, uint64_t start, size_t length, uint64_t order,
              PendingTask* task, size_t task_offset = 0);
  // Erases the entry inserted under the same (side, domain, start, order);
  // no-op when absent.
  void Erase(Side side, uint64_t domain, uint64_t start, uint64_t order);

  // Invokes fn(Entry) for every entry on `side` overlapping
  // [start, start + length) of `domain`, in ascending (address, order) order.
  // fn returning false stops the enumeration early. Returns the number of
  // entries fn was invoked on (the probe's candidate count).
  template <typename Fn>
  size_t ForEachOverlap(Side side, uint64_t domain, uint64_t start, size_t length,
                        Fn&& fn) const {
    if (length == 0) {
      return 0;
    }
    const Coord lo = Pack(domain, start);
    size_t touched = 0;
    Visit(roots_[static_cast<size_t>(side)], lo, lo + length, fn, &touched);
    return touched;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  // (domain, address) packed so interval arithmetic stays one-dimensional.
  // A range never crosses its domain's 2^64 boundary (task validation
  // rejects wrapping virtual ranges and host buffers cannot wrap).
  using Coord = unsigned __int128;

  static Coord Pack(uint64_t domain, uint64_t addr) {
    return (static_cast<Coord>(domain) << 64) | addr;
  }

  struct Node {
    Coord lo;      // (domain, start)
    Coord hi;      // lo + length
    Coord max_hi;  // max hi over this node's subtree (interval-tree augment)
    uint64_t order;
    size_t task_offset;
    PendingTask* task;
    uint32_t priority;
    Node* left = nullptr;
    Node* right = nullptr;
  };

  static bool KeyLess(Coord lo, uint64_t order, const Node& n) {
    return lo != n.lo ? lo < n.lo : order < n.order;
  }

  static void Update(Node* n);
  static Node* RotateLeft(Node* n);
  static Node* RotateRight(Node* n);
  static Node* InsertNode(Node* n, Node* fresh);
  static Node* EraseNode(Node* n, Coord lo, uint64_t order, bool* erased);
  static void FreeTree(Node* n);

  // Interval-tree walk: prunes subtrees whose max_hi ends at or before the
  // window, and right subtrees once keys pass the window's end.
  template <typename Fn>
  static bool Visit(const Node* n, Coord qlo, Coord qhi, Fn& fn, size_t* touched) {
    if (n == nullptr || n->max_hi <= qlo) {
      return true;
    }
    if (!Visit(n->left, qlo, qhi, fn, touched)) {
      return false;
    }
    if (n->lo >= qhi) {
      return true;  // this node and its whole right subtree start past the window
    }
    if (n->hi > qlo) {
      ++*touched;
      Entry entry{n->task, n->order, static_cast<uint64_t>(n->lo),
                  static_cast<size_t>(n->hi - n->lo), n->task_offset};
      if (!fn(entry)) {
        return false;
      }
    }
    return Visit(n->right, qlo, qhi, fn, touched);
  }

  uint32_t NextPriority() {
    prio_state_ ^= prio_state_ << 13;
    prio_state_ ^= prio_state_ >> 17;
    prio_state_ ^= prio_state_ << 5;
    return prio_state_;
  }

  Node* roots_[2] = {nullptr, nullptr};
  size_t size_ = 0;
  uint32_t prio_state_ = 0x9e3779b9u;  // deterministic treap rebalancing
};

}  // namespace copier::core

#endif  // COPIER_SRC_CORE_RANGE_INDEX_H_
