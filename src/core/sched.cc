#include "src/core/sched.h"

namespace copier::core {

void ShardRunQueue::Insert(Client& client) {
  Cgroup* group = client.cgroup;
  Bucket& bucket = buckets_[group];
  if (bucket.clients.empty()) {
    bucket.group_key = group->vruntime();
    groups_.insert({bucket.group_key, group});
  }
  client.sched_key = client.total_copy_length.load(std::memory_order_relaxed);
  bucket.clients.insert({client.sched_key, &client});
  size_.fetch_add(1, std::memory_order_relaxed);
}

Client* ShardRunQueue::PopMin() {
  if (groups_.empty()) {
    return nullptr;
  }
  const auto group_it = groups_.begin();
  Cgroup* group = group_it->second;
  const auto bucket_it = buckets_.find(group);
  Bucket& bucket = bucket_it->second;
  const auto client_it = bucket.clients.begin();
  Client* client = client_it->second;
  bucket.clients.erase(client_it);
  if (bucket.clients.empty()) {
    groups_.erase(group_it);
    buckets_.erase(bucket_it);
  }
  size_.fetch_sub(1, std::memory_order_relaxed);
  return client;
}

Client* ShardRunQueue::PopMaxBacklog() {
  Cgroup* best_group = nullptr;
  Client* best = nullptr;
  uint64_t best_backlog = 0;
  for (auto& [group, bucket] : buckets_) {
    for (const auto& [key, client] : bucket.clients) {
      const uint64_t backlog = client->BacklogBytes();
      if (best == nullptr || backlog > best_backlog) {
        best_group = group;
        best = client;
        best_backlog = backlog;
      }
    }
  }
  if (best != nullptr) {
    EraseFromBucket(buckets_[best_group], best_group, *best);
  }
  return best;
}

bool ShardRunQueue::Remove(Client& client) {
  const auto bucket_it = buckets_.find(client.cgroup);
  if (bucket_it == buckets_.end()) {
    return false;
  }
  if (bucket_it->second.clients.erase({client.sched_key, &client}) == 0) {
    return false;
  }
  if (bucket_it->second.clients.empty()) {
    groups_.erase({bucket_it->second.group_key, client.cgroup});
    buckets_.erase(bucket_it);
  }
  size_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void ShardRunQueue::EraseFromBucket(Bucket& bucket, Cgroup* group, Client& client) {
  bucket.clients.erase({client.sched_key, &client});
  if (bucket.clients.empty()) {
    groups_.erase({bucket.group_key, group});
    buckets_.erase(group);  // invalidates `bucket`; must be the last touch
  }
  size_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace copier::core
