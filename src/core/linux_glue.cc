#include "src/core/linux_glue.h"

#include <algorithm>
#include <thread>

#include "src/common/logging.h"
#include "src/hw/copy_unit.h"

namespace copier::core {

Status WaitDescriptor(const Descriptor& descriptor, size_t offset, size_t length,
                      ExecContext* ctx, const std::function<void()>& pump) {
  uint64_t spins = 0;
  while (!descriptor.RangeReady(offset, length)) {
    ++spins;
    if (pump) {
      pump();
      // A pumped wait that makes no progress for this long is a lost-copy
      // bug, not a slow copy: fail loudly instead of spinning forever. (In
      // threaded mode the pump is a wakeup, so the bound is generous and the
      // spin yields to let service threads run.)
      COPIER_CHECK(spins < (1u << 24))
          << "csync stuck: descriptor range [" << offset << ", " << offset + length
          << ") never became ready";
      if (spins % 512 == 0) {
        std::this_thread::yield();
      }
    } else {
      if (spins % 1024 == 0) {
        std::this_thread::yield();
      }
    }
  }
  if (descriptor.failed()) {
    return FaultError("copy task dropped; descriptor failed");
  }
  if (ctx != nullptr) {
    ctx->WaitUntil(descriptor.ReadyTime(offset, length));
  }
  return OkStatus();
}

CopierLinux::CopierLinux(CopierService* service, simos::SimKernel* kernel)
    : service_(service), kernel_(kernel), fallback_(&kernel->timing()) {}

CopierLinux::~CopierLinux() = default;

void CopierLinux::Install() {
  kernel_->SetCopyBackend(this);
  kernel_->SetTrapHooks(this);
}

Client* CopierLinux::ClientFor(simos::Process& proc) {
  const uint64_t id = proc.copier_client_id();
  if (id == 0) {
    return nullptr;
  }
  return service_->ClientById(id);
}

void CopierLinux::OnTrapEnter(simos::Process& proc, ExecContext* ctx) {
  std::lock_guard<std::mutex> lock(mu_);
  SyscallState& state = syscall_state_[proc.pid()];
  state.in_syscall = true;
  state.barrier_submitted = false;
}

void CopierLinux::OnTrapExit(simos::Process& proc, ExecContext* ctx) {
  Client* client = ClientFor(proc);
  bool emit_exit = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SyscallState& state = syscall_state_[proc.pid()];
    emit_exit = state.in_syscall && state.barrier_submitted;
    state.in_syscall = false;
    state.barrier_submitted = false;
  }
  if (emit_exit && client != nullptr) {
    CopyQueueEntry exit_barrier;
    exit_barrier.kind = CopyQueueEntry::Kind::kBarrierExit;
    // The exit barrier closes the syscall's k-mode bracket (§4.2.1); the ring
    // is sized so this cannot fail while the bracket is open.
    COPIER_CHECK(client->default_pair().kernel.copy_q.TryPush(std::move(exit_barrier)));
  }
}

bool CopierLinux::BracketOpen(uint32_t pid) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = syscall_state_.find(pid);
  return it != syscall_state_.end() && it->second.in_syscall && it->second.barrier_submitted;
}

Status CopierLinux::Copy(const simos::UserCopyOp& op) {
  Client* client = ClientFor(*op.proc);
  if (client == nullptr) {
    // Process not attached to Copier: stock kernel behaviour.
    return fallback_.Copy(op);
  }
  QueuePair& pair = client->default_pair();

  // Lazily submit the enter barrier before the syscall's first Copy Task,
  // recording the current u-mode queue position (§4.2.1).
  {
    std::lock_guard<std::mutex> lock(mu_);
    SyscallState& state = syscall_state_[op.proc->pid()];
    if (state.in_syscall && !state.barrier_submitted) {
      CopyQueueEntry barrier;
      barrier.kind = CopyQueueEntry::Kind::kBarrierEnter;
      barrier.user_queue_position = pair.user.copy_q.HeadPosition();
      if (!pair.kernel.copy_q.TryPush(std::move(barrier))) {
        return fallback_.Copy(op);  // ring full: fall back to sync copy
      }
      state.barrier_submitted = true;
    }
  }

  CopyQueueEntry entry;
  entry.kind = CopyQueueEntry::Kind::kCopy;
  CopyTask& task = entry.task;
  if (op.to_user) {
    task.dst = MemRef::User(&op.proc->mem(), op.user_va);
    task.src = MemRef::Kernel(op.kernel_buf);
  } else {
    task.dst = MemRef::Kernel(op.kernel_buf);
    task.src = MemRef::User(&op.proc->mem(), op.user_va);
  }
  task.length = op.length;
  task.descriptor = static_cast<Descriptor*>(op.descriptor);
  task.descriptor_offset = op.descriptor_offset;
  task.type = op.lazy ? TaskType::kLazy : TaskType::kNormal;
  task.submit_time = CtxNow(op.ctx);
  if (op.on_complete) {
    task.handler = PostHandler::KernelFunc(op.on_complete);
  }

  ChargeCtx(op.ctx, service_->timing().task_submit_cycles);
  if (!pair.kernel.copy_q.TryPush(std::move(entry))) {
    return fallback_.Copy(op);  // ring full: synchronous fallback (§4.6)
  }
  service_->NotifyRunnable(*client, op.length);
  return OkStatus();
}

Status CopierLinux::SyncKernel(simos::Process* proc, ExecContext* ctx) {
  Client* client = proc != nullptr ? ClientFor(*proc) : nullptr;
  if (client == nullptr) {
    return OkStatus();
  }
  if (service_->mode() == CopierService::Mode::kManual) {
    service_->Serve(*client);
    if (ctx != nullptr) {
      ctx->WaitUntil(service_->engine_ctx().now());
    }
  } else {
    while (client->HasQueuedWork()) {
      service_->NotifyRunnable(*client);
      std::this_thread::yield();
    }
  }
  return OkStatus();
}

void CopierLinux::AccelerateCow(simos::Process& proc, double handler_fraction) {
  Client* client = ClientFor(proc);
  COPIER_CHECK(client != nullptr) << "AccelerateCow requires an attached process";
  CopierService* service = service_;
  const hw::TimingModel* timing = &kernel_->timing();
  proc.mem().SetCowCopyFn([service, client, timing, handler_fraction](
                              void* dst, const void* src, size_t len, ExecContext* ctx) {
    // Split the copy: Copier takes the tail, the fault handler copies the
    // head itself in parallel, then syncs before the PTE update (§5.2).
    const size_t handler_part =
        std::min(len, AlignUp(static_cast<size_t>(len * handler_fraction), 64));
    const size_t copier_part = len - handler_part;

    Descriptor descriptor(copier_part);
    if (copier_part > 0) {
      CopyQueueEntry entry;
      entry.kind = CopyQueueEntry::Kind::kCopy;
      entry.task.dst = MemRef::Kernel(static_cast<uint8_t*>(dst) + handler_part);
      entry.task.src = MemRef::Kernel(
          const_cast<uint8_t*>(static_cast<const uint8_t*>(src)) + handler_part);
      entry.task.length = copier_part;
      entry.task.descriptor = &descriptor;
      entry.task.submit_time = CtxNow(ctx);
      ChargeCtx(ctx, timing->task_submit_cycles);
      if (!client->default_pair().kernel.copy_q.TryPush(std::move(entry))) {
        // Ring full: plain synchronous copy of the whole page block.
        hw::ErmsCopy(dst, src, len);
        ChargeCtx(ctx, timing->CpuCopyCycles(hw::CopyUnitKind::kErms, len));
        return;
      }
      service->NotifyRunnable(*client, copier_part);
    }

    // Handler's own share, overlapped with Copier's.
    hw::ErmsCopy(dst, src, handler_part);
    ChargeCtx(ctx, timing->CpuCopyCycles(hw::CopyUnitKind::kErms, handler_part));

    if (copier_part > 0) {
      std::function<void()> pump;
      if (service->mode() == CopierService::Mode::kManual) {
        pump = [service, client] { service->Serve(*client); };
      }
      COPIER_CHECK_OK(WaitDescriptor(descriptor, 0, copier_part, ctx, pump));
    }
  });
}

}  // namespace copier::core
