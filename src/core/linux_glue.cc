#include "src/core/linux_glue.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "src/common/logging.h"
#include "src/hw/copy_unit.h"

namespace copier::core {

Status WaitDescriptor(const Descriptor& descriptor, size_t offset, size_t length,
                      ExecContext* ctx, const std::function<void()>& pump) {
  uint64_t spins = 0;
  while (!descriptor.RangeReady(offset, length)) {
    ++spins;
    if (pump) {
      pump();
      // A pumped wait that makes no progress for this long is a lost-copy
      // bug, not a slow copy: fail loudly instead of spinning forever. (In
      // threaded mode the pump is a wakeup, so the bound is generous and the
      // spin yields to let service threads run.)
      COPIER_CHECK(spins < (1u << 24))
          << "csync stuck: descriptor range [" << offset << ", " << offset + length
          << ") never became ready";
      if (spins % 512 == 0) {
        std::this_thread::yield();
      }
    } else {
      if (spins % 1024 == 0) {
        std::this_thread::yield();
      }
    }
  }
  if (descriptor.failed()) {
    return FaultError("copy task dropped; descriptor failed");
  }
  if (ctx != nullptr) {
    ctx->WaitUntil(descriptor.ReadyTime(offset, length));
  }
  return OkStatus();
}

CopierLinux::CopierLinux(CopierService* service, simos::SimKernel* kernel)
    : service_(service), kernel_(kernel), fallback_(&kernel->timing()) {}

CopierLinux::~CopierLinux() = default;

void CopierLinux::Install() {
  kernel_->SetCopyBackend(this);
  kernel_->SetTrapHooks(this);
}

Client* CopierLinux::ClientFor(simos::Process& proc) {
  const uint64_t id = proc.copier_client_id();
  if (id == 0) {
    return nullptr;
  }
  return service_->ClientById(id);
}

void CopierLinux::OnTrapEnter(simos::Process& proc, ExecContext* ctx) {
  Client* client = ClientFor(proc);
  if (client != nullptr) {
    client->ksyscall.in_syscall = true;
    client->ksyscall.barrier_submitted = false;
  }
  (void)ctx;
}

void CopierLinux::OnTrapExit(simos::Process& proc, ExecContext* ctx) {
  Client* client = ClientFor(proc);
  if (client == nullptr) {
    return;
  }
  const bool emit_exit = client->ksyscall.in_syscall && client->ksyscall.barrier_submitted;
  client->ksyscall.in_syscall = false;
  client->ksyscall.barrier_submitted = false;
  if (emit_exit) {
    CopyQueueEntry exit_barrier;
    exit_barrier.kind = CopyQueueEntry::Kind::kBarrierExit;
    // The exit barrier closes the syscall's k-mode bracket (§4.2.1); the ring
    // is sized so this cannot fail while the bracket is open.
    COPIER_CHECK(client->default_pair().kernel.copy_q.TryPush(std::move(exit_barrier)));
  }
  (void)ctx;
}

bool CopierLinux::BracketOpen(simos::Process& proc) {
  Client* client = ClientFor(proc);
  return client != nullptr && client->ksyscall.in_syscall && client->ksyscall.barrier_submitted;
}

bool CopierLinux::EnsureEnterBarrier(Client& client, QueuePair& pair) {
  if (!client.ksyscall.in_syscall || client.ksyscall.barrier_submitted) {
    return true;
  }
  CopyQueueEntry barrier;
  barrier.kind = CopyQueueEntry::Kind::kBarrierEnter;
  barrier.user_queue_position = pair.user.copy_q.HeadPosition();
  if (!pair.kernel.copy_q.TryPush(std::move(barrier))) {
    return false;  // ring full
  }
  client.ksyscall.barrier_submitted = true;
  return true;
}

Status CopierLinux::Copy(const simos::UserCopyOp& op) {
  Client* client = ClientFor(*op.proc);
  if (client == nullptr) {
    // Process not attached to Copier: stock kernel behaviour.
    return fallback_.Copy(op);
  }
  QueuePair& pair = client->default_pair();

  // Lazily submit the enter barrier before the syscall's first Copy Task,
  // recording the current u-mode queue position (§4.2.1).
  if (!EnsureEnterBarrier(*client, pair)) {
    return fallback_.Copy(op);  // ring full: fall back to sync copy
  }

  CopyQueueEntry entry;
  entry.kind = CopyQueueEntry::Kind::kCopy;
  CopyTask& task = entry.task;
  if (op.to_user) {
    task.dst = MemRef::User(&op.proc->mem(), op.user_va);
    task.src = MemRef::Kernel(op.kernel_buf);
  } else {
    task.dst = MemRef::Kernel(op.kernel_buf);
    task.src = MemRef::User(&op.proc->mem(), op.user_va);
  }
  task.length = op.length;
  task.descriptor = static_cast<Descriptor*>(op.descriptor);
  task.descriptor_offset = op.descriptor_offset;
  task.type = op.lazy ? TaskType::kLazy : TaskType::kNormal;
  task.submit_time = CtxNow(op.ctx);
  task.gseq = service_->AllocateGlobalSeq();
  if (op.on_complete) {
    task.handler = PostHandler::KernelFunc(op.on_complete);
  }

  ChargeCtx(op.ctx, service_->timing().task_submit_cycles);
  const uint64_t gseq = task.gseq;
  if (!pair.kernel.copy_q.TryPush(std::move(entry))) {
    // Stamped but never queued: retire the sequence before falling back.
    service_->RetireGlobalSeq(gseq);
    return fallback_.Copy(op);  // ring full: synchronous fallback (§4.6)
  }
  service_->NotifyRunnable(*client, op.length);
  return OkStatus();
}

Status CopierLinux::CopyVSync(const simos::UserCopyVecOp& op, size_t* segs_submitted) {
  simos::UserCopyOp seg_op;
  seg_op.proc = op.proc;
  seg_op.to_user = op.to_user;
  seg_op.lazy = op.lazy;
  seg_op.ctx = op.ctx;
  uint64_t va = op.user_va;
  size_t descriptor_offset = op.descriptor_offset;
  size_t submitted = 0;
  for (const simos::UserCopySeg& seg : op.segs) {
    seg_op.user_va = va;
    seg_op.kernel_buf = seg.kernel_buf;
    seg_op.length = seg.length;
    seg_op.on_complete = seg.on_complete;
    Status status = fallback_.Copy(seg_op);
    if (!status.ok()) {
      if (segs_submitted != nullptr) {
        *segs_submitted = submitted;
      }
      return status;
    }
    // The synchronous baseline has no engine to mark progress; completed
    // bytes are ready immediately.
    if (op.descriptor != nullptr) {
      static_cast<Descriptor*>(op.descriptor)
          ->MarkRange(descriptor_offset, seg.length, CtxNow(op.ctx));
    }
    ++submitted;
    va += seg.length;
    descriptor_offset += seg.length;
  }
  if (segs_submitted != nullptr) {
    *segs_submitted = submitted;
  }
  return OkStatus();
}

Status CopierLinux::CopyV(const simos::UserCopyVecOp& op, size_t* segs_submitted) {
  // The task rides the submitter's queue; the user side still resolves in
  // op.proc's space (posted-window drains land in the receiver's window from
  // the sender's syscall).
  simos::Process* submitter = op.submit_proc != nullptr ? op.submit_proc : op.proc;
  const bool cross_client = op.submit_proc != nullptr && op.submit_proc != op.proc;
  Client* client = submitter != nullptr ? ClientFor(*submitter) : nullptr;
  if (client == nullptr || !service_->config().enable_vectored_submit) {
    // Per-segment path: unattached process (stock kernel behaviour) or the
    // per-op ablation baseline.
    if (cross_client) {
      return CopyVSync(op, segs_submitted);
    }
    return KernelCopyBackend::CopyV(op, segs_submitted);
  }
  if (op.segs.empty()) {
    if (segs_submitted != nullptr) {
      *segs_submitted = 0;
    }
    return OkStatus();
  }
  QueuePair& pair = client->default_pair();

  // One ring transaction for the whole syscall: the enter barrier (when this
  // is the bracket's first submission) and the scatter-gather Copy Task are
  // reserved together and published with a single release (§4.2.1 ordering is
  // preserved — the barrier occupies the earlier slot).
  const bool need_barrier =
      client->ksyscall.in_syscall && !client->ksyscall.barrier_submitted;
  MpscRingBuffer<CopyQueueEntry>::Batch batch;
  if (!pair.kernel.copy_q.TryReserveBatch(need_barrier ? 2 : 1, &batch)) {
    // Ring full: per-segment fallback (which itself falls back to the
    // synchronous copy per segment when the ring stays full).
    if (cross_client) {
      return CopyVSync(op, segs_submitted);
    }
    return KernelCopyBackend::CopyV(op, segs_submitted);
  }
  size_t slot = 0;
  if (need_barrier) {
    CopyQueueEntry barrier;
    barrier.kind = CopyQueueEntry::Kind::kBarrierEnter;
    barrier.user_queue_position = pair.user.copy_q.HeadPosition();
    batch[slot++] = std::move(barrier);
    client->ksyscall.barrier_submitted = true;
  }

  auto sg = std::make_shared<SgList>();
  sg->kernel_is_dst = !op.to_user;
  sg->segs.reserve(op.segs.size());
  size_t total = 0;
  for (const simos::UserCopySeg& seg : op.segs) {
    sg->segs.push_back(SgSegment{seg.kernel_buf, seg.length, seg.on_complete});
    total += seg.length;
  }

  CopyQueueEntry entry;
  entry.kind = CopyQueueEntry::Kind::kCopy;
  CopyTask& task = entry.task;
  if (op.to_user) {
    task.dst = MemRef::User(&op.proc->mem(), op.user_va);
  } else {
    task.src = MemRef::User(&op.proc->mem(), op.user_va);
  }
  task.sg = std::move(sg);
  task.length = total;
  task.descriptor = static_cast<Descriptor*>(op.descriptor);
  task.descriptor_offset = op.descriptor_offset;
  task.type = op.lazy ? TaskType::kLazy : TaskType::kNormal;
  task.submit_time = CtxNow(op.ctx);
  task.gseq = service_->AllocateGlobalSeq();
  batch[slot] = std::move(entry);
  batch.Commit();

  // Amortized submission cost and ONE doorbell carrying the accumulated
  // length, however many segments the syscall gathered.
  ChargeCtx(op.ctx, service_->timing().task_submitv_base_cycles +
                        op.segs.size() * service_->timing().task_submitv_per_seg_cycles);
  service_->NotifyRunnable(*client, total);
  if (segs_submitted != nullptr) {
    *segs_submitted = op.segs.size();
  }
  return OkStatus();
}

bool CopierLinux::SupportsFusedIpc() const { return service_->config().enable_ipc_fuse; }

bool CopierLinux::SupportsRecvRing() const { return service_->config().enable_recv_ring; }

bool CopierLinux::SupportsForwardFuse() const {
  return service_->config().enable_ipc_fuse && service_->config().enable_forward_fuse;
}

void CopierLinux::NoteFuseEvent(simos::FuseEvent event) { service_->NoteIpcFuseEvent(event); }

void CopierLinux::RegisterWindow(simos::Process* proc, uint64_t va, size_t length,
                                 ExecContext* ctx) {
  // Posting a window is registration (DESIGN.md §12): like an RDMA MR or
  // io_uring provided buffers, the pages are walked once at post time —
  // faulted in, write-translated, and their translations published to the
  // service's address-transfer cache — so the fused task's DMA channels hit
  // warm entries instead of paying the per-page walk while the peer waits.
  // The receiver pays for the walk here, overlapped with the peer's send; a
  // later mapping change invalidates the entries through the usual listener.
  if (proc == nullptr || length == 0 || !SupportsFusedIpc() ||
      !service_->config().enable_atcache) {
    return;
  }
  simos::AddressSpace& space = proc->mem();
  const uint64_t first = PageBase(va);
  const uint64_t last = PageBase(va + length - 1);
  size_t pages = 0;
  for (uint64_t page = first; page <= last; page += kPageSize) {
    auto pfn_or = space.TranslateWrite(page, ctx);
    if (!pfn_or.ok()) {
      break;  // unmapped tail: the copy that tries to land there reports kFault
    }
    uint8_t* host = space.phys()->FrameData(*pfn_or);
    for (size_t i = 0; i < service_->engine_count(); ++i) {
      service_->engine(i).atcache().Insert(space.asid(), page, host, /*writable=*/true);
    }
    ++pages;
  }
  ChargeCtx(ctx, service_->timing().va_translate_cycles_per_page * pages);
}

Status CopierLinux::CopyFused(const simos::FusedCopyOp& op) {
  Client* client = op.src_proc != nullptr ? ClientFor(*op.src_proc) : nullptr;
  if (client == nullptr || !service_->config().enable_ipc_fuse) {
    return Unimplemented("fused IPC requires an attached sender");
  }
  COPIER_CHECK(op.dst_proc != nullptr && !op.chunks.empty());
  size_t chunk_total = 0;
  for (const simos::FusedChunk& chunk : op.chunks) {
    chunk_total += chunk.length;
  }
  COPIER_CHECK(chunk_total == op.length) << "fused chunks do not cover the transfer";

  QueuePair& pair = client->default_pair();
  const bool need_barrier =
      client->ksyscall.in_syscall && !client->ksyscall.barrier_submitted;
  MpscRingBuffer<CopyQueueEntry>::Batch batch;
  if (!pair.kernel.copy_q.TryReserveBatch(need_barrier ? 2 : 1, &batch)) {
    // No side effects yet: the kernel falls back to the two-step posted path.
    return ResourceExhausted("k-mode ring full for fused transfer");
  }
  size_t slot = 0;
  if (need_barrier) {
    CopyQueueEntry barrier;
    barrier.kind = CopyQueueEntry::Kind::kBarrierEnter;
    barrier.user_queue_position = pair.user.copy_q.HeadPosition();
    batch[slot++] = std::move(barrier);
    client->ksyscall.barrier_submitted = true;
  }

  // Source write-protection: a sender store into the in-flight range blocks
  // (pumping the service) until the copy lands, preserving the snapshot
  // semantics the two-step path gets by staging into skbs. Taken only after
  // the ring slots are reserved, so every lock has a task to resolve it.
  // A forward splice's prefix bytes are kernel-resident (already snapshotted
  // at rewrite time), so only the user payload tail is locked.
  const size_t pfx = op.src_prefix != nullptr ? op.src_prefix->size() : 0;
  COPIER_CHECK(pfx < op.length) << "prefix splice must carry user payload";
  simos::AddressSpace* src_space = &op.src_proc->mem();
  int lock_token = 0;
  if (op.protect_src) {
    CopierService* service = service_;
    std::function<void()> resolver;
    if (service->mode() == CopierService::Mode::kManual) {
      resolver = [service, client] { service->Serve(*client); };
    } else {
      resolver = [service, client] {
        service->NotifyRunnable(*client);
        std::this_thread::yield();
      };
    }
    lock_token = src_space->LockRangeForCopy(op.src_va, op.length - pfx, std::move(resolver));
  }

  // One bookkeeping segment per flow-control chunk: the engine's in-order
  // credit-and-fire machinery runs the reclaim KFUNCs chunk by chunk exactly
  // as the two-step path fires per-skb handlers. The last chunk also releases
  // the source lock — on completion and on abort alike (aborted tasks fire
  // their remaining segment handlers at retirement).
  auto sg = std::make_shared<SgList>();
  sg->bookkeeping = true;
  sg->prefix = op.src_prefix;
  sg->segs.reserve(op.chunks.size());
  for (size_t i = 0; i < op.chunks.size(); ++i) {
    std::function<void(Cycles)> fn = op.chunks[i].on_complete;
    if (i + 1 == op.chunks.size()) {
      if (op.protect_src) {
        fn = [src_space, lock_token, inner = std::move(fn)](Cycles when) {
          src_space->UnlockRangeForCopy(lock_token);
          if (inner) {
            inner(when);
          }
        };
      }
      // Proxy-transparent forwarding: the window the forward bypassed still
      // owes its poster a completion — the proxy's wait on that descriptor
      // resolves when the forwarded payload has fully landed downstream.
      if (op.bypassed_descriptor != nullptr && op.bypassed_length > 0) {
        Descriptor* bypassed = static_cast<Descriptor*>(op.bypassed_descriptor);
        const size_t bypassed_length = op.bypassed_length;
        fn = [bypassed, bypassed_length, inner = std::move(fn)](Cycles when) {
          bypassed->MarkRange(0, bypassed_length, when);
          if (inner) {
            inner(when);
          }
        };
      }
    }
    sg->segs.push_back(SgSegment{nullptr, op.chunks[i].length, std::move(fn)});
  }

  CopyQueueEntry entry;
  entry.kind = CopyQueueEntry::Kind::kCopy;
  CopyTask& task = entry.task;
  task.dst = MemRef::User(&op.dst_proc->mem(), op.dst_va);
  task.src = MemRef::User(src_space, op.src_va);
  task.length = op.length;
  task.descriptor = static_cast<Descriptor*>(op.descriptor);
  task.descriptor_offset = op.descriptor_offset;
  task.submit_time = CtxNow(op.ctx);
  task.gseq = service_->AllocateGlobalSeq();
  task.sg = std::move(sg);
  batch[slot] = std::move(entry);
  batch.Commit();

  ChargeCtx(op.ctx, service_->timing().task_submitv_base_cycles +
                        op.chunks.size() * service_->timing().task_submitv_per_seg_cycles);
  service_->NotifyRunnable(*client, op.length);
  return OkStatus();
}

Status CopierLinux::SyncKernel(simos::Process* proc, ExecContext* ctx) {
  Client* client = proc != nullptr ? ClientFor(*proc) : nullptr;
  if (client == nullptr) {
    return OkStatus();
  }
  if (service_->mode() == CopierService::Mode::kManual) {
    service_->Serve(*client);
    if (ctx != nullptr) {
      ctx->WaitUntil(service_->engine_ctx(service_->EngineIndexFor(*client)).now());
    }
  } else {
    // Bounded condition-wait on queue/pending drain: the serving thread
    // signals drain_cv after any pass that leaves the client idle. The
    // periodic timeout re-rings the doorbell in case the runnable mark was
    // consumed before the last submission landed (never signal-and-wait on a
    // lock held across NotifyRunnable — the service may serve inline).
    service_->NotifyRunnable(*client);
    std::unique_lock<std::mutex> lock(client->drain_mu);
    while (client->HasQueuedWork()) {
      const auto status = client->drain_cv.wait_for(lock, std::chrono::microseconds(200));
      if (status == std::cv_status::timeout && client->HasQueuedWork()) {
        lock.unlock();
        service_->NotifyRunnable(*client);
        lock.lock();
      }
    }
  }
  return OkStatus();
}

void CopierLinux::AccelerateCow(simos::Process& proc, double handler_fraction) {
  Client* client = ClientFor(proc);
  COPIER_CHECK(client != nullptr) << "AccelerateCow requires an attached process";
  CopierService* service = service_;
  const hw::TimingModel* timing = &kernel_->timing();
  proc.mem().SetCowCopyFn([service, client, timing, handler_fraction](
                              void* dst, const void* src, size_t len, ExecContext* ctx) {
    // Split the copy: Copier takes the tail, the fault handler copies the
    // head itself in parallel, then syncs before the PTE update (§5.2).
    const size_t handler_part =
        std::min(len, AlignUp(static_cast<size_t>(len * handler_fraction), 64));
    const size_t copier_part = len - handler_part;

    Descriptor descriptor(copier_part);
    if (copier_part > 0) {
      CopyQueueEntry entry;
      entry.kind = CopyQueueEntry::Kind::kCopy;
      entry.task.dst = MemRef::Kernel(static_cast<uint8_t*>(dst) + handler_part);
      entry.task.src = MemRef::Kernel(
          const_cast<uint8_t*>(static_cast<const uint8_t*>(src)) + handler_part);
      entry.task.length = copier_part;
      entry.task.descriptor = &descriptor;
      entry.task.submit_time = CtxNow(ctx);
      entry.task.gseq = service->AllocateGlobalSeq();
      ChargeCtx(ctx, timing->task_submit_cycles);
      const uint64_t gseq = entry.task.gseq;
      if (!client->default_pair().kernel.copy_q.TryPush(std::move(entry))) {
        // Ring full: plain synchronous copy of the whole page block. The
        // stamped sequence dies with the dropped entry.
        service->RetireGlobalSeq(gseq);
        hw::ErmsCopy(dst, src, len);
        ChargeCtx(ctx, timing->CpuCopyCycles(hw::CopyUnitKind::kErms, len));
        return;
      }
      service->NotifyRunnable(*client, copier_part);
    }

    // Handler's own share, overlapped with Copier's.
    hw::ErmsCopy(dst, src, handler_part);
    ChargeCtx(ctx, timing->CpuCopyCycles(hw::CopyUnitKind::kErms, handler_part));

    if (copier_part > 0) {
      std::function<void()> pump;
      if (service->mode() == CopierService::Mode::kManual) {
        pump = [service, client] { service->Serve(*client); };
      }
      COPIER_CHECK_OK(WaitDescriptor(descriptor, 0, copier_part, ctx, pump));
    }
  });
}

}  // namespace copier::core
