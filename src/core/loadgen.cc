#include "src/core/loadgen.h"

#include <cmath>

#include "src/common/logging.h"

namespace copier::core {

// ---------------------------------------------------------------------------
// ZipfianSampler (Gray et al.'s method, as in YCSB's generator)
// ---------------------------------------------------------------------------

double ZipfianSampler::Zeta(size_t n, double theta) {
  double sum = 0;
  for (size_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

ZipfianSampler::ZipfianSampler(size_t n, double theta) : n_(n), theta_(theta) {
  COPIER_CHECK(n > 0);
  COPIER_CHECK(theta > 0 && theta < 1);
  alpha_ = 1.0 / (1.0 - theta_);
  zetan_ = Zeta(n_, theta_);
  const double zeta2 = Zeta(2, theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) / (1.0 - zeta2 / zetan_);
}

size_t ZipfianSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  const auto rank = static_cast<size_t>(static_cast<double>(n_) *
                                        std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank < n_ ? rank : n_ - 1;
}

// ---------------------------------------------------------------------------
// ArrivalProcess (two-state MMPP)
// ---------------------------------------------------------------------------

ArrivalProcess::ArrivalProcess(double mean_gap_cycles, BurstConfig burst, Rng* rng)
    : burst_(burst), rng_(rng) {
  COPIER_CHECK(mean_gap_cycles > 0);
  COPIER_CHECK(burst.rate_multiplier >= 1.0);
  COPIER_CHECK(burst.burst_fraction >= 0.0 && burst.burst_fraction < 1.0);
  // Derive the calm-phase gap so the calm/burst mixture keeps the requested
  // long-run mean: mean = (1-f)*calm + f*calm/multiplier.
  const double f = burst_.burst_fraction;
  calm_gap_ = mean_gap_cycles / ((1.0 - f) + f / burst_.rate_multiplier);
  burst_gap_ = calm_gap_ / burst_.rate_multiplier;
  SwitchPhase();
}

void ArrivalProcess::SwitchPhase() {
  in_burst_ = burst_.burst_fraction > 0 && rng_->NextDouble() < burst_.burst_fraction;
  // Geometric phase length (mean mean_phase_requests), at least one request.
  const double u = rng_->NextDouble();
  phase_left_ =
      1 + static_cast<uint64_t>(-burst_.mean_phase_requests * std::log(1.0 - u));
}

Cycles ArrivalProcess::NextGap() {
  if (phase_left_ == 0) {
    SwitchPhase();
  }
  --phase_left_;
  const double mean = in_burst_ ? burst_gap_ : calm_gap_;
  const double u = rng_->NextDouble();
  const double gap = -mean * std::log(1.0 - u);  // exponential inter-arrival
  return gap < 1.0 ? 1 : static_cast<Cycles>(gap);
}

// ---------------------------------------------------------------------------
// Trace expansion
// ---------------------------------------------------------------------------

std::vector<ServeRequest> BuildServeTrace(const ServeWorkload& workload) {
  COPIER_CHECK(workload.connections > 0);
  COPIER_CHECK(workload.keys > 0);
  COPIER_CHECK(!workload.value_sizes.empty());
  COPIER_CHECK(workload.value_sizes.size() == workload.value_weights.size());

  Rng rng(workload.seed);
  ZipfianSampler keys(workload.keys, workload.zipf_theta);
  ArrivalProcess arrivals(workload.mean_gap_cycles, workload.burst, &rng);

  std::vector<double> cumulative;
  double total_weight = 0;
  for (double w : workload.value_weights) {
    total_weight += w;
    cumulative.push_back(total_weight);
  }

  // Latest SET size per key, so GETs carry their expected reply length. A
  // key's first touch is forced to a SET — open-loop GET storms against an
  // empty store would measure only $-1 replies.
  std::vector<uint32_t> last_set(workload.keys, 0);
  std::vector<bool> key_seen(workload.keys, false);

  std::vector<ServeRequest> trace;
  trace.reserve(workload.requests);
  Cycles now = 0;
  for (uint64_t i = 0; i < workload.requests; ++i) {
    now += arrivals.NextGap();
    ServeRequest req;
    req.index = i;
    req.arrival = now;
    req.conn = static_cast<uint32_t>(rng.Below(workload.connections));
    req.via_proxy = workload.proxy_fraction > 0 && rng.NextDouble() < workload.proxy_fraction;
    const double size_u = rng.NextDouble() * total_weight;
    size_t size_idx = 0;
    while (size_idx + 1 < cumulative.size() && size_u >= cumulative[size_idx]) {
      ++size_idx;
    }
    if (req.via_proxy) {
      req.value_bytes = workload.value_sizes[size_idx];
    } else {
      req.key = static_cast<uint32_t>(keys.Sample(rng));
      req.is_get = rng.NextDouble() < workload.get_fraction && key_seen[req.key];
      if (req.is_get) {
        req.value_bytes = last_set[req.key];
      } else {
        req.value_bytes = workload.value_sizes[size_idx];
        last_set[req.key] = req.value_bytes;
        key_seen[req.key] = true;
      }
    }
    if (workload.churn_every > 0 && i > 0 && i % workload.churn_every == 0) {
      req.churn_before = true;
    }
    trace.push_back(req);
  }
  return trace;
}

}  // namespace copier::core
