// ATCache — Address Transfer Cache (§4.3).
//
// DMA needs physical addresses; translating a VA costs ~240 cycles/page.
// Copy addresses recur heavily (buffer pools, fixed I/O buffers — the paper
// measures >75% recurrence in Redis), so the service caches per-page
// translations. The memory subsystem invalidates entries when mappings
// change, via AddressSpace invalidation listeners.
#ifndef COPIER_SRC_CORE_ATCACHE_H_
#define COPIER_SRC_CORE_ATCACHE_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "src/common/align.h"
#include "src/simos/address_space.h"

namespace copier::core {

class ATCache {
 public:
  struct Entry {
    uint8_t* host_page = nullptr;  // host pointer to the frame
    bool writable = false;         // cached translation was write-capable
  };

  // Looks up (asid, page of va). Returns nullptr on miss.
  const Entry* Lookup(uint32_t asid, uint64_t va);

  void Insert(uint32_t asid, uint64_t va, uint8_t* host_page, bool writable);

  // Invalidation callback target: drops entries covering [va, va+length) of
  // `asid`; length SIZE_MAX drops the whole address space.
  void Invalidate(uint32_t asid, uint64_t va, size_t length);

  // Registers this cache with an address space; the returned token pairs with
  // RemoveInvalidationListener. Caller manages lifetime.
  int Attach(simos::AddressSpace& space);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  static uint64_t Key(uint32_t asid, uint64_t vpn) {
    return (static_cast<uint64_t>(asid) << 40) ^ vpn;
  }

  std::mutex mu_;
  std::unordered_map<uint64_t, Entry> entries_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace copier::core

#endif  // COPIER_SRC_CORE_ATCACHE_H_
