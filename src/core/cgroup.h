// Copier cgroup controller (§4.5.2).
//
// Copy is managed as a basic resource like CPU time: the resource unit is
// *copy length* (bytes served), not CPU slices, because completion times vary
// with cache/TLB state. Each cgroup carries `copier.shares`; the scheduler
// picks the cgroup with the minimum share-weighted virtual runtime, then the
// client with the minimum total copy length inside it (§4.5.3).
#ifndef COPIER_SRC_CORE_CGROUP_H_
#define COPIER_SRC_CORE_CGROUP_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace copier::core {

inline constexpr uint64_t kDefaultCopierShares = 1024;

class Cgroup {
 public:
  Cgroup(std::string name, uint64_t shares) : name_(std::move(name)), shares_(shares) {}

  const std::string& name() const { return name_; }

  uint64_t shares() const { return shares_; }
  void set_shares(uint64_t shares) { shares_ = shares == 0 ? 1 : shares; }

  // Share-weighted virtual runtime: bytes * kDefaultCopierShares / shares.
  // Smaller means less than fair service received so far. Accounted with
  // relaxed atomics: in threaded mode several Copier threads serve clients of
  // the same cgroup concurrently.
  uint64_t vruntime() const { return vruntime_.load(std::memory_order_relaxed); }
  void Account(uint64_t bytes) {
    vruntime_.fetch_add(bytes * kDefaultCopierShares / shares_, std::memory_order_relaxed);
  }

  uint64_t total_bytes() const { return total_bytes_.load(std::memory_order_relaxed); }
  void AccountRaw(uint64_t bytes) { total_bytes_.fetch_add(bytes, std::memory_order_relaxed); }

 private:
  std::string name_;
  uint64_t shares_;
  std::atomic<uint64_t> vruntime_{0};
  std::atomic<uint64_t> total_bytes_{0};
};

}  // namespace copier::core

#endif  // COPIER_SRC_CORE_CGROUP_H_
