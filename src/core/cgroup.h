// Copier cgroup controller (§4.5.2).
//
// Copy is managed as a basic resource like CPU time: the resource unit is
// *copy length* (bytes served), not CPU slices, because completion times vary
// with cache/TLB state. Each cgroup carries `copier.shares`; the scheduler
// picks the cgroup with the minimum share-weighted virtual runtime, then the
// client with the minimum total copy length inside it (§4.5.3).
#ifndef COPIER_SRC_CORE_CGROUP_H_
#define COPIER_SRC_CORE_CGROUP_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>

#include "src/common/cycle_clock.h"

namespace copier::core {

inline constexpr uint64_t kDefaultCopierShares = 1024;

class Cgroup {
 public:
  Cgroup(std::string name, uint64_t shares) : name_(std::move(name)), shares_(shares) {}

  const std::string& name() const { return name_; }

  uint64_t shares() const { return shares_; }
  void set_shares(uint64_t shares) { shares_ = shares == 0 ? 1 : shares; }

  // Share-weighted virtual runtime: bytes * kDefaultCopierShares / shares.
  // Smaller means less than fair service received so far. Accounted with
  // relaxed atomics: in threaded mode several Copier threads serve clients of
  // the same cgroup concurrently.
  uint64_t vruntime() const { return vruntime_.load(std::memory_order_relaxed); }
  void Account(uint64_t bytes) {
    vruntime_.fetch_add(bytes * kDefaultCopierShares / shares_, std::memory_order_relaxed);
  }

  uint64_t total_bytes() const { return total_bytes_.load(std::memory_order_relaxed); }
  void AccountRaw(uint64_t bytes) { total_bytes_.fetch_add(bytes, std::memory_order_relaxed); }

  // --- scheduler-side backlog (DESIGN.md §13) --------------------------------
  //
  // Per-cgroup run-queue depth in bytes: submissions (NotifyRunnable's
  // bytes_hint, the same estimate steal-victim selection uses) minus bytes
  // served (AccountService). Admission control reads this as its run-queue
  // saturation signal.
  void NoteSubmitted(uint64_t bytes) {
    sched_submitted_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void NoteServed(uint64_t bytes) {
    sched_served_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  uint64_t BacklogBytes() const {
    const uint64_t submitted = sched_submitted_bytes_.load(std::memory_order_relaxed);
    const uint64_t served = sched_served_bytes_.load(std::memory_order_relaxed);
    return submitted > served ? submitted - served : 0;
  }

  // --- overload admission accounting (DESIGN.md §13) -------------------------
  //
  // Admitted-but-unfinished work, tracked in the *submitters'* clock domain so
  // the virtual-time harness sees real queue depth: an open request counts
  // from AdmissionOpen until AdmissionFinish hands it a completion timestamp,
  // after which it keeps counting until the probing submitter's `now` passes
  // that timestamp. (In real-threaded mode completions carry the current
  // clock, so the horizon collapses to a plain inflight gauge.)

  // A request was admitted and its copy work is about to be submitted.
  void AdmissionOpen(uint64_t bytes) {
    std::lock_guard<std::mutex> lock(admission_mu_);
    open_bytes_ += bytes;
    ++open_requests_;
  }

  // The admitted request finished; its work is done at `completion` (which may
  // be in the probing submitters' future under virtual-time queueing).
  void AdmissionFinish(uint64_t bytes, Cycles completion) {
    std::lock_guard<std::mutex> lock(admission_mu_);
    if (open_bytes_ >= bytes) {
      open_bytes_ -= bytes;
    } else {
      open_bytes_ = 0;
    }
    if (open_requests_ > 0) {
      --open_requests_;
    }
    horizon_.emplace_back(completion, bytes);
    horizon_bytes_ += bytes;
  }

  // Admitted work still unfinished as of `now` (prunes passed completions).
  void AdmissionInflight(Cycles now, uint64_t* bytes, uint64_t* requests) {
    std::lock_guard<std::mutex> lock(admission_mu_);
    PruneLocked(now);
    *bytes = open_bytes_ + horizon_bytes_;
    *requests = open_requests_ + horizon_.size();
  }

  // Earliest time at which the inflight work fits both bounds — the throttle
  // policy's wait target. Returns `now` when it already fits.
  Cycles AdmissionDrainTarget(Cycles now, uint64_t max_bytes, uint64_t max_requests) {
    std::lock_guard<std::mutex> lock(admission_mu_);
    PruneLocked(now);
    uint64_t bytes = open_bytes_ + horizon_bytes_;
    uint64_t requests = open_requests_ + horizon_.size();
    Cycles target = now;
    for (const auto& [completion, entry_bytes] : horizon_) {
      if (bytes <= max_bytes && requests <= max_requests) {
        break;
      }
      target = completion;
      bytes -= entry_bytes;
      --requests;
    }
    return target;
  }

  // Per-cgroup decision counters (relaxed: submitters may race in threaded
  // mode; totals still add up because every decision increments exactly one).
  void NoteAdmitted() { requests_admitted_.fetch_add(1, std::memory_order_relaxed); }
  void NoteShed() { requests_shed_.fetch_add(1, std::memory_order_relaxed); }
  void NoteDeferred() { requests_deferred_.fetch_add(1, std::memory_order_relaxed); }
  void NoteThrottled(Cycles wait) {
    requests_throttled_.fetch_add(1, std::memory_order_relaxed);
    throttle_wait_cycles_.fetch_add(wait, std::memory_order_relaxed);
  }
  uint64_t requests_admitted() const {
    return requests_admitted_.load(std::memory_order_relaxed);
  }
  uint64_t requests_shed() const { return requests_shed_.load(std::memory_order_relaxed); }
  uint64_t requests_deferred() const {
    return requests_deferred_.load(std::memory_order_relaxed);
  }
  uint64_t requests_throttled() const {
    return requests_throttled_.load(std::memory_order_relaxed);
  }
  uint64_t throttle_wait_cycles() const {
    return throttle_wait_cycles_.load(std::memory_order_relaxed);
  }

 private:
  void PruneLocked(Cycles now) {
    while (!horizon_.empty() && horizon_.front().first <= now) {
      horizon_bytes_ -= horizon_.front().second;
      horizon_.pop_front();
    }
  }

  std::string name_;
  uint64_t shares_;
  std::atomic<uint64_t> vruntime_{0};
  std::atomic<uint64_t> total_bytes_{0};
  std::atomic<uint64_t> sched_submitted_bytes_{0};
  std::atomic<uint64_t> sched_served_bytes_{0};

  // Admission state (guarded by admission_mu_; decision counters are atomics
  // so TotalStats can read them without the lock).
  std::mutex admission_mu_;
  std::deque<std::pair<Cycles, uint64_t>> horizon_;  // (completion, bytes), FIFO
  uint64_t horizon_bytes_ = 0;
  uint64_t open_bytes_ = 0;
  uint64_t open_requests_ = 0;
  std::atomic<uint64_t> requests_admitted_{0};
  std::atomic<uint64_t> requests_shed_{0};
  std::atomic<uint64_t> requests_deferred_{0};
  std::atomic<uint64_t> requests_throttled_{0};
  std::atomic<uint64_t> throttle_wait_cycles_{0};
};

}  // namespace copier::core

#endif  // COPIER_SRC_CORE_CGROUP_H_
