// CopierConfig — service-wide tunables and ablation switches.
//
// The ablation switches (use_dma, enable_piggyback, enable_absorption,
// enable_atcache) exist so the breakdown experiments (Fig. 12-c, Fig. 9) can
// turn individual mechanisms off; defaults are the full system.
#ifndef COPIER_SRC_CORE_CONFIG_H_
#define COPIER_SRC_CORE_CONFIG_H_

#include <cstddef>

#include "src/common/align.h"
#include "src/common/cycle_clock.h"

namespace copier::core {

struct CopierConfig {
  // Queue geometry.
  size_t queue_capacity = 4096;         // entries per CSH queue
  size_t default_segment_size = 4096;   // descriptor granularity (§4.1)

  // Hardware usage (§4.3).
  bool use_dma = true;
  bool enable_piggyback = true;  // false: DMA used naively (submit+wait)
  bool enable_atcache = true;
  // Independent DMA channels per engine (DESIGN.md §9). 1 = the serial
  // single-channel baseline; more channels let one round's batches (and
  // chunks of one large subtask) transfer concurrently.
  size_t dma_channel_count = 4;
  // Descriptor-ring slots per channel (ring-full submissions fall back to
  // the CPU and are counted in dma_ring_full_fallbacks).
  size_t dma_ring_slots = 256;
  // Non-blocking DMA completion (DESIGN.md §9): the execution round parks
  // DMA-bound bytes in flight and returns to the scheduler instead of
  // waiting out the batch; completions are reaped on a later serve. Off =
  // the end-of-round blocking wait baseline.
  bool enable_async_dma_completion = true;

  // Global-view optimizations (§4.4).
  bool enable_absorption = true;

  // Zero-copy remap tier (DESIGN.md §11): the page-aligned, page-multiple
  // interior of an eligible user->user copy is satisfied by CoW aliasing
  // (AliasCowRange) instead of moving bytes; later writes to either side
  // materialize the copy lazily through the CoW-break path. Off = every byte
  // is physically moved (ablation / bench_remap "copy" mode).
  bool enable_remap_tier = true;
  // Minimum aliasable interior: below this the remap + TLB-shootdown cost
  // does not beat just copying the pages.
  size_t remap_min_bytes = 2 * kPageSize;

  // Fused IPC fast path (DESIGN.md §12): when the receiver of a Binder
  // transaction or loopback-socket send has already posted its landing
  // window, the two-step transfer (sender -> kernel skb/parcel buffer ->
  // receiver) collapses into one direct cross-address-space Copy Task; the
  // intermediate kernel buffers are reserved only as flow-control tokens and
  // their reclaim KFUNCs ride the fused task. Off = every posted transfer
  // takes the two-step path (ablation / bench_ipc_fuse "two-step" mode).
  bool enable_ipc_fuse = true;

  // Multi-window receive ring (DESIGN.md §12): sockets and Binder endpoints
  // accept N pre-posted landing windows consumed in FIFO order, so pipelined
  // senders at queue depth > 1 keep hitting a posted window instead of
  // falling back to the staged skb path between the receiver's re-posts.
  // Off = one window at a time (the historical single-window behaviour).
  bool enable_recv_ring = true;

  // Proxy-transparent forwarding (DESIGN.md §12): a window posted with a
  // forward rule rewrites the message header in the kernel and dispatches ONE
  // src->destination-window Copy Task whose SgList splices the rewritten
  // header in front of the unmodified payload — the payload never crosses the
  // proxy's address space. Off = the message lands in the proxy's window and
  // the app re-frames it (the historical two-hop pipeline).
  bool enable_forward_fuse = true;

  // Vectored submission: Send/Recv/Binder publish one scatter-gather Copy
  // Task per syscall (one ring transaction, one barrier check, one doorbell)
  // instead of one entry per skb. Off = the per-skb submission baseline
  // (ablation / bench_submit_batch "per-op" mode).
  bool enable_vectored_submit = true;

  // Pending-range interval index: O(log n + k) dependency resolution,
  // absorption lookup, promotion and abort matching instead of linear scans
  // over the pending list. Off = the linear-scan baseline (ablation /
  // bench_queue_depth "before" mode).
  bool enable_range_index = true;

  // Scheduling (§4.5.3).
  size_t copy_slice_bytes = 256 * kKiB;  // max copy length per scheduling pick

  // Engine pool (DESIGN.md §10): the service runs `engine_count` copier
  // instances, each owning a disjoint slice of the DMA channel pool, with
  // client home-engine affinity (id % engine_count) and cross-engine work
  // stealing. Off = exactly one engine and no cross-engine range ledger —
  // bit-for-bit the single-engine path.
  bool enable_engine_pool = true;
  // 0 = auto: one engine per service thread in threaded mode (max_threads),
  // one engine in manual mode (manual callers drive engines explicitly).
  // Threaded mode runs one thread per engine, so the pool is clamped to
  // max_threads there; raise max_threads alongside engine_count.
  size_t engine_count = 0;

  // Sharded scheduler (threaded mode): per-engine run queues with O(log n)
  // picks, event-driven runnable marking, targeted wakeups and work stealing.
  // Off = the global-mutex double-scan baseline (ablation / bench_sched
  // "linear" mode). Manual mode always uses the linear scan: manual callers
  // drive specific clients themselves and direct ring pushes (tests) never
  // issue runnable notifications.
  bool enable_sharded_scheduler = true;
  // An idle shard steals the highest-backlog runnable client from the most
  // loaded shard before sleeping. Required for full throughput when a hot
  // client hashes onto a busy shard; disable only for ablation.
  bool enable_work_stealing = true;
  // Submission wakes only the thread owning the client's home shard instead
  // of notify_all on every thread (the thundering herd baseline).
  bool enable_targeted_wakeup = true;

  // Overload admission control (DESIGN.md §13). Request submitters consult
  // CopierService::AdmitRequest before pushing a request's copy work; the
  // service tracks per-cgroup admitted-but-unfinished work and the engines'
  // DMA ring-full feedback (dma_ring_full_fallbacks escalated from "silently
  // eat it on CPU" into a signal) and applies the policy when either
  // saturates. kNone = the historical behavior: every request is admitted and
  // overload shows up only as unbounded queueing delay.
  enum class OverloadPolicy {
    kNone,      // admit everything (baseline / ablation)
    kShed,      // reject the request outright (load shedding)
    kDefer,     // ask the submitter to retry after admission_defer_cycles
    kThrottle,  // admit, but make the submitter wait out the excess backlog
  };
  OverloadPolicy overload_policy = OverloadPolicy::kNone;
  // A cgroup is overloaded when its admitted-but-unfinished work exceeds
  // either bound (bytes of copy work, or request count).
  uint64_t admission_max_inflight_bytes = 8 * kMiB;
  uint64_t admission_max_inflight_requests = 64;
  // Ring-pressure feedback: each newly observed dma_ring_full_fallback puts
  // admission into a back-off window covering the next N admission decisions.
  uint64_t admission_ring_backoff = 8;
  // kDefer: suggested retry-after gap, and how many retries a submitter
  // should attempt before treating the request as shed.
  Cycles admission_defer_cycles = 50'000;
  uint64_t admission_max_defer_retries = 4;

  // Lazy tasks execute when depended upon, aborted, or after this age (§4.4).
  Cycles lazy_timeout_cycles = 10'000'000;

  // Service threads (§4.5.1).
  enum class PollMode {
    kNapi,            // poll continuously, back off to sleep after idle spins
    kScenarioDriven,  // run only while a scenario is active (smartphone, §5.3)
  };
  PollMode poll_mode = PollMode::kNapi;
  size_t min_threads = 1;
  size_t max_threads = 4;
  double low_load = 0.2;   // auto-scaling thresholds (fraction of busy polls)
  double high_load = 0.8;
  size_t idle_spins_before_sleep = 4096;

  // Safety limit for recursive dependency resolution.
  int max_dependency_depth = 16;
};

}  // namespace copier::core

#endif  // COPIER_SRC_CORE_CONFIG_H_
