// CopierLinux — the Copier-Linux integration layer (§5.2).
//
// Implements the pieces Copier-Linux adds to the stock kernel:
//   * KernelCopyBackend: syscalls' user↔kernel copies become asynchronous
//     k-mode Copy Tasks carrying the app's descriptor and a KFUNC completion
//     handler (network stack, Binder driver);
//   * TrapHooks: Barrier Tasks bracketing each syscall's k-mode submissions
//     so the service can track order dependency across the privilege
//     boundary (§4.2.1) — the enter barrier is submitted lazily, right before
//     the first Copy Task of the syscall, exactly as the paper specifies;
//   * CoW acceleration: the fault handler splits the page copy between
//     itself and Copier and syncs before updating the page table (§5.2).
#ifndef COPIER_SRC_CORE_LINUX_GLUE_H_
#define COPIER_SRC_CORE_LINUX_GLUE_H_

#include "src/core/service.h"
#include "src/simos/copy_backend.h"
#include "src/simos/kernel.h"

namespace copier::core {

// Waits until [offset, offset+length) of `descriptor` is ready. In manual
// mode `pump` (serve-my-client) is invoked while unready; in threaded mode
// the wait spins. Returns kFault if the descriptor failed. The caller's
// clock advances to the ready time (virtual-time blocking).
Status WaitDescriptor(const Descriptor& descriptor, size_t offset, size_t length,
                      ExecContext* ctx, const std::function<void()>& pump);

class CopierLinux : public simos::SimKernel::TrapHooks, public simos::KernelCopyBackend {
 public:
  CopierLinux(CopierService* service, simos::SimKernel* kernel);
  ~CopierLinux() override;

  // Installs this glue as the kernel's copy backend and trap observer.
  void Install();

  // --- simos::SimKernel::TrapHooks ---
  void OnTrapEnter(simos::Process& proc, ExecContext* ctx) override;
  void OnTrapExit(simos::Process& proc, ExecContext* ctx) override;

  // --- simos::KernelCopyBackend ---
  Status Copy(const simos::UserCopyOp& op) override;
  // Vectored submission (one doorbell per syscall): publishes the syscall's
  // whole op-list as ONE scatter-gather Copy Task in a single ring
  // transaction, with one barrier-state check and one NotifyRunnable carrying
  // the accumulated length. Falls back to the per-segment default when the
  // process is unattached, vectored submission is disabled (ablation), or the
  // batch reservation fails.
  Status CopyV(const simos::UserCopyVecOp& op, size_t* segs_submitted = nullptr) override;
  // Fused IPC (DESIGN.md §12): publishes one cross-address-space bookkeeping
  // Copy Task on the *sender's* client — src = the sender's buffer (write-
  // locked until the copy lands), dst = the receiver's posted window, with
  // one SgSegment per flow-control chunk so token-reclaim KFUNCs fire in the
  // same order as the two-step path's per-skb handlers. ResourceExhausted
  // (ring full) leaves no side effects; the kernel falls back to two-step.
  bool SupportsFusedIpc() const override;
  // Multi-window receive rings and proxy-transparent forwarding (DESIGN.md
  // §12) are independently ablatable on top of the fused path.
  bool SupportsRecvRing() const override;
  bool SupportsForwardFuse() const override;
  Status CopyFused(const simos::FusedCopyOp& op) override;
  void NoteFuseEvent(simos::FuseEvent event) override;
  // Pre-translates the posted window into every engine's ATCache (one walk,
  // one shared registration table) so fused DMA lands on warm translations.
  void RegisterWindow(simos::Process* proc, uint64_t va, size_t length,
                      ExecContext* ctx) override;
  Status SyncKernel(simos::Process* proc, ExecContext* ctx) override;
  const char* name() const override { return "copier-linux"; }

  // Replaces the process's CoW page-copy hook with the split Copier version:
  // the handler copies the head synchronously while Copier copies the tail,
  // then the handler syncs — blocking ≈ max(head, tail) instead of the whole
  // copy (§5.2, evaluated in §6.1.2).
  // handler_fraction defaults to the head share that balances the handler's
  // ERMS rate against Copier's AVX+DMA rate, so both sides finish together.
  void AccelerateCow(simos::Process& proc, double handler_fraction = 0.35);

  CopierService* service() { return service_; }

  // Per-syscall-bracket bookkeeping, exposed for tests. The state lives on
  // the Client (Client::ksyscall), touched only by the process's own thread —
  // concurrent processes never serialize on a glue-global lock to submit.
  bool BracketOpen(simos::Process& proc);

 private:
  Client* ClientFor(simos::Process& proc);
  // Lazily submits the syscall's enter barrier before its first Copy Task
  // (§4.2.1). Returns false when the k-mode ring is full.
  bool EnsureEnterBarrier(Client& client, QueuePair& pair);
  // Synchronous degrade for cross-client op-lists (submit_proc != proc): the
  // per-segment queue fallback would submit on the receiver's client from the
  // sender's thread, racing the receiver's syscall bracket — copy inline and
  // mark the descriptor instead.
  Status CopyVSync(const simos::UserCopyVecOp& op, size_t* segs_submitted);

  CopierService* service_;
  simos::SimKernel* kernel_;
  simos::SyncErmsBackend fallback_;
};

}  // namespace copier::core

#endif  // COPIER_SRC_CORE_LINUX_GLUE_H_
