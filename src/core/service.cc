#include "src/core/service.h"

#include <algorithm>
#include <chrono>

#include "src/common/logging.h"
#include "src/hw/copy_unit.h"

namespace copier::core {

namespace {

// Clients this thread currently holds a serving claim on, outermost first: the
// normal serve plus every victim of a nested cross-engine settle. A settle
// targeting a client already on the stack runs reentrantly instead of
// spinning on its own claim (SettleForeign).
thread_local std::vector<const Client*> t_serve_stack;

bool ServeStackHolds(const Client& client) {
  return std::find(t_serve_stack.begin(), t_serve_stack.end(), &client) != t_serve_stack.end();
}

// Invokes fn(domain, start, length) for every contiguous piece of the chosen
// side of `t` (the whole side, or one call per segment of a scatter-gather
// side) — the ledger's unit of registration.
template <typename Fn>
void ForEachSidePiece(const CopyTask& t, bool dst_side, Fn&& fn) {
  if (t.length == 0) {
    return;
  }
  if (t.sg == nullptr || t.sg->kernel_is_dst != dst_side) {
    const MemRef& side = dst_side ? t.dst : t.src;
    fn(side.domain(), side.start(), t.length);
    return;
  }
  for (const SgSegment& seg : t.sg->segs) {
    if (seg.length > 0) {
      fn(uint64_t{0}, reinterpret_cast<uint64_t>(seg.kernel), seg.length);
    }
  }
}

}  // namespace

CopierService::CopierService(Options options)
    : options_(std::move(options)),
      timing_(options_.timing != nullptr ? options_.timing : &hw::TimingModel::Default()) {
  // Engine-pool sizing (DESIGN.md §10): explicit engine_count wins; auto (0)
  // means one engine per service thread in threaded mode and a single engine
  // in manual mode (manual callers drive additional engines explicitly via
  // RunOnce(i)). Pool disabled => exactly today's single-engine path: one
  // engine, no cross-engine hooks, whole channel pool.
  const CopierConfig& config = options_.config;
  size_t pool = 1;
  if (config.enable_engine_pool) {
    pool = config.engine_count != 0
               ? config.engine_count
               : (options_.mode == Mode::kThreaded ? std::max<size_t>(1, config.max_threads)
                                                   : 1);
    if (options_.mode == Mode::kThreaded) {
      // Threaded mode runs one thread per engine, so max_threads caps the
      // pool too: an explicit engine_count above it must not spawn more
      // service threads than the configured ceiling.
      pool = std::min(pool, std::max<size_t>(1, config.max_threads));
    }
  }
  // One service-owned channel pool carved into disjoint per-engine slices:
  // channel state stays single-threaded, aggregate channel count scales with
  // the pool.
  const size_t channels_per_engine = std::max<size_t>(1, config.dma_channel_count);
  dma_pool_ = std::make_unique<hw::DmaChannelPool>(timing_, pool * channels_per_engine,
                                                   config.dma_ring_slots);
  for (size_t i = 0; i < pool; ++i) {
    engine_ctxs_.push_back(std::make_unique<ExecContext>("copier-" + std::to_string(i)));
    engines_.push_back(std::make_unique<Engine>(
        options_.config, timing_, engine_ctxs_.back().get(),
        hw::DmaChannelSlice(dma_pool_.get(), i * channels_per_engine, channels_per_engine)));
    if (config.enable_engine_pool) {
      engines_.back()->set_cross(this);
    }
    // Saturation feedback flows from every engine regardless of pool mode:
    // reporting a counter has no behavioral side effects (unlike set_cross).
    engines_.back()->set_overload_signals(&overload_signals_);
    shards_.push_back(std::make_unique<Shard>());
  }
  cgroups_.push_back(std::make_unique<Cgroup>("root", kDefaultCopierShares));
  root_cgroup_ = cgroups_.back().get();
}

CopierService::~CopierService() {
  Stop();
  // Clients never detached still hold ATCache listeners on their (externally
  // owned, service-outliving) address spaces — unhook before the engines die.
  for (auto& client : clients_) {
    RemoveSpaceListeners(*client);
  }
}

void CopierService::RemoveSpaceListeners(Client& client) {
  if (client.space() == nullptr) {
    return;
  }
  for (int token : client.atcache_tokens) {
    client.space()->RemoveInvalidationListener(token);
  }
  client.atcache_tokens.clear();
}

Client* CopierService::AttachProcess(simos::Process* process, Cgroup* cgroup) {
  std::lock_guard<std::mutex> lock(mu_);
  clients_.push_back(std::make_unique<Client>(next_client_id_++, process, options_.config));
  Client* client = clients_.back().get();
  client->cgroup = cgroup != nullptr ? cgroup : root_cgroup_;
  // Stable home shard: independent of the active thread count, so auto-scaling
  // never reshuffles where a client's runnable marks land.
  client->home_shard = client->id() % shards_.size();
  client_index_.emplace(client->id(), client);
  if (process != nullptr) {
    process->set_copier_client_id(client->id());
    // CoW breaks on a registered space — post-remap writes (DESIGN.md §11)
    // and fork breaks alike — copy with the engine's accelerated page-copy
    // path charged through the timing model, not the default ERMS cost.
    // (AccelerateCow may later swap in the service-submitting variant.)
    const hw::TimingModel* timing = timing_;
    process->mem().SetCowCopyFn(
        [timing](void* dst, const void* src, size_t len, ExecContext* ctx) {
          hw::AvxCopy(dst, src, len);
          ChargeCtx(ctx, timing->CpuCopyCycles(hw::CopyUnitKind::kAvx, len));
        });
    // Keep every engine's ATCache coherent with this space's mapping changes:
    // the remap tier re-points PTEs while translations may be cached.
    for (auto& engine : engines_) {
      client->atcache_tokens.push_back(engine->atcache().Attach(process->mem()));
    }
    // Ledger owner map: a foreign client probing this process's address space
    // settles against the owner's pending tasks too (including private ones
    // accepted before the domain turned shared).
    std::lock_guard<std::mutex> ledger_lock(ledger_mu_);
    domain_owner_[process->mem().asid()] = client;
  }
  return client;
}

Client* CopierService::AttachKernelClient(const std::string& name, Cgroup* cgroup) {
  (void)name;
  return AttachProcess(nullptr, cgroup);
}

Client* CopierService::ClientById(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = client_index_.find(id);
  return it != client_index_.end() ? it->second : nullptr;
}

void CopierService::DetachClient(Client& client) {
  client.detached.store(true, std::memory_order_release);
  {
    // After this critical section no sharded picker can return the client: it
    // is out of its home queue, and any earlier pop already holds `serving`
    // (pop and serving-CAS are atomic under the shard lock).
    Shard& shard = *shards_[client.home_shard];
    std::lock_guard<std::mutex> lock(shard.queue.mu);
    if (client.runnable.load(std::memory_order_relaxed)) {
      shard.queue.Remove(client);
      client.runnable.store(false, std::memory_order_relaxed);
    }
  }
  // Take ownership out of the service BEFORE waiting out `serving`: the
  // linear picker scans clients_ and CASes `serving` under mu_, so once this
  // erase lands no scheduler path — sharded or linear — can reach the client,
  // and any pick that already happened shows up in `serving` below.
  std::unique_ptr<Client> owned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    client_index_.erase(client.id());
    const auto it = std::find_if(
        clients_.begin(), clients_.end(),
        [&client](const std::unique_ptr<Client>& c) { return c.get() == &client; });
    if (it != clients_.end()) {
      owned = std::move(*it);
      clients_.erase(it);
    }
  }
  // Drop the client's ledger footprint before waiting out `serving`:
  // SettleForeign claims victims under ledger_mu_ from pointers it reads
  // there, so once this critical section ends no settle can still reach the
  // client, and one already holding it shows up in `serving` below.
  {
    std::lock_guard<std::mutex> ledger_lock(ledger_mu_);
    for (auto it = ledger_.begin(); it != ledger_.end();) {
      auto& entries = it->second;
      entries.erase(std::remove_if(entries.begin(), entries.end(),
                                   [&client](const LedgerEntry& e) {
                                     return e.client == &client;
                                   }),
                    entries.end());
      it = entries.empty() ? ledger_.erase(it) : std::next(it);
    }
    for (auto it = domain_owner_.begin(); it != domain_owner_.end();) {
      it = it->second == &client ? domain_owner_.erase(it) : std::next(it);
    }
  }
  // Wait out an in-flight serve (home thread, a thief, or a csync pump).
  // FinishServe sees `detached` and will not re-queue.
  while (client.serving.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  // The space outlives the service: its invalidation listeners must not keep
  // pointing at engine ATCaches once the client is gone.
  RemoveSpaceListeners(client);
  // Drain the rings' abandoned entries and retire their submission stamps:
  // those tasks will never be ingested, and a stamped sequence left
  // outstanding would hold back tombstone pruning service-wide forever. Safe
  // now — no server or picker can reach the client anymore.
  if (options_.config.enable_engine_pool) {
    for (size_t fd = 0; fd < client.pair_count(); ++fd) {
      QueuePair& pair = client.pair(static_cast<int>(fd));
      while (auto entry = pair.user.copy_q.TryPop()) {
        RetireGlobalSeq(entry->task.gseq);
      }
      while (auto entry = pair.kernel.copy_q.TryPop()) {
        RetireGlobalSeq(entry->task.gseq);
      }
    }
  }
  // `owned` destructs here: the client is freed only after the last server
  // released it.
}

Cgroup* CopierService::CreateCgroup(const std::string& name, uint64_t shares) {
  std::lock_guard<std::mutex> lock(mu_);
  cgroups_.push_back(std::make_unique<Cgroup>(name, shares));
  return cgroups_.back().get();
}

// ---------------------------------------------------------------------------
// Overload admission control (DESIGN.md §13)
// ---------------------------------------------------------------------------

CopierService::Admission CopierService::AdmitRequest(Client& client, uint64_t bytes,
                                                     Cycles now) {
  Admission result;
  const CopierConfig& config = options_.config;
  Cgroup* group = client.cgroup != nullptr ? client.cgroup : root_cgroup_;
  if (config.overload_policy == CopierConfig::OverloadPolicy::kNone) {
    group->NoteAdmitted();
    group->AdmissionOpen(bytes);
    return result;
  }

  // Fold fresh engine saturation events (DMA ring-full doorbell bounces) into
  // a back-off window covering the next admission_ring_backoff decisions. The
  // CAS makes each event batch arm exactly one window under concurrency.
  const uint64_t ring_now = overload_signals_.ring_full_events;
  uint64_t seen = ring_seen_.load(std::memory_order_relaxed);
  if (ring_now > seen &&
      ring_seen_.compare_exchange_strong(seen, ring_now, std::memory_order_relaxed)) {
    ring_backoff_credits_.store(config.admission_ring_backoff, std::memory_order_relaxed);
    ++ring_backoff_events_;
  }

  uint64_t inflight_bytes = 0;
  uint64_t inflight_requests = 0;
  group->AdmissionInflight(now, &inflight_bytes, &inflight_requests);
  bool overloaded = inflight_bytes + bytes > config.admission_max_inflight_bytes ||
                    inflight_requests >= config.admission_max_inflight_requests;
  const uint64_t credits = ring_backoff_credits_.load(std::memory_order_relaxed);
  if (credits > 0) {
    ring_backoff_credits_.store(credits - 1, std::memory_order_relaxed);
    overloaded = true;
  }
  if (!overloaded) {
    group->NoteAdmitted();
    group->AdmissionOpen(bytes);
    return result;
  }

  switch (config.overload_policy) {
    case CopierConfig::OverloadPolicy::kShed:
      group->NoteShed();
      result.verdict = AdmissionVerdict::kShed;
      return result;
    case CopierConfig::OverloadPolicy::kDefer:
      group->NoteDeferred();
      result.verdict = AdmissionVerdict::kDefer;
      result.wait_cycles = config.admission_defer_cycles;
      return result;
    case CopierConfig::OverloadPolicy::kThrottle: {
      // Backpressure: admit, but make the submitter wait until the inflight
      // window has drained enough for this request to fit (plus a pacing
      // floor when the overload came purely from ring feedback).
      const uint64_t byte_room = config.admission_max_inflight_bytes > bytes
                                     ? config.admission_max_inflight_bytes - bytes
                                     : 0;
      const uint64_t request_room = config.admission_max_inflight_requests > 0
                                        ? config.admission_max_inflight_requests - 1
                                        : 0;
      const Cycles target = group->AdmissionDrainTarget(now, byte_room, request_room);
      result.wait_cycles =
          target > now ? target - now : config.admission_defer_cycles;
      result.verdict = AdmissionVerdict::kThrottle;
      group->NoteThrottled(result.wait_cycles);
      group->NoteAdmitted();
      group->AdmissionOpen(bytes);
      return result;
    }
    case CopierConfig::OverloadPolicy::kNone:
      break;  // unreachable: handled above
  }
  return result;
}

void CopierService::FinishRequest(Client& client, uint64_t bytes, Cycles completion) {
  Cgroup* group = client.cgroup != nullptr ? client.cgroup : root_cgroup_;
  group->AdmissionFinish(bytes, completion);
}

void CopierService::AbandonRequest(Client& client) {
  Cgroup* group = client.cgroup != nullptr ? client.cgroup : root_cgroup_;
  group->NoteShed();
}

// ---------------------------------------------------------------------------
// Scheduling (§4.5.3)
// ---------------------------------------------------------------------------

Client* CopierService::PickClient(size_t index) {
  ++sched_stats_.pick_calls;
  const Cycles t0 = RealCycleClock::ReadTsc();
  Client* picked = UseSharded() ? PickClientSharded(index) : PickClientLinear(index);
  sched_stats_.pick_tsc_cycles += RealCycleClock::ReadTsc() - t0;
  if (picked != nullptr) {
    ++sched_stats_.picks;
  }
  return picked;
}

Client* CopierService::PickClientSharded(size_t index) {
  // Shard coverage: thread i owns shards {i, i+active, i+2·active, ...}, so
  // every shard keeps an owner while auto-scaling moves the active count.
  const size_t active = std::max<size_t>(1, active_threads_.load(std::memory_order_acquire));
  for (size_t s = index; s < shards_.size(); s += active) {
    Shard& shard = *shards_[s];
    if (shard.queue.Empty()) {
      continue;
    }
    std::lock_guard<std::mutex> lock(shard.queue.mu);
    while (Client* client = shard.queue.PopMin()) {
      client->runnable.store(false, std::memory_order_release);
      ++sched_stats_.pick_attempts;
      bool expected = false;
      if (client->serving.compare_exchange_strong(expected, true, std::memory_order_acquire)) {
        ChargeCtx(engine_ctxs_[index].get(), timing_->schedule_pick_cycles);
        return client;
      }
      // Mid-serve elsewhere (a thief or a csync pump): drop the mark. The
      // server's FinishServe re-queues the client if work remains, so no
      // work is lost.
    }
  }
  return nullptr;
}

Client* CopierService::PickClientLinear(size_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t scanned = 0;
  // Pass 1: among cgroups with runnable clients assigned to this engine,
  // pick the minimum-vruntime cgroup.
  Cgroup* best_group = nullptr;
  const size_t threads = std::max<size_t>(1, active_threads_.load(std::memory_order_acquire));
  auto assigned_here = [&](const Client& client) {
    if (options_.mode == Mode::kManual) {
      // Single engine: everything runs on engine 0 (today's path). Pool:
      // home-engine affinity — manual RunOnce(i) serves shard i's clients.
      return engines_.size() == 1 ? index == 0 : client.home_shard == index;
    }
    return (client.id() % threads) == (index % threads);
  };
  for (auto& client : clients_) {
    ++scanned;
    if (!assigned_here(*client) || client->detached.load(std::memory_order_acquire) ||
        !client->HasQueuedWork()) {
      continue;
    }
    if (best_group == nullptr || client->cgroup->vruntime() < best_group->vruntime()) {
      best_group = client->cgroup;
    }
  }
  Client* best = nullptr;
  if (best_group != nullptr) {
    // Pass 2: within the cgroup, minimum total copy length (CFS analogue).
    for (auto& client : clients_) {
      ++scanned;
      if (!assigned_here(*client) || client->cgroup != best_group ||
          client->detached.load(std::memory_order_acquire) || !client->HasQueuedWork()) {
        continue;
      }
      if (best == nullptr || client->total_copy_length < best->total_copy_length) {
        best = client.get();
      }
    }
  }
  // Honest virtual cost: the global double scan examines every client, and
  // that O(clients) shape is exactly what the sharded run queues remove.
  sched_stats_.clients_scanned += scanned;
  ChargeCtx(engine_ctxs_[index].get(),
            timing_->schedule_pick_cycles + scanned * timing_->schedule_scan_cycles_per_client);
  if (best != nullptr) {
    ++sched_stats_.pick_attempts;
    bool expected = false;
    if (!best->serving.compare_exchange_strong(expected, true, std::memory_order_acquire)) {
      return nullptr;  // another thread is mid-serve on this client
    }
  }
  return best;
}

Client* CopierService::StealClient(size_t index) {
  ++sched_stats_.steal_attempts;
  const size_t active = std::max<size_t>(1, active_threads_.load(std::memory_order_acquire));
  // Victim: the fullest shard not already covered by this thread.
  size_t victim = shards_.size();
  size_t victim_size = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (s % active == index % active) {
      continue;
    }
    const size_t size = shards_[s]->queue.ApproxSize();
    if (size > victim_size) {
      victim = s;
      victim_size = size;
    }
  }
  if (victim == shards_.size()) {
    return nullptr;
  }
  Shard& shard = *shards_[victim];
  std::lock_guard<std::mutex> lock(shard.queue.mu);
  while (Client* client = shard.queue.PopMaxBacklog()) {
    client->runnable.store(false, std::memory_order_release);
    bool expected = false;
    if (client->serving.compare_exchange_strong(expected, true, std::memory_order_acquire)) {
      ++sched_stats_.steals;
      ++shards_[index]->steals_in;
      ++shard.steals_out;
      return client;
    }
  }
  return nullptr;
}

void CopierService::ReconcileRunnable() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& client : clients_) {
    if (client->detached.load(std::memory_order_acquire) ||
        client->runnable.load(std::memory_order_acquire) ||
        client->serving.load(std::memory_order_acquire) || !client->HasQueuedWork()) {
      continue;
    }
    ++sched_stats_.reconcile_marks;
    NotifyRunnable(*client);
  }
}

void CopierService::AccountService(Client& client, uint64_t bytes) {
  if (bytes == 0) {
    return;
  }
  client.cgroup->Account(bytes);
  client.cgroup->AccountRaw(bytes);
  client.cgroup->NoteServed(bytes);
}

void CopierService::FinishServe(Client& client) {
  if (!UseSharded()) {
    client.serving.store(false, std::memory_order_release);
    return;
  }
  // Re-queue and release atomically under the home shard's lock: a picker
  // that popped this client and lost the serving-CAS dropped its runnable
  // mark, and this is the covering re-notify. Doing both under the lock also
  // lets DetachClient free the client the moment `serving` clears — after
  // its own locked removal, no path here may touch the client again, which is
  // why `home` is captured before the store that makes the client freeable.
  const size_t home = client.home_shard;
  Shard& shard = *shards_[home];
  bool wake = false;
  {
    std::lock_guard<std::mutex> lock(shard.queue.mu);
    if (!client.detached.load(std::memory_order_relaxed) &&
        !client.runnable.load(std::memory_order_relaxed) && client.HasQueuedWork()) {
      client.runnable.store(true, std::memory_order_relaxed);
      shard.queue.Insert(client);
      wake = true;
      // A re-queue while DMA bytes are still in flight is the parked round's
      // ride back to a reaping serve (DESIGN.md §9): no poll thread watches
      // the channels, so this is what guarantees the completions get observed.
      if (client.dma_inflight_bytes.load(std::memory_order_relaxed) > 0) {
        ++sched_stats_.dma_reap_requeues;
      }
    }
    client.serving.store(false, std::memory_order_release);
  }
  if (wake) {
    WakeShard(home);
  }
}

uint64_t CopierService::ServePicked(size_t index, Client& client, uint64_t max_bytes) {
  // Track the claim for cross-engine settle reentrancy: a settle this serve
  // triggers that targets `client` itself must run inline, not spin on the
  // claim we already hold.
  t_serve_stack.push_back(&client);
  const uint64_t served = engines_[index]->ServeClient(client, max_bytes);
  t_serve_stack.pop_back();
  AccountService(client, served);
  client.served_bytes.fetch_add(served, std::memory_order_relaxed);
  // Wake drain waiters (SyncKernel's bounded condition-wait) while `serving`
  // is still held, so the client cannot be detached and freed between the
  // check and the notify. The empty lock/unlock pairs with the waiter's
  // predicate check under drain_mu (no lost wakeup).
  if (!client.HasQueuedWork()) {
    { std::lock_guard<std::mutex> lock(client.drain_mu); }
    client.drain_cv.notify_all();
  }
  FinishServe(client);
  return served;
}

uint64_t CopierService::RunOnce(size_t engine_index) {
  Client* client = PickClient(engine_index);
  if (client == nullptr) {
    return 0;
  }
  return ServePicked(engine_index, *client, options_.config.copy_slice_bytes);
}

uint64_t CopierService::Serve(Client& client, uint64_t max_bytes) {
  bool expected = false;
  while (!client.serving.compare_exchange_weak(expected, true, std::memory_order_acquire)) {
    expected = false;
    std::this_thread::yield();
  }
  return ServePicked(EngineIndexFor(client), client, max_bytes);
}

void CopierService::DrainAll() {
  for (int spin = 0; spin < 1 << 20; ++spin) {
    bool any = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& client : clients_) {
        if (client->HasQueuedWork()) {
          any = true;
          break;
        }
      }
    }
    if (!any) {
      return;
    }
    if (options_.mode == Mode::kManual) {
      uint64_t served = 0;
      for (size_t e = 0; e < engines_.size(); ++e) {
        served += RunOnce(e);
      }
      if (served == 0) {
        // Work queued but nothing runnable from any engine — serve directly,
        // each client on its home engine.
        std::lock_guard<std::mutex> lock(mu_);
        for (auto& client : clients_) {
          if (client->HasQueuedWork()) {
            engines_[EngineIndexFor(*client)]->DrainClient(*client);
          }
        }
      }
    } else {
      if (UseSharded()) {
        // Callers may have pushed work to rings without a NotifyRunnable.
        ReconcileRunnable();
      }
      Awaken();
      std::this_thread::yield();
    }
  }
}

// ---------------------------------------------------------------------------
// Threaded mode (§4.5.1)
// ---------------------------------------------------------------------------

void CopierService::Start() {
  if (options_.mode != Mode::kThreaded || running_.load()) {
    return;
  }
  running_.store(true);
  // One thread per engine: the pool size (not max_threads) bounds thread
  // count, so an explicit engine_count or a disabled pool clamps both.
  active_threads_.store(
      std::min<size_t>(std::max<size_t>(1, options_.config.min_threads), engines_.size()));
  for (size_t i = 0; i < engines_.size(); ++i) {
    threads_.emplace_back([this, i] { ThreadMain(i); });
  }
}

void CopierService::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  Awaken();
  for (auto& thread : threads_) {
    if (thread.joinable()) {
      thread.join();
    }
  }
  threads_.clear();
}

void CopierService::Awaken() {
  ++sched_stats_.broadcast_wakeups;
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->wake_mu);
      shard->wake_seq.fetch_add(1, std::memory_order_release);
    }
    shard->wake_cv.notify_all();
  }
}

void CopierService::NotifyRunnable(Client& client, uint64_t bytes_hint) {
  ++notify_calls_;  // doorbell count: the vectored path's headline metric
  if (bytes_hint != 0) {
    client.submitted_bytes.fetch_add(bytes_hint, std::memory_order_relaxed);
    client.cgroup->NoteSubmitted(bytes_hint);
  }
  if (options_.mode != Mode::kThreaded) {
    return;  // manual mode: the caller drives the engine directly
  }
  if (!options_.config.enable_sharded_scheduler) {
    Awaken();  // linear baseline: scanning threads find the work
    return;
  }
  if (client.detached.load(std::memory_order_acquire) ||
      client.runnable.load(std::memory_order_acquire)) {
    return;  // already queued (dedup fast path) or tearing down
  }
  // Capture the home shard before the insert: once the client is queued it
  // can be picked, served to completion, and freed by a concurrent
  // DetachClient, so nothing after the critical section may dereference it.
  const size_t home = client.home_shard;
  Shard& shard = *shards_[home];
  {
    std::lock_guard<std::mutex> lock(shard.queue.mu);
    if (client.detached.load(std::memory_order_relaxed) ||
        client.runnable.load(std::memory_order_relaxed)) {
      return;
    }
    client.runnable.store(true, std::memory_order_relaxed);
    shard.queue.Insert(client);
  }
  WakeShard(home);
}

void CopierService::WakeShard(size_t shard_index) {
  if (!options_.config.enable_targeted_wakeup) {
    Awaken();
    return;
  }
  // Redirect to the owning thread's wakeup channel (thread i sleeps on
  // shards_[i]): shard s >= active is covered by thread s % active.
  const size_t active = std::max<size_t>(1, active_threads_.load(std::memory_order_acquire));
  const size_t owner = shard_index < active ? shard_index : shard_index % active;
  ++sched_stats_.targeted_wakeups;
  Shard& shard = *shards_[owner];
  {
    std::lock_guard<std::mutex> lock(shard.wake_mu);
    shard.wake_seq.fetch_add(1, std::memory_order_release);
  }
  shard.wake_cv.notify_one();
}

void CopierService::ScenarioBegin() {
  scenario_depth_.fetch_add(1, std::memory_order_acq_rel);
  Awaken();
}

void CopierService::ScenarioEnd() { scenario_depth_.fetch_sub(1, std::memory_order_acq_rel); }

void CopierService::ThreadMain(size_t index) {
  // Auto-scaling: threads above active_threads_ park until load raises the
  // count; thread 0 owns the load measurement.
  Shard& my_shard = *shards_[index];
  size_t idle_spins = 0;
  uint64_t busy_polls = 0;
  uint64_t total_polls = 0;
  while (running_.load(std::memory_order_acquire)) {
    const bool scenario_mode = options_.config.poll_mode == CopierConfig::PollMode::kScenarioDriven;
    const bool parked = index >= active_threads_.load(std::memory_order_acquire) ||
                        (scenario_mode && !scenario_active());
    if (parked) {
      const uint64_t seen = my_shard.wake_seq.load(std::memory_order_acquire);
      {
        std::unique_lock<std::mutex> lock(my_shard.wake_mu);
        my_shard.wake_cv.wait_for(lock, std::chrono::milliseconds(5), [&] {
          return my_shard.wake_seq.load(std::memory_order_acquire) != seen ||
                 !running_.load(std::memory_order_acquire);
        });
      }
      // A targeted wakeup can race with a scale-down and land here after this
      // thread parked. Forward it: WakeShard(index) re-resolves the owner
      // against the *current* active count, notifying the thread that now
      // covers this shard (index % active != index while parked, so this
      // never self-notifies). Guarded on index >= active so scenario-parked
      // owners do not spin on their own queue.
      if (index >= active_threads_.load(std::memory_order_acquire) &&
          !my_shard.queue.Empty()) {
        WakeShard(index);
      }
      continue;
    }

    // Capture the wakeup sequence BEFORE looking for work: a notification
    // that lands between the failed pick and the sleep bumps the sequence,
    // so the wait predicate fires immediately — no lost wakeup.
    const uint64_t seen = my_shard.wake_seq.load(std::memory_order_acquire);
    Client* client = PickClient(index);
    ++total_polls;
    if (client != nullptr) {
      ServePicked(index, *client, options_.config.copy_slice_bytes);
      idle_spins = 0;
      ++busy_polls;
    } else {
      ++idle_spins;
      if (idle_spins >= options_.config.idle_spins_before_sleep) {
        idle_spins = 0;
        Client* rescued = nullptr;
        if (UseSharded()) {
          // Before sleeping: rescue unnotified work, then try to steal from
          // the fullest foreign shard.
          ReconcileRunnable();
          rescued = PickClient(index);
          if (rescued == nullptr && options_.config.enable_work_stealing) {
            rescued = StealClient(index);
          }
        }
        if (rescued != nullptr) {
          ServePicked(index, *rescued, options_.config.copy_slice_bytes);
          ++busy_polls;
        } else {
          // NAPI-style back-off: sleep until awakened or timeout.
          std::unique_lock<std::mutex> lock(my_shard.wake_mu);
          my_shard.wake_cv.wait_for(lock, std::chrono::milliseconds(1), [&] {
            return my_shard.wake_seq.load(std::memory_order_acquire) != seen ||
                   !running_.load(std::memory_order_acquire);
          });
        }
      }
    }

    // Auto-scaling decision, evaluated by thread 0 every 1024 polls.
    if (index == 0 && total_polls % 1024 == 0 && total_polls > 0) {
      const double load = static_cast<double>(busy_polls) / 1024.0;
      busy_polls = 0;
      size_t active = active_threads_.load(std::memory_order_acquire);
      if (load > options_.config.high_load && active < engines_.size()) {
        active_threads_.store(active + 1, std::memory_order_release);
        Awaken();
      } else if (load < options_.config.low_load &&
                 active > std::min<size_t>(std::max<size_t>(1, options_.config.min_threads),
                                           engines_.size())) {
        active_threads_.store(active - 1, std::memory_order_release);
        // A targeted wakeup computed against the old count may have landed on
        // the thread that just parked; broadcast so the threads now covering
        // its shards recheck instead of waiting for a timeout poll.
        Awaken();
      }
    }
  }
}

Engine::Stats CopierService::TotalStats() const {
  Engine::Stats total;
  for (const auto& engine : engines_) {
    const Engine::Stats s = engine->stats();
    total.tasks_ingested += s.tasks_ingested;
    total.tasks_completed += s.tasks_completed;
    total.tasks_dropped += s.tasks_dropped;
    total.tasks_aborted += s.tasks_aborted;
    total.barriers_processed += s.barriers_processed;
    total.sync_promotions += s.sync_promotions;
    total.bytes_copied += s.bytes_copied;
    total.bytes_absorbed += s.bytes_absorbed;
    total.avx_bytes += s.avx_bytes;
    total.dma_bytes_submitted += s.dma_bytes_submitted;
    total.dma_bytes_completed += s.dma_bytes_completed;
    total.dma_batches_submitted += s.dma_batches_submitted;
    total.dma_batches_completed += s.dma_batches_completed;
    total.dma_ring_full_fallbacks += s.dma_ring_full_fallbacks;
    total.dma_stall_cycles += s.dma_stall_cycles;
    total.dma_drain_wait_cycles += s.dma_drain_wait_cycles;
    total.dma_rounds_parked += s.dma_rounds_parked;
    total.kfuncs_run += s.kfuncs_run;
    total.ufuncs_queued += s.ufuncs_queued;
    total.lazy_absorbed_bytes += s.lazy_absorbed_bytes;
    total.remap_tasks += s.remap_tasks;
    total.remapped_bytes += s.remapped_bytes;
    total.remap_cow_breaks += s.remap_cow_breaks;
    total.dep_probes += s.dep_probes;
    total.dep_tasks_scanned += s.dep_tasks_scanned;
    total.index_entries += s.index_entries;
    total.submit_entries += s.submit_entries;
    total.submit_batches += s.submit_batches;
    total.serve_cycles += s.serve_cycles;
    total.cross_dep_probes += s.cross_dep_probes;
    total.cross_dep_settles += s.cross_dep_settles;
    total.cross_dep_defers += s.cross_dep_defers;
    total.cross_dep_wait_cycles += s.cross_dep_wait_cycles;
    total.fused_ipc_tasks += s.fused_ipc_tasks;
    total.fused_ipc_bytes += s.fused_ipc_bytes;
    total.last_kfunc_cycles = std::max(total.last_kfunc_cycles, s.last_kfunc_cycles);
  }
  total.notify_calls = notify_calls_;
  total.fuse_fallbacks = ipc_fuse_stats().fallbacks();
  // Admission decisions live on the cgroups (per-cgroup accounting); the
  // aggregate view rides the engine-stats snapshot like notify_calls does.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& group : cgroups_) {
      total.admission_admitted += group->requests_admitted();
      total.admission_shed += group->requests_shed();
      total.admission_deferred += group->requests_deferred();
      total.admission_throttled += group->requests_throttled();
      total.admission_throttle_cycles += group->throttle_wait_cycles();
    }
  }
  total.overload_ring_backoffs = ring_backoff_events_;
  return total;
}

void CopierService::NoteIpcFuseEvent(simos::FuseEvent event) {
  switch (event) {
    case simos::FuseEvent::kFused:
      ++fuse_fused_;
      break;
    case simos::FuseEvent::kFallbackNotPosted:
      ++fuse_not_posted_;
      break;
    case simos::FuseEvent::kFallbackWindowFull:
      ++fuse_window_full_;
      break;
    case simos::FuseEvent::kFallbackPoolExhausted:
      ++fuse_pool_exhausted_;
      break;
    case simos::FuseEvent::kFallbackRing:
      ++fuse_ring_;
      break;
    case simos::FuseEvent::kForwardFused:
      ++fuse_forward_fused_;
      break;
    case simos::FuseEvent::kFallbackForward:
      ++fuse_forward_fallback_;
      break;
    case simos::FuseEvent::kRingWindowPosted:
      ++fuse_ring_windows_posted_;
      break;
    case simos::FuseEvent::kRingRollover:
      ++fuse_ring_rollovers_;
      break;
  }
}

CopierService::IpcFuseStats CopierService::ipc_fuse_stats() const {
  IpcFuseStats stats;
  stats.fused = fuse_fused_;
  stats.fallback_not_posted = fuse_not_posted_;
  stats.fallback_window_full = fuse_window_full_;
  stats.fallback_pool_exhausted = fuse_pool_exhausted_;
  stats.fallback_ring = fuse_ring_;
  stats.forward_fused = fuse_forward_fused_;
  stats.fallback_forward = fuse_forward_fallback_;
  stats.ring_windows_posted = fuse_ring_windows_posted_;
  stats.ring_rollovers = fuse_ring_rollovers_;
  return stats;
}

CopierService::EngineUtil CopierService::engine_util(size_t i) const {
  EngineUtil util;
  util.stats = engines_[i]->stats();
  util.steals_in = shards_[i]->steals_in;
  util.steals_out = shards_[i]->steals_out;
  util.now = engine_ctxs_[i]->now();
  return util;
}

// ---------------------------------------------------------------------------
// Cross-engine coordination (CrossEngineHooks, DESIGN.md §10)
// ---------------------------------------------------------------------------

uint64_t CopierService::NextGlobalSeq() {
  const uint64_t gseq = next_gseq_.fetch_add(1, std::memory_order_relaxed);
  if (options_.config.enable_engine_pool) {
    // Outstanding until registered or retired: a tombstone above this gseq
    // must survive until the stamped task has had its chance to probe.
    std::lock_guard<std::mutex> lock(ledger_mu_);
    stamped_live_.insert(gseq);
  }
  return gseq;
}

void CopierService::RetireGlobalSeq(uint64_t gseq) {
  if (gseq == 0 || !options_.config.enable_engine_pool) {
    return;
  }
  std::lock_guard<std::mutex> lock(ledger_mu_);
  stamped_live_.erase(gseq);
}

uint64_t CopierService::MinOutstandingSeqLocked() const {
  uint64_t min_seq = stamped_live_.empty() ? UINT64_MAX : *stamped_live_.begin();
  for (const auto& [domain, entries] : ledger_) {
    for (const LedgerEntry& e : entries) {
      if (!e.landed) {
        min_seq = std::min(min_seq, e.gseq);
      }
    }
  }
  return min_seq;
}

bool CopierService::LandedWriteStillNeeded(uint64_t domain, uint64_t gseq) {
  (void)domain;
  std::lock_guard<std::mutex> lock(ledger_mu_);
  // Not gated on the domain being shared *yet*: the lower-gseq prober that
  // needs this entry may be the very task whose registration first turns the
  // domain shared — while its stamp is outstanding, the entry must survive.
  return MinOutstandingSeqLocked() < gseq;
}

bool CopierService::DomainShared(uint64_t domain, const Client& self) {
  (void)self;
  std::lock_guard<std::mutex> lock(ledger_mu_);
  return shared_domains_.count(domain) != 0;
}

void CopierService::RegisterShared(Client& client, PendingTask& task) {
  std::lock_guard<std::mutex> lock(ledger_mu_);
  // The stamp attaches here: from now on the task's live ledger entries keep
  // the pruning bound, not the stamped-but-unattached set.
  stamped_live_.erase(task.gseq);
  const auto add = [&](bool is_write) {
    return [&, is_write](uint64_t domain, uint64_t start, size_t length) {
      if (domain != 0) {
        // Sticky sharing: a foreign client naming this address space makes
        // the owner's subsequent own-space tasks shared-visible too.
        const auto owner = domain_owner_.find(domain);
        if (owner != domain_owner_.end() && owner->second != &client) {
          shared_domains_.insert(domain);
        }
      }
      ledger_[domain].push_back({&client, &task, task.gseq, start, length, is_write, false});
    };
  };
  ForEachSidePiece(task.task, /*dst_side=*/true, add(true));
  ForEachSidePiece(task.task, /*dst_side=*/false, add(false));
}

void CopierService::UnregisterShared(Client& client, PendingTask& task) {
  (void)client;
  std::lock_guard<std::mutex> lock(ledger_mu_);
  // Landed (non-aborted) writes become tombstones: a lower-gseq foreign
  // writer probing the range later must still see — and be suppressed by —
  // this write. Everything else just leaves.
  const bool landed_write = !task.aborted;
  for (auto& [domain, entries] : ledger_) {
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [&](LedgerEntry& e) {
                                   if (e.task != &task) {
                                     return false;
                                   }
                                   if (e.is_write && landed_write) {
                                     e.task = nullptr;
                                     e.landed = true;
                                     return false;
                                   }
                                   return true;
                                 }),
                  entries.end());
  }
  // A tombstone at gseq g matters only while some task ordered before it
  // (gseq < g) could still execute or probe. Live ledger entries are not the
  // whole story: a conflicting task stamped at submission may still be in a
  // ring, un-ingested — the stamped-but-unattached set covers that window,
  // so the bound is the service-wide minimum outstanding sequence.
  const uint64_t min_live = MinOutstandingSeqLocked();
  for (auto it = ledger_.begin(); it != ledger_.end();) {
    auto& entries = it->second;
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [min_live](const LedgerEntry& e) {
                                   return e.landed && e.gseq <= min_live;
                                 }),
                  entries.end());
    it = entries.empty() ? ledger_.erase(it) : std::next(it);
  }
}

Status CopierService::SettleForeign(Engine& thief, Client& client, PendingTask& task,
                                    uint64_t domain, uint64_t start, size_t length,
                                    bool writes) {
  // Phase 1 (under ledger_mu_): collect the foreign work this window orders
  // against, and claim every victim with a single CAS each — no spinning
  // under the mutex, so a victim's owner blocked on ledger_mu_ never
  // deadlocks against us. Any failed claim defers the whole probe
  // (kUnavailable): the prober's engine retries on a later pass.
  struct Settle {
    Client* victim = nullptr;
    uint64_t lo = 0;
    uint64_t hi = 0;
    bool claimed = false;    // this call took `serving` (vs. reentrant hold)
    bool owner_log = false;  // domain owner: also scan its completed-write log
  };
  std::vector<Settle> settles;
  std::vector<Client::CompletedWrite> imports;
  const uint64_t end = start + length;
  bool defer = false;
  {
    std::lock_guard<std::mutex> lock(ledger_mu_);
    const auto it = ledger_.find(domain);
    if (it != ledger_.end()) {
      for (const LedgerEntry& e : it->second) {
        if (e.client == &client) {
          continue;  // own-client order is the engine's normal dependency path
        }
        const uint64_t lo = std::max(start, e.start);
        const uint64_t hi = std::min(end, e.start + e.length);
        if (lo >= hi) {
          continue;
        }
        if (e.landed) {
          // Dead-write import (WAW): their landed write is ordered after us —
          // our write to these bytes must be suppressed, exactly like a local
          // completed write with a higher gseq.
          if (writes && e.gseq > task.gseq) {
            imports.push_back({e.gseq, domain, lo, static_cast<size_t>(hi - lo)});
          }
          continue;
        }
        // Live foreign conflict ordered before us: WAW/WAR when we write,
        // RAW when we read their pending write. RAR never conflicts.
        if (e.gseq >= task.gseq || (!writes && !e.is_write)) {
          continue;
        }
        settles.push_back({e.client, lo, hi, false});
      }
    }
    if (domain != 0) {
      // Owner-domain promotion: the space's owner may hold conflicting
      // *private* tasks the ledger never saw (accepted before the domain
      // turned shared). Its own engine orders them among themselves; we only
      // need the ones below our gseq landed, which SettleSharedRange bounds.
      const auto owner = domain_owner_.find(domain);
      if (owner != domain_owner_.end() && owner->second != &client) {
        settles.push_back({owner->second, start, end, false, true});
      }
    }
    std::vector<Client*> claimed;
    for (Settle& settle : settles) {
      if (ServeStackHolds(*settle.victim) ||
          std::find(claimed.begin(), claimed.end(), settle.victim) != claimed.end()) {
        continue;  // already held by this thread (outer serve or this batch)
      }
      bool expected = false;
      if (!settle.victim->serving.compare_exchange_strong(expected, true,
                                                          std::memory_order_acquire)) {
        defer = true;
        break;
      }
      settle.claimed = true;
      claimed.push_back(settle.victim);
    }
    if (defer) {
      for (Settle& settle : settles) {
        if (settle.claimed) {
          settle.victim->serving.store(false, std::memory_order_release);
          settle.claimed = false;
        }
      }
    }
  }
  if (defer) {
    return Unavailable("foreign client mid-serve; cross-engine settle deferred");
  }
  // Private->shared transition gap: an owner's own-space write that landed
  // *before* the domain turned shared never registered, so no tombstone
  // exists — but its completed-write log still records it. With the owner's
  // claim held (taken above, or by an outer frame on this thread), scan the
  // log for higher-gseq landed writes overlapping our window and import
  // them like tombstones, so our lower-gseq write is suppressed.
  if (writes) {
    for (const Settle& settle : settles) {
      if (!settle.owner_log) {
        continue;
      }
      for (const Client::CompletedWrite& w : settle.victim->completed_writes) {
        if (w.gseq <= task.gseq || w.domain != domain) {
          continue;
        }
        const uint64_t lo = std::max(start, w.start);
        const uint64_t hi = std::min(end, w.start + w.length);
        if (lo < hi) {
          imports.push_back({w.gseq, domain, lo, static_cast<size_t>(hi - lo)});
        }
      }
    }
  }
  // Imports need no lock beyond the prober's own claim (its serving thread is
  // us). Dedup: the same tombstone is seen once per probe of the window.
  for (const Client::CompletedWrite& import : imports) {
    const bool present = std::any_of(
        client.completed_writes.begin(), client.completed_writes.end(),
        [&import](const Client::CompletedWrite& w) {
          return w.gseq == import.gseq && w.domain == import.domain &&
                 w.start == import.start && w.length == import.length;
        });
    if (!present) {
      client.completed_writes.push_back(import);
    }
  }
  // Phase 2 (no ledger lock): run the settles on the thief engine. A nested
  // defer unwinds the whole probe. Claims are NOT released as we go: the
  // same victim commonly appears in several windows (one per overlapping
  // ledger entry plus the owner-domain promotion) with the claim carried by
  // its first entry only — releasing early would let the victim's home
  // thread serve (or DetachClient free) it while later windows still settle.
  Status status = OkStatus();
  for (Settle& settle : settles) {
    if (!status.ok()) {
      break;
    }
    if (settle.victim->detached.load(std::memory_order_acquire)) {
      continue;
    }
    t_serve_stack.push_back(settle.victim);
    status = thief.SettleSharedRange(*settle.victim, domain, settle.lo,
                                     settle.hi - settle.lo, task.gseq);
    t_serve_stack.pop_back();
  }
  // Release every claim only after the last window touching its victim.
  for (Settle& settle : settles) {
    if (settle.claimed) {
      FinishServe(*settle.victim);
      settle.claimed = false;
    }
  }
  return status;
}

CopierService::SchedStats CopierService::sched_stats() const {
  SchedStats s;
  s.picks = sched_stats_.picks;
  s.pick_calls = sched_stats_.pick_calls;
  s.pick_attempts = sched_stats_.pick_attempts;
  s.pick_tsc_cycles = sched_stats_.pick_tsc_cycles;
  s.clients_scanned = sched_stats_.clients_scanned;
  s.steals = sched_stats_.steals;
  s.steal_attempts = sched_stats_.steal_attempts;
  s.targeted_wakeups = sched_stats_.targeted_wakeups;
  s.broadcast_wakeups = sched_stats_.broadcast_wakeups;
  s.reconcile_marks = sched_stats_.reconcile_marks;
  s.dma_reap_requeues = sched_stats_.dma_reap_requeues;
  return s;
}

}  // namespace copier::core
