#include "src/core/service.h"

#include <algorithm>
#include <chrono>

#include "src/common/logging.h"

namespace copier::core {

CopierService::CopierService(Options options)
    : options_(std::move(options)),
      timing_(options_.timing != nullptr ? options_.timing : &hw::TimingModel::Default()) {
  const size_t engine_count = std::max<size_t>(1, options_.config.max_threads);
  for (size_t i = 0; i < engine_count; ++i) {
    engine_ctxs_.push_back(std::make_unique<ExecContext>("copier-" + std::to_string(i)));
    engines_.push_back(
        std::make_unique<Engine>(options_.config, timing_, engine_ctxs_.back().get()));
  }
  cgroups_.push_back(std::make_unique<Cgroup>("root", kDefaultCopierShares));
  root_cgroup_ = cgroups_.back().get();
}

CopierService::~CopierService() { Stop(); }

Client* CopierService::AttachProcess(simos::Process* process, Cgroup* cgroup) {
  std::lock_guard<std::mutex> lock(mu_);
  clients_.push_back(std::make_unique<Client>(next_client_id_++, process, options_.config));
  Client* client = clients_.back().get();
  client->cgroup = cgroup != nullptr ? cgroup : root_cgroup_;
  if (process != nullptr) {
    process->set_copier_client_id(client->id());
  }
  return client;
}

Client* CopierService::AttachKernelClient(const std::string& name, Cgroup* cgroup) {
  (void)name;
  return AttachProcess(nullptr, cgroup);
}

Client* CopierService::ClientById(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& client : clients_) {
    if (client->id() == id) {
      return client.get();
    }
  }
  return nullptr;
}

Cgroup* CopierService::CreateCgroup(const std::string& name, uint64_t shares) {
  std::lock_guard<std::mutex> lock(mu_);
  cgroups_.push_back(std::make_unique<Cgroup>(name, shares));
  return cgroups_.back().get();
}

// ---------------------------------------------------------------------------
// Scheduling (§4.5.3)
// ---------------------------------------------------------------------------

Client* CopierService::PickClient(size_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  // Pass 1: among cgroups with runnable clients assigned to this engine,
  // pick the minimum-vruntime cgroup.
  Cgroup* best_group = nullptr;
  const size_t threads = std::max<size_t>(1, active_threads_.load(std::memory_order_acquire));
  auto assigned_here = [&](const Client& client) {
    if (options_.mode == Mode::kManual) {
      return index == 0;
    }
    return (client.id() % threads) == (index % threads);
  };
  for (auto& client : clients_) {
    if (!assigned_here(*client) || !client->HasQueuedWork()) {
      continue;
    }
    if (best_group == nullptr || client->cgroup->vruntime() < best_group->vruntime()) {
      best_group = client->cgroup;
    }
  }
  if (best_group == nullptr) {
    return nullptr;
  }
  // Pass 2: within the cgroup, minimum total copy length (CFS analogue).
  Client* best = nullptr;
  for (auto& client : clients_) {
    if (!assigned_here(*client) || client->cgroup != best_group || !client->HasQueuedWork()) {
      continue;
    }
    if (best == nullptr || client->total_copy_length < best->total_copy_length) {
      best = client.get();
    }
  }
  if (best != nullptr) {
    bool expected = false;
    if (!best->serving.compare_exchange_strong(expected, true, std::memory_order_acquire)) {
      return nullptr;  // another thread is mid-serve on this client
    }
  }
  return best;
}

void CopierService::AccountService(Client& client, uint64_t bytes) {
  if (bytes == 0) {
    return;
  }
  client.cgroup->Account(bytes);
  client.cgroup->AccountRaw(bytes);
}

uint64_t CopierService::RunOnce() {
  ChargeCtx(engine_ctxs_[0].get(), timing_->schedule_pick_cycles);
  Client* client = PickClient(0);
  if (client == nullptr) {
    return 0;
  }
  const uint64_t served = engines_[0]->ServeClient(*client, options_.config.copy_slice_bytes);
  AccountService(*client, served);
  client->serving.store(false, std::memory_order_release);
  return served;
}

uint64_t CopierService::Serve(Client& client, uint64_t max_bytes) {
  bool expected = false;
  while (!client.serving.compare_exchange_weak(expected, true, std::memory_order_acquire)) {
    expected = false;
    std::this_thread::yield();
  }
  const uint64_t served = engines_[0]->ServeClient(client, max_bytes);
  AccountService(client, served);
  client.serving.store(false, std::memory_order_release);
  return served;
}

void CopierService::DrainAll() {
  for (int spin = 0; spin < 1 << 20; ++spin) {
    bool any = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& client : clients_) {
        if (client->HasQueuedWork()) {
          any = true;
          break;
        }
      }
    }
    if (!any) {
      return;
    }
    if (options_.mode == Mode::kManual) {
      if (RunOnce() == 0) {
        // Work queued but nothing runnable from engine 0 — serve directly.
        std::lock_guard<std::mutex> lock(mu_);
        for (auto& client : clients_) {
          if (client->HasQueuedWork()) {
            engines_[0]->DrainClient(*client);
          }
        }
      }
    } else {
      Awaken();
      std::this_thread::yield();
    }
  }
}

// ---------------------------------------------------------------------------
// Threaded mode (§4.5.1)
// ---------------------------------------------------------------------------

void CopierService::Start() {
  if (options_.mode != Mode::kThreaded || running_.load()) {
    return;
  }
  running_.store(true);
  active_threads_.store(options_.config.min_threads);
  for (size_t i = 0; i < options_.config.max_threads; ++i) {
    threads_.emplace_back([this, i] { ThreadMain(i); });
  }
}

void CopierService::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  Awaken();
  for (auto& thread : threads_) {
    if (thread.joinable()) {
      thread.join();
    }
  }
  threads_.clear();
}

void CopierService::Awaken() {
  std::lock_guard<std::mutex> lock(wake_mu_);
  wake_seq_.fetch_add(1, std::memory_order_release);
  wake_cv_.notify_all();
}

void CopierService::ScenarioBegin() {
  scenario_depth_.fetch_add(1, std::memory_order_acq_rel);
  Awaken();
}

void CopierService::ScenarioEnd() { scenario_depth_.fetch_sub(1, std::memory_order_acq_rel); }

void CopierService::ThreadMain(size_t index) {
  // Auto-scaling: threads above active_threads_ park until load raises the
  // count; thread 0 owns the load measurement.
  size_t idle_spins = 0;
  uint64_t busy_polls = 0;
  uint64_t total_polls = 0;
  while (running_.load(std::memory_order_acquire)) {
    const bool scenario_mode = options_.config.poll_mode == CopierConfig::PollMode::kScenarioDriven;
    const bool parked = index >= active_threads_.load(std::memory_order_acquire) ||
                        (scenario_mode && !scenario_active());
    if (parked) {
      std::unique_lock<std::mutex> lock(wake_mu_);
      wake_cv_.wait_for(lock, std::chrono::milliseconds(5));
      continue;
    }

    Client* client = PickClient(index);
    ++total_polls;
    if (client != nullptr) {
      const uint64_t served =
          engines_[index]->ServeClient(*client, options_.config.copy_slice_bytes);
      AccountService(*client, served);
      client->serving.store(false, std::memory_order_release);
      idle_spins = 0;
      ++busy_polls;
    } else {
      ++idle_spins;
      if (idle_spins >= options_.config.idle_spins_before_sleep) {
        // NAPI-style back-off: sleep until awakened or timeout.
        std::unique_lock<std::mutex> lock(wake_mu_);
        wake_cv_.wait_for(lock, std::chrono::milliseconds(1));
        idle_spins = 0;
      }
    }

    // Auto-scaling decision, evaluated by thread 0 every 1024 polls.
    if (index == 0 && total_polls % 1024 == 0 && total_polls > 0) {
      const double load = static_cast<double>(busy_polls) / 1024.0;
      busy_polls = 0;
      size_t active = active_threads_.load(std::memory_order_acquire);
      if (load > options_.config.high_load && active < options_.config.max_threads) {
        active_threads_.store(active + 1, std::memory_order_release);
        Awaken();
      } else if (load < options_.config.low_load && active > options_.config.min_threads) {
        active_threads_.store(active - 1, std::memory_order_release);
      }
    }
  }
}

Engine::Stats CopierService::TotalStats() const {
  Engine::Stats total;
  for (const auto& engine : engines_) {
    const Engine::Stats& s = engine->stats();
    total.tasks_ingested += s.tasks_ingested;
    total.tasks_completed += s.tasks_completed;
    total.tasks_dropped += s.tasks_dropped;
    total.tasks_aborted += s.tasks_aborted;
    total.barriers_processed += s.barriers_processed;
    total.sync_promotions += s.sync_promotions;
    total.bytes_copied += s.bytes_copied;
    total.bytes_absorbed += s.bytes_absorbed;
    total.avx_bytes += s.avx_bytes;
    total.dma_bytes += s.dma_bytes;
    total.dma_batches += s.dma_batches;
    total.kfuncs_run += s.kfuncs_run;
    total.ufuncs_queued += s.ufuncs_queued;
    total.lazy_absorbed_bytes += s.lazy_absorbed_bytes;
    total.dep_probes += s.dep_probes;
    total.dep_tasks_scanned += s.dep_tasks_scanned;
    total.index_entries += s.index_entries;
  }
  return total;
}

}  // namespace copier::core
