#include "src/core/range_index.h"

#include <algorithm>

namespace copier::core {

RangeIndex::~RangeIndex() {
  FreeTree(roots_[0]);
  FreeTree(roots_[1]);
}

void RangeIndex::FreeTree(Node* n) {
  if (n == nullptr) {
    return;
  }
  FreeTree(n->left);
  FreeTree(n->right);
  delete n;
}

void RangeIndex::Update(Node* n) {
  n->max_hi = n->hi;
  if (n->left != nullptr) {
    n->max_hi = std::max(n->max_hi, n->left->max_hi);
  }
  if (n->right != nullptr) {
    n->max_hi = std::max(n->max_hi, n->right->max_hi);
  }
}

RangeIndex::Node* RangeIndex::RotateRight(Node* n) {
  Node* l = n->left;
  n->left = l->right;
  l->right = n;
  Update(n);
  Update(l);
  return l;
}

RangeIndex::Node* RangeIndex::RotateLeft(Node* n) {
  Node* r = n->right;
  n->right = r->left;
  r->left = n;
  Update(n);
  Update(r);
  return r;
}

RangeIndex::Node* RangeIndex::InsertNode(Node* n, Node* fresh) {
  if (n == nullptr) {
    Update(fresh);
    return fresh;
  }
  if (KeyLess(fresh->lo, fresh->order, *n)) {
    n->left = InsertNode(n->left, fresh);
    if (n->left->priority > n->priority) {
      n = RotateRight(n);
    }
  } else {
    n->right = InsertNode(n->right, fresh);
    if (n->right->priority > n->priority) {
      n = RotateLeft(n);
    }
  }
  Update(n);
  return n;
}

RangeIndex::Node* RangeIndex::EraseNode(Node* n, Coord lo, uint64_t order, bool* erased) {
  if (n == nullptr) {
    return nullptr;
  }
  if (lo == n->lo && order == n->order) {
    *erased = true;
    if (n->left == nullptr || n->right == nullptr) {
      Node* child = n->left != nullptr ? n->left : n->right;
      delete n;
      return child;
    }
    // Rotate the higher-priority child up, then recurse into the side the
    // doomed node moved to.
    if (n->left->priority > n->right->priority) {
      n = RotateRight(n);
      n->right = EraseNode(n->right, lo, order, erased);
    } else {
      n = RotateLeft(n);
      n->left = EraseNode(n->left, lo, order, erased);
    }
  } else if (KeyLess(lo, order, *n)) {
    n->left = EraseNode(n->left, lo, order, erased);
  } else {
    n->right = EraseNode(n->right, lo, order, erased);
  }
  Update(n);
  return n;
}

void RangeIndex::Insert(Side side, uint64_t domain, uint64_t start, size_t length,
                        uint64_t order, PendingTask* task, size_t task_offset) {
  if (length == 0) {
    return;
  }
  Node* fresh = new Node;
  fresh->lo = Pack(domain, start);
  fresh->hi = fresh->lo + length;
  fresh->order = order;
  fresh->task_offset = task_offset;
  fresh->task = task;
  fresh->priority = NextPriority();
  Node*& root = roots_[static_cast<size_t>(side)];
  root = InsertNode(root, fresh);
  ++size_;
}

void RangeIndex::Erase(Side side, uint64_t domain, uint64_t start, uint64_t order) {
  bool erased = false;
  Node*& root = roots_[static_cast<size_t>(side)];
  root = EraseNode(root, Pack(domain, start), order, &erased);
  if (erased) {
    --size_;
  }
}

}  // namespace copier::core
