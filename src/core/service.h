// CopierService — the OS service tying everything together (§4.5).
//
// Owns clients, cgroups and Copier threads. Two driving modes:
//   * kManual   — no threads; the caller (tests, the virtual-time benchmark
//                 harness, single-core setups) drives RunOnce()/ServeClient()
//                 explicitly and csync() pumps the engine inline.
//   * kThreaded — real Copier (k)threads poll client queues, NAPI-style with
//                 idle back-off or scenario-driven (§4.5.1), with auto-scaling
//                 between min_threads and max_threads.
//
// Scheduling (§4.5.3): each serving pass picks the cgroup with minimum
// share-weighted vruntime, then the client with minimum total copy length in
// it, and serves at most one copy slice — CFS with copy length as the
// resource (§4.5.2).
#ifndef COPIER_SRC_CORE_SERVICE_H_
#define COPIER_SRC_CORE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/exec_context.h"
#include "src/core/cgroup.h"
#include "src/core/client.h"
#include "src/core/config.h"
#include "src/core/engine.h"
#include "src/hw/timing_model.h"
#include "src/simos/process.h"

namespace copier::core {

class CopierService {
 public:
  enum class Mode {
    kManual,
    kThreaded,
  };

  struct Options {
    CopierConfig config;
    const hw::TimingModel* timing = nullptr;  // default: TimingModel::Default()
    Mode mode = Mode::kManual;
  };

  explicit CopierService(Options options);
  ~CopierService();

  CopierService(const CopierService&) = delete;
  CopierService& operator=(const CopierService&) = delete;

  // --- clients / cgroups -------------------------------------------------------

  // Attaches a process (copier_create_mapped_queue, Table 2): creates the
  // client with its default u/k queue pair. `cgroup` null = root cgroup.
  Client* AttachProcess(simos::Process* process, Cgroup* cgroup = nullptr);
  // Standalone kernel-service client (e.g. the CoW handler, §4.5).
  Client* AttachKernelClient(const std::string& name, Cgroup* cgroup = nullptr);
  Client* ClientById(uint64_t id);

  Cgroup* CreateCgroup(const std::string& name, uint64_t shares);
  Cgroup* root_cgroup() { return root_cgroup_; }

  // --- manual-mode driving -------------------------------------------------------

  // One scheduling pick + copy slice; returns bytes served (0 = idle).
  uint64_t RunOnce();
  // Serves a specific client (csync pump path). Returns bytes served.
  uint64_t Serve(Client& client, uint64_t max_bytes = UINT64_MAX);
  // Runs until no client has queued or pending work.
  void DrainAll();

  Engine& engine() { return *engines_[0]; }
  ExecContext& engine_ctx() { return *engine_ctxs_[0]; }

  // --- threaded-mode control (§4.5.1) ----------------------------------------------

  void Start();
  void Stop();
  // copier_awaken(fd): wakes sleeping Copier threads.
  void Awaken();
  // Scenario-driven polling: threads serve only while a scenario is active.
  void ScenarioBegin();
  void ScenarioEnd();
  bool scenario_active() const { return scenario_depth_.load(std::memory_order_acquire) > 0; }
  size_t active_threads() const { return active_threads_.load(std::memory_order_acquire); }

  const CopierConfig& config() const { return options_.config; }
  const hw::TimingModel& timing() const { return *timing_; }
  Mode mode() const { return options_.mode; }

  // Aggregated engine stats (all threads).
  Engine::Stats TotalStats() const;

 private:
  void ThreadMain(size_t index);
  // Scheduler: next client for engine `index` (nullptr = nothing runnable).
  Client* PickClient(size_t index);
  void AccountService(Client& client, uint64_t bytes);

  Options options_;
  const hw::TimingModel* timing_;

  mutable std::mutex mu_;  // guards clients_ / cgroups_ lists
  std::vector<std::unique_ptr<Client>> clients_;
  std::vector<std::unique_ptr<Cgroup>> cgroups_;
  Cgroup* root_cgroup_ = nullptr;
  uint64_t next_client_id_ = 1;

  // One engine (+ context) per potential thread; index 0 doubles as the
  // manual-mode engine.
  std::vector<std::unique_ptr<ExecContext>> engine_ctxs_;
  std::vector<std::unique_ptr<Engine>> engines_;

  // Threaded mode.
  std::vector<std::thread> threads_;
  std::atomic<bool> running_{false};
  std::atomic<size_t> active_threads_{0};
  std::atomic<int> scenario_depth_{0};
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<uint64_t> wake_seq_{0};
};

}  // namespace copier::core

#endif  // COPIER_SRC_CORE_SERVICE_H_
