// CopierService — the OS service tying everything together (§4.5).
//
// Owns clients, cgroups and Copier threads. Two driving modes:
//   * kManual   — no threads; the caller (tests, the virtual-time benchmark
//                 harness, single-core setups) drives RunOnce()/ServeClient()
//                 explicitly and csync() pumps the engine inline.
//   * kThreaded — real Copier (k)threads poll client queues, NAPI-style with
//                 idle back-off or scenario-driven (§4.5.1), with auto-scaling
//                 between min_threads and max_threads.
//
// Scheduling (§4.5.3): each serving pass picks the cgroup with minimum
// share-weighted vruntime, then the client with minimum total copy length in
// it, and serves at most one copy slice — CFS with copy length as the
// resource (§4.5.2).
//
// Threaded mode runs that policy over *sharded run queues* (DESIGN.md §7):
// every client has a stable home shard (id % shard_count); submitters mark it
// runnable there (NotifyRunnable) and issue a targeted wakeup of the shard's
// owning thread; a pick pops the best client from the thread's shards in
// O(log n) under the shard lock instead of scanning every client under a
// global mutex. Idle threads steal the highest-backlog runnable client from
// the fullest foreign shard before sleeping. Manual mode — and threaded mode
// with config.enable_sharded_scheduler off (ablation baseline) — keeps the
// original global-mutex linear double scan.
#ifndef COPIER_SRC_CORE_SERVICE_H_
#define COPIER_SRC_CORE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/exec_context.h"
#include "src/common/relaxed_counter.h"
#include "src/core/cgroup.h"
#include "src/core/client.h"
#include "src/core/config.h"
#include "src/core/engine.h"
#include "src/core/sched.h"
#include "src/hw/dma_channel_pool.h"
#include "src/hw/timing_model.h"
#include "src/simos/copy_backend.h"
#include "src/simos/process.h"

namespace copier::core {

class CopierService : public CrossEngineHooks {
 public:
  enum class Mode {
    kManual,
    kThreaded,
  };

  struct Options {
    CopierConfig config;
    const hw::TimingModel* timing = nullptr;  // default: TimingModel::Default()
    Mode mode = Mode::kManual;
  };

  // Scheduler observability (host-side, real counters — not the virtual cost
  // model). Snapshot type; the live counters are relaxed atomics.
  struct SchedStats {
    uint64_t picks = 0;            // successful picks (a client was returned)
    uint64_t pick_calls = 0;       // PickClient invocations, including idle
    uint64_t pick_attempts = 0;    // serving-CAS attempts on popped clients
    uint64_t pick_tsc_cycles = 0;  // host TSC cycles spent inside PickClient
    uint64_t clients_scanned = 0;  // linear baseline: clients examined
    uint64_t steals = 0;           // clients served off a foreign shard
    uint64_t steal_attempts = 0;
    uint64_t targeted_wakeups = 0;   // single-thread notify (sharded path)
    uint64_t broadcast_wakeups = 0;  // Awaken() notify-all over every shard
    uint64_t reconcile_marks = 0;    // idle-path rescues of unnotified work
    uint64_t dma_reap_requeues = 0;  // serve-end re-queues issued while the
                                     // client still had DMA bytes in flight
                                     // (the parked round's path back to a
                                     // reaping serve, DESIGN.md §9)
  };

  explicit CopierService(Options options);
  ~CopierService();

  CopierService(const CopierService&) = delete;
  CopierService& operator=(const CopierService&) = delete;

  // --- clients / cgroups -------------------------------------------------------

  // Attaches a process (copier_create_mapped_queue, Table 2): creates the
  // client with its default u/k queue pair. `cgroup` null = root cgroup.
  Client* AttachProcess(simos::Process* process, Cgroup* cgroup = nullptr);
  // Standalone kernel-service client (e.g. the CoW handler, §4.5).
  Client* AttachKernelClient(const std::string& name, Cgroup* cgroup = nullptr);
  Client* ClientById(uint64_t id);
  // Detaches and destroys a client: marks it detached (suppressing further
  // runnable notifications), removes it from its home shard's run queue and
  // the client tables (so no picker, sharded or linear, can still reach it),
  // waits out any in-flight serve, then frees it. Safe while threads run.
  void DetachClient(Client& client);

  Cgroup* CreateCgroup(const std::string& name, uint64_t shares);
  Cgroup* root_cgroup() { return root_cgroup_; }

  // --- overload admission control (DESIGN.md §13) ------------------------------

  enum class AdmissionVerdict {
    kAdmit,     // proceed; close with FinishRequest
    kShed,      // rejected — do not submit
    kDefer,     // retry after wait_cycles (up to admission_max_defer_retries)
    kThrottle,  // admitted, but charge wait_cycles of backpressure first
  };
  struct Admission {
    AdmissionVerdict verdict = AdmissionVerdict::kAdmit;
    Cycles wait_cycles = 0;  // kDefer: retry-after gap; kThrottle: imposed wait
  };

  // Request-boundary admission decision for a request costing ~`bytes` of
  // copy work on `client`'s cgroup, taken at the submitter's clock `now`.
  // Overload = the cgroup's admitted-but-unfinished work exceeds the
  // config bounds, its scheduler backlog exceeds the byte bound, or the
  // engines reported fresh DMA ring-full fallbacks (OverloadSignals) within
  // the current back-off window. overload_policy = kNone always admits.
  // Admitted (and throttled) requests must be closed with FinishRequest;
  // decisions never split a request's copy work — admitted work runs
  // byte-for-byte as without the policy.
  Admission AdmitRequest(Client& client, uint64_t bytes, Cycles now);
  // Closes an admitted request whose work completes at `completion` on the
  // submitter's clock (under virtual-time queueing that may be in a later
  // prober's future; the inflight window keeps counting it until then).
  void FinishRequest(Client& client, uint64_t bytes, Cycles completion);
  // A submitter gave up on a kDefer'd request (retry budget exhausted):
  // account it as shed so offered = admitted + shed stays exact.
  void AbandonRequest(Client& client);

  // Engine-facing saturation counters (engines hold a pointer; see
  // Engine::set_overload_signals).
  OverloadSignals& overload_signals() { return overload_signals_; }

  // --- manual-mode driving -------------------------------------------------------

  // One scheduling pick + copy slice on engine `engine_index`; returns bytes
  // served (0 = idle). Manual multi-engine drivers (benches, the differential
  // test) round-robin the index; the default keeps single-engine callers
  // unchanged.
  uint64_t RunOnce(size_t engine_index = 0);
  // Serves a specific client (csync pump path) on its home engine. Returns
  // bytes served.
  uint64_t Serve(Client& client, uint64_t max_bytes = UINT64_MAX);
  // Runs until no client has queued or pending work.
  void DrainAll();

  Engine& engine() { return *engines_[0]; }
  Engine& engine(size_t i) { return *engines_[i]; }
  ExecContext& engine_ctx() { return *engine_ctxs_[0]; }
  ExecContext& engine_ctx(size_t i) { return *engine_ctxs_[i]; }
  size_t engine_count() const { return engines_.size(); }
  // Engine a client's serves land on by default: its home shard (engines and
  // shards are 1:1 in the pool).
  size_t EngineIndexFor(const Client& client) const {
    return engines_.size() > 1 ? client.home_shard % engines_.size() : 0;
  }

  // Service-global submission sequence (DESIGN.md §10): submitters stamp
  // CopyTask::gseq with this before pushing, fixing the cross-client conflict
  // order at submission time — identical no matter which engine ingests or
  // executes first. The sequence counts as outstanding (it bounds tombstone
  // pruning) until the task registers in the ledger, ingests as private, or
  // the submitter retires it on a failed push (RetireGlobalSeq).
  uint64_t AllocateGlobalSeq() { return NextGlobalSeq(); }
  // Submitter-side release of a stamped sequence whose task never entered a
  // ring (push failure, synchronous fallback). No-op for gseq 0.
  void RetireGlobalSeq(uint64_t gseq) override;

  // --- threaded-mode control (§4.5.1) ----------------------------------------------

  void Start();
  void Stop();
  // copier_awaken(fd): wakes sleeping Copier threads (broadcast).
  void Awaken();
  // Submission-side hook: marks `client` runnable on its home shard and wakes
  // the shard's owner thread. `bytes_hint` (the submitted copy length, when
  // the caller knows it) feeds the backlog estimate steal-victim selection
  // uses. Falls back to Awaken() when the sharded scheduler is off. Safe to
  // call redundantly — runnable marks dedup.
  void NotifyRunnable(Client& client, uint64_t bytes_hint = 0);
  // Scenario-driven polling: threads serve only while a scenario is active.
  void ScenarioBegin();
  void ScenarioEnd();
  bool scenario_active() const { return scenario_depth_.load(std::memory_order_acquire) > 0; }
  size_t active_threads() const { return active_threads_.load(std::memory_order_acquire); }
  size_t shard_count() const { return shards_.size(); }

  const CopierConfig& config() const { return options_.config; }
  const hw::TimingModel& timing() const { return *timing_; }
  Mode mode() const { return options_.mode; }

  // Fused-IPC routing observability (DESIGN.md §12): one send-time decision
  // per posted-capable transfer, recorded by the kernel glue
  // (CopierLinux::NoteFuseEvent). Snapshot type; live counters are relaxed
  // atomics. The fallback split distinguishes skb-pool pressure from
  // receiver-not-posted — invisible in engine stats before this.
  struct IpcFuseStats {
    uint64_t fused = 0;                    // dispatched as one fused task
    uint64_t fallback_not_posted = 0;      // receiver window absent
    uint64_t fallback_window_full = 0;     // window present but full/too small
    uint64_t fallback_pool_exhausted = 0;  // no skb/buffer flow-control token
    uint64_t fallback_ring = 0;            // submission ring full → two-step
    uint64_t forward_fused = 0;            // forwarded src→destination-window
    uint64_t fallback_forward = 0;         // forward declined → landed locally
    uint64_t ring_windows_posted = 0;      // windows posted behind another
    uint64_t ring_rollovers = 0;           // sends spilling into a next window
    uint64_t fallbacks() const {
      return fallback_not_posted + fallback_window_full + fallback_pool_exhausted +
             fallback_ring;
    }
    // Share of posted-capable sends that stayed on the single-hop fused path
    // (forwarded sends included). fallback_forward is not in the denominator:
    // a declined forward still lands fused in the window.
    double fused_rate() const {
      const uint64_t total = fused + forward_fused + fallbacks();
      return total == 0 ? 0.0 : static_cast<double>(fused + forward_fused) / total;
    }
  };
  void NoteIpcFuseEvent(simos::FuseEvent event);
  IpcFuseStats ipc_fuse_stats() const;

  // Aggregated engine stats (all threads).
  Engine::Stats TotalStats() const;
  // Scheduler counters snapshot, safe from any thread.
  SchedStats sched_stats() const;

  // Per-engine utilization snapshot (bench_fig14_utilization, bench_engines):
  // the engine's own counters plus the service-side steal traffic touching
  // its shard and its virtual clock.
  struct EngineUtil {
    Engine::Stats stats;
    uint64_t steals_in = 0;   // serves this engine ran for foreign-shard clients
    uint64_t steals_out = 0;  // serves of this shard's clients run by thieves
    Cycles now = 0;           // engine virtual clock (cycles of serving history)
  };
  EngineUtil engine_util(size_t i) const;

 private:
  // --- cross-engine coordination (CrossEngineHooks, DESIGN.md §10) ------------

  uint64_t NextGlobalSeq() override;
  bool DomainShared(uint64_t domain, const Client& self) override;
  bool LandedWriteStillNeeded(uint64_t domain, uint64_t gseq) override;
  void RegisterShared(Client& client, PendingTask& task) override;
  void UnregisterShared(Client& client, PendingTask& task) override;
  Status SettleForeign(Engine& thief, Client& client, PendingTask& task, uint64_t domain,
                       uint64_t start, size_t length, bool writes) override;

  // One dst/src piece of a live shared-visible task, or the tombstone of a
  // landed (completed, non-aborted) shared write. Tombstones keep cross-client
  // WAW suppression alive after the writer retires: a lower-gseq foreign
  // writer probing the range imports them into its own completed-write log.
  struct LedgerEntry {
    Client* client = nullptr;
    PendingTask* task = nullptr;  // null once landed (tombstone)
    uint64_t gseq = 0;
    uint64_t start = 0;
    size_t length = 0;
    bool is_write = false;  // a dst piece
    bool landed = false;
  };
  // One scheduler shard: a run queue plus the wakeup channel of the thread
  // that owns it. Thread i sleeps on shards_[i]'s channel; shard s (s >=
  // active_threads) is covered — and its wakeups redirected — via
  // s % active_threads, so every shard stays owned as auto-scaling moves
  // the active count.
  struct Shard {
    ShardRunQueue queue;
    std::mutex wake_mu;
    std::condition_variable wake_cv;
    std::atomic<uint64_t> wake_seq{0};
    // Steal traffic by shard (engines and shards are 1:1): serves the owning
    // engine ran for foreign clients, and serves of this shard's clients run
    // by thieves.
    RelaxedCounter steals_in;
    RelaxedCounter steals_out;
  };

  // Live scheduler counters (field-for-field mirror of SchedStats).
  struct AtomicSchedStats {
    RelaxedCounter picks;
    RelaxedCounter pick_calls;
    RelaxedCounter pick_attempts;
    RelaxedCounter pick_tsc_cycles;
    RelaxedCounter clients_scanned;
    RelaxedCounter steals;
    RelaxedCounter steal_attempts;
    RelaxedCounter targeted_wakeups;
    RelaxedCounter broadcast_wakeups;
    RelaxedCounter reconcile_marks;
    RelaxedCounter dma_reap_requeues;
  };

  bool UseSharded() const {
    return options_.mode == Mode::kThreaded && options_.config.enable_sharded_scheduler;
  }

  void ThreadMain(size_t index);
  // Unhooks the per-engine ATCache invalidation listeners a registration
  // installed on the client's address space (detach and teardown paths — the
  // space is owned outside the service and outlives it).
  void RemoveSpaceListeners(Client& client);
  // Scheduler: next client for engine `index` (nullptr = nothing runnable).
  // The returned client's `serving` flag is held by the caller.
  Client* PickClient(size_t index);
  Client* PickClientSharded(size_t index);
  Client* PickClientLinear(size_t index);
  // Steals the highest-backlog runnable client from the fullest shard not
  // covered by thread `index`. Returns it with `serving` held, or nullptr.
  Client* StealClient(size_t index);
  // Idle-path safety net: marks runnable any client that has queued work but
  // no runnable mark (work pushed to rings without a NotifyRunnable — tests
  // and low-level users may do that legally).
  void ReconcileRunnable();
  // Wakes the thread owning `shard` (targeted), or everyone (broadcast) when
  // targeted wakeups are disabled.
  void WakeShard(size_t shard);
  // Serves a picked client on engine `index` and releases it: accounts the
  // bytes, clears `serving`, and — atomically with the release, under the
  // home shard's lock — re-queues the client if work remains (the covering
  // re-notify that makes dropped serving-CAS conflicts safe, DESIGN.md §7).
  uint64_t ServePicked(size_t index, Client& client, uint64_t max_bytes);
  void FinishServe(Client& client);
  void AccountService(Client& client, uint64_t bytes);

  Options options_;
  const hw::TimingModel* timing_;

  mutable std::mutex mu_;  // guards clients_ / cgroups_ lists + client_index_
  std::vector<std::unique_ptr<Client>> clients_;
  std::unordered_map<uint64_t, Client*> client_index_;  // id -> client
  std::vector<std::unique_ptr<Cgroup>> cgroups_;
  Cgroup* root_cgroup_ = nullptr;
  uint64_t next_client_id_ = 1;

  // Engine pool (DESIGN.md §10): `engine_count` copier instances (one when
  // the pool is disabled), each owning a disjoint slice of the shared DMA
  // channel pool. Index 0 doubles as the default manual-mode engine.
  std::unique_ptr<hw::DmaChannelPool> dma_pool_;
  std::vector<std::unique_ptr<ExecContext>> engine_ctxs_;
  std::vector<std::unique_ptr<Engine>> engines_;

  // Shared-range ledger (DESIGN.md §10). Lock order: mu_ before ledger_mu_;
  // ledger_mu_ is never held while an engine runs (settles happen after the
  // collection phase releases it), only across entry mutation and victim
  // serving-claims.
  std::atomic<uint64_t> next_gseq_{1};  // 0 = unstamped
  mutable std::mutex ledger_mu_;
  std::unordered_map<uint64_t, std::vector<LedgerEntry>> ledger_;  // domain ->
  std::unordered_map<uint64_t, Client*> domain_owner_;             // asid -> owner
  std::unordered_set<uint64_t> shared_domains_;  // sticky: foreign client seen
  // Sequences stamped but not yet attached: allocated by NextGlobalSeq and
  // neither registered in the ledger nor retired. Their minimum bounds
  // tombstone (and completed-write) pruning — a task stamped at submission
  // may probe the ledger only after a ring traversal, and a tombstone above
  // its gseq must still be there when it does. Empty when the pool is off.
  std::set<uint64_t> stamped_live_;
  // Lowest gseq that may still execute or probe service-wide: min over
  // stamped-but-unattached sequences and live (non-landed) ledger entries.
  // Requires ledger_mu_.
  uint64_t MinOutstandingSeqLocked() const;

  // One shard per potential thread. Lock order: mu_ before any
  // Shard::queue.mu; never the reverse. Shard queue locks never nest.
  std::vector<std::unique_ptr<Shard>> shards_;

  // Threaded mode.
  std::vector<std::thread> threads_;
  std::atomic<bool> running_{false};
  std::atomic<size_t> active_threads_{0};
  std::atomic<int> scenario_depth_{0};

  // Overload admission control (DESIGN.md §13): engine saturation feedback
  // plus the back-off window it arms. ring_seen_ is the high-water mark of
  // ring_full_events already folded into a back-off; ring_backoff_credits_
  // counts admission decisions the current window still covers.
  OverloadSignals overload_signals_;
  std::atomic<uint64_t> ring_seen_{0};
  std::atomic<uint64_t> ring_backoff_credits_{0};
  mutable RelaxedCounter ring_backoff_events_;

  mutable AtomicSchedStats sched_stats_;
  // Doorbell count (NotifyRunnable calls), service-wide: the vectored
  // submission path's O(1)-per-syscall claim is measured against this.
  mutable RelaxedCounter notify_calls_;
  // Fused-IPC routing counters (IpcFuseStats mirror; fed by NoteIpcFuseEvent).
  mutable RelaxedCounter fuse_fused_;
  mutable RelaxedCounter fuse_not_posted_;
  mutable RelaxedCounter fuse_window_full_;
  mutable RelaxedCounter fuse_pool_exhausted_;
  mutable RelaxedCounter fuse_ring_;
  mutable RelaxedCounter fuse_forward_fused_;
  mutable RelaxedCounter fuse_forward_fallback_;
  mutable RelaxedCounter fuse_ring_windows_posted_;
  mutable RelaxedCounter fuse_ring_rollovers_;
};

}  // namespace copier::core

#endif  // COPIER_SRC_CORE_SERVICE_H_
