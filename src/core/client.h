// Client — one consumer of the Copier service (§4.5): a user process, or an
// OS service with a standalone context.
//
// Every client owns two sets of CSH Queues (§4.2.1): u-mode queues written by
// the application/library and k-mode queues written by kernel services
// executing in the process's context (syscalls). Low-level users may create
// additional queue sets (per-thread queues, §5.1.1), addressed by fd.
//
// The members under "service-side state" are owned by the Copier thread that
// currently serves the client and are not touched by submitters.
#ifndef COPIER_SRC_CORE_CLIENT_H_
#define COPIER_SRC_CORE_CLIENT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/ring_buffer.h"
#include "src/core/config.h"
#include "src/core/descriptor.h"
#include "src/core/range_index.h"
#include "src/core/task.h"
#include "src/simos/process.h"

namespace copier::core {

class Cgroup;

// One set of Copy/Sync/Handler queues.
struct QueueSet {
  explicit QueueSet(size_t capacity)
      : copy_q(capacity), sync_q(capacity), handler_q(capacity) {}

  MpscRingBuffer<CopyQueueEntry> copy_q;
  MpscRingBuffer<SyncTask> sync_q;
  MpscRingBuffer<HandlerTask> handler_q;
};

// A u-mode/k-mode queue pair whose cross-queue order is tracked via Barrier
// Tasks. The default pair has fd 0; per-thread pairs get fresh fds.
struct QueuePair {
  explicit QueuePair(size_t capacity) : user(capacity), kernel(capacity) {}

  QueueSet user;
  QueueSet kernel;

  // --- service-side ingestion state (§4.2.1) ---
  uint64_t user_ingested = 0;   // count of u-mode Copy Queue entries consumed
  bool kernel_bracket_open = false;  // between BarrierEnter and BarrierExit
  uint64_t bracket_user_bound = 0;   // u entries < bound precede the bracket
};

// A Copy Task accepted into the service's pending list, in ingestion order.
struct PendingTask {
  CopyTask task;
  bool kernel_mode = false;
  bool promoted = false;   // raised by a Sync Task (§4.1)
  bool aborted = false;    // explicit abort (§4.4), effective
  bool abort_requested = false;  // abort deferred until dependents finish
  uint64_t order = 0;      // global ingestion sequence within the client

  // Service-global submission sequence (DESIGN.md §10): total order across
  // clients for cross-engine conflict resolution. Monotone with `order`
  // within one client (per-client submission order is ingestion order).
  uint64_t gseq = 0;
  // True when any dst/src piece can overlap another client's tasks: kernel
  // host memory, a foreign address space, or the own space of a domain some
  // foreign client has ranges registered in. Only shared-visible tasks pay
  // the cross-engine ledger probe.
  bool shared_visible = false;

  // Progress descriptor: the task's own descriptor, or a service-allocated
  // internal one when the submitter did not provide any (e.g. send()).
  // Progress bits live at [progress_offset, progress_offset + task.length) of
  // the descriptor's byte space.
  Descriptor* progress = nullptr;
  size_t progress_offset = 0;
  std::unique_ptr<Descriptor> internal_progress;

  // Queue pair the task arrived on (UFUNC handlers route back to its u-mode
  // Handler Queue).
  QueuePair* origin = nullptr;

  size_t bytes_done = 0;
  bool handler_fired = false;

  // Range-index bookkeeping: whether this task's dst/src entries are live in
  // client.range_index, and whether its Done transition (index erase +
  // completed-write log) has already been processed.
  bool in_range_index = false;
  bool done_processed = false;

  // Scatter-gather accounting (task.sg != nullptr): bytes still outstanding
  // and whether the per-segment KFUNC has fired, per segment. Handlers fire
  // in segment order — the op-list is a stream (skbs of one syscall), so the
  // firing prefix only advances when every earlier segment has landed.
  std::vector<size_t> sg_remaining;
  std::vector<bool> sg_fired;
  size_t sg_next_fire = 0;

  // Task-local [start, end) byte ranges currently in flight on a DMA channel
  // (DESIGN.md §9): submitted but not yet reaped. Parked bytes are excluded
  // from execution (CopyRange) and do not count toward bytes_done until the
  // reap lands them; any conflicting access must settle them first.
  std::vector<std::pair<size_t, size_t>> dma_parked;
  size_t dma_parked_bytes() const {
    size_t n = 0;
    for (const auto& [s, e] : dma_parked) {
      n += e - s;
    }
    return n;
  }

  bool Done() const { return bytes_done >= task.length || aborted; }
};

class Client {
 public:
  Client(uint64_t id, simos::Process* process, const CopierConfig& config)
      : id_(id), process_(process), config_(&config) {
    queue_pairs_.push_back(std::make_unique<QueuePair>(config.queue_capacity));
  }

  uint64_t id() const { return id_; }
  simos::Process* process() { return process_; }
  simos::AddressSpace* space() { return process_ != nullptr ? &process_->mem() : nullptr; }

  QueuePair& default_pair() { return *queue_pairs_[0]; }
  QueuePair& pair(int fd) { return *queue_pairs_[static_cast<size_t>(fd)]; }
  size_t pair_count() const { return queue_pairs_.size(); }

  // Creates an additional queue pair (per-thread queues); returns its fd.
  int CreateQueuePair() {
    queue_pairs_.push_back(std::make_unique<QueuePair>(config_->queue_capacity));
    return static_cast<int>(queue_pairs_.size() - 1);
  }

  // --- service-side state ---

  // Pending (ingested, incomplete) tasks in dependency order.
  std::deque<std::unique_ptr<PendingTask>> pending;
  uint64_t next_order = 0;
  uint64_t next_task_id = 1;

  // Interval index over the live (non-Done) tasks in `pending`: one dst and
  // one src entry per task. Maintained by the Engine (AcceptTask inserts,
  // the Done transition erases, RetireDone prunes); only populated when
  // config.enable_range_index is set.
  RangeIndex range_index;

  // Number of live tasks with an unapplied abort request; lets
  // ApplyDeferredAborts skip its pending-list walk when there is nothing to
  // do (the common case — it runs after every ExecutePending pass).
  size_t pending_abort_requests = 0;

  // Destinations of recently *completed* (retired) tasks, kept while any
  // still-pending task is ordered before them: an earlier task executing
  // late must not overwrite a newer completed write (WAW), even though the
  // newer task is no longer in the pending list. Pruned in RetireDone.
  // Ordered by gseq (the service-global submission sequence) so entries
  // imported from a *foreign* client's landed writes (cross-engine dead-write
  // suppression, DESIGN.md §10) compare correctly against local tasks; for
  // local entries gseq order equals the old per-client `order` order.
  struct CompletedWrite {
    uint64_t gseq = 0;
    uint64_t domain = 0;
    uint64_t start = 0;
    size_t length = 0;
  };
  std::deque<CompletedWrite> completed_writes;

  // In-flight DMA batches parked by asynchronous execution rounds (DESIGN.md
  // §9), in submission order. The completion time is captured at submission,
  // so reaping — possibly by a different engine after a steal — never touches
  // the submitting engine's channel state. Mutated only while `serving` is
  // held; dma_inflight_bytes mirrors the total for lock-free observers
  // (scheduler re-queue accounting, utilization benches).
  struct ParkedDma {
    Cycles completion_time = 0;
    uint64_t bytes = 0;
    struct Seg {
      PendingTask* task = nullptr;
      size_t offset = 0;  // task-local first byte
      size_t length = 0;
    };
    std::vector<Seg> segs;
  };
  std::deque<ParkedDma> parked_dma;
  std::atomic<uint64_t> dma_inflight_bytes{0};

  // Last AddressSpace::alias_cow_breaks() value folded into engine stats
  // (remap tier, DESIGN.md §11). Mutated only while `serving` is held.
  uint64_t alias_breaks_seen = 0;

  // Invalidation-listener tokens AttachProcess installed on the client's
  // space (one per engine ATCache); removed at detach / service teardown.
  std::vector<int> atcache_tokens;

  // Scheduler accounting (§4.5.3): total copy length served, CFS key.
  // Relaxed atomic: written by the serving thread, read by scheduler picks
  // and run-queue inserts on other threads.
  std::atomic<uint64_t> total_copy_length{0};
  Cgroup* cgroup = nullptr;

  // Claimed by the Copier thread currently serving this client: auto-scaling
  // shifts the client→thread assignment, so exclusivity is enforced here.
  std::atomic<bool> serving{false};

  // --- sharded-scheduler state (service.h) ---

  // Home shard: `id % shard_count`, fixed at attach. The client's runnable
  // marks always land on this shard's run queue; stealing moves a single
  // serve, never the home.
  size_t home_shard = 0;
  // True while the client sits in its home shard's run queue. Toggled under
  // that shard's lock; read lock-free to dedup runnable notifications.
  std::atomic<bool> runnable{false};
  // Set by DetachClient before teardown: suppresses re-notification.
  std::atomic<bool> detached{false};
  // Run-queue snapshot key (total_copy_length at insert); only touched under
  // the home shard's run-queue lock while `runnable`.
  uint64_t sched_key = 0;
  // Backlog estimate for steal-victim choice: bytes submitted (counted at
  // runnable notification) minus bytes served.
  std::atomic<uint64_t> submitted_bytes{0};
  std::atomic<uint64_t> served_bytes{0};
  uint64_t BacklogBytes() const {
    const uint64_t submitted = submitted_bytes.load(std::memory_order_relaxed);
    const uint64_t served = served_bytes.load(std::memory_order_relaxed);
    return submitted > served ? submitted - served : 0;
  }

  // Mirrors pending.size(); maintained by the Engine so HasQueuedWork can be
  // called from any thread while the serving thread mutates the deque.
  std::atomic<size_t> pending_count{0};

  // --- submitter-side syscall state (CopierLinux, §4.2.1) ---

  // Barrier bracket state of the in-flight syscall executing in this
  // process's context. Only the process's own thread reads or writes it
  // (trap enter/exit and Copy/CopyV all run on that thread), so it needs no
  // lock — this is what keeps concurrent processes from serializing on a
  // glue-global mutex during submission.
  struct KSyscallState {
    bool in_syscall = false;
    bool barrier_submitted = false;
  };
  KSyscallState ksyscall;

  // Drain waiters (SyncKernel in threaded mode): the serving thread signals
  // after a pass that leaves the client with no queued or pending work.
  std::mutex drain_mu;
  std::condition_variable drain_cv;

  bool HasQueuedWork() const {
    for (const auto& pair : queue_pairs_) {
      if (!pair->user.copy_q.Empty() || !pair->kernel.copy_q.Empty() ||
          !pair->user.sync_q.Empty() || !pair->kernel.sync_q.Empty()) {
        return true;
      }
    }
    return pending_count.load(std::memory_order_acquire) != 0;
  }

 private:
  uint64_t id_;
  simos::Process* process_;
  const CopierConfig* config_;
  std::vector<std::unique_ptr<QueuePair>> queue_pairs_;
};

}  // namespace copier::core

#endif  // COPIER_SRC_CORE_CLIENT_H_
