#include "src/core/atcache.h"

namespace copier::core {

const ATCache::Entry* ATCache::Lookup(uint32_t asid, uint64_t va) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(Key(asid, PageNumber(va)));
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

void ATCache::Insert(uint32_t asid, uint64_t va, uint8_t* host_page, bool writable) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[Key(asid, PageNumber(va))] = Entry{host_page, writable};
}

void ATCache::Invalidate(uint32_t asid, uint64_t va, size_t length) {
  std::lock_guard<std::mutex> lock(mu_);
  if (length == SIZE_MAX) {
    // Whole-space invalidation (fork downgrades permissions broadly).
    for (auto it = entries_.begin(); it != entries_.end();) {
      if ((it->first >> 40) == asid) {
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
    return;
  }
  const uint64_t first = PageNumber(va);
  const uint64_t last = PageNumber(va + (length == 0 ? 0 : length - 1));
  for (uint64_t vpn = first; vpn <= last; ++vpn) {
    entries_.erase(Key(asid, vpn));
  }
}

int ATCache::Attach(simos::AddressSpace& space) {
  return space.AddInvalidationListener(
      [this](uint32_t asid, uint64_t va, size_t length) { Invalidate(asid, va, length); });
}

}  // namespace copier::core
