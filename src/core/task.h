// Copier task vocabulary (§4.1, §4.2).
//
// Clients talk to the service through three per-client queues (CSH Queues):
//   * Copy Queue    — CopyQueueEntry: Copy Tasks and (k-mode only) Barrier
//                     Tasks used for cross-queue order tracking (§4.2.1);
//   * Sync Queue    — Sync Tasks: promote segments a client is about to use
//                     (out-of-order execution, §4.1) or abort queued tasks;
//   * Handler Queue — UFUNC handler tasks the service delegates back to the
//                     client library for execution (§4.1).
#ifndef COPIER_SRC_CORE_TASK_H_
#define COPIER_SRC_CORE_TASK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/cycle_clock.h"
#include "src/simos/address_space.h"

namespace copier::core {

class Descriptor;

// A source or destination of a Copy Task: either a virtual range in a client
// address space (user tasks, and kernel tasks naming user buffers) or a
// kernel linear-mapped host buffer (skbs, Binder buffers, CoW frames), which
// is physically contiguous by construction.
struct MemRef {
  simos::AddressSpace* space = nullptr;  // null => kernel host memory
  uint64_t va = 0;                       // valid when space != nullptr
  uint8_t* host = nullptr;               // valid when space == nullptr

  bool is_user() const { return space != nullptr; }

  // Domain id for overlap comparison: address spaces by asid, kernel = 0.
  uint64_t domain() const { return space != nullptr ? space->asid() : 0; }
  // Numeric start address within the domain.
  uint64_t start() const {
    return space != nullptr ? va : reinterpret_cast<uint64_t>(host);
  }

  static MemRef User(simos::AddressSpace* space, uint64_t va) { return {space, va, nullptr}; }
  static MemRef Kernel(uint8_t* host) { return {nullptr, 0, host}; }

  MemRef Offset(uint64_t bytes) const {
    MemRef ref = *this;
    if (ref.space != nullptr) {
      ref.va += bytes;
    } else {
      ref.host += bytes;
    }
    return ref;
  }
};

// True when [a, a+alen) and [b, b+blen) name overlapping memory.
bool RefsOverlap(const MemRef& a, size_t alen, const MemRef& b, size_t blen);

enum class TaskType : uint8_t {
  kNormal = 0,
  kLazy = 1,  // lowest priority; usually a mediator for copy absorption (§4.4)
};

// Post-copy handler (§4.1): delegation-based post-copy handling. KFUNCs run
// in the Copier thread; UFUNCs are queued to the client's Handler Queue.
struct PostHandler {
  enum class Kind : uint8_t { kNone = 0, kKernelFunc, kUserFunc };
  Kind kind = Kind::kNone;
  // For KFUNC the argument is the completion time on the Copier clock; for
  // UFUNC it is the time the client library drains the handler.
  std::function<void(Cycles)> fn;

  static PostHandler None() { return {}; }
  static PostHandler KernelFunc(std::function<void(Cycles)> fn) {
    return {Kind::kKernelFunc, std::move(fn)};
  }
  static PostHandler UserFunc(std::function<void(Cycles)> fn) {
    return {Kind::kUserFunc, std::move(fn)};
  }
};

using TaskId = uint64_t;

// One segment of a scatter-gather Copy Task: a physically contiguous kernel
// buffer (an skb, a Binder buffer) plus the per-segment KFUNC that fires when
// every byte of the segment has landed — e.g. skb delivery on the send path.
struct SgSegment {
  uint8_t* kernel = nullptr;
  size_t length = 0;
  std::function<void(Cycles)> on_complete;  // may be empty
};

// Segment list of a scatter-gather Copy Task (vectored submission): one side
// of the task is the concatenation of `segs` in order, the other side is the
// single contiguous range in CopyTask::dst/src as usual. Task-local byte k
// lives in the segment containing k under the prefix sums of `segs`. Only
// k-mode submitters build these (the kernel owns the buffers); the segments
// are exclusive to the task for its lifetime by the skb/Binder buffer
// lifecycle.
struct SgList {
  bool kernel_is_dst = false;  // true: gather (user -> segments, send path);
                               // false: scatter (segments -> user, recv path)
  // Bookkeeping list (fused IPC, DESIGN.md §12): the segments carry only
  // chunk lengths and per-chunk KFUNCs — `kernel` stays null and neither side
  // of the task is a segment list. Geometry, dependency tracking, the remap
  // tier and cross-engine visibility all treat the task as its plain
  // contiguous dst/src (SideIsSg returns false); only the in-order
  // credit-and-fire machinery consumes the list, so skb-token reclaim fires
  // chunk by chunk exactly as the two-step path fires per-skb KFUNCs.
  bool bookkeeping = false;
  std::vector<SgSegment> segs;

  // Forward-fuse header splice (DESIGN.md §12): when set (bookkeeping lists
  // only), the task's *source* is the concatenation of these kernel-resident
  // bytes and the user range at CopyTask::src — task-local source byte k
  // reads prefix[k] for k < prefix->size() and src+(k - prefix->size())
  // otherwise; task.length covers both. The destination stays the plain
  // contiguous dst. This is how a proxy-forwarded message carries its
  // rewritten header without the payload ever entering the proxy's space.
  std::shared_ptr<const std::vector<uint8_t>> prefix;

  size_t total_length() const {
    size_t sum = 0;
    for (const SgSegment& seg : segs) {
      sum += seg.length;
    }
    return sum;
  }
};

struct CopyTask {
  TaskId id = 0;  // assigned by the service at ingestion
  MemRef dst;
  MemRef src;
  size_t length = 0;

  // Fine-grained status granularity (§4.1). Descriptor bits cover
  // [descriptor_offset, descriptor_offset + length) of the descriptor's
  // byte space in units of its segment size.
  Descriptor* descriptor = nullptr;
  size_t descriptor_offset = 0;

  TaskType type = TaskType::kNormal;
  PostHandler handler;
  Cycles submit_time = 0;

  // Service-global submission sequence (DESIGN.md §10): stamped by the
  // submitting side (libCopier, CopierLinux) from the service's shared
  // counter, so cross-client ordering of conflicting shared ranges is fixed
  // at submission, not at whichever engine happens to ingest first. 0 = not
  // stamped (direct ring pushes); the engine assigns one at ingestion.
  uint64_t gseq = 0;

  // Non-null for scatter-gather tasks: the side named by sg->kernel_is_dst is
  // the segment list (dst or src above is then ignored for that side), and
  // `length` equals sg->total_length(). Shared because queue entries may be
  // peeked/copied; the list itself is immutable after submission.
  std::shared_ptr<const SgList> sg;
};

// Copy Queue entries: Copy Tasks interleaved (k-mode) with Barrier Tasks.
struct CopyQueueEntry {
  enum class Kind : uint8_t {
    kCopy = 0,
    kBarrierEnter,  // k-mode: first k submission after a trap; records the
                    // u-mode Copy Queue head position at that moment (§4.2.1)
    kBarrierExit,   // k-mode: kernel returning to userspace closes the bracket
  };
  Kind kind = Kind::kCopy;
  CopyTask task;                    // valid when kind == kCopy
  uint64_t user_queue_position = 0;  // valid when kind == kBarrierEnter
};

struct SyncTask {
  enum class Kind : uint8_t {
    kPromote = 0,  // raise priority of the copies producing [addr, addr+length)
    kAbort = 1,    // explicitly discard still-queued Copy Tasks on the range (§4.4)
  };
  Kind kind = Kind::kPromote;
  MemRef addr;
  size_t length = 0;
};

// Handler Queue entries (service -> client): deferred UFUNCs.
struct HandlerTask {
  std::function<void(Cycles)> fn;
  Cycles ready_time = 0;  // completion time of the copy that owed this handler
};

}  // namespace copier::core

#endif  // COPIER_SRC_CORE_TASK_H_
