// Descriptor — the segment bitmap a client checks to observe copy progress
// (§4.1: "a bitmap tracking the copy status of each segment").
//
// The Copier thread marks a segment's bit (release) after the segment's bytes
// land; csync() polls bits (acquire). Each segment also records the virtual
// time it became ready, which the virtual-time benchmark engine uses to
// compute csync blocking latencies; real-thread clients ignore it.
//
// A descriptor may fail: if proactive fault handling drops the task (§4.5.4)
// the service sets the failed flag and marks all bits so that waiters wake
// and observe the error instead of spinning forever.
#ifndef COPIER_SRC_CORE_DESCRIPTOR_H_
#define COPIER_SRC_CORE_DESCRIPTOR_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <memory>

#include "src/common/align.h"
#include "src/common/bitmap.h"
#include "src/common/cycle_clock.h"

namespace copier::core {

inline constexpr size_t kDefaultSegmentSize = 4096;

class Descriptor {
 public:
  Descriptor(size_t length, size_t segment_size = kDefaultSegmentSize)
      : length_(length),
        segment_size_(segment_size),
        num_segments_((length + segment_size - 1) / segment_size),
        capacity_segments_(std::max<size_t>(1, (length + segment_size - 1) / segment_size)),
        bits_(capacity_segments_) {
    ready_times_ = std::make_unique<std::atomic<Cycles>[]>(capacity_segments_);
    Reset(length);
  }

  size_t length() const { return length_.load(std::memory_order_relaxed); }
  size_t segment_size() const { return segment_size_; }
  size_t num_segments() const { return num_segments_.load(std::memory_order_relaxed); }

  // Re-arms the descriptor for reuse (low-level API descriptor pooling,
  // §5.1.1), optionally resizing the covered byte length (same capacity).
  // Geometry fields are relaxed atomics: a pooled descriptor can be re-armed
  // by one app thread while another still polls a just-released range it
  // looked up earlier (the stale waiter sees either geometry consistently
  // enough to terminate — its own bytes were ready before the release).
  void Reset(size_t length) {
    const size_t segments = (length + segment_size_ - 1) / segment_size_;
    COPIER_CHECK(segments <= capacity_segments_)
        << "Reset beyond descriptor capacity: need " << segments << " segments, have "
        << capacity_segments_;
    length_.store(length, std::memory_order_relaxed);
    num_segments_.store(segments, std::memory_order_relaxed);
    bits_.Clear();
    failed_.store(false, std::memory_order_relaxed);
    for (size_t i = 0; i < segments; ++i) {
      ready_times_[i].store(0, std::memory_order_relaxed);
    }
  }

  size_t SegmentOf(size_t byte_offset) const { return byte_offset / segment_size_; }

  // Marks every segment fully contained in — or partially covered by —
  // [offset, offset+n) ready at `when`. The service only calls this once the
  // covered bytes have actually landed.
  void MarkRange(size_t offset, size_t n, Cycles when) {
    if (n == 0) {
      return;
    }
    const size_t segments = num_segments();
    const size_t first = SegmentOf(offset);
    const size_t last = SegmentOf(offset + n - 1);
    for (size_t seg = first; seg <= last && seg < segments; ++seg) {
      ready_times_[seg].store(when, std::memory_order_relaxed);
      bits_.Set(seg);
    }
  }

  bool RangeReady(size_t offset, size_t n) const {
    const size_t segments = num_segments();
    if (n == 0 || segments == 0) {
      return true;
    }
    const size_t first = SegmentOf(offset);
    const size_t last = std::min(SegmentOf(offset + n - 1), segments - 1);
    return bits_.AllSetInRange(first, last);
  }

  bool SegmentReady(size_t segment) const { return bits_.Test(segment); }
  bool AllReady() const {
    const size_t segments = num_segments();
    return segments == 0 || bits_.AllSetInRange(0, segments - 1);
  }

  // Latest ready time across segments covering [offset, offset+n); only
  // meaningful once RangeReady. Used by the virtual-time engine.
  Cycles ReadyTime(size_t offset, size_t n) const {
    const size_t segments = num_segments();
    if (n == 0 || segments == 0) {
      return 0;
    }
    const size_t first = SegmentOf(offset);
    const size_t last = std::min(SegmentOf(offset + n - 1), segments - 1);
    Cycles latest = 0;
    for (size_t seg = first; seg <= last; ++seg) {
      latest = std::max(latest, ready_times_[seg].load(std::memory_order_relaxed));
    }
    return latest;
  }

  // Failure path: wakes every waiter with an error indication.
  void MarkFailed(Cycles when) {
    failed_.store(true, std::memory_order_release);
    MarkRange(0, length(), when);
  }
  bool failed() const { return failed_.load(std::memory_order_acquire); }

 private:
  std::atomic<size_t> length_;
  size_t segment_size_;
  std::atomic<size_t> num_segments_;
  size_t capacity_segments_;
  AtomicBitmap bits_;
  std::unique_ptr<std::atomic<Cycles>[]> ready_times_;
  std::atomic<bool> failed_{false};
};

}  // namespace copier::core

#endif  // COPIER_SRC_CORE_DESCRIPTOR_H_
