// Shared plumbing for the mini-applications (§6.2): each app runs in one of
// three modes — synchronous baseline, Copier-ported, or zIO-interposed — and
// AppIo centralizes the mode dispatch so app logic stays readable.
//
// All app buffers live in simulated address spaces; compute phases do real
// work on real bytes *and* charge modeled cycles, so the same binaries back
// both the correctness tests and the virtual-time benches.
#ifndef COPIER_SRC_APPS_APP_UTIL_H_
#define COPIER_SRC_APPS_APP_UTIL_H_

#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "src/baselines/zio.h"
#include "src/common/exec_context.h"
#include "src/libcopier/libcopier.h"
#include "src/simos/kernel.h"

namespace copier::apps {

enum class Mode {
  kSync,    // stock: blocking memcpy / copy_{to,from}_user
  kCopier,  // ported to amemcpy/csync (per-app §5.2 integration)
  kZio,     // zIO interposition on user-space copies
};

const char* ModeName(Mode mode);

// Per-process I/O context: owns nothing, dispatches on mode.
struct AppIo {
  simos::SimKernel* kernel = nullptr;
  simos::Process* proc = nullptr;
  lib::CopierLib* lib = nullptr;            // non-null in kCopier mode
  baselines::ZioRuntime* zio = nullptr;     // non-null in kZio mode
  Mode mode = Mode::kSync;

  const hw::TimingModel& timing() const { return kernel->timing(); }

  // User-space copy honoring the mode. `lazy` marks a Copier Lazy Task.
  void Copy(uint64_t dst, uint64_t src, size_t n, ExecContext* ctx, bool lazy = false);

  // The app is about to read/write [addr, addr+n) directly: csync (Copier) /
  // materialize (zIO). Call per the §5.1.1 insertion guidelines.
  void SyncBeforeUse(uint64_t addr, size_t n, ExecContext* ctx);

  // Reads `n` bytes at `va` into `out` after the proper sync (convenience
  // for parsers).
  void ReadSynced(uint64_t va, void* out, size_t n, ExecContext* ctx);

  // Plain write into own memory (no pending-copy interaction assumed).
  void Write(uint64_t va, const void* data, size_t n, ExecContext* ctx);

  // recv()/send() honoring the mode. In kCopier mode, recv reports into
  // `descriptor` (required) and send submits async k-tasks; other modes
  // block. `lazy_recv` marks the recv copies lazy (proxy pattern, §4.4).
  StatusOr<size_t> Recv(simos::SimSocket* sock, uint64_t va, size_t n,
                        core::Descriptor* descriptor, ExecContext* ctx,
                        bool lazy_recv = false);
  StatusOr<size_t> Send(simos::SimSocket* sock, uint64_t va, size_t n, ExecContext* ctx);

  // Observation hook: invoked on every direct data use (SyncBeforeUse /
  // ReadSynced) with the range and the context's current time. The Fig. 3
  // Copy-Use-window bench uses this to record first-use times per offset.
  std::function<void(uint64_t va, size_t n, Cycles now)> on_use;

  // (internal) descriptors already bound to their buffer base via
  // shm_descr_bind so csync() resolves kernel-filled ranges (§5.2 recv).
  std::set<std::pair<core::Descriptor*, uint64_t>> bound_descriptors;

  // Charges a compute phase of `bytes` at `cycles_per_byte` (+ fixed).
  void Compute(ExecContext* ctx, size_t bytes, double cycles_per_byte,
               Cycles fixed = 0) const {
    ChargeCtx(ctx, fixed + static_cast<Cycles>(bytes * cycles_per_byte));
  }
};

// One fully wired app process (kernel process + per-mode runtime objects).
class AppProcess {
 public:
  AppProcess(simos::SimKernel* kernel, core::CopierService* service, Mode mode,
             const std::string& name);

  AppIo& io() { return io_; }
  simos::Process* proc() { return proc_; }
  lib::CopierLib* lib() { return lib_.get(); }
  ExecContext& ctx() { return ctx_; }

  uint64_t Map(size_t n, const std::string& name, bool populate = true);

 private:
  simos::Process* proc_;
  std::unique_ptr<lib::CopierLib> lib_;
  std::unique_ptr<baselines::ZioRuntime> zio_;
  AppIo io_;
  ExecContext ctx_;
};

}  // namespace copier::apps

#endif  // COPIER_SRC_APPS_APP_UTIL_H_
