// Avcodec — a HarmonyOS-Avcodec-like video decode pipeline (§5.3, §6.2.4,
// Fig. 13-c).
//
// Per frame: the decoder produces pixel data in an internal buffer (real
// pseudo-IDCT work), the framework copies it to the frame buffer, then runs
// post-processing (colorspace/rotation metadata, fence setup) before the
// frame is passed to rendering, which consumes the pixels row by row.
// Copier overlaps the inner-buffer -> frame-buffer copy with the
// post-processing stage; rendering csyncs rows as it consumes them. The
// smartphone deployment uses scenario-driven polling: the service is active
// only while a playback scenario is open.
#ifndef COPIER_SRC_APPS_AVCODEC_H_
#define COPIER_SRC_APPS_AVCODEC_H_

#include <vector>

#include "src/apps/app_util.h"

namespace copier::apps {

class Avcodec {
 public:
  static constexpr double kDecodeCpb = 6.0;   // entropy decode + IDCT per pixel byte
  static constexpr double kPostCpb = 0.8;     // post-processing over metadata
  static constexpr double kRenderCpb = 1.1;   // per-byte render consumption
  static constexpr Cycles kFrameFixed = 4000;

  Avcodec(AppProcess* app, size_t frame_bytes);

  struct FrameStats {
    Cycles decode_cycles = 0;
    Cycles total_cycles = 0;
  };

  // Decodes and renders one frame from `bitstream` (contents drive the real
  // pseudo-decode). Returns the cycle accounting for the frame.
  FrameStats DecodeFrame(const std::vector<uint8_t>& bitstream, ExecContext* ctx);

  // Checksum of the last rendered frame (correctness across modes).
  uint64_t last_render_checksum() const { return render_checksum_; }

 private:
  AppProcess* app_;
  size_t frame_bytes_;
  uint64_t inner_buf_;
  uint64_t frame_buf_;
  uint64_t render_checksum_ = 0;
};

}  // namespace copier::apps

#endif  // COPIER_SRC_APPS_AVCODEC_H_
