#include "src/apps/serde.h"

#include "src/common/logging.h"

namespace copier::apps {

size_t VarintEncode(uint64_t value, uint8_t* out) {
  size_t n = 0;
  do {
    uint8_t byte = value & 0x7f;
    value >>= 7;
    if (value != 0) {
      byte |= 0x80;
    }
    out[n++] = byte;
  } while (value != 0);
  return n;
}

size_t VarintDecode(const uint8_t* in, size_t available, uint64_t* value) {
  uint64_t result = 0;
  for (size_t i = 0; i < available && i < 10; ++i) {
    result |= static_cast<uint64_t>(in[i] & 0x7f) << (7 * i);
    if ((in[i] & 0x80) == 0) {
      *value = result;
      return i + 1;
    }
  }
  return 0;  // truncated
}

Serde::Serde(AppProcess* app, size_t buf_bytes)
    : app_(app), buf_bytes_(buf_bytes), recv_descriptor_(buf_bytes) {
  recv_buf_ = app_->Map(buf_bytes_, "serde-recv", true);
  object_buf_ = app_->Map(buf_bytes_, "serde-object", true);
}

std::vector<uint8_t> Serde::Serialize(const std::vector<FieldSpec>& fields) {
  std::vector<uint8_t> out;
  uint8_t scratch[10];
  for (const FieldSpec& field : fields) {
    size_t n = VarintEncode(field.tag, scratch);
    out.insert(out.end(), scratch, scratch + n);
    n = VarintEncode(field.payload.size(), scratch);
    out.insert(out.end(), scratch, scratch + n);
    out.insert(out.end(), field.payload.begin(), field.payload.end());
  }
  return out;
}

StatusOr<std::vector<Serde::Field>> Serde::RecvAndParse(simos::SimSocket* sock,
                                                        ExecContext* ctx) {
  AppIo& io = app_->io();
  auto received = io.Recv(sock, recv_buf_, buf_bytes_, &recv_descriptor_, ctx);
  if (!received.ok()) {
    return received.status();
  }
  object_cursor_ = 0;

  std::vector<Field> fields;
  size_t pos = 0;
  while (pos < *received) {
    // Framing window: tag + length varints (<= 20 bytes). csync'd read.
    uint8_t frame[20];
    const size_t window = std::min<size_t>(sizeof(frame), *received - pos);
    io.ReadSynced(recv_buf_ + pos, frame, window, ctx);
    uint64_t tag = 0;
    const size_t tag_len = VarintDecode(frame, window, &tag);
    if (tag_len == 0) {
      return InvalidArgument("truncated tag varint");
    }
    uint64_t payload_len = 0;
    const size_t len_len = VarintDecode(frame + tag_len, window - tag_len, &payload_len);
    if (len_len == 0) {
      return InvalidArgument("truncated length varint");
    }
    pos += tag_len + len_len;
    if (pos + payload_len > *received) {
      return InvalidArgument("truncated payload");
    }
    io.Compute(ctx, tag_len + len_len, kParseCpb, kFieldFixed);

    Field field;
    field.tag = static_cast<uint32_t>(tag);
    field.va = object_buf_ + object_cursor_;
    field.length = payload_len;
    // Field payload copy (recv buffer -> object arena): asynchronous in
    // Copier mode; the deserializer moves on to the next field's framing
    // while the payload lands (this is the overlapped portion, Fig. 13-a).
    io.Copy(field.va, recv_buf_ + pos, payload_len, ctx);
    io.Compute(ctx, payload_len, kFieldInitCpb);  // object bookkeeping
    object_cursor_ += AlignUp(payload_len, 64);
    pos += payload_len;
    fields.push_back(field);
  }
  return fields;
}

StatusOr<std::vector<uint8_t>> Serde::FieldBytes(const Field& field) {
  if (app_->io().mode == Mode::kCopier) {
    COPIER_RETURN_IF_ERROR(app_->lib()->csync(field.va, field.length));
  } else if (app_->io().mode == Mode::kZio) {
    app_->io().zio->Touch(field.va, field.length, nullptr);
  }
  std::vector<uint8_t> bytes(field.length);
  COPIER_RETURN_IF_ERROR(app_->proc()->mem().ReadBytes(field.va, bytes.data(), field.length));
  return bytes;
}

}  // namespace copier::apps
