#include "src/apps/deflate.h"

#include <cstring>

#include "src/common/logging.h"

namespace copier::apps {

namespace {

constexpr size_t kHashBits = 15;
constexpr size_t kHashSize = 1 << kHashBits;
constexpr int kMaxChainDepth = 16;

uint32_t Hash4(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void Put16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

uint16_t Get16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0]) | static_cast<uint16_t>(p[1]) << 8;
}

}  // namespace

Deflate::Deflate(AppProcess* app) : app_(app) {
  window_va_ = app_->Map(2 * kWindowSize, "deflate-window", true);
  head_.assign(kHashSize, -1);
  chain_.assign(2 * kWindowSize, -1);
}

std::vector<uint8_t> Deflate::Compress(const std::vector<uint8_t>& input, ExecContext* ctx) {
  AppIo& io = app_->io();
  std::fill(head_.begin(), head_.end(), -1);
  window_slides_ = 0;

  // Stage the input in simulated memory (the producer's buffer).
  const uint64_t input_va = app_->Map(AlignUp(input.size() + 1, kPageSize), "deflate-in", true);
  io.Write(input_va, input.data(), input.size(), ctx);

  // Host-side mirror of the window for fast match arithmetic; the simulated
  // window buffer carries the actual copies (fills and slides) whose timing
  // the modes differ on.
  std::vector<uint8_t> window(2 * kWindowSize, 0);
  std::vector<uint8_t> out;
  std::vector<uint8_t> literals;
  bool slide_pending = false;

  auto flush_literals = [&] {
    if (literals.empty()) {
      return;
    }
    out.push_back(0);
    Put16(out, static_cast<uint16_t>(literals.size()));
    out.insert(out.end(), literals.begin(), literals.end());
    literals.clear();
  };

  size_t base = 0;     // absolute input index of window offset 0
  size_t filled = 0;   // window bytes filled
  size_t pos = 0;      // absolute input position being encoded
  while (pos < input.size()) {
    // Refill: append up to the window capacity (zlib's fill_window copy —
    // asynchronous in Copier mode).
    if (pos - base >= filled && filled < 2 * kWindowSize) {
      const size_t take = std::min(input.size() - (base + filled), 2 * kWindowSize - filled);
      if (take > 0) {
        io.Copy(window_va_ + filled, input_va + base + filled, take, ctx);
        std::memcpy(window.data() + filled, input.data() + base + filled, take);
        filled += take;
      }
    }
    // Slide when the encoder reaches the window end.
    if (pos - base >= 2 * kWindowSize - kMaxMatch && base + 2 * kWindowSize < input.size()) {
      if (io.mode == Mode::kCopier) {
        app_->lib()->amemmove(window_va_, window_va_ + kWindowSize, kWindowSize, ctx);
      } else {
        io.Copy(window_va_, window_va_ + kWindowSize, kWindowSize, ctx);
      }
      std::memmove(window.data(), window.data() + kWindowSize, kWindowSize);
      base += kWindowSize;
      filled -= kWindowSize;
      ++window_slides_;
      slide_pending = true;
      // Rebase hash chains.
      for (auto& h : head_) {
        h = h >= static_cast<int32_t>(kWindowSize) ? h - static_cast<int32_t>(kWindowSize) : -1;
      }
      for (size_t i = 0; i < kWindowSize; ++i) {
        const int32_t c = chain_[i + kWindowSize];
        chain_[i] = c >= static_cast<int32_t>(kWindowSize)
                        ? c - static_cast<int32_t>(kWindowSize)
                        : -1;
      }
      continue;
    }

    const size_t woff = pos - base;
    const size_t lookahead = std::min(filled - woff, input.size() - pos);
    io.Compute(ctx, 1, kMatchCpb);  // per-position match budget
    if (lookahead < kMinMatch) {
      literals.push_back(window[woff]);
      ++pos;
      continue;
    }

    // Hash-chain search (greedy, deflate_fast).
    const uint32_t h = Hash4(window.data() + woff);
    int32_t candidate = head_[h];
    size_t best_len = 0;
    size_t best_dist = 0;
    int depth = 0;
    while (candidate >= 0 && depth++ < kMaxChainDepth) {
      const size_t cand_off = static_cast<size_t>(candidate);
      if (cand_off < woff && woff - cand_off <= kWindowSize) {
        if (slide_pending && cand_off < kWindowSize) {
          // First reference into the slid region: the slide copy must have
          // landed (csync in Copier mode; the overlap ends here).
          io.SyncBeforeUse(window_va_, kWindowSize, ctx);
          slide_pending = false;
        }
        size_t len = 0;
        const size_t max_len = std::min(lookahead, kMaxMatch);
        while (len < max_len && window[cand_off + len] == window[woff + len]) {
          ++len;
        }
        if (len > best_len) {
          best_len = len;
          best_dist = woff - cand_off;
        }
      }
      candidate = chain_[cand_off];
    }

    chain_[woff] = head_[h];
    head_[h] = static_cast<int32_t>(woff);

    if (best_len >= kMinMatch) {
      flush_literals();
      out.push_back(1);
      Put16(out, static_cast<uint16_t>(best_dist));
      Put16(out, static_cast<uint16_t>(best_len));
      pos += best_len;
    } else {
      literals.push_back(window[woff]);
      ++pos;
    }
  }
  flush_literals();
  if (io.mode == Mode::kCopier) {
    COPIER_CHECK_OK(app_->lib()->csync_all(ctx));
  }
  return out;
}

std::vector<uint8_t> Deflate::Decompress(const std::vector<uint8_t>& compressed) {
  std::vector<uint8_t> out;
  size_t pos = 0;
  while (pos < compressed.size()) {
    const uint8_t kind = compressed[pos++];
    if (kind == 0) {
      const uint16_t n = Get16(&compressed[pos]);
      pos += 2;
      out.insert(out.end(), compressed.begin() + pos, compressed.begin() + pos + n);
      pos += n;
    } else {
      const uint16_t dist = Get16(&compressed[pos]);
      const uint16_t len = Get16(&compressed[pos + 2]);
      pos += 4;
      const size_t start = out.size() - dist;
      for (size_t i = 0; i < len; ++i) {
        out.push_back(out[start + i]);
      }
    }
  }
  return out;
}

}  // namespace copier::apps
