// MiniProxy — a TinyProxy-like HTTP forwarder (§6.2.2).
//
// The proxy reads a message, inspects only the request line and headers to
// pick the upstream, rewrites one header, and forwards the message. The body
// is never touched — the copy-absorption / lazy-copy showcase:
//   sync:   recv (K1->U) + organize copy (U->U') + send (U'->K2)
//   Copier: recv submitted LAZY (K1->U), organize copy submitted (U->U'),
//           send (U'->K2): absorption collapses the chain into K1->K2 for
//           the untouched body; header segments (csync'd during parsing)
//           flow through the touched intermediate. After forwarding, the
//           proxy aborts the remaining lazy tasks (§4.4).
//
// Message format: "FWD <upstream-id> <body-len>\r\n<body>".
// Forwarded:      "VIA <upstream-id> <body-len>\r\n<body>".
#ifndef COPIER_SRC_APPS_MINIPROXY_H_
#define COPIER_SRC_APPS_MINIPROXY_H_

#include <vector>

#include "src/apps/app_util.h"
#include "src/core/descriptor.h"

namespace copier::apps {

class MiniProxy {
 public:
  static constexpr double kHeaderParseCpb = 2.2;
  static constexpr Cycles kRouteFixed = 500;  // upstream choice, rate limit check

  explicit MiniProxy(AppProcess* proxy, size_t buf_bytes = 1 * kMiB);

  // Forwards one message from `in` to `out`; returns false when idle.
  StatusOr<bool> ForwardOne(simos::SimSocket* in, simos::SimSocket* out, ExecContext* ctx);

  static std::vector<uint8_t> BuildMessage(int upstream, const std::vector<uint8_t>& body);

  uint64_t forwarded() const { return forwarded_; }

 private:
  AppProcess* proxy_;
  size_t buf_bytes_;
  uint64_t in_buf_;
  uint64_t out_buf_;
  core::Descriptor in_descriptor_;
  uint64_t forwarded_ = 0;
};

}  // namespace copier::apps

#endif  // COPIER_SRC_APPS_MINIPROXY_H_
