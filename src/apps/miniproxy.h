// MiniProxy — a TinyProxy-like HTTP forwarder (§6.2.2).
//
// The proxy reads a message, inspects only the request line and headers to
// pick the upstream, rewrites one header, and forwards the message. The body
// is never touched — the copy-absorption / lazy-copy showcase:
//   sync:   recv (K1->U) + organize copy (U->U') + send (U'->K2)
//   Copier: recv submitted LAZY (K1->U), organize copy submitted (U->U'),
//           send (U'->K2): absorption collapses the chain into K1->K2 for
//           the untouched body; header segments (csync'd during parsing)
//           flow through the touched intermediate. After forwarding, the
//           proxy aborts the remaining lazy tasks (§4.4).
//
// Message format: "FWD <upstream-id> <body-len>\r\n<body>".
// Forwarded:      "VIA <upstream-id> <body-len>\r\n<body>".
#ifndef COPIER_SRC_APPS_MINIPROXY_H_
#define COPIER_SRC_APPS_MINIPROXY_H_

#include <memory>
#include <vector>

#include "src/apps/app_util.h"
#include "src/core/descriptor.h"
#include "src/simos/socket.h"

namespace copier::apps {

class MiniProxy {
 public:
  static constexpr double kHeaderParseCpb = 2.2;
  static constexpr Cycles kRouteFixed = 500;  // upstream choice, rate limit check

  explicit MiniProxy(AppProcess* proxy, size_t buf_bytes = 1 * kMiB);

  // Forwards one message from `in` to `out`; returns false when idle.
  StatusOr<bool> ForwardOne(simos::SimSocket* in, simos::SimSocket* out, ExecContext* ctx);

  static std::vector<uint8_t> BuildMessage(int upstream, const std::vector<uint8_t>& body);

  // Kernel-side forward rule for this proxy's FWD→VIA rewrite
  // (proxy-transparent forwarding, DESIGN.md §12): a complete "FWD <id> <len>"
  // message landing in an empty posted window is re-framed as the parcel the
  // app-level path would have marshalled — [u32 length]["VIA <id> <len>\r\n"
  // + body] — and dispatched as ONE fused Copy Task straight to `endpoint`
  // (e.g. the KV server's BinderDriver), the body spliced in behind the
  // rewritten header without ever entering the proxy's address space.
  // Partial frames, over-long frames, and unparseable headers decline, so the
  // message lands in the window and ForwardOne handles it app-level.
  static std::shared_ptr<simos::ForwardRule> MakeParcelForwardRule(
      simos::ForwardEndpoint* endpoint);

  uint64_t forwarded() const { return forwarded_; }

 private:
  AppProcess* proxy_;
  size_t buf_bytes_;
  uint64_t in_buf_;
  uint64_t out_buf_;
  core::Descriptor in_descriptor_;
  uint64_t forwarded_ = 0;
};

}  // namespace copier::apps

#endif  // COPIER_SRC_APPS_MINIPROXY_H_
