// Serde — a Protobuf-like length-delimited serialization library (§6.2.3).
//
// Wire format: a sequence of fields, each
//   varint tag | varint length | payload bytes.
// Deserialization parses the framing and copies each payload into the target
// object's field buffer. With Copier, the recv() copy runs in parallel with
// deserialization: the parser csyncs each field's framing window and lets the
// field-payload copies ride asynchronously (copy-use pipeline, §4.1 / Fig. 3
// "Protobuf" row).
#ifndef COPIER_SRC_APPS_SERDE_H_
#define COPIER_SRC_APPS_SERDE_H_

#include <vector>

#include "src/apps/app_util.h"
#include "src/core/descriptor.h"

namespace copier::apps {

// Encodes/decodes base-128 varints (real Protobuf encoding).
size_t VarintEncode(uint64_t value, uint8_t* out);
size_t VarintDecode(const uint8_t* in, size_t available, uint64_t* value);

class Serde {
 public:
  static constexpr double kParseCpb = 0.9;       // framing scan
  static constexpr double kFieldInitCpb = 0.25;  // per-field object setup
  static constexpr Cycles kFieldFixed = 90;

  explicit Serde(AppProcess* app, size_t buf_bytes = 1 * kMiB);

  struct FieldSpec {
    uint32_t tag;
    std::vector<uint8_t> payload;
  };

  // Builds a serialized message (client side, plain bytes).
  static std::vector<uint8_t> Serialize(const std::vector<FieldSpec>& fields);

  struct Field {
    uint32_t tag = 0;
    uint64_t va = 0;  // field buffer in the app's address space
    size_t length = 0;
  };

  // Receives one serialized message from `sock` and deserializes it into
  // per-field buffers. Returns the parsed fields.
  StatusOr<std::vector<Field>> RecvAndParse(simos::SimSocket* sock, ExecContext* ctx);

  // Test helper: reads a parsed field's bytes (settling async copies).
  StatusOr<std::vector<uint8_t>> FieldBytes(const Field& field);

 private:
  AppProcess* app_;
  size_t buf_bytes_;
  uint64_t recv_buf_;
  uint64_t object_buf_;  // arena for field payloads
  size_t object_cursor_ = 0;
  core::Descriptor recv_descriptor_;
};

}  // namespace copier::apps

#endif  // COPIER_SRC_APPS_SERDE_H_
