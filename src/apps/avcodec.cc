#include "src/apps/avcodec.h"

#include "src/common/logging.h"

namespace copier::apps {

Avcodec::Avcodec(AppProcess* app, size_t frame_bytes)
    : app_(app), frame_bytes_(frame_bytes) {
  inner_buf_ = app_->Map(AlignUp(frame_bytes_, kPageSize), "avc-inner", true);
  frame_buf_ = app_->Map(AlignUp(frame_bytes_, kPageSize), "avc-frame", true);
}

Avcodec::FrameStats Avcodec::DecodeFrame(const std::vector<uint8_t>& bitstream,
                                         ExecContext* ctx) {
  AppIo& io = app_->io();
  FrameStats stats;
  const Cycles start = CtxNow(ctx);

  // Decode: expand the bitstream into pixels in the inner buffer (a real,
  // deterministic pseudo-IDCT so every mode produces identical pixels).
  std::vector<uint8_t> pixels(frame_bytes_);
  uint32_t state = 0x9d2c5680u;
  for (size_t i = 0; i < frame_bytes_; ++i) {
    state = state * 1664525u + 1013904223u + bitstream[i % bitstream.size()];
    pixels[i] = static_cast<uint8_t>(state >> 24);
  }
  io.Write(inner_buf_, pixels.data(), frame_bytes_, ctx);
  io.Compute(ctx, frame_bytes_, kDecodeCpb, kFrameFixed);
  stats.decode_cycles = CtxNow(ctx) - start;

  // Frame copy: inner buffer -> frame buffer (the copy Copier hides).
  io.Copy(frame_buf_, inner_buf_, frame_bytes_, ctx);

  // Post-processing runs before the frame data is needed (Copy-Use window).
  io.Compute(ctx, frame_bytes_ / 16, kPostCpb, kFrameFixed / 2);

  // Rendering consumes the frame in row-sized chunks, syncing each.
  constexpr size_t kRow = 8 * kKiB;
  uint64_t checksum = 1469598103934665603ull;
  std::vector<uint8_t> row(kRow);
  for (size_t off = 0; off < frame_bytes_; off += kRow) {
    const size_t n = std::min(kRow, frame_bytes_ - off);
    io.ReadSynced(frame_buf_ + off, row.data(), n, ctx);
    for (size_t i = 0; i < n; ++i) {
      checksum = (checksum ^ row[i]) * 1099511628211ull;
    }
    io.Compute(ctx, n, kRenderCpb);
  }
  render_checksum_ = checksum;
  stats.total_cycles = CtxNow(ctx) - start;
  return stats;
}

}  // namespace copier::apps
