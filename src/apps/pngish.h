// Pngish — a libpng-like image decoder over SimFs (the paper's "libpng
// decoding PNG images stored in an ext4 file system" workload, Fig. 2/3).
//
// Image format (real filtering, PNG-style):
//   header: width, height, bytes-per-pixel (u32 each)
//   rows:   filter byte (0=None, 1=Sub, 2=Up) + filtered row bytes
// Decode: read(2) pulls the file into the I/O buffer (the kernel->user copy
// Copier hides), then rows are unfiltered sequentially into the image — a
// textbook sequential Copy-Use pattern: row r is consumed only after rows
// 0..r-1 were unfiltered.
#ifndef COPIER_SRC_APPS_PNGISH_H_
#define COPIER_SRC_APPS_PNGISH_H_

#include <vector>

#include "src/apps/app_util.h"
#include "src/core/descriptor.h"
#include "src/simos/simfs.h"

namespace copier::apps {

class Pngish {
 public:
  static constexpr double kUnfilterCpb = 1.8;  // per-byte unfilter work
  static constexpr Cycles kRowFixed = 120;

  Pngish(AppProcess* app, simos::SimFs* fs, size_t max_file_bytes = 4 * kMiB);

  // Encodes an image (deterministic content from `seed`) into the filtered
  // file format; the caller stores it via SimFs::CreateFile.
  static std::vector<uint8_t> EncodeImage(uint32_t width, uint32_t height, uint32_t bpp,
                                          uint64_t seed);

  struct Image {
    uint32_t width = 0;
    uint32_t height = 0;
    uint32_t bpp = 0;
    std::vector<uint8_t> pixels;
  };

  // Opens `name`, read(2)s it into the I/O buffer, and decodes. In Copier
  // mode the read is asynchronous and each row csyncs just before unfiltering.
  StatusOr<Image> DecodeFile(const std::string& name, ExecContext* ctx);

  // Reference decoder over raw bytes (for correctness checks).
  static StatusOr<Image> DecodeBytes(const std::vector<uint8_t>& bytes);

 private:
  AppProcess* app_;
  simos::SimFs* fs_;
  size_t max_file_bytes_;
  uint64_t io_buf_;
  core::Descriptor read_descriptor_;
};

}  // namespace copier::apps

#endif  // COPIER_SRC_APPS_PNGISH_H_
