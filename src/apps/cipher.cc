#include "src/apps/cipher.h"

#include <cstring>

#include "src/common/logging.h"

namespace copier::apps {

namespace {

uint32_t Rotl32(uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }

void QuarterRound(std::array<uint32_t, 16>& s, int a, int b, int c, int d) {
  s[a] += s[b];
  s[d] = Rotl32(s[d] ^ s[a], 16);
  s[c] += s[d];
  s[b] = Rotl32(s[b] ^ s[c], 12);
  s[a] += s[b];
  s[d] = Rotl32(s[d] ^ s[a], 8);
  s[c] += s[d];
  s[b] = Rotl32(s[b] ^ s[c], 7);
}

uint32_t Load32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

}  // namespace

ChaCha20::ChaCha20(const std::array<uint8_t, 32>& key, const std::array<uint8_t, 12>& nonce,
                   uint32_t counter) {
  static constexpr uint32_t kSigma[4] = {0x61707865, 0x3320646e, 0x79622d32, 0x6b206574};
  for (int i = 0; i < 4; ++i) {
    state_[i] = kSigma[i];
  }
  for (int i = 0; i < 8; ++i) {
    state_[4 + i] = Load32(key.data() + 4 * i);
  }
  state_[12] = counter;
  for (int i = 0; i < 3; ++i) {
    state_[13 + i] = Load32(nonce.data() + 4 * i);
  }
}

void ChaCha20::Block() {
  std::array<uint32_t, 16> working = state_;
  for (int round = 0; round < 10; ++round) {
    QuarterRound(working, 0, 4, 8, 12);
    QuarterRound(working, 1, 5, 9, 13);
    QuarterRound(working, 2, 6, 10, 14);
    QuarterRound(working, 3, 7, 11, 15);
    QuarterRound(working, 0, 5, 10, 15);
    QuarterRound(working, 1, 6, 11, 12);
    QuarterRound(working, 2, 7, 8, 13);
    QuarterRound(working, 3, 4, 9, 14);
  }
  for (int i = 0; i < 16; ++i) {
    const uint32_t word = working[i] + state_[i];
    keystream_[4 * i] = static_cast<uint8_t>(word);
    keystream_[4 * i + 1] = static_cast<uint8_t>(word >> 8);
    keystream_[4 * i + 2] = static_cast<uint8_t>(word >> 16);
    keystream_[4 * i + 3] = static_cast<uint8_t>(word >> 24);
  }
  ++state_[12];
  keystream_used_ = 0;
}

void ChaCha20::Process(const uint8_t* in, uint8_t* out, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (keystream_used_ == 64) {
      Block();
    }
    out[i] = in[i] ^ keystream_[keystream_used_++];
  }
}

SecureChannel::SecureChannel(AppProcess* app, const std::array<uint8_t, 32>& key)
    : app_(app), key_(key), header_descriptor_(kPageSize), recv_descriptor_(kMaxRecord + 16) {
  header_buf_ = app_->Map(kPageSize, "tls-header", true);
  record_buf_ = app_->Map(kMaxRecord + 16, "tls-record", true);
  plain_buf_ = app_->Map(kMaxRecord + 16, "tls-plain", true);
}

Status SecureChannel::SendEncrypted(simos::SimSocket* sock,
                                    const std::vector<uint8_t>& plaintext, ExecContext* ctx) {
  AppIo& io = app_->io();
  size_t sent = 0;
  while (sent < plaintext.size()) {
    const size_t record = std::min(kMaxRecord, plaintext.size() - sent);
    // Record header: 4-byte length. Payload encrypted with a per-record nonce
    // derived from the record counter.
    std::vector<uint8_t> wire(4 + record);
    wire[0] = static_cast<uint8_t>(record);
    wire[1] = static_cast<uint8_t>(record >> 8);
    wire[2] = static_cast<uint8_t>(record >> 16);
    wire[3] = static_cast<uint8_t>(tx_records_ & 0xff);
    std::array<uint8_t, 12> nonce = {};
    std::memcpy(nonce.data(), &tx_records_, sizeof(tx_records_));
    ChaCha20 cipher(key_, nonce);
    cipher.Process(plaintext.data() + sent, wire.data() + 4, record);
    io.Compute(ctx, record, kDecryptCpb, 200);  // encryption work
    ++tx_records_;

    io.Write(record_buf_, wire.data(), wire.size(), ctx);
    auto result = io.Send(sock, record_buf_, wire.size(), ctx);
    if (!result.ok()) {
      return result.status();
    }
    sent += record;
  }
  return OkStatus();
}

StatusOr<SecureChannel::ReadResult> SecureChannel::ReadDecrypted(simos::SimSocket* sock,
                                                                 ExecContext* ctx) {
  AppIo& io = app_->io();
  // Stream framing: read the 4-byte record header *exactly*, then exactly
  // the record body — the stream may already hold the next record's bytes.
  auto got_header = io.Recv(sock, header_buf_, 4, &header_descriptor_, ctx);
  if (!got_header.ok()) {
    return got_header.status();
  }
  if (*got_header < 4) {
    return InvalidArgument("truncated TLS record header");
  }
  uint8_t header[4];
  io.ReadSynced(header_buf_, header, 4, ctx);
  const size_t record = static_cast<size_t>(header[0]) | static_cast<size_t>(header[1]) << 8 |
                        static_cast<size_t>(header[2]) << 16;
  if (record > kMaxRecord) {
    return InvalidArgument("oversized TLS record");
  }
  size_t received_total = 0;
  while (received_total < record) {
    auto received = io.Recv(sock, record_buf_ + received_total, record - received_total,
                            received_total == 0 ? &recv_descriptor_ : nullptr, ctx);
    if (!received.ok()) {
      return received.status();
    }
    received_total += *received;
  }

  std::array<uint8_t, 12> nonce = {};
  std::memcpy(nonce.data(), &rx_records_, sizeof(rx_records_));
  ChaCha20 cipher(key_, nonce);
  ++rx_records_;

  // Decrypt in 2 KiB chunks: csync each chunk immediately before its XOR —
  // the keystream computation for chunk i overlaps the recv copy of chunk
  // i+1 (the Copy-Use window of Fig. 3's "Chacha20 dec." row).
  constexpr size_t kChunk = 2 * kKiB;
  std::vector<uint8_t> in_chunk(kChunk);
  std::vector<uint8_t> out_chunk(kChunk);
  size_t done = 0;
  while (done < record) {
    const size_t n = std::min(kChunk, record - done);
    io.ReadSynced(record_buf_ + done, in_chunk.data(), n, ctx);
    cipher.Process(in_chunk.data(), out_chunk.data(), n);
    io.Compute(ctx, n, kDecryptCpb);
    io.Write(plain_buf_ + done, out_chunk.data(), n, ctx);
    done += n;
  }
  return ReadResult{plain_buf_, record};
}

StatusOr<std::vector<uint8_t>> SecureChannel::PlaintextBytes(const ReadResult& result) {
  std::vector<uint8_t> bytes(result.length);
  COPIER_RETURN_IF_ERROR(
      app_->proc()->mem().ReadBytes(result.va, bytes.data(), result.length));
  return bytes;
}

}  // namespace copier::apps
