#include "src/apps/serve_harness.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "src/apps/minikv.h"
#include "src/apps/miniproxy.h"
#include "src/common/logging.h"
#include "src/core/linux_glue.h"
#include "src/core/service.h"
#include "src/simos/kernel.h"

namespace copier::apps {
namespace {

constexpr double kNominalGHz = 2.9;  // virtual cycles -> microseconds
// Cost estimate handed to admission: the value/body bytes a request pushes
// through the copy service, plus a fixed header allowance.
constexpr uint64_t kRequestOverheadBytes = 64;

double VirtualUs(Cycles cycles) { return static_cast<double>(cycles) / (kNominalGHz * 1e3); }

// Deterministic value/body content from the request identity alone, so a
// replayed subset (SpreadTrace keeps indices) regenerates identical bytes.
std::vector<uint8_t> ValueBytes(const core::ServeRequest& req) {
  std::vector<uint8_t> value(req.value_bytes);
  uint64_t x = req.index * 0x9e3779b97f4a7c15ull + req.key + 1;
  for (auto& byte : value) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    byte = static_cast<uint8_t>(x >> 56);
  }
  return value;
}

struct Conn {
  AppProcess* app = nullptr;
  simos::SimSocket* sock = nullptr;        // KV pair, client end
  simos::SimSocket* server_end = nullptr;  // KV pair, server end
  simos::SimSocket* px_sock = nullptr;     // proxy pair, client end
  simos::SimSocket* px_in = nullptr;       // proxy pair, proxy-side end
  uint64_t buf = 0;
};

ServeResult RunServe(const ServeOptions& options, bool threaded) {
  const hw::TimingModel* timing =
      options.timing != nullptr ? options.timing : &hw::TimingModel::Default();
  const core::ServeWorkload& workload = options.workload;
  const std::vector<core::ServeRequest> trace =
      options.trace.empty() ? core::BuildServeTrace(workload) : options.trace;
  ServeResult result;
  if (trace.empty()) {
    return result;
  }

  simos::SimKernel::Config kconfig;
  kconfig.timing = timing;
  auto kernel = std::make_unique<simos::SimKernel>(kconfig);
  core::CopierService::Options soptions;
  soptions.config = options.config;
  soptions.timing = timing;
  soptions.mode =
      threaded ? core::CopierService::Mode::kThreaded : core::CopierService::Mode::kManual;
  if (threaded) {
    soptions.config.min_threads = options.threads;
    soptions.config.max_threads = options.threads;
  }
  auto service = std::make_unique<core::CopierService>(std::move(soptions));
  auto glue = std::make_unique<core::CopierLinux>(service.get(), kernel.get());
  if (options.mode == Mode::kCopier) {
    glue->Install();
  }
  if (threaded) {
    service->Start();
  }

  std::vector<std::unique_ptr<AppProcess>> apps;
  auto new_app = [&](Mode mode, const std::string& name) {
    apps.push_back(std::make_unique<AppProcess>(kernel.get(), service.get(), mode, name));
    return apps.back().get();
  };

  AppProcess* server = new_app(options.mode, "kv-server");
  MiniKv kv(server);
  core::Client* kv_client = options.mode == Mode::kCopier
                                ? service->ClientById(server->proc()->copier_client_id())
                                : nullptr;

  const bool use_proxy = std::any_of(trace.begin(), trace.end(),
                                     [](const core::ServeRequest& r) { return r.via_proxy; });
  AppProcess* proxy = nullptr;
  std::unique_ptr<MiniProxy> mp;
  core::Client* proxy_client = nullptr;
  simos::SimSocket* proxy_out = nullptr;
  simos::SimSocket* upstream = nullptr;
  if (use_proxy) {
    proxy = new_app(options.mode, "proxy");
    mp = std::make_unique<MiniProxy>(proxy);
    auto [out_end, up_end] = kernel->CreateSocketPair();
    proxy_out = out_end;
    upstream = up_end;
    if (options.mode == Mode::kCopier) {
      proxy_client = service->ClientById(proxy->proc()->copier_client_id());
    }
  }

  // Admission requires a copier client to account against; without one
  // (kSync/kZio server) only the kNone policy is meaningful.
  COPIER_CHECK(options.mode == Mode::kCopier ||
               options.config.overload_policy == core::CopierConfig::OverloadPolicy::kNone);

  size_t conn_count = workload.connections;
  size_t max_value = 4096;
  for (const core::ServeRequest& req : trace) {
    conn_count = std::max<size_t>(conn_count, req.conn + 1);
    max_value = std::max<size_t>(max_value, req.value_bytes);
  }
  const size_t buf_bytes = max_value + 64 * kKiB;

  std::vector<Conn> conns(conn_count);
  for (size_t i = 0; i < conns.size(); ++i) {
    Conn& conn = conns[i];
    conn.app = new_app(Mode::kSync, "client-" + std::to_string(i));
    auto [client_end, server_end] = kernel->CreateSocketPair();
    conn.sock = client_end;
    conn.server_end = server_end;
    if (use_proxy) {
      auto [px_client, px_in] = kernel->CreateSocketPair();
      conn.px_sock = px_client;
      conn.px_in = px_in;
    }
    conn.buf = conn.app->Map(buf_bytes, "cbuf");
  }

  // Host-clock pacing (threaded mode): arrival cycle * ns_per_cycle.
  const auto host_start = std::chrono::steady_clock::now();
  auto host_now_ns = [&]() -> uint64_t {
    return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                     std::chrono::steady_clock::now() - host_start)
                                     .count());
  };
  auto arrival_ns = [&](const core::ServeRequest& req) -> uint64_t {
    return static_cast<uint64_t>(static_cast<double>(req.arrival) * options.ns_per_cycle);
  };
  auto host_sleep_ns = [&](uint64_t ns) {
    if (ns > 100'000) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(ns - 50'000));
    }
  };

  // Pumps the manual-mode service on behalf of the Copier core; a no-op in
  // threaded mode (real threads serve) and sync mode (no copier client).
  auto pump = [&](core::Client* client) {
    if (!threaded && client != nullptr) {
      service->Serve(*client);
    }
  };

  auto recv_reply = [&](Conn& conn, size_t reply_len, ExecContext& cctx) {
    auto reply = kernel->Recv(*conn.app->proc(), conn.sock, conn.buf, reply_len, &cctx);
    uint64_t spins = 0;
    while (!reply.ok()) {
      if (!threaded) {
        COPIER_CHECK(kv_client != nullptr) << reply.status().ToString();
        service->Serve(*kv_client);
      } else {
        std::this_thread::yield();
        ++spins;
        if (spins % 4096 == 0) {
          service->DrainAll();
        }
        COPIER_CHECK(spins < (1ull << 26)) << "serve reply stuck: " << reply.status().ToString();
      }
      reply = kernel->Recv(*conn.app->proc(), conn.sock, conn.buf, reply_len, &cctx);
    }
  };

  std::map<std::string, std::vector<uint8_t>> model;  // expected store image
  result.records.reserve(trace.size());

  for (const core::ServeRequest& req : trace) {
    ++result.offered;
    Conn& conn = conns[req.conn];
    ServeRecord rec;
    rec.index = req.index;
    rec.conn = req.conn;
    rec.is_get = req.is_get;
    rec.via_proxy = req.via_proxy;

    if (req.churn_before) {
      // Connection churn: the client reconnects — fresh socket pairs, same
      // process. The old pair is fully drained (requests complete inline).
      auto [client_end, server_end] = kernel->CreateSocketPair();
      conn.sock = client_end;
      conn.server_end = server_end;
      if (use_proxy) {
        auto [px_client, px_in] = kernel->CreateSocketPair();
        conn.px_sock = px_client;
        conn.px_in = px_in;
      }
      ++result.churns;
    }

    ExecContext& cctx = conn.app->ctx();
    if (threaded) {
      const uint64_t target = arrival_ns(req);
      uint64_t now = host_now_ns();
      if (now < target) {
        host_sleep_ns(target - now);
        while (host_now_ns() < target) {
        }
      }
    } else {
      cctx.WaitUntil(req.arrival);
    }

    // --- admission (request boundary: before any bytes move) ---
    const std::string key = "key" + std::to_string(req.key);
    const auto model_it = model.find(key);
    const uint64_t expected_value =
        req.via_proxy ? req.value_bytes
                      : (req.is_get ? (model_it != model.end() ? model_it->second.size() : 0)
                                    : req.value_bytes);
    const uint64_t cost = expected_value + kRequestOverheadBytes;
    core::Client* target_client = req.via_proxy ? proxy_client : kv_client;
    bool admitted = true;
    if (target_client != nullptr) {
      for (;;) {
        const core::CopierService::Admission adm = service->AdmitRequest(
            *target_client, cost, threaded ? host_now_ns() : cctx.now());
        if (adm.verdict == core::CopierService::AdmissionVerdict::kAdmit) {
          break;
        }
        if (adm.verdict == core::CopierService::AdmissionVerdict::kThrottle) {
          rec.throttled = true;
          ++result.throttle_verdicts;
          if (threaded) {
            host_sleep_ns(adm.wait_cycles);
          } else {
            cctx.WaitUntil(cctx.now() + adm.wait_cycles);
          }
          break;  // throttle admits once the backpressure wait is charged
        }
        if (adm.verdict == core::CopierService::AdmissionVerdict::kDefer) {
          ++rec.defers;
          ++result.defer_verdicts;
          if (rec.defers > options.config.admission_max_defer_retries) {
            service->AbandonRequest(*target_client);
            admitted = false;
            break;
          }
          if (threaded) {
            host_sleep_ns(adm.wait_cycles);
          } else {
            cctx.WaitUntil(cctx.now() + adm.wait_cycles);
          }
          continue;
        }
        admitted = false;  // kShed
        break;
      }
    }
    rec.admitted = admitted;
    if (!admitted) {
      ++result.shed;
      rec.kfuncs_after = service->TotalStats().kfuncs_run;
      result.records.push_back(rec);
      continue;
    }
    ++result.admitted;

    // Copy-use window attribution (virtual runs): everything the service
    // retires from here to completion belongs to this request — the trace is
    // driven one request at a time, so [submit_at, last KFUNC] is the span
    // the Copier held kernel resources (skbs, locked pages) on its behalf.
    const uint64_t prev_kfuncs = service->TotalStats().kfuncs_run;
    const Cycles submit_at = cctx.now();

    Cycles completion_cycles = 0;
    uint64_t completion_ns = 0;
    if (!req.via_proxy) {
      // --- KV request ---
      std::vector<uint8_t> request_bytes;
      std::vector<uint8_t> expected_reply;
      if (req.is_get) {
        request_bytes = MiniKv::BuildGet(key);
        if (model_it == model.end()) {
          expected_reply = {'$', '-', '1', '\r', '\n'};
        } else {
          const std::string header = "$" + std::to_string(model_it->second.size()) + "\r\n";
          expected_reply.assign(header.begin(), header.end());
          expected_reply.insert(expected_reply.end(), model_it->second.begin(),
                                model_it->second.end());
          expected_reply.push_back('\r');
          expected_reply.push_back('\n');
        }
      } else {
        const std::vector<uint8_t> value = ValueBytes(req);
        request_bytes = MiniKv::BuildSet(key, value);
        expected_reply = {'+', 'O', 'K', '\r', '\n'};
        model[key] = value;
      }
      conn.app->io().Write(conn.buf, request_bytes.data(), request_bytes.size(), &cctx);
      COPIER_CHECK(
          kernel->Send(*conn.app->proc(), conn.sock, conn.buf, request_bytes.size(), &cctx)
              .ok());
      if (!threaded) {
        // The server cannot see the request before it was sent; under
        // overload its clock is already ahead and this is a no-op — that lag
        // *is* the queueing delay.
        server->ctx().WaitUntil(cctx.now());
      }
      auto processed = kv.ProcessOne(conn.server_end, &server->ctx());
      COPIER_CHECK(processed.ok()) << processed.status().ToString();
      uint64_t idle_spins = 0;
      while (!*processed) {  // threaded: request bytes may still be landing
        COPIER_CHECK(threaded && ++idle_spins < (1ull << 26)) << "request never arrived";
        std::this_thread::yield();
        processed = kv.ProcessOne(conn.server_end, &server->ctx());
        COPIER_CHECK(processed.ok()) << processed.status().ToString();
      }
      pump(kv_client);
      recv_reply(conn, expected_reply.size(), cctx);
      std::vector<uint8_t> got(expected_reply.size());
      COPIER_CHECK(
          conn.app->proc()->mem().ReadBytes(conn.buf, got.data(), got.size()).ok());
      if (got != expected_reply) {
        result.replies_ok = false;
        size_t diff = 0;
        while (diff < got.size() && got[diff] == expected_reply[diff]) {
          ++diff;
        }
        std::fprintf(stderr,
                     "MISMATCH: req %llu conn %u %s key%u reply differs at byte %zu/%zu "
                     "(got 0x%02x want 0x%02x)\n",
                     (unsigned long long)req.index, req.conn, req.is_get ? "GET" : "SET",
                     req.key, diff, got.size(), diff < got.size() ? got[diff] : 0,
                     diff < expected_reply.size() ? expected_reply[diff] : 0);
      }
      rec.reply_hash = Fnv1a(got.data(), got.size());
      completion_cycles = cctx.now();
      completion_ns = host_now_ns();
    } else {
      // --- proxy request ---
      const std::vector<uint8_t> body = ValueBytes(req);
      const auto msg = MiniProxy::BuildMessage(1, body);
      conn.app->io().Write(conn.buf, msg.data(), msg.size(), &cctx);
      COPIER_CHECK(
          kernel->Send(*conn.app->proc(), conn.px_sock, conn.buf, msg.size(), &cctx).ok());
      if (!threaded) {
        proxy->ctx().WaitUntil(cctx.now());
      }
      auto forwarded = mp->ForwardOne(conn.px_in, proxy_out, &proxy->ctx());
      COPIER_CHECK(forwarded.ok()) << forwarded.status().ToString();
      uint64_t idle_spins = 0;
      while (!*forwarded) {
        COPIER_CHECK(threaded && ++idle_spins < (1ull << 26)) << "forward never arrived";
        std::this_thread::yield();
        forwarded = mp->ForwardOne(conn.px_in, proxy_out, &proxy->ctx());
        COPIER_CHECK(forwarded.ok()) << forwarded.status().ToString();
      }
      pump(proxy_client);
      // Upstream sink: the request completes when the forwarded message has
      // fully arrived (its skbs drain back to the pool here).
      size_t consumed = 0;
      Cycles delivered = 0;
      uint64_t drain_spins = 0;
      while (consumed < msg.size()) {
        const size_t n =
            upstream->ConsumeRx(SIZE_MAX, &delivered, [&](simos::Skb* skb, size_t, size_t) {
              skb->pending_copies.fetch_add(1, std::memory_order_relaxed);
              simos::SimSocket::CompleteCopy(&kernel->skb_pool(), skb);
            });
        consumed += n;
        if (n == 0) {
          COPIER_CHECK(++drain_spins < (1ull << 26)) << "upstream starved";
          pump(proxy_client);
          if (threaded) {
            std::this_thread::yield();
          }
        }
      }
      completion_cycles = std::max(proxy->ctx().now(), delivered);
      cctx.WaitUntil(completion_cycles);  // the conn is busy until delivery
      completion_ns = host_now_ns();
    }
    if (target_client != nullptr) {
      service->FinishRequest(*target_client, cost,
                             threaded ? completion_ns : completion_cycles);
    }
    rec.latency_us = threaded
                         ? static_cast<double>(completion_ns - arrival_ns(req)) / 1e3
                         : VirtualUs(completion_cycles - req.arrival);
    const core::Engine::Stats after = service->TotalStats();
    rec.kfuncs_after = after.kfuncs_run;
    if (!threaded && after.kfuncs_run > prev_kfuncs &&
        after.last_kfunc_cycles > submit_at) {
      rec.copy_window_us = VirtualUs(after.last_kfunc_cycles - submit_at);
      result.copy_window.Add(rec.copy_window_us);
    }
    result.latency.Add(rec.latency_us);
    result.records.push_back(rec);
  }

  service->DrainAll();

  // Final store image vs the model (byte identity of every admitted SET).
  uint64_t hash = 1469598103934665603ull;
  for (const auto& [model_key, value] : model) {
    auto stored = kv.Lookup(model_key);
    if (!stored.ok() || *stored != value) {
      result.replies_ok = false;
      std::fprintf(stderr, "MISMATCH: final store image differs from model at %s (%s)\n",
                   model_key.c_str(),
                   stored.ok() ? "bytes differ" : stored.status().ToString().c_str());
    }
    hash = Fnv1a(model_key.data(), model_key.size(), hash);
    if (stored.ok()) {
      hash = Fnv1a(stored->data(), stored->size(), hash);
    }
  }
  result.store_hash = hash;

  if (threaded) {
    result.span_us =
        static_cast<double>(host_now_ns() - arrival_ns(trace.front())) / 1e3;
  } else {
    Cycles end = server->ctx().now();
    if (proxy != nullptr) {
      end = std::max(end, proxy->ctx().now());
    }
    for (const Conn& conn : conns) {
      end = std::max(end, conn.app->ctx().now());
    }
    result.span_us = VirtualUs(end - trace.front().arrival);
  }
  if (result.span_us > 0) {
    result.achieved_rps = static_cast<double>(result.admitted) / (result.span_us / 1e6);
  }
  result.stats = service->TotalStats();
  if (threaded) {
    service->Stop();
  }
  return result;
}

}  // namespace

ServeResult RunServeVirtual(const ServeOptions& options) { return RunServe(options, false); }

ServeResult RunServeThreaded(const ServeOptions& options) { return RunServe(options, true); }

std::vector<core::ServeRequest> SpreadTrace(const std::vector<core::ServeRequest>& requests,
                                            Cycles gap) {
  std::vector<core::ServeRequest> spread = requests;
  Cycles at = 0;
  for (core::ServeRequest& req : spread) {
    at += gap;
    req.arrival = at;
    req.churn_before = false;  // replay measures the requests, not reconnects
  }
  return spread;
}

uint64_t Fnv1a(const void* data, size_t n, uint64_t hash) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace copier::apps
