#include "src/apps/pngish.h"

#include <cstring>

#include "src/common/logging.h"
#include "src/common/rng.h"

namespace copier::apps {

namespace {

void Put32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

uint32_t Get32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

// In-place unfilter of one row given the previous unfiltered row.
void Unfilter(uint8_t filter, uint8_t* row, const uint8_t* prev, size_t stride, uint32_t bpp) {
  switch (filter) {
    case 0:
      break;
    case 1:  // Sub: add left neighbour
      for (size_t i = bpp; i < stride; ++i) {
        row[i] = static_cast<uint8_t>(row[i] + row[i - bpp]);
      }
      break;
    case 2:  // Up: add the byte above
      if (prev != nullptr) {
        for (size_t i = 0; i < stride; ++i) {
          row[i] = static_cast<uint8_t>(row[i] + prev[i]);
        }
      }
      break;
    default:
      break;
  }
}

}  // namespace

Pngish::Pngish(AppProcess* app, simos::SimFs* fs, size_t max_file_bytes)
    : app_(app), fs_(fs), max_file_bytes_(max_file_bytes), read_descriptor_(max_file_bytes) {
  io_buf_ = app_->Map(max_file_bytes_, "png-io", true);
}

std::vector<uint8_t> Pngish::EncodeImage(uint32_t width, uint32_t height, uint32_t bpp,
                                         uint64_t seed) {
  const size_t stride = static_cast<size_t>(width) * bpp;
  Rng rng(seed);
  // Smooth-ish pixel content so filters do real work.
  std::vector<uint8_t> pixels(stride * height);
  uint8_t value = 0;
  for (auto& px : pixels) {
    value = static_cast<uint8_t>(value + rng.Below(7)) ;
    px = value;
  }

  std::vector<uint8_t> out;
  Put32(out, width);
  Put32(out, height);
  Put32(out, bpp);
  std::vector<uint8_t> prev(stride, 0);
  for (uint32_t r = 0; r < height; ++r) {
    const uint8_t* row = pixels.data() + r * stride;
    const uint8_t filter = static_cast<uint8_t>(r % 3);
    out.push_back(filter);
    for (size_t i = 0; i < stride; ++i) {
      uint8_t encoded = row[i];
      if (filter == 1 && i >= bpp) {
        encoded = static_cast<uint8_t>(row[i] - row[i - bpp]);
      } else if (filter == 2 && r > 0) {
        encoded = static_cast<uint8_t>(row[i] - prev[i]);
      }
      out.push_back(encoded);
    }
    prev.assign(row, row + stride);
  }
  return out;
}

StatusOr<Pngish::Image> Pngish::DecodeBytes(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < 12) {
    return InvalidArgument("truncated image header");
  }
  Image image;
  image.width = Get32(bytes.data());
  image.height = Get32(bytes.data() + 4);
  image.bpp = Get32(bytes.data() + 8);
  const size_t stride = static_cast<size_t>(image.width) * image.bpp;
  image.pixels.resize(stride * image.height);
  size_t pos = 12;
  for (uint32_t r = 0; r < image.height; ++r) {
    if (pos + 1 + stride > bytes.size()) {
      return InvalidArgument("truncated row");
    }
    const uint8_t filter = bytes[pos++];
    uint8_t* row = image.pixels.data() + r * stride;
    std::memcpy(row, bytes.data() + pos, stride);
    Unfilter(filter, row, r > 0 ? image.pixels.data() + (r - 1) * stride : nullptr, stride,
             image.bpp);
    pos += stride;
  }
  return image;
}

StatusOr<Pngish::Image> Pngish::DecodeFile(const std::string& name, ExecContext* ctx) {
  AppIo& io = app_->io();
  auto fd = fs_->Open(name);
  if (!fd.ok()) {
    return fd.status();
  }
  const size_t file_size = fs_->FileSize(name);
  if (file_size > max_file_bytes_) {
    return InvalidArgument("file exceeds I/O buffer");
  }
  // read(2): one bulk read into the I/O buffer; asynchronous in Copier mode
  // (the kernel reports into read_descriptor_, §5.2's recv() pattern applied
  // to file I/O, §7).
  if (io.mode == Mode::kCopier) {
    if (io.bound_descriptors.insert({&read_descriptor_, io_buf_}).second) {
      io.lib->shm_descr_bind(io_buf_, &read_descriptor_);
    }
    read_descriptor_.Reset(read_descriptor_.length());
  }
  auto got = fs_->Read(*app_->proc(), *fd, io_buf_, file_size, ctx,
                       io.mode == Mode::kCopier ? &read_descriptor_ : nullptr);
  if (!got.ok()) {
    return got.status();
  }
  if (io.mode == Mode::kZio) {
    io.zio->SourceReused(io_buf_, file_size, ctx);
  }

  // Header.
  uint8_t header[12];
  io.ReadSynced(io_buf_, header, 12, ctx);
  Image image;
  image.width = Get32(header);
  image.height = Get32(header + 4);
  image.bpp = Get32(header + 8);
  const size_t stride = static_cast<size_t>(image.width) * image.bpp;
  if (12 + image.height * (stride + 1) > *got) {
    return InvalidArgument("truncated image");
  }
  image.pixels.resize(stride * image.height);

  // Row-by-row: csync gates each row right before its unfilter; unfiltering
  // row r overlaps the in-flight copy of rows r+1.. (the Copy-Use window).
  std::vector<uint8_t> row_buf(stride + 1);
  size_t pos = 12;
  for (uint32_t r = 0; r < image.height; ++r) {
    io.ReadSynced(io_buf_ + pos, row_buf.data(), stride + 1, ctx);
    uint8_t* row = image.pixels.data() + r * stride;
    std::memcpy(row, row_buf.data() + 1, stride);
    Unfilter(row_buf[0], row, r > 0 ? image.pixels.data() + (r - 1) * stride : nullptr,
             stride, image.bpp);
    io.Compute(ctx, stride, kUnfilterCpb, kRowFixed);
    pos += stride + 1;
  }
  return image;
}

}  // namespace copier::apps
