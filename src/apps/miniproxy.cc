#include "src/apps/miniproxy.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <optional>

#include "src/common/logging.h"

namespace copier::apps {

MiniProxy::MiniProxy(AppProcess* proxy, size_t buf_bytes)
    : proxy_(proxy), buf_bytes_(buf_bytes), in_descriptor_(buf_bytes) {
  in_buf_ = proxy_->Map(buf_bytes_, "proxy-in", true);
  out_buf_ = proxy_->Map(buf_bytes_, "proxy-out", true);
}

StatusOr<bool> MiniProxy::ForwardOne(simos::SimSocket* in, simos::SimSocket* out,
                                     ExecContext* ctx) {
  AppIo& io = proxy_->io();
  const bool lazy = io.mode == Mode::kCopier;
  auto received = io.Recv(in, in_buf_, buf_bytes_, &in_descriptor_, ctx, /*lazy_recv=*/lazy);
  if (!received.ok()) {
    if (received.status().code() == StatusCode::kUnavailable) {
      return false;
    }
    return received.status();
  }

  // Parse the request line only (csync'd header window).
  char header[64] = {0};
  const size_t header_len = std::min<size_t>(sizeof(header), *received);
  io.ReadSynced(in_buf_, header, header_len, ctx);
  int upstream = 0;
  size_t body_len = 0;
  if (std::sscanf(header, "FWD %d %zu", &upstream, &body_len) != 2) {
    return InvalidArgument("bad proxy message");
  }
  const char* crlf = static_cast<const char*>(std::memchr(header, '\n', header_len));
  if (crlf == nullptr) {
    return InvalidArgument("header too long");
  }
  const size_t body_off = static_cast<size_t>(crlf - header) + 1;
  if (body_off + body_len > *received) {
    return InvalidArgument("truncated body");
  }
  io.Compute(ctx, body_off, kHeaderParseCpb, kRouteFixed);

  // Rewrite the request line ("VIA ...") into the output buffer and organize
  // the message: body copy submitted async/lazy-absorbable; never touched.
  char new_header[64];
  const int new_header_len =
      std::snprintf(new_header, sizeof(new_header), "VIA %d %zu\r\n", upstream, body_len);
  io.Write(out_buf_, new_header, static_cast<size_t>(new_header_len), ctx);
  io.Copy(out_buf_ + new_header_len, in_buf_ + body_off, body_len, ctx, /*lazy=*/lazy);

  auto sent = io.Send(out, out_buf_, new_header_len + body_len, ctx);
  if (!sent.ok()) {
    return sent.status();
  }

  if (lazy) {
    // The message is forwarded: discard the still-queued lazy tasks (recv
    // K1->U and organize U->U') for the untouched body (§4.4 abort). The
    // engine defers the discard until the send's absorption chain has run;
    // the recv KFUNCs then reclaim the skbs.
    proxy_->lib()->abort_range(in_buf_ + body_off, body_len, ctx);
    proxy_->lib()->abort_range(out_buf_ + new_header_len, body_len, ctx);
  }
  ++forwarded_;
  return true;
}

std::shared_ptr<simos::ForwardRule> MiniProxy::MakeParcelForwardRule(
    simos::ForwardEndpoint* endpoint) {
  auto rule = std::make_shared<simos::ForwardRule>();
  rule->endpoint = endpoint;
  rule->inspect_limit = 64;  // request line only, same window ForwardOne syncs
  rule->rewrite_cycles = kRouteFixed;
  rule->rewrite = [](const uint8_t* head, size_t head_len,
                     size_t total) -> std::optional<simos::ForwardAction> {
    char header[64] = {0};
    std::memcpy(header, head, std::min(head_len, sizeof(header) - 1));
    int upstream = 0;
    size_t body_len = 0;
    if (std::sscanf(header, "FWD %d %zu", &upstream, &body_len) != 2) {
      return std::nullopt;
    }
    const char* crlf = static_cast<const char*>(std::memchr(header, '\n', head_len));
    if (crlf == nullptr) {
      return std::nullopt;
    }
    const size_t body_off = static_cast<size_t>(crlf - header) + 1;
    if (body_off + body_len != total) {
      return std::nullopt;  // partial or over-long frame: app-level path
    }
    char via[64];
    const int via_len =
        std::snprintf(via, sizeof(via), "VIA %d %zu\r\n", upstream, body_len);
    simos::ForwardAction action;
    action.body_off = body_off;
    // Parcel framing, byte-for-byte what ParcelWriter::WriteString produces
    // for the rewritten message: u32 item length, then the item bytes.
    const uint32_t item_len = static_cast<uint32_t>(via_len + body_len);
    const uint8_t* len_bytes = reinterpret_cast<const uint8_t*>(&item_len);
    action.prefix.reserve(4 + static_cast<size_t>(via_len));
    action.prefix.insert(action.prefix.end(), len_bytes, len_bytes + 4);
    action.prefix.insert(action.prefix.end(), via, via + via_len);
    return action;
  };
  return rule;
}

std::vector<uint8_t> MiniProxy::BuildMessage(int upstream, const std::vector<uint8_t>& body) {
  char header[64];
  const int n =
      std::snprintf(header, sizeof(header), "FWD %d %zu\r\n", upstream, body.size());
  std::vector<uint8_t> out(header, header + n);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

}  // namespace copier::apps
