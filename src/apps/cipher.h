// Cipher — an OpenSSL-like secure channel built on a real ChaCha20 stream
// cipher (§6.2.3, Fig. 13-b).
//
// SSL_read() structure reproduced: a TLS-like record is received via the
// socket (the kernel->user copy) and then decrypted in place-adjacent
// buffers. The copied data is one-time-use (decrypt reads it exactly once),
// so in Copier mode the app csyncs record chunks just before decrypting them,
// overlapping recv's copy with the keystream computation.
#ifndef COPIER_SRC_APPS_CIPHER_H_
#define COPIER_SRC_APPS_CIPHER_H_

#include <array>
#include <vector>

#include "src/apps/app_util.h"
#include "src/core/descriptor.h"

namespace copier::apps {

// Real ChaCha20 block function (RFC 8439). Used by both endpoints.
class ChaCha20 {
 public:
  ChaCha20(const std::array<uint8_t, 32>& key, const std::array<uint8_t, 12>& nonce,
           uint32_t counter = 1);

  // XORs the keystream over `n` bytes (encrypt == decrypt).
  void Process(const uint8_t* in, uint8_t* out, size_t n);

 private:
  void Block();

  std::array<uint32_t, 16> state_;
  std::array<uint8_t, 64> keystream_;
  size_t keystream_used_ = 64;
};

class SecureChannel {
 public:
  static constexpr size_t kMaxRecord = 16 * kKiB;  // TLS record cap (§6.2.3)
  // Decrypt cost on top of the real XOR work (keystream rounds dominate).
  static constexpr double kDecryptCpb = 1.1;

  SecureChannel(AppProcess* app, const std::array<uint8_t, 32>& key);

  // Encrypts `plaintext` and sends it as one or more records (client side).
  Status SendEncrypted(simos::SimSocket* sock, const std::vector<uint8_t>& plaintext,
                       ExecContext* ctx);

  // SSL_read(): receives one record batch and decrypts it. Returns the
  // plaintext buffer VA and length in this app's address space.
  struct ReadResult {
    uint64_t va = 0;
    size_t length = 0;
  };
  StatusOr<ReadResult> ReadDecrypted(simos::SimSocket* sock, ExecContext* ctx);

  StatusOr<std::vector<uint8_t>> PlaintextBytes(const ReadResult& result);

 private:
  AppProcess* app_;
  std::array<uint8_t, 32> key_;
  uint64_t header_buf_;  // record headers (stream-framing reads are exact)
  uint64_t record_buf_;
  uint64_t plain_buf_;
  core::Descriptor header_descriptor_;
  core::Descriptor recv_descriptor_;
  uint64_t tx_records_ = 0;
  uint64_t rx_records_ = 0;
};

}  // namespace copier::apps

#endif  // COPIER_SRC_APPS_CIPHER_H_
