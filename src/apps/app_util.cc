#include "src/apps/app_util.h"

#include "src/common/logging.h"
#include "src/hw/copy_unit.h"

namespace copier::apps {

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kSync:
      return "sync";
    case Mode::kCopier:
      return "copier";
    case Mode::kZio:
      return "zio";
  }
  return "?";
}

void AppIo::Copy(uint64_t dst, uint64_t src, size_t n, ExecContext* ctx, bool lazy) {
  if (n == 0) {
    return;
  }
  switch (mode) {
    case Mode::kCopier: {
      if (lazy) {
        lib::AmemcpyOptions opts;
        opts.lazy = true;
        lib->_amemcpy(dst, src, n, opts, ctx);
      } else {
        lib->amemcpy(dst, src, n, ctx);
      }
      return;
    }
    case Mode::kZio:
      zio->Copy(dst, src, n, ctx);
      return;
    case Mode::kSync: {
      std::vector<uint8_t> buffer(n);
      COPIER_CHECK_OK(proc->mem().ReadBytes(src, buffer.data(), n, ctx));
      COPIER_CHECK_OK(proc->mem().WriteBytes(dst, buffer.data(), n, ctx));
      ChargeCtx(ctx, timing().CpuCopyCycles(hw::CopyUnitKind::kAvx, n));
      return;
    }
  }
}

void AppIo::SyncBeforeUse(uint64_t addr, size_t n, ExecContext* ctx) {
  if (on_use) {
    on_use(addr, n, CtxNow(ctx));
  }
  switch (mode) {
    case Mode::kCopier:
      COPIER_CHECK_OK(lib->csync(addr, n, ctx));
      return;
    case Mode::kZio:
      zio->Touch(addr, n, ctx);
      return;
    case Mode::kSync:
      return;
  }
}

void AppIo::ReadSynced(uint64_t va, void* out, size_t n, ExecContext* ctx) {
  SyncBeforeUse(va, n, ctx);
  COPIER_CHECK_OK(proc->mem().ReadBytes(va, out, n, ctx));
}

void AppIo::Write(uint64_t va, const void* data, size_t n, ExecContext* ctx) {
  COPIER_CHECK_OK(proc->mem().WriteBytes(va, data, n, ctx));
}

StatusOr<size_t> AppIo::Recv(simos::SimSocket* sock, uint64_t va, size_t n,
                             core::Descriptor* descriptor, ExecContext* ctx, bool lazy_recv) {
  simos::RecvOptions opts;
  if (mode == Mode::kCopier && descriptor == nullptr) {
    // Descriptor-less receive (continuation reads in stream framing): behave
    // synchronously — submit with a scratch descriptor and wait it out.
    core::Descriptor scratch(n);
    opts.descriptor = &scratch;
    auto result = kernel->Recv(*proc, sock, va, n, ctx, opts);
    if (result.ok()) {
      lib->Pump();
      COPIER_CHECK_OK(core::WaitDescriptor(scratch, 0, *result, ctx, [this] { lib->Pump(); }));
    }
    return result;
  }
  if (mode == Mode::kCopier) {
    COPIER_CHECK(descriptor != nullptr);
    // Bind the descriptor to the receive buffer once, so csync(addr) inside
    // this buffer resolves through it (the kernel reports recv progress into
    // it, §5.2); then re-arm it. Buffer-reuse ordering against earlier copies
    // is the engine's dependency tracking's job.
    if (bound_descriptors.insert({descriptor, va}).second) {
      lib->shm_descr_bind(va, descriptor);
    }
    descriptor->Reset(descriptor->length());
    opts.descriptor = descriptor;
    opts.lazy = lazy_recv;
  } else if (mode == Mode::kZio) {
    // The kernel writes the receive buffer: deferred copies sourced from it
    // must materialize first (the Redis input-buffer-reuse pattern).
    zio->SourceReused(va, n, ctx);
    zio->Touch(va, n, ctx);
  }
  return kernel->Recv(*proc, sock, va, n, ctx, opts);
}

StatusOr<size_t> AppIo::Send(simos::SimSocket* sock, uint64_t va, size_t n, ExecContext* ctx) {
  if (mode == Mode::kZio) {
    // The I/O path consumes the buffer: zIO short-circuits deferred copies.
    zio->Consume(va, n, ctx);
  }
  return kernel->Send(*proc, sock, va, n, ctx);
}

AppProcess::AppProcess(simos::SimKernel* kernel, core::CopierService* service, Mode mode,
                       const std::string& name)
    : ctx_(name) {
  proc_ = kernel->CreateProcess(name);
  io_.kernel = kernel;
  io_.proc = proc_;
  io_.mode = mode;
  if (mode == Mode::kCopier) {
    COPIER_CHECK(service != nullptr);
    core::Client* client = service->AttachProcess(proc_);
    lib_ = std::make_unique<lib::CopierLib>(client, service);
    io_.lib = lib_.get();
  } else if (mode == Mode::kZio) {
    // Threshold 4 KiB, matching the paper's evaluation setting (§6).
    zio_ = std::make_unique<baselines::ZioRuntime>(&proc_->mem(), &kernel->timing(), 4 * kKiB);
    io_.zio = zio_.get();
  }
}

uint64_t AppProcess::Map(size_t n, const std::string& name, bool populate) {
  auto va = proc_->mem().MapAnonymous(n, name, populate);
  COPIER_CHECK(va.ok());
  return *va;
}

}  // namespace copier::apps
