#include "src/apps/minikv.h"

#include <cstdio>
#include <cstring>

#include "src/common/logging.h"

namespace copier::apps {

MiniKv::MiniKv(AppProcess* server, Config config)
    : server_(server), config_(config), io_descriptor_(config.io_buf_bytes) {
  io_buf_ = server_->Map(config_.io_buf_bytes, "kv-io", true);
  for (size_t i = 0; i < config_.reply_buffers; ++i) {
    reply_bufs_.push_back(server_->Map(config_.io_buf_bytes, "kv-reply", true));
  }
}

StatusOr<std::string> MiniKv::Cursor::ReadLine() {
  // Header bytes are synced and fetched in 128-byte windows — apps should
  // csync "once every one to few KiB", not per byte (§5.1.1).
  AppIo& io = kv->server_->io();
  char line[36];
  size_t len = 0;
  while (len + 2 <= sizeof(line)) {
    if (pos + len + 2 > available) {
      return InvalidArgument("truncated request line");
    }
    while (window.size() < pos + len + 2) {
      const size_t chunk = std::min<size_t>(128, available - window.size());
      window.resize(window.size() + chunk);
      io.ReadSynced(base + window.size() - chunk, window.data() + window.size() - chunk, chunk,
                    ctx);
    }
    if (window[pos + len] == '\r' && window[pos + len + 1] == '\n') {
      pos += len + 2;
      return std::string(line, len);
    }
    line[len] = static_cast<char>(window[pos + len]);
    ++len;
  }
  return InvalidArgument("request line too long");
}

MiniKv::Entry& MiniKv::EntryFor(const std::string& key, size_t needed) {
  Entry& entry = store_[key];
  if (entry.capacity < needed) {
    const size_t capacity = AlignUp(std::max<size_t>(needed, 64), kPageSize);
    entry.va = server_->Map(capacity, "kv-value", true);
    entry.capacity = capacity;
  }
  return entry;
}

StatusOr<bool> MiniKv::ProcessOne(simos::SimSocket* sock, ExecContext* ctx) {
  AppIo& io = server_->io();
  // (1) request into the I/O buffer. The previous SET's copy out of this
  // buffer and the previous recv into it are ordered by Copier's dependency
  // tracking (or zIO's SourceReused) — see AppIo::Recv.
  auto received = io.Recv(sock, io_buf_, config_.io_buf_bytes, &io_descriptor_, ctx);
  if (!received.ok()) {
    if (received.status().code() == StatusCode::kUnavailable) {
      return false;
    }
    return received.status();
  }

  Cursor cursor{this, io_buf_, *received, 0, ctx};
  auto argc_line = cursor.ReadLine();  // "*2" | "*3"
  if (!argc_line.ok()) {
    return argc_line.status();
  }
  auto cmd_len_line = cursor.ReadLine();  // "$3"
  if (!cmd_len_line.ok()) {
    return cmd_len_line.status();
  }
  auto cmd_line = cursor.ReadLine();  // "SET" | "GET"
  if (!cmd_line.ok()) {
    return cmd_line.status();
  }
  auto key_len_line = cursor.ReadLine();  // "$<klen>"
  if (!key_len_line.ok()) {
    return key_len_line.status();
  }
  const size_t klen = std::strtoul(key_len_line->c_str() + 1, nullptr, 10);
  if (klen == 0 || klen > 512 || cursor.pos + klen + 2 > *received) {
    return InvalidArgument("bad key length");
  }
  // (5) internal copy: key bytes -> lookup scratch.
  std::string key(klen, '\0');
  io.ReadSynced(io_buf_ + cursor.pos, key.data(), klen, ctx);
  cursor.Skip(klen + 2);
  io.Compute(ctx, cursor.pos, kParseCpb, kDispatchFixed);  // protocol parse
  io.Compute(ctx, klen, kHashCpb, 120);                    // key hash + probe

  uint64_t reply_va = reply_bufs_[reply_cursor_];
  reply_cursor_ = (reply_cursor_ + 1) % reply_bufs_.size();

  if (*cmd_line == "SET") {
    ++sets_;
    auto val_len_line = cursor.ReadLine();  // "$<vlen>"
    if (!val_len_line.ok()) {
      return val_len_line.status();
    }
    const size_t vlen = std::strtoul(val_len_line->c_str() + 1, nullptr, 10);
    if (cursor.pos + vlen + 2 > *received) {
      return InvalidArgument("bad value length");
    }
    Entry& entry = EntryFor(key, vlen);
    // (2) value: I/O buffer -> store. Never touched by the server itself, so
    // in Copier mode this is pure async work and a prime absorption target
    // (recv's kernel->I/O task short-circuits into kernel->store).
    io.Copy(entry.va, io_buf_ + cursor.pos, vlen, ctx);
    entry.length = vlen;

    io.Write(reply_va, "+OK\r\n", 5, ctx);
    auto sent = io.Send(sock, reply_va, 5, ctx);
    if (!sent.ok()) {
      return sent.status();
    }
    return true;
  }

  if (*cmd_line == "GET") {
    ++gets_;
    auto it = store_.find(key);
    if (it == store_.end() || it->second.length == 0) {
      io.Write(reply_va, "$-1\r\n", 5, ctx);
      auto sent = io.Send(sock, reply_va, 5, ctx);
      return sent.ok() ? StatusOr<bool>(true) : StatusOr<bool>(sent.status());
    }
    ++hits_;
    Entry& entry = it->second;
    char header[32];
    const int header_len =
        std::snprintf(header, sizeof(header), "$%zu\r\n", entry.length);
    // Land the value page-aligned in the reply buffer: store values are
    // page-aligned (EntryFor maps them), so the store -> reply copy is
    // page-co-aligned and the remap tier (DESIGN.md §11) can satisfy its
    // interior by aliasing when it executes physically. The header backs up
    // from the value instead of the value trailing the header.
    const uint64_t value_va = entry.length + 2 + kPageSize <= config_.io_buf_bytes
                                  ? reply_va + kPageSize
                                  : reply_va + header_len;
    const uint64_t reply_start = value_va - header_len;
    io.Write(reply_start, header, static_cast<size_t>(header_len), ctx);
    // (3) value: store -> output buffer. The server never reads the reply
    // buffer, so in Copier mode this is a Lazy Task: the send()'s k-mode
    // tasks absorb it into a direct store -> skb copy and the mediator is
    // aborted afterwards (§4.4, the same pattern as the proxy).
    const bool lazy_reply = io.mode == Mode::kCopier;
    io.Copy(value_va, entry.va, entry.length, ctx, lazy_reply);
    io.Write(value_va + entry.length, "\r\n", 2, ctx);
    // (4) reply: output buffer -> kernel.
    auto sent = io.Send(sock, reply_start, header_len + entry.length + 2, ctx);
    if (!sent.ok()) {
      return sent.status();
    }
    if (lazy_reply) {
      server_->lib()->abort_range(value_va, entry.length, ctx);
    }
    return true;
  }

  return InvalidArgument("unknown command: " + *cmd_line);
}

std::vector<uint8_t> MiniKv::BuildSet(const std::string& key,
                                      const std::vector<uint8_t>& value) {
  char header[96];
  const int n = std::snprintf(header, sizeof(header), "*3\r\n$3\r\nSET\r\n$%zu\r\n%s\r\n$%zu\r\n",
                              key.size(), key.c_str(), value.size());
  std::vector<uint8_t> out(header, header + n);
  out.insert(out.end(), value.begin(), value.end());
  out.push_back('\r');
  out.push_back('\n');
  return out;
}

std::vector<uint8_t> MiniKv::BuildGet(const std::string& key) {
  char buffer[96];
  const int n = std::snprintf(buffer, sizeof(buffer), "*2\r\n$3\r\nGET\r\n$%zu\r\n%s\r\n",
                              key.size(), key.c_str());
  return std::vector<uint8_t>(buffer, buffer + n);
}

size_t MiniKv::GetReplySize(size_t vlen) {
  char header[32];
  const int n = std::snprintf(header, sizeof(header), "$%zu\r\n", vlen);
  return static_cast<size_t>(n) + vlen + 2;
}

StatusOr<std::vector<uint8_t>> MiniKv::Lookup(const std::string& key) {
  auto it = store_.find(key);
  if (it == store_.end()) {
    return NotFound("no such key");
  }
  // Test-only accessor: settle pending copies first in Copier mode.
  if (server_->io().mode == Mode::kCopier) {
    COPIER_RETURN_IF_ERROR(server_->lib()->csync_all());
  }
  std::vector<uint8_t> value(it->second.length);
  COPIER_RETURN_IF_ERROR(
      server_->proc()->mem().ReadBytes(it->second.va, value.data(), value.size()));
  return value;
}

}  // namespace copier::apps
