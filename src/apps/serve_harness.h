// Production-serving harness (DESIGN.md §13): drives MiniKv (+ MiniProxy)
// under an open-loop loadgen trace, through the full stack — simulated
// sockets, Copier glue, service, engines — with per-request admission control
// and model-based byte verification.
//
// Two drivers over the same request flow:
//   * RunServeVirtual — manual-mode service, everything in virtual time.
//     Deterministic: the same ServeOptions yield an identical ServeResult,
//     record for record, which is what makes tail latencies assertable.
//   * RunServeThreaded — real Copier threads; the (single) caller thread
//     paces arrivals on the host clock and issues all app/socket syscalls,
//     while service threads execute the copy work. Latencies are host-side
//     and not deterministic; correctness checks still are.
//
// Open-loop semantics: requests are issued at their trace arrival times; a
// connection with a request still outstanding delays the next issue but the
// latency is always measured from the *intended* arrival (no coordinated
// omission). Admission decisions happen at request boundaries before any
// bytes are sent, so admitted requests run byte-for-byte as without a policy.
#ifndef COPIER_SRC_APPS_SERVE_HARNESS_H_
#define COPIER_SRC_APPS_SERVE_HARNESS_H_

#include <cstdint>
#include <vector>

#include "src/apps/app_util.h"
#include "src/common/histogram.h"
#include "src/core/config.h"
#include "src/core/engine.h"
#include "src/core/loadgen.h"
#include "src/hw/timing_model.h"

namespace copier::apps {

struct ServeOptions {
  core::CopierConfig config;
  core::ServeWorkload workload;
  // Explicit trace override (replay runs): used instead of
  // BuildServeTrace(workload) when non-empty. Request indices are kept, so a
  // replayed subset regenerates identical request/value bytes.
  std::vector<core::ServeRequest> trace;
  Mode mode = Mode::kCopier;
  const hw::TimingModel* timing = nullptr;  // null = TimingModel::Default()
  // Threaded mode only: service threads and the arrival pacing scale
  // (host nanoseconds per virtual trace cycle).
  size_t threads = 2;
  double ns_per_cycle = 0.05;
};

struct ServeRecord {
  uint64_t index = 0;  // trace index (stable across replays)
  uint32_t conn = 0;
  bool is_get = false;
  bool via_proxy = false;
  bool admitted = false;
  uint32_t defers = 0;  // kDefer verdicts this request saw before settling
  bool throttled = false;
  double latency_us = 0;      // valid when admitted
  // Copy-use window: first copy submit of this request -> last KFUNC retired
  // on its behalf (virtual-time runs only; 0 when no kernel work ran). This is
  // the span the Copier actually held pages/skbs for the request, as opposed
  // to the app-observed latency above.
  double copy_window_us = 0;
  uint64_t reply_hash = 0;    // FNV-1a of the reply bytes (admitted KV requests)
  uint64_t kfuncs_after = 0;  // cumulative engine kfuncs_run after this request
};

struct ServeResult {
  std::vector<ServeRecord> records;  // one per trace request, in trace order
  Histogram latency;                 // admitted requests only, microseconds
  // Copy-use windows (see ServeRecord::copy_window_us); populated only by
  // RunServeVirtual, and only for requests whose service ran KFUNCs.
  Histogram copy_window;
  uint64_t offered = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;  // shed verdicts + deferred-to-abandonment
  uint64_t throttle_verdicts = 0;
  uint64_t defer_verdicts = 0;
  uint64_t churns = 0;
  double span_us = 0;       // first arrival -> last completion
  double achieved_rps = 0;  // admitted completions per second of span
  bool replies_ok = true;   // every admitted KV reply matched the model
  uint64_t store_hash = 0;  // FNV-1a over the final store image (model keys)
  core::Engine::Stats stats;  // service TotalStats() after the run
};

ServeResult RunServeVirtual(const ServeOptions& options);
ServeResult RunServeThreaded(const ServeOptions& options);

// Respaces `requests` at a fixed `gap` starting at `gap` (unloaded replay of
// an admitted subset); all other fields — index, conn, key, sizes — survive.
std::vector<core::ServeRequest> SpreadTrace(const std::vector<core::ServeRequest>& requests,
                                            Cycles gap);

// FNV-1a, the repo's usual image-fingerprint hash.
uint64_t Fnv1a(const void* data, size_t n, uint64_t hash = 1469598103934665603ull);

}  // namespace copier::apps

#endif  // COPIER_SRC_APPS_SERVE_HARNESS_H_
