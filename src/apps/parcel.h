// Parcel — an Android-Parcel-like typed message view over Binder IPC (§5.2).
//
// Writers append typed items (here: length-prefixed strings) into a message
// buffer; the Binder driver copies the message into a kernel transaction
// buffer which is mapped — not copied — into the server. In Copier mode the
// driver-side copy is asynchronous: the descriptor rides at the front of the
// message (shared memory, §5.1.1), and the server-side Parcel _csync()s each
// item before reading it — apps above Parcel need no modification.
#ifndef COPIER_SRC_APPS_PARCEL_H_
#define COPIER_SRC_APPS_PARCEL_H_

#include <string>
#include <vector>

#include "src/apps/app_util.h"
#include "src/core/descriptor.h"
#include "src/simos/binder.h"

namespace copier::apps {

// Client-side writer: builds the message bytes.
class ParcelWriter {
 public:
  void WriteString(const std::string& value);
  const std::vector<uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<uint8_t> bytes_;
};

// Server-side reader over a Binder transaction buffer (host memory mapped
// into the server). In Copier mode each read _csyncs against `descriptor`.
class ParcelReader {
 public:
  static constexpr double kItemCpb = 0.35;  // per-item server processing
  static constexpr Cycles kItemFixed = 110;

  ParcelReader(const uint8_t* data, size_t length, core::Descriptor* descriptor,
               const hw::TimingModel* timing)
      : data_(data), length_(length), descriptor_(descriptor), timing_(timing) {}

  // Window-delivered parcels (fused IPC, DESIGN.md §12): the message landed
  // directly in the server's posted window, so items are read through the
  // server's address space instead of a mapped host pointer.
  ParcelReader(simos::AddressSpace* space, uint64_t va, size_t length,
               core::Descriptor* descriptor, const hw::TimingModel* timing)
      : space_(space), va_(va), length_(length), descriptor_(descriptor), timing_(timing) {}

  // Reads the next string; blocks (csync) until its bytes have landed.
  StatusOr<std::string> ReadString(ExecContext* ctx,
                                   const std::function<void()>& pump = nullptr);
  bool AtEnd() const { return pos_ >= length_; }

 private:
  // Copies message bytes [offset, offset+n) into `out` from whichever backing
  // store this reader views.
  Status Fetch(size_t offset, void* out, size_t n, ExecContext* ctx);

  const uint8_t* data_ = nullptr;
  simos::AddressSpace* space_ = nullptr;  // window mode
  uint64_t va_ = 0;                       // window base (window mode)
  size_t length_ = 0;
  core::Descriptor* descriptor_ = nullptr;  // null in sync mode
  const hw::TimingModel* timing_ = nullptr;
  size_t pos_ = 0;
};

// End-to-end Binder+Parcel transaction helper (the §6.1.2 benchmark shape):
// client sends n strings, server reads them one by one, then replies.
class BinderParcelChannel {
 public:
  // With posted_receive, the server posts a landing window sized to each
  // message before the client transacts, so the payload takes the fused
  // single-hop path (or posted two-step) instead of the buffer bounce.
  BinderParcelChannel(simos::BinderDriver* binder, AppProcess* client, AppProcess* server,
                      bool posted_receive = false);

  // Runs one transaction; returns the server-observed strings. `client_ctx`
  // and `server_ctx` are the two ends' clocks.
  StatusOr<std::vector<std::string>> Call(const std::vector<std::string>& strings,
                                          ExecContext* client_ctx, ExecContext* server_ctx);

 private:
  simos::BinderDriver* binder_;
  AppProcess* client_;
  AppProcess* server_;
  bool posted_receive_;
  uint64_t msg_buf_ = 0;
  size_t msg_buf_bytes_ = 0;
  uint64_t win_buf_ = 0;  // server's landing window (posted mode)
  size_t win_buf_bytes_ = 0;
  core::Descriptor descriptor_;
};

}  // namespace copier::apps

#endif  // COPIER_SRC_APPS_PARCEL_H_
