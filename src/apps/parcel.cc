#include "src/apps/parcel.h"

#include <cstring>

#include "src/common/logging.h"
#include "src/core/linux_glue.h"

namespace copier::apps {

void ParcelWriter::WriteString(const std::string& value) {
  const uint32_t n = static_cast<uint32_t>(value.size());
  const uint8_t* len_bytes = reinterpret_cast<const uint8_t*>(&n);
  bytes_.insert(bytes_.end(), len_bytes, len_bytes + 4);
  bytes_.insert(bytes_.end(), value.begin(), value.end());
}

Status ParcelReader::Fetch(size_t offset, void* out, size_t n, ExecContext* ctx) {
  if (space_ != nullptr) {
    return space_->ReadBytes(va_ + offset, out, n, ctx);
  }
  std::memcpy(out, data_ + offset, n);
  return OkStatus();
}

StatusOr<std::string> ParcelReader::ReadString(ExecContext* ctx,
                                               const std::function<void()>& pump) {
  if (pos_ + 4 > length_) {
    return OutOfRange("parcel exhausted");
  }
  if (descriptor_ != nullptr) {
    ChargeCtx(ctx, timing_->csync_check_cycles);
    COPIER_RETURN_IF_ERROR(core::WaitDescriptor(*descriptor_, pos_, 4, ctx, pump));
  }
  uint32_t n = 0;
  COPIER_RETURN_IF_ERROR(Fetch(pos_, &n, 4, ctx));
  if (pos_ + 4 + n > length_) {
    return InvalidArgument("truncated parcel string");
  }
  if (descriptor_ != nullptr) {
    ChargeCtx(ctx, timing_->csync_check_cycles);
    COPIER_RETURN_IF_ERROR(core::WaitDescriptor(*descriptor_, pos_ + 4, n, ctx, pump));
  }
  std::string value(n, '\0');
  COPIER_RETURN_IF_ERROR(Fetch(pos_ + 4, value.data(), n, ctx));
  pos_ += 4 + n;
  ChargeCtx(ctx, kItemFixed + static_cast<Cycles>(n * kItemCpb));
  return value;
}

BinderParcelChannel::BinderParcelChannel(simos::BinderDriver* binder, AppProcess* client,
                                         AppProcess* server, bool posted_receive)
    : binder_(binder),
      client_(client),
      server_(server),
      posted_receive_(posted_receive),
      descriptor_(simos::BinderDriver::kTxnBufferBytes) {}

StatusOr<std::vector<std::string>> BinderParcelChannel::Call(
    const std::vector<std::string>& strings, ExecContext* client_ctx,
    ExecContext* server_ctx) {
  // Client: marshal into its message buffer.
  ParcelWriter writer;
  for (const std::string& s : strings) {
    writer.WriteString(s);
  }
  const std::vector<uint8_t>& msg = writer.bytes();
  if (msg.size() > msg_buf_bytes_) {
    msg_buf_bytes_ = AlignUp(msg.size(), kPageSize);
    msg_buf_ = client_->Map(msg_buf_bytes_, "parcel-msg", true);
  }
  client_->io().Write(msg_buf_, msg.data(), msg.size(), client_ctx);

  // Driver: copy to the kernel transaction buffer (async in Copier mode; the
  // descriptor logically rides at the front of the message).
  const bool copier_mode = client_->io().mode == Mode::kCopier;
  descriptor_.Reset(msg.size());
  if (posted_receive_) {
    // Server posts its landing window before the client transacts, sized to
    // this message so the posted path always takes it. The descriptor covers
    // the window instead of the driver buffer. A window left behind by an
    // earlier failed call is dropped first.
    if (msg.size() > win_buf_bytes_) {
      win_buf_bytes_ = AlignUp(msg.size(), kPageSize);
      win_buf_ = server_->Map(win_buf_bytes_, "parcel-win", true);
    }
    binder_->ClearReceive();
    COPIER_RETURN_IF_ERROR(binder_->PostReceive(*server_->proc(), win_buf_, msg.size(),
                                                copier_mode ? &descriptor_ : nullptr,
                                                server_ctx));
  }
  auto txn = binder_->Transact(*client_->proc(), msg_buf_, msg.size(), client_ctx,
                               (copier_mode && !posted_receive_) ? &descriptor_ : nullptr);
  if (!txn.ok()) {
    return txn.status();
  }

  // Server: woken after driver bookkeeping; reads items one by one.
  if (server_ctx != nullptr) {
    server_ctx->WaitUntil(CtxNow(client_ctx));
  }
  std::function<void()> pump;
  if (copier_mode && client_->lib() != nullptr) {
    lib::CopierLib* lib = client_->lib();
    // Manual-mode service: serve the client that owns the k-mode queue.
    pump = [lib] { lib->Pump(); };
  }
  ParcelReader reader =
      txn->in_window
          ? ParcelReader(&txn->window_proc->mem(), txn->window_va, txn->length,
                         copier_mode ? &descriptor_ : nullptr, &client_->io().timing())
          : ParcelReader(txn->data, txn->length, copier_mode ? &descriptor_ : nullptr,
                         &client_->io().timing());
  std::vector<std::string> result;
  while (!reader.AtEnd()) {
    auto item = reader.ReadString(server_ctx, pump);
    if (!item.ok()) {
      binder_->Release(txn->id);
      return item.status();
    }
    result.push_back(std::move(*item));
  }
  auto reply = binder_->Reply(*server_->proc(), server_ctx);
  if (!reply.ok()) {
    binder_->Release(txn->id);
    return reply;
  }
  if (client_ctx != nullptr && server_ctx != nullptr) {
    client_ctx->WaitUntil(server_ctx->now());  // reply delivery
  }
  binder_->Release(txn->id);
  return result;
}

}  // namespace copier::apps
