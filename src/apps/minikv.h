// MiniKV — a Redis-like key-value server over the simulated socket stack
// (§6.2.1). Speaks a RESP-like protocol and reproduces the five copies the
// paper optimizes in Redis:
//   (1) request: kernel -> I/O buffer (recv),
//   (2) SET: value from I/O buffer -> store entry,
//   (3) GET: value from store entry -> output buffer,
//   (4) reply: output buffer -> kernel (send),
//   (5) internal: key bytes -> lookup scratch during parsing.
//
// Requests:  *3\r\n$3\r\nSET\r\n$<klen>\r\n<key>\r\n$<vlen>\r\n<value>\r\n
//            *2\r\n$3\r\nGET\r\n$<klen>\r\n<key>\r\n
// Replies:   +OK\r\n | $<vlen>\r\n<value>\r\n | $-1\r\n
//
// The server parses real bytes (csync-gated in Copier mode per the §5.1.1
// guidelines) and charges modeled cycles for parse/hash/dispatch compute.
#ifndef COPIER_SRC_APPS_MINIKV_H_
#define COPIER_SRC_APPS_MINIKV_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/apps/app_util.h"
#include "src/core/descriptor.h"

namespace copier::apps {

class MiniKv {
 public:
  struct Config {
    size_t io_buf_bytes = 1 * kMiB;
    size_t reply_buffers = 16;  // rotation depth for in-flight async replies
  };

  // Compute cost constants (cycles/byte), calibrated to Redis's profile.
  static constexpr double kParseCpb = 1.6;
  static constexpr double kHashCpb = 2.0;
  static constexpr Cycles kDispatchFixed = 350;

  explicit MiniKv(AppProcess* server) : MiniKv(server, Config{}) {}
  MiniKv(AppProcess* server, Config config);

  // Serves one request pending on `sock`; returns false when idle.
  StatusOr<bool> ProcessOne(simos::SimSocket* sock, ExecContext* ctx);

  // --- client-side helpers (plain byte building, no server state) ---
  static std::vector<uint8_t> BuildSet(const std::string& key,
                                       const std::vector<uint8_t>& value);
  static std::vector<uint8_t> BuildGet(const std::string& key);
  // Reply length for a GET returning vlen bytes (for client recv sizing).
  static size_t GetReplySize(size_t vlen);

  uint64_t sets() const { return sets_; }
  uint64_t gets() const { return gets_; }
  uint64_t hits() const { return hits_; }

  // Store introspection (tests).
  StatusOr<std::vector<uint8_t>> Lookup(const std::string& key);

 private:
  struct Entry {
    uint64_t va = 0;
    size_t capacity = 0;
    size_t length = 0;
  };

  // Cursor-based parser reading through the mode-appropriate sync.
  struct Cursor {
    MiniKv* kv;
    uint64_t base;
    size_t available;
    size_t pos = 0;
    ExecContext* ctx;
    std::vector<uint8_t> window;  // synced header bytes fetched so far

    // Reads a "\r\n"-terminated ASCII line (max 32 chars) starting at pos.
    StatusOr<std::string> ReadLine();
    void Skip(size_t n) { pos += n; }
  };

  Entry& EntryFor(const std::string& key, size_t needed);

  AppProcess* server_;
  Config config_;
  uint64_t io_buf_;
  std::vector<uint64_t> reply_bufs_;
  size_t reply_cursor_ = 0;
  core::Descriptor io_descriptor_;
  std::unordered_map<std::string, Entry> store_;
  uint64_t sets_ = 0;
  uint64_t gets_ = 0;
  uint64_t hits_ = 0;
};

}  // namespace copier::apps

#endif  // COPIER_SRC_APPS_MINIKV_H_
