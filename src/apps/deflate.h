// Deflate — a zlib-like LZ77 compressor with a sliding window (§6.2.3).
//
// Real hash-chain match search over a 32 KiB window, emitting (distance,
// length) matches and literals. The window *slide* — zlib's memcpy of the
// upper half of the window to the lower half — is the copy Copier overlaps
// with pattern matching (Fig. 13 "zlib" / Fig. 2 "zlib" rows): in Copier mode
// the slide is an amemmove and matching on fresh input proceeds while it
// lands; reads that reach into the slid region csync first.
#ifndef COPIER_SRC_APPS_DEFLATE_H_
#define COPIER_SRC_APPS_DEFLATE_H_

#include <vector>

#include "src/apps/app_util.h"

namespace copier::apps {

class Deflate {
 public:
  static constexpr size_t kWindowSize = 32 * kKiB;  // zlib window
  static constexpr size_t kMinMatch = 4;
  static constexpr size_t kMaxMatch = 258;
  static constexpr double kMatchCpb = 4.5;  // hash+chain-walk cost per input byte

  explicit Deflate(AppProcess* app);

  // Compresses `input` (deflate_fast-style greedy matching). Returns the
  // compressed token stream (for ratio/correctness checks).
  std::vector<uint8_t> Compress(const std::vector<uint8_t>& input, ExecContext* ctx);

  // Decompresses a token stream produced by Compress (correctness check).
  static std::vector<uint8_t> Decompress(const std::vector<uint8_t>& compressed);

  uint64_t window_slides() const { return window_slides_; }

 private:
  AppProcess* app_;
  uint64_t window_va_;  // kWindowSize*2 bytes: matching operates in [0, 2W)
  std::vector<int32_t> head_;
  std::vector<int32_t> chain_;
  uint64_t window_slides_ = 0;
};

}  // namespace copier::apps

#endif  // COPIER_SRC_APPS_DEFLATE_H_
