// libCopier — the client library (§5.1.1, Table 2).
//
// High-level APIs mirror the paper exactly:
//   amemcpy(dst, src, n)        — asynchronous memcpy on the default queues;
//   amemmove(dst, src, n)       — overlap-safe (split into two tasks, the one
//                                 whose source will be overwritten first);
//   csync(addr, n)              — ensure prior async copies of [addr, addr+n)
//                                 finished: descriptor fast path, Sync Task +
//                                 wait on the slow path;
//   csync_all()                 — ensure all async copies and FUNCs finish.
//
// Low-level APIs (_amemcpy/_csync) expose customized descriptor management,
// lazy tasks, UFUNC handlers, and per-thread queues (multi-queue, fd-based).
//
// The library maintains a descriptor pool (pre-allocated size classes) and a
// registry mapping destination ranges to active descriptors for csync lookup.
// Addresses are simulated user VAs in the owning process's address space.
#ifndef COPIER_SRC_LIBCOPIER_LIBCOPIER_H_
#define COPIER_SRC_LIBCOPIER_LIBCOPIER_H_

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/exec_context.h"
#include "src/common/status.h"
#include "src/core/descriptor.h"
#include "src/core/linux_glue.h"
#include "src/core/service.h"

namespace copier::lib {

// Pre-allocated descriptors bucketed by capacity (§5.1.1: "libCopier
// maintains a descriptor pool and pre-allocates descriptors with different
// sizes").
class DescriptorPool {
 public:
  explicit DescriptorPool(size_t segment_size = core::kDefaultSegmentSize);

  // Fetches a descriptor covering `length` bytes (reset and ready to use).
  core::Descriptor* Acquire(size_t length);
  void Release(core::Descriptor* descriptor);

  size_t segment_size() const { return segment_size_; }

 private:
  size_t segment_size_;
  std::mutex mu_;
  // free_[k] holds descriptors with capacity 2^k segments.
  std::vector<std::vector<core::Descriptor*>> free_;
  std::vector<std::unique_ptr<core::Descriptor>> all_;
};

struct AmemcpyOptions {
  core::Descriptor* descriptor = nullptr;  // custom descriptor (reuse, §5.1.1)
  size_t descriptor_offset = 0;
  int fd = 0;                              // queue pair (0 = default; per-thread otherwise)
  bool lazy = false;                       // Lazy Copy Task (§4.4)
  std::function<void(Cycles)> ufunc;       // post-copy handler run by post_handlers()
};

// One entry of a vectored submission (copier_submitv): an independent
// dst/src/length copy in the caller's address space.
struct CopyVecEntry {
  uint64_t dst = 0;
  uint64_t src = 0;
  size_t length = 0;
};

class CopierLib {
 public:
  // Binds the library to an attached client. In manual-mode services csync
  // pumps the service inline; in threaded mode it spins on the descriptor.
  CopierLib(core::Client* client, core::CopierService* service);
  ~CopierLib();

  CopierLib(const CopierLib&) = delete;
  CopierLib& operator=(const CopierLib&) = delete;

  // --- high-level (Table 2) ---

  // Asynchronous copy; falls back to synchronous copy when the ring is full
  // (§4.6). `ctx` is the calling thread's clock (nullable).
  void amemcpy(uint64_t dst, uint64_t src, size_t n, ExecContext* ctx = nullptr);
  void amemmove(uint64_t dst, uint64_t src, size_t n, ExecContext* ctx = nullptr);

  Status csync(uint64_t addr, size_t n, ExecContext* ctx = nullptr);
  Status csync_all(ExecContext* ctx = nullptr);

  // Binds a descriptor to a shared-memory range so csync on shm addresses
  // resolves through it (Binder/shm use, §5.1.1). The descriptor covers
  // [shm_base, shm_base + descriptor->length()).
  void shm_descr_bind(uint64_t shm_base, core::Descriptor* descriptor);

  // --- low-level (Table 2) ---

  // Returns the descriptor tracking the copy (the provided one, or a pooled
  // one registered for csync). Null only if the copy completed synchronously.
  core::Descriptor* _amemcpy(uint64_t dst, uint64_t src, size_t n, const AmemcpyOptions& opts,
                             ExecContext* ctx = nullptr);
  Status _csync(core::Descriptor* descriptor, size_t offset, size_t n,
                ExecContext* ctx = nullptr);

  // Submits an abort Sync Task discarding still-queued copies writing the
  // range (§4.4).
  void abort_range(uint64_t addr, size_t n, ExecContext* ctx = nullptr);

  // copier_submitv(): vectored submission — N independent copies published
  // with ONE ring transaction and ONE doorbell carrying the accumulated
  // length. Each entry gets a pooled descriptor registered for csync. Falls
  // back to per-entry _amemcpy when vectored submission is disabled
  // (ablation) or the batch reservation fails.
  void copier_submitv(const std::vector<CopyVecEntry>& entries, ExecContext* ctx = nullptr,
                      int fd = 0);

  // copier_create_queue(): per-thread queue pair; returns its fd.
  int create_queue();

  // Runs queued UFUNC handler tasks (§4.1 post_handlers()).
  size_t post_handlers(ExecContext* ctx = nullptr);

  // Drives the service for this client inline (manual-mode pump); wakes the
  // Copier threads in threaded mode.
  void Pump();

  core::Client* client() { return client_; }
  DescriptorPool& pool() { return pool_; }

 private:
  struct ActiveCopy {
    uint64_t dst = 0;
    size_t length = 0;
    core::Descriptor* descriptor = nullptr;
    size_t descriptor_offset = 0;
    bool pooled = false;   // descriptor owned by pool_ (release when finished)
    bool shm_bound = false;
  };

  // Submits one Copy Task; returns false if the ring was full (caller falls
  // back to synchronous copy).
  bool SubmitTask(uint64_t dst, uint64_t src, size_t n, core::Descriptor* descriptor,
                  size_t descriptor_offset, const AmemcpyOptions& opts, ExecContext* ctx);
  void SyncFallbackCopy(uint64_t dst, uint64_t src, size_t n, ExecContext* ctx);
  Status WaitRange(core::Descriptor* descriptor, size_t offset, size_t n, ExecContext* ctx);
  // Finds the newest active copy covering `addr`; null if none.
  ActiveCopy* FindActive(uint64_t addr);
  void ReleaseFinished();

  core::Client* client_;
  core::CopierService* service_;
  const hw::TimingModel* timing_;
  DescriptorPool pool_;

  std::mutex mu_;
  std::vector<ActiveCopy> active_;
};

}  // namespace copier::lib

#endif  // COPIER_SRC_LIBCOPIER_LIBCOPIER_H_
