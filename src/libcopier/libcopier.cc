#include "src/libcopier/libcopier.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/hw/copy_unit.h"

namespace copier::lib {

// ---------------------------------------------------------------------------
// DescriptorPool
// ---------------------------------------------------------------------------

namespace {

// Size classes: 2^0 .. 2^12 segments (up to 16 MiB at 4 KiB segments).
constexpr size_t kSizeClasses = 13;
constexpr size_t kPreallocPerClass = 8;

size_t ClassFor(size_t segments) {
  size_t k = 0;
  while ((size_t{1} << k) < segments && k + 1 < kSizeClasses) {
    ++k;
  }
  return k;
}

}  // namespace

DescriptorPool::DescriptorPool(size_t segment_size) : segment_size_(segment_size) {
  free_.resize(kSizeClasses);
  // Pre-allocate the small classes (most copies are < 64 KiB; §2.2).
  for (size_t k = 0; k < 6; ++k) {
    for (size_t i = 0; i < kPreallocPerClass; ++i) {
      all_.push_back(
          std::make_unique<core::Descriptor>((size_t{1} << k) * segment_size_, segment_size_));
      free_[k].push_back(all_.back().get());
    }
  }
}

core::Descriptor* DescriptorPool::Acquire(size_t length) {
  const size_t segments = std::max<size_t>(1, (length + segment_size_ - 1) / segment_size_);
  const size_t k = ClassFor(segments);
  std::lock_guard<std::mutex> lock(mu_);
  if (!free_[k].empty()) {
    core::Descriptor* descriptor = free_[k].back();
    free_[k].pop_back();
    descriptor->Reset(length);
    return descriptor;
  }
  all_.push_back(
      std::make_unique<core::Descriptor>((size_t{1} << k) * segment_size_, segment_size_));
  core::Descriptor* descriptor = all_.back().get();
  descriptor->Reset(length);
  return descriptor;
}

void DescriptorPool::Release(core::Descriptor* descriptor) {
  // Capacity class from the descriptor's segment capacity at construction:
  // length may have been Reset smaller, so recompute conservatively.
  const size_t k = ClassFor(std::max<size_t>(1, descriptor->num_segments()));
  std::lock_guard<std::mutex> lock(mu_);
  free_[k].push_back(descriptor);
}

// ---------------------------------------------------------------------------
// CopierLib
// ---------------------------------------------------------------------------

CopierLib::CopierLib(core::Client* client, core::CopierService* service)
    : client_(client),
      service_(service),
      timing_(&service->timing()),
      pool_(service->config().default_segment_size) {}

CopierLib::~CopierLib() = default;

void CopierLib::SyncFallbackCopy(uint64_t dst, uint64_t src, size_t n, ExecContext* ctx) {
  // Queue full: plain userspace memcpy (AVX), as sync copy would have done.
  // A direct copy is a synchronous program point: it reads `src` (which may
  // be produced by pending copies) and writes `dst`/overwrites data pending
  // tasks may still read — quiesce first (§5.1.1 guidelines applied to the
  // library's own direct access).
  COPIER_CHECK_OK(csync_all(ctx));
  simos::AddressSpace* space = client_->space();
  COPIER_CHECK(space != nullptr);
  std::vector<uint8_t> buffer(n);
  COPIER_CHECK_OK(space->ReadBytes(src, buffer.data(), n, ctx));
  COPIER_CHECK_OK(space->WriteBytes(dst, buffer.data(), n, ctx));
  ChargeCtx(ctx, timing_->CpuCopyCycles(hw::CopyUnitKind::kAvx, n));
}

bool CopierLib::SubmitTask(uint64_t dst, uint64_t src, size_t n, core::Descriptor* descriptor,
                           size_t descriptor_offset, const AmemcpyOptions& opts,
                           ExecContext* ctx) {
  simos::AddressSpace* space = client_->space();
  COPIER_CHECK(space != nullptr) << "CopierLib requires a process-backed client";
  core::CopyQueueEntry entry;
  entry.kind = core::CopyQueueEntry::Kind::kCopy;
  core::CopyTask& task = entry.task;
  task.dst = core::MemRef::User(space, dst);
  task.src = core::MemRef::User(space, src);
  task.length = n;
  task.descriptor = descriptor;
  task.descriptor_offset = descriptor_offset;
  task.type = opts.lazy ? core::TaskType::kLazy : core::TaskType::kNormal;
  task.submit_time = CtxNow(ctx);
  task.gseq = service_->AllocateGlobalSeq();
  if (opts.ufunc) {
    task.handler = core::PostHandler::UserFunc(opts.ufunc);
  }
  ChargeCtx(ctx, timing_->task_submit_cycles);
  const uint64_t gseq = task.gseq;
  if (!client_->pair(opts.fd).user.copy_q.TryPush(std::move(entry))) {
    // The task dies here (caller falls back to a synchronous copy); its
    // stamped sequence must not stay outstanding.
    service_->RetireGlobalSeq(gseq);
    return false;
  }
  service_->NotifyRunnable(*client_, n);
  return true;
}

core::Descriptor* CopierLib::_amemcpy(uint64_t dst, uint64_t src, size_t n,
                                      const AmemcpyOptions& opts, ExecContext* ctx) {
  if (n == 0) {
    return opts.descriptor;
  }
  core::Descriptor* descriptor = opts.descriptor;
  const bool pooled = descriptor == nullptr;
  size_t descriptor_offset = opts.descriptor_offset;
  if (pooled) {
    descriptor = pool_.Acquire(n);
    descriptor_offset = 0;
  }
  if (!SubmitTask(dst, src, n, descriptor, descriptor_offset, opts, ctx)) {
    SyncFallbackCopy(dst, src, n, ctx);
    descriptor->MarkRange(descriptor_offset, n, CtxNow(ctx));
    if (opts.ufunc) {
      opts.ufunc(CtxNow(ctx));
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    active_.push_back(ActiveCopy{dst, n, descriptor, descriptor_offset, pooled, false});
  }
  return descriptor;
}

void CopierLib::amemcpy(uint64_t dst, uint64_t src, size_t n, ExecContext* ctx) {
  _amemcpy(dst, src, n, AmemcpyOptions{}, ctx);
}

void CopierLib::amemmove(uint64_t dst, uint64_t src, size_t n, ExecContext* ctx) {
  if (n == 0 || dst == src) {
    return;
  }
  if (!RangesOverlap(dst, n, src, n)) {
    amemcpy(dst, src, n, ctx);
    return;
  }
  // Overlapping move (footnote 3, §4.1): split into displacement-sized tasks
  // submitted in the safe direction — each task's source is read by an
  // *earlier-submitted* task before this task overwrites it, and the engine's
  // WAR dependency tracking preserves that order even under promotion. No
  // individual task self-overlaps (chunk length == displacement).
  const uint64_t d = dst > src ? dst - src : src - dst;
  if (d < kPageSize) {
    // Tiny displacement would explode into n/d tasks: synchronous memmove.
    // Direct access — quiesce pending copies first (see SyncFallbackCopy).
    COPIER_CHECK_OK(csync_all(ctx));
    simos::AddressSpace* space = client_->space();
    std::vector<uint8_t> buffer(n);
    COPIER_CHECK_OK(space->ReadBytes(src, buffer.data(), n, ctx));
    COPIER_CHECK_OK(space->WriteBytes(dst, buffer.data(), n, ctx));
    ChargeCtx(ctx, timing_->CpuCopyCycles(hw::CopyUnitKind::kAvx, n));
    return;
  }
  if (dst > src) {
    // Forward move: copy from the tail downward.
    size_t remaining = n;
    while (remaining > 0) {
      const size_t chunk = std::min<size_t>(d, remaining);
      remaining -= chunk;
      amemcpy(dst + remaining, src + remaining, chunk, ctx);
    }
  } else {
    // Backward move: copy from the head upward.
    for (size_t x = 0; x < n;) {
      const size_t chunk = std::min<size_t>(d, n - x);
      amemcpy(dst + x, src + x, chunk, ctx);
      x += chunk;
    }
  }
}

void CopierLib::copier_submitv(const std::vector<CopyVecEntry>& entries, ExecContext* ctx,
                               int fd) {
  size_t count = 0;
  size_t total = 0;
  for (const CopyVecEntry& e : entries) {
    if (e.length > 0) {
      ++count;
      total += e.length;
    }
  }
  if (count == 0) {
    return;
  }
  auto per_entry = [&] {
    AmemcpyOptions opts;
    opts.fd = fd;
    for (const CopyVecEntry& e : entries) {
      if (e.length > 0) {
        _amemcpy(e.dst, e.src, e.length, opts, ctx);
      }
    }
  };
  if (!service_->config().enable_vectored_submit) {
    per_entry();  // ablation baseline: one task, one doorbell per entry
    return;
  }
  simos::AddressSpace* space = client_->space();
  COPIER_CHECK(space != nullptr) << "CopierLib requires a process-backed client";

  // One ring transaction for the whole vector: reserve N contiguous slots,
  // fill them, publish with a single release (§4.2.1 order is the slot
  // order). Each entry stays an independent Copy Task with its own pooled
  // descriptor so csync per destination range still works.
  MpscRingBuffer<core::CopyQueueEntry>::Batch batch;
  if (!client_->pair(fd).user.copy_q.TryReserveBatch(count, &batch)) {
    per_entry();  // ring too full for the batch: degrade, don't drop
    return;
  }
  std::vector<ActiveCopy> registered;
  registered.reserve(count);
  size_t slot = 0;
  for (const CopyVecEntry& e : entries) {
    if (e.length == 0) {
      continue;
    }
    core::Descriptor* descriptor = pool_.Acquire(e.length);
    core::CopyQueueEntry entry;
    entry.kind = core::CopyQueueEntry::Kind::kCopy;
    core::CopyTask& task = entry.task;
    task.dst = core::MemRef::User(space, e.dst);
    task.src = core::MemRef::User(space, e.src);
    task.length = e.length;
    task.descriptor = descriptor;
    task.descriptor_offset = 0;
    task.submit_time = CtxNow(ctx);
    task.gseq = service_->AllocateGlobalSeq();
    batch[slot++] = std::move(entry);
    registered.push_back(ActiveCopy{e.dst, e.length, descriptor, 0, true, false});
  }
  batch.Commit();
  ChargeCtx(ctx, timing_->task_submitv_base_cycles +
                     count * timing_->task_submitv_per_seg_cycles);
  {
    std::lock_guard<std::mutex> lock(mu_);
    active_.insert(active_.end(), registered.begin(), registered.end());
  }
  service_->NotifyRunnable(*client_, total);
}

CopierLib::ActiveCopy* CopierLib::FindActive(uint64_t addr) {
  for (auto it = active_.rbegin(); it != active_.rend(); ++it) {
    if (addr >= it->dst && addr < it->dst + it->length) {
      return &*it;
    }
  }
  return nullptr;
}

Status CopierLib::WaitRange(core::Descriptor* descriptor, size_t offset, size_t n,
                            ExecContext* ctx) {
  if (descriptor->RangeReady(offset, n)) {
    // Fast path: the segments are already marked — csync costs one bitmap
    // check (§4.6 break-even accounting).
    if (descriptor->failed()) {
      return FaultError("descriptor failed");
    }
    if (ctx != nullptr) {
      ctx->WaitUntil(descriptor->ReadyTime(offset, n));
    }
    return OkStatus();
  }
  // Slow path: submit a Sync Task (promotes the producing copies and their
  // dependencies, §4.1) and wait.
  core::SyncTask sync;
  sync.kind = core::SyncTask::Kind::kPromote;
  sync.addr = core::MemRef::User(client_->space(), 0);  // filled by caller variants
  // The Sync Task names the *destination* range; reconstruct it from the
  // registry entry that owns this descriptor range.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = active_.rbegin(); it != active_.rend(); ++it) {
      if (it->descriptor == descriptor && offset >= it->descriptor_offset &&
          offset < it->descriptor_offset + it->length) {
        sync.addr = core::MemRef::User(client_->space(),
                                       it->dst + (offset - it->descriptor_offset));
        sync.length = std::min(n, it->length - (offset - it->descriptor_offset));
        break;
      }
    }
  }
  ChargeCtx(ctx, timing_->csync_submit_cycles);
  if (sync.length > 0) {
    client_->default_pair().user.sync_q.TryPush(std::move(sync));
    service_->NotifyRunnable(*client_);
  }
  std::function<void()> pump;
  if (service_->mode() == core::CopierService::Mode::kManual) {
    pump = [this] { service_->Serve(*client_); };
  }
  return core::WaitDescriptor(*descriptor, offset, n, ctx, pump);
}

Status CopierLib::_csync(core::Descriptor* descriptor, size_t offset, size_t n,
                         ExecContext* ctx) {
  ChargeCtx(ctx, timing_->csync_check_cycles);
  return WaitRange(descriptor, offset, n, ctx);
}

Status CopierLib::csync(uint64_t addr, size_t n, ExecContext* ctx) {
  ChargeCtx(ctx, timing_->csync_check_cycles);
  // The range may span several active copies (e.g. a chunked amemmove):
  // collect every (descriptor, range) piece overlapping [addr, addr+n), then
  // wait on each. Newest-registered copies win per byte, but since every
  // writer of a byte must land before csync returns, waiting on all
  // overlapping copies is both sufficient and necessary.
  struct Piece {
    core::Descriptor* descriptor;
    size_t offset;
    size_t length;
  };
  std::vector<Piece> pieces;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const ActiveCopy& copy : active_) {
      if (!RangesOverlap(copy.dst, copy.length, addr, n)) {
        continue;
      }
      const uint64_t start = std::max(copy.dst, addr);
      const uint64_t end = std::min(copy.dst + copy.length, addr + n);
      pieces.push_back(Piece{copy.descriptor, copy.descriptor_offset + (start - copy.dst),
                             static_cast<size_t>(end - start)});
    }
  }
  if (pieces.empty()) {
    return OkStatus();  // no async copy covers this range: nothing to sync
  }
  Status first_error;
  for (const Piece& piece : pieces) {
    const Status status = WaitRange(piece.descriptor, piece.offset, piece.length, ctx);
    if (!status.ok() && first_error.ok()) {
      first_error = status;
    }
  }
  ReleaseFinished();
  return first_error;
}

Status CopierLib::csync_all(ExecContext* ctx) {
  // Snapshot under the lock, wait outside it. shm bindings are address
  // aliases for csync(addr) lookup, not copy records: only the ranges the
  // kernel actually reported into them are ever marked, so waiting on the
  // whole binding would block forever. They are skipped here; the copies
  // *into* bound buffers are k-mode tasks the engine drains on its own.
  std::vector<ActiveCopy> copies;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const ActiveCopy& copy : active_) {
      if (!copy.shm_bound) {
        copies.push_back(copy);
      }
    }
  }
  Status first_error;
  for (const ActiveCopy& copy : copies) {
    const Status status =
        WaitRange(copy.descriptor, copy.descriptor_offset, copy.length, ctx);
    if (!status.ok() && first_error.ok()) {
      first_error = status;
    }
  }
  post_handlers(ctx);
  ReleaseFinished();
  return first_error;
}

void CopierLib::shm_descr_bind(uint64_t shm_base, core::Descriptor* descriptor) {
  std::lock_guard<std::mutex> lock(mu_);
  active_.push_back(
      ActiveCopy{shm_base, descriptor->length(), descriptor, 0, false, true});
}

void CopierLib::abort_range(uint64_t addr, size_t n, ExecContext* ctx) {
  core::SyncTask sync;
  sync.kind = core::SyncTask::Kind::kAbort;
  sync.addr = core::MemRef::User(client_->space(), addr);
  sync.length = n;
  ChargeCtx(ctx, timing_->csync_submit_cycles);
  client_->default_pair().user.sync_q.TryPush(std::move(sync));
  if (service_->mode() == core::CopierService::Mode::kThreaded) {
    service_->NotifyRunnable(*client_);
  } else {
    service_->Serve(*client_);
  }
}

int CopierLib::create_queue() { return client_->CreateQueuePair(); }

void CopierLib::Pump() {
  if (service_->mode() == core::CopierService::Mode::kManual) {
    service_->Serve(*client_);
  } else {
    service_->NotifyRunnable(*client_);
  }
}

size_t CopierLib::post_handlers(ExecContext* ctx) {
  size_t ran = 0;
  for (size_t i = 0; i < client_->pair_count(); ++i) {
    auto& queue = client_->pair(static_cast<int>(i)).user.handler_q;
    while (auto handler = queue.TryPop()) {
      if (ctx != nullptr) {
        ctx->WaitUntil(handler->ready_time);
      }
      ChargeCtx(ctx, timing_->handler_dispatch_cycles);
      handler->fn(CtxNow(ctx));
      ++ran;
    }
  }
  return ran;
}

void CopierLib::ReleaseFinished() {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(active_, [this](const ActiveCopy& copy) {
    if (copy.shm_bound) {
      return false;  // shm bindings persist until rebound
    }
    if (!copy.descriptor->RangeReady(copy.descriptor_offset, copy.length)) {
      return false;
    }
    if (copy.pooled) {
      pool_.Release(copy.descriptor);
    }
    return true;
  });
}

}  // namespace copier::lib
