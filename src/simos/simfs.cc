#include "src/simos/simfs.h"

#include <cstring>

namespace copier::simos {

void SimFs::CreateFile(const std::string& name, const std::vector<uint8_t>& bytes) {
  File file;
  file.size = bytes.size();
  file.cache = std::make_unique<uint8_t[]>(AlignUp(bytes.size(), kPageSize));
  std::memcpy(file.cache.get(), bytes.data(), bytes.size());
  files_[name] = std::move(file);
}

StatusOr<int> SimFs::Open(const std::string& name) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return NotFound("no such file: " + name);
  }
  open_files_.push_back(OpenFile{&it->second, 0});
  return static_cast<int>(open_files_.size() - 1);
}

Status SimFs::Seek(int fd, size_t offset) {
  if (fd < 0 || static_cast<size_t>(fd) >= open_files_.size()) {
    return InvalidArgument("bad fd");
  }
  open_files_[static_cast<size_t>(fd)].offset = offset;
  return OkStatus();
}

StatusOr<size_t> SimFs::Read(Process& proc, int fd, uint64_t va, size_t length,
                             ExecContext* ctx, void* descriptor) {
  if (fd < 0 || static_cast<size_t>(fd) >= open_files_.size()) {
    return InvalidArgument("bad fd");
  }
  OpenFile& of = open_files_[static_cast<size_t>(fd)];
  if (of.offset >= of.file->size) {
    return size_t{0};  // EOF
  }
  const size_t take = std::min(length, of.file->size - of.offset);

  kernel_->TrapEnter(proc, ctx);
  // VFS + page-cache lookup costs, then the kernel->user copy through the
  // backend (asynchronous k-mode task under Copier-Linux, §5.2/§7).
  ChargeCtx(ctx, 400 + 30 * static_cast<Cycles>(PagesSpanned(of.offset, take)));
  UserCopyOp op;
  op.proc = &proc;
  op.user_va = va;
  op.kernel_buf = of.file->cache.get() + of.offset;
  op.length = take;
  op.to_user = true;
  op.descriptor = descriptor;
  op.descriptor_offset = 0;
  op.ctx = ctx;
  const Status status = kernel_->copy_backend()->Copy(op);
  kernel_->TrapExit(proc, ctx);
  if (!status.ok()) {
    return status;
  }
  of.offset += take;
  return take;
}

size_t SimFs::FileSize(const std::string& name) const {
  auto it = files_.find(name);
  return it == files_.end() ? 0 : it->second.size;
}

}  // namespace copier::simos
