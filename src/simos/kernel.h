// SimKernel — the simulated OS: processes, fork/CoW, the socket stack, and
// the Binder driver, with explicit trap-enter/trap-exit events.
//
// The trap events are load-bearing: Copier's order-dependency tracking
// (§4.2.1) uses syscall trap and return as the indicators that delimit
// k-mode task batches against the u-mode queue. The Copier-Linux glue
// (src/core/linux_glue.h) registers a TrapHooks implementation that submits
// Barrier Tasks on these events.
#ifndef COPIER_SRC_SIMOS_KERNEL_H_
#define COPIER_SRC_SIMOS_KERNEL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/exec_context.h"
#include "src/common/status.h"
#include "src/hw/timing_model.h"
#include "src/simos/copy_backend.h"
#include "src/simos/phys_memory.h"
#include "src/simos/process.h"
#include "src/simos/socket.h"

namespace copier::simos {

class SimKernel {
 public:
  struct Config {
    size_t phys_bytes = 512 * kMiB;
    PhysicalMemory::AllocPolicy alloc_policy = PhysicalMemory::AllocPolicy::kSequential;
    const hw::TimingModel* timing = nullptr;  // defaults to TimingModel::Default()
    size_t skb_pool_size = 4096;
  };

  // Observes privilege-boundary crossings (used for cross-queue barriers).
  class TrapHooks {
   public:
    virtual ~TrapHooks() = default;
    virtual void OnTrapEnter(Process& proc, ExecContext* ctx) {}
    virtual void OnTrapExit(Process& proc, ExecContext* ctx) {}
  };

  SimKernel() : SimKernel(Config{}) {}
  explicit SimKernel(Config config);

  SimKernel(const SimKernel&) = delete;
  SimKernel& operator=(const SimKernel&) = delete;

  // --- Processes -------------------------------------------------------------

  Process* CreateProcess(std::string name);
  StatusOr<Process*> Fork(Process& parent, ExecContext* ctx);

  // --- Sockets ---------------------------------------------------------------

  // Creates a connected stream-socket pair; both endpoints stay owned by the
  // kernel and valid for its lifetime.
  std::pair<SimSocket*, SimSocket*> CreateSocketPair();

  // send(2): copies user data into skbs via the copy backend; the driver
  // delivers each skb to the peer when its copy completes (KFUNC). Returns
  // bytes sent. When the peer has posted a receive window (PostRecv), the
  // transfer routes into the window instead — as ONE fused src→dst task on a
  // fuse-capable backend (skbs are reserved only as flow-control tokens), or
  // as a posted two-step (stage into skbs, drain into the window) otherwise.
  StatusOr<size_t> Send(Process& proc, SimSocket* sock, uint64_t va, size_t length,
                        ExecContext* ctx, const SendOptions& opts = {});

  // recv(2): copies pending skb payload into the user buffer via the backend.
  // Returns bytes received; kUnavailable when no data is queued (EAGAIN);
  // kFailedPrecondition while a window is posted (use CompleteRecv).
  StatusOr<size_t> Recv(Process& proc, SimSocket* sock, uint64_t va, size_t length,
                        ExecContext* ctx, const RecvOptions& opts = {});

  // Posted-receive fast path (fused IPC, DESIGN.md §12): registers
  // [va, va+length) as `sock`'s landing window so subsequent peer sends land
  // directly in it. Skbs already queued are staged-drained into the window
  // immediately (staged-then-fused). Returns the bytes staged. The app csyncs
  // opts.descriptor (which covers the window's byte space) for readiness.
  // On a ring-capable backend (SupportsRecvRing) windows may be posted behind
  // one another; sends fill them in FIFO order and CompleteRecv reaps the
  // front one.
  StatusOr<size_t> PostRecv(Process& proc, SimSocket* sock, uint64_t va, size_t length,
                            ExecContext* ctx, const RecvOptions& opts = {});

  // Multi-window receive ring (DESIGN.md §12): posts all of `windows` behind
  // any already-posted ones in ONE trap — one syscall bracket, per-window
  // ATCache registration, FIFO consumption. Pipelined senders keep landing
  // fused at queue depth > 1 instead of falling back between re-posts.
  // Returns the bytes of already-queued skbs drained into the new windows.
  struct RecvWindowSpec {
    uint64_t va = 0;
    size_t length = 0;
    void* descriptor = nullptr;  // libCopier descriptor covering this window
  };
  StatusOr<size_t> PostRecvRing(Process& proc, SimSocket* sock,
                                const std::vector<RecvWindowSpec>& windows, ExecContext* ctx);

  // Closes the oldest posted window and returns the bytes that landed in it
  // (plus, for forward-posted windows, the bytes forwarded through it).
  StatusOr<size_t> CompleteRecv(Process& proc, SimSocket* sock, ExecContext* ctx);

  // Test hook (kfunc-order differentials): invoked with the skb id from every
  // skb delivery/reclaim KFUNC the socket paths fire, in firing order.
  void SetKfuncProbe(std::function<void(uint32_t)> probe) { kfunc_probe_ = std::move(probe); }

  // --- Traps -------------------------------------------------------------------

  // Explicit bracketing for syscalls implemented outside SimKernel (Binder,
  // custom app syscalls). Charges entry/exit cost and fires hooks.
  void TrapEnter(Process& proc, ExecContext* ctx);
  void TrapExit(Process& proc, ExecContext* ctx);

  // --- Wiring ------------------------------------------------------------------

  void SetCopyBackend(KernelCopyBackend* backend) { backend_ = backend; }
  KernelCopyBackend* copy_backend() { return backend_; }

  void SetTrapHooks(TrapHooks* hooks) { trap_hooks_ = hooks; }

  PhysicalMemory& phys() { return *phys_; }
  SkbPool& skb_pool() { return *skb_pool_; }
  const hw::TimingModel& timing() const { return *timing_; }

 private:
  // Classic two-step send: user → skbs, delivery KFUNC per skb (the
  // pre-posted-window path, verbatim).
  StatusOr<size_t> SendClassic(Process& proc, SimSocket* sock, uint64_t va, size_t length,
                               ExecContext* ctx, const SendOptions& opts);
  // Posted-window send: fused single-hop when the backend supports it,
  // two-step staged through the reserved skb tokens otherwise.
  StatusOr<size_t> SendPosted(Process& proc, SimSocket* peer, PostedWindow* win, uint64_t va,
                              size_t length, ExecContext* ctx, const SendOptions& opts);
  // Proxy-transparent forwarding (DESIGN.md §12): a complete message landing
  // on an empty forward-posted window is rewritten in the kernel and
  // dispatched as one src→destination-window fused task; the payload never
  // touches the proxy's address space. Sets *handled=false (and returns 0)
  // when the rule declines or the dispatch cannot proceed — the caller lands
  // the bytes in the window via the normal posted path.
  StatusOr<size_t> SendForward(Process& proc, SimSocket* peer, PostedWindow* win, uint64_t va,
                               size_t length, ExecContext* ctx, bool* handled);
  // Drains `sock`'s queued skbs into its posted window (classic scatter ops
  // with reclaim KFUNCs, descriptor offsets at win->filled). `submit_proc` is
  // the syscall's process: the receiver for PostRecv, the sender when a send
  // finds staged bytes ahead of it in the stream.
  Status DrainRxIntoWindow(Process& submit_proc, SimSocket* sock, PostedWindow* win,
                           ExecContext* ctx);
  // Ring-aware drain: fills posted windows in FIFO order until the queue or
  // the ring's room is exhausted.
  Status DrainRxIntoRing(Process& submit_proc, SimSocket* sock, ExecContext* ctx);

  const hw::TimingModel* timing_;
  std::unique_ptr<PhysicalMemory> phys_;
  std::unique_ptr<SkbPool> skb_pool_;
  std::unique_ptr<SyncErmsBackend> default_backend_;
  KernelCopyBackend* backend_ = nullptr;
  TrapHooks* trap_hooks_ = nullptr;

  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<std::unique_ptr<SimSocket>> sockets_;
  uint32_t next_pid_ = 1;
  std::function<void(uint32_t)> kfunc_probe_;
};

}  // namespace copier::simos

#endif  // COPIER_SRC_SIMOS_KERNEL_H_
