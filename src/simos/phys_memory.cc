#include "src/simos/phys_memory.h"

#include <algorithm>
#include <cstring>

#include "src/common/logging.h"

namespace copier::simos {

PhysicalMemory::PhysicalMemory(size_t bytes, AllocPolicy policy, uint64_t seed)
    : total_frames_(AlignUp(bytes, kPageSize) >> kPageShift),
      policy_(policy),
      rng_(seed) {
  // Frames are zero-filled at fault time; the slab itself need not be.
  slab_ = std::make_unique_for_overwrite<uint8_t[]>(total_frames_ << kPageShift);
  refcount_.assign(total_frames_, 0);
  free_list_.reserve(total_frames_);
  // Push descending so sequential pops ascend.
  for (size_t i = total_frames_; i > 0; --i) {
    free_list_.push_back(i - 1);
  }
}

StatusOr<Pfn> PhysicalMemory::AllocFrame() {
  if (free_list_.empty()) {
    return ResourceExhausted("out of physical frames");
  }
  size_t index = free_list_.size() - 1;
  if (policy_ == AllocPolicy::kFragmented) {
    index = rng_.Below(free_list_.size());
    std::swap(free_list_[index], free_list_.back());
  }
  const Pfn pfn = free_list_.back();
  free_list_.pop_back();
  refcount_[pfn] = 1;
  return pfn;
}

StatusOr<Pfn> PhysicalMemory::AllocContiguous(size_t count) {
  if (count == 0) {
    return InvalidArgument("zero-frame contiguous allocation");
  }
  if (count == 1) {
    return AllocFrame();
  }
  // Sort a copy of the free list and scan for a run. This is O(n log n) but
  // only used for skb pools and huge pages, both allocated rarely.
  std::vector<Pfn> sorted = free_list_;
  std::sort(sorted.begin(), sorted.end());
  size_t run_start = 0;
  for (size_t i = 1; i <= sorted.size(); ++i) {
    if (i == sorted.size() || sorted[i] != sorted[i - 1] + 1) {
      if (i - run_start >= count) {
        const Pfn base = sorted[run_start];
        // Remove [base, base+count) from the real free list.
        auto new_end = std::remove_if(free_list_.begin(), free_list_.end(), [&](Pfn p) {
          return p >= base && p < base + count;
        });
        free_list_.erase(new_end, free_list_.end());
        for (size_t f = 0; f < count; ++f) {
          refcount_[base + f] = 1;
        }
        return base;
      }
      run_start = i;
    }
  }
  return ResourceExhausted("no contiguous run of requested length");
}

void PhysicalMemory::FreeFrame(Pfn pfn) {
  COPIER_DCHECK(pfn < total_frames_);
  COPIER_DCHECK(refcount_[pfn] > 0) << "double free of frame " << pfn;
  refcount_[pfn] = 0;
  free_list_.push_back(pfn);
}

void PhysicalMemory::Unref(Pfn pfn) {
  COPIER_DCHECK(pfn < total_frames_);
  COPIER_DCHECK(refcount_[pfn] > 0);
  if (--refcount_[pfn] == 0) {
    free_list_.push_back(pfn);
  }
}

}  // namespace copier::simos
