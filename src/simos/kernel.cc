#include "src/simos/kernel.h"

#include <algorithm>

#include "src/common/logging.h"

namespace copier::simos {

SimKernel::SimKernel(Config config)
    : timing_(config.timing != nullptr ? config.timing : &hw::TimingModel::Default()) {
  phys_ = std::make_unique<PhysicalMemory>(config.phys_bytes, config.alloc_policy);
  skb_pool_ = std::make_unique<SkbPool>(config.skb_pool_size, timing_);
  default_backend_ = std::make_unique<SyncErmsBackend>(timing_);
  backend_ = default_backend_.get();
}

Process* SimKernel::CreateProcess(std::string name) {
  const uint32_t pid = next_pid_++;
  auto space = std::make_unique<AddressSpace>(phys_.get(), pid, timing_);
  processes_.push_back(std::make_unique<Process>(pid, std::move(space), std::move(name)));
  return processes_.back().get();
}

StatusOr<Process*> SimKernel::Fork(Process& parent, ExecContext* ctx) {
  TrapEnter(parent, ctx);
  const uint32_t pid = next_pid_++;
  auto child_space_or = parent.mem().ForkCow(pid);
  if (!child_space_or.ok()) {
    TrapExit(parent, ctx);
    return child_space_or.status();
  }
  ChargeCtx(ctx, timing_->fork_base_cycles +
                     timing_->fork_per_page_cycles * parent.mem().resident_pages());
  processes_.push_back(std::make_unique<Process>(pid, std::move(*child_space_or),
                                                 parent.name() + "-child"));
  Process* child = processes_.back().get();
  TrapExit(parent, ctx);
  return child;
}

std::pair<SimSocket*, SimSocket*> SimKernel::CreateSocketPair() {
  sockets_.push_back(std::make_unique<SimSocket>(skb_pool_.get()));
  SimSocket* a = sockets_.back().get();
  sockets_.push_back(std::make_unique<SimSocket>(skb_pool_.get()));
  SimSocket* b = sockets_.back().get();
  a->set_peer(b);
  b->set_peer(a);
  return {a, b};
}

void SimKernel::TrapEnter(Process& proc, ExecContext* ctx) {
  ChargeCtx(ctx, timing_->syscall_entry_cycles);
  if (trap_hooks_ != nullptr) {
    trap_hooks_->OnTrapEnter(proc, ctx);
  }
}

void SimKernel::TrapExit(Process& proc, ExecContext* ctx) {
  if (trap_hooks_ != nullptr) {
    trap_hooks_->OnTrapExit(proc, ctx);
  }
  ChargeCtx(ctx, timing_->syscall_exit_cycles);
}

StatusOr<size_t> SimKernel::Send(Process& proc, SimSocket* sock, uint64_t va, size_t length,
                                 ExecContext* ctx, const SendOptions& opts) {
  if (length == 0) {
    return InvalidArgument("zero-length send");
  }
  TrapEnter(proc, ctx);
  SimSocket* peer = sock->peer();
  SkbPool* pool = sock->pool();
  size_t sent = 0;
  while (sent < length) {
    auto skb_or = pool->Acquire(ctx);
    if (!skb_or.ok()) {
      break;  // Short send: pool exhausted (receiver must drain).
    }
    Skb* skb = *skb_or;
    const size_t take = std::min(kMtu, length - sent);
    skb->length = take;
    // TCP/IP header processing (checksum offloaded: payload untouched, §5.2).
    ChargeCtx(ctx, timing_->tcp_tx_per_packet_cycles);

    UserCopyOp op;
    op.proc = &proc;
    op.user_va = va + sent;
    op.kernel_buf = skb->data;
    op.length = take;
    op.to_user = false;
    op.lazy = opts.lazy;
    op.ctx = ctx;
    // The driver syncs the data right before the NIC TX enqueue — i.e. at
    // copy completion, which delivers the packet (this is the send-side
    // Copy-Use window: socket-layer submit → driver enqueue).
    const Cycles nic_tx = timing_->nic_tx_enqueue_cycles;
    op.on_complete = [peer, skb, nic_tx](Cycles completion_time) {
      skb->delivered_at = completion_time + nic_tx;
      peer->EnqueueRx(skb);
    };
    const Status status = backend_->Copy(op);
    if (!status.ok()) {
      pool->Release(skb);
      TrapExit(proc, ctx);
      return status;
    }
    sent += take;
  }
  TrapExit(proc, ctx);
  if (sent == 0) {
    return ResourceExhausted("skb pool exhausted");
  }
  return sent;
}

StatusOr<size_t> SimKernel::Recv(Process& proc, SimSocket* sock, uint64_t va, size_t length,
                                 ExecContext* ctx, const RecvOptions& opts) {
  if (length == 0) {
    return InvalidArgument("zero-length recv");
  }
  TrapEnter(proc, ctx);
  SkbPool* pool = sock->pool();
  size_t progress = 0;
  size_t packets = 0;
  Status copy_status;
  Cycles latest_delivery = 0;
  const size_t consumed =
      sock->ConsumeRx(length, &latest_delivery, [&](Skb* skb, size_t offset, size_t take) {
        ++packets;
        skb->pending_copies.fetch_add(1, std::memory_order_acq_rel);
        UserCopyOp op;
        op.proc = &proc;
        op.user_va = va + progress;
        op.kernel_buf = skb->data + offset;
        op.length = take;
        op.to_user = true;
        op.descriptor = opts.descriptor;
        op.descriptor_offset = progress;
        op.lazy = opts.lazy;
        op.ctx = ctx;
        op.on_complete = [pool, skb](Cycles) { SimSocket::CompleteCopy(pool, skb); };
        const Status status = backend_->Copy(op);
        if (!status.ok() && copy_status.ok()) {
          copy_status = status;
        }
        progress += take;
      });
  if (consumed > 0 && ctx != nullptr) {
    // Blocking semantics in virtual time: the receiver cannot observe a
    // packet before the sender's NIC delivered it.
    ctx->WaitUntil(latest_delivery);
  }
  ChargeCtx(ctx, timing_->tcp_rx_per_packet_cycles * packets + timing_->socket_status_cycles);
  TrapExit(proc, ctx);
  if (!copy_status.ok()) {
    return copy_status;
  }
  if (consumed == 0) {
    return Unavailable("no data (EAGAIN)");
  }
  return consumed;
}

}  // namespace copier::simos
