#include "src/simos/kernel.h"

#include <algorithm>

#include "src/common/logging.h"

namespace copier::simos {

SimKernel::SimKernel(Config config)
    : timing_(config.timing != nullptr ? config.timing : &hw::TimingModel::Default()) {
  phys_ = std::make_unique<PhysicalMemory>(config.phys_bytes, config.alloc_policy);
  skb_pool_ = std::make_unique<SkbPool>(config.skb_pool_size, timing_);
  default_backend_ = std::make_unique<SyncErmsBackend>(timing_);
  backend_ = default_backend_.get();
}

Process* SimKernel::CreateProcess(std::string name) {
  const uint32_t pid = next_pid_++;
  auto space = std::make_unique<AddressSpace>(phys_.get(), pid, timing_);
  processes_.push_back(std::make_unique<Process>(pid, std::move(space), std::move(name)));
  return processes_.back().get();
}

StatusOr<Process*> SimKernel::Fork(Process& parent, ExecContext* ctx) {
  TrapEnter(parent, ctx);
  const uint32_t pid = next_pid_++;
  auto child_space_or = parent.mem().ForkCow(pid);
  if (!child_space_or.ok()) {
    TrapExit(parent, ctx);
    return child_space_or.status();
  }
  ChargeCtx(ctx, timing_->fork_base_cycles +
                     timing_->fork_per_page_cycles * parent.mem().resident_pages());
  processes_.push_back(std::make_unique<Process>(pid, std::move(*child_space_or),
                                                 parent.name() + "-child"));
  Process* child = processes_.back().get();
  TrapExit(parent, ctx);
  return child;
}

std::pair<SimSocket*, SimSocket*> SimKernel::CreateSocketPair() {
  sockets_.push_back(std::make_unique<SimSocket>(skb_pool_.get()));
  SimSocket* a = sockets_.back().get();
  sockets_.push_back(std::make_unique<SimSocket>(skb_pool_.get()));
  SimSocket* b = sockets_.back().get();
  a->set_peer(b);
  b->set_peer(a);
  return {a, b};
}

void SimKernel::TrapEnter(Process& proc, ExecContext* ctx) {
  ChargeCtx(ctx, timing_->syscall_entry_cycles);
  if (trap_hooks_ != nullptr) {
    trap_hooks_->OnTrapEnter(proc, ctx);
  }
}

void SimKernel::TrapExit(Process& proc, ExecContext* ctx) {
  if (trap_hooks_ != nullptr) {
    trap_hooks_->OnTrapExit(proc, ctx);
  }
  ChargeCtx(ctx, timing_->syscall_exit_cycles);
}

StatusOr<size_t> SimKernel::Send(Process& proc, SimSocket* sock, uint64_t va, size_t length,
                                 ExecContext* ctx, const SendOptions& opts) {
  if (length == 0) {
    return InvalidArgument("zero-length send");
  }
  TrapEnter(proc, ctx);
  SimSocket* peer = sock->peer();
  SkbPool* pool = sock->pool();
  // Gather the syscall's whole skb op-list, then submit it with ONE vectored
  // copy — one ring transaction and one doorbell on the Copier backend, a
  // per-segment loop on synchronous backends.
  UserCopyVecOp vop;
  vop.proc = &proc;
  vop.user_va = va;
  vop.to_user = false;
  vop.lazy = opts.lazy;
  vop.ctx = ctx;
  std::vector<Skb*> acquired;
  size_t sent = 0;
  const Cycles nic_tx = timing_->nic_tx_enqueue_cycles;
  while (sent < length) {
    auto skb_or = pool->Acquire(ctx);
    if (!skb_or.ok()) {
      break;  // Short send: pool exhausted (receiver must drain).
    }
    Skb* skb = *skb_or;
    const size_t take = std::min(kMtu, length - sent);
    skb->length = take;
    // TCP/IP header processing (checksum offloaded: payload untouched, §5.2).
    ChargeCtx(ctx, timing_->tcp_tx_per_packet_cycles);
    // The driver syncs the data right before the NIC TX enqueue — i.e. at
    // segment completion, which delivers the packet (this is the send-side
    // Copy-Use window: socket-layer submit → driver enqueue).
    acquired.push_back(skb);
    vop.segs.push_back(UserCopySeg{skb->data, take, [peer, skb, nic_tx](Cycles when) {
                                     skb->delivered_at = when + nic_tx;
                                     peer->EnqueueRx(skb);
                                   }});
    sent += take;
  }
  if (sent == 0) {
    TrapExit(proc, ctx);
    return ResourceExhausted("skb pool exhausted");
  }
  size_t segs_submitted = 0;
  const Status status = backend_->CopyV(vop, &segs_submitted);
  if (!status.ok()) {
    // Segments past the failure point were never submitted: their skbs still
    // belong to the sender (submitted ones are delivered/reclaimed by their
    // completion handlers).
    for (size_t i = segs_submitted; i < acquired.size(); ++i) {
      pool->Release(acquired[i]);
    }
    TrapExit(proc, ctx);
    return status;
  }
  TrapExit(proc, ctx);
  return sent;
}

StatusOr<size_t> SimKernel::Recv(Process& proc, SimSocket* sock, uint64_t va, size_t length,
                                 ExecContext* ctx, const RecvOptions& opts) {
  if (length == 0) {
    return InvalidArgument("zero-length recv");
  }
  TrapEnter(proc, ctx);
  SkbPool* pool = sock->pool();
  size_t packets = 0;
  Cycles latest_delivery = 0;
  // Gather the consumed skb pieces into one op-list; each piece's completion
  // handler releases its skb once drained.
  UserCopyVecOp vop;
  vop.proc = &proc;
  vop.user_va = va;
  vop.to_user = true;
  vop.descriptor = opts.descriptor;
  vop.descriptor_offset = 0;
  vop.lazy = opts.lazy;
  vop.ctx = ctx;
  std::vector<Skb*> consumed_skbs;
  const size_t consumed =
      sock->ConsumeRx(length, &latest_delivery, [&](Skb* skb, size_t offset, size_t take) {
        ++packets;
        skb->pending_copies.fetch_add(1, std::memory_order_acq_rel);
        consumed_skbs.push_back(skb);
        vop.segs.push_back(UserCopySeg{
            skb->data + offset, take,
            [pool, skb](Cycles) { SimSocket::CompleteCopy(pool, skb); }});
      });
  if (consumed > 0 && ctx != nullptr) {
    // Blocking semantics in virtual time: the receiver cannot observe a
    // packet before the sender's NIC delivered it. Submitting after the wait
    // also keeps the Copy Task's submit time at/after delivery.
    ctx->WaitUntil(latest_delivery);
  }
  ChargeCtx(ctx, timing_->tcp_rx_per_packet_cycles * packets + timing_->socket_status_cycles);
  Status copy_status;
  if (consumed > 0) {
    size_t segs_submitted = 0;
    copy_status = backend_->CopyV(vop, &segs_submitted);
    if (!copy_status.ok()) {
      // Unsubmitted pieces never got their completion handler: balance the
      // pending-copies count so the skbs can return to the pool (the bytes
      // are lost to the caller either way — the error is returned).
      for (size_t i = segs_submitted; i < consumed_skbs.size(); ++i) {
        SimSocket::CompleteCopy(pool, consumed_skbs[i]);
      }
    }
  }
  TrapExit(proc, ctx);
  if (!copy_status.ok()) {
    return copy_status;
  }
  if (consumed == 0) {
    return Unavailable("no data (EAGAIN)");
  }
  return consumed;
}

}  // namespace copier::simos
