#include "src/simos/kernel.h"

#include <algorithm>
#include <cstdint>
#include <optional>

#include "src/common/logging.h"

namespace copier::simos {

SimKernel::SimKernel(Config config)
    : timing_(config.timing != nullptr ? config.timing : &hw::TimingModel::Default()) {
  phys_ = std::make_unique<PhysicalMemory>(config.phys_bytes, config.alloc_policy);
  skb_pool_ = std::make_unique<SkbPool>(config.skb_pool_size, timing_);
  default_backend_ = std::make_unique<SyncErmsBackend>(timing_);
  backend_ = default_backend_.get();
}

Process* SimKernel::CreateProcess(std::string name) {
  const uint32_t pid = next_pid_++;
  auto space = std::make_unique<AddressSpace>(phys_.get(), pid, timing_);
  processes_.push_back(std::make_unique<Process>(pid, std::move(space), std::move(name)));
  return processes_.back().get();
}

StatusOr<Process*> SimKernel::Fork(Process& parent, ExecContext* ctx) {
  TrapEnter(parent, ctx);
  const uint32_t pid = next_pid_++;
  auto child_space_or = parent.mem().ForkCow(pid);
  if (!child_space_or.ok()) {
    TrapExit(parent, ctx);
    return child_space_or.status();
  }
  ChargeCtx(ctx, timing_->fork_base_cycles +
                     timing_->fork_per_page_cycles * parent.mem().resident_pages());
  processes_.push_back(std::make_unique<Process>(pid, std::move(*child_space_or),
                                                 parent.name() + "-child"));
  Process* child = processes_.back().get();
  TrapExit(parent, ctx);
  return child;
}

std::pair<SimSocket*, SimSocket*> SimKernel::CreateSocketPair() {
  sockets_.push_back(std::make_unique<SimSocket>(skb_pool_.get()));
  SimSocket* a = sockets_.back().get();
  sockets_.push_back(std::make_unique<SimSocket>(skb_pool_.get()));
  SimSocket* b = sockets_.back().get();
  a->set_peer(b);
  b->set_peer(a);
  return {a, b};
}

void SimKernel::TrapEnter(Process& proc, ExecContext* ctx) {
  ChargeCtx(ctx, timing_->syscall_entry_cycles);
  if (trap_hooks_ != nullptr) {
    trap_hooks_->OnTrapEnter(proc, ctx);
  }
}

void SimKernel::TrapExit(Process& proc, ExecContext* ctx) {
  if (trap_hooks_ != nullptr) {
    trap_hooks_->OnTrapExit(proc, ctx);
  }
  ChargeCtx(ctx, timing_->syscall_exit_cycles);
}

StatusOr<size_t> SimKernel::Send(Process& proc, SimSocket* sock, uint64_t va, size_t length,
                                 ExecContext* ctx, const SendOptions& opts) {
  if (length == 0) {
    return InvalidArgument("zero-length send");
  }
  TrapEnter(proc, ctx);
  SimSocket* peer = sock->peer();
  const bool fuse_capable = backend_->SupportsFusedIpc();
  StatusOr<size_t> result = 0;
  if (!peer->HasPostedWindow()) {
    if (fuse_capable) {
      backend_->NoteFuseEvent(FuseEvent::kFallbackNotPosted);
    }
    result = SendClassic(proc, sock, va, length, ctx, opts);
  } else {
    // Stream order: skbs already queued at the peer carry bytes sent before
    // this call — drain them into the ring ahead of this payload.
    Status drain_status = OkStatus();
    if (peer->HasData()) {
      drain_status = DrainRxIntoRing(proc, peer, ctx);
    }
    PostedWindow* win = peer->ActiveWindow();
    if (!drain_status.ok()) {
      result = drain_status;
    } else if (win == nullptr) {
      // Every posted window is full.
      if (fuse_capable) {
        backend_->NoteFuseEvent(FuseEvent::kFallbackWindowFull);
      }
      result = SendClassic(proc, sock, va, length, ctx, opts);
    } else {
      bool forwarded = false;
      if (win->filled == 0 && !peer->HasData() && peer->forward_rule() != nullptr &&
          backend_->SupportsForwardFuse()) {
        result = SendForward(proc, peer, win, va, length, ctx, &forwarded);
      }
      if (!forwarded) {
        // Fill the ring's windows in FIFO order within this one syscall: a
        // send larger than the active window's room rolls over into the next
        // posted window instead of returning short.
        size_t sent_total = 0;
        Status err = OkStatus();
        while (sent_total < length) {
          PostedWindow* w = peer->ActiveWindow();
          if (w == nullptr) {
            break;  // ring full: short send, receiver must reap/re-post
          }
          if (sent_total > 0) {
            backend_->NoteFuseEvent(FuseEvent::kRingRollover);
          }
          auto part =
              SendPosted(proc, peer, w, va + sent_total, length - sent_total, ctx, opts);
          if (!part.ok()) {
            err = part.status();
            break;
          }
          if (*part == 0) {
            break;
          }
          sent_total += *part;
        }
        if (sent_total > 0) {
          result = sent_total;
        } else {
          result = err.ok() ? StatusOr<size_t>(0) : StatusOr<size_t>(err);
        }
      }
    }
  }
  TrapExit(proc, ctx);
  return result;
}

StatusOr<size_t> SimKernel::SendClassic(Process& proc, SimSocket* sock, uint64_t va,
                                        size_t length, ExecContext* ctx,
                                        const SendOptions& opts) {
  SimSocket* peer = sock->peer();
  SkbPool* pool = sock->pool();
  auto probe = kfunc_probe_;
  // Gather the syscall's whole skb op-list, then submit it with ONE vectored
  // copy — one ring transaction and one doorbell on the Copier backend, a
  // per-segment loop on synchronous backends.
  UserCopyVecOp vop;
  vop.proc = &proc;
  vop.user_va = va;
  vop.to_user = false;
  vop.lazy = opts.lazy;
  vop.ctx = ctx;
  std::vector<Skb*> acquired;
  size_t sent = 0;
  const Cycles nic_tx = timing_->nic_tx_enqueue_cycles;
  while (sent < length) {
    auto skb_or = pool->Acquire(ctx);
    if (!skb_or.ok()) {
      break;  // Short send: pool exhausted (receiver must drain).
    }
    Skb* skb = *skb_or;
    const size_t take = std::min(kMtu, length - sent);
    skb->length = take;
    // TCP/IP header processing (checksum offloaded: payload untouched, §5.2).
    ChargeCtx(ctx, timing_->tcp_tx_per_packet_cycles);
    // The driver syncs the data right before the NIC TX enqueue — i.e. at
    // segment completion, which delivers the packet (this is the send-side
    // Copy-Use window: socket-layer submit → driver enqueue).
    acquired.push_back(skb);
    vop.segs.push_back(UserCopySeg{skb->data, take, [peer, skb, nic_tx, probe](Cycles when) {
                                     if (probe) probe(skb->id);
                                     skb->delivered_at = when + nic_tx;
                                     peer->EnqueueRx(skb);
                                   }});
    sent += take;
  }
  if (sent == 0) {
    return ResourceExhausted("skb pool exhausted");
  }
  size_t segs_submitted = 0;
  const Status status = backend_->CopyV(vop, &segs_submitted);
  if (!status.ok()) {
    // Segments past the failure point were never submitted: their skbs still
    // belong to the sender (submitted ones are delivered/reclaimed by their
    // completion handlers).
    for (size_t i = segs_submitted; i < acquired.size(); ++i) {
      pool->Release(acquired[i]);
    }
    return status;
  }
  return sent;
}

StatusOr<size_t> SimKernel::SendPosted(Process& proc, SimSocket* peer, PostedWindow* win,
                                       uint64_t va, size_t length, ExecContext* ctx,
                                       const SendOptions& /*opts*/) {
  SkbPool* pool = peer->pool();
  const size_t target = std::min(length, win->length - win->filled);
  const bool fuse_capable = backend_->SupportsFusedIpc();
  auto probe = kfunc_probe_;
  // Reserve skbs as flow-control tokens even though the fused path never
  // touches their payload: the posted path must exert the same pool pressure
  // — and fire the same per-chunk reclaim KFUNCs, in the same order — as the
  // two-step path it replaces. The reservation is one bulk pool transaction,
  // and the transfer is one logical segment (the window bypasses TCP
  // segmentation), so TX protocol work is charged once, not per MTU.
  std::vector<Skb*> tokens =
      pool->AcquireBatch((target + kMtu - 1) / kMtu, ctx);
  std::vector<size_t> takes;
  size_t covered = 0;
  for (Skb* skb : tokens) {
    const size_t take = std::min(kMtu, target - covered);
    skb->length = take;
    takes.push_back(take);
    covered += take;
  }
  if (!tokens.empty()) {
    ChargeCtx(ctx, timing_->tcp_tx_per_packet_cycles);
  }
  if (covered == 0) {
    if (fuse_capable) {
      backend_->NoteFuseEvent(FuseEvent::kFallbackPoolExhausted);
    }
    return ResourceExhausted("skb pool exhausted");
  }
  const size_t dst_off = win->filled;
  if (fuse_capable) {
    // Fused single hop: ONE src→dst Copy Task, no kernel-buffer bounce. The
    // sender's range stays write-protected until the task lands (CopyFused
    // locks it); each chunk's completion releases its flow-control token.
    FusedCopyOp fop;
    fop.src_proc = &proc;
    fop.src_va = va;
    fop.dst_proc = win->proc;
    fop.dst_va = win->va + dst_off;
    fop.length = covered;
    fop.descriptor = win->descriptor;
    fop.descriptor_offset = dst_off;
    fop.protect_src = true;
    fop.ctx = ctx;
    fop.chunks.reserve(tokens.size());
    for (size_t i = 0; i < tokens.size(); ++i) {
      Skb* skb = tokens[i];
      fop.chunks.push_back(FusedChunk{takes[i], [pool, skb, probe](Cycles) {
                                        if (probe) probe(skb->id);
                                        pool->Release(skb);
                                      }});
    }
    const Status fuse_status = backend_->CopyFused(fop);
    if (fuse_status.ok()) {
      backend_->NoteFuseEvent(FuseEvent::kFused);
      win->filled += covered;
      return covered;
    }
    // Ring full: CopyFused left no side effects, the tokens are still ours —
    // stage through them instead.
    backend_->NoteFuseEvent(FuseEvent::kFallbackRing);
  }
  // Posted two-step: stage sender→skbs, then drain skbs→window. Both halves
  // ride the sender's client (vop2.submit_proc), so the drain is queued FIFO
  // behind the staging it reads from.
  UserCopyVecOp vop1;
  vop1.proc = &proc;
  vop1.user_va = va;
  vop1.to_user = false;
  // Never lazy: the drain reads the skbs as the very next task, so deferring
  // the staging would invert the data dependency.
  vop1.ctx = ctx;
  for (size_t i = 0; i < tokens.size(); ++i) {
    vop1.segs.push_back(UserCopySeg{tokens[i]->data, takes[i], nullptr});
  }
  size_t staged = 0;
  const Status stage_status = backend_->CopyV(vop1, &staged);
  if (!stage_status.ok()) {
    for (size_t i = staged; i < tokens.size(); ++i) {
      pool->Release(tokens[i]);
    }
    if (staged == 0) {
      return stage_status;
    }
    tokens.resize(staged);  // Truncate to the staged prefix.
    takes.resize(staged);
    covered = 0;
    for (size_t take : takes) {
      covered += take;
    }
  }
  UserCopyVecOp vop2;
  vop2.proc = win->proc;
  vop2.submit_proc = &proc;
  vop2.user_va = win->va + dst_off;
  vop2.to_user = true;
  vop2.descriptor = win->descriptor;
  vop2.descriptor_offset = dst_off;
  vop2.ctx = ctx;
  for (size_t i = 0; i < tokens.size(); ++i) {
    Skb* skb = tokens[i];
    vop2.segs.push_back(UserCopySeg{skb->data, takes[i], [pool, skb, probe](Cycles) {
                                      if (probe) probe(skb->id);
                                      pool->Release(skb);
                                    }});
  }
  size_t drained = 0;
  const Status drain_status = backend_->CopyV(vop2, &drained);
  if (!drain_status.ok()) {
    for (size_t i = drained; i < tokens.size(); ++i) {
      pool->Release(tokens[i]);
    }
    size_t landed = 0;
    for (size_t i = 0; i < drained; ++i) {
      landed += takes[i];
    }
    if (landed == 0) {
      return drain_status;
    }
    win->filled += landed;
    return landed;
  }
  win->filled += covered;
  return covered;
}

StatusOr<size_t> SimKernel::SendForward(Process& proc, SimSocket* peer, PostedWindow* win,
                                        uint64_t va, size_t length, ExecContext* ctx,
                                        bool* handled) {
  *handled = false;
  const ForwardRule* rule = peer->forward_rule();
  if (rule == nullptr || rule->endpoint == nullptr || !rule->rewrite) {
    return 0;
  }
  // Bounded header peek: the kernel inspects at most inspect_limit bytes to
  // classify the message — the payload is never read here.
  const size_t head_len = std::min(rule->inspect_limit, length);
  std::vector<uint8_t> head(head_len);
  if (!proc.mem().ReadBytes(va, head.data(), head_len, ctx).ok()) {
    return 0;  // unreadable header: land locally, the app will fault properly
  }
  ChargeCtx(ctx, rule->rewrite_cycles);
  std::optional<ForwardAction> action = rule->rewrite(head.data(), head_len, length);
  if (!action.has_value() || action->body_off > length) {
    // Partial message or a frame the rule does not own: app-level path.
    backend_->NoteFuseEvent(FuseEvent::kFallbackForward);
    return 0;
  }
  const size_t payload = length - action->body_off;
  const size_t fused_len = action->prefix.size() + payload;
  auto claim_or = rule->endpoint->ClaimForward(fused_len, ctx);
  if (!claim_or.ok()) {
    backend_->NoteFuseEvent(FuseEvent::kFallbackForward);
    return 0;
  }
  ForwardClaim claim = std::move(*claim_or);

  // Flow-control parity with the posted path the message would otherwise
  // take: reserve the same skb token run for the same stream bytes, so the
  // sender sees identical pool pressure and the same reclaim KFUNC ids fire
  // in the same order whether or not the message was forwarded.
  SkbPool* pool = peer->pool();
  std::vector<Skb*> tokens = pool->AcquireBatch((length + kMtu - 1) / kMtu, ctx);
  std::vector<size_t> takes;
  size_t covered = 0;
  for (Skb* skb : tokens) {
    const size_t take = std::min(kMtu, length - covered);
    skb->length = take;
    takes.push_back(take);
    covered += take;
  }
  // The first chunk absorbs the header-length delta (rewritten prefix in,
  // original header out), so chunk lengths sum to the fused length while the
  // chunk *count* stays the token count.
  const int64_t delta = static_cast<int64_t>(action->prefix.size()) -
                        static_cast<int64_t>(action->body_off);
  if (covered < length ||
      static_cast<int64_t>(takes[0]) + delta < 0) {
    for (Skb* skb : tokens) {
      pool->Release(skb);
    }
    rule->endpoint->AbandonForward(claim.token);
    backend_->NoteFuseEvent(FuseEvent::kFallbackForward);
    return 0;  // the posted path re-acquires and lands locally / two-steps
  }
  ChargeCtx(ctx, timing_->tcp_tx_per_packet_cycles);  // one logical segment
  ChargeCtx(ctx, claim.dispatch_cycles);              // destination protocol work

  auto probe = kfunc_probe_;
  FusedCopyOp fop;
  fop.src_proc = &proc;
  fop.src_va = va + action->body_off;
  fop.dst_proc = claim.proc;
  fop.dst_va = claim.va;
  fop.length = fused_len;
  fop.descriptor = claim.descriptor;
  fop.descriptor_offset = 0;
  fop.protect_src = true;
  fop.ctx = ctx;
  fop.src_prefix = std::make_shared<const std::vector<uint8_t>>(std::move(action->prefix));
  // The proxy's window descriptor settles when the forward lands: no bytes
  // ever arrive in the window, but a csync against it must not hang.
  fop.bypassed_descriptor = win->descriptor;
  fop.bypassed_length = length;
  fop.chunks.reserve(tokens.size() + 1);
  for (size_t i = 0; i < tokens.size(); ++i) {
    Skb* skb = tokens[i];
    const size_t chunk_len =
        i == 0 ? static_cast<size_t>(static_cast<int64_t>(takes[i]) + delta) : takes[i];
    fop.chunks.push_back(FusedChunk{chunk_len, [pool, skb, probe](Cycles) {
                                      if (probe) probe(skb->id);
                                      pool->Release(skb);
                                    }});
  }
  // Zero-length settle chunk: fires after every payload chunk has landed,
  // releasing the destination endpoint's flow-control token — mirroring the
  // second hop's single buffer-reclaim KFUNC on the app-level path.
  fop.chunks.push_back(FusedChunk{0, claim.release});

  const Status fuse_status = backend_->CopyFused(fop);
  if (!fuse_status.ok()) {
    for (Skb* skb : tokens) {
      pool->Release(skb);
    }
    rule->endpoint->AbandonForward(claim.token);
    backend_->NoteFuseEvent(FuseEvent::kFallbackRing);
    return 0;  // ring full: the posted path stages through skbs instead
  }
  backend_->NoteFuseEvent(FuseEvent::kForwardFused);
  win->forwarded += length;
  *handled = true;
  return length;
}

Status SimKernel::DrainRxIntoRing(Process& submit_proc, SimSocket* sock, ExecContext* ctx) {
  while (sock->HasData()) {
    PostedWindow* win = sock->ActiveWindow();
    if (win == nullptr) {
      return OkStatus();  // ring full: the rest stays queued
    }
    const size_t before = win->filled;
    const Status status = DrainRxIntoWindow(submit_proc, sock, win, ctx);
    if (!status.ok()) {
      return status;
    }
    if (win->filled == before) {
      return OkStatus();
    }
  }
  return OkStatus();
}

Status SimKernel::DrainRxIntoWindow(Process& submit_proc, SimSocket* sock, PostedWindow* win,
                                    ExecContext* ctx) {
  SkbPool* pool = sock->pool();
  const size_t room = win->length - win->filled;
  if (room == 0) {
    return OkStatus();
  }
  auto probe = kfunc_probe_;
  size_t packets = 0;
  Cycles latest_delivery = 0;
  UserCopyVecOp vop;
  vop.proc = win->proc;
  vop.submit_proc = &submit_proc;
  vop.user_va = win->va + win->filled;
  vop.to_user = true;
  vop.descriptor = win->descriptor;
  vop.descriptor_offset = win->filled;
  vop.ctx = ctx;
  std::vector<Skb*> consumed_skbs;
  const size_t consumed =
      sock->ConsumeRx(room, &latest_delivery, [&](Skb* skb, size_t offset, size_t take) {
        ++packets;
        skb->pending_copies.fetch_add(1, std::memory_order_acq_rel);
        consumed_skbs.push_back(skb);
        vop.segs.push_back(UserCopySeg{skb->data + offset, take, [pool, skb, probe](Cycles) {
                                         if (probe) probe(skb->id);
                                         SimSocket::CompleteCopy(pool, skb);
                                       }});
      });
  if (consumed == 0) {
    return OkStatus();
  }
  if (ctx != nullptr) {
    ctx->WaitUntil(latest_delivery);
  }
  ChargeCtx(ctx, timing_->tcp_rx_per_packet_cycles * packets + timing_->socket_status_cycles);
  size_t segs_submitted = 0;
  const Status status = backend_->CopyV(vop, &segs_submitted);
  if (!status.ok()) {
    for (size_t i = segs_submitted; i < consumed_skbs.size(); ++i) {
      SimSocket::CompleteCopy(pool, consumed_skbs[i]);
    }
    size_t landed = 0;
    for (size_t i = 0; i < segs_submitted; ++i) {
      landed += vop.segs[i].length;
    }
    win->filled += landed;  // The submitted prefix still lands in the window.
    return status;
  }
  win->filled += consumed;
  return OkStatus();
}

StatusOr<size_t> SimKernel::PostRecv(Process& proc, SimSocket* sock, uint64_t va, size_t length,
                                     ExecContext* ctx, const RecvOptions& opts) {
  if (length == 0) {
    return InvalidArgument("zero-length receive window");
  }
  TrapEnter(proc, ctx);
  auto window = std::make_unique<PostedWindow>();
  window->proc = &proc;
  window->va = va;
  window->length = length;
  window->descriptor = opts.descriptor;
  PostedWindow* win = window.get();
  const bool behind = sock->HasPostedWindow();
  Status status = sock->PostWindow(std::move(window), backend_->SupportsRecvRing());
  if (!status.ok()) {
    TrapExit(proc, ctx);
    return status;
  }
  if (behind) {
    backend_->NoteFuseEvent(FuseEvent::kRingWindowPosted);
  }
  // Registration (DESIGN.md §12): pre-translate the window so fused sends
  // land on warm ATCache entries; the walk is the receiver's post-time cost.
  backend_->RegisterWindow(&proc, va, length, ctx);
  // Staged-then-fused: bytes already queued were sent before the window
  // existed — drain them into the ring now so stream order is preserved.
  status = DrainRxIntoRing(proc, sock, ctx);
  TrapExit(proc, ctx);
  if (!status.ok()) {
    return status;
  }
  return win->filled;
}

StatusOr<size_t> SimKernel::PostRecvRing(Process& proc, SimSocket* sock,
                                         const std::vector<RecvWindowSpec>& windows,
                                         ExecContext* ctx) {
  if (windows.empty()) {
    return InvalidArgument("empty receive ring");
  }
  for (const RecvWindowSpec& spec : windows) {
    if (spec.length == 0) {
      return InvalidArgument("zero-length receive window");
    }
  }
  if (!backend_->SupportsRecvRing() && (windows.size() > 1 || sock->HasPostedWindow())) {
    return FailedPrecondition("receive ring not supported (one window at a time)");
  }
  TrapEnter(proc, ctx);
  std::vector<PostedWindow*> posted;
  posted.reserve(windows.size());
  for (const RecvWindowSpec& spec : windows) {
    auto window = std::make_unique<PostedWindow>();
    window->proc = &proc;
    window->va = spec.va;
    window->length = spec.length;
    window->descriptor = spec.descriptor;
    PostedWindow* win = window.get();
    const bool behind = sock->HasPostedWindow();
    Status status = sock->PostWindow(std::move(window), backend_->SupportsRecvRing());
    if (!status.ok()) {
      TrapExit(proc, ctx);
      return status;
    }
    if (behind) {
      backend_->NoteFuseEvent(FuseEvent::kRingWindowPosted);
    }
    // Per-window registration: every ring window gets its pages pre-walked
    // into the ATCache at post time, so the Nth pipelined send is as warm as
    // the first.
    backend_->RegisterWindow(&proc, spec.va, spec.length, ctx);
    posted.push_back(win);
  }
  const Status status = DrainRxIntoRing(proc, sock, ctx);
  TrapExit(proc, ctx);
  if (!status.ok()) {
    return status;
  }
  size_t staged = 0;
  for (const PostedWindow* win : posted) {
    staged += win->filled;
  }
  return staged;
}

StatusOr<size_t> SimKernel::CompleteRecv(Process& proc, SimSocket* sock, ExecContext* ctx) {
  TrapEnter(proc, ctx);
  std::unique_ptr<PostedWindow> win = sock->TakeWindow();
  ChargeCtx(ctx, timing_->socket_status_cycles);
  TrapExit(proc, ctx);
  if (win == nullptr) {
    return FailedPrecondition("no receive window posted");
  }
  return win->filled + win->forwarded;
}

StatusOr<size_t> SimKernel::Recv(Process& proc, SimSocket* sock, uint64_t va, size_t length,
                                 ExecContext* ctx, const RecvOptions& opts) {
  if (length == 0) {
    return InvalidArgument("zero-length recv");
  }
  if (sock->HasPostedWindow()) {
    return FailedPrecondition("recv while a window is posted (use CompleteRecv)");
  }
  TrapEnter(proc, ctx);
  SkbPool* pool = sock->pool();
  auto probe = kfunc_probe_;
  size_t packets = 0;
  Cycles latest_delivery = 0;
  // Gather the consumed skb pieces into one op-list; each piece's completion
  // handler releases its skb once drained.
  UserCopyVecOp vop;
  vop.proc = &proc;
  vop.user_va = va;
  vop.to_user = true;
  vop.descriptor = opts.descriptor;
  vop.descriptor_offset = 0;
  vop.lazy = opts.lazy;
  vop.ctx = ctx;
  std::vector<Skb*> consumed_skbs;
  const size_t consumed =
      sock->ConsumeRx(length, &latest_delivery, [&](Skb* skb, size_t offset, size_t take) {
        ++packets;
        skb->pending_copies.fetch_add(1, std::memory_order_acq_rel);
        consumed_skbs.push_back(skb);
        vop.segs.push_back(UserCopySeg{skb->data + offset, take, [pool, skb, probe](Cycles) {
                                         if (probe) probe(skb->id);
                                         SimSocket::CompleteCopy(pool, skb);
                                       }});
      });
  if (consumed > 0 && ctx != nullptr) {
    // Blocking semantics in virtual time: the receiver cannot observe a
    // packet before the sender's NIC delivered it. Submitting after the wait
    // also keeps the Copy Task's submit time at/after delivery.
    ctx->WaitUntil(latest_delivery);
  }
  ChargeCtx(ctx, timing_->tcp_rx_per_packet_cycles * packets + timing_->socket_status_cycles);
  Status copy_status;
  if (consumed > 0) {
    size_t segs_submitted = 0;
    copy_status = backend_->CopyV(vop, &segs_submitted);
    if (!copy_status.ok()) {
      // Unsubmitted pieces never got their completion handler: balance the
      // pending-copies count so the skbs can return to the pool (the bytes
      // are lost to the caller either way — the error is returned).
      for (size_t i = segs_submitted; i < consumed_skbs.size(); ++i) {
        SimSocket::CompleteCopy(pool, consumed_skbs[i]);
      }
    }
  }
  TrapExit(proc, ctx);
  if (!copy_status.ok()) {
    return copy_status;
  }
  if (consumed == 0) {
    return Unavailable("no data (EAGAIN)");
  }
  return consumed;
}

}  // namespace copier::simos
