// Process — a simulated OS process: an address space, signal state, and the
// per-process Copier attachment point.
#ifndef COPIER_SRC_SIMOS_PROCESS_H_
#define COPIER_SRC_SIMOS_PROCESS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "src/simos/address_space.h"

namespace copier::simos {

enum class Signal : int {
  kNone = 0,
  kSegv = 11,
};

class Process {
 public:
  Process(uint32_t pid, std::unique_ptr<AddressSpace> address_space, std::string name)
      : pid_(pid), name_(std::move(name)), address_space_(std::move(address_space)) {}

  uint32_t pid() const { return pid_; }
  const std::string& name() const { return name_; }
  AddressSpace& mem() { return *address_space_; }

  // Signal delivery (Copier signals SIGSEGV for unresolvable copy faults,
  // §4.5.4, exactly as a synchronous bad copy would have).
  void Deliver(Signal sig) {
    if (sig == Signal::kSegv) {
      segv_count_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  uint64_t segv_count() const { return segv_count_.load(std::memory_order_relaxed); }

  // Opaque Copier client id, assigned by CopierService::AttachProcess. Zero
  // means not attached (pure-baseline process).
  uint64_t copier_client_id() const { return copier_client_id_; }
  void set_copier_client_id(uint64_t id) { copier_client_id_ = id; }

 private:
  uint32_t pid_;
  std::string name_;
  std::unique_ptr<AddressSpace> address_space_;
  std::atomic<uint64_t> segv_count_{0};
  uint64_t copier_client_id_ = 0;
};

}  // namespace copier::simos

#endif  // COPIER_SRC_SIMOS_PROCESS_H_
