#include "src/simos/binder.h"

namespace copier::simos {

BinderDriver::BinderDriver(SimKernel* kernel, size_t buffer_count) : kernel_(kernel) {
  buffers_.resize(buffer_count);
  for (Buffer& buf : buffers_) {
    buf.data = std::make_unique<uint8_t[]>(kTxnBufferBytes);
  }
}

StatusOr<BinderDriver::Transaction> BinderDriver::Transact(Process& client, uint64_t client_va,
                                                           size_t length, ExecContext* ctx,
                                                           void* descriptor) {
  if (length > kTxnBufferBytes) {
    return InvalidArgument("binder transaction exceeds buffer size");
  }
  kernel_->TrapEnter(client, ctx);

  Buffer* buffer = nullptr;
  uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Buffer& buf : buffers_) {
      if (!buf.in_use) {
        buf.in_use = true;
        id = buf.transaction_id = next_id_++;
        buffer = &buf;
        break;
      }
    }
  }
  if (buffer == nullptr) {
    kernel_->TrapExit(client, ctx);
    return ResourceExhausted("no free binder transaction buffer");
  }

  // Step 1: driver copies client data into the kernel transaction buffer —
  // a single-segment vectored op, so the syscall still publishes with one
  // ring transaction and one doorbell on the Copier backend.
  UserCopyVecOp op;
  op.proc = &client;
  op.user_va = client_va;
  op.to_user = false;
  op.descriptor = descriptor;
  op.ctx = ctx;
  op.segs.push_back(UserCopySeg{buffer->data.get(), length, nullptr});
  const Status status = kernel_->copy_backend()->CopyV(op);
  if (!status.ok()) {
    Release(id);
    kernel_->TrapExit(client, ctx);
    return status;
  }

  // Step 2: driver bookkeeping + scheduling the server thread — this is the
  // Copy-Use window that hides the copy (§5.2). The buffer is mapped, not
  // copied, into the server.
  ChargeCtx(ctx, kernel_->timing().binder_transaction_cycles);

  kernel_->TrapExit(client, ctx);
  Transaction txn;
  txn.data = buffer->data.get();
  txn.length = length;
  txn.id = id;
  return txn;
}

Status BinderDriver::Reply(Process& server, ExecContext* ctx) {
  kernel_->TrapEnter(server, ctx);
  ChargeCtx(ctx, kernel_->timing().binder_transaction_cycles / 4);  // small control reply
  kernel_->TrapExit(server, ctx);
  return OkStatus();
}

void BinderDriver::Release(uint64_t transaction_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Buffer& buf : buffers_) {
    if (buf.in_use && buf.transaction_id == transaction_id) {
      buf.in_use = false;
      return;
    }
  }
}

}  // namespace copier::simos
