#include "src/simos/binder.h"

namespace copier::simos {

BinderDriver::BinderDriver(SimKernel* kernel, size_t buffer_count) : kernel_(kernel) {
  buffers_.resize(buffer_count);
  for (Buffer& buf : buffers_) {
    buf.data = std::make_unique<uint8_t[]>(kTxnBufferBytes);
  }
}

StatusOr<BinderDriver::Transaction> BinderDriver::Transact(Process& client, uint64_t client_va,
                                                           size_t length, ExecContext* ctx,
                                                           void* descriptor) {
  if (length > kTxnBufferBytes) {
    return InvalidArgument("binder transaction exceeds buffer size");
  }
  kernel_->TrapEnter(client, ctx);
  KernelCopyBackend* backend = kernel_->copy_backend();
  const bool fuse_capable = backend->SupportsFusedIpc();

  // A server-posted window that fits takes the transaction; too-small windows
  // stay posted and the payload bounces through a buffer as usual.
  std::unique_ptr<PostedWindow> win;
  bool window_too_small = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!posted_.empty()) {
      // FIFO: only the front window may take a transaction (ring order is the
      // delivery order the server posted for).
      if (length <= posted_.front()->length) {
        win = std::move(posted_.front());
        posted_.pop_front();
      } else {
        window_too_small = true;
      }
    }
  }
  if (fuse_capable && win == nullptr) {
    backend->NoteFuseEvent(window_too_small ? FuseEvent::kFallbackWindowFull
                                            : FuseEvent::kFallbackNotPosted);
  }

  // The transaction buffer doubles as the flow-control token on the posted
  // path: fused transfers never touch its payload but still occupy the slot
  // until their completion KFUNC, matching two-step buffer pressure.
  Buffer* buffer = nullptr;
  uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Buffer& buf : buffers_) {
      if (!buf.in_use) {
        buf.in_use = true;
        id = buf.transaction_id = next_id_++;
        buffer = &buf;
        break;
      }
    }
  }
  if (buffer == nullptr) {
    if (fuse_capable && win != nullptr) {
      backend->NoteFuseEvent(FuseEvent::kFallbackPoolExhausted);
    }
    if (win != nullptr) {
      std::lock_guard<std::mutex> lock(mu_);
      posted_.push_front(std::move(win));  // Restore the unconsumed window.
    }
    kernel_->TrapExit(client, ctx);
    return ResourceExhausted("no free binder transaction buffer");
  }

  if (win != nullptr) {
    return TransactPosted(client, client_va, length, ctx, std::move(win), buffer, id);
  }

  // Step 1: driver copies client data into the kernel transaction buffer —
  // a single-segment vectored op, so the syscall still publishes with one
  // ring transaction and one doorbell on the Copier backend.
  UserCopyVecOp op;
  op.proc = &client;
  op.user_va = client_va;
  op.to_user = false;
  op.descriptor = descriptor;
  op.ctx = ctx;
  op.segs.push_back(UserCopySeg{buffer->data.get(), length, nullptr});
  const Status status = kernel_->copy_backend()->CopyV(op);
  if (!status.ok()) {
    Release(id);
    kernel_->TrapExit(client, ctx);
    return status;
  }

  // Step 2: driver bookkeeping + scheduling the server thread — this is the
  // Copy-Use window that hides the copy (§5.2). The buffer is mapped, not
  // copied, into the server.
  ChargeCtx(ctx, kernel_->timing().binder_transaction_cycles);

  kernel_->TrapExit(client, ctx);
  Transaction txn;
  txn.data = buffer->data.get();
  txn.length = length;
  txn.id = id;
  return txn;
}

StatusOr<BinderDriver::Transaction> BinderDriver::TransactPosted(
    Process& client, uint64_t client_va, size_t length, ExecContext* ctx,
    std::unique_ptr<PostedWindow> win, Buffer* buffer, uint64_t id) {
  KernelCopyBackend* backend = kernel_->copy_backend();
  auto restore_window = [&] {
    std::lock_guard<std::mutex> lock(mu_);
    posted_.push_front(std::move(win));
  };
  bool staged = !backend->SupportsFusedIpc();
  if (!staged) {
    // Fused single hop: client → window, no kernel-buffer bounce. One chunk —
    // its completion KFUNC frees the buffer token, mirroring the two-step
    // path's single buffer-reclaim handler.
    FusedCopyOp fop;
    fop.src_proc = &client;
    fop.src_va = client_va;
    fop.dst_proc = win->proc;
    fop.dst_va = win->va;
    fop.length = length;
    fop.descriptor = win->descriptor;
    fop.descriptor_offset = 0;
    fop.protect_src = true;
    fop.ctx = ctx;
    fop.chunks.push_back(FusedChunk{length, [this, id](Cycles) { Release(id); }});
    const Status fuse_status = backend->CopyFused(fop);
    backend->NoteFuseEvent(fuse_status.ok() ? FuseEvent::kFused : FuseEvent::kFallbackRing);
    staged = !fuse_status.ok();
  }
  if (staged) {
    // Posted two-step: client → transaction buffer, then buffer → window on
    // the client's queue (submit_proc), so the drain trails the staging FIFO.
    UserCopyVecOp vop1;
    vop1.proc = &client;
    vop1.user_va = client_va;
    vop1.to_user = false;
    vop1.ctx = ctx;
    vop1.segs.push_back(UserCopySeg{buffer->data.get(), length, nullptr});
    Status status = backend->CopyV(vop1);
    if (status.ok()) {
      UserCopyVecOp vop2;
      vop2.proc = win->proc;
      vop2.submit_proc = &client;
      vop2.user_va = win->va;
      vop2.to_user = true;
      vop2.descriptor = win->descriptor;
      vop2.descriptor_offset = 0;
      vop2.ctx = ctx;
      vop2.segs.push_back(
          UserCopySeg{buffer->data.get(), length, [this, id](Cycles) { Release(id); }});
      status = backend->CopyV(vop2);
    }
    if (!status.ok()) {
      Release(id);
      restore_window();
      kernel_->TrapExit(client, ctx);
      return status;
    }
  }
  ChargeCtx(ctx, kernel_->timing().binder_transaction_cycles);
  kernel_->TrapExit(client, ctx);
  Transaction txn;
  txn.length = length;
  txn.id = id;
  txn.in_window = true;
  txn.window_proc = win->proc;
  txn.window_va = win->va;
  return txn;
}

Status BinderDriver::PostReceive(Process& server, uint64_t va, size_t length, void* descriptor,
                                 ExecContext* ctx) {
  if (length == 0) {
    return InvalidArgument("zero-length receive window");
  }
  kernel_->TrapEnter(server, ctx);
  auto window = std::make_unique<PostedWindow>();
  window->proc = &server;
  window->va = va;
  window->length = length;
  window->descriptor = descriptor;
  Status status = OkStatus();
  bool behind = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!posted_.empty() && !kernel_->copy_backend()->SupportsRecvRing()) {
      status = FailedPrecondition("a receive window is already posted");
    } else {
      behind = !posted_.empty();
      posted_.push_back(std::move(window));
    }
  }
  if (status.ok()) {
    if (behind) {
      kernel_->copy_backend()->NoteFuseEvent(FuseEvent::kRingWindowPosted);
    }
    // Registration (DESIGN.md §12): pre-translate the window so a fused
    // transact lands on warm ATCache entries; the walk is the server's
    // post-time cost, overlapped with the client's send.
    kernel_->copy_backend()->RegisterWindow(&server, va, length, ctx);
  }
  ChargeCtx(ctx, kernel_->timing().binder_transaction_cycles / 4);  // driver bookkeeping
  kernel_->TrapExit(server, ctx);
  return status;
}

Status BinderDriver::PostReceiveRing(Process& server,
                                     const std::vector<SimKernel::RecvWindowSpec>& windows,
                                     ExecContext* ctx) {
  if (windows.empty()) {
    return InvalidArgument("empty receive ring");
  }
  for (const SimKernel::RecvWindowSpec& spec : windows) {
    if (spec.length == 0) {
      return InvalidArgument("zero-length receive window");
    }
  }
  KernelCopyBackend* backend = kernel_->copy_backend();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!backend->SupportsRecvRing() && (windows.size() > 1 || !posted_.empty())) {
      return FailedPrecondition("receive ring not supported (one window at a time)");
    }
  }
  kernel_->TrapEnter(server, ctx);
  for (const SimKernel::RecvWindowSpec& spec : windows) {
    auto window = std::make_unique<PostedWindow>();
    window->proc = &server;
    window->va = spec.va;
    window->length = spec.length;
    window->descriptor = spec.descriptor;
    bool behind = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      behind = !posted_.empty();
      posted_.push_back(std::move(window));
    }
    if (behind) {
      backend->NoteFuseEvent(FuseEvent::kRingWindowPosted);
    }
    backend->RegisterWindow(&server, spec.va, spec.length, ctx);
  }
  ChargeCtx(ctx, kernel_->timing().binder_transaction_cycles / 4);  // driver bookkeeping
  kernel_->TrapExit(server, ctx);
  return OkStatus();
}

void BinderDriver::ClearReceive() {
  std::lock_guard<std::mutex> lock(mu_);
  posted_.clear();
}

StatusOr<ForwardClaim> BinderDriver::ClaimForward(size_t length, ExecContext* ctx) {
  std::unique_ptr<PostedWindow> win;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (posted_.empty()) {
      return FailedPrecondition("no destination window posted");
    }
    if (length > posted_.front()->length) {
      return FailedPrecondition("destination window too small");
    }
    win = std::move(posted_.front());
    posted_.pop_front();
  }
  // The transaction buffer is the flow-control token, exactly as on the
  // app-level path: a forwarded message occupies a buffer slot (never its
  // payload) until the fused task's settle KFUNC releases it.
  uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Buffer& buf : buffers_) {
      if (!buf.in_use) {
        buf.in_use = true;
        id = buf.transaction_id = next_id_++;
        break;
      }
    }
    if (id == 0) {
      posted_.push_front(std::move(win));
      return ResourceExhausted("no free binder transaction buffer");
    }
  }
  ForwardClaim claim;
  claim.proc = win->proc;
  claim.va = win->va;
  claim.descriptor = win->descriptor;
  claim.dispatch_cycles = kernel_->timing().binder_transaction_cycles;
  claim.token = id;
  claim.release = [this, id](Cycles) {
    Release(id);
    std::lock_guard<std::mutex> lock(mu_);
    claimed_.erase(id);
  };
  {
    std::lock_guard<std::mutex> lock(mu_);
    claimed_[id] = std::move(win);
  }
  (void)ctx;
  return claim;
}

void BinderDriver::AbandonForward(uint64_t token) {
  Release(token);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = claimed_.find(token);
  if (it != claimed_.end()) {
    posted_.push_front(std::move(it->second));
    claimed_.erase(it);
  }
}

Status BinderDriver::Reply(Process& server, ExecContext* ctx) {
  kernel_->TrapEnter(server, ctx);
  ChargeCtx(ctx, kernel_->timing().binder_transaction_cycles / 4);  // small control reply
  kernel_->TrapExit(server, ctx);
  return OkStatus();
}

void BinderDriver::Release(uint64_t transaction_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Buffer& buf : buffers_) {
    if (buf.in_use && buf.transaction_id == transaction_id) {
      buf.in_use = false;
      return;
    }
  }
}

}  // namespace copier::simos
