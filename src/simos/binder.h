// Binder-like IPC driver (§5.2, §6.1.2).
//
// Android Binder's two-step transfer, reproduced: the client's message is
// copied into a kernel transaction buffer by the driver (the copy Copier
// optimizes), and that kernel buffer is then *mapped* — not copied — into the
// server's address space. The server parses it through the Parcel API
// (src/apps/parcel.h), reading typed items one by one; with Copier, the
// Parcel _csync()s against a descriptor placed at the front of the message
// (shared memory) before each read, so the driver-side copy overlaps with
// transaction bookkeeping and server wakeup.
#ifndef COPIER_SRC_SIMOS_BINDER_H_
#define COPIER_SRC_SIMOS_BINDER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/exec_context.h"
#include "src/common/status.h"
#include "src/simos/kernel.h"

namespace copier::simos {

class BinderDriver : public ForwardEndpoint {
 public:
  // Transaction buffers are physically contiguous kernel allocations.
  static constexpr size_t kTxnBufferBytes = 1 * kMiB;

  explicit BinderDriver(SimKernel* kernel, size_t buffer_count = 16);

  struct Transaction {
    // Kernel transaction buffer mapped (read-only) into the server; the
    // server accesses it through this host pointer. Null when the payload
    // landed directly in the server's posted window (in_window).
    const uint8_t* data = nullptr;
    size_t length = 0;
    uint64_t id = 0;
    // Posted-receive delivery (fused IPC, DESIGN.md §12): the payload is at
    // [window_va, window_va+length) in window_proc's address space.
    bool in_window = false;
    Process* window_proc = nullptr;
    uint64_t window_va = 0;
  };

  // Client sends [client_va, client_va+length) to the server. `descriptor`
  // is the libCopier descriptor for the driver-side copy (null = synchronous
  // baseline). The returned transaction stays valid until Release(id).
  // When the server has posted a receive window that fits, the payload lands
  // in the window instead (one fused src→dst task on a fuse-capable backend,
  // a posted two-step through the transaction buffer otherwise) and the
  // returned transaction has in_window set; the window is consumed.
  StatusOr<Transaction> Transact(Process& client, uint64_t client_va, size_t length,
                                 ExecContext* ctx, void* descriptor = nullptr);

  // Registers the server's landing window for the next transaction (fused
  // IPC): the next Transact whose payload fits lands directly in
  // [va, va+length) instead of bouncing through a mapped kernel buffer.
  // `descriptor` is the server's libCopier descriptor covering the window —
  // it replaces Transact's for the posted transaction. Windows form a FIFO
  // ring on a ring-capable backend (SupportsRecvRing); transactions consume
  // the front window, so pipelined clients stay fused at depth > 1. One
  // window at a time otherwise.
  Status PostReceive(Process& server, uint64_t va, size_t length, void* descriptor,
                     ExecContext* ctx);
  // Posts a whole ring of landing windows in ONE trap (per-window ATCache
  // registration, FIFO consumption) — the Binder side of PostRecvRing.
  Status PostReceiveRing(Process& server, const std::vector<SimKernel::RecvWindowSpec>& windows,
                         ExecContext* ctx);
  // Drops all posted windows (server shutdown / mode switch).
  void ClearReceive();

  // --- ForwardEndpoint (proxy-transparent forwarding, DESIGN.md §12) ---------
  // Claims the front posted window (must fit `length`) plus a transaction
  // buffer as the flow-control token; the claim's release KFUNC frees the
  // buffer when the forwarded payload has landed.
  StatusOr<ForwardClaim> ClaimForward(size_t length, ExecContext* ctx) override;
  void AbandonForward(uint64_t token) override;

  // Server replies (small control message; modeled cost only).
  Status Reply(Process& server, ExecContext* ctx);

  void Release(uint64_t transaction_id);

 private:
  struct Buffer {
    std::unique_ptr<uint8_t[]> data;
    bool in_use = false;
    uint64_t transaction_id = 0;
  };

  // Posted-window delivery: fused single hop when the backend supports it,
  // two-step through `buffer` otherwise. Consumes `win` on success, restores
  // it on failure. The caller has already TrapEnter'd; exits the trap.
  StatusOr<Transaction> TransactPosted(Process& client, uint64_t client_va, size_t length,
                                       ExecContext* ctx, std::unique_ptr<PostedWindow> win,
                                       Buffer* buffer, uint64_t id);

  SimKernel* kernel_;
  std::mutex mu_;
  std::vector<Buffer> buffers_;
  uint64_t next_id_ = 1;
  std::deque<std::unique_ptr<PostedWindow>> posted_;  // server's landing ring (FIFO)
  // Windows claimed by an in-flight forward dispatch, keyed by the claim's
  // buffer-token id; dropped when the forward lands, restored by
  // AbandonForward when it cannot be dispatched.
  std::unordered_map<uint64_t, std::unique_ptr<PostedWindow>> claimed_;
};

}  // namespace copier::simos

#endif  // COPIER_SRC_SIMOS_BINDER_H_
