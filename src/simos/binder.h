// Binder-like IPC driver (§5.2, §6.1.2).
//
// Android Binder's two-step transfer, reproduced: the client's message is
// copied into a kernel transaction buffer by the driver (the copy Copier
// optimizes), and that kernel buffer is then *mapped* — not copied — into the
// server's address space. The server parses it through the Parcel API
// (src/apps/parcel.h), reading typed items one by one; with Copier, the
// Parcel _csync()s against a descriptor placed at the front of the message
// (shared memory) before each read, so the driver-side copy overlaps with
// transaction bookkeeping and server wakeup.
#ifndef COPIER_SRC_SIMOS_BINDER_H_
#define COPIER_SRC_SIMOS_BINDER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/exec_context.h"
#include "src/common/status.h"
#include "src/simos/kernel.h"

namespace copier::simos {

class BinderDriver {
 public:
  // Transaction buffers are physically contiguous kernel allocations.
  static constexpr size_t kTxnBufferBytes = 1 * kMiB;

  explicit BinderDriver(SimKernel* kernel, size_t buffer_count = 16);

  struct Transaction {
    // Kernel transaction buffer mapped (read-only) into the server; the
    // server accesses it through this host pointer.
    const uint8_t* data = nullptr;
    size_t length = 0;
    uint64_t id = 0;
  };

  // Client sends [client_va, client_va+length) to the server. `descriptor`
  // is the libCopier descriptor for the driver-side copy (null = synchronous
  // baseline). The returned transaction stays valid until Release(id).
  StatusOr<Transaction> Transact(Process& client, uint64_t client_va, size_t length,
                                 ExecContext* ctx, void* descriptor = nullptr);

  // Server replies (small control message; modeled cost only).
  Status Reply(Process& server, ExecContext* ctx);

  void Release(uint64_t transaction_id);

 private:
  struct Buffer {
    std::unique_ptr<uint8_t[]> data;
    bool in_use = false;
    uint64_t transaction_id = 0;
  };

  SimKernel* kernel_;
  std::mutex mu_;
  std::vector<Buffer> buffers_;
  uint64_t next_id_ = 1;
};

}  // namespace copier::simos

#endif  // COPIER_SRC_SIMOS_BINDER_H_
