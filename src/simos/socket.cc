#include "src/simos/socket.h"

#include <algorithm>

#include "src/common/logging.h"

namespace copier::simos {

SkbPool::SkbPool(size_t count, const hw::TimingModel* timing) : timing_(timing) {
  slab_ = std::make_unique<uint8_t[]>(count * kMtu);
  all_.reserve(count);
  free_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    auto skb = std::make_unique<Skb>();
    skb->data = slab_.get() + i * kMtu;
    skb->id = static_cast<uint32_t>(i);
    free_.push_back(skb.get());
    all_.push_back(std::move(skb));
  }
  low_watermark_ = count;
}

StatusOr<Skb*> SkbPool::Acquire(ExecContext* ctx) {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_.empty()) {
    ++acquire_failures_;
    return ResourceExhausted("skb pool empty");
  }
  Skb* skb = free_.back();  // LIFO: reuse the most recent buffer (ATCache-friendly)
  free_.pop_back();
  skb->length = 0;
  skb->consumed = 0;
  skb->drained.store(false, std::memory_order_relaxed);
  skb->pending_copies.store(0, std::memory_order_relaxed);
  ++total_acquires_;
  low_watermark_ = std::min(low_watermark_, free_.size());
  ChargeCtx(ctx, timing_->skb_alloc_cycles);
  return skb;
}

std::vector<Skb*> SkbPool::AcquireBatch(size_t max_count, ExecContext* ctx) {
  std::vector<Skb*> batch;
  std::lock_guard<std::mutex> lock(mu_);
  if (free_.empty()) {
    if (max_count > 0) {
      ++acquire_failures_;
    }
    return batch;
  }
  const size_t take = std::min(max_count, free_.size());
  batch.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    Skb* skb = free_.back();  // LIFO, same reuse order as Acquire()
    free_.pop_back();
    skb->length = 0;
    skb->consumed = 0;
    skb->drained.store(false, std::memory_order_relaxed);
    skb->pending_copies.store(0, std::memory_order_relaxed);
    ++total_acquires_;
    batch.push_back(skb);
  }
  low_watermark_ = std::min(low_watermark_, free_.size());
  ChargeCtx(ctx, timing_->skb_alloc_cycles);  // one freelist transaction
  return batch;
}

uint64_t SkbPool::acquire_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return acquire_failures_;
}

size_t SkbPool::low_watermark() const {
  std::lock_guard<std::mutex> lock(mu_);
  return low_watermark_;
}

void SkbPool::Release(Skb* skb) {
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(skb);
}

size_t SkbPool::available() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_.size();
}

void SimSocket::EnqueueRx(Skb* skb) {
  std::lock_guard<std::mutex> lock(mu_);
  rx_.push_back(skb);
}

bool SimSocket::HasData() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !rx_.empty();
}

size_t SimSocket::RxBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const Skb* skb : rx_) {
    total += skb->length - skb->consumed;
  }
  return total;
}

size_t SimSocket::ConsumeRx(size_t max, Cycles* latest_delivery,
                            const std::function<void(Skb*, size_t, size_t)>& sink) {
  size_t consumed = 0;
  while (consumed < max) {
    Skb* skb = nullptr;
    size_t offset = 0;
    size_t take = 0;
    bool drains_skb = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (rx_.empty()) {
        break;
      }
      skb = rx_.front();
      offset = skb->consumed;
      take = std::min(max - consumed, skb->length - offset);
      skb->consumed += take;
      if (latest_delivery != nullptr) {
        *latest_delivery = std::max(*latest_delivery, skb->delivered_at);
      }
      if (skb->consumed == skb->length) {
        rx_.pop_front();
        drains_skb = true;
      }
    }
    // Mark drained before the sink runs so a synchronous sink's completion
    // (CompleteCopy) can release the skb.
    if (drains_skb) {
      skb->drained.store(true, std::memory_order_release);
    }
    sink(skb, offset, take);
    consumed += take;
  }
  return consumed;
}

Status SimSocket::PostWindow(std::unique_ptr<PostedWindow> window, bool allow_ring) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!posted_.empty() && !allow_ring) {
    return FailedPrecondition("a receive window is already posted");
  }
  posted_.push_back(std::move(window));
  return OkStatus();
}

PostedWindow* SimSocket::posted_window() const {
  std::lock_guard<std::mutex> lock(mu_);
  return posted_.empty() ? nullptr : posted_.front().get();
}

PostedWindow* SimSocket::ActiveWindow() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& win : posted_) {
    // A forwarded window is consumed even though no bytes landed locally —
    // it represents exactly one proxied message awaiting reap.
    if (win->filled < win->length && win->forwarded == 0) {
      return win.get();
    }
  }
  return nullptr;
}

bool SimSocket::HasPostedWindow() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !posted_.empty();
}

size_t SimSocket::posted_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return posted_.size();
}

std::unique_ptr<PostedWindow> SimSocket::TakeWindow() {
  std::lock_guard<std::mutex> lock(mu_);
  if (posted_.empty()) {
    return nullptr;
  }
  std::unique_ptr<PostedWindow> win = std::move(posted_.front());
  posted_.pop_front();
  return win;
}

void SimSocket::SetForwardRule(std::shared_ptr<ForwardRule> rule) {
  std::lock_guard<std::mutex> lock(mu_);
  forward_rule_ = std::move(rule);
}

const ForwardRule* SimSocket::forward_rule() const {
  std::lock_guard<std::mutex> lock(mu_);
  return forward_rule_.get();
}

void SimSocket::CompleteCopy(SkbPool* pool, Skb* skb) {
  // Called once per completed copy after the sink bumped pending_copies.
  const uint32_t remaining = skb->pending_copies.fetch_sub(1, std::memory_order_acq_rel) - 1;
  if (remaining == 0 && skb->drained.load(std::memory_order_acquire)) {
    pool->Release(skb);
  }
}

}  // namespace copier::simos
