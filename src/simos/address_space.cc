#include "src/simos/address_space.h"

#include <algorithm>
#include <cstring>

#include "src/common/logging.h"
#include "src/hw/copy_unit.h"

namespace copier::simos {

AddressSpace::AddressSpace(PhysicalMemory* phys, uint32_t asid, const hw::TimingModel* timing)
    : phys_(phys), asid_(asid), timing_(timing) {
  // Default CoW page copy: the kernel's method (ERMS) with modeled cost.
  cow_copy_ = [this](void* dst, const void* src, size_t len, ExecContext* ctx) {
    hw::ErmsCopy(dst, src, len);
    ChargeCtx(ctx, timing_->CpuCopyCycles(hw::CopyUnitKind::kErms, len));
  };
}

AddressSpace::~AddressSpace() {
  for (auto& [vpn, pte] : page_table_) {
    if (pte.present) {
      phys_->Unref(pte.pfn);
    }
  }
}

uint64_t AddressSpace::LockedAllocateVaRange(size_t length) {
  // Keep one guard page between ranges; align huge-capable regions naturally.
  const uint64_t base = AlignUp(next_va_, kHugePageSize);
  next_va_ = base + AlignUp(length, kPageSize) + kPageSize;
  return base;
}

StatusOr<uint64_t> AddressSpace::MapAnonymous(size_t length, std::string name, bool populate,
                                              bool huge) {
  if (length == 0) {
    return InvalidArgument("zero-length mapping");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (huge) {
    length = AlignUp(length, kHugePageSize);
  }
  const uint64_t base = LockedAllocateVaRange(length);
  Vma vma;
  vma.start = base;
  vma.length = AlignUp(length, kPageSize);
  vma.name = std::move(name);
  vma.huge = huge;
  vmas_.emplace(base, vma);
  if (populate) {
    for (uint64_t va = base; va < base + vma.length; va += kPageSize) {
      COPIER_CHECK_OK(LockedFaultIn(vmas_.at(base), va, nullptr));
    }
  }
  return base;
}

StatusOr<uint64_t> AddressSpace::MapSharedFrom(AddressSpace& other, uint64_t other_va,
                                               size_t length, bool writable) {
  if (!IsAligned(other_va, kPageSize)) {
    return InvalidArgument("shared mapping source must be page-aligned");
  }
  // Collect source frames first (other's lock), then install under our lock.
  const size_t pages = AlignUp(length, kPageSize) >> kPageShift;
  std::vector<Pfn> frames;
  frames.reserve(pages);
  {
    std::lock_guard<std::mutex> other_lock(other.mu_);
    for (size_t i = 0; i < pages; ++i) {
      auto it = other.page_table_.find(PageNumber(other_va) + i);
      if (it == other.page_table_.end() || !it->second.present) {
        return FailedPrecondition("shared mapping source page not present");
      }
      frames.push_back(it->second.pfn);
    }
    for (Pfn pfn : frames) {
      other.phys_->Ref(pfn);
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t base = LockedAllocateVaRange(pages << kPageShift);
  Vma vma;
  vma.start = base;
  vma.length = pages << kPageShift;
  vma.name = "shared";
  vma.writable = writable;
  vma.shared = true;
  vmas_.emplace(base, vma);
  for (size_t i = 0; i < pages; ++i) {
    Pte pte;
    pte.pfn = frames[i];
    pte.present = true;
    pte.writable = writable;
    page_table_[PageNumber(base) + i] = pte;
  }
  return base;
}

Status AddressSpace::Unmap(uint64_t va, size_t length) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = vmas_.find(va);
  if (it == vmas_.end() || it->second.length != AlignUp(length, kPageSize)) {
    return InvalidArgument("unmap must cover a whole mapping");
  }
  const Vma vma = it->second;
  for (uint64_t page_va = vma.start; page_va < vma.start + vma.length; page_va += kPageSize) {
    auto pit = page_table_.find(PageNumber(page_va));
    if (pit != page_table_.end()) {
      if (pit->second.pin_count > 0) {
        return FailedPrecondition("unmap of pinned page");
      }
      if (pit->second.present) {
        phys_->Unref(pit->second.pfn);
      }
      page_table_.erase(pit);
    }
  }
  LockedNotifyInvalidation(vma.start, vma.length);
  vmas_.erase(it);
  return OkStatus();
}

const AddressSpace::Vma* AddressSpace::LockedFindVma(uint64_t va) const {
  auto it = vmas_.upper_bound(va);
  if (it == vmas_.begin()) {
    return nullptr;
  }
  --it;
  const Vma& vma = it->second;
  if (va >= vma.start && va < vma.start + vma.length) {
    return &vma;
  }
  return nullptr;
}

Status AddressSpace::LockedFaultIn(const Vma& vma, uint64_t va, ExecContext* ctx) {
  ++minor_faults_;
  ChargeCtx(ctx, timing_->page_fault_entry_cycles);
  if (vma.huge) {
    // Fault the whole 2 MiB block with contiguous frames.
    const uint64_t block = AlignDown(va, kHugePageSize);
    const size_t frames = kHugePageSize >> kPageShift;
    auto base_or = phys_->AllocContiguous(frames);
    if (!base_or.ok()) {
      return base_or.status();
    }
    ChargeCtx(ctx, timing_->page_alloc_cycles * 4);  // buddy alloc of a 2 MiB block
    std::memset(phys_->FrameData(*base_or), 0, kHugePageSize);
    for (size_t i = 0; i < frames; ++i) {
      Pte pte;
      pte.pfn = *base_or + i;
      pte.present = true;
      pte.writable = vma.writable;
      page_table_[PageNumber(block) + i] = pte;
      if (i > 0) {
        phys_->Ref(pte.pfn);  // AllocContiguous set count 1 per frame already
        phys_->Unref(pte.pfn);
      }
    }
    return OkStatus();
  }
  auto pfn_or = phys_->AllocFrame();
  if (!pfn_or.ok()) {
    return pfn_or.status();
  }
  ChargeCtx(ctx, timing_->page_alloc_cycles);
  std::memset(phys_->FrameData(*pfn_or), 0, kPageSize);
  Pte pte;
  pte.pfn = *pfn_or;
  pte.present = true;
  pte.writable = vma.writable;
  page_table_[PageNumber(va)] = pte;
  return OkStatus();
}

Status AddressSpace::LockedBreakCow(uint64_t va, Pte& pte, ExecContext* ctx) {
  ++cow_faults_;
  ChargeCtx(ctx, timing_->page_fault_entry_cycles);
  const Vma* vma = LockedFindVma(va);
  const bool huge = vma != nullptr && vma->huge;
  const size_t block_size = huge ? kHugePageSize : kPageSize;
  const uint64_t block_va = AlignDown(va, block_size);
  const uint64_t first_vpn = PageNumber(block_va);
  const size_t pages = block_size >> kPageShift;

  // Fast path: sole owner — just restore write permission.
  bool sole_owner = true;
  bool was_aliased = false;
  for (size_t i = 0; i < pages; ++i) {
    auto it = page_table_.find(first_vpn + i);
    COPIER_CHECK(it != page_table_.end() && it->second.present);
    was_aliased |= it->second.aliased;
    if (phys_->RefCount(it->second.pfn) > 1) {
      sole_owner = false;
    }
  }
  if (was_aliased) {
    alias_cow_breaks_.fetch_add(1, std::memory_order_relaxed);
  }
  if (sole_owner) {
    for (size_t i = 0; i < pages; ++i) {
      page_table_[first_vpn + i].writable = true;
      page_table_[first_vpn + i].cow = false;
      page_table_[first_vpn + i].aliased = false;
    }
    return OkStatus();
  }

  // Copy path: new frames + page copy (via the pluggable hook so Copier can
  // accelerate it, §5.2), then remap.
  StatusOr<Pfn> base_or = huge ? phys_->AllocContiguous(pages) : phys_->AllocFrame();
  if (!base_or.ok()) {
    return base_or.status();
  }
  ChargeCtx(ctx, timing_->page_alloc_cycles * (huge ? 4 : 1));
  if (huge) {
    const Pte& old = page_table_[first_vpn];
    // Huge CoW blocks were allocated contiguously, so one bulk copy suffices.
    cow_copy_(phys_->FrameData(*base_or), phys_->FrameData(old.pfn), block_size, ctx);
  } else {
    cow_copy_(phys_->FrameData(*base_or), phys_->FrameData(pte.pfn), kPageSize, ctx);
  }
  for (size_t i = 0; i < pages; ++i) {
    Pte& entry = page_table_[first_vpn + i];
    phys_->Unref(entry.pfn);
    entry.pfn = *base_or + i;
    entry.writable = true;
    entry.cow = false;
    entry.aliased = false;
  }
  ChargeCtx(ctx, timing_->page_remap_cycles * pages / (huge ? 64 : 1) +
                     timing_->tlb_shootdown_cycles);
  LockedNotifyInvalidation(block_va, block_size);
  return OkStatus();
}

StatusOr<Pfn> AddressSpace::LockedTranslate(uint64_t va, bool for_write, ExecContext* ctx) {
  const Vma* vma = LockedFindVma(va);
  if (vma == nullptr) {
    return PermissionDenied("unmapped address");
  }
  if (for_write && !vma->writable) {
    return PermissionDenied("write to read-only mapping");
  }
  auto it = page_table_.find(PageNumber(va));
  if (it == page_table_.end() || !it->second.present) {
    COPIER_RETURN_IF_ERROR(LockedFaultIn(*vma, va, ctx));
    it = page_table_.find(PageNumber(va));
  }
  Pte& pte = it->second;
  if (for_write && (pte.cow || !pte.writable)) {
    COPIER_RETURN_IF_ERROR(LockedBreakCow(va, pte, ctx));
    it = page_table_.find(PageNumber(va));  // may have been rewritten
  }
  return it->second.pfn;
}

StatusOr<Pfn> AddressSpace::TranslateRead(uint64_t va, ExecContext* ctx) {
  std::lock_guard<std::mutex> lock(mu_);
  return LockedTranslate(va, /*for_write=*/false, ctx);
}

StatusOr<Pfn> AddressSpace::TranslateWrite(uint64_t va, ExecContext* ctx) {
  WaitForCopyLocks(va, 1);
  std::lock_guard<std::mutex> lock(mu_);
  return LockedTranslate(va, /*for_write=*/true, ctx);
}

bool AddressSpace::IsMapped(uint64_t va) const {
  std::lock_guard<std::mutex> lock(mu_);
  return LockedFindVma(va) != nullptr;
}

bool AddressSpace::IsResident(uint64_t va, bool for_write) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(PageNumber(va));
  if (it == page_table_.end() || !it->second.present) {
    return false;
  }
  if (for_write && (it->second.cow || !it->second.writable)) {
    return false;
  }
  return true;
}

StatusOr<PhysRun> AddressSpace::ResolveRun(uint64_t va, size_t max_length, bool for_write,
                                           ExecContext* ctx) {
  if (max_length == 0) {
    return InvalidArgument("zero-length run");
  }
  if (for_write) {
    WaitForCopyLocks(va, max_length);
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto first_or = LockedTranslate(va, for_write, ctx);
  if (!first_or.ok()) {
    return first_or.status();
  }
  PhysRun run;
  run.host = phys_->FrameData(*first_or) + PageOffset(va);
  run.length = std::min<size_t>(max_length, kPageSize - PageOffset(va));

  Pfn prev = *first_or;
  uint64_t next_va = PageBase(va) + kPageSize;
  while (run.length < max_length) {
    auto pfn_or = LockedTranslate(next_va, for_write, ctx);
    if (!pfn_or.ok()) {
      return pfn_or.status();  // whole range must be accessible
    }
    if (*pfn_or != prev + 1) {
      break;  // physical discontinuity: run ends here
    }
    run.length += std::min<size_t>(max_length - run.length, kPageSize);
    prev = *pfn_or;
    next_va += kPageSize;
  }
  return run;
}

Status AddressSpace::PinRange(uint64_t va, size_t length, bool for_write, ExecContext* ctx) {
  if (for_write) {
    WaitForCopyLocks(va, length);
  }
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t first = PageNumber(va);
  const uint64_t last = PageNumber(va + length - 1);
  for (uint64_t vpn = first; vpn <= last; ++vpn) {
    auto pfn_or = LockedTranslate(vpn << kPageShift, for_write, ctx);
    if (!pfn_or.ok()) {
      // Roll back pins taken so far.
      for (uint64_t undo = first; undo < vpn; ++undo) {
        --page_table_[undo].pin_count;
      }
      return pfn_or.status();
    }
    ++page_table_[vpn].pin_count;
    ChargeCtx(ctx, timing_->page_pin_cycles);
  }
  return OkStatus();
}

void AddressSpace::UnpinRange(uint64_t va, size_t length) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t first = PageNumber(va);
  const uint64_t last = PageNumber(va + length - 1);
  for (uint64_t vpn = first; vpn <= last; ++vpn) {
    auto it = page_table_.find(vpn);
    COPIER_CHECK(it != page_table_.end() && it->second.pin_count > 0);
    --it->second.pin_count;
  }
}

Status AddressSpace::ForEachChunk(uint64_t va, size_t length, bool for_write, ExecContext* ctx,
                                  const std::function<void(uint8_t*, size_t)>& fn) {
  if (for_write && length > 0) {
    WaitForCopyLocks(va, length);
  }
  while (length > 0) {
    StatusOr<Pfn> pfn_or = [&] {
      std::lock_guard<std::mutex> lock(mu_);
      return LockedTranslate(va, for_write, ctx);
    }();
    if (!pfn_or.ok()) {
      return pfn_or.status();
    }
    const size_t chunk = std::min<size_t>(length, kPageSize - PageOffset(va));
    fn(phys_->FrameData(*pfn_or) + PageOffset(va), chunk);
    va += chunk;
    length -= chunk;
  }
  return OkStatus();
}

Status AddressSpace::ReadBytes(uint64_t va, void* out, size_t length, ExecContext* ctx) {
  auto* dst = static_cast<uint8_t*>(out);
  return ForEachChunk(va, length, /*for_write=*/false, ctx, [&](uint8_t* host, size_t n) {
    std::memcpy(dst, host, n);
    dst += n;
  });
}

Status AddressSpace::WriteBytes(uint64_t va, const void* in, size_t length, ExecContext* ctx) {
  const auto* src = static_cast<const uint8_t*>(in);
  return ForEachChunk(va, length, /*for_write=*/true, ctx, [&](uint8_t* host, size_t n) {
    std::memcpy(host, src, n);
    src += n;
  });
}

int AddressSpace::LockRangeForCopy(uint64_t va, size_t length,
                                   std::function<void()> resolver) {
  COPIER_CHECK(resolver != nullptr);  // a lock nobody can resolve would spin forever
  std::lock_guard<std::mutex> lock(mu_);
  const int token = next_copy_lock_token_++;
  copy_locks_.emplace_back(token, CopyLock{va, length, std::move(resolver)});
  copy_locks_active_.store(copy_locks_.size(), std::memory_order_release);
  return token;
}

void AddressSpace::UnlockRangeForCopy(int token) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = copy_locks_.begin(); it != copy_locks_.end(); ++it) {
    if (it->first == token) {
      copy_locks_.erase(it);
      break;
    }
  }
  copy_locks_active_.store(copy_locks_.size(), std::memory_order_release);
}

bool AddressSpace::WriteLockedForCopy(uint64_t va, size_t length) const {
  if (copy_locks_active_.load(std::memory_order_acquire) == 0) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [token, cl] : copy_locks_) {
    if (RangesOverlap(va, length, cl.va, cl.length)) {
      return true;
    }
  }
  return false;
}

void AddressSpace::WaitForCopyLocks(uint64_t va, size_t length) {
  // Fast path: no live lock anywhere in this space (the common case — the
  // counter is only non-zero while a fused IPC copy is in flight).
  if (copy_locks_active_.load(std::memory_order_acquire) == 0) {
    return;
  }
  for (;;) {
    std::function<void()> resolver;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [token, cl] : copy_locks_) {
        if (RangesOverlap(va, length, cl.va, cl.length)) {
          resolver = cl.resolver;  // copy: the entry may die once mu_ drops
          break;
        }
      }
    }
    if (resolver == nullptr) {
      return;
    }
    copy_lock_waits_.fetch_add(1, std::memory_order_relaxed);
    resolver();
  }
}

StatusOr<std::unique_ptr<AddressSpace>> AddressSpace::ForkCow(uint32_t child_asid) {
  std::lock_guard<std::mutex> lock(mu_);
  auto child = std::make_unique<AddressSpace>(phys_, child_asid, timing_);
  child->vmas_ = vmas_;
  child->next_va_ = next_va_;
  for (auto& [vpn, pte] : page_table_) {
    if (!pte.present) {
      continue;
    }
    if (pte.pin_count > 0) {
      return FailedPrecondition("fork while pages are pinned for copy");
    }
    // Shared mappings stay shared-writable; anon pages go CoW on both sides.
    const Vma* vma = LockedFindVma(vpn << kPageShift);
    const bool shared = vma != nullptr && vma->shared;
    Pte child_pte = pte;
    if (!shared && pte.writable) {
      pte.writable = false;
      pte.cow = true;
      child_pte.writable = false;
      child_pte.cow = true;
    }
    child_pte.pin_count = 0;
    phys_->Ref(pte.pfn);
    child->page_table_[vpn] = child_pte;
  }
  LockedNotifyInvalidation(0, SIZE_MAX);  // permissions changed broadly
  return child;
}

Status AddressSpace::AliasCowRange(uint64_t dst_va, uint64_t src_va, size_t length,
                                   ExecContext* ctx) {
  return AliasCowRangeFrom(*this, dst_va, src_va, length, ctx);
}

Status AddressSpace::AliasCowRangeFrom(AddressSpace& src_space, uint64_t dst_va, uint64_t src_va,
                                       size_t length, ExecContext* ctx) {
  if (length == 0 || !IsAligned(dst_va, kPageSize) || !IsAligned(src_va, kPageSize) ||
      !IsAligned(length, kPageSize)) {
    return InvalidArgument("alias range must be page-aligned and a page multiple");
  }
  if (&src_space == this && RangesOverlap(dst_va, length, src_va, length)) {
    return InvalidArgument("alias of overlapping same-space ranges");
  }
  if (src_space.phys_ != phys_) {
    return FailedPrecondition("alias across physical memories");
  }
  std::unique_lock<std::mutex> dst_lock(mu_, std::defer_lock);
  std::unique_lock<std::mutex> src_lock(src_space.mu_, std::defer_lock);
  if (&src_space == this) {
    dst_lock.lock();
  } else {
    std::lock(dst_lock, src_lock);
  }

  // Validate everything before touching a single PTE: the caller falls back
  // to a physical copy on failure, so a half-aliased range must never be
  // left behind.
  const Vma* dvma = LockedFindVma(dst_va);
  if (dvma == nullptr || dst_va + length > dvma->start + dvma->length) {
    return FailedPrecondition("alias destination not covered by one mapping");
  }
  const Vma* svma = src_space.LockedFindVma(src_va);
  if (svma == nullptr || src_va + length > svma->start + svma->length) {
    return FailedPrecondition("alias source not covered by one mapping");
  }
  // Huge mappings break CoW in whole physically contiguous 2 MiB blocks
  // (LockedBreakCow), which aliased frames cannot honor; shared mappings
  // must keep their frames visible to co-mappers.
  if (!dvma->writable || dvma->huge || dvma->shared || svma->huge || svma->shared) {
    return FailedPrecondition("alias endpoints must be private, non-huge, writable-dst");
  }
  const size_t pages = length >> kPageShift;
  for (size_t i = 0; i < pages; ++i) {
    auto dit = page_table_.find(PageNumber(dst_va) + i);
    if (dit != page_table_.end() && dit->second.pin_count > 0) {
      return FailedPrecondition("alias destination page pinned");
    }
    auto sit = src_space.page_table_.find(PageNumber(src_va) + i);
    if (sit != src_space.page_table_.end() && sit->second.pin_count > 0) {
      return FailedPrecondition("alias source page pinned");
    }
  }
  // Fault absent source pages in (zero-fill) so every destination page has a
  // frame to share; charged like any demand fault.
  for (size_t i = 0; i < pages; ++i) {
    const uint64_t va = src_va + (i << kPageShift);
    auto it = src_space.page_table_.find(PageNumber(va));
    if (it == src_space.page_table_.end() || !it->second.present) {
      COPIER_RETURN_IF_ERROR(src_space.LockedFaultIn(*svma, va, ctx));
    }
  }

  // Commit: point destination PTEs at the source frames and write-protect
  // both sides. The new reference is taken before the old destination frame
  // is dropped so re-aliasing the same pair stays balanced.
  for (size_t i = 0; i < pages; ++i) {
    Pte& spte = src_space.page_table_[PageNumber(src_va) + i];
    phys_->Ref(spte.pfn);
    spte.writable = false;
    spte.cow = true;
    spte.aliased = true;
    Pte& dpte = page_table_[PageNumber(dst_va) + i];
    if (dpte.present) {
      phys_->Unref(dpte.pfn);
    }
    dpte.pfn = spte.pfn;
    dpte.present = true;
    dpte.writable = false;
    dpte.cow = true;
    dpte.aliased = true;
  }
  ChargeCtx(ctx, timing_->page_remap_cycles * pages + timing_->tlb_shootdown_cycles);
  LockedNotifyInvalidation(dst_va, length);
  if (&src_space == this) {
    LockedNotifyInvalidation(src_va, length);
  } else {
    src_space.LockedNotifyInvalidation(src_va, length);
  }
  return OkStatus();
}

int AddressSpace::AddInvalidationListener(InvalidationFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  const int token = next_listener_token_++;
  listeners_.emplace_back(token, std::move(fn));
  return token;
}

void AddressSpace::RemoveInvalidationListener(int token) {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(listeners_, [token](const auto& entry) { return entry.first == token; });
}

void AddressSpace::LockedNotifyInvalidation(uint64_t va, size_t length) {
  for (const auto& [token, fn] : listeners_) {
    fn(asid_, va, length);
  }
}

uint64_t AddressSpace::resident_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t count = 0;
  for (const auto& [vpn, pte] : page_table_) {
    count += pte.present ? 1 : 0;
  }
  return count;
}

}  // namespace copier::simos
