// SimFs — a minimal in-memory filesystem with a page cache, providing the
// read(2) path the paper's libpng workload exercises (Fig. 2/3, §7 "file
// I/O" applicability): file reads copy from kernel page-cache blocks into
// the user buffer through the pluggable copy backend, so Copier-Linux turns
// them into asynchronous k-mode tasks exactly like recv().
#ifndef COPIER_SRC_SIMOS_SIMFS_H_
#define COPIER_SRC_SIMOS_SIMFS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/simos/kernel.h"

namespace copier::simos {

class SimFs {
 public:
  explicit SimFs(SimKernel* kernel) : kernel_(kernel) {}

  // Creates (or replaces) a file with the given contents.
  void CreateFile(const std::string& name, const std::vector<uint8_t>& bytes);

  StatusOr<int> Open(const std::string& name);

  // read(2): copies up to `length` bytes from the file's page cache at the
  // fd's offset into [va, va+length). `descriptor` (nullable) is the
  // libCopier descriptor async reads report into.
  StatusOr<size_t> Read(Process& proc, int fd, uint64_t va, size_t length, ExecContext* ctx,
                        void* descriptor = nullptr);

  // Sets the fd's offset (SEEK_SET).
  Status Seek(int fd, size_t offset);

  size_t FileSize(const std::string& name) const;

 private:
  struct File {
    // Page-cache backing: one contiguous kernel allocation (block-aligned),
    // physically contiguous by construction like the binder buffers.
    std::unique_ptr<uint8_t[]> cache;
    size_t size = 0;
  };
  struct OpenFile {
    File* file = nullptr;
    size_t offset = 0;
  };

  SimKernel* kernel_;
  std::map<std::string, File> files_;
  std::vector<OpenFile> open_files_;
};

}  // namespace copier::simos

#endif  // COPIER_SRC_SIMOS_SIMFS_H_
