// PhysicalMemory — the simulated machine's frame pool.
//
// One host allocation backs all simulated physical frames; a frame number
// (pfn) indexes into it. The allocator can run in sequential mode (adjacent
// allocations get adjacent frames — the common case after boot) or fragmented
// mode (randomized free-list — stresses the dispatcher's subtask splitting,
// Fig. 7-b, since DMA needs physical contiguity).
#ifndef COPIER_SRC_SIMOS_PHYS_MEMORY_H_
#define COPIER_SRC_SIMOS_PHYS_MEMORY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/align.h"
#include "src/common/rng.h"
#include "src/common/status.h"

namespace copier::simos {

using Pfn = uint64_t;

class PhysicalMemory {
 public:
  enum class AllocPolicy {
    kSequential,  // first-fit ascending: contiguous ranges likely
    kFragmented,  // randomized: adjacent allocations rarely contiguous
  };

  explicit PhysicalMemory(size_t bytes, AllocPolicy policy = AllocPolicy::kSequential,
                          uint64_t seed = 1);

  PhysicalMemory(const PhysicalMemory&) = delete;
  PhysicalMemory& operator=(const PhysicalMemory&) = delete;

  StatusOr<Pfn> AllocFrame();
  // Tries to allocate `count` physically contiguous frames (used by the skb
  // pool and 2 MiB CoW pages). Falls back with kResourceExhausted.
  StatusOr<Pfn> AllocContiguous(size_t count);
  void FreeFrame(Pfn pfn);

  uint8_t* FrameData(Pfn pfn) {
    return slab_.get() + (pfn << kPageShift);
  }
  const uint8_t* FrameData(Pfn pfn) const { return slab_.get() + (pfn << kPageShift); }

  size_t total_frames() const { return total_frames_; }
  size_t free_frames() const { return free_list_.size(); }

  // Frame reference counting — shared CoW frames have count > 1.
  void Ref(Pfn pfn) { ++refcount_[pfn]; }
  // Decrements; frees the frame when the count reaches zero.
  void Unref(Pfn pfn);
  uint32_t RefCount(Pfn pfn) const { return refcount_[pfn]; }

 private:
  size_t total_frames_;
  AllocPolicy policy_;
  std::unique_ptr<uint8_t[]> slab_;
  std::vector<Pfn> free_list_;  // treated as stack (sequential) or sampled (fragmented)
  std::vector<uint32_t> refcount_;
  Rng rng_;
};

}  // namespace copier::simos

#endif  // COPIER_SRC_SIMOS_PHYS_MEMORY_H_
