#include "src/simos/copy_backend.h"

#include "src/hw/copy_unit.h"

namespace copier::simos {

Status KernelCopyBackend::CopyV(const UserCopyVecOp& op, size_t* segs_submitted) {
  // Default: unroll into per-segment ops — one barrier check, one submission
  // charge and one doorbell per segment, exactly the pre-vectored behaviour.
  UserCopyOp seg_op;
  seg_op.proc = op.proc;
  seg_op.to_user = op.to_user;
  seg_op.descriptor = op.descriptor;
  seg_op.lazy = op.lazy;
  seg_op.ctx = op.ctx;
  uint64_t va = op.user_va;
  size_t descriptor_offset = op.descriptor_offset;
  size_t submitted = 0;
  for (const UserCopySeg& seg : op.segs) {
    seg_op.user_va = va;
    seg_op.kernel_buf = seg.kernel_buf;
    seg_op.length = seg.length;
    seg_op.descriptor_offset = descriptor_offset;
    seg_op.on_complete = seg.on_complete;
    Status status = Copy(seg_op);
    if (!status.ok()) {
      if (segs_submitted != nullptr) {
        *segs_submitted = submitted;
      }
      return status;
    }
    ++submitted;
    va += seg.length;
    descriptor_offset += seg.length;
  }
  if (segs_submitted != nullptr) {
    *segs_submitted = submitted;
  }
  return OkStatus();
}

Status SyncErmsBackend::Copy(const UserCopyOp& op) {
  // The blocking kernel copy: walk the user range page by page (faulting on
  // demand, exactly like copy_{to,from}_user) and move bytes with ERMS.
  Status status;
  if (op.to_user) {
    const uint8_t* src = op.kernel_buf;
    status = op.proc->mem().ForEachChunk(op.user_va, op.length, /*for_write=*/true, op.ctx,
                                         [&](uint8_t* host, size_t n) {
                                           hw::ErmsCopy(host, src, n);
                                           src += n;
                                         });
  } else {
    uint8_t* dst = op.kernel_buf;
    status = op.proc->mem().ForEachChunk(op.user_va, op.length, /*for_write=*/false, op.ctx,
                                         [&](uint8_t* host, size_t n) {
                                           hw::ErmsCopy(dst, host, n);
                                           dst += n;
                                         });
  }
  if (!status.ok()) {
    return status;
  }
  ChargeCtx(op.ctx, timing_->CpuCopyCycles(hw::CopyUnitKind::kErms, op.length));
  if (op.on_complete) {
    op.on_complete(CtxNow(op.ctx));  // synchronous backend: completion is immediate
  }
  return OkStatus();
}

}  // namespace copier::simos
