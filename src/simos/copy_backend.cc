#include "src/simos/copy_backend.h"

#include "src/hw/copy_unit.h"

namespace copier::simos {

Status SyncErmsBackend::Copy(const UserCopyOp& op) {
  // The blocking kernel copy: walk the user range page by page (faulting on
  // demand, exactly like copy_{to,from}_user) and move bytes with ERMS.
  Status status;
  if (op.to_user) {
    const uint8_t* src = op.kernel_buf;
    status = op.proc->mem().ForEachChunk(op.user_va, op.length, /*for_write=*/true, op.ctx,
                                         [&](uint8_t* host, size_t n) {
                                           hw::ErmsCopy(host, src, n);
                                           src += n;
                                         });
  } else {
    uint8_t* dst = op.kernel_buf;
    status = op.proc->mem().ForEachChunk(op.user_va, op.length, /*for_write=*/false, op.ctx,
                                         [&](uint8_t* host, size_t n) {
                                           hw::ErmsCopy(dst, host, n);
                                           dst += n;
                                         });
  }
  if (!status.ok()) {
    return status;
  }
  ChargeCtx(op.ctx, timing_->CpuCopyCycles(hw::CopyUnitKind::kErms, op.length));
  if (op.on_complete) {
    op.on_complete(CtxNow(op.ctx));  // synchronous backend: completion is immediate
  }
  return OkStatus();
}

}  // namespace copier::simos
