// KernelCopyBackend — the pluggable user↔kernel copy mechanism.
//
// Every simulated syscall that moves data across the privilege boundary
// (send/recv, Binder, CoW) funnels through this interface. Implementations:
//   * SyncErmsBackend (here)     — stock-Linux behaviour: blocking `rep movsb`
//     with modeled cost; this is the paper's baseline.
//   * CopierKernelBackend (src/core/linux_glue.h) — submits asynchronous Copy
//     Tasks to the process's k-mode queue with the app-provided descriptor
//     and a KFUNC completion handler (§5.2).
#ifndef COPIER_SRC_SIMOS_COPY_BACKEND_H_
#define COPIER_SRC_SIMOS_COPY_BACKEND_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/exec_context.h"
#include "src/common/status.h"
#include "src/simos/process.h"

namespace copier::simos {

struct UserCopyOp {
  Process* proc = nullptr;
  uint64_t user_va = 0;       // user-side address
  uint8_t* kernel_buf = nullptr;  // kernel-side host buffer (physically contiguous)
  size_t length = 0;
  bool to_user = false;  // true: kernel_buf -> user_va (recv); false: user -> kernel (send)

  // Asynchronous-copy extras (ignored by synchronous backends):
  void* descriptor = nullptr;      // app-provided descriptor (core::Descriptor*)
  size_t descriptor_offset = 0;    // byte offset of this op within the descriptor
  // KFUNC invoked when the copy completes (e.g. reclaim the skb, §4.1); the
  // argument is the completion time on the executing context's clock.
  std::function<void(Cycles)> on_complete;
  bool lazy = false;  // Lazy Copy Task (§4.4): mediator for absorption

  ExecContext* ctx = nullptr;  // the syscall's execution context (time charging)
};

// One kernel-side segment of a vectored copy: a contiguous buffer plus the
// completion KFUNC that fires when every byte of the segment has landed.
struct UserCopySeg {
  uint8_t* kernel_buf = nullptr;
  size_t length = 0;
  std::function<void(Cycles)> on_complete;
};

// A syscall's full op-list (vectored submission): the user side is the single
// contiguous range [user_va, user_va + total_length()); the kernel side is
// `segs` in order. Send/Recv/Binder always build one of these per syscall;
// whether it becomes one scatter-gather Copy Task or degenerates to per-
// segment Copy() calls is the backend's choice.
struct UserCopyVecOp {
  Process* proc = nullptr;
  uint64_t user_va = 0;
  bool to_user = false;  // true: segments -> user (recv); false: user -> segments (send)

  void* descriptor = nullptr;    // app-provided descriptor covering the user range
  size_t descriptor_offset = 0;  // byte offset of the op within the descriptor
  bool lazy = false;
  ExecContext* ctx = nullptr;

  std::vector<UserCopySeg> segs;

  size_t total_length() const {
    size_t sum = 0;
    for (const UserCopySeg& seg : segs) {
      sum += seg.length;
    }
    return sum;
  }
};

class KernelCopyBackend {
 public:
  virtual ~KernelCopyBackend() = default;

  virtual Status Copy(const UserCopyOp& op) = 0;

  // Vectored copy. The default unrolls the op-list into per-segment Copy()
  // calls (synchronous backends and the per-skb ablation baseline); Copier
  // overrides it with a single scatter-gather Copy Task + one doorbell.
  // Returns the first per-segment error, with earlier segments already
  // submitted (matching the historical per-op loop in Send/Recv); when
  // `segs_submitted` is non-null it reports how many leading segments were
  // accepted, so callers can reclaim the buffers of the rest.
  virtual Status CopyV(const UserCopyVecOp& op, size_t* segs_submitted = nullptr);

  // Ensures all pending kernel-side copies for `proc` whose destination the
  // kernel itself is about to consume are done (e.g. send: driver syncs
  // before enqueueing packets into NIC TX queues, §5.2).
  virtual Status SyncKernel(Process* proc, ExecContext* ctx) { return OkStatus(); }

  virtual const char* name() const = 0;
};

// Baseline: synchronous ERMS copy_to_user/copy_from_user with modeled cost.
class SyncErmsBackend : public KernelCopyBackend {
 public:
  explicit SyncErmsBackend(const hw::TimingModel* timing) : timing_(timing) {}

  Status Copy(const UserCopyOp& op) override;
  const char* name() const override { return "sync-erms"; }

 private:
  const hw::TimingModel* timing_;
};

}  // namespace copier::simos

#endif  // COPIER_SRC_SIMOS_COPY_BACKEND_H_
