// KernelCopyBackend — the pluggable user↔kernel copy mechanism.
//
// Every simulated syscall that moves data across the privilege boundary
// (send/recv, Binder, CoW) funnels through this interface. Implementations:
//   * SyncErmsBackend (here)     — stock-Linux behaviour: blocking `rep movsb`
//     with modeled cost; this is the paper's baseline.
//   * CopierKernelBackend (src/core/linux_glue.h) — submits asynchronous Copy
//     Tasks to the process's k-mode queue with the app-provided descriptor
//     and a KFUNC completion handler (§5.2).
#ifndef COPIER_SRC_SIMOS_COPY_BACKEND_H_
#define COPIER_SRC_SIMOS_COPY_BACKEND_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/exec_context.h"
#include "src/common/status.h"
#include "src/simos/process.h"

namespace copier::simos {

struct UserCopyOp {
  Process* proc = nullptr;
  uint64_t user_va = 0;       // user-side address
  uint8_t* kernel_buf = nullptr;  // kernel-side host buffer (physically contiguous)
  size_t length = 0;
  bool to_user = false;  // true: kernel_buf -> user_va (recv); false: user -> kernel (send)

  // Asynchronous-copy extras (ignored by synchronous backends):
  void* descriptor = nullptr;      // app-provided descriptor (core::Descriptor*)
  size_t descriptor_offset = 0;    // byte offset of this op within the descriptor
  // KFUNC invoked when the copy completes (e.g. reclaim the skb, §4.1); the
  // argument is the completion time on the executing context's clock.
  std::function<void(Cycles)> on_complete;
  bool lazy = false;  // Lazy Copy Task (§4.4): mediator for absorption

  ExecContext* ctx = nullptr;  // the syscall's execution context (time charging)
};

// One kernel-side segment of a vectored copy: a contiguous buffer plus the
// completion KFUNC that fires when every byte of the segment has landed.
struct UserCopySeg {
  uint8_t* kernel_buf = nullptr;
  size_t length = 0;
  std::function<void(Cycles)> on_complete;
};

// A syscall's full op-list (vectored submission): the user side is the single
// contiguous range [user_va, user_va + total_length()); the kernel side is
// `segs` in order. Send/Recv/Binder always build one of these per syscall;
// whether it becomes one scatter-gather Copy Task or degenerates to per-
// segment Copy() calls is the backend's choice.
struct UserCopyVecOp {
  Process* proc = nullptr;
  uint64_t user_va = 0;
  bool to_user = false;  // true: segments -> user (recv); false: user -> segments (send)

  // Client whose queue carries the task (null = `proc`). The posted-window
  // two-step path submits the drain into the *receiver's* window from the
  // *sender's* syscall; riding the sender's queue keeps both halves FIFO-
  // ordered on one client and never touches the receiver's syscall state.
  // The user side above still resolves in `proc`'s address space.
  Process* submit_proc = nullptr;

  void* descriptor = nullptr;    // app-provided descriptor covering the user range
  size_t descriptor_offset = 0;  // byte offset of the op within the descriptor
  bool lazy = false;
  ExecContext* ctx = nullptr;

  std::vector<UserCopySeg> segs;

  size_t total_length() const {
    size_t sum = 0;
    for (const UserCopySeg& seg : segs) {
      sum += seg.length;
    }
    return sum;
  }
};

// One flow-control chunk of a fused transfer: `length` bytes whose reclaim
// KFUNC (release the skb/parcel-buffer token) fires when every byte of the
// chunk has landed in the receiver's window — the same per-segment firing
// order the two-step path produces.
struct FusedChunk {
  size_t length = 0;
  std::function<void(Cycles)> on_complete;
};

// A fused IPC transfer (DESIGN.md §12): one direct src→dst copy across two
// address spaces, skipping the intermediate kernel buffer entirely. Built by
// Send/Transact when the receiver's window is posted.
struct FusedCopyOp {
  Process* src_proc = nullptr;  // sender; the task rides this client's queue
  uint64_t src_va = 0;
  Process* dst_proc = nullptr;  // receiver owning the posted window
  uint64_t dst_va = 0;
  size_t length = 0;

  void* descriptor = nullptr;  // receiver's window descriptor (core::Descriptor*)
  size_t descriptor_offset = 0;
  std::vector<FusedChunk> chunks;  // lengths sum to `length`
  // Write-protect the sender's source range until the fused copy lands, so a
  // sender-side store after "send returned" cannot leak into the receiver's
  // image (the two-step path snapshots into skbs). The protected range is the
  // user-sourced payload only: [src_va, src_va + length - prefix bytes).
  bool protect_src = true;

  // Proxy-transparent forwarding (DESIGN.md §12): kernel-resident header
  // bytes spliced in front of the user payload at [src_va, ...). When set,
  // `length` = src_prefix->size() + payload bytes and the engine reads the
  // first prefix bytes from this buffer instead of the sender's space.
  std::shared_ptr<const std::vector<uint8_t>> src_prefix;
  // Descriptor of the window the message was forwarded *through* (the proxy's
  // posted window): settled for [0, bypassed_length) when the fused transfer
  // completes, so a csync against the bypassed window never hangs even though
  // no bytes ever land there.
  void* bypassed_descriptor = nullptr;
  size_t bypassed_length = 0;

  ExecContext* ctx = nullptr;
};

// Send-time routing decision on a fuse-capable backend (service observability;
// CopierService::IpcFuseStats).
enum class FuseEvent : uint8_t {
  kFused = 0,              // dispatched as one fused task
  kFallbackNotPosted,      // receiver window absent → classic two-step
  kFallbackWindowFull,     // window present but full / too small
  kFallbackPoolExhausted,  // no skb/buffer flow-control token available
  kFallbackRing,           // submission ring full → posted two-step
  kForwardFused,           // forwarded: one src→destination-window task
  kFallbackForward,        // forward rule present but declined/unclaimable →
                           // the message lands in the window (app-level path)
  kRingWindowPosted,       // a window posted behind an already-posted one
  kRingRollover,           // one send spilled into the ring's next window
};

class KernelCopyBackend {
 public:
  virtual ~KernelCopyBackend() = default;

  virtual Status Copy(const UserCopyOp& op) = 0;

  // Vectored copy. The default unrolls the op-list into per-segment Copy()
  // calls (synchronous backends and the per-skb ablation baseline); Copier
  // overrides it with a single scatter-gather Copy Task + one doorbell.
  // Returns the first per-segment error, with earlier segments already
  // submitted (matching the historical per-op loop in Send/Recv); when
  // `segs_submitted` is non-null it reports how many leading segments were
  // accepted, so callers can reclaim the buffers of the rest.
  virtual Status CopyV(const UserCopyVecOp& op, size_t* segs_submitted = nullptr);

  // Fused IPC (DESIGN.md §12). A fuse-capable backend turns a FusedCopyOp
  // into one cross-address-space Copy Task whose per-chunk KFUNCs fire in
  // order as bytes land. Backends that cannot (the synchronous baseline, the
  // enable_ipc_fuse ablation) report !SupportsFusedIpc() and the kernel keeps
  // the two-step path. CopyFused may fail with ResourceExhausted (submission
  // ring full) — no side effects in that case; the caller falls back.
  virtual bool SupportsFusedIpc() const { return false; }
  virtual Status CopyFused(const FusedCopyOp& op) {
    (void)op;
    return Unimplemented("backend cannot fuse IPC transfers");
  }
  // Multi-window receive ring (DESIGN.md §12): whether endpoints may hold
  // more than one posted window at a time. A kernel capability rather than a
  // fuse capability — ring windows work with the two-step path too — but the
  // Copier backend gates it on the enable_recv_ring ablation flag. The
  // synchronous baseline keeps rings on so ring semantics do not depend on
  // which backend is installed.
  virtual bool SupportsRecvRing() const { return true; }
  // Proxy-transparent forwarding (DESIGN.md §12): whether a forward-posted
  // window may dispatch a prefix-spliced src→destination-window CopyFused.
  // Requires fused IPC; off on synchronous backends and under the
  // enable_forward_fuse ablation.
  virtual bool SupportsForwardFuse() const { return false; }
  // Send-time routing observability; fuse-capable backends forward these to
  // the service's IpcFuseStats counters.
  virtual void NoteFuseEvent(FuseEvent event) { (void)event; }

  // Window registration (DESIGN.md §12): called when a receive window is
  // posted. A fuse-capable backend treats the post like an RDMA memory
  // registration — it walks the window's pages once, faulting them in and
  // publishing their translations to the service's address-transfer cache,
  // so the fused copy's DMA engines hit warm translations instead of paying
  // per-page walks on the transfer's critical path. The walk is charged to
  // the receiver's context here, where it overlaps the peer's send.
  virtual void RegisterWindow(Process* proc, uint64_t va, size_t length, ExecContext* ctx) {
    (void)proc;
    (void)va;
    (void)length;
    (void)ctx;
  }

  // Ensures all pending kernel-side copies for `proc` whose destination the
  // kernel itself is about to consume are done (e.g. send: driver syncs
  // before enqueueing packets into NIC TX queues, §5.2).
  virtual Status SyncKernel(Process* proc, ExecContext* ctx) { return OkStatus(); }

  virtual const char* name() const = 0;
};

// Baseline: synchronous ERMS copy_to_user/copy_from_user with modeled cost.
class SyncErmsBackend : public KernelCopyBackend {
 public:
  explicit SyncErmsBackend(const hw::TimingModel* timing) : timing_(timing) {}

  Status Copy(const UserCopyOp& op) override;
  const char* name() const override { return "sync-erms"; }

 private:
  const hw::TimingModel* timing_;
};

}  // namespace copier::simos

#endif  // COPIER_SRC_SIMOS_COPY_BACKEND_H_
