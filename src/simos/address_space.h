// AddressSpace — simulated per-process virtual memory (page table + VMAs).
//
// Reproduces the memory-subsystem features Copier must coordinate with
// (§4.5.4): on-demand zero-fill paging, copy-on-write after fork, page
// pinning (mapping locked for the duration of a copy), shared mappings
// (Binder/shm), and mapping-change invalidation callbacks (consumed by the
// ATCache, §4.3). All methods are thread-safe: the Copier service translates
// and pins pages of client address spaces concurrently with the owning
// process faulting pages in.
//
// Simulated virtual addresses are plain integers; host backing is reached by
// translating to a frame and indexing PhysicalMemory. VA 0 is never mapped.
#ifndef COPIER_SRC_SIMOS_ADDRESS_SPACE_H_
#define COPIER_SRC_SIMOS_ADDRESS_SPACE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include <atomic>

#include "src/common/align.h"
#include "src/common/exec_context.h"
#include "src/common/status.h"
#include "src/hw/timing_model.h"
#include "src/simos/phys_memory.h"

namespace copier::simos {

inline constexpr size_t kHugePageSize = 2 * kMiB;

// A physically contiguous piece of a virtual range: the dispatcher's subtask
// unit (Fig. 7-b).
struct PhysRun {
  uint8_t* host = nullptr;  // host pointer to the first byte
  size_t length = 0;        // contiguous bytes available (<= requested)
};

class AddressSpace {
 public:
  // Fired when a VA range's mapping changes (unmap, CoW break, remap):
  // (asid, first VA affected, byte length).
  using InvalidationFn = std::function<void(uint32_t, uint64_t, size_t)>;
  // Page-copy hook used by the CoW break path; Copier-Linux installs an
  // accelerated implementation (§5.2). Defaults to ERMS + modeled charge.
  using PageCopyFn = std::function<void(void* dst, const void* src, size_t len, ExecContext* ctx)>;

  AddressSpace(PhysicalMemory* phys, uint32_t asid, const hw::TimingModel* timing);
  ~AddressSpace();

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  uint32_t asid() const { return asid_; }
  PhysicalMemory* phys() { return phys_; }

  // --- VMA management -------------------------------------------------------

  // Maps `length` bytes of anonymous zero-fill memory; returns the base VA.
  // `populate` pre-faults all pages (like MAP_POPULATE). `huge` uses 2 MiB
  // fault granularity with physically contiguous backing.
  StatusOr<uint64_t> MapAnonymous(size_t length, std::string name, bool populate = false,
                                  bool huge = false);

  // Maps the frames backing [other_va, other_va+length) of `other` into this
  // space (shared memory / Binder buffer mapping). Pages must be present in
  // `other`. Returns the base VA here.
  StatusOr<uint64_t> MapSharedFrom(AddressSpace& other, uint64_t other_va, size_t length,
                                   bool writable);

  Status Unmap(uint64_t va, size_t length);

  // --- Translation and faults ------------------------------------------------

  // Translates for read/write, faulting pages in on demand (zero-fill) and
  // breaking CoW on writes. Charges fault costs to `ctx`. Fails with
  // kPermissionDenied for unmapped or read-only-written addresses.
  StatusOr<Pfn> TranslateRead(uint64_t va, ExecContext* ctx);
  StatusOr<Pfn> TranslateWrite(uint64_t va, ExecContext* ctx);

  bool IsMapped(uint64_t va) const;
  // Present and, if `for_write`, writable without a CoW break.
  bool IsResident(uint64_t va, bool for_write) const;

  // Longest physically contiguous run starting at `va`, at most `max_length`
  // bytes, after faulting in pages. Used by the dispatcher to form subtasks.
  StatusOr<PhysRun> ResolveRun(uint64_t va, size_t max_length, bool for_write, ExecContext* ctx);

  // --- Pinning (proactive fault handling, §4.5.4) ----------------------------

  Status PinRange(uint64_t va, size_t length, bool for_write, ExecContext* ctx);
  void UnpinRange(uint64_t va, size_t length);

  // --- Byte access helpers (app-side) ----------------------------------------

  Status ReadBytes(uint64_t va, void* out, size_t length, ExecContext* ctx = nullptr);
  Status WriteBytes(uint64_t va, const void* in, size_t length, ExecContext* ctx = nullptr);
  // Invokes fn(host_chunk, chunk_len) over page-bounded chunks of the range.
  Status ForEachChunk(uint64_t va, size_t length, bool for_write, ExecContext* ctx,
                      const std::function<void(uint8_t*, size_t)>& fn);

  // --- Fork / CoW -------------------------------------------------------------

  // Duplicates this space with copy-on-write semantics (shared frames, both
  // sides' writable anon pages downgraded to read-only CoW).
  StatusOr<std::unique_ptr<AddressSpace>> ForkCow(uint32_t child_asid);

  // Satisfies a copy by aliasing instead of moving bytes (remap tier,
  // DESIGN.md §11): points the PTEs of [dst_va, dst_va+length) at the frames
  // backing [src_va, src_va+length) and write-protects both sides CoW-style,
  // exactly like a fork of just that range. Both addresses must be
  // page-aligned and `length` a page multiple; both ranges must lie in
  // private, non-huge mappings with no pinned pages, the destination mapping
  // must be writable, and same-space ranges must not overlap. Absent source
  // pages are faulted in (zero-fill) first; absent destination pages are
  // allowed. Validation happens before any PTE is touched, so on error no
  // partial alias is left behind. Fires invalidation listeners for both
  // ranges and charges remap + shootdown cycles to `ctx`.
  Status AliasCowRange(uint64_t dst_va, uint64_t src_va, size_t length, ExecContext* ctx);
  // Cross-space variant: source range lives in `src_space` (which must share
  // this space's PhysicalMemory). `AliasCowRange` is the same-space shorthand.
  Status AliasCowRangeFrom(AddressSpace& src_space, uint64_t dst_va, uint64_t src_va,
                           size_t length, ExecContext* ctx);

  void SetCowCopyFn(PageCopyFn fn) { cow_copy_ = std::move(fn); }

  // --- Fused-IPC source write-protection (DESIGN.md §12) ----------------------

  // Write-protects [va, va+length) until UnlockRangeForCopy: any write-side
  // access (TranslateWrite, for_write ResolveRun/PinRange/ForEachChunk,
  // WriteBytes) overlapping the range blocks by invoking `resolver` — which
  // must make forward progress on the in-flight fused copy (pump the service
  // in manual mode, yield to the copier threads in threaded mode) — until the
  // lock is released. Reads are unaffected, as is the engine itself: the
  // locked range is only ever the *source* of the in-flight copy, and the
  // engine's internal remap/fault paths do not route through the public write
  // entry points. Returns a token for UnlockRangeForCopy.
  int LockRangeForCopy(uint64_t va, size_t length, std::function<void()> resolver);
  void UnlockRangeForCopy(int token);
  // True when any live copy-lock overlaps [va, va+length).
  bool WriteLockedForCopy(uint64_t va, size_t length) const;
  uint64_t copy_lock_waits() const {
    return copy_lock_waits_.load(std::memory_order_relaxed);
  }

  // --- Invalidation listeners -------------------------------------------------

  int AddInvalidationListener(InvalidationFn fn);
  void RemoveInvalidationListener(int token);

  // --- Stats -------------------------------------------------------------------

  uint64_t minor_faults() const { return minor_faults_; }
  uint64_t cow_faults() const { return cow_faults_; }
  // CoW breaks whose block contained at least one remap-aliased page, i.e.
  // lazily materialized copies of the remap tier. Atomic because the engine
  // samples it while app threads fault concurrently.
  uint64_t alias_cow_breaks() const { return alias_cow_breaks_.load(std::memory_order_relaxed); }
  uint64_t resident_pages() const;

 private:
  struct Pte {
    Pfn pfn = 0;
    bool present = false;
    bool writable = false;
    bool cow = false;
    bool aliased = false;  // CoW share came from AliasCowRange, not fork
    uint16_t pin_count = 0;
  };

  struct Vma {
    uint64_t start = 0;
    size_t length = 0;
    std::string name;
    bool writable = true;
    bool huge = false;    // 2 MiB fault granularity
    bool shared = false;  // MapSharedFrom: frames owned elsewhere (refcounted)
  };

  struct CopyLock {
    uint64_t va = 0;
    size_t length = 0;
    std::function<void()> resolver;
  };

  // Blocks while a copy-lock overlaps [va, va+length); must be called with
  // mu_ NOT held (the resolver re-enters the space and the service).
  void WaitForCopyLocks(uint64_t va, size_t length);

  // All Locked* helpers require mu_ held.
  const Vma* LockedFindVma(uint64_t va) const;
  StatusOr<Pfn> LockedTranslate(uint64_t va, bool for_write, ExecContext* ctx);
  Status LockedFaultIn(const Vma& vma, uint64_t va, ExecContext* ctx);
  Status LockedBreakCow(uint64_t va, Pte& pte, ExecContext* ctx);
  void LockedNotifyInvalidation(uint64_t va, size_t length);
  uint64_t LockedAllocateVaRange(size_t length);

  PhysicalMemory* phys_;
  uint32_t asid_;
  const hw::TimingModel* timing_;

  mutable std::mutex mu_;
  std::map<uint64_t, Vma> vmas_;                 // keyed by start VA
  std::unordered_map<uint64_t, Pte> page_table_;  // keyed by VPN
  uint64_t next_va_ = 0x4000'0000;               // bump allocator with guard gaps
  PageCopyFn cow_copy_;

  std::vector<std::pair<int, InvalidationFn>> listeners_;
  int next_listener_token_ = 1;

  uint64_t minor_faults_ = 0;
  uint64_t cow_faults_ = 0;
  std::atomic<uint64_t> alias_cow_breaks_{0};

  // Fused-IPC source locks (guarded by mu_; the count is a lock-free fast
  // path so unrelated writes never take mu_ twice).
  std::vector<std::pair<int, CopyLock>> copy_locks_;
  int next_copy_lock_token_ = 1;
  std::atomic<size_t> copy_locks_active_{0};
  std::atomic<uint64_t> copy_lock_waits_{0};
};

}  // namespace copier::simos

#endif  // COPIER_SRC_SIMOS_ADDRESS_SPACE_H_
