// Simulated loopback socket stack.
//
// Reproduces the copy structure of Linux send()/recv() that Copier-Linux
// optimizes (§5.2):
//   * send(): user data is copied into kernel socket buffers (skbs); with
//     checksum offloaded to the NIC the TCP/IP layers never touch the
//     payload, so the driver only needs the data immediately before the NIC
//     TX enqueue — that is the send-side Copy-Use window.
//   * recv(): skb payloads are copied to the user buffer; the app touches the
//     data only after the syscall returns and it has set up processing —
//     the recv-side Copy-Use window.
//
// Skbs come from a bounded reuse pool (LIFO), reproducing the kernel-buffer
// address recurrence that makes the ATCache effective (§4.3). Each skb is
// released back to the pool by the copy's completion handler (KFUNC, §4.1).
#ifndef COPIER_SRC_SIMOS_SOCKET_H_
#define COPIER_SRC_SIMOS_SOCKET_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "src/common/exec_context.h"
#include "src/common/status.h"
#include "src/hw/timing_model.h"
#include "src/simos/copy_backend.h"
#include "src/simos/process.h"

namespace copier::simos {

inline constexpr size_t kMtu = 4096;  // payload bytes per skb

struct Skb {
  uint8_t* data = nullptr;  // kMtu bytes, physically contiguous kernel memory
  size_t length = 0;        // valid payload bytes
  uint32_t id = 0;

  // Delivery timestamp on the sender's clock; receivers in the virtual-time
  // engine wait until this time (network propagation is modeled as zero).
  Cycles delivered_at = 0;

  // Receive-side consumption state: bytes already handed to recv() and copies
  // still in flight; the skb returns to the pool when fully consumed and all
  // asynchronous copies out of it have completed.
  size_t consumed = 0;
  std::atomic<uint32_t> pending_copies{0};
  std::atomic<bool> drained{false};
};

// Bounded LIFO pool of kernel socket buffers.
class SkbPool {
 public:
  SkbPool(size_t count, const hw::TimingModel* timing);

  StatusOr<Skb*> Acquire(ExecContext* ctx);
  // Bulk reservation for posted-window sends (DESIGN.md §12): pops up to
  // `max_count` skbs in one pool transaction, charging the allocation cost
  // once for the batch — the fused path reserves its whole flow-control token
  // run without paying per-packet allocation. Returns an empty vector (and
  // counts an acquire failure) when the pool is dry.
  std::vector<Skb*> AcquireBatch(size_t max_count, ExecContext* ctx);
  void Release(Skb* skb);

  size_t available() const;
  uint64_t total_acquires() const { return total_acquires_; }
  // Acquire() calls that found the pool empty. Together with low_watermark()
  // this makes skb_pool_size pressure observable, so pool-exhaustion
  // fallbacks of the fused path (FuseEvent::kFallbackPoolExhausted) can be
  // told apart from receiver-not-posted fallbacks.
  uint64_t acquire_failures() const;
  // Smallest free count observed right after a successful Acquire.
  size_t low_watermark() const;

 private:
  const hw::TimingModel* timing_;
  std::unique_ptr<uint8_t[]> slab_;
  std::vector<std::unique_ptr<Skb>> all_;
  mutable std::mutex mu_;
  std::vector<Skb*> free_;
  uint64_t total_acquires_ = 0;
  uint64_t acquire_failures_ = 0;
  size_t low_watermark_ = 0;
};

struct SendOptions {
  bool zerocopy = false;  // MSG_ZEROCOPY-like baseline (see src/baselines/)
  bool lazy = false;      // submit the user->kernel copy as a Lazy Task (§4.4)
};

struct RecvOptions {
  // libCopier descriptor the kernel-side Copy Tasks report into; the app
  // csync()s against it. Null for synchronous receives.
  void* descriptor = nullptr;
  bool lazy = false;  // mark kernel->user copy lazy (proxy pattern, §4.4)
};

// A receiver-posted landing window (fused IPC, DESIGN.md §12): the recv
// buffer registered *before* the data arrives, so a peer send can land
// directly in it — fused when the backend supports it, via a posted two-step
// otherwise. `filled` advances as sends route bytes in; the receiver csyncs
// `descriptor` and closes the window with CompleteRecv.
struct PostedWindow {
  Process* proc = nullptr;     // receiver owning the window
  uint64_t va = 0;             // window base in the receiver's space
  size_t length = 0;
  size_t filled = 0;           // bytes routed into the window so far
  void* descriptor = nullptr;  // receiver's descriptor covering the window
  size_t forwarded = 0;        // bytes forwarded *through* (never landed here)
};

// Proxy-transparent forwarding (DESIGN.md §12) ------------------------------
//
// The receiver of a forward-posted window never reads the payload: it only
// rewrites a bounded header and relays the message. A ForwardRule captures
// that rewrite so the kernel can apply it at send time and dispatch one
// src→destination-window Copy Task with the rewritten header spliced in
// front of the unmodified payload.

// The rewrite's output for one complete message.
struct ForwardAction {
  // Bytes [body_off, total) of the incoming message are the payload, relayed
  // untouched; bytes [0, body_off) are replaced by `prefix` (the destination
  // protocol's framing + rewritten header).
  size_t body_off = 0;
  std::vector<uint8_t> prefix;
};

// The destination endpoint's side of a forward dispatch: claim its front
// posted window plus a flow-control token, or refuse.
struct ForwardClaim {
  Process* proc = nullptr;     // destination window owner
  uint64_t va = 0;             // destination window base
  void* descriptor = nullptr;  // destination window's descriptor
  // Releases the endpoint's flow-control token (e.g. the Binder transaction
  // buffer); fires as the fused task's final KFUNC, or from AbandonForward.
  std::function<void(Cycles)> release;
  Cycles dispatch_cycles = 0;  // endpoint protocol bookkeeping, charged once
  uint64_t token = 0;          // endpoint-private id for AbandonForward
};

class ForwardEndpoint {
 public:
  virtual ~ForwardEndpoint() = default;
  // Claims the endpoint's front posted window for a `length`-byte landing.
  // On success the window is consumed (its descriptor reports readiness to
  // the destination app); the caller must either dispatch a transfer whose
  // completion runs `release`, or call AbandonForward(token).
  virtual StatusOr<ForwardClaim> ClaimForward(size_t length, ExecContext* ctx) = 0;
  // Restores the claimed window and flow-control token (dispatch failed).
  virtual void AbandonForward(uint64_t token) = 0;
};

struct ForwardRule {
  ForwardEndpoint* endpoint = nullptr;
  size_t inspect_limit = 64;   // header bytes the rewrite may inspect
  Cycles rewrite_cycles = 0;   // modeled in-kernel header-rewrite cost
  // Maps the head of a send to its forward action. `head`/`head_len` are the
  // first min(inspect_limit, total) bytes; `total` is the send's length.
  // Returns nullopt to decline — e.g. the send is a partial message — in
  // which case the bytes land in the window for the app-level path.
  std::function<std::optional<ForwardAction>(const uint8_t* head, size_t head_len,
                                             size_t total)> rewrite;
};

// One endpoint of a connected in-memory stream socket.
class SimSocket {
 public:
  explicit SimSocket(SkbPool* pool) : pool_(pool) {}

  void set_peer(SimSocket* peer) { peer_ = peer; }
  SimSocket* peer() { return peer_; }
  SkbPool* pool() { return pool_; }

  // Posted window registry — a FIFO ring (DESIGN.md §12). Sends land in the
  // first window with room (ActiveWindow); CompleteRecv reaps the front
  // window; Recv() is rejected while any window is posted. Posting behind an
  // existing window requires `allow_ring` (the backend's SupportsRecvRing);
  // otherwise the historical one-window-at-a-time rule applies. Pointers stay
  // owned by the socket until TakeWindow. The kernel mutates `filled` from
  // send syscalls without the socket lock — post/send/complete on one socket
  // are syscall-serialized by the apps, as stream sockets require anyway.
  Status PostWindow(std::unique_ptr<PostedWindow> window, bool allow_ring = false);
  // Front (oldest) posted window; null when none. The reap order.
  PostedWindow* posted_window() const;
  // First posted window with room for more bytes; null when none or all full.
  PostedWindow* ActiveWindow() const;
  bool HasPostedWindow() const;
  size_t posted_count() const;
  std::unique_ptr<PostedWindow> TakeWindow();

  // Forward rule (proxy-transparent forwarding): applies to complete messages
  // arriving while an empty posted window is active. Owned by the app.
  void SetForwardRule(std::shared_ptr<ForwardRule> rule);
  const ForwardRule* forward_rule() const;

  void EnqueueRx(Skb* skb);
  bool HasData() const;
  size_t RxBytes() const;

  // Pops payload for recv(): invokes `sink(skb, offset_in_skb, n)` for each
  // consumed piece, tracking partial consumption, up to `max` bytes. The sink
  // must bump skb->pending_copies for asynchronous consumption before
  // returning. Returns bytes consumed (0 when empty).
  size_t ConsumeRx(size_t max, Cycles* latest_delivery,
                   const std::function<void(Skb*, size_t, size_t)>& sink);

  // Marks an asynchronous copy out of `skb` complete; releases the skb to the
  // pool once it is fully drained. Safe from any thread (KFUNC context).
  static void CompleteCopy(SkbPool* pool, Skb* skb);

 private:
  SkbPool* pool_;
  SimSocket* peer_ = nullptr;
  mutable std::mutex mu_;
  std::deque<Skb*> rx_;
  std::deque<std::unique_ptr<PostedWindow>> posted_;  // FIFO ring
  std::shared_ptr<ForwardRule> forward_rule_;
};

}  // namespace copier::simos

#endif  // COPIER_SRC_SIMOS_SOCKET_H_
