// Simulated loopback socket stack.
//
// Reproduces the copy structure of Linux send()/recv() that Copier-Linux
// optimizes (§5.2):
//   * send(): user data is copied into kernel socket buffers (skbs); with
//     checksum offloaded to the NIC the TCP/IP layers never touch the
//     payload, so the driver only needs the data immediately before the NIC
//     TX enqueue — that is the send-side Copy-Use window.
//   * recv(): skb payloads are copied to the user buffer; the app touches the
//     data only after the syscall returns and it has set up processing —
//     the recv-side Copy-Use window.
//
// Skbs come from a bounded reuse pool (LIFO), reproducing the kernel-buffer
// address recurrence that makes the ATCache effective (§4.3). Each skb is
// released back to the pool by the copy's completion handler (KFUNC, §4.1).
#ifndef COPIER_SRC_SIMOS_SOCKET_H_
#define COPIER_SRC_SIMOS_SOCKET_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/exec_context.h"
#include "src/common/status.h"
#include "src/hw/timing_model.h"
#include "src/simos/copy_backend.h"
#include "src/simos/process.h"

namespace copier::simos {

inline constexpr size_t kMtu = 4096;  // payload bytes per skb

struct Skb {
  uint8_t* data = nullptr;  // kMtu bytes, physically contiguous kernel memory
  size_t length = 0;        // valid payload bytes
  uint32_t id = 0;

  // Delivery timestamp on the sender's clock; receivers in the virtual-time
  // engine wait until this time (network propagation is modeled as zero).
  Cycles delivered_at = 0;

  // Receive-side consumption state: bytes already handed to recv() and copies
  // still in flight; the skb returns to the pool when fully consumed and all
  // asynchronous copies out of it have completed.
  size_t consumed = 0;
  std::atomic<uint32_t> pending_copies{0};
  std::atomic<bool> drained{false};
};

// Bounded LIFO pool of kernel socket buffers.
class SkbPool {
 public:
  SkbPool(size_t count, const hw::TimingModel* timing);

  StatusOr<Skb*> Acquire(ExecContext* ctx);
  // Bulk reservation for posted-window sends (DESIGN.md §12): pops up to
  // `max_count` skbs in one pool transaction, charging the allocation cost
  // once for the batch — the fused path reserves its whole flow-control token
  // run without paying per-packet allocation. Returns an empty vector (and
  // counts an acquire failure) when the pool is dry.
  std::vector<Skb*> AcquireBatch(size_t max_count, ExecContext* ctx);
  void Release(Skb* skb);

  size_t available() const;
  uint64_t total_acquires() const { return total_acquires_; }
  // Acquire() calls that found the pool empty. Together with low_watermark()
  // this makes skb_pool_size pressure observable, so pool-exhaustion
  // fallbacks of the fused path (FuseEvent::kFallbackPoolExhausted) can be
  // told apart from receiver-not-posted fallbacks.
  uint64_t acquire_failures() const;
  // Smallest free count observed right after a successful Acquire.
  size_t low_watermark() const;

 private:
  const hw::TimingModel* timing_;
  std::unique_ptr<uint8_t[]> slab_;
  std::vector<std::unique_ptr<Skb>> all_;
  mutable std::mutex mu_;
  std::vector<Skb*> free_;
  uint64_t total_acquires_ = 0;
  uint64_t acquire_failures_ = 0;
  size_t low_watermark_ = 0;
};

struct SendOptions {
  bool zerocopy = false;  // MSG_ZEROCOPY-like baseline (see src/baselines/)
  bool lazy = false;      // submit the user->kernel copy as a Lazy Task (§4.4)
};

struct RecvOptions {
  // libCopier descriptor the kernel-side Copy Tasks report into; the app
  // csync()s against it. Null for synchronous receives.
  void* descriptor = nullptr;
  bool lazy = false;  // mark kernel->user copy lazy (proxy pattern, §4.4)
};

// A receiver-posted landing window (fused IPC, DESIGN.md §12): the recv
// buffer registered *before* the data arrives, so a peer send can land
// directly in it — fused when the backend supports it, via a posted two-step
// otherwise. `filled` advances as sends route bytes in; the receiver csyncs
// `descriptor` and closes the window with CompleteRecv.
struct PostedWindow {
  Process* proc = nullptr;     // receiver owning the window
  uint64_t va = 0;             // window base in the receiver's space
  size_t length = 0;
  size_t filled = 0;           // bytes routed into the window so far
  void* descriptor = nullptr;  // receiver's descriptor covering the window
};

// One endpoint of a connected in-memory stream socket.
class SimSocket {
 public:
  explicit SimSocket(SkbPool* pool) : pool_(pool) {}

  void set_peer(SimSocket* peer) { peer_ = peer; }
  SimSocket* peer() { return peer_; }
  SkbPool* pool() { return pool_; }

  // Posted window registry. One window at a time; Recv() is rejected while a
  // window is posted. The pointer stays owned by the socket until TakeWindow.
  // The kernel mutates `filled` from send syscalls without the socket lock —
  // post/send/complete on one socket are syscall-serialized by the apps, as
  // stream sockets require anyway.
  Status PostWindow(std::unique_ptr<PostedWindow> window);
  PostedWindow* posted_window() const;
  std::unique_ptr<PostedWindow> TakeWindow();

  void EnqueueRx(Skb* skb);
  bool HasData() const;
  size_t RxBytes() const;

  // Pops payload for recv(): invokes `sink(skb, offset_in_skb, n)` for each
  // consumed piece, tracking partial consumption, up to `max` bytes. The sink
  // must bump skb->pending_copies for asynchronous consumption before
  // returning. Returns bytes consumed (0 when empty).
  size_t ConsumeRx(size_t max, Cycles* latest_delivery,
                   const std::function<void(Skb*, size_t, size_t)>& sink);

  // Marks an asynchronous copy out of `skb` complete; releases the skb to the
  // pool once it is fully drained. Safe from any thread (KFUNC context).
  static void CompleteCopy(SkbPool* pool, Skb* skb);

 private:
  SkbPool* pool_;
  SimSocket* peer_ = nullptr;
  mutable std::mutex mu_;
  std::deque<Skb*> rx_;
  std::unique_ptr<PostedWindow> posted_;
};

}  // namespace copier::simos

#endif  // COPIER_SRC_SIMOS_SOCKET_H_
