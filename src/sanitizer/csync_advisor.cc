#include "src/sanitizer/csync_advisor.h"

#include <sstream>

#include "src/common/align.h"
#include "src/sanitizer/copier_sanitizer.h"

namespace copier::sanitizer {

std::vector<Advice> CsyncAdvisor::Analyze(const std::vector<TraceEvent>& trace) {
  // Reuse the sanitizer's shadow semantics: poisoned-by-amemcpy ranges are
  // exactly the ones that need a csync before the access in question.
  CopierSanitizer shadow;
  std::vector<Advice> advice;

  for (size_t i = 0; i < trace.size(); ++i) {
    const TraceEvent& event = trace[i];
    switch (event.kind) {
      case TraceEvent::Kind::kAmemcpy:
        shadow.OnAmemcpy(event.addr, event.addr2, event.length);
        break;
      case TraceEvent::Kind::kCsync: {
        const bool covered_dst =
            shadow.IsPoisoned(event.addr, event.length, PoisonKind::kPendingDst);
        shadow.OnCsync(event.addr, event.length);
        if (!covered_dst) {
          advice.push_back({Advice::Kind::kRedundantCsync, i, event.addr, event.length,
                            event.site, "csync covers no un-synced copy (wasted check)"});
        }
        break;
      }
      case TraceEvent::Kind::kRead:
        if (!shadow.CheckRead(event.addr, event.length)) {
          advice.push_back({Advice::Kind::kInsertCsync, i, event.addr, event.length,
                            event.site,
                            "read of amemcpy destination: insert csync(addr, len) before "
                            "(guideline 1, §5.1.1)"});
          shadow.OnCsync(event.addr, event.length);  // assume the fix; keep scanning
        }
        break;
      case TraceEvent::Kind::kWrite:
        if (!shadow.CheckWrite(event.addr, event.length)) {
          advice.push_back({Advice::Kind::kInsertCsync, i, event.addr, event.length,
                            event.site,
                            "write to amemcpy destination or source: insert csync before "
                            "(guideline 1, §5.1.1)"});
          shadow.OnCsyncAll();  // a write to a source releases via its dst; be safe
        }
        break;
      case TraceEvent::Kind::kFree:
        if (!shadow.CheckFree(event.addr, event.length)) {
          advice.push_back({Advice::Kind::kInsertCsync, i, event.addr, event.length,
                            event.site,
                            "free of buffer involved in un-synced copy: csync or use a "
                            "post-copy handler (guideline 2, §4.1/§5.1.1)"});
          shadow.OnCsyncAll();
        }
        break;
    }
  }
  return advice;
}

std::string CsyncAdvisor::Render(const std::vector<Advice>& advice) {
  std::ostringstream out;
  if (advice.empty()) {
    out << "csync-advisor: no issues found\n";
    return out.str();
  }
  for (const Advice& a : advice) {
    out << (a.kind == Advice::Kind::kInsertCsync ? "error" : "note") << ": "
        << (a.site.empty() ? "<trace event " + std::to_string(a.event_index) + ">" : a.site)
        << ": range [0x" << std::hex << a.addr << ", 0x" << a.addr + a.length << std::dec
        << "): " << a.reason << "\n";
  }
  return out.str();
}

}  // namespace copier::sanitizer
