// CsyncAdvisor — the CopierGen analogue (§5.1.3).
//
// The paper's CopierGen is an LLVM/MLIR pass that finds loads/stores on
// amemcpy sources/destinations and inserts csync before them. This repository
// has no compiler IR, so the same analysis runs on a recorded *access trace*:
// feed it the program's amemcpy/csync/read/write/free events (e.g. captured
// via the AppIo::on_use hook or CopierSanitizer instrumentation points) and
// it reports, per the §5.1.1 guidelines, exactly where csyncs are missing —
// i.e. the list of insertion points a porting engineer (or CopierGen) would
// add. It also flags redundant csyncs (ranges that were already synced),
// addressing the paper's note that over-frequent csync costs performance.
#ifndef COPIER_SRC_SANITIZER_CSYNC_ADVISOR_H_
#define COPIER_SRC_SANITIZER_CSYNC_ADVISOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace copier::sanitizer {

struct TraceEvent {
  enum class Kind {
    kAmemcpy,  // dst, src, length
    kCsync,    // addr, length
    kRead,     // addr, length (direct data read)
    kWrite,    // addr, length (direct data write)
    kFree,     // addr, length (buffer free)
  };
  Kind kind;
  uint64_t addr = 0;   // dst for kAmemcpy
  uint64_t addr2 = 0;  // src for kAmemcpy
  size_t length = 0;
  // Source location / label supplied by the tracer ("kv.cc:112").
  std::string site;
};

struct Advice {
  enum class Kind {
    kInsertCsync,     // a read/write/free needs csync(addr, length) before it
    kRedundantCsync,  // this csync covers no pending copy
  };
  Kind kind;
  size_t event_index = 0;  // index into the trace
  uint64_t addr = 0;
  size_t length = 0;
  std::string site;
  std::string reason;
};

class CsyncAdvisor {
 public:
  // Analyzes the trace and returns the advice list (stable order).
  std::vector<Advice> Analyze(const std::vector<TraceEvent>& trace);

  // Renders the advice like a compiler diagnostic listing.
  static std::string Render(const std::vector<Advice>& advice);
};

}  // namespace copier::sanitizer

#endif  // COPIER_SRC_SANITIZER_CSYNC_ADVISOR_H_
