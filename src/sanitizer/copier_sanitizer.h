// CopierSanitizer — shadow-memory detection of missing/incorrect csyncs
// (§5.1.2).
//
// The paper's tool instruments loads/stores at compile time (AddressSanitizer
// style); this reproduction implements the identical detection semantics as a
// runtime checker:
//   * amemcpy poisons the destination range (its contents are undefined until
//     csync) and the source range (it must not be written or freed before the
//     copy is synced or a post-copy handler runs);
//   * csync unpoisons the involved ranges;
//   * CheckRead/CheckWrite/CheckFree are the instrumentation points a checked
//     build routes every access through; violations are recorded (and
//     optionally fatal).
//
// Shadow granularity is byte-exact (interval set keyed by address space), so
// partial csyncs unpoison exactly the synced segments.
#ifndef COPIER_SRC_SANITIZER_COPIER_SANITIZER_H_
#define COPIER_SRC_SANITIZER_COPIER_SANITIZER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace copier::sanitizer {

enum class PoisonKind : uint8_t {
  kPendingDst = 1,  // destination of an un-synced amemcpy
  kPendingSrc = 2,  // source of an un-synced amemcpy (writes/frees illegal)
};

struct Violation {
  enum class Kind { kReadPoisonedDst, kWritePoisonedDst, kWritePoisonedSrc, kFreePoisoned };
  Kind kind;
  uint64_t address = 0;
  size_t length = 0;
  std::string message;
};

class CopierSanitizer {
 public:
  // --- interposition points (called by the checked amemcpy/csync wrappers) ---
  void OnAmemcpy(uint64_t dst, uint64_t src, size_t n);
  void OnCsync(uint64_t addr, size_t n);
  void OnCsyncAll();

  // --- instrumentation points (every checked load/store/free) ---
  // Each returns true when the access is legal; otherwise records a
  // violation and returns false.
  bool CheckRead(uint64_t addr, size_t n);
  bool CheckWrite(uint64_t addr, size_t n);
  bool CheckFree(uint64_t addr, size_t n);

  const std::vector<Violation>& violations() const { return violations_; }
  void ClearViolations() { violations_.clear(); }

  // Shadow introspection (tests).
  bool IsPoisoned(uint64_t addr, size_t n, PoisonKind kind) const;

 private:
  struct Interval {
    uint64_t start;
    uint64_t end;  // half-open
  };

  static void Poison(std::map<uint64_t, uint64_t>* set, uint64_t start, uint64_t end);
  static void Unpoison(std::map<uint64_t, uint64_t>* set, uint64_t start, uint64_t end);
  static bool Overlaps(const std::map<uint64_t, uint64_t>& set, uint64_t start, uint64_t end);

  void Record(Violation::Kind kind, uint64_t addr, size_t n, const char* what);

  mutable std::mutex mu_;
  // Interval sets: key = start, value = end (half-open, non-overlapping).
  std::map<uint64_t, uint64_t> pending_dst_;
  std::map<uint64_t, uint64_t> pending_src_;
  // Maps each pending copy's src range to its dst (csync of dst clears src).
  struct PendingCopy {
    uint64_t dst;
    uint64_t src;
    size_t length;
  };
  std::vector<PendingCopy> copies_;
  std::vector<Violation> violations_;
};

}  // namespace copier::sanitizer

#endif  // COPIER_SRC_SANITIZER_COPIER_SANITIZER_H_
