#include "src/sanitizer/copier_sanitizer.h"

#include <algorithm>

namespace copier::sanitizer {

void CopierSanitizer::Poison(std::map<uint64_t, uint64_t>* set, uint64_t start, uint64_t end) {
  if (start >= end) {
    return;
  }
  Unpoison(set, start, end);  // normalize: remove overlaps first
  (*set)[start] = end;
  // Merge with neighbours.
  auto it = set->find(start);
  if (it != set->begin()) {
    auto prev = std::prev(it);
    if (prev->second >= it->first) {
      prev->second = std::max(prev->second, it->second);
      set->erase(it);
      it = prev;
    }
  }
  auto next = std::next(it);
  while (next != set->end() && next->first <= it->second) {
    it->second = std::max(it->second, next->second);
    next = set->erase(next);
  }
}

void CopierSanitizer::Unpoison(std::map<uint64_t, uint64_t>* set, uint64_t start, uint64_t end) {
  if (start >= end) {
    return;
  }
  auto it = set->lower_bound(start);
  if (it != set->begin()) {
    auto prev = std::prev(it);
    if (prev->second > start) {
      it = prev;
    }
  }
  while (it != set->end() && it->first < end) {
    const uint64_t seg_start = it->first;
    const uint64_t seg_end = it->second;
    it = set->erase(it);
    if (seg_start < start) {
      (*set)[seg_start] = start;
    }
    if (seg_end > end) {
      it = set->emplace(end, seg_end).first;
      break;
    }
  }
}

bool CopierSanitizer::Overlaps(const std::map<uint64_t, uint64_t>& set, uint64_t start,
                               uint64_t end) {
  if (start >= end) {
    return false;
  }
  auto it = set.lower_bound(start);
  if (it != set.begin()) {
    auto prev = std::prev(it);
    if (prev->second > start) {
      return true;
    }
  }
  return it != set.end() && it->first < end;
}

void CopierSanitizer::OnAmemcpy(uint64_t dst, uint64_t src, size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  Poison(&pending_dst_, dst, dst + n);
  Poison(&pending_src_, src, src + n);
  copies_.push_back(PendingCopy{dst, src, n});
}

void CopierSanitizer::OnCsync(uint64_t addr, size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  Unpoison(&pending_dst_, addr, addr + n);
  // csync of a destination also releases the corresponding source bytes.
  for (auto it = copies_.begin(); it != copies_.end();) {
    const uint64_t dst_end = it->dst + it->length;
    const uint64_t ovl_start = std::max(it->dst, addr);
    const uint64_t ovl_end = std::min(dst_end, addr + n);
    if (ovl_start < ovl_end) {
      const uint64_t src_start = it->src + (ovl_start - it->dst);
      Unpoison(&pending_src_, src_start, src_start + (ovl_end - ovl_start));
      if (ovl_start == it->dst && ovl_end == dst_end) {
        it = copies_.erase(it);
        continue;
      }
    }
    ++it;
  }
}

void CopierSanitizer::OnCsyncAll() {
  std::lock_guard<std::mutex> lock(mu_);
  pending_dst_.clear();
  pending_src_.clear();
  copies_.clear();
}

void CopierSanitizer::Record(Violation::Kind kind, uint64_t addr, size_t n, const char* what) {
  Violation v;
  v.kind = kind;
  v.address = addr;
  v.length = n;
  v.message = what;
  violations_.push_back(std::move(v));
}

bool CopierSanitizer::CheckRead(uint64_t addr, size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Overlaps(pending_dst_, addr, addr + n)) {
    Record(Violation::Kind::kReadPoisonedDst, addr, n,
           "read of amemcpy destination before csync");
    return false;
  }
  return true;  // reading a pending *source* is legal
}

bool CopierSanitizer::CheckWrite(uint64_t addr, size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Overlaps(pending_dst_, addr, addr + n)) {
    Record(Violation::Kind::kWritePoisonedDst, addr, n,
           "write to amemcpy destination before csync");
    return false;
  }
  if (Overlaps(pending_src_, addr, addr + n)) {
    Record(Violation::Kind::kWritePoisonedSrc, addr, n,
           "write to amemcpy source before csync (guideline 1, §5.1.1)");
    return false;
  }
  return true;
}

bool CopierSanitizer::CheckFree(uint64_t addr, size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Overlaps(pending_dst_, addr, addr + n) || Overlaps(pending_src_, addr, addr + n)) {
    Record(Violation::Kind::kFreePoisoned, addr, n,
           "free of buffer involved in un-synced amemcpy (guideline 2, §5.1.1)");
    return false;
  }
  return true;
}

bool CopierSanitizer::IsPoisoned(uint64_t addr, size_t n, PoisonKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto& set = kind == PoisonKind::kPendingDst ? pending_dst_ : pending_src_;
  return Overlaps(set, addr, addr + n);
}

}  // namespace copier::sanitizer
