// DmaChannelPool — N independent DMA channels behind one dispatch surface
// (§4.3, DESIGN.md §9).
//
// Real I/OAT silicon exposes several independent channels per socket; the
// dispatcher that treats "the DMA engine" as one serial queue caps aggregate
// copy bandwidth at a single channel no matter how much work it has. The pool
// models each channel as its own DmaEngine (serial, bounded descriptor ring,
// own busy_until clock) and gives the dispatcher what it needs to spread one
// round across all of them:
//   * least-busy selection: PickChannel returns the channel that becomes idle
//     earliest among those with ring space, so per-round batches land where
//     they start soonest;
//   * per-channel backpressure: a full ring rejects only that channel's batch
//     (kUnavailable) — the caller falls back per batch, not per round;
//   * submission records: SubmitOn reports the channel, cookie and completion
//     time together, so a caller parking work in flight never has to query a
//     channel again (queries from a foreign thread would race with the owning
//     engine's Poll).
//
// A pool of one channel is bit-for-bit the old single-engine behavior: same
// costs, same cookie sequence, same completion times.
#ifndef COPIER_SRC_HW_DMA_CHANNEL_POOL_H_
#define COPIER_SRC_HW_DMA_CHANNEL_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/common/cycle_clock.h"
#include "src/common/status.h"
#include "src/hw/dma_engine.h"
#include "src/hw/timing_model.h"

namespace copier::hw {

class DmaChannelPool {
 public:
  // A successful batch submission: everything the caller needs to track the
  // batch without touching the channel again.
  struct Submission {
    size_t channel = 0;
    uint64_t cookie = 0;
    Cycles completion_time = 0;
  };

  explicit DmaChannelPool(const TimingModel* model, size_t channels = 1,
                          size_t ring_slots = 256);

  DmaChannelPool(const DmaChannelPool&) = delete;
  DmaChannelPool& operator=(const DmaChannelPool&) = delete;

  size_t channel_count() const { return channels_.size(); }
  DmaEngine& channel(size_t i) { return *channels_[i]; }
  const DmaEngine& channel(size_t i) const { return *channels_[i]; }

  // Channel becoming idle earliest among those with at least `slots_needed`
  // free ring entries (ties: lowest index). Returns channel_count() when
  // every ring is too full — the caller's CPU-fallback signal.
  size_t PickChannel(size_t slots_needed) const;

  // Submits `batch` on `channel` at time `now`. CPU cost to charge is
  // SubmissionCost(batch.size()) per batch — each channel has its own
  // descriptor ring and doorbell.
  StatusOr<Submission> SubmitOn(size_t channel, std::span<const DmaDescriptor> batch,
                                Cycles now);

  Cycles SubmissionCost(size_t descriptors) const {
    return channels_[0]->SubmissionCost(descriptors);
  }

  // Retires completed batches on every channel; returns total retired.
  size_t Poll(Cycles now);

  // Time at which the whole pool goes idle (max over channels).
  Cycles busy_until() const;
  size_t in_flight() const;

  uint64_t total_bytes() const;
  uint64_t total_batches() const;

 private:
  std::vector<std::unique_ptr<DmaEngine>> channels_;
};

// A contiguous window [first, first + count) of a shared DmaChannelPool,
// exposed through the pool's own API surface with slice-relative channel
// indices (DESIGN.md §10). The engine pool carves one service-owned channel
// pool into disjoint slices, one per engine, so each engine's channel state
// (rings, busy clocks, cookies) stays exclusively owned by its serving
// thread — a slice over its channels behaves bit-for-bit like a private pool
// of `count` channels. The slice is a view: it holds no channel state and is
// freely copyable.
class DmaChannelSlice {
 public:
  DmaChannelSlice() = default;
  DmaChannelSlice(DmaChannelPool* pool, size_t first, size_t count)
      : pool_(pool), first_(first), count_(count) {}

  // Whole-pool view (single-engine services, standalone engines).
  explicit DmaChannelSlice(DmaChannelPool* pool)
      : pool_(pool), first_(0), count_(pool->channel_count()) {}

  size_t channel_count() const { return count_; }
  DmaEngine& channel(size_t i) { return pool_->channel(first_ + i); }
  const DmaEngine& channel(size_t i) const { return pool_->channel(first_ + i); }

  // Least-busy selection over the slice's channels; returns channel_count()
  // when every ring in the slice is too full. Indices are slice-relative.
  size_t PickChannel(size_t slots_needed) const;

  StatusOr<DmaChannelPool::Submission> SubmitOn(size_t channel,
                                                std::span<const DmaDescriptor> batch,
                                                Cycles now) {
    auto submission = pool_->SubmitOn(first_ + channel, batch, now);
    if (submission.ok()) {
      submission->channel -= first_;  // report slice-relative, like a private pool
    }
    return submission;
  }

  Cycles SubmissionCost(size_t descriptors) const {
    return pool_->SubmissionCost(descriptors);
  }

  // Retires completed batches on the slice's channels only: a slice never
  // touches a foreign engine's channel state.
  size_t Poll(Cycles now);

  Cycles busy_until() const;
  size_t in_flight() const;
  uint64_t total_bytes() const;
  uint64_t total_batches() const;

 private:
  DmaChannelPool* pool_ = nullptr;
  size_t first_ = 0;
  size_t count_ = 0;
};

}  // namespace copier::hw

#endif  // COPIER_SRC_HW_DMA_CHANNEL_POOL_H_
