// Hardware copy units (§4.3).
//
// Three units exist on the paper's platform and are reproduced here:
//   * AVX  — userspace SIMD memcpy (glibc-style). Usable by Copier because the
//            service saves/restores vector state once per activation, not per
//            copy (§4.3), which is the thing the stock kernel cannot afford.
//   * ERMS — `rep movsb`, the Linux kernel's copy method (no vector state).
//   * DMA  — an I/OAT-like engine: asynchronous, zero CPU cost while in
//            flight, but with submission overhead and lower throughput than
//            AVX for small transfers (Fig. 7-a). See dma_engine.h.
//
// The Copy* functions perform the real data movement (with runtime feature
// detection and safe fallbacks); the time each unit *charges* comes from
// TimingModel so benches are hardware-independent.
#ifndef COPIER_SRC_HW_COPY_UNIT_H_
#define COPIER_SRC_HW_COPY_UNIT_H_

#include <cstddef>
#include <cstdint>

namespace copier::hw {

enum class CopyUnitKind : uint8_t {
  kAvx = 0,
  kErms = 1,
  kDma = 2,
};

const char* CopyUnitKindName(CopyUnitKind kind);

// SIMD copy (AVX2 when available, SSE2/memcpy otherwise). Non-overlapping.
void AvxCopy(void* dst, const void* src, size_t n);

// `rep movsb` copy (ERMS). Non-overlapping. Falls back to memcpy off-x86.
void ErmsCopy(void* dst, const void* src, size_t n);

// True when the running CPU supports AVX2 (affects only real data movement,
// not modeled timing).
bool CpuHasAvx2();

}  // namespace copier::hw

#endif  // COPIER_SRC_HW_COPY_UNIT_H_
