#include "src/hw/dma_channel_pool.h"

#include <algorithm>

namespace copier::hw {

DmaChannelPool::DmaChannelPool(const TimingModel* model, size_t channels, size_t ring_slots) {
  channels_.reserve(std::max<size_t>(channels, 1));
  for (size_t i = 0; i < std::max<size_t>(channels, 1); ++i) {
    channels_.push_back(std::make_unique<DmaEngine>(model, ring_slots));
  }
}

size_t DmaChannelPool::PickChannel(size_t slots_needed) const {
  size_t best = channels_.size();
  Cycles best_busy = 0;
  for (size_t i = 0; i < channels_.size(); ++i) {
    if (channels_[i]->ring_free() < slots_needed) {
      continue;
    }
    if (best == channels_.size() || channels_[i]->busy_until() < best_busy) {
      best = i;
      best_busy = channels_[i]->busy_until();
    }
  }
  return best;
}

StatusOr<DmaChannelPool::Submission> DmaChannelPool::SubmitOn(
    size_t channel, std::span<const DmaDescriptor> batch, Cycles now) {
  if (channel >= channels_.size()) {
    return InvalidArgument("DMA channel out of range");
  }
  auto cookie_or = channels_[channel]->SubmitBatch(batch, now);
  if (!cookie_or.ok()) {
    return cookie_or.status();
  }
  // Capture the completion time at submission: parked callers must never
  // query the channel later (a foreign serving thread would race the owning
  // engine's Poll).
  return Submission{channel, *cookie_or, channels_[channel]->CompletionTime(*cookie_or)};
}

size_t DmaChannelPool::Poll(Cycles now) {
  size_t retired = 0;
  for (auto& channel : channels_) {
    retired += channel->Poll(now);
  }
  return retired;
}

Cycles DmaChannelPool::busy_until() const {
  Cycles busy = 0;
  for (const auto& channel : channels_) {
    busy = std::max(busy, channel->busy_until());
  }
  return busy;
}

size_t DmaChannelPool::in_flight() const {
  size_t n = 0;
  for (const auto& channel : channels_) {
    n += channel->in_flight();
  }
  return n;
}

uint64_t DmaChannelPool::total_bytes() const {
  uint64_t n = 0;
  for (const auto& channel : channels_) {
    n += channel->total_bytes();
  }
  return n;
}

uint64_t DmaChannelPool::total_batches() const {
  uint64_t n = 0;
  for (const auto& channel : channels_) {
    n += channel->total_batches();
  }
  return n;
}

size_t DmaChannelSlice::PickChannel(size_t slots_needed) const {
  size_t best = count_;
  Cycles best_busy = 0;
  for (size_t i = 0; i < count_; ++i) {
    const DmaEngine& ch = pool_->channel(first_ + i);
    if (ch.ring_free() < slots_needed) {
      continue;
    }
    if (best == count_ || ch.busy_until() < best_busy) {
      best = i;
      best_busy = ch.busy_until();
    }
  }
  return best;
}

size_t DmaChannelSlice::Poll(Cycles now) {
  size_t retired = 0;
  for (size_t i = 0; i < count_; ++i) {
    retired += pool_->channel(first_ + i).Poll(now);
  }
  return retired;
}

Cycles DmaChannelSlice::busy_until() const {
  Cycles busy = 0;
  for (size_t i = 0; i < count_; ++i) {
    busy = std::max(busy, pool_->channel(first_ + i).busy_until());
  }
  return busy;
}

size_t DmaChannelSlice::in_flight() const {
  size_t n = 0;
  for (size_t i = 0; i < count_; ++i) {
    n += pool_->channel(first_ + i).in_flight();
  }
  return n;
}

uint64_t DmaChannelSlice::total_bytes() const {
  uint64_t n = 0;
  for (size_t i = 0; i < count_; ++i) {
    n += pool_->channel(first_ + i).total_bytes();
  }
  return n;
}

uint64_t DmaChannelSlice::total_batches() const {
  uint64_t n = 0;
  for (size_t i = 0; i < count_; ++i) {
    n += pool_->channel(first_ + i).total_batches();
  }
  return n;
}

}  // namespace copier::hw
