#include "src/hw/dma_engine.h"

#include <algorithm>
#include <cstring>

namespace copier::hw {

StatusOr<uint64_t> DmaEngine::SubmitBatch(std::span<const DmaDescriptor> batch, Cycles now) {
  if (batch.empty()) {
    return InvalidArgument("empty DMA batch");
  }
  if (in_flight_.size() + batch.size() > ring_slots_) {
    return Unavailable("DMA descriptor ring full");
  }

  // Move the data now (see header: clients are gated by descriptor bitmaps,
  // so early data is unobservable).
  Cycles transfer = 0;
  for (const DmaDescriptor& d : batch) {
    std::memcpy(d.dst, d.src, d.length);
    transfer += model_->DmaTransferCycles(d.length);
    total_bytes_ += d.length;
  }

  // The engine picks up the batch after the doorbell rings and after any
  // earlier batch drains (serial channel).
  const Cycles start = std::max(now + model_->dma_submit_cycles, busy_until_);
  busy_until_ = start + transfer;

  const uint64_t cookie = next_cookie_++;
  in_flight_.push_back(Batch{cookie, busy_until_});
  ++total_batches_;
  return cookie;
}

Cycles DmaEngine::CompletionTime(uint64_t cookie) const {
  for (const Batch& b : in_flight_) {
    if (b.cookie == cookie) {
      return b.completion_time;
    }
  }
  // Already retired: complete in the past.
  return 0;
}

size_t DmaEngine::Poll(Cycles now) {
  size_t retired = 0;
  while (!in_flight_.empty() && in_flight_.front().completion_time <= now) {
    in_flight_.pop_front();
    ++retired;
  }
  return retired;
}

}  // namespace copier::hw
