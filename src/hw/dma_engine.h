// Simulated I/OAT-style DMA engine (§4.3, DESIGN.md §1 substitution table).
//
// Faithful properties relied on by the dispatcher:
//   * a bounded descriptor ring; submission fails with kUnavailable when full;
//   * a CPU-side submission cost (descriptor writes + doorbell) and zero CPU
//     cost while the transfer is in flight;
//   * a serial channel: batches execute in submission order, each taking
//     TimingModel::DmaTransferCycles() of wall-clock time;
//   * source and destination of each descriptor must be physically contiguous
//     — enforced by the caller (the dispatcher splits tasks into subtasks at
//     page-contiguity boundaries, Fig. 7-b).
//
// Data is moved eagerly at submission so the engine is correct in real-thread
// mode too; only the *completion timestamp* is modeled. Clients may not
// observe bytes before completion because csync() gates on the descriptor
// bitmap, which Copier updates only after CompletionTime().
#ifndef COPIER_SRC_HW_DMA_ENGINE_H_
#define COPIER_SRC_HW_DMA_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>

#include "src/common/cycle_clock.h"
#include "src/common/status.h"
#include "src/hw/timing_model.h"

namespace copier::hw {

struct DmaDescriptor {
  void* dst = nullptr;
  const void* src = nullptr;
  size_t length = 0;
};

class DmaEngine {
 public:
  explicit DmaEngine(const TimingModel* model, size_t ring_slots = 256)
      : model_(model), ring_slots_(ring_slots) {}

  DmaEngine(const DmaEngine&) = delete;
  DmaEngine& operator=(const DmaEngine&) = delete;

  // Submits a batch of descriptors at time `now`. Moves the data immediately
  // and returns a cookie identifying the batch. The CPU-side cost the caller
  // should charge is SubmissionCost(batch.size()).
  StatusOr<uint64_t> SubmitBatch(std::span<const DmaDescriptor> batch, Cycles now);

  // CPU cycles consumed by submitting a batch of `descriptors` entries.
  Cycles SubmissionCost(size_t descriptors) const {
    return model_->dma_submit_cycles + (descriptors > 0 ? descriptors - 1 : 0) *
           model_->dma_per_desc_cycles;
  }

  // Wall-clock completion time of the given batch (valid until retired).
  Cycles CompletionTime(uint64_t cookie) const;
  bool IsComplete(uint64_t cookie, Cycles now) const { return CompletionTime(cookie) <= now; }

  // Retires batches whose completion time has passed; returns count retired.
  size_t Poll(Cycles now);

  // Wall-clock time at which the channel becomes idle.
  Cycles busy_until() const { return busy_until_; }
  size_t in_flight() const { return in_flight_.size(); }
  // Free descriptor-ring slots (a batch of n needs n; see SubmitBatch).
  size_t ring_free() const {
    return ring_slots_ > in_flight_.size() ? ring_slots_ - in_flight_.size() : 0;
  }

  uint64_t total_bytes() const { return total_bytes_; }
  uint64_t total_batches() const { return total_batches_; }

 private:
  struct Batch {
    uint64_t cookie;
    Cycles completion_time;
  };

  const TimingModel* model_;
  size_t ring_slots_;
  std::deque<Batch> in_flight_;
  Cycles busy_until_ = 0;
  uint64_t next_cookie_ = 1;
  uint64_t total_bytes_ = 0;
  uint64_t total_batches_ = 0;
};

}  // namespace copier::hw

#endif  // COPIER_SRC_HW_DMA_ENGINE_H_
