#include "src/hw/timing_model.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>

#include "src/common/align.h"
#include "src/common/logging.h"

namespace copier::hw {

double ThroughputCurve::BytesPerCycle(size_t size) const {
  COPIER_DCHECK(!points.empty());
  if (size <= points.front().size) {
    return points.front().bytes_per_cycle;
  }
  if (size >= points.back().size) {
    return points.back().bytes_per_cycle;
  }
  for (size_t i = 1; i < points.size(); ++i) {
    if (size <= points[i].size) {
      const auto& lo = points[i - 1];
      const auto& hi = points[i];
      // Log-linear interpolation: cache-tier transitions are multiplicative.
      const double t = (std::log2(static_cast<double>(size)) -
                        std::log2(static_cast<double>(lo.size))) /
                       (std::log2(static_cast<double>(hi.size)) -
                        std::log2(static_cast<double>(lo.size)));
      return lo.bytes_per_cycle + t * (hi.bytes_per_cycle - lo.bytes_per_cycle);
    }
  }
  return points.back().bytes_per_cycle;
}

Cycles ThroughputCurve::CopyCycles(size_t size) const {
  if (size == 0) {
    return 0;
  }
  return static_cast<Cycles>(startup_cycles + static_cast<double>(size) / BytesPerCycle(size));
}

Cycles TimingModel::CpuCopyCycles(CopyUnitKind kind, size_t size) const {
  switch (kind) {
    case CopyUnitKind::kAvx:
      return avx.CopyCycles(size);
    case CopyUnitKind::kErms:
      return erms.CopyCycles(size);
    case CopyUnitKind::kDma:
      // CPU-side cost of DMA is submission only; transfer time is separate.
      return dma_submit_cycles;
  }
  return 0;
}

Cycles TimingModel::DmaTransferCycles(size_t size) const { return dma.CopyCycles(size); }

namespace {

TimingModel MakeDefaultModel() {
  TimingModel m;
  // AVX2 (glibc-style): very fast in L1/L2, DRAM-bandwidth-bound large.
  m.avx.startup_cycles = 35;
  m.avx.points = {
      {256, 14.0}, {4 * kKiB, 12.0}, {64 * kKiB, 10.0}, {256 * kKiB, 8.5}, {4 * kMiB, 5.5},
  };
  // ERMS (`rep movsb`): higher startup, competitive only at larger sizes —
  // this is the stock-kernel copy (Fig. 9 baseline).
  m.erms.startup_cycles = 55;
  m.erms.points = {
      {256, 6.0}, {4 * kKiB, 7.5}, {64 * kKiB, 7.8}, {256 * kKiB, 7.2}, {4 * kMiB, 5.0},
  };
  // I/OAT-like DMA: no CPU cost in flight, but lower standalone throughput
  // than AVX2 and a submission cost ≈ AVX time for 1.4 KiB (§4.3):
  // 35 + 1433/12 ≈ 155 cycles ≈ dma_submit_cycles.
  m.dma.startup_cycles = 320;  // engine latency before first byte moves
  m.dma.points = {
      {256, 1.4}, {4 * kKiB, 4.2}, {64 * kKiB, 5.2}, {256 * kKiB, 5.5}, {4 * kMiB, 5.5},
  };
  m.dma_submit_cycles = 160;
  return m;
}

// One timed run of `fn` over `iters` iterations; returns cycles per iteration.
template <typename Fn>
double TimeCyclesPerIter(Fn&& fn, int iters) {
  const Cycles start = RealCycleClock::ReadTsc();
  for (int i = 0; i < iters; ++i) {
    fn();
  }
  const Cycles end = RealCycleClock::ReadTsc();
  return static_cast<double>(end - start) / iters;
}

ThroughputCurve MeasureCpuCurve(void (*copy_fn)(void*, const void*, size_t)) {
  ThroughputCurve curve;
  curve.startup_cycles = 30;
  const size_t sizes[] = {256, 4 * kKiB, 64 * kKiB, 256 * kKiB, 4 * kMiB};
  const size_t max_size = 4 * kMiB;
  auto src = std::make_unique<uint8_t[]>(max_size);
  auto dst = std::make_unique<uint8_t[]>(max_size);
  std::memset(src.get(), 0xa5, max_size);
  for (size_t size : sizes) {
    const int iters = static_cast<int>(std::clamp<size_t>(8 * kMiB / size, 8, 2048));
    copy_fn(dst.get(), src.get(), size);  // warm
    const double cycles = TimeCyclesPerIter([&] { copy_fn(dst.get(), src.get(), size); }, iters);
    const double effective = std::max(1.0, cycles - curve.startup_cycles);
    curve.points.push_back({size, static_cast<double>(size) / effective});
  }
  return curve;
}

}  // namespace

const TimingModel& TimingModel::Default() {
  static const TimingModel model = MakeDefaultModel();
  return model;
}

TimingModel TimingModel::Calibrated() {
  TimingModel m = MakeDefaultModel();
  m.avx = MeasureCpuCurve(&AvxCopy);
  m.erms = MeasureCpuCurve(&ErmsCopy);
  // Keep DMA modeled relative to the measured AVX curve: preserve the paper's
  // ratio (DMA ≈ 45% of AVX throughput at 64 KiB+, worse below).
  const double avx_large = m.avx.BytesPerCycle(256 * kKiB);
  m.dma.points = {
      {256, avx_large * 0.12},      {4 * kKiB, avx_large * 0.35}, {64 * kKiB, avx_large * 0.50},
      {256 * kKiB, avx_large * 0.54}, {4 * kMiB, avx_large * 0.54},
  };
  return m;
}

}  // namespace copier::hw
