#include "src/hw/copy_unit.h"

#include <cstring>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace copier::hw {

const char* CopyUnitKindName(CopyUnitKind kind) {
  switch (kind) {
    case CopyUnitKind::kAvx:
      return "AVX";
    case CopyUnitKind::kErms:
      return "ERMS";
    case CopyUnitKind::kDma:
      return "DMA";
  }
  return "?";
}

bool CpuHasAvx2() {
#if defined(__x86_64__)
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
#else
  return false;
#endif
}

namespace {

#if defined(__x86_64__)
__attribute__((target("avx2"))) void AvxCopyImpl(void* dst, const void* src, size_t n) {
  auto* d = static_cast<uint8_t*>(dst);
  const auto* s = static_cast<const uint8_t*>(src);
  // 64-byte unrolled vector loop, then a vector tail, then a scalar tail.
  while (n >= 64) {
    const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s));
    const __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d), a);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + 32), b);
    d += 64;
    s += 64;
    n -= 64;
  }
  if (n >= 32) {
    const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d), a);
    d += 32;
    s += 32;
    n -= 32;
  }
  if (n > 0) {
    std::memcpy(d, s, n);
  }
  _mm256_zeroupper();
}
#endif

}  // namespace

void AvxCopy(void* dst, const void* src, size_t n) {
  if (n == 0) {
    return;
  }
#if defined(__x86_64__)
  if (CpuHasAvx2()) {
    AvxCopyImpl(dst, src, n);
    return;
  }
#endif
  std::memcpy(dst, src, n);
}

void ErmsCopy(void* dst, const void* src, size_t n) {
  if (n == 0) {
    return;
  }
#if defined(__x86_64__)
  void* d = dst;
  const void* s = src;
  size_t count = n;
  asm volatile("rep movsb" : "+D"(d), "+S"(s), "+c"(count) : : "memory");
#else
  std::memcpy(dst, src, n);
#endif
}

}  // namespace copier::hw
