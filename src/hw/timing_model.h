// TimingModel — the calibrated cost model behind every simulated clock charge.
//
// All Copier mechanisms that *decide* something (DMA-candidate thresholds,
// piggyback splits, break-even sizes, absorption profit) and all virtual-time
// benches consume costs from this one table, so the whole reproduction is
// consistent and deterministic. Defaults approximate the paper's testbed
// (2×Xeon E5-2650 v4 @ 2.9 GHz, I/OAT DMA, Fig. 7-a):
//   * AVX2 is the fastest CPU unit; ERMS (the kernel's method) is slower,
//     especially below a page;
//   * DMA has a fixed submission cost roughly equal to copying 1.4 KiB with
//     AVX2 (§4.3) and lower standalone throughput than AVX2, but costs no CPU
//     cycles while in flight;
//   * VA→PA translation costs ~240 cycles/page (§4.3), amortized by ATCache.
#ifndef COPIER_SRC_HW_TIMING_MODEL_H_
#define COPIER_SRC_HW_TIMING_MODEL_H_

#include <cstddef>
#include <vector>

#include "src/common/cycle_clock.h"
#include "src/hw/copy_unit.h"

namespace copier::hw {

// Piecewise throughput curve: bytes/cycle as a function of transfer size,
// log-linearly interpolated between anchor points (cache-tier behaviour).
struct ThroughputCurve {
  struct Point {
    size_t size;             // transfer size anchor (bytes)
    double bytes_per_cycle;  // sustained throughput at that size
  };

  double startup_cycles = 0;  // fixed per-invocation cost
  std::vector<Point> points;  // ascending by size, non-empty

  double BytesPerCycle(size_t size) const;
  Cycles CopyCycles(size_t size) const;
};

struct TimingModel {
  // Per-unit throughput.
  ThroughputCurve avx;
  ThroughputCurve erms;
  ThroughputCurve dma;

  // DMA engine interface costs (CPU-side).
  Cycles dma_submit_cycles = 180;      // descriptor write + doorbell, per batch
  Cycles dma_per_desc_cycles = 40;     // each additional descriptor in a batch
  Cycles dma_completion_check_cycles = 25;

  // Address translation (§4.3, §4.5.4).
  Cycles va_translate_cycles_per_page = 240;
  Cycles atcache_hit_cycles = 18;
  Cycles page_pin_cycles = 45;  // lock the mapping for the copy duration

  // Copier client-side primitives (§4.6 break-even discussion).
  Cycles task_submit_cycles = 90;   // alloc descriptor + ring enqueue
  // Vectored submission (copier_submitv / k-mode CopyV): one ring reservation
  // + one doorbell for the whole batch plus a per-segment descriptor write —
  // the same per-batch amortization shape as dma_submit_cycles above.
  Cycles task_submitv_base_cycles = 140;
  Cycles task_submitv_per_seg_cycles = 20;
  Cycles csync_check_cycles = 28;   // descriptor bitmap check (ready case)
  Cycles csync_submit_cycles = 70;  // Sync Task enqueue (unready case)
  Cycles handler_dispatch_cycles = 60;

  // OS substrate events.
  Cycles syscall_entry_cycles = 350;   // trap + entry work
  Cycles syscall_exit_cycles = 350;    // return to userspace
  Cycles context_switch_cycles = 2000;
  Cycles wakeup_cycles = 1200;  // futex-style wakeup of a sleeping thread

  // Memory-subsystem events (used by CoW, zero-copy and zIO baselines).
  Cycles page_alloc_cycles = 300;
  Cycles page_fault_entry_cycles = 1400;  // hardware fault + kernel entry/exit
  Cycles page_remap_cycles = 650;         // PTE update for one page
  Cycles tlb_shootdown_cycles = 2200;     // per remap batch
  Cycles skb_alloc_cycles = 250;
  Cycles binder_transaction_cycles = 5200;  // driver bookkeeping + server wakeup

  // Network stack per-packet costs (checksum offloaded: header-only work).
  Cycles tcp_tx_per_packet_cycles = 300;
  Cycles tcp_rx_per_packet_cycles = 220;
  Cycles nic_tx_enqueue_cycles = 180;
  Cycles socket_status_cycles = 150;

  // fork() bookkeeping (page-table duplication dominates).
  Cycles fork_base_cycles = 9000;
  Cycles fork_per_page_cycles = 90;

  // Copier service internals.
  Cycles poll_iteration_cycles = 55;       // scan one client's queues, empty
  Cycles schedule_pick_cycles = 45;        // CFS-style min-length pick (§4.5.3)
  // Linear-scan scheduler baseline: the global pick examines every attached
  // client (twice); charged once per client scanned so the threaded mode's
  // virtual cost model reflects the O(clients) shape the sharded run queues
  // remove (the sharded pick charges schedule_pick_cycles alone).
  Cycles schedule_scan_cycles_per_client = 4;
  Cycles barrier_process_cycles = 20;
  // Dependency/absorption matching: charged once per interval-index probe
  // when the range index is enabled, or once per pending candidate examined
  // in the linear-scan baseline (enable_range_index = false).
  Cycles absorption_match_cycles = 12;

  // Dispatcher policy constants (§4.3).
  size_t dma_min_subtask_bytes = 2048;   // below this, DMA submission loses
  size_t ipiggyback_min_task_bytes = 12 * 1024;  // i-piggyback threshold
  // Piggyback greedy slack: a subtask moves to DMA while the (aggregate,
  // multi-channel) DMA makespan stays within this percentage over the
  // remaining AVX time — a short confirmed wait beats an idle second unit.
  size_t piggyback_greedy_tolerance_pct = 15;

  // Cost of one CPU-driven copy of `size` bytes on the given unit.
  Cycles CpuCopyCycles(CopyUnitKind kind, size_t size) const;
  // Wall-clock duration of a DMA transfer once submitted (no CPU cost).
  Cycles DmaTransferCycles(size_t size) const;

  // Default model (deterministic; approximates the paper's testbed). Also the
  // model used by every bench unless --calibrate is passed.
  static const TimingModel& Default();

  // Measures AVX/ERMS curves on the running machine (DMA stays modeled since
  // no I/OAT hardware is assumed). Used by benches under --calibrate.
  static TimingModel Calibrated();
};

}  // namespace copier::hw

#endif  // COPIER_SRC_HW_TIMING_MODEL_H_
