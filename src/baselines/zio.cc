#include "src/baselines/zio.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/hw/copy_unit.h"

namespace copier::baselines {

namespace {

// Moves bytes between two simulated VAs through host chunks (real data).
void HostCopy(simos::AddressSpace* space, uint64_t dst, uint64_t src, size_t n) {
  std::vector<uint8_t> buffer(n);
  COPIER_CHECK_OK(space->ReadBytes(src, buffer.data(), n));
  COPIER_CHECK_OK(space->WriteBytes(dst, buffer.data(), n));
}

}  // namespace

void ZioRuntime::Copy(uint64_t dst, uint64_t src, size_t n, ExecContext* ctx) {
  ++stats_.copies_intercepted;
  // Unaligned head/tail cannot be remapped; zIO copies those eagerly. Only
  // whole interior pages defer.
  const uint64_t interior_start = AlignUp(dst, kPageSize);
  const uint64_t interior_end = AlignDown(dst + n, kPageSize);
  // zIO intercepts later accesses via page protection on the destination, so
  // unlike remap-based zero-copy it needs no src/dst co-alignment — but only
  // whole interior pages can be protected.
  const bool worthwhile = n >= threshold_ && interior_end > interior_start;

  // Data always moves now (correctness); only charged time differs.
  HostCopy(space_, dst, src, n);

  if (!worthwhile) {
    ChargeCtx(ctx, timing_->CpuCopyCycles(hw::CopyUnitKind::kAvx, n));
    stats_.bytes_eager += n;
    return;
  }

  const size_t head = interior_start - dst;
  const size_t tail = (dst + n) - interior_end;
  const size_t interior = n - head - tail;
  const size_t pages = interior / kPageSize;

  // Eager edges + lightweight per-page tracking/protection (zIO defers via
  // its interception tables and mprotect, not full remaps).
  ChargeCtx(ctx, timing_->CpuCopyCycles(hw::CopyUnitKind::kAvx, head + tail));
  ChargeCtx(ctx, 100 * pages + timing_->tlb_shootdown_cycles / 4);
  stats_.bytes_eager += head + tail;
  stats_.bytes_deferred += interior;
  ++stats_.copies_deferred;
  deferred_.push_back(Deferred{interior_start, src + head, interior, false});
}

void ZioRuntime::Materialize(Deferred& d, ExecContext* ctx) {
  if (d.materialized) {
    return;
  }
  d.materialized = true;
  ++stats_.faults;
  stats_.bytes_materialized += d.length;
  // One hardware fault wakes the handler, which copies the whole region and
  // restores the protection.
  ChargeCtx(ctx, timing_->page_fault_entry_cycles +
                     timing_->CpuCopyCycles(hw::CopyUnitKind::kAvx, d.length) +
                     150 * (d.length / kPageSize));
}

void ZioRuntime::Touch(uint64_t addr, size_t n, ExecContext* ctx) {
  for (auto& d : deferred_) {
    if (!d.materialized && RangesOverlap(d.dst, d.length, addr, n)) {
      Materialize(d, ctx);
    }
  }
  std::erase_if(deferred_, [](const Deferred& d) { return d.materialized; });
}

void ZioRuntime::SourceReused(uint64_t src, size_t n, ExecContext* ctx) {
  for (auto& d : deferred_) {
    if (!d.materialized && RangesOverlap(d.src, d.length, src, n)) {
      Materialize(d, ctx);
    }
  }
  std::erase_if(deferred_, [](const Deferred& d) { return d.materialized; });
}

void ZioRuntime::Consume(uint64_t addr, size_t n, ExecContext* ctx) {
  for (auto& d : deferred_) {
    if (!d.materialized && RangesOverlap(d.dst, d.length, addr, n)) {
      // Short-circuit: the consumer reads from the origin; the deferred copy
      // never executes. Charge only the unmap bookkeeping.
      stats_.bytes_elided += d.length;
      ChargeCtx(ctx, 60 * (d.length / kPageSize));
      d.materialized = true;  // retired
    }
  }
  std::erase_if(deferred_, [](const Deferred& d) { return d.materialized; });
}

}  // namespace copier::baselines
