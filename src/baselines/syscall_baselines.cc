#include "src/baselines/syscall_baselines.h"

#include "src/hw/copy_unit.h"

namespace copier::baselines {

// ---------------------------------------------------------------------------
// ZeroCopySend
// ---------------------------------------------------------------------------

StatusOr<size_t> ZeroCopySend::Send(simos::Process& proc, simos::SimSocket* sock, uint64_t va,
                                    size_t length, ExecContext* ctx) {
  const hw::TimingModel& t = kernel_->timing();
  // Data movement (uncharged): the skbs reference the pinned user pages; our
  // substrate copies for correctness but charges zero for those bytes.
  auto result = kernel_->Send(proc, sock, va, length, nullptr);
  if (!result.ok()) {
    return result;
  }

  const size_t packets = (length + simos::kMtu - 1) / simos::kMtu;
  const uint64_t interior_start = AlignUp(va, kPageSize);
  const uint64_t interior_end = AlignDown(va + length, kPageSize);
  const size_t interior_pages =
      interior_end > interior_start ? (interior_end - interior_start) >> kPageShift : 0;
  const size_t edge_bytes = length - interior_pages * kPageSize;

  Cycles cost = t.syscall_entry_cycles + t.syscall_exit_cycles;       // the send itself
  cost += packets * (t.skb_alloc_cycles + t.tcp_tx_per_packet_cycles);
  // MSG_ZEROCOPY pins and references the pages (no remapping); the shared
  // pages must be write-protected once per send (one shootdown).
  cost += interior_pages * t.page_pin_cycles;
  cost += t.tlb_shootdown_cycles / 2;
  cost += t.CpuCopyCycles(hw::CopyUnitKind::kErms, edge_bytes);        // unaligned edges
  // Completion notification: the app must reap the error queue before it can
  // reuse the buffer — one more (cheap, often-batched) syscall.
  cost += (t.syscall_entry_cycles + t.syscall_exit_cycles) / 2;
  ChargeCtx(ctx, cost);
  return result;
}

// ---------------------------------------------------------------------------
// UserspaceBypass
// ---------------------------------------------------------------------------

template <typename Fn>
auto UserspaceBypass::WithReducedTrap(ExecContext* ctx, Fn&& fn) {
  // Execute the syscall body on a scratch clock, then charge the app the
  // body cost with the trap portion discounted to the UB residual.
  const hw::TimingModel& t = kernel_->timing();
  ExecContext scratch("ub-scratch");
  auto result = fn(&scratch);
  const Cycles full_trap = t.syscall_entry_cycles + t.syscall_exit_cycles;
  Cycles body = scratch.now();
  if (body >= full_trap) {
    body -= full_trap;
  }
  ChargeCtx(ctx, body + static_cast<Cycles>(full_trap * kResidualTrapFraction));
  return result;
}

StatusOr<size_t> UserspaceBypass::Send(simos::Process& proc, simos::SimSocket* sock,
                                       uint64_t va, size_t length, ExecContext* ctx) {
  return WithReducedTrap(ctx, [&](ExecContext* scratch) {
    return kernel_->Send(proc, sock, va, length, scratch);
  });
}

StatusOr<size_t> UserspaceBypass::Recv(simos::Process& proc, simos::SimSocket* sock,
                                       uint64_t va, size_t length, ExecContext* ctx) {
  return WithReducedTrap(ctx, [&](ExecContext* scratch) {
    return kernel_->Recv(proc, sock, va, length, scratch);
  });
}

// ---------------------------------------------------------------------------
// IoUringSim
// ---------------------------------------------------------------------------

uint64_t IoUringSim::Submit(simos::Process& proc, simos::SimSocket* sock, uint64_t va,
                            size_t length, bool is_send, ExecContext* ctx) {
  const hw::TimingModel& t = kernel_->timing();
  ChargeCtx(ctx, 80);  // SQE preparation
  ++submitted_in_batch_;
  if (submitted_in_batch_ >= batch_size_) {
    // io_uring_enter: one trap amortized over the batch (no-op with SQPOLL,
    // but we model the non-SQPOLL default of the paper's io_uring baseline).
    ChargeCtx(ctx, t.syscall_entry_cycles + t.syscall_exit_cycles);
    submitted_in_batch_ = 0;
  }

  // The SQPOLL worker picks the op up no earlier than the app submitted it.
  worker_.WaitUntil(CtxNow(ctx));
  StatusOr<size_t> result = is_send ? kernel_->Send(proc, sock, va, length, &worker_)
                                    : kernel_->Recv(proc, sock, va, length, &worker_);
  ops_.push_back(Op{next_id_, worker_.now(), std::move(result)});
  return next_id_++;
}

uint64_t IoUringSim::SubmitSend(simos::Process& proc, simos::SimSocket* sock, uint64_t va,
                                size_t length, ExecContext* ctx) {
  return Submit(proc, sock, va, length, /*is_send=*/true, ctx);
}

uint64_t IoUringSim::SubmitRecv(simos::Process& proc, simos::SimSocket* sock, uint64_t va,
                                size_t length, ExecContext* ctx) {
  return Submit(proc, sock, va, length, /*is_send=*/false, ctx);
}

StatusOr<size_t> IoUringSim::Wait(uint64_t op, ExecContext* ctx) {
  for (auto it = ops_.begin(); it != ops_.end(); ++it) {
    if (it->id == op) {
      if (ctx != nullptr) {
        ctx->WaitUntil(it->completion_time);
      }
      ChargeCtx(ctx, 60);  // CQE reap
      StatusOr<size_t> result = std::move(it->result);
      ops_.erase(it);
      return result;
    }
  }
  return NotFound("unknown io_uring op");
}

}  // namespace copier::baselines
