// zIO-like transparent zero-copy runtime (Stamler et al., OSDI '22) — the
// paper's strongest baseline (§6, Table 1).
//
// Mechanism reproduced:
//   * interposes on application copies; copies >= threshold are *deferred*:
//     interior page-aligned pages are remapped (cost charged) and marked
//     copy-on-access, unaligned head/tail bytes are copied eagerly;
//   * when the app later touches deferred destination bytes, a page fault
//     fires (cost charged) and the data materializes then;
//   * when the app reuses the *source* buffer before the destination was
//     consumed (the Redis input-buffer pattern, §6.2.1), faults materialize
//     the data first — this is why zIO only helps Redis SETs >= 64 KiB;
//   * user-mode only: it cannot absorb cross-privilege copies (Table 1).
//
// Data is moved eagerly for correctness; deferral affects only *charged*
// time, exactly like the DMA engine's completion model.
#ifndef COPIER_SRC_BASELINES_ZIO_H_
#define COPIER_SRC_BASELINES_ZIO_H_

#include <cstdint>
#include <vector>

#include "src/common/exec_context.h"
#include "src/hw/timing_model.h"
#include "src/simos/address_space.h"

namespace copier::baselines {

class ZioRuntime {
 public:
  struct Stats {
    uint64_t copies_intercepted = 0;
    uint64_t copies_deferred = 0;
    uint64_t bytes_deferred = 0;
    uint64_t bytes_eager = 0;
    uint64_t faults = 0;
    uint64_t bytes_materialized = 0;
    uint64_t bytes_elided = 0;  // consumed without ever materializing
  };

  ZioRuntime(simos::AddressSpace* space, const hw::TimingModel* timing,
             size_t threshold = 16 * kKiB)
      : space_(space), timing_(timing), threshold_(threshold) {}

  // Interposed memcpy. Defers when size >= threshold; otherwise plain copy.
  void Copy(uint64_t dst, uint64_t src, size_t n, ExecContext* ctx);

  // The app is about to read/write [addr, addr+n): materializes deferred
  // pages covering it (page-fault cost per deferred page).
  void Touch(uint64_t addr, size_t n, ExecContext* ctx);

  // The app is about to overwrite the *source* region of deferred copies
  // (buffer reuse): materializes every deferred destination depending on it.
  void SourceReused(uint64_t src, size_t n, ExecContext* ctx);

  // An I/O path consumes [addr, addr+n) wholesale (e.g. send()): deferred
  // bytes are forwarded from their origin without materializing — zIO's
  // short-circuit win. Clears the deferral.
  void Consume(uint64_t addr, size_t n, ExecContext* ctx);

  size_t threshold() const { return threshold_; }
  const Stats& stats() const { return stats_; }

 private:
  struct Deferred {
    uint64_t dst = 0;
    uint64_t src = 0;
    size_t length = 0;        // deferred (page-interior) byte count
    bool materialized = false;
  };

  void Materialize(Deferred& d, ExecContext* ctx);

  simos::AddressSpace* space_;
  const hw::TimingModel* timing_;
  size_t threshold_;
  std::vector<Deferred> deferred_;
  Stats stats_;
};

}  // namespace copier::baselines

#endif  // COPIER_SRC_BASELINES_ZIO_H_
