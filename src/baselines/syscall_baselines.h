// Syscall-optimization baselines from §6.1.2 (Fig. 10): MSG_ZEROCOPY-like
// send, Userspace Bypass (UB), and io_uring (plain and batched).
//
// Each baseline wraps SimKernel's send/recv with the mechanism's cost
// structure; data movement stays correct, the charged time differs.
#ifndef COPIER_SRC_BASELINES_SYSCALL_BASELINES_H_
#define COPIER_SRC_BASELINES_SYSCALL_BASELINES_H_

#include <deque>

#include "src/common/exec_context.h"
#include "src/common/status.h"
#include "src/simos/kernel.h"

namespace copier::baselines {

// --- MSG_ZEROCOPY-like send (Linux zero-copy socket [24]) -------------------
//
// Pins the user pages, shares them with the skb layer (no payload copy), and
// later requires a completion-notification check before the buffer may be
// reused. Requires page alignment for the shared interior; unaligned head and
// tail are still copied. Effective only for large payloads (>= ~10 KiB).
class ZeroCopySend {
 public:
  explicit ZeroCopySend(simos::SimKernel* kernel) : kernel_(kernel) {}

  // send(..., MSG_ZEROCOPY) followed (eventually) by the error-queue
  // completion check, whose cost is charged here up front (it must happen
  // once per send before buffer reuse).
  StatusOr<size_t> Send(simos::Process& proc, simos::SimSocket* sock, uint64_t va,
                        size_t length, ExecContext* ctx);

 private:
  simos::SimKernel* kernel_;
};

// --- Userspace Bypass (UB, OSDI '23 [87]) -----------------------------------
//
// Moves the syscall-intensive code into the kernel via binary translation:
// the privilege crossing shrinks to a near-call, but the translated user code
// pays an instrumentation slowdown on its memory accesses — which is why UB
// only wins for small payloads (§6.1.2, §6.2.1).
class UserspaceBypass {
 public:
  // Fraction of trap cost that remains, and the per-byte instrumentation tax
  // the app pays when it later touches the data.
  static constexpr double kResidualTrapFraction = 0.15;
  static constexpr double kAccessTaxCyclesPerByte = 0.35;

  explicit UserspaceBypass(simos::SimKernel* kernel) : kernel_(kernel) {}

  StatusOr<size_t> Send(simos::Process& proc, simos::SimSocket* sock, uint64_t va,
                        size_t length, ExecContext* ctx);
  StatusOr<size_t> Recv(simos::Process& proc, simos::SimSocket* sock, uint64_t va,
                        size_t length, ExecContext* ctx);

  // Charged when the (translated) app touches `n` bytes of data.
  static void ChargeAccessTax(ExecContext* ctx, size_t n) {
    ChargeCtx(ctx, static_cast<Cycles>(n * kAccessTaxCyclesPerByte));
  }

 private:
  // Runs `fn` with the kernel's trap costs discounted to the UB residual.
  template <typename Fn>
  auto WithReducedTrap(ExecContext* ctx, Fn&& fn);

  simos::SimKernel* kernel_;
};

// --- io_uring (plain and batched submission) ---------------------------------
//
// Asynchronous syscalls: the app enqueues SQEs; an SQPOLL kernel thread
// executes them on its own clock; the app reaps CQEs when it needs results.
// Batched mode amortizes one trap over `batch` submissions.
class IoUringSim {
 public:
  IoUringSim(simos::SimKernel* kernel, size_t batch_size = 1)
      : kernel_(kernel), batch_size_(batch_size), worker_("iouring-sqpoll") {}

  // Enqueues a send/recv SQE at the app's current time. Returns an op id.
  uint64_t SubmitSend(simos::Process& proc, simos::SimSocket* sock, uint64_t va, size_t length,
                      ExecContext* ctx);
  uint64_t SubmitRecv(simos::Process& proc, simos::SimSocket* sock, uint64_t va, size_t length,
                      ExecContext* ctx);

  // Blocks the app until the op completes; returns the op's result size.
  StatusOr<size_t> Wait(uint64_t op, ExecContext* ctx);

  ExecContext& worker() { return worker_; }

 private:
  struct Op {
    uint64_t id;
    Cycles completion_time;
    StatusOr<size_t> result;
  };

  uint64_t Submit(simos::Process& proc, simos::SimSocket* sock, uint64_t va, size_t length,
                  bool is_send, ExecContext* ctx);

  simos::SimKernel* kernel_;
  size_t batch_size_;
  ExecContext worker_;
  std::deque<Op> ops_;
  uint64_t next_id_ = 1;
  size_t submitted_in_batch_ = 0;
};

}  // namespace copier::baselines

#endif  // COPIER_SRC_BASELINES_SYSCALL_BASELINES_H_
