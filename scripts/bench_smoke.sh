#!/usr/bin/env bash
# Bench smoke: Release build + the benches that gate engine/scheduler
# performance work. Writes BENCH_queue_depth.json (indexed vs linear
# queue-depth sweep) and BENCH_sched.json (sharded vs linear scheduler
# sweep) at the repo root; fails if either sweep reports non-identical
# memory images.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build-release}

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_queue_depth bench_sched bench_fig9_copy_throughput

echo
"$BUILD_DIR"/bench/bench_queue_depth --json | tee /tmp/bench_queue_depth.out
if grep -q ' NO ' /tmp/bench_queue_depth.out; then
  echo "bench_queue_depth: indexed and linear images differ" >&2
  exit 1
fi

echo
"$BUILD_DIR"/bench/bench_sched --json | tee /tmp/bench_sched.out
if grep -q ' NO ' /tmp/bench_sched.out; then
  echo "bench_sched: sharded and linear images differ" >&2
  exit 1
fi

echo
"$BUILD_DIR"/bench/bench_fig9_copy_throughput

echo
echo "bench smoke OK; results in BENCH_queue_depth.json + BENCH_sched.json"
