#!/usr/bin/env bash
# Bench smoke: Release build + the benches that gate engine/scheduler/
# submission performance work. Writes BENCH_queue_depth.json (indexed vs
# linear queue-depth sweep), BENCH_sched.json (sharded vs linear scheduler
# sweep), BENCH_submit_batch.json (vectored vs per-skb submission sweep),
# BENCH_dma_channels.json (async multi-channel DMA sweep vs the blocking
# single-channel baseline), BENCH_engines.json (engine-pool sweep, 1 -> 8
# copier engines), BENCH_remap.json (zero-copy remap tier vs copy ablation),
# BENCH_ipc_fuse.json (fused single-hop IPC vs the two-step ablation, gated
# at >=1.4x on the 1 MiB socket row, >=1.5x on >=64 KiB binder parcels,
# >=90% fused rate on the pipelined qd4 rows, and >=1.8x on the
# proxy-forwarded pipeline-e2e rows — which must all be present),
# BENCH_cow.json (CoW fault split handling), and BENCH_serve.json (open-loop
# serving sweep: p50/p99/p999 vs offered load, overload admission policies) at
# the repo root; fails if any sweep reports non-identical memory images, a
# gated remap/fuse row misses its moved-bytes drop or speedup floor, or the
# serving sweep's p999 knee fails to move right under load shedding.
#
# Usage: scripts/bench_smoke.sh [quick]
#   quick — CI mode: the vectored-submission sweep runs its two-size subset
#           and the throughput figure is skipped.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build-release}
QUICK=${1:-}

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_queue_depth bench_sched bench_submit_batch bench_dma_channels bench_engines bench_remap bench_ipc_fuse bench_cow bench_serve bench_fig9_copy_throughput

echo
"$BUILD_DIR"/bench/bench_queue_depth --json | tee /tmp/bench_queue_depth.out
if grep -q ' NO ' /tmp/bench_queue_depth.out; then
  echo "bench_queue_depth: indexed and linear images differ" >&2
  exit 1
fi

echo
"$BUILD_DIR"/bench/bench_sched --json | tee /tmp/bench_sched.out
if grep -q ' NO ' /tmp/bench_sched.out; then
  echo "bench_sched: sharded and linear images differ" >&2
  exit 1
fi

echo
if [[ "$QUICK" == "quick" ]]; then
  "$BUILD_DIR"/bench/bench_submit_batch --json --quick | tee /tmp/bench_submit_batch.out
else
  "$BUILD_DIR"/bench/bench_submit_batch --json | tee /tmp/bench_submit_batch.out
fi
if grep -q ' NO ' /tmp/bench_submit_batch.out; then
  echo "bench_submit_batch: vectored and per-op images differ" >&2
  exit 1
fi

echo
"$BUILD_DIR"/bench/bench_dma_channels --json | tee /tmp/bench_dma_channels.out
if grep -q ' NO ' /tmp/bench_dma_channels.out; then
  echo "bench_dma_channels: async image differs from the blocking baseline" >&2
  exit 1
fi

echo
"$BUILD_DIR"/bench/bench_engines --json | tee /tmp/bench_engines.out
if grep -q ' NO ' /tmp/bench_engines.out; then
  echo "bench_engines: pooled image differs from the 1-engine run" >&2
  exit 1
fi

echo
"$BUILD_DIR"/bench/bench_remap --json | tee /tmp/bench_remap.out
if grep -q ' NO ' /tmp/bench_remap.out; then
  echo "bench_remap: remap image differs from the copy ablation or a gated row missed its drop" >&2
  exit 1
fi

echo
"$BUILD_DIR"/bench/bench_ipc_fuse --json | tee /tmp/bench_ipc_fuse.out
if grep -q ' NO ' /tmp/bench_ipc_fuse.out; then
  echo "bench_ipc_fuse: fused image differs from the two-step ablation or a gated row missed its speedup floor" >&2
  exit 1
fi
# The qd4 fused-rate and pipeline-speedup gates live inside the bench (a miss
# prints NO above); also fail loudly if the gated rows vanish from the JSON —
# a silently dropped scenario would otherwise pass the grep.
for scenario in socket-qd4 pipeline-e2e; do
  if ! grep -q "\"scenario\": \"$scenario\"" BENCH_ipc_fuse.json; then
    echo "bench_ipc_fuse: gated scenario '$scenario' missing from BENCH_ipc_fuse.json" >&2
    exit 1
  fi
done

echo
"$BUILD_DIR"/bench/bench_cow --json | tee /tmp/bench_cow.out

echo
if [[ "$QUICK" == "quick" ]]; then
  "$BUILD_DIR"/bench/bench_serve --json --quick | tee /tmp/bench_serve.out
else
  "$BUILD_DIR"/bench/bench_serve --json | tee /tmp/bench_serve.out
fi
if grep -q ' NO ' /tmp/bench_serve.out; then
  echo "bench_serve: a reply diverged from the model or the shed-policy p999 knee did not move right" >&2
  exit 1
fi

if [[ "$QUICK" != "quick" ]]; then
  echo
  "$BUILD_DIR"/bench/bench_fig9_copy_throughput
fi

echo
echo "bench smoke OK; results in BENCH_queue_depth.json + BENCH_sched.json + BENCH_submit_batch.json + BENCH_dma_channels.json + BENCH_engines.json + BENCH_remap.json + BENCH_ipc_fuse.json + BENCH_cow.json + BENCH_serve.json"
