#!/usr/bin/env bash
# Bench smoke: Release build + the two benches that gate engine performance
# work. Writes BENCH_queue_depth.json (indexed vs linear queue-depth sweep)
# at the repo root; fails if the sweep reports non-identical memory images.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build-release}

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_queue_depth bench_fig9_copy_throughput

echo
"$BUILD_DIR"/bench/bench_queue_depth --json | tee /tmp/bench_queue_depth.out
if grep -q ' NO ' /tmp/bench_queue_depth.out; then
  echo "bench_queue_depth: indexed and linear images differ" >&2
  exit 1
fi

echo
"$BUILD_DIR"/bench/bench_fig9_copy_throughput

echo
echo "bench smoke OK; results in BENCH_queue_depth.json"
