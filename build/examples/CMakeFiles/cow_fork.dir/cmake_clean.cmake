file(REMOVE_RECURSE
  "CMakeFiles/cow_fork.dir/cow_fork.cpp.o"
  "CMakeFiles/cow_fork.dir/cow_fork.cpp.o.d"
  "cow_fork"
  "cow_fork.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cow_fork.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
