# Empty compiler generated dependencies file for cow_fork.
# This may be replaced when dependencies are built.
