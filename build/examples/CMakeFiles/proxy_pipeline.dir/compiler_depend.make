# Empty compiler generated dependencies file for proxy_pipeline.
# This may be replaced when dependencies are built.
