file(REMOVE_RECURSE
  "CMakeFiles/proxy_pipeline.dir/proxy_pipeline.cpp.o"
  "CMakeFiles/proxy_pipeline.dir/proxy_pipeline.cpp.o.d"
  "proxy_pipeline"
  "proxy_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxy_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
