file(REMOVE_RECURSE
  "libcopier_core.a"
)
