# Empty dependencies file for copier_core.
# This may be replaced when dependencies are built.
