file(REMOVE_RECURSE
  "CMakeFiles/copier_core.dir/atcache.cc.o"
  "CMakeFiles/copier_core.dir/atcache.cc.o.d"
  "CMakeFiles/copier_core.dir/engine.cc.o"
  "CMakeFiles/copier_core.dir/engine.cc.o.d"
  "CMakeFiles/copier_core.dir/linux_glue.cc.o"
  "CMakeFiles/copier_core.dir/linux_glue.cc.o.d"
  "CMakeFiles/copier_core.dir/service.cc.o"
  "CMakeFiles/copier_core.dir/service.cc.o.d"
  "libcopier_core.a"
  "libcopier_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copier_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
