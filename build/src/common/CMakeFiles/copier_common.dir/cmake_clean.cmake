file(REMOVE_RECURSE
  "CMakeFiles/copier_common.dir/cycle_clock.cc.o"
  "CMakeFiles/copier_common.dir/cycle_clock.cc.o.d"
  "CMakeFiles/copier_common.dir/histogram.cc.o"
  "CMakeFiles/copier_common.dir/histogram.cc.o.d"
  "CMakeFiles/copier_common.dir/logging.cc.o"
  "CMakeFiles/copier_common.dir/logging.cc.o.d"
  "CMakeFiles/copier_common.dir/status.cc.o"
  "CMakeFiles/copier_common.dir/status.cc.o.d"
  "CMakeFiles/copier_common.dir/table.cc.o"
  "CMakeFiles/copier_common.dir/table.cc.o.d"
  "libcopier_common.a"
  "libcopier_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copier_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
