# Empty dependencies file for copier_common.
# This may be replaced when dependencies are built.
