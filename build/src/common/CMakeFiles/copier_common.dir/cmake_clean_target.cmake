file(REMOVE_RECURSE
  "libcopier_common.a"
)
