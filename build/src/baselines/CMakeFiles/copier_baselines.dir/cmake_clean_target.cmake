file(REMOVE_RECURSE
  "libcopier_baselines.a"
)
