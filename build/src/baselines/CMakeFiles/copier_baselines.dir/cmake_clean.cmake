file(REMOVE_RECURSE
  "CMakeFiles/copier_baselines.dir/syscall_baselines.cc.o"
  "CMakeFiles/copier_baselines.dir/syscall_baselines.cc.o.d"
  "CMakeFiles/copier_baselines.dir/zio.cc.o"
  "CMakeFiles/copier_baselines.dir/zio.cc.o.d"
  "libcopier_baselines.a"
  "libcopier_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copier_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
