# Empty compiler generated dependencies file for copier_baselines.
# This may be replaced when dependencies are built.
