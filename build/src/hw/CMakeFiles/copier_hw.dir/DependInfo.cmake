
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/cpu_copy.cc" "src/hw/CMakeFiles/copier_hw.dir/cpu_copy.cc.o" "gcc" "src/hw/CMakeFiles/copier_hw.dir/cpu_copy.cc.o.d"
  "/root/repo/src/hw/dma_engine.cc" "src/hw/CMakeFiles/copier_hw.dir/dma_engine.cc.o" "gcc" "src/hw/CMakeFiles/copier_hw.dir/dma_engine.cc.o.d"
  "/root/repo/src/hw/timing_model.cc" "src/hw/CMakeFiles/copier_hw.dir/timing_model.cc.o" "gcc" "src/hw/CMakeFiles/copier_hw.dir/timing_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/copier_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
