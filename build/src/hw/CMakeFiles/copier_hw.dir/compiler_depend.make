# Empty compiler generated dependencies file for copier_hw.
# This may be replaced when dependencies are built.
