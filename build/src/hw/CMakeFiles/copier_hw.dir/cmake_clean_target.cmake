file(REMOVE_RECURSE
  "libcopier_hw.a"
)
