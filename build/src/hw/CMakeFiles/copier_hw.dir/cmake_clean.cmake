file(REMOVE_RECURSE
  "CMakeFiles/copier_hw.dir/cpu_copy.cc.o"
  "CMakeFiles/copier_hw.dir/cpu_copy.cc.o.d"
  "CMakeFiles/copier_hw.dir/dma_engine.cc.o"
  "CMakeFiles/copier_hw.dir/dma_engine.cc.o.d"
  "CMakeFiles/copier_hw.dir/timing_model.cc.o"
  "CMakeFiles/copier_hw.dir/timing_model.cc.o.d"
  "libcopier_hw.a"
  "libcopier_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copier_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
