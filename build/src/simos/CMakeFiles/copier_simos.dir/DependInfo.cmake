
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simos/address_space.cc" "src/simos/CMakeFiles/copier_simos.dir/address_space.cc.o" "gcc" "src/simos/CMakeFiles/copier_simos.dir/address_space.cc.o.d"
  "/root/repo/src/simos/binder.cc" "src/simos/CMakeFiles/copier_simos.dir/binder.cc.o" "gcc" "src/simos/CMakeFiles/copier_simos.dir/binder.cc.o.d"
  "/root/repo/src/simos/copy_backend.cc" "src/simos/CMakeFiles/copier_simos.dir/copy_backend.cc.o" "gcc" "src/simos/CMakeFiles/copier_simos.dir/copy_backend.cc.o.d"
  "/root/repo/src/simos/kernel.cc" "src/simos/CMakeFiles/copier_simos.dir/kernel.cc.o" "gcc" "src/simos/CMakeFiles/copier_simos.dir/kernel.cc.o.d"
  "/root/repo/src/simos/phys_memory.cc" "src/simos/CMakeFiles/copier_simos.dir/phys_memory.cc.o" "gcc" "src/simos/CMakeFiles/copier_simos.dir/phys_memory.cc.o.d"
  "/root/repo/src/simos/simfs.cc" "src/simos/CMakeFiles/copier_simos.dir/simfs.cc.o" "gcc" "src/simos/CMakeFiles/copier_simos.dir/simfs.cc.o.d"
  "/root/repo/src/simos/socket.cc" "src/simos/CMakeFiles/copier_simos.dir/socket.cc.o" "gcc" "src/simos/CMakeFiles/copier_simos.dir/socket.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/copier_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/copier_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
