file(REMOVE_RECURSE
  "CMakeFiles/copier_simos.dir/address_space.cc.o"
  "CMakeFiles/copier_simos.dir/address_space.cc.o.d"
  "CMakeFiles/copier_simos.dir/binder.cc.o"
  "CMakeFiles/copier_simos.dir/binder.cc.o.d"
  "CMakeFiles/copier_simos.dir/copy_backend.cc.o"
  "CMakeFiles/copier_simos.dir/copy_backend.cc.o.d"
  "CMakeFiles/copier_simos.dir/kernel.cc.o"
  "CMakeFiles/copier_simos.dir/kernel.cc.o.d"
  "CMakeFiles/copier_simos.dir/phys_memory.cc.o"
  "CMakeFiles/copier_simos.dir/phys_memory.cc.o.d"
  "CMakeFiles/copier_simos.dir/simfs.cc.o"
  "CMakeFiles/copier_simos.dir/simfs.cc.o.d"
  "CMakeFiles/copier_simos.dir/socket.cc.o"
  "CMakeFiles/copier_simos.dir/socket.cc.o.d"
  "libcopier_simos.a"
  "libcopier_simos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copier_simos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
