file(REMOVE_RECURSE
  "libcopier_simos.a"
)
