# Empty dependencies file for copier_simos.
# This may be replaced when dependencies are built.
