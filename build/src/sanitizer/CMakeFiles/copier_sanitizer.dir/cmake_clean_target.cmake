file(REMOVE_RECURSE
  "libcopier_sanitizer.a"
)
