# Empty dependencies file for copier_sanitizer.
# This may be replaced when dependencies are built.
