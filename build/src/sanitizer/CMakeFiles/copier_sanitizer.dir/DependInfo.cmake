
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sanitizer/copier_sanitizer.cc" "src/sanitizer/CMakeFiles/copier_sanitizer.dir/copier_sanitizer.cc.o" "gcc" "src/sanitizer/CMakeFiles/copier_sanitizer.dir/copier_sanitizer.cc.o.d"
  "/root/repo/src/sanitizer/csync_advisor.cc" "src/sanitizer/CMakeFiles/copier_sanitizer.dir/csync_advisor.cc.o" "gcc" "src/sanitizer/CMakeFiles/copier_sanitizer.dir/csync_advisor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/copier_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
