file(REMOVE_RECURSE
  "CMakeFiles/copier_sanitizer.dir/copier_sanitizer.cc.o"
  "CMakeFiles/copier_sanitizer.dir/copier_sanitizer.cc.o.d"
  "CMakeFiles/copier_sanitizer.dir/csync_advisor.cc.o"
  "CMakeFiles/copier_sanitizer.dir/csync_advisor.cc.o.d"
  "libcopier_sanitizer.a"
  "libcopier_sanitizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copier_sanitizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
