file(REMOVE_RECURSE
  "liblibcopier.a"
)
