
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/libcopier/libcopier.cc" "src/libcopier/CMakeFiles/libcopier.dir/libcopier.cc.o" "gcc" "src/libcopier/CMakeFiles/libcopier.dir/libcopier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/copier_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simos/CMakeFiles/copier_simos.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/copier_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/copier_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
