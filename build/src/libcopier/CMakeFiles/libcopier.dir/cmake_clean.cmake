file(REMOVE_RECURSE
  "CMakeFiles/libcopier.dir/libcopier.cc.o"
  "CMakeFiles/libcopier.dir/libcopier.cc.o.d"
  "liblibcopier.a"
  "liblibcopier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libcopier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
