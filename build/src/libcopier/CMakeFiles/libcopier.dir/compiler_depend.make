# Empty compiler generated dependencies file for libcopier.
# This may be replaced when dependencies are built.
