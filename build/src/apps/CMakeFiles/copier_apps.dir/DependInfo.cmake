
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app_util.cc" "src/apps/CMakeFiles/copier_apps.dir/app_util.cc.o" "gcc" "src/apps/CMakeFiles/copier_apps.dir/app_util.cc.o.d"
  "/root/repo/src/apps/avcodec.cc" "src/apps/CMakeFiles/copier_apps.dir/avcodec.cc.o" "gcc" "src/apps/CMakeFiles/copier_apps.dir/avcodec.cc.o.d"
  "/root/repo/src/apps/cipher.cc" "src/apps/CMakeFiles/copier_apps.dir/cipher.cc.o" "gcc" "src/apps/CMakeFiles/copier_apps.dir/cipher.cc.o.d"
  "/root/repo/src/apps/deflate.cc" "src/apps/CMakeFiles/copier_apps.dir/deflate.cc.o" "gcc" "src/apps/CMakeFiles/copier_apps.dir/deflate.cc.o.d"
  "/root/repo/src/apps/minikv.cc" "src/apps/CMakeFiles/copier_apps.dir/minikv.cc.o" "gcc" "src/apps/CMakeFiles/copier_apps.dir/minikv.cc.o.d"
  "/root/repo/src/apps/miniproxy.cc" "src/apps/CMakeFiles/copier_apps.dir/miniproxy.cc.o" "gcc" "src/apps/CMakeFiles/copier_apps.dir/miniproxy.cc.o.d"
  "/root/repo/src/apps/parcel.cc" "src/apps/CMakeFiles/copier_apps.dir/parcel.cc.o" "gcc" "src/apps/CMakeFiles/copier_apps.dir/parcel.cc.o.d"
  "/root/repo/src/apps/pngish.cc" "src/apps/CMakeFiles/copier_apps.dir/pngish.cc.o" "gcc" "src/apps/CMakeFiles/copier_apps.dir/pngish.cc.o.d"
  "/root/repo/src/apps/serde.cc" "src/apps/CMakeFiles/copier_apps.dir/serde.cc.o" "gcc" "src/apps/CMakeFiles/copier_apps.dir/serde.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/libcopier/CMakeFiles/libcopier.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/copier_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/copier_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simos/CMakeFiles/copier_simos.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/copier_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/copier_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
