file(REMOVE_RECURSE
  "CMakeFiles/copier_apps.dir/app_util.cc.o"
  "CMakeFiles/copier_apps.dir/app_util.cc.o.d"
  "CMakeFiles/copier_apps.dir/avcodec.cc.o"
  "CMakeFiles/copier_apps.dir/avcodec.cc.o.d"
  "CMakeFiles/copier_apps.dir/cipher.cc.o"
  "CMakeFiles/copier_apps.dir/cipher.cc.o.d"
  "CMakeFiles/copier_apps.dir/deflate.cc.o"
  "CMakeFiles/copier_apps.dir/deflate.cc.o.d"
  "CMakeFiles/copier_apps.dir/minikv.cc.o"
  "CMakeFiles/copier_apps.dir/minikv.cc.o.d"
  "CMakeFiles/copier_apps.dir/miniproxy.cc.o"
  "CMakeFiles/copier_apps.dir/miniproxy.cc.o.d"
  "CMakeFiles/copier_apps.dir/parcel.cc.o"
  "CMakeFiles/copier_apps.dir/parcel.cc.o.d"
  "CMakeFiles/copier_apps.dir/pngish.cc.o"
  "CMakeFiles/copier_apps.dir/pngish.cc.o.d"
  "CMakeFiles/copier_apps.dir/serde.cc.o"
  "CMakeFiles/copier_apps.dir/serde.cc.o.d"
  "libcopier_apps.a"
  "libcopier_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copier_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
