# Empty compiler generated dependencies file for copier_apps.
# This may be replaced when dependencies are built.
