file(REMOVE_RECURSE
  "libcopier_apps.a"
)
