# Empty compiler generated dependencies file for libcopier_test.
# This may be replaced when dependencies are built.
