file(REMOVE_RECURSE
  "CMakeFiles/libcopier_test.dir/libcopier_test.cc.o"
  "CMakeFiles/libcopier_test.dir/libcopier_test.cc.o.d"
  "libcopier_test"
  "libcopier_test.pdb"
  "libcopier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libcopier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
