# Empty dependencies file for simos_test.
# This may be replaced when dependencies are built.
