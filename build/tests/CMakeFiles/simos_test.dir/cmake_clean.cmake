file(REMOVE_RECURSE
  "CMakeFiles/simos_test.dir/simos_test.cc.o"
  "CMakeFiles/simos_test.dir/simos_test.cc.o.d"
  "simos_test"
  "simos_test.pdb"
  "simos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
