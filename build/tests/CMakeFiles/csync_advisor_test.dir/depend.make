# Empty dependencies file for csync_advisor_test.
# This may be replaced when dependencies are built.
