file(REMOVE_RECURSE
  "CMakeFiles/csync_advisor_test.dir/csync_advisor_test.cc.o"
  "CMakeFiles/csync_advisor_test.dir/csync_advisor_test.cc.o.d"
  "csync_advisor_test"
  "csync_advisor_test.pdb"
  "csync_advisor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csync_advisor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
