# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/simos_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/libcopier_test[1]_include.cmake")
include("/root/repo/build/tests/refinement_test[1]_include.cmake")
include("/root/repo/build/tests/descriptor_test[1]_include.cmake")
include("/root/repo/build/tests/sweep_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/sanitizer_test[1]_include.cmake")
include("/root/repo/build/tests/csync_advisor_test[1]_include.cmake")
