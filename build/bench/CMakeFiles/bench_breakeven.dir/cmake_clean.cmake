file(REMOVE_RECURSE
  "CMakeFiles/bench_breakeven.dir/bench_breakeven.cc.o"
  "CMakeFiles/bench_breakeven.dir/bench_breakeven.cc.o.d"
  "bench_breakeven"
  "bench_breakeven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_breakeven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
