# Empty compiler generated dependencies file for bench_breakeven.
# This may be replaced when dependencies are built.
