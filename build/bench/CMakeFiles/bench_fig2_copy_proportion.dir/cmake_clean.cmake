file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_copy_proportion.dir/bench_fig2_copy_proportion.cc.o"
  "CMakeFiles/bench_fig2_copy_proportion.dir/bench_fig2_copy_proportion.cc.o.d"
  "bench_fig2_copy_proportion"
  "bench_fig2_copy_proportion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_copy_proportion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
