# Empty dependencies file for bench_fig2_copy_proportion.
# This may be replaced when dependencies are built.
