file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_libraries.dir/bench_fig13_libraries.cc.o"
  "CMakeFiles/bench_fig13_libraries.dir/bench_fig13_libraries.cc.o.d"
  "bench_fig13_libraries"
  "bench_fig13_libraries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_libraries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
