# Empty dependencies file for bench_table1_capability_matrix.
# This may be replaced when dependencies are built.
