file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_hw_units.dir/bench_fig7_hw_units.cc.o"
  "CMakeFiles/bench_fig7_hw_units.dir/bench_fig7_hw_units.cc.o.d"
  "bench_fig7_hw_units"
  "bench_fig7_hw_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_hw_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
