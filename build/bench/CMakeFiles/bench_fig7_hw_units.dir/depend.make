# Empty dependencies file for bench_fig7_hw_units.
# This may be replaced when dependencies are built.
