file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_proxy.dir/bench_fig12_proxy.cc.o"
  "CMakeFiles/bench_fig12_proxy.dir/bench_fig12_proxy.cc.o.d"
  "bench_fig12_proxy"
  "bench_fig12_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
