# Empty dependencies file for bench_fig3_copyuse_window.
# This may be replaced when dependencies are built.
