file(REMOVE_RECURSE
  "CMakeFiles/bench_binder_ipc.dir/bench_binder_ipc.cc.o"
  "CMakeFiles/bench_binder_ipc.dir/bench_binder_ipc.cc.o.d"
  "bench_binder_ipc"
  "bench_binder_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_binder_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
