# Empty dependencies file for bench_binder_ipc.
# This may be replaced when dependencies are built.
