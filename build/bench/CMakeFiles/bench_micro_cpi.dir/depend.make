# Empty dependencies file for bench_micro_cpi.
# This may be replaced when dependencies are built.
