file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_cpi.dir/bench_micro_cpi.cc.o"
  "CMakeFiles/bench_micro_cpi.dir/bench_micro_cpi.cc.o.d"
  "bench_micro_cpi"
  "bench_micro_cpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_cpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
