file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_redis.dir/bench_fig11_redis.cc.o"
  "CMakeFiles/bench_fig11_redis.dir/bench_fig11_redis.cc.o.d"
  "bench_fig11_redis"
  "bench_fig11_redis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_redis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
