# Empty dependencies file for bench_fig11_redis.
# This may be replaced when dependencies are built.
