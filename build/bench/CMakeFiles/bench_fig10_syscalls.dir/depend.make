# Empty dependencies file for bench_fig10_syscalls.
# This may be replaced when dependencies are built.
