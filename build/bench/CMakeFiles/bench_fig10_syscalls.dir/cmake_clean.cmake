file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_syscalls.dir/bench_fig10_syscalls.cc.o"
  "CMakeFiles/bench_fig10_syscalls.dir/bench_fig10_syscalls.cc.o.d"
  "bench_fig10_syscalls"
  "bench_fig10_syscalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_syscalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
