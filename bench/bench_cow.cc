// §6.1.2 CoW handling: average thread-blocking time per copy-on-write fault,
// baseline (handler copies everything with ERMS) vs Copier-accelerated
// (handler copies the head while Copier copies the tail, §5.2).
// Expected shape (paper): −71.8% for 2 MiB pages, −8.0% for 4 KiB pages.
#include <fstream>

#include "bench/bench_util.h"
#include "src/hw/copy_unit.h"

namespace copier::bench {
namespace {

double FaultBlockUs(const hw::TimingModel& t, bool huge, bool accelerate, int faults) {
  BenchStack stack(&t);
  apps::AppProcess* app = stack.NewApp("cow");
  if (accelerate) {
    stack.glue->AccelerateCow(*app->proc());
  } else {
    // Registration installs the engine's AVX page-copy hook (DESIGN.md §11);
    // this arm measures the stock kernel handler, so restore ERMS.
    app->proc()->mem().SetCowCopyFn(
        [&t](void* dst, const void* src, size_t len, ExecContext* ctx) {
          hw::ErmsCopy(dst, src, len);
          ChargeCtx(ctx, t.CpuCopyCycles(hw::CopyUnitKind::kErms, len));
        });
  }

  const size_t block = huge ? simos::kHugePageSize : kPageSize;
  const size_t region = block * static_cast<size_t>(faults);
  auto va = app->proc()->mem().MapAnonymous(region, "cow-region", /*populate=*/!huge, huge);
  COPIER_CHECK(va.ok());
  // Touch everything so fork shares populated pages.
  for (size_t off = 0; off < region; off += block) {
    uint8_t b = 1;
    COPIER_CHECK_OK(app->proc()->mem().WriteBytes(*va + off, &b, 1));
  }
  auto child = stack.kernel->Fork(*app->proc(), nullptr);
  COPIER_CHECK(child.ok());

  // Each write to a shared block triggers one CoW fault; measure the blocking
  // time the faulting thread observes.
  Histogram lat;
  ExecContext& ctx = app->ctx();
  for (size_t off = 0; off < region; off += block) {
    const Cycles start = ctx.now();
    uint8_t b = 2;
    COPIER_CHECK_OK(app->proc()->mem().WriteBytes(*va + off, &b, 1, &ctx));
    lat.Add(Us(ctx.now() - start));
  }
  return lat.Mean();
}

void Run(const hw::TimingModel& t, bool json) {
  PrintBanner("CoW fault handling: thread blocking time per fault (us)");
  TextTable table({"page size", "baseline", "Copier-split", "reduction"});
  struct Row {
    const char* page;
    double base;
    double copier;
  };
  std::vector<Row> rows;
  for (bool huge : {false, true}) {
    const int faults = huge ? 16 : 64;
    const double base = FaultBlockUs(t, huge, false, faults);
    const double copier = FaultBlockUs(t, huge, true, faults);
    rows.push_back({huge ? "2MiB" : "4KiB", base, copier});
    table.AddRow({huge ? "2MiB" : "4KiB", TextTable::Num(base, 3), TextTable::Num(copier, 3),
                  "-" + TextTable::Num((1 - copier / base) * 100, 1) + "%"});
  }
  table.Print();
  if (json) {
    std::ofstream out("BENCH_cow.json");
    out << "{\n  \"bench\": \"cow\",\n  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      out << "    {\"page\": \"" << rows[i].page << "\", \"baseline_us\": " << rows[i].base
          << ", \"copier_us\": " << rows[i].copier
          << ", \"reduction_pct\": " << (1 - rows[i].copier / rows[i].base) * 100 << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }
}

}  // namespace
}  // namespace copier::bench

int main(int argc, char** argv) {
  copier::bench::Run(copier::bench::SelectTiming(argc, argv),
                     copier::bench::HasFlag(argc, argv, "--json"));
  return 0;
}
