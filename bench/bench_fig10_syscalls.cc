// Figure 10: average latency of send() and recv() under the syscall
// optimization baselines vs Copier.
//
// Echo-style load: a peer process keeps the socket fed (recv) or drains it
// (send); the measured side performs the syscall and, for Copier, the csync
// work its successor would do. Expected shape (paper): Copier cuts send
// latency 7–37% (27–59% with batching) and recv latency 16–92% (55–93% with
// batching); UB helps only small sizes; zero-copy send wins only >= 32 KiB.
#include "bench/bench_util.h"

#include "src/baselines/syscall_baselines.h"
#include "src/libcopier/libcopier.h"

namespace copier::bench {
namespace {

constexpr int kIters = 40;

// --- send() ------------------------------------------------------------------

// Baseline/UB/zero-copy/io_uring send: user -> kernel; latency is the
// syscall (or submission+wait) itself.
double SendLatencyUs(const hw::TimingModel& t, size_t size, const std::string& kind) {
  BenchStack stack(&t, {}, kind == "copier" ? apps::Mode::kCopier : apps::Mode::kSync);
  apps::AppProcess* app =
      kind == "copier" ? stack.NewApp("tx") : stack.NewSyncApp("tx");
  auto [sock, peer] = stack.kernel->CreateSocketPair();
  const uint64_t buf = app->Map(size, "buf");
  baselines::ZeroCopySend zerocopy(stack.kernel.get());
  baselines::UserspaceBypass ub(stack.kernel.get());
  baselines::IoUringSim uring(stack.kernel.get(), 1);
  baselines::IoUringSim uring_batch(stack.kernel.get(), 100);

  Histogram lat;
  auto drain = [&] {
    // Peer drains so the skb pool never empties.
    while (peer->HasData()) {
      Cycles dummy = 0;
      peer->ConsumeRx(SIZE_MAX, &dummy, [&](simos::Skb* skb, size_t, size_t) {
        skb->pending_copies.fetch_add(1, std::memory_order_relaxed);
        simos::SimSocket::CompleteCopy(&stack.kernel->skb_pool(), skb);
      });
    }
  };
  (void)drain;

  ExecContext& ctx = app->ctx();
  for (int i = 0; i < kIters; ++i) {
    const Cycles start = ctx.now();
    if (kind == "baseline") {
      COPIER_CHECK(stack.kernel->Send(*app->proc(), sock, buf, size, &ctx).ok());
    } else if (kind == "ub") {
      COPIER_CHECK(ub.Send(*app->proc(), sock, buf, size, &ctx).ok());
    } else if (kind == "zerocopy") {
      COPIER_CHECK(zerocopy.Send(*app->proc(), sock, buf, size, &ctx).ok());
    } else if (kind == "iouring") {
      const uint64_t op = uring.SubmitSend(*app->proc(), sock, buf, size, &ctx);
      COPIER_CHECK(uring.Wait(op, &ctx).ok());
    } else if (kind == "iouring-batch") {
      // Batched: latency per op excludes most of the amortized trap; waits
      // are reaped in bulk (modelled per op here).
      const uint64_t op = uring_batch.SubmitSend(*app->proc(), sock, buf, size, &ctx);
      COPIER_CHECK(uring_batch.Wait(op, &ctx).ok());
    } else if (kind == "copier") {
      // Async send: the syscall returns after submitting k-mode tasks; the
      // driver syncs before NIC enqueue off the critical path (§5.2).
      COPIER_CHECK(stack.kernel->Send(*app->proc(), sock, buf, size, &ctx).ok());
      // Copier serves in background; charge nothing to the app.
      core::Client* client = stack.service->ClientById(app->proc()->copier_client_id());
      stack.service->Serve(*client);
    }
    lat.Add(Us(ctx.now() - start));
    drain();
  }
  return lat.Mean();
}

// --- recv() ------------------------------------------------------------------

double RecvLatencyUs(const hw::TimingModel& t, size_t size, const std::string& kind) {
  BenchStack stack(&t, {}, kind == "copier" ? apps::Mode::kCopier : apps::Mode::kSync);
  apps::AppProcess* app =
      kind == "copier" ? stack.NewApp("rx") : stack.NewSyncApp("rx");
  apps::AppProcess* feeder = stack.NewSyncApp("feeder");
  auto [ftx, sock] = stack.kernel->CreateSocketPair();
  const uint64_t buf = app->Map(AlignUp(size, kPageSize), "buf");
  const uint64_t fbuf = feeder->Map(AlignUp(size, kPageSize), "fbuf");
  core::Descriptor descriptor(AlignUp(size, kPageSize));
  baselines::UserspaceBypass ub(stack.kernel.get());
  baselines::IoUringSim uring(stack.kernel.get(), 1);
  baselines::IoUringSim uring_batch(stack.kernel.get(), 100);

  Histogram lat;
  ExecContext& ctx = app->ctx();
  for (int i = 0; i < kIters; ++i) {
    COPIER_CHECK(stack.kernel->Send(*feeder->proc(), ftx, fbuf, size, nullptr).ok());
    const Cycles start = ctx.now();
    if (kind == "baseline") {
      COPIER_CHECK(stack.kernel->Recv(*app->proc(), sock, buf, size, &ctx).ok());
    } else if (kind == "ub") {
      COPIER_CHECK(ub.Recv(*app->proc(), sock, buf, size, &ctx).ok());
      baselines::UserspaceBypass::ChargeAccessTax(&ctx, size);
    } else if (kind == "iouring") {
      const uint64_t op = uring.SubmitRecv(*app->proc(), sock, buf, size, &ctx);
      COPIER_CHECK(uring.Wait(op, &ctx).ok());
    } else if (kind == "iouring-batch") {
      const uint64_t op = uring_batch.SubmitRecv(*app->proc(), sock, buf, size, &ctx);
      COPIER_CHECK(uring_batch.Wait(op, &ctx).ok());
    } else if (kind == "copier") {
      // Async recv: the syscall returns once tasks are submitted; the app
      // needs only the first bytes (header) before continuing (§5.2) — the
      // latency-relevant csync covers the first segment, as in the paper's
      // echo measurement.
      descriptor.Reset(AlignUp(size, kPageSize));
      simos::RecvOptions opts;
      opts.descriptor = &descriptor;
      COPIER_CHECK(stack.kernel->Recv(*app->proc(), sock, buf, size, &ctx, opts).ok());
      core::Client* client = stack.service->ClientById(app->proc()->copier_client_id());
      stack.service->Serve(*client);
      COPIER_CHECK_OK(core::WaitDescriptor(descriptor, 0, std::min<size_t>(size, 256), &ctx,
                                           [&] { stack.service->Serve(*client); }));
    }
    lat.Add(Us(ctx.now() - start));
    if (kind == "copier") {
      stack.service->DrainAll();  // settle before the buffer is reused
    }
  }
  return lat.Mean();
}

// Submission accounting for one Copier send: queue entries, scatter-gather
// batches, and doorbells (NotifyRunnable calls). Vectored submission turns
// a 1 MiB send from ~256 entries + ~256 doorbells into 1 + 1.
void PrintSubmissionAccounting(const hw::TimingModel& t) {
  PrintBanner("Copier send() submission accounting (per syscall)");
  TextTable table({"size", "mode", "entries", "sg batches", "doorbells", "kfuncs"});
  for (size_t size : {64 * kKiB, kMiB}) {
    for (bool vectored : {true, false}) {
      core::CopierConfig config;
      config.enable_vectored_submit = vectored;
      BenchStack stack(&t, config);
      apps::AppProcess* app = stack.NewApp("tx");
      auto [sock, peer] = stack.kernel->CreateSocketPair();
      (void)peer;
      const uint64_t buf = app->Map(size, "buf");
      const core::Engine::Stats before = stack.service->TotalStats();
      COPIER_CHECK(stack.kernel->Send(*app->proc(), sock, buf, size, &app->ctx()).ok());
      stack.service->DrainAll();
      const core::Engine::Stats after = stack.service->TotalStats();
      table.AddRow({TextTable::Bytes(size), vectored ? "vectored" : "per-op",
                    TextTable::Num(after.submit_entries - before.submit_entries, 0),
                    TextTable::Num(after.submit_batches - before.submit_batches, 0),
                    TextTable::Num(after.notify_calls - before.notify_calls, 0),
                    TextTable::Num(after.kfuncs_run - before.kfuncs_run, 0)});
    }
  }
  table.Print();
}

void Run(const hw::TimingModel& t) {
  const std::vector<size_t> sizes = {1 * kKiB, 4 * kKiB, 16 * kKiB, 64 * kKiB};
  {
    PrintBanner("Figure 10-a: send() average latency (us)");
    TextTable table({"size", "baseline", "UB", "io_uring", "io_uring-batch", "zero-copy",
                     "Copier", "Copier vs base"});
    for (size_t size : sizes) {
      const double base = SendLatencyUs(t, size, "baseline");
      const double copier = SendLatencyUs(t, size, "copier");
      table.AddRow({TextTable::Bytes(size), TextTable::Num(base),
                    TextTable::Num(SendLatencyUs(t, size, "ub")),
                    TextTable::Num(SendLatencyUs(t, size, "iouring")),
                    TextTable::Num(SendLatencyUs(t, size, "iouring-batch")),
                    TextTable::Num(SendLatencyUs(t, size, "zerocopy")),
                    TextTable::Num(copier),
                    "-" + TextTable::Num((1 - copier / base) * 100, 0) + "%"});
    }
    table.Print();
  }
  {
    PrintBanner("Figure 10-b: recv() average latency (us)");
    TextTable table(
        {"size", "baseline", "UB", "io_uring", "io_uring-batch", "Copier", "Copier vs base"});
    for (size_t size : sizes) {
      const double base = RecvLatencyUs(t, size, "baseline");
      const double copier = RecvLatencyUs(t, size, "copier");
      table.AddRow({TextTable::Bytes(size), TextTable::Num(base),
                    TextTable::Num(RecvLatencyUs(t, size, "ub")),
                    TextTable::Num(RecvLatencyUs(t, size, "iouring")),
                    TextTable::Num(RecvLatencyUs(t, size, "iouring-batch")),
                    TextTable::Num(copier),
                    "-" + TextTable::Num((1 - copier / base) * 100, 0) + "%"});
    }
    table.Print();
  }
  PrintSubmissionAccounting(t);
}

}  // namespace
}  // namespace copier::bench

int main(int argc, char** argv) {
  copier::bench::Run(copier::bench::SelectTiming(argc, argv));
  return 0;
}
