// §6.1.2 Binder IPC: end-to-end latency for a client sending n strings of
// 1 KiB, the server reading them one by one, and a reply.
// Expected shape (paper): Copier reduces latency 9.6–35.5% for n in 10–800.
//
// Second table: posted-receive parcels (DESIGN.md §12). The server posts its
// landing window before the client transacts, so the payload takes the fused
// single hop (client → window) instead of bouncing through the kernel
// transaction buffer. Per-transfer latency runs from the client's transact to
// the server's descriptor covering the whole message; the two-step column is
// the enable_ipc_fuse=false ablation over the same posted window.
#include "bench/bench_util.h"

#include "src/apps/parcel.h"
#include "src/simos/binder.h"

namespace copier::bench {
namespace {

Histogram LatencyHist(const hw::TimingModel& t, int n, apps::Mode mode) {
  BenchStack stack(&t, {}, mode);
  apps::AppProcess* client = mode == apps::Mode::kCopier ? stack.NewApp("client")
                                                         : stack.NewSyncApp("client");
  apps::AppProcess* server = mode == apps::Mode::kCopier ? stack.NewApp("server")
                                                         : stack.NewSyncApp("server");
  simos::BinderDriver binder(stack.kernel.get());
  apps::BinderParcelChannel channel(&binder, client, server);

  std::vector<std::string> strings(n, std::string(1024, 'x'));
  Histogram lat;
  for (int i = 0; i < 12; ++i) {
    const Cycles start = client->ctx().now();
    auto result = channel.Call(strings, &client->ctx(), &server->ctx());
    COPIER_CHECK(result.ok()) << result.status().ToString();
    lat.Add(Us(client->ctx().now() - start));
    if (mode == apps::Mode::kCopier) {
      stack.service->DrainAll();
    }
    // Keep the two clocks together between calls (closed loop).
    server->ctx().WaitUntil(client->ctx().now());
  }
  return lat;
}

Histogram PostedHist(const hw::TimingModel& t, size_t parcel_bytes, bool fuse) {
  core::CopierConfig config;
  config.enable_ipc_fuse = fuse;
  BenchStack stack(&t, config);
  apps::AppProcess* client = stack.NewApp("client");
  apps::AppProcess* server = stack.NewApp("server");
  simos::BinderDriver binder(stack.kernel.get());

  apps::ParcelWriter writer;
  writer.WriteString(std::string(parcel_bytes - 4, 'p'));
  const std::vector<uint8_t>& msg = writer.bytes();
  const uint64_t msg_buf = client->Map(AlignUp(msg.size(), kPageSize), "msg", true);
  client->io().Write(msg_buf, msg.data(), msg.size(), &client->ctx());
  const uint64_t win = server->Map(AlignUp(msg.size(), kPageSize), "win", true);

  Histogram lat;
  for (int i = 0; i < 12; ++i) {
    server->ctx().WaitUntil(client->ctx().now());
    client->ctx().WaitUntil(server->ctx().now());
    const Cycles start = client->ctx().now();
    core::Descriptor descriptor(msg.size());
    COPIER_CHECK_OK(
        binder.PostReceive(*server->proc(), win, msg.size(), &descriptor, &server->ctx()));
    auto txn = binder.Transact(*client->proc(), msg_buf, msg.size(), &client->ctx());
    COPIER_CHECK(txn.ok()) << txn.status().ToString();
    COPIER_CHECK(txn->in_window);
    COPIER_CHECK_OK(core::WaitDescriptor(descriptor, 0, msg.size(), &server->ctx(),
                                         [&] { stack.service->DrainAll(); }));
    lat.Add(Us(server->ctx().now() - start));
    binder.Release(txn->id);
    stack.service->DrainAll();
  }
  return lat;
}

void Run(const hw::TimingModel& t) {
  PrintBanner("Binder IPC (Parcel): end-to-end latency, n x 1KiB strings (us)");
  TextTable table({"n strings", "baseline", "Copier", "p50", "p99", "improvement"});
  for (int n : {10, 50, 100, 200, 400, 800}) {
    const Histogram base = LatencyHist(t, n, apps::Mode::kSync);
    const Histogram copier = LatencyHist(t, n, apps::Mode::kCopier);
    const PercentileSummary tail = Summarize(copier);
    table.AddRow({std::to_string(n), TextTable::Num(base.Mean()), TextTable::Num(copier.Mean()),
                  TextTable::Num(tail.p50), TextTable::Num(tail.p99),
                  "-" + TextTable::Num((1 - copier.Mean() / base.Mean()) * 100, 1) + "%"});
  }
  table.Print();

  PrintBanner("Posted-receive parcels: fused single hop vs two-step, per-transfer latency (us)");
  TextTable posted({"parcel KiB", "two-step", "fused", "p50", "p99", "speedup"});
  for (const size_t kib : {size_t{64}, size_t{256}, size_t{1024}}) {
    const Histogram off = PostedHist(t, kib * kKiB, false);
    const Histogram on = PostedHist(t, kib * kKiB, true);
    const PercentileSummary tail = Summarize(on);
    posted.AddRow({std::to_string(kib), TextTable::Num(off.Mean()), TextTable::Num(on.Mean()),
                   TextTable::Num(tail.p50), TextTable::Num(tail.p99),
                   TextTable::Num(off.Mean() / on.Mean(), 2) + "x"});
  }
  posted.Print();
}

}  // namespace
}  // namespace copier::bench

int main(int argc, char** argv) {
  copier::bench::Run(copier::bench::SelectTiming(argc, argv));
  return 0;
}
