// §6.1.2 Binder IPC: end-to-end latency for a client sending n strings of
// 1 KiB, the server reading them one by one, and a reply.
// Expected shape (paper): Copier reduces latency 9.6–35.5% for n in 10–800.
#include "bench/bench_util.h"

#include "src/apps/parcel.h"
#include "src/simos/binder.h"

namespace copier::bench {
namespace {

double LatencyUs(const hw::TimingModel& t, int n, apps::Mode mode) {
  BenchStack stack(&t, {}, mode);
  apps::AppProcess* client = mode == apps::Mode::kCopier ? stack.NewApp("client")
                                                         : stack.NewSyncApp("client");
  apps::AppProcess* server = mode == apps::Mode::kCopier ? stack.NewApp("server")
                                                         : stack.NewSyncApp("server");
  simos::BinderDriver binder(stack.kernel.get());
  apps::BinderParcelChannel channel(&binder, client, server);

  std::vector<std::string> strings(n, std::string(1024, 'x'));
  Histogram lat;
  for (int i = 0; i < 12; ++i) {
    const Cycles start = client->ctx().now();
    auto result = channel.Call(strings, &client->ctx(), &server->ctx());
    COPIER_CHECK(result.ok()) << result.status().ToString();
    lat.Add(Us(client->ctx().now() - start));
    if (mode == apps::Mode::kCopier) {
      stack.service->DrainAll();
    }
    // Keep the two clocks together between calls (closed loop).
    server->ctx().WaitUntil(client->ctx().now());
  }
  return lat.Mean();
}

void Run(const hw::TimingModel& t) {
  PrintBanner("Binder IPC (Parcel): end-to-end latency, n x 1KiB strings (us)");
  TextTable table({"n strings", "baseline", "Copier", "improvement"});
  for (int n : {10, 50, 100, 200, 400, 800}) {
    const double base = LatencyUs(t, n, apps::Mode::kSync);
    const double copier = LatencyUs(t, n, apps::Mode::kCopier);
    table.AddRow({std::to_string(n), TextTable::Num(base), TextTable::Num(copier),
                  "-" + TextTable::Num((1 - copier / base) * 100, 1) + "%"});
  }
  table.Print();
}

}  // namespace
}  // namespace copier::bench

int main(int argc, char** argv) {
  copier::bench::Run(copier::bench::SelectTiming(argc, argv));
  return 0;
}
